file(REMOVE_RECURSE
  "../bench/bench_fig4_optimized"
  "../bench/bench_fig4_optimized.pdb"
  "CMakeFiles/bench_fig4_optimized.dir/bench_fig4_optimized.cc.o"
  "CMakeFiles/bench_fig4_optimized.dir/bench_fig4_optimized.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_optimized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
