file(REMOVE_RECURSE
  "../bench/bench_message_complexity"
  "../bench/bench_message_complexity.pdb"
  "CMakeFiles/bench_message_complexity.dir/bench_message_complexity.cc.o"
  "CMakeFiles/bench_message_complexity.dir/bench_message_complexity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_message_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
