
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_runtime_overhead.cc" "bench-build/CMakeFiles/bench_runtime_overhead.dir/bench_runtime_overhead.cc.o" "gcc" "bench-build/CMakeFiles/bench_runtime_overhead.dir/bench_runtime_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cruz/CMakeFiles/cruz.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/cruz_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/cruz_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/pod/CMakeFiles/cruz_pod.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cruz_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/cruz_os.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/cruz_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cruz_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cruz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cruz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
