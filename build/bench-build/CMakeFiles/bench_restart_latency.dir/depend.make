# Empty dependencies file for bench_restart_latency.
# This may be replaced when dependencies are built.
