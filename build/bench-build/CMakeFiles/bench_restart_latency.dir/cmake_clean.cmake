file(REMOVE_RECURSE
  "../bench/bench_restart_latency"
  "../bench/bench_restart_latency.pdb"
  "CMakeFiles/bench_restart_latency.dir/bench_restart_latency.cc.o"
  "CMakeFiles/bench_restart_latency.dir/bench_restart_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restart_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
