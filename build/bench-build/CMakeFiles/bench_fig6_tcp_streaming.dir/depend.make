# Empty dependencies file for bench_fig6_tcp_streaming.
# This may be replaced when dependencies are built.
