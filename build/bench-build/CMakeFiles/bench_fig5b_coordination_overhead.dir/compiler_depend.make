# Empty compiler generated dependencies file for bench_fig5b_coordination_overhead.
# This may be replaced when dependencies are built.
