# Empty dependencies file for migrate_server.
# This may be replaced when dependencies are built.
