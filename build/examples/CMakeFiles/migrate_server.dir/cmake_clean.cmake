file(REMOVE_RECURSE
  "CMakeFiles/migrate_server.dir/migrate_server.cpp.o"
  "CMakeFiles/migrate_server.dir/migrate_server.cpp.o.d"
  "migrate_server"
  "migrate_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrate_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
