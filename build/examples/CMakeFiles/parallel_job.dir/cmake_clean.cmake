file(REMOVE_RECURSE
  "CMakeFiles/parallel_job.dir/parallel_job.cpp.o"
  "CMakeFiles/parallel_job.dir/parallel_job.cpp.o.d"
  "parallel_job"
  "parallel_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
