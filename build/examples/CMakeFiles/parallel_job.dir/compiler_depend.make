# Empty compiler generated dependencies file for parallel_job.
# This may be replaced when dependencies are built.
