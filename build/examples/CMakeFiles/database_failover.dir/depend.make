# Empty dependencies file for database_failover.
# This may be replaced when dependencies are built.
