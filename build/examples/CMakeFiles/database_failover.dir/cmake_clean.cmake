file(REMOVE_RECURSE
  "CMakeFiles/database_failover.dir/database_failover.cpp.o"
  "CMakeFiles/database_failover.dir/database_failover.cpp.o.d"
  "database_failover"
  "database_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
