file(REMOVE_RECURSE
  "CMakeFiles/cruz_common.dir/crc32.cc.o"
  "CMakeFiles/cruz_common.dir/crc32.cc.o.d"
  "CMakeFiles/cruz_common.dir/log.cc.o"
  "CMakeFiles/cruz_common.dir/log.cc.o.d"
  "CMakeFiles/cruz_common.dir/rng.cc.o"
  "CMakeFiles/cruz_common.dir/rng.cc.o.d"
  "CMakeFiles/cruz_common.dir/sysresult.cc.o"
  "CMakeFiles/cruz_common.dir/sysresult.cc.o.d"
  "libcruz_common.a"
  "libcruz_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cruz_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
