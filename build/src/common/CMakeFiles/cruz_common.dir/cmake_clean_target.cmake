file(REMOVE_RECURSE
  "libcruz_common.a"
)
