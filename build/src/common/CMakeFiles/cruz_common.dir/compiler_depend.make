# Empty compiler generated dependencies file for cruz_common.
# This may be replaced when dependencies are built.
