file(REMOVE_RECURSE
  "CMakeFiles/cruz_tcp.dir/connection.cc.o"
  "CMakeFiles/cruz_tcp.dir/connection.cc.o.d"
  "CMakeFiles/cruz_tcp.dir/recv_buffer.cc.o"
  "CMakeFiles/cruz_tcp.dir/recv_buffer.cc.o.d"
  "CMakeFiles/cruz_tcp.dir/segment.cc.o"
  "CMakeFiles/cruz_tcp.dir/segment.cc.o.d"
  "CMakeFiles/cruz_tcp.dir/send_buffer.cc.o"
  "CMakeFiles/cruz_tcp.dir/send_buffer.cc.o.d"
  "libcruz_tcp.a"
  "libcruz_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cruz_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
