file(REMOVE_RECURSE
  "libcruz_tcp.a"
)
