# Empty compiler generated dependencies file for cruz_tcp.
# This may be replaced when dependencies are built.
