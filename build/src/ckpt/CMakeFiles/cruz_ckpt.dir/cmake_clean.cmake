file(REMOVE_RECURSE
  "CMakeFiles/cruz_ckpt.dir/engine.cc.o"
  "CMakeFiles/cruz_ckpt.dir/engine.cc.o.d"
  "CMakeFiles/cruz_ckpt.dir/image.cc.o"
  "CMakeFiles/cruz_ckpt.dir/image.cc.o.d"
  "CMakeFiles/cruz_ckpt.dir/live_migrate.cc.o"
  "CMakeFiles/cruz_ckpt.dir/live_migrate.cc.o.d"
  "libcruz_ckpt.a"
  "libcruz_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cruz_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
