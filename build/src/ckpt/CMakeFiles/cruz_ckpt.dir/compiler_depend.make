# Empty compiler generated dependencies file for cruz_ckpt.
# This may be replaced when dependencies are built.
