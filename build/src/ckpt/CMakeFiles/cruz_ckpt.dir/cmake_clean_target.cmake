file(REMOVE_RECURSE
  "libcruz_ckpt.a"
)
