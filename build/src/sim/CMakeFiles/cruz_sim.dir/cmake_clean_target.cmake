file(REMOVE_RECURSE
  "libcruz_sim.a"
)
