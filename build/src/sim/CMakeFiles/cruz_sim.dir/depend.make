# Empty dependencies file for cruz_sim.
# This may be replaced when dependencies are built.
