file(REMOVE_RECURSE
  "CMakeFiles/cruz_sim.dir/event_queue.cc.o"
  "CMakeFiles/cruz_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/cruz_sim.dir/simulator.cc.o"
  "CMakeFiles/cruz_sim.dir/simulator.cc.o.d"
  "libcruz_sim.a"
  "libcruz_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cruz_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
