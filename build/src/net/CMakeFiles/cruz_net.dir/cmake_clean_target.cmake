file(REMOVE_RECURSE
  "libcruz_net.a"
)
