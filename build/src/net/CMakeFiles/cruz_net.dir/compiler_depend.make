# Empty compiler generated dependencies file for cruz_net.
# This may be replaced when dependencies are built.
