file(REMOVE_RECURSE
  "CMakeFiles/cruz_net.dir/address.cc.o"
  "CMakeFiles/cruz_net.dir/address.cc.o.d"
  "CMakeFiles/cruz_net.dir/ethernet_switch.cc.o"
  "CMakeFiles/cruz_net.dir/ethernet_switch.cc.o.d"
  "CMakeFiles/cruz_net.dir/nic.cc.o"
  "CMakeFiles/cruz_net.dir/nic.cc.o.d"
  "CMakeFiles/cruz_net.dir/packet.cc.o"
  "CMakeFiles/cruz_net.dir/packet.cc.o.d"
  "libcruz_net.a"
  "libcruz_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cruz_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
