
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cc" "src/net/CMakeFiles/cruz_net.dir/address.cc.o" "gcc" "src/net/CMakeFiles/cruz_net.dir/address.cc.o.d"
  "/root/repo/src/net/ethernet_switch.cc" "src/net/CMakeFiles/cruz_net.dir/ethernet_switch.cc.o" "gcc" "src/net/CMakeFiles/cruz_net.dir/ethernet_switch.cc.o.d"
  "/root/repo/src/net/nic.cc" "src/net/CMakeFiles/cruz_net.dir/nic.cc.o" "gcc" "src/net/CMakeFiles/cruz_net.dir/nic.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/cruz_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/cruz_net.dir/packet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cruz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cruz_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
