# Empty dependencies file for cruz_pod.
# This may be replaced when dependencies are built.
