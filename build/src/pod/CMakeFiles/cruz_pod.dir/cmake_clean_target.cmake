file(REMOVE_RECURSE
  "libcruz_pod.a"
)
