file(REMOVE_RECURSE
  "CMakeFiles/cruz_pod.dir/pod.cc.o"
  "CMakeFiles/cruz_pod.dir/pod.cc.o.d"
  "libcruz_pod.a"
  "libcruz_pod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cruz_pod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
