# Empty dependencies file for cruz_os.
# This may be replaced when dependencies are built.
