file(REMOVE_RECURSE
  "CMakeFiles/cruz_os.dir/dhcp.cc.o"
  "CMakeFiles/cruz_os.dir/dhcp.cc.o.d"
  "CMakeFiles/cruz_os.dir/memory.cc.o"
  "CMakeFiles/cruz_os.dir/memory.cc.o.d"
  "CMakeFiles/cruz_os.dir/netfs.cc.o"
  "CMakeFiles/cruz_os.dir/netfs.cc.o.d"
  "CMakeFiles/cruz_os.dir/netstack.cc.o"
  "CMakeFiles/cruz_os.dir/netstack.cc.o.d"
  "CMakeFiles/cruz_os.dir/node.cc.o"
  "CMakeFiles/cruz_os.dir/node.cc.o.d"
  "CMakeFiles/cruz_os.dir/os.cc.o"
  "CMakeFiles/cruz_os.dir/os.cc.o.d"
  "CMakeFiles/cruz_os.dir/pipe.cc.o"
  "CMakeFiles/cruz_os.dir/pipe.cc.o.d"
  "CMakeFiles/cruz_os.dir/process.cc.o"
  "CMakeFiles/cruz_os.dir/process.cc.o.d"
  "CMakeFiles/cruz_os.dir/sysv_ipc.cc.o"
  "CMakeFiles/cruz_os.dir/sysv_ipc.cc.o.d"
  "libcruz_os.a"
  "libcruz_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cruz_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
