
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/dhcp.cc" "src/os/CMakeFiles/cruz_os.dir/dhcp.cc.o" "gcc" "src/os/CMakeFiles/cruz_os.dir/dhcp.cc.o.d"
  "/root/repo/src/os/memory.cc" "src/os/CMakeFiles/cruz_os.dir/memory.cc.o" "gcc" "src/os/CMakeFiles/cruz_os.dir/memory.cc.o.d"
  "/root/repo/src/os/netfs.cc" "src/os/CMakeFiles/cruz_os.dir/netfs.cc.o" "gcc" "src/os/CMakeFiles/cruz_os.dir/netfs.cc.o.d"
  "/root/repo/src/os/netstack.cc" "src/os/CMakeFiles/cruz_os.dir/netstack.cc.o" "gcc" "src/os/CMakeFiles/cruz_os.dir/netstack.cc.o.d"
  "/root/repo/src/os/node.cc" "src/os/CMakeFiles/cruz_os.dir/node.cc.o" "gcc" "src/os/CMakeFiles/cruz_os.dir/node.cc.o.d"
  "/root/repo/src/os/os.cc" "src/os/CMakeFiles/cruz_os.dir/os.cc.o" "gcc" "src/os/CMakeFiles/cruz_os.dir/os.cc.o.d"
  "/root/repo/src/os/pipe.cc" "src/os/CMakeFiles/cruz_os.dir/pipe.cc.o" "gcc" "src/os/CMakeFiles/cruz_os.dir/pipe.cc.o.d"
  "/root/repo/src/os/process.cc" "src/os/CMakeFiles/cruz_os.dir/process.cc.o" "gcc" "src/os/CMakeFiles/cruz_os.dir/process.cc.o.d"
  "/root/repo/src/os/sysv_ipc.cc" "src/os/CMakeFiles/cruz_os.dir/sysv_ipc.cc.o" "gcc" "src/os/CMakeFiles/cruz_os.dir/sysv_ipc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cruz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cruz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cruz_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/cruz_tcp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
