file(REMOVE_RECURSE
  "libcruz_os.a"
)
