# Empty compiler generated dependencies file for cruz_coord.
# This may be replaced when dependencies are built.
