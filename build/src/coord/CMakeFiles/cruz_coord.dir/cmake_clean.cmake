file(REMOVE_RECURSE
  "CMakeFiles/cruz_coord.dir/agent.cc.o"
  "CMakeFiles/cruz_coord.dir/agent.cc.o.d"
  "CMakeFiles/cruz_coord.dir/coordinator.cc.o"
  "CMakeFiles/cruz_coord.dir/coordinator.cc.o.d"
  "CMakeFiles/cruz_coord.dir/message.cc.o"
  "CMakeFiles/cruz_coord.dir/message.cc.o.d"
  "libcruz_coord.a"
  "libcruz_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cruz_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
