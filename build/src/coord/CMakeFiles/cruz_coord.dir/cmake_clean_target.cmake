file(REMOVE_RECURSE
  "libcruz_coord.a"
)
