file(REMOVE_RECURSE
  "CMakeFiles/cruz.dir/cluster.cc.o"
  "CMakeFiles/cruz.dir/cluster.cc.o.d"
  "CMakeFiles/cruz.dir/scheduler.cc.o"
  "CMakeFiles/cruz.dir/scheduler.cc.o.d"
  "libcruz.a"
  "libcruz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cruz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
