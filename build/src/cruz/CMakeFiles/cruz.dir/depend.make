# Empty dependencies file for cruz.
# This may be replaced when dependencies are built.
