file(REMOVE_RECURSE
  "libcruz.a"
)
