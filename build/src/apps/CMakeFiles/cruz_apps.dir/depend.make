# Empty dependencies file for cruz_apps.
# This may be replaced when dependencies are built.
