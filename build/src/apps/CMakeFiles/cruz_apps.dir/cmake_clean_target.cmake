file(REMOVE_RECURSE
  "libcruz_apps.a"
)
