
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/collectives.cc" "src/apps/CMakeFiles/cruz_apps.dir/collectives.cc.o" "gcc" "src/apps/CMakeFiles/cruz_apps.dir/collectives.cc.o.d"
  "/root/repo/src/apps/kvstore.cc" "src/apps/CMakeFiles/cruz_apps.dir/kvstore.cc.o" "gcc" "src/apps/CMakeFiles/cruz_apps.dir/kvstore.cc.o.d"
  "/root/repo/src/apps/minimsg.cc" "src/apps/CMakeFiles/cruz_apps.dir/minimsg.cc.o" "gcc" "src/apps/CMakeFiles/cruz_apps.dir/minimsg.cc.o.d"
  "/root/repo/src/apps/programs.cc" "src/apps/CMakeFiles/cruz_apps.dir/programs.cc.o" "gcc" "src/apps/CMakeFiles/cruz_apps.dir/programs.cc.o.d"
  "/root/repo/src/apps/slm.cc" "src/apps/CMakeFiles/cruz_apps.dir/slm.cc.o" "gcc" "src/apps/CMakeFiles/cruz_apps.dir/slm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/cruz_os.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/cruz_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cruz_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cruz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cruz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
