file(REMOVE_RECURSE
  "CMakeFiles/cruz_apps.dir/collectives.cc.o"
  "CMakeFiles/cruz_apps.dir/collectives.cc.o.d"
  "CMakeFiles/cruz_apps.dir/kvstore.cc.o"
  "CMakeFiles/cruz_apps.dir/kvstore.cc.o.d"
  "CMakeFiles/cruz_apps.dir/minimsg.cc.o"
  "CMakeFiles/cruz_apps.dir/minimsg.cc.o.d"
  "CMakeFiles/cruz_apps.dir/programs.cc.o"
  "CMakeFiles/cruz_apps.dir/programs.cc.o.d"
  "CMakeFiles/cruz_apps.dir/slm.cc.o"
  "CMakeFiles/cruz_apps.dir/slm.cc.o.d"
  "libcruz_apps.a"
  "libcruz_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cruz_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
