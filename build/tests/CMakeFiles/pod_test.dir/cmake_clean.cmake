file(REMOVE_RECURSE
  "CMakeFiles/pod_test.dir/pod_test.cc.o"
  "CMakeFiles/pod_test.dir/pod_test.cc.o.d"
  "pod_test"
  "pod_test.pdb"
  "pod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
