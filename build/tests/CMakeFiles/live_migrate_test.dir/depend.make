# Empty dependencies file for live_migrate_test.
# This may be replaced when dependencies are built.
