file(REMOVE_RECURSE
  "CMakeFiles/live_migrate_test.dir/live_migrate_test.cc.o"
  "CMakeFiles/live_migrate_test.dir/live_migrate_test.cc.o.d"
  "live_migrate_test"
  "live_migrate_test.pdb"
  "live_migrate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_migrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
