file(REMOVE_RECURSE
  "CMakeFiles/tcp_checkpoint_test.dir/tcp_checkpoint_test.cc.o"
  "CMakeFiles/tcp_checkpoint_test.dir/tcp_checkpoint_test.cc.o.d"
  "tcp_checkpoint_test"
  "tcp_checkpoint_test.pdb"
  "tcp_checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
