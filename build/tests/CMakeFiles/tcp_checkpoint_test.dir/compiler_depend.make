# Empty compiler generated dependencies file for tcp_checkpoint_test.
# This may be replaced when dependencies are built.
