file(REMOVE_RECURSE
  "CMakeFiles/coord_edge_test.dir/coord_edge_test.cc.o"
  "CMakeFiles/coord_edge_test.dir/coord_edge_test.cc.o.d"
  "coord_edge_test"
  "coord_edge_test.pdb"
  "coord_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coord_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
