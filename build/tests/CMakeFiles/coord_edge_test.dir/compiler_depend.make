# Empty compiler generated dependencies file for coord_edge_test.
# This may be replaced when dependencies are built.
