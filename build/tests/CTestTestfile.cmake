# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/pod_test[1]_include.cmake")
include("/root/repo/build/tests/ckpt_test[1]_include.cmake")
include("/root/repo/build/tests/coord_test[1]_include.cmake")
include("/root/repo/build/tests/slm_test[1]_include.cmake")
include("/root/repo/build/tests/netstack_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/coord_edge_test[1]_include.cmake")
include("/root/repo/build/tests/live_migrate_test[1]_include.cmake")
