#include "net/packet.h"

namespace cruz::net {

std::uint16_t InternetChecksum(ByteSpan data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

Bytes EthernetFrame::Encode() const {
  ByteWriter w(WireSize());
  EncodeHeader(w, dst, src, ether_type);
  w.PutBytes(payload);
  return w.Take();
}

void EthernetFrame::EncodeHeader(ByteWriter& w, MacAddress dst,
                                 MacAddress src, EtherType ether_type) {
  w.PutBytes(dst.octets.data(), 6);
  w.PutBytes(src.octets.data(), 6);
  w.PutU16(static_cast<std::uint16_t>(ether_type));
}

EthernetFrame Decode_(ByteReader& r) {
  EthernetFrame f;
  ByteSpan dst = r.GetSpan(6);
  std::copy(dst.begin(), dst.end(), f.dst.octets.begin());
  ByteSpan src = r.GetSpan(6);
  std::copy(src.begin(), src.end(), f.src.octets.begin());
  std::uint16_t et = r.GetU16();
  if (et != static_cast<std::uint16_t>(EtherType::kIpv4) &&
      et != static_cast<std::uint16_t>(EtherType::kArp)) {
    throw CodecError("unknown EtherType " + std::to_string(et));
  }
  f.ether_type = static_cast<EtherType>(et);
  f.payload = r.GetBytes(r.remaining());
  return f;
}

EthernetFrame EthernetFrame::Decode(ByteSpan wire) {
  ByteReader r(wire);
  return Decode_(r);
}

Bytes ArpPacket::Encode() const {
  ByteWriter w(28);
  w.PutU16(1);       // hardware type: Ethernet
  w.PutU16(0x0800);  // protocol type: IPv4
  w.PutU8(6);        // hardware size
  w.PutU8(4);        // protocol size
  w.PutU16(static_cast<std::uint16_t>(op));
  w.PutBytes(sender_mac.octets.data(), 6);
  w.PutU32(sender_ip.value);
  w.PutBytes(target_mac.octets.data(), 6);
  w.PutU32(target_ip.value);
  return w.Take();
}

ArpPacket ArpPacket::Decode(ByteSpan wire) {
  ByteReader r(wire);
  ArpPacket p;
  if (r.GetU16() != 1 || r.GetU16() != 0x0800 || r.GetU8() != 6 ||
      r.GetU8() != 4) {
    throw CodecError("unsupported ARP hardware/protocol type");
  }
  std::uint16_t op = r.GetU16();
  if (op != 1 && op != 2) {
    throw CodecError("unknown ARP op " + std::to_string(op));
  }
  p.op = static_cast<ArpOp>(op);
  ByteSpan smac = r.GetSpan(6);
  std::copy(smac.begin(), smac.end(), p.sender_mac.octets.begin());
  p.sender_ip.value = r.GetU32();
  ByteSpan tmac = r.GetSpan(6);
  std::copy(tmac.begin(), tmac.end(), p.target_mac.octets.begin());
  p.target_ip.value = r.GetU32();
  return p;
}

Bytes Ipv4Packet::Encode() const {
  ByteWriter w(WireSize());
  EncodeInto(w);
  return w.Take();
}

void Ipv4Packet::EncodeInto(ByteWriter& w) const {
  const std::size_t header_start = w.size();
  w.PutU8(0x45);  // version 4, IHL 5
  w.PutU8(0);     // DSCP/ECN
  w.PutU16(static_cast<std::uint16_t>(kIpv4HeaderSize + payload.size()));
  w.PutU16(0);  // identification (fragmentation unsupported)
  w.PutU16(0x4000);  // flags: DF
  w.PutU8(ttl);
  w.PutU8(static_cast<std::uint8_t>(proto));
  std::size_t checksum_offset = w.size();
  w.PutU16(0);  // checksum placeholder
  w.PutU32(src.value);
  w.PutU32(dst.value);
  std::uint16_t csum = InternetChecksum(
      ByteSpan(w.data().data() + header_start, kIpv4HeaderSize));
  w.PatchU16(checksum_offset, csum);
  w.PutBytes(payload);
}

Ipv4Packet Ipv4Packet::Decode(ByteSpan wire) {
  if (wire.size() < kIpv4HeaderSize) {
    throw CodecError("IPv4 packet shorter than header");
  }
  if (InternetChecksum(wire.subspan(0, kIpv4HeaderSize)) != 0) {
    throw CodecError("IPv4 header checksum mismatch");
  }
  ByteReader r(wire);
  Ipv4Packet p;
  std::uint8_t vihl = r.GetU8();
  if (vihl != 0x45) {
    throw CodecError("unsupported IPv4 version/IHL");
  }
  r.Skip(1);  // DSCP/ECN
  std::uint16_t total_len = r.GetU16();
  if (total_len < kIpv4HeaderSize || total_len > wire.size()) {
    throw CodecError("IPv4 total length out of range");
  }
  r.Skip(2);  // identification
  r.Skip(2);  // flags/fragment offset
  p.ttl = r.GetU8();
  std::uint8_t proto = r.GetU8();
  if (proto != static_cast<std::uint8_t>(IpProto::kTcp) &&
      proto != static_cast<std::uint8_t>(IpProto::kUdp)) {
    throw CodecError("unsupported IP protocol " + std::to_string(proto));
  }
  p.proto = static_cast<IpProto>(proto);
  r.Skip(2);  // checksum (verified above)
  p.src.value = r.GetU32();
  p.dst.value = r.GetU32();
  p.payload = r.GetBytes(total_len - kIpv4HeaderSize);
  return p;
}

Bytes UdpDatagram::Encode() const {
  ByteWriter w(kUdpHeaderSize + payload.size());
  w.PutU16(src_port);
  w.PutU16(dst_port);
  w.PutU16(static_cast<std::uint16_t>(kUdpHeaderSize + payload.size()));
  w.PutU16(0);  // checksum optional in IPv4 UDP
  w.PutBytes(payload);
  return w.Take();
}

UdpDatagram UdpDatagram::Decode(ByteSpan wire) {
  ByteReader r(wire);
  UdpDatagram d;
  d.src_port = r.GetU16();
  d.dst_port = r.GetU16();
  std::uint16_t len = r.GetU16();
  if (len < kUdpHeaderSize || len > wire.size()) {
    throw CodecError("UDP length out of range");
  }
  r.Skip(2);  // checksum
  d.payload = r.GetBytes(len - kUdpHeaderSize);
  return d;
}

}  // namespace cruz::net
