#include "net/ethernet_switch.h"

#include "common/error.h"
#include "common/log.h"
#include "net/nic.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace cruz::net {

EthernetSwitch::EthernetSwitch(sim::Simulator& sim, LinkParams default_link,
                               DurationNs forwarding_latency)
    : sim_(sim),
      default_link_(default_link),
      forwarding_latency_(forwarding_latency),
      rng_(sim.rng().Fork()) {}

std::size_t EthernetSwitch::AttachNic(Nic* nic) {
  CRUZ_CHECK(nic != nullptr, "AttachNic(nullptr)");
  // Reuse a detached slot if one exists.
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i] == nullptr) {
      ports_[i] = nic;
      links_[i] = default_link_;
      nic->AttachTo(this, i);
      return i;
    }
  }
  ports_.push_back(nic);
  links_.push_back(default_link_);
  std::size_t port = ports_.size() - 1;
  nic->AttachTo(this, port);
  return port;
}

void EthernetSwitch::DetachNic(Nic* nic) {
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i] == nic) {
      ports_[i] = nullptr;
      // Purge learned MACs pointing at this port; otherwise frames for a
      // migrated MAC would black-hole until relearned.
      for (auto it = mac_table_.begin(); it != mac_table_.end();) {
        if (it->second == i) {
          it = mac_table_.erase(it);
        } else {
          ++it;
        }
      }
      return;
    }
  }
}

void EthernetSwitch::SetLinkParams(std::size_t port, LinkParams params) {
  CRUZ_CHECK(port < links_.size(), "SetLinkParams: bad port");
  links_[port] = params;
}

const LinkParams& EthernetSwitch::link_params(std::size_t port) const {
  CRUZ_CHECK(port < links_.size(), "link_params: bad port");
  return links_[port];
}

void EthernetSwitch::Ingress(std::size_t port, Bytes wire) {
  CRUZ_CHECK(port < ports_.size(), "Ingress: bad port");
  if (wire.size() < kEthernetHeaderSize) {
    ++dropped_frames_;
    RecycleFrameBuffer(std::move(wire));
    return;
  }
  // Random loss on the ingress link (models cable/NIC drops).
  if (links_[port].loss_probability > 0.0 &&
      rng_.NextBernoulli(links_[port].loss_probability)) {
    ++dropped_frames_;
    RecycleFrameBuffer(std::move(wire));
    return;
  }
  if (observer_) observer_(port, wire);

  MacAddress dst, src;
  std::copy(wire.begin(), wire.begin() + 6, dst.octets.begin());
  std::copy(wire.begin() + 6, wire.begin() + 12, src.octets.begin());
  if (!src.IsBroadcast() && !src.IsZero()) {
    mac_table_[src] = port;  // learn
  }

  if (!dst.IsBroadcast()) {
    auto it = mac_table_.find(dst);
    if (it != mac_table_.end() && ports_[it->second] != nullptr) {
      if (it->second != port) {
        ++forwarded_frames_;
        // Known unicast — the common case — moves the ingress buffer
        // straight to the egress event, no copy.
        DeliverTo(it->second, std::move(wire));
      } else {
        // Frame destined to the ingress port itself: hairpin suppressed,
        // as on a real switch.
        RecycleFrameBuffer(std::move(wire));
      }
      return;
    }
  }
  // Broadcast or unknown unicast: flood all ports except ingress.
  ++flooded_frames_;
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    if (p != port && ports_[p] != nullptr) {
      Bytes copy = AcquireFrameBuffer();
      copy.assign(wire.begin(), wire.end());
      DeliverTo(p, std::move(copy));
    }
  }
  RecycleFrameBuffer(std::move(wire));
}

void EthernetSwitch::DeliverTo(std::size_t port, Bytes frame) {
  // Egress link loss.
  if (links_[port].loss_probability > 0.0 &&
      rng_.NextBernoulli(links_[port].loss_probability)) {
    ++dropped_frames_;
    RecycleFrameBuffer(std::move(frame));
    return;
  }
  DurationNs delay = forwarding_latency_ + links_[port].propagation_delay +
                     TransmitTimeNs(frame.size(), links_[port].bits_per_second);
  Nic* nic = ports_[port];
  sim_.Schedule(delay, [this, port, nic, frame = std::move(frame)]() mutable {
    // The port may have been reassigned while the frame was in flight
    // (pod migration detaches/attaches NICs); deliver only if unchanged.
    if (port < ports_.size() && ports_[port] == nic && nic != nullptr) {
      nic->DeliverFromWire(frame);
    }
    RecycleFrameBuffer(std::move(frame));
  });
}

Bytes EthernetSwitch::AcquireFrameBuffer() {
  if (frame_pool_.empty()) return Bytes{};
  Bytes buf = std::move(frame_pool_.back());
  frame_pool_.pop_back();
  buf.clear();
  return buf;
}

void EthernetSwitch::RecycleFrameBuffer(Bytes frame) {
  // Cap both the pool depth and the retained capacity; Ethernet frames
  // are bounded, so anything larger came from an unrelated path.
  constexpr std::size_t kPoolCap = 128;
  constexpr std::size_t kMaxRetainedCapacity = 4096;
  if (frame_pool_.size() >= kPoolCap ||
      frame.capacity() == 0 || frame.capacity() > kMaxRetainedCapacity) {
    return;
  }
  frame_pool_.push_back(std::move(frame));
}

}  // namespace cruz::net
