#include "net/nic.h"

#include <algorithm>

#include "common/log.h"
#include "net/ethernet_switch.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace cruz::net {

Nic::Nic(sim::Simulator& sim, MacAddress primary_mac, std::string name)
    : sim_(sim), primary_mac_(primary_mac), name_(std::move(name)) {}

void Nic::Transmit(Bytes wire) {
  if (!attached()) {
    CRUZ_WARN("nic") << name_ << ": transmit while detached, frame dropped";
    return;
  }
  if (wire.size() > kEthernetMtu + kEthernetHeaderSize) {
    CRUZ_WARN("nic") << name_ << ": oversized frame (" << wire.size()
                     << " bytes) dropped";
    return;
  }
  const LinkParams& link = switch_->link_params(port_);
  // Serialization starts when the link becomes free; frames depart in order.
  TimeNs start = std::max(sim_.Now(), tx_busy_until_);
  DurationNs serialize = TransmitTimeNs(wire.size(), link.bits_per_second);
  tx_busy_until_ = start + serialize;
  ++tx_frames_;
  tx_bytes_ += wire.size();
  EthernetSwitch* sw = switch_;
  std::size_t port = port_;
  sim_.ScheduleAt(tx_busy_until_,
                  [sw, port, frame = std::move(wire)]() mutable {
                    sw->Ingress(port, std::move(frame));
                  });
}

Bytes Nic::AcquireFrameBuffer() {
  return attached() ? switch_->AcquireFrameBuffer() : Bytes{};
}

void Nic::DeliverFromWire(ByteSpan wire) {
  // The destination MAC is the first 6 octets; filter without a full parse.
  if (wire.size() < kEthernetHeaderSize) return;
  MacAddress dst;
  std::copy(wire.begin(), wire.begin() + 6, dst.octets.begin());
  if (!promiscuous_ && !dst.IsBroadcast() && !HasMacFilter(dst)) {
    ++filtered_frames_;
    return;
  }
  ++rx_frames_;
  rx_bytes_ += wire.size();
  if (handler_) handler_(wire);
}

}  // namespace cruz::net
