// Network address value types: Ethernet MAC, IPv4 address, and IPv4
// socket endpoint (address + port).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace cruz::net {

struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  auto operator<=>(const MacAddress&) const = default;

  bool IsBroadcast() const {
    for (auto o : octets)
      if (o != 0xFF) return false;
    return true;
  }
  bool IsZero() const {
    for (auto o : octets)
      if (o != 0) return false;
    return true;
  }

  std::string ToString() const;

  static MacAddress Broadcast() {
    return MacAddress{{{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}}};
  }
  // Locally-administered unicast MAC derived from a 32-bit id.
  static MacAddress FromId(std::uint32_t id);
  // Parses "aa:bb:cc:dd:ee:ff"; throws CodecError on malformed input.
  static MacAddress Parse(const std::string& s);
};

struct Ipv4Address {
  std::uint32_t value = 0;  // host byte order

  auto operator<=>(const Ipv4Address&) const = default;

  bool IsZero() const { return value == 0; }
  bool IsBroadcast() const { return value == 0xFFFFFFFFu; }

  std::string ToString() const;

  static Ipv4Address FromOctets(std::uint8_t a, std::uint8_t b,
                                std::uint8_t c, std::uint8_t d) {
    return Ipv4Address{(std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
                       (std::uint32_t(c) << 8) | std::uint32_t(d)};
  }
  // Parses dotted-quad "10.0.0.1"; throws CodecError on malformed input.
  static Ipv4Address Parse(const std::string& s);

  // True if `other` is on the same subnet under `mask`.
  bool SameSubnet(Ipv4Address other, Ipv4Address mask) const {
    return (value & mask.value) == (other.value & mask.value);
  }
};

// The conventional "any" address (0.0.0.0), used by bind().
inline constexpr Ipv4Address kAnyAddress{0};

struct Endpoint {
  Ipv4Address ip;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;

  std::string ToString() const;
};

// A TCP connection identity (the classic 4-tuple).
struct FourTuple {
  Endpoint local;
  Endpoint remote;

  auto operator<=>(const FourTuple&) const = default;

  FourTuple Reversed() const { return FourTuple{remote, local}; }
  std::string ToString() const;
};

}  // namespace cruz::net

namespace std {
template <>
struct hash<cruz::net::MacAddress> {
  size_t operator()(const cruz::net::MacAddress& m) const {
    std::uint64_t v = 0;
    for (auto o : m.octets) v = (v << 8) | o;
    return std::hash<std::uint64_t>()(v);
  }
};
template <>
struct hash<cruz::net::Ipv4Address> {
  size_t operator()(const cruz::net::Ipv4Address& a) const {
    return std::hash<std::uint32_t>()(a.value);
  }
};
template <>
struct hash<cruz::net::Endpoint> {
  size_t operator()(const cruz::net::Endpoint& e) const {
    return std::hash<std::uint64_t>()(
        (std::uint64_t(e.ip.value) << 16) | e.port);
  }
};
template <>
struct hash<cruz::net::FourTuple> {
  size_t operator()(const cruz::net::FourTuple& t) const {
    std::size_t h1 = std::hash<cruz::net::Endpoint>()(t.local);
    std::size_t h2 = std::hash<cruz::net::Endpoint>()(t.remote);
    return h1 ^ (h2 * 0x9E3779B97F4A7C15ull);
  }
};
}  // namespace std
