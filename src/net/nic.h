// Simulated Ethernet NIC.
//
// A Nic is attached to one EthernetSwitch port. It owns a primary
// (factory-burned) MAC address plus an arbitrary set of additional unicast
// filters — this models hardware that can listen on multiple MAC addresses,
// which is what lets a pod VIF carry its own migratable MAC (paper §4.2).
// When the hardware cannot do that, the stack instead enables promiscuous
// mode or falls back to the shared-MAC + gratuitous-ARP scheme.
//
// Transmission models serialization delay (frame bytes over the link rate)
// with an output queue: frames queued while the link is busy depart
// back-to-back, in order.
#pragma once

#include <functional>
#include <string>
#include <unordered_set>

#include "common/bytes.h"
#include "common/units.h"
#include "net/address.h"

namespace cruz::sim {
class Simulator;
}

namespace cruz::net {

class EthernetSwitch;

class Nic {
 public:
  using FrameHandler = std::function<void(ByteSpan wire)>;

  Nic(sim::Simulator& sim, MacAddress primary_mac, std::string name);

  const std::string& name() const { return name_; }
  MacAddress primary_mac() const { return primary_mac_; }

  // --- address filtering -------------------------------------------------
  void AddMacFilter(MacAddress mac) { extra_macs_.insert(mac); }
  void RemoveMacFilter(MacAddress mac) { extra_macs_.erase(mac); }
  bool HasMacFilter(MacAddress mac) const {
    return mac == primary_mac_ || extra_macs_.count(mac) != 0;
  }
  // True if the hardware supports programming additional unicast MAC
  // filters (configurable per-NIC to exercise both migration schemes).
  bool supports_multiple_macs() const { return supports_multiple_macs_; }
  void set_supports_multiple_macs(bool v) { supports_multiple_macs_ = v; }

  void set_promiscuous(bool v) { promiscuous_ = v; }
  bool promiscuous() const { return promiscuous_; }

  // --- data path ----------------------------------------------------------
  // Queues an encoded frame for transmission. Frames exceeding the MTU (plus
  // Ethernet header) are dropped, as real hardware would.
  void Transmit(Bytes wire);

  // Hands out a recycled frame buffer from the attached switch's pool
  // (empty when detached). The stack encodes into it and passes it back
  // through Transmit; after delivery the buffer returns to the pool.
  Bytes AcquireFrameBuffer();

  // Called by the switch when a frame arrives at this port. Applies MAC
  // filtering, then hands the frame to the receive handler.
  void DeliverFromWire(ByteSpan wire);

  void set_receive_handler(FrameHandler handler) {
    handler_ = std::move(handler);
  }

  // Wiring (called by EthernetSwitch::AttachNic).
  void AttachTo(EthernetSwitch* sw, std::size_t port) {
    switch_ = sw;
    port_ = port;
  }
  bool attached() const { return switch_ != nullptr; }

  // --- stats ---------------------------------------------------------------
  std::uint64_t tx_frames() const { return tx_frames_; }
  std::uint64_t rx_frames() const { return rx_frames_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }
  std::uint64_t filtered_frames() const { return filtered_frames_; }

 private:
  sim::Simulator& sim_;
  MacAddress primary_mac_;
  std::string name_;
  std::unordered_set<MacAddress> extra_macs_;
  bool promiscuous_ = false;
  bool supports_multiple_macs_ = true;

  EthernetSwitch* switch_ = nullptr;
  std::size_t port_ = 0;
  TimeNs tx_busy_until_ = 0;

  FrameHandler handler_;

  std::uint64_t tx_frames_ = 0;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t filtered_frames_ = 0;
};

}  // namespace cruz::net
