#include "net/address.h"

#include <cstdio>

#include "common/error.h"

namespace cruz::net {

std::string MacAddress::ToString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

MacAddress MacAddress::FromId(std::uint32_t id) {
  // 0x02 prefix marks a locally administered unicast address.
  return MacAddress{{{0x02, 0x00,
                      static_cast<std::uint8_t>(id >> 24),
                      static_cast<std::uint8_t>(id >> 16),
                      static_cast<std::uint8_t>(id >> 8),
                      static_cast<std::uint8_t>(id)}}};
}

MacAddress MacAddress::Parse(const std::string& s) {
  MacAddress m;
  unsigned v[6];
  if (std::sscanf(s.c_str(), "%x:%x:%x:%x:%x:%x", &v[0], &v[1], &v[2], &v[3],
                  &v[4], &v[5]) != 6) {
    throw CodecError("malformed MAC address: " + s);
  }
  for (int i = 0; i < 6; ++i) {
    if (v[i] > 0xFF) throw CodecError("malformed MAC address: " + s);
    m.octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v[i]);
  }
  return m;
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xFF,
                (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

Ipv4Address Ipv4Address::Parse(const std::string& s) {
  unsigned a, b, c, d;
  char tail;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    throw CodecError("malformed IPv4 address: " + s);
  }
  return FromOctets(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                    static_cast<std::uint8_t>(c),
                    static_cast<std::uint8_t>(d));
}

std::string Endpoint::ToString() const {
  return ip.ToString() + ":" + std::to_string(port);
}

std::string FourTuple::ToString() const {
  return local.ToString() + "<->" + remote.ToString();
}

}  // namespace cruz::net
