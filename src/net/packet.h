// Wire formats for the simulated network: Ethernet, ARP, IPv4, UDP.
//
// Frames really are serialized to bytes on transmit and parsed on receive;
// the simulation moves byte buffers, not object graphs, so header sizes,
// truncation handling, and protocol demux behave like a real stack. The TCP
// segment codec lives in src/tcp/segment.h.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "net/address.h"

namespace cruz::net {

// EtherType values (IEEE registry subset).
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

// IPv4 protocol numbers (IANA subset).
enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

constexpr std::size_t kEthernetHeaderSize = 14;
constexpr std::size_t kIpv4HeaderSize = 20;
constexpr std::size_t kUdpHeaderSize = 8;
// Ethernet payload MTU; the simulated e1000 uses the standard 1500.
constexpr std::size_t kEthernetMtu = 1500;

struct EthernetFrame {
  MacAddress dst;
  MacAddress src;
  EtherType ether_type = EtherType::kIpv4;
  Bytes payload;

  Bytes Encode() const;
  static EthernetFrame Decode(ByteSpan wire);

  // Appends just the 14-byte header to `w`. The transmit hot path streams
  // the L3 packet directly after it into one buffer, skipping the
  // intermediate per-layer payload copy that Encode() implies.
  static void EncodeHeader(ByteWriter& w, MacAddress dst, MacAddress src,
                           EtherType ether_type);

  std::size_t WireSize() const { return kEthernetHeaderSize + payload.size(); }
};

enum class ArpOp : std::uint16_t {
  kRequest = 1,
  kReply = 2,
};

struct ArpPacket {
  ArpOp op = ArpOp::kRequest;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;  // ignored in requests
  Ipv4Address target_ip;

  Bytes Encode() const;
  static ArpPacket Decode(ByteSpan wire);

  // A gratuitous ARP announces (ip, mac) to update caches after migration.
  bool IsGratuitous() const { return sender_ip == target_ip; }
};

struct Ipv4Packet {
  Ipv4Address src;
  Ipv4Address dst;
  IpProto proto = IpProto::kUdp;
  std::uint8_t ttl = 64;
  Bytes payload;

  Bytes Encode() const;
  // Appends the encoded packet (header + payload) to `w`; Encode() is
  // this on a fresh buffer.
  void EncodeInto(ByteWriter& w) const;
  static Ipv4Packet Decode(ByteSpan wire);

  std::size_t WireSize() const { return kIpv4HeaderSize + payload.size(); }
};

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Bytes payload;

  Bytes Encode() const;
  static UdpDatagram Decode(ByteSpan wire);
};

// Internet checksum (RFC 1071) over `data`, used by the IPv4 header.
std::uint16_t InternetChecksum(ByteSpan data);

}  // namespace cruz::net
