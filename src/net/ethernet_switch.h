// Simulated store-and-forward Ethernet switch with MAC learning.
//
// All nodes of the cluster hang off one switch (the paper's testbed is a
// single gigabit switch). Unicast frames are forwarded to the learned port;
// unknown-unicast and broadcast frames are flooded. Each link has a
// configurable rate, propagation delay and random loss probability, and the
// switch adds a fixed forwarding latency. Loss is drawn from the switch's
// own forked RNG stream for determinism.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/units.h"
#include "net/address.h"

namespace cruz::sim {
class Simulator;
}

namespace cruz::net {

class Nic;

struct LinkParams {
  std::uint64_t bits_per_second = 1'000'000'000;  // gigabit
  DurationNs propagation_delay = 5 * kMicrosecond;
  double loss_probability = 0.0;
};

class EthernetSwitch {
 public:
  // An observer sees every frame accepted by the switch (after loss),
  // before forwarding. Used by tests and the message-complexity bench.
  using FrameObserver =
      std::function<void(std::size_t ingress_port, ByteSpan wire)>;

  EthernetSwitch(sim::Simulator& sim, LinkParams default_link,
                 DurationNs forwarding_latency = 2 * kMicrosecond);

  // Attaches a NIC; returns its port number.
  std::size_t AttachNic(Nic* nic);
  void DetachNic(Nic* nic);

  void SetLinkParams(std::size_t port, LinkParams params);
  const LinkParams& link_params(std::size_t port) const;

  // Entry point used by Nic::Transmit after serialization delay.
  void Ingress(std::size_t port, Bytes wire);

  void set_observer(FrameObserver obs) { observer_ = std::move(obs); }

  // Frame-buffer pool: per-packet byte buffers cycle switch -> stack
  // encode -> transmit -> delivery -> back to the pool, so a steady
  // packet workload reuses warm capacity instead of churning the
  // allocator. Purely an allocation optimization — frame contents and
  // delivery order are unaffected.
  Bytes AcquireFrameBuffer();
  void RecycleFrameBuffer(Bytes frame);

  std::uint64_t forwarded_frames() const { return forwarded_frames_; }
  std::uint64_t flooded_frames() const { return flooded_frames_; }
  std::uint64_t dropped_frames() const { return dropped_frames_; }

 private:
  // Takes ownership of the frame; unicast forwards move the ingress
  // buffer straight through without a copy.
  void DeliverTo(std::size_t port, Bytes frame);

  sim::Simulator& sim_;
  LinkParams default_link_;
  DurationNs forwarding_latency_;
  Rng rng_;

  std::vector<Nic*> ports_;          // nullptr = detached
  std::vector<LinkParams> links_;
  std::unordered_map<MacAddress, std::size_t> mac_table_;

  FrameObserver observer_;

  std::vector<Bytes> frame_pool_;

  std::uint64_t forwarded_frames_ = 0;
  std::uint64_t flooded_frames_ = 0;
  std::uint64_t dropped_frames_ = 0;
};

}  // namespace cruz::net
