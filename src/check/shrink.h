// Delta-debugging minimizer for failing scenarios.
//
// Given a scenario that fails the oracle, the Shrinker searches for a
// smaller one that still fails: it removes fault specs (chunk halves,
// then singles), drops operations, collapses the topology to two nodes,
// and halves the workload size, iterating to a fixpoint. Every candidate
// is re-run through a fresh Explorer, so the result is a genuinely
// reproducing minimal case, emitted as a repro string.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "check/explorer.h"
#include "check/scenario.h"

namespace cruz::check {

struct ShrinkResult {
  Scenario minimal;
  std::size_t runs = 0;  // explorer runs spent (including the final check)
  std::string repro;     // minimal.Encode()
  std::vector<Violation> violations;  // of the minimal scenario
};

class Shrinker {
 public:
  explicit Shrinker(RunOptions options = {}) : options_(options) {}

  // `failing` must fail the oracle under the same RunOptions; the result
  // is the smallest still-failing scenario found within `max_runs`.
  ShrinkResult Shrink(const Scenario& failing, std::size_t max_runs = 200);

 private:
  RunOptions options_;
};

}  // namespace cruz::check
