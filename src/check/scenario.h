// Seed-derived whole-system test scenarios.
//
// FoundationDB-style simulation testing needs the entire run — topology,
// workload, protocol options, operation schedule, and fault plan — to be
// a pure function of one 64-bit seed, so a failure anywhere in a sweep is
// reproducible from a single number. A Scenario is that function's
// output, kept as plain data so the Shrinker can delete parts of it and
// re-run. Encode()/Decode() round-trip a scenario through a one-line,
// self-contained repro string (`cruzrepro1 ...`) that survives being
// pasted into a bug report.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "coord/message.h"

namespace cruz::check {

enum class WorkloadKind : std::uint8_t {
  kStream = 0,    // verified TCP stream (sender -> receiver)
  kKvStore = 1,   // kv server + verifying client
  kCounters = 2,  // two independent CPU counters with a finite target
};

enum class OpKind : std::uint8_t {
  kCheckpoint = 0,        // coordinated generation checkpoint
  kRestart = 1,           // kill pods + restart from newest intact gen
  kMigrate = 2,           // live-migrate one workload pod
  kCoordinatorCrash = 3,  // crash the coordinator mid-checkpoint
};

// One step of the scenario's operation schedule.
struct OpSpec {
  OpKind kind = OpKind::kCheckpoint;
  DurationNs pre_delay = 0;  // workload progress before this op
  bool incremental = false;
  bool copy_on_write = false;
  bool compress = false;
  coord::ProtocolVariant variant = coord::ProtocolVariant::kBlocking;
  // Deterministic per-op randomness for placement choices (restart
  // target nodes, migration target).
  std::uint32_t placement_salt = 0;
};

enum class FaultSpecKind : std::uint8_t {
  kMessageLoss = 0,     // permille = drop probability
  kMessageDup = 1,      // permille = duplication probability
  kMessageDelay = 2,    // permille = probability, extra = max delay (ms)
  kDiskFail = 3,        // node-scoped, extra = count
  kImageCorrupt = 4,    // node-scoped, extra = count
  kAgentCrashOnMsg = 5, // node-scoped, extra = raw coord::MsgType byte
  // Tier-scoped faults (meaningful when Scenario::tiered is set).
  kLocalDiskLoss = 6,   // node-scoped, extra = wipe time (ms)
  kPartnerUnreachable = 7,  // node-scoped: partner writes to/from it skip
  kNetfsOutage = 8,     // permille = start (ms), extra = duration (ms)
  kNoSpace = 9,         // node-scoped, extra = local disk capacity (KiB)
};

struct FaultSpec {
  FaultSpecKind kind = FaultSpecKind::kMessageLoss;
  std::uint32_t node = 0;      // node index (node-scoped kinds)
  std::uint32_t permille = 0;  // probability for channel faults
  std::uint32_t extra = 0;     // delay ms / count / message-type byte
};

struct Scenario {
  std::uint64_t seed = 0;
  std::uint32_t num_nodes = 2;
  WorkloadKind workload = WorkloadKind::kStream;
  // Workload size: stream bytes / kv operations / counter iterations.
  std::uint64_t workload_units = 256 * 1024;
  // Multi-tier checkpoint storage: ops commit to local + partner disks
  // with a background netfs flush, restarts resolve across tiers.
  // Encoded as "tiered=1"; absent = legacy netfs-only (so pre-tier repro
  // strings replay exactly as before).
  bool tiered = false;
  // Hierarchical coordination (DESIGN.md §13): coordinated ops run
  // through a sub-coordinator tree with this per-shard fan-out, and the
  // explorer pads the member list with one pod per extra node so the
  // tree has real shards to drive. Encoded as "fanout=F"; absent = flat
  // (so pre-hierarchy repro strings replay exactly as before).
  std::uint32_t fan_out = 0;
  // Live-migration mode for kMigrate ops: the raw ckpt::MigrateMode value
  // (0 stop-and-copy, 1 pre-copy, 2 post-copy, 3 hybrid). Encoded as
  // "migrate=M"; absent = pre-copy, so pre-post-copy repro strings replay
  // exactly as before.
  std::uint8_t migrate_mode = 1;
  std::vector<OpSpec> ops;
  std::vector<FaultSpec> faults;

  // Human-oriented one-liner ("seed=5 nodes=3 wl=stream ops=3 faults=2").
  std::string Summary() const;
  // Machine round-trippable repro string (see file comment).
  std::string Encode() const;
  static std::optional<Scenario> Decode(const std::string& repro);
};

// Derives a bounded scenario from a seed. Same seed, same scenario.
class ScenarioGenerator {
 public:
  static Scenario FromSeed(std::uint64_t seed);
};

}  // namespace cruz::check
