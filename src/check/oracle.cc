#include "check/oracle.h"

#include <algorithm>
#include <sstream>

#include "ckpt/generation.h"

namespace cruz::check {

namespace {

using obs::TraceEvent;
using obs::TraceQuery;

std::string ArgValue(const TraceEvent& e, const std::string& key) {
  for (const auto& [k, v] : e.attrs.args) {
    if (k == key) return v;
  }
  return {};
}

void Violate(std::vector<Violation>& out, const std::string& invariant,
             std::string detail) {
  out.push_back(Violation{invariant, std::move(detail)});
}

// True for records that ran a coordinated checkpoint (a coordinator
// crash still allocates a generation and may complete the op).
bool IsCheckpointAttempt(const OpRecord& rec) {
  return rec.attempted && (rec.kind == OpKind::kCheckpoint ||
                           rec.kind == OpKind::kCoordinatorCrash);
}

// The workload must finish what it started, without corruption. Catches
// any disturbance that silently kills or damages application state.
void CheckWorkloadIntact(const RunContext& ctx,
                         std::vector<Violation>& out) {
  const char* name = "workload-intact";
  if (!ctx.workload.completed) {
    std::ostringstream d;
    d << "workload did not complete: " << ctx.workload.units << "/"
      << ctx.workload.target << " units";
    Violate(out, name, d.str());
    return;
  }
  if (ctx.workload.mismatches != 0) {
    Violate(out, name,
            "workload saw " + std::to_string(ctx.workload.mismatches) +
                " verification failure(s)");
  }
  if (ctx.workload.target != 0 && ctx.workload.units != ctx.workload.target) {
    std::ostringstream d;
    d << "workload finished at " << ctx.workload.units << " units, expected "
      << ctx.workload.target;
    Violate(out, name, d.str());
  }
}

// Paper §5: consistency comes from dropping pod traffic during the
// coordinated window. Between the last filter install and the first
// resume of a successful checkpoint, no TCP segment may be delivered on
// a workload pod's connection.
void CheckCommSilence(const RunContext& ctx, std::vector<Violation>& out) {
  const char* name = "comm-silence";
  for (const OpRecord& rec : ctx.ops) {
    if (rec.kind != OpKind::kCheckpoint || !rec.result.stats.success) {
      continue;
    }
    std::uint64_t op_id = rec.result.stats.op_id;
    auto installs = ctx.trace->Select(
        TraceQuery::Filter{}.Name("agent.filter.install").Op(op_id));
    auto resumes = ctx.trace->Select(
        TraceQuery::Filter{}.Name("agent.resume").Op(op_id));
    if (installs.size() != rec.members || resumes.size() != rec.members) {
      continue;  // partial window (duplicated/aborted edges): no claim
    }
    TimeNs filters_up = 0;
    TimeNs first_resume = ~TimeNs{0};
    for (const TraceEvent* e : installs)
      filters_up = std::max(filters_up, e->ts);
    for (const TraceEvent* e : resumes)
      first_resume = std::min(first_resume, e->ts);
    if (filters_up >= first_resume) continue;
    std::size_t during = 0;
    for (const TraceEvent& e : ctx.trace->events()) {
      if (e.name != "tcp.rx" || e.ts <= filters_up || e.ts >= first_resume) {
        continue;
      }
      for (const std::string& ip : ctx.member_pod_ips) {
        if (e.attrs.conn.find(ip) != std::string::npos) {
          ++during;
          break;
        }
      }
    }
    if (during > 0) {
      std::ostringstream d;
      d << "op " << op_id << ": " << during
        << " pod TCP segment(s) delivered inside the filter window";
      Violate(out, name, d.str());
    }
  }
}

// A generation manifest commits exactly once per successful epoch, only
// after every agent's save (disk-done), and never for a failed epoch.
void CheckGenCommit(const RunContext& ctx, std::vector<Violation>& out) {
  const char* name = "gen-commit";
  for (const OpRecord& rec : ctx.ops) {
    if (!IsCheckpointAttempt(rec) || rec.allocated_generation == 0) continue;
    std::vector<const TraceEvent*> commits;
    for (const TraceEvent& e : ctx.trace->events()) {
      if (e.name == "ckpt.generation.commit" &&
          ArgValue(e, "gen") == std::to_string(rec.allocated_generation)) {
        commits.push_back(&e);
      }
    }
    std::uint64_t op_id = rec.result.stats.op_id;
    if (rec.result.stats.success) {
      if (commits.size() != 1) {
        std::ostringstream d;
        d << "generation " << rec.allocated_generation << " (op " << op_id
          << ") committed " << commits.size() << " time(s), expected 1";
        Violate(out, name, d.str());
        continue;
      }
      auto saves = ctx.trace->Select(
          TraceQuery::Filter{}.Name("agent.save").Op(op_id));
      if (saves.size() < rec.members) {
        // A committed generation with fewer saves than members means some
        // layer acked without doing the work (e.g. a sub-coordinator that
        // never forwarded to its agents).
        std::ostringstream d;
        d << "generation " << rec.allocated_generation << " (op " << op_id
          << ") committed with only " << saves.size() << " of "
          << rec.members << " agent save(s) on the trace";
        Violate(out, name, d.str());
      } else {
        TimeNs disk_done = 0;
        for (const TraceEvent* e : saves)
          disk_done = std::max(disk_done, e->end_ts());
        if (commits.front()->ts < disk_done) {
          std::ostringstream d;
          d << "generation " << rec.allocated_generation
            << " committed at " << commits.front()->ts
            << " before the last save finished at " << disk_done;
          Violate(out, name, d.str());
        }
      }
    } else if (!commits.empty()) {
      std::ostringstream d;
      d << "generation " << rec.allocated_generation
        << " committed although op " << op_id << " failed";
      Violate(out, name, d.str());
    }
  }
}

// Restart must land on the newest generation that verifies intact —
// never on a damaged newer one, and never fail while an intact
// generation exists (unless an agent genuinely died).
void CheckRestartNewestIntact(const RunContext& ctx,
                              std::vector<Violation>& out) {
  const char* name = "restart-newest-intact";
  for (const OpRecord& rec : ctx.ops) {
    if (rec.kind != OpKind::kRestart || !rec.attempted) continue;
    if (rec.result.stats.success) {
      if (rec.result.generation != rec.newest_intact_before) {
        std::ostringstream d;
        d << "restart used generation " << rec.result.generation
          << " but the newest intact generation was "
          << rec.newest_intact_before;
        Violate(out, name, d.str());
      }
    } else if (!rec.any_agent_crashed && rec.newest_intact_before != 0) {
      std::ostringstream d;
      d << "restart failed (" << rec.result.stats.abort_reason
        << ") although generation " << rec.newest_intact_before
        << " was intact and no agent had crashed";
      Violate(out, name, d.str());
    }
  }
}

// Fig. 2 structure: fencing epochs strictly increase across operations,
// and for blocking stop-the-world checkpoints the freeze phase closes
// before commit opens, with every save inside the freeze.
void CheckProtocolOrder(const RunContext& ctx, std::vector<Violation>& out) {
  const char* name = "protocol-order";
  std::uint64_t last_epoch = 0;
  for (const OpRecord& rec : ctx.ops) {
    if (!rec.attempted || rec.result.stats.epoch == 0) continue;
    if (rec.result.stats.epoch <= last_epoch) {
      std::ostringstream d;
      d << "epoch " << rec.result.stats.epoch
        << " does not exceed the preceding epoch " << last_epoch
        << " (stale coordinator state?)";
      Violate(out, name, d.str());
    }
    last_epoch = std::max(last_epoch, rec.result.stats.epoch);
  }
  for (const OpRecord& rec : ctx.ops) {
    if (rec.kind != OpKind::kCheckpoint || !rec.result.stats.success ||
        rec.copy_on_write ||
        rec.variant != coord::ProtocolVariant::kBlocking) {
      continue;
    }
    std::uint64_t op_id = rec.result.stats.op_id;
    const TraceEvent* op = ctx.trace->First(
        TraceQuery::Filter{}.Name("coord.op.checkpoint").Op(op_id));
    const TraceEvent* freeze = ctx.trace->First(
        TraceQuery::Filter{}.Name("coord.phase.freeze").Op(op_id));
    const TraceEvent* commit = ctx.trace->First(
        TraceQuery::Filter{}.Name("coord.phase.commit").Op(op_id));
    if (op == nullptr || freeze == nullptr || commit == nullptr) {
      Violate(out, name,
              "op " + std::to_string(op_id) +
                  ": missing op/freeze/commit span in the trace");
      continue;
    }
    if (freeze->end_ts() > commit->ts) {
      std::ostringstream d;
      d << "op " << op_id << ": freeze ends at " << freeze->end_ts()
        << " after commit begins at " << commit->ts;
      Violate(out, name, d.str());
    }
    if (!TraceQuery::Within(*freeze, *op) ||
        !TraceQuery::Within(*commit, *op)) {
      Violate(out, name,
              "op " + std::to_string(op_id) +
                  ": phase span extends outside the operation span");
    }
    for (const TraceEvent* save : ctx.trace->Select(
             TraceQuery::Filter{}.Name("agent.save").Op(op_id))) {
      if (!TraceQuery::Within(*save, *freeze)) {
        Violate(out, name,
                "op " + std::to_string(op_id) + ": agent.save of " +
                    save->attrs.agent + " outside the freeze phase");
      }
    }
  }
}

// The <continue> broadcast happens exactly once per member per
// successful op (Fig. 4: the optimized variant must not double-fire the
// early continue under duplicated <comm-disabled> messages).
void CheckContinueExactlyOnce(const RunContext& ctx,
                              std::vector<Violation>& out) {
  const char* name = "continue-exactly-once";
  for (const OpRecord& rec : ctx.ops) {
    if (!IsCheckpointAttempt(rec) || !rec.result.stats.success) continue;
    std::uint64_t op_id = rec.result.stats.op_id;
    std::size_t sends = 0;
    std::size_t retransmits = 0;
    for (const TraceEvent& e : ctx.trace->events()) {
      if (e.attrs.op != op_id || ArgValue(e, "type") != "continue") continue;
      if (e.name == "coord.msg.send") ++sends;
      if (e.name == "coord.retransmit") ++retransmits;
    }
    if (sends - retransmits != rec.members) {
      std::ostringstream d;
      d << "op " << op_id << ": " << sends << " <continue> send(s) with "
        << retransmits << " retransmit(s) for " << rec.members
        << " member(s)";
      Violate(out, name, d.str());
    }
    std::size_t commit_spans = ctx.trace->Count(
        TraceQuery::Filter{}.Name("coord.phase.commit").Op(op_id));
    if (commit_spans != 1) {
      std::ostringstream d;
      d << "op " << op_id << ": " << commit_spans
        << " commit phase span(s), expected 1";
      Violate(out, name, d.str());
    }
  }
}

// Tiered storage (DESIGN.md §11): a restart must succeed whenever every
// image of some committed generation still has at least one intact
// replica on any tier. NewestIntact() resolves across tiers in tiered
// runs, so a nonzero pre-restart sample is exactly that witness — a
// subsequent failure means a replica silently vanished between the
// check and the restore, or the resolver missed a surviving copy.
void CheckReplicaAvailability(const RunContext& ctx,
                              std::vector<Violation>& out) {
  const char* name = "replica-availability";
  if (ctx.scenario == nullptr || !ctx.scenario->tiered) return;
  for (const OpRecord& rec : ctx.ops) {
    if (rec.kind != OpKind::kRestart || !rec.attempted) continue;
    if (rec.result.stats.success || rec.any_agent_crashed ||
        rec.newest_intact_before == 0) {
      continue;
    }
    std::ostringstream d;
    d << "restart failed (" << rec.result.stats.abort_reason
      << ") although every image of generation " << rec.newest_intact_before
      << " had an intact replica on some tier";
    Violate(out, name, d.str());
  }
}

// Abort/discard paths never leak: every file under the generation root
// belongs to a committed generation. In tiered runs the scan covers
// every tier (node disks, partner copies, netfs), not just the netfs.
void CheckNoPartialState(const RunContext& ctx, std::vector<Violation>& out) {
  const char* name = "no-partial-state";
  const bool tiered = ctx.scenario != nullptr && ctx.scenario->tiered;
  ckpt::GenerationStore store(ctx.cluster->fs(), ctx.gen_root);
  if (tiered) store.set_tiered(&ctx.cluster->tiered());
  std::vector<std::uint64_t> committed = store.Committed();
  const std::string prefix = ctx.gen_root + "/gen_";
  std::vector<std::string> files = tiered
                                       ? ctx.cluster->tiered().ListAll(prefix)
                                       : ctx.cluster->fs().List(prefix);
  for (const std::string& path : files) {
    std::uint64_t gen = 0;
    for (std::size_t i = prefix.size();
         i < path.size() && path[i] >= '0' && path[i] <= '9'; ++i) {
      gen = gen * 10 + static_cast<std::uint64_t>(path[i] - '0');
    }
    if (std::find(committed.begin(), committed.end(), gen) ==
        committed.end()) {
      Violate(out, name,
              "file " + path + " belongs to no committed generation");
    }
  }
}

// Migration moves a pod; it must never fork it or lose it. After every
// successful migrate, exactly one node in the cluster hosts the pod —
// two copies (a source that was never released) would split brain the
// application, zero means the pod fell through the cracks.
void CheckMigrationExactlyOneRunningCopy(const RunContext& ctx,
                                         std::vector<Violation>& out) {
  const char* name = "migration-exactly-one-running-copy";
  for (const OpRecord& rec : ctx.ops) {
    if (rec.kind != OpKind::kMigrate || !rec.attempted ||
        !rec.result.stats.success || rec.migrated_pod == os::kNoPod) {
      continue;
    }
    std::size_t copies = 0;
    std::string holders;
    for (std::size_t n = 0; n < ctx.cluster->num_nodes(); ++n) {
      if (ctx.cluster->pods(n).Find(rec.migrated_pod) != nullptr) {
        ++copies;
        if (!holders.empty()) holders += ", ";
        holders += ctx.cluster->node(n).name();
      }
    }
    if (copies != 1) {
      std::ostringstream d;
      d << "migrated pod " << rec.migrated_pod << " exists on " << copies
        << " node(s)" << (copies == 0 ? "" : " (" + holders + ")")
        << ", expected exactly 1";
      Violate(out, name, d.str());
    }
  }
}

// A migration is complete only when the target holds every page. The
// migrator's page accounting must balance, no request may have been
// served after the source released its frozen image, and — decisively —
// no process of the migrated pod may still have missing (demand-paged)
// pages at the end of the run.
void CheckResidentSetComplete(const RunContext& ctx,
                              std::vector<Violation>& out) {
  const char* name = "resident-set-complete";
  for (const OpRecord& rec : ctx.ops) {
    if (rec.kind != OpKind::kMigrate || !rec.attempted ||
        !rec.result.stats.success || rec.migrated_pod == os::kNoPod) {
      continue;
    }
    const ckpt::LiveMigrateStats& m = rec.migrate;
    if (m.pages_resident_at_resume + m.pages_fetched_on_demand +
            m.pages_pushed !=
        m.pages_total) {
      std::ostringstream d;
      d << "pod " << rec.migrated_pod << ": page accounting off: "
        << m.pages_resident_at_resume << " resident + "
        << m.pages_fetched_on_demand << " fetched + " << m.pages_pushed
        << " pushed != " << m.pages_total << " total";
      Violate(out, name, d.str());
    }
    if (m.late_serves != 0) {
      Violate(out, name,
              "pod " + std::to_string(rec.migrated_pod) + ": " +
                  std::to_string(m.late_serves) +
                  " page(s) served after the source released its image");
    }
    for (std::size_t n = 0; n < ctx.cluster->num_nodes(); ++n) {
      os::Os& os = ctx.cluster->node(n).os();
      if (ctx.cluster->pods(n).Find(rec.migrated_pod) == nullptr) continue;
      for (os::Pid pid : os.PodProcesses(rec.migrated_pod)) {
        os::Process* proc = os.FindProcess(pid);
        if (proc == nullptr || !proc->memory().HasMissingPages()) continue;
        std::ostringstream d;
        d << "pod " << rec.migrated_pod << " process " << pid << " on "
          << ctx.cluster->node(n).name() << " still has "
          << proc->memory().missing_pages().size()
          << " missing page(s) after migration reported done";
        Violate(out, name, d.str());
      }
    }
  }
}

}  // namespace

void InvariantOracle::Register(std::string name, CheckFn check) {
  checks_.emplace_back(std::move(name), std::move(check));
}

InvariantOracle InvariantOracle::Defaults() {
  InvariantOracle oracle;
  oracle.Register("workload-intact", CheckWorkloadIntact);
  oracle.Register("comm-silence", CheckCommSilence);
  oracle.Register("gen-commit", CheckGenCommit);
  oracle.Register("restart-newest-intact", CheckRestartNewestIntact);
  oracle.Register("protocol-order", CheckProtocolOrder);
  oracle.Register("continue-exactly-once", CheckContinueExactlyOnce);
  oracle.Register("no-partial-state", CheckNoPartialState);
  oracle.Register("replica-availability", CheckReplicaAvailability);
  oracle.Register("migration-exactly-one-running-copy",
                  CheckMigrationExactlyOneRunningCopy);
  oracle.Register("resident-set-complete", CheckResidentSetComplete);
  return oracle;
}

std::vector<Violation> InvariantOracle::Check(const RunContext& ctx) const {
  std::vector<Violation> violations;
  for (const auto& [name, check] : checks_) {
    check(ctx, violations);
  }
  return violations;
}

std::vector<std::string> InvariantOracle::names() const {
  std::vector<std::string> out;
  for (const auto& [name, check] : checks_) out.push_back(name);
  return out;
}

}  // namespace cruz::check
