// Runs one scenario end to end and judges it with the InvariantOracle.
//
// The Explorer owns the glue between a plain-data Scenario and a live
// Cluster: it builds the topology, spawns the workload, arms the fault
// plan, executes the operation schedule (checkpoints, restarts,
// migrations, coordinator crashes), drains the workload, and hands the
// collected OpRecords plus the trace to the oracle. A Mutation injects
// one deliberate bug into the pipeline — the oracle self-tests use these
// to prove every invariant can actually fail.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "check/scenario.h"

namespace cruz::check {

// Deliberately broken behaviors, one per default invariant.
enum class Mutation : std::uint8_t {
  kNone = 0,
  kAbandonWorkload,          // skip the final drain (workload-intact)
  kSkipDropFilter,           // freeze without filtering (comm-silence)
  kCommitFailedGeneration,   // commit a failed op's generation (gen-commit)
  kRestartBlindLatest,       // restore latest committed, unverified
                             // (restart-newest-intact)
  kWipeCoordinatorJournal,   // lose the intent journal across a crash
                             // (protocol-order: epoch reuse)
  kDuplicateContinue,        // double <continue> broadcast
                             // (continue-exactly-once)
  kLeakPartialImage,         // stray file under the generation root
                             // (no-partial-state)
  kDropLastReplica,          // silently lose every copy of one image after
                             // the pre-restart intact check
                             // (replica-availability; tiered scenarios)
  kShardAckWithoutForward,   // sub-coordinators ack shard requests with
                             // fabricated <shard-done>s, never forwarding
                             // to their agents (gen-commit: a generation
                             // commits with zero agent saves; tiered
                             // hierarchical scenarios)
  kDropPageResponse,         // the migration source accounts residue
                             // pages as delivered without sending them,
                             // so "done" fires with pages still missing
                             // on the target (resident-set-complete)
  kResumeBothSides,          // skip the source-side pod destroy after the
                             // post-copy stop: two running copies
                             // (migration-exactly-one-running-copy)
};

const char* MutationName(Mutation mutation);
// Parses a MutationName() string; kNone for "none", nullopt-like false
// return via the bool for unknown names.
bool MutationFromName(const std::string& name, Mutation& out);

struct RunOptions {
  Mutation mutation = Mutation::kNone;
};

struct RunResult {
  Scenario scenario;
  bool passed = false;
  std::vector<Violation> violations;
  std::string summary;  // one line: scenario + outcome
  // Filled only on failure: the run's trace export (JSONL, feeds
  // cruz_analyze) and the flight-recorder artifact for the violation
  // (bounded pre-fault window + causal slice + repro string).
  std::string trace_jsonl;
  std::string flight_record;
};

class Explorer {
 public:
  explicit Explorer(RunOptions options = {});

  RunResult RunScenario(const Scenario& scenario);
  RunResult RunSeed(std::uint64_t seed) {
    return RunScenario(ScenarioGenerator::FromSeed(seed));
  }

  const InvariantOracle& oracle() const { return oracle_; }

 private:
  RunOptions options_;
  InvariantOracle oracle_;
};

}  // namespace cruz::check
