#include "check/explorer.h"

#include <algorithm>
#include <sstream>

#include "apps/kvstore.h"
#include "apps/programs.h"
#include "ckpt/generation.h"
#include "ckpt/live_migrate.h"
#include "common/error.h"
#include "coord/journal.h"
#include "fault/fault.h"
#include "obs/causal/flight_recorder.h"

namespace cruz::check {

namespace {

constexpr const char* kGenRoot = "/ckpt/explore";
constexpr std::uint16_t kStreamPort = 9100;
constexpr std::uint16_t kKvPort = 9200;

// The two workload pods and how to observe their progress, wherever
// restarts and migrations have placed them.
struct WorkloadDriver {
  WorkloadKind kind = WorkloadKind::kStream;
  std::uint64_t target = 0;
  os::PodId pod_a = os::kNoPod;  // sender / kv server / counter
  os::PodId pod_b = os::kNoPod;  // receiver / kv client / counter
  os::Pid vpid_a = os::kNoPid;
  os::Pid vpid_b = os::kNoPid;
  std::size_t node_a = 0;
  std::size_t node_b = 1;
  std::string ip_a;
  std::string ip_b;
  // Latest observed progress; exit hooks latch the final values because
  // finished processes disappear from the process table.
  std::uint64_t units_a = 0;
  std::uint64_t units_b = 0;
  std::uint64_t mismatches = 0;
  bool exited_a = false;
  bool exited_b = false;

  os::Process* Live(Cluster& c, std::size_t node, os::PodId pod,
                    os::Pid vpid) {
    os::Pid real = c.pods(node).ToRealPid(pod, vpid);
    return real == os::kNoPid ? nullptr : c.node(node).os().FindProcess(real);
  }

  void Sample(Cluster& c) {
    // Mid-migration a process may be demand-paged: reading its memory
    // from outside throws PageFault. Skip the sample; the next tick (or
    // the exit hook) will see the filled-in state.
    try {
      SampleOrFault(c);
    } catch (const os::PageFault&) {
    }
  }

  void SampleOrFault(Cluster& c) {
    switch (kind) {
      case WorkloadKind::kStream:
        if (os::Process* p = Live(c, node_b, pod_b, vpid_b)) {
          apps::StreamStatus s = apps::ReadStreamStatus(*p);
          units_b = s.bytes;
          mismatches = s.mismatches;
        }
        break;
      case WorkloadKind::kKvStore:
        if (os::Process* p = Live(c, node_b, pod_b, vpid_b)) {
          apps::KvClientStatus s = apps::ReadKvClientStatus(*p);
          units_b = s.operations_done;
          mismatches = s.verification_failures;
        }
        break;
      case WorkloadKind::kCounters:
        if (os::Process* p = Live(c, node_a, pod_a, vpid_a)) {
          units_a = apps::ReadCounter(*p);
        }
        if (os::Process* p = Live(c, node_b, pod_b, vpid_b)) {
          units_b = apps::ReadCounter(*p);
        }
        break;
    }
  }

  bool Completed() const {
    switch (kind) {
      case WorkloadKind::kStream:
      case WorkloadKind::kKvStore:
        return exited_b || units_b >= target;
      case WorkloadKind::kCounters:
        return (exited_a || units_a >= target) &&
               (exited_b || units_b >= target);
    }
    return false;
  }

  WorkloadResult Result() const {
    WorkloadResult r;
    r.completed = Completed();
    r.target = target;
    r.units = kind == WorkloadKind::kCounters ? std::min(units_a, units_b)
                                              : units_b;
    r.mismatches = mismatches;
    return r;
  }
};

void SpawnWorkload(Cluster& c, const Scenario& s, WorkloadDriver& w) {
  w.kind = s.workload;
  w.target = s.workload_units;
  switch (s.workload) {
    case WorkloadKind::kStream: {
      w.pod_b = c.CreatePod(w.node_b, "wl-recv");
      net::Ipv4Address rip = c.pods(w.node_b).Find(w.pod_b)->ip;
      w.ip_b = rip.ToString();
      w.vpid_b = c.pods(w.node_b).SpawnInPod(
          w.pod_b, "cruz.stream_receiver", apps::StreamReceiverArgs(
                                               kStreamPort));
      c.sim().RunFor(5 * kMillisecond);
      w.pod_a = c.CreatePod(w.node_a, "wl-send");
      w.ip_a = c.pods(w.node_a).Find(w.pod_a)->ip.ToString();
      w.vpid_a = c.pods(w.node_a).SpawnInPod(
          w.pod_a, "cruz.stream_sender",
          apps::StreamSenderArgs(rip, kStreamPort, w.target));
      break;
    }
    case WorkloadKind::kKvStore: {
      apps::RegisterKvPrograms();
      w.pod_a = c.CreatePod(w.node_a, "wl-kv-server");
      net::Ipv4Address sip = c.pods(w.node_a).Find(w.pod_a)->ip;
      w.ip_a = sip.ToString();
      w.vpid_a = c.pods(w.node_a).SpawnInPod(w.pod_a, "cruz.kv_server",
                                             apps::KvServerArgs(kKvPort));
      c.sim().RunFor(5 * kMillisecond);
      w.pod_b = c.CreatePod(w.node_b, "wl-kv-client");
      w.ip_b = c.pods(w.node_b).Find(w.pod_b)->ip.ToString();
      w.vpid_b = c.pods(w.node_b).SpawnInPod(
          w.pod_b, "cruz.kv_client",
          apps::KvClientArgs(sip, kKvPort,
                             static_cast<std::uint32_t>(w.target), s.seed,
                             200 * kMicrosecond));
      break;
    }
    case WorkloadKind::kCounters: {
      w.pod_a = c.CreatePod(w.node_a, "wl-count-a");
      w.ip_a = c.pods(w.node_a).Find(w.pod_a)->ip.ToString();
      w.vpid_a = c.pods(w.node_a).SpawnInPod(w.pod_a, "cruz.counter",
                                             apps::CounterArgs(w.target));
      w.pod_b = c.CreatePod(w.node_b, "wl-count-b");
      w.ip_b = c.pods(w.node_b).Find(w.pod_b)->ip.ToString();
      w.vpid_b = c.pods(w.node_b).SpawnInPod(w.pod_b, "cruz.counter",
                                             apps::CounterArgs(w.target));
      break;
    }
  }
  // Latch final progress from whichever node the workload process exits
  // on (it may have been restarted or migrated anywhere by then).
  for (std::size_t n = 0; n < c.num_nodes(); ++n) {
    c.node(n).os().set_process_exit_hook([&c, &w, n](os::Pid p, int) {
      os::Process* proc = c.node(n).os().FindProcess(p);
      if (proc == nullptr) return;
      // A pod torn down mid-demand-paging has unreadable missing pages;
      // keep the last sampled progress instead of faulting.
      if (proc->memory().HasMissingPages()) return;
      if (proc->pod() == w.pod_b) {
        switch (w.kind) {
          case WorkloadKind::kStream: {
            apps::StreamStatus s = apps::ReadStreamStatus(*proc);
            w.units_b = s.bytes;
            w.mismatches = s.mismatches;
            break;
          }
          case WorkloadKind::kKvStore: {
            apps::KvClientStatus s = apps::ReadKvClientStatus(*proc);
            w.units_b = s.operations_done;
            w.mismatches = s.verification_failures;
            break;
          }
          case WorkloadKind::kCounters:
            w.units_b = apps::ReadCounter(*proc);
            break;
        }
        w.exited_b = true;
      } else if (proc->pod() == w.pod_a &&
                 w.kind == WorkloadKind::kCounters) {
        w.units_a = apps::ReadCounter(*proc);
        w.exited_a = true;
      }
    });
  }
}

void ArmScenarioFaults(const Scenario& s, Cluster& c,
                       fault::FaultPlan& plan) {
  for (const FaultSpec& f : s.faults) {
    std::size_t node_index = f.node % s.num_nodes;
    std::string node_name = "node" + std::to_string(node_index + 1);
    switch (f.kind) {
      case FaultSpecKind::kMessageLoss:
        plan.ArmMessageLoss(f.permille / 1000.0);
        break;
      case FaultSpecKind::kMessageDup:
        plan.ArmMessageDuplication(f.permille / 1000.0);
        break;
      case FaultSpecKind::kMessageDelay:
        plan.ArmMessageDelay(f.permille / 1000.0, f.extra * kMillisecond);
        break;
      case FaultSpecKind::kDiskFail:
        plan.ArmDiskWriteFailure(node_name, f.extra);
        break;
      case FaultSpecKind::kImageCorrupt:
        plan.ArmImageCorruption(node_name, f.extra);
        break;
      case FaultSpecKind::kAgentCrashOnMsg:
        plan.ArmAgentCrash(node_name, static_cast<std::uint8_t>(f.extra));
        break;
      case FaultSpecKind::kLocalDiskLoss:
        plan.ArmLocalDiskLoss(node_index, f.extra * kMillisecond);
        break;
      case FaultSpecKind::kPartnerUnreachable:
        plan.ArmPartnerUnreachable(node_name);
        break;
      case FaultSpecKind::kNetfsOutage:
        plan.ArmNetfsOutage(f.permille * kMillisecond, f.extra * kMillisecond);
        break;
      case FaultSpecKind::kNoSpace:
        // Capacity is a property of the node's disk, not of the injector.
        c.node(node_index).disk().set_capacity_bytes(
            static_cast<std::uint64_t>(f.extra) * 1024);
        break;
    }
  }
}

bool AnyAgentCrashed(Cluster& c) {
  for (std::size_t i = 0; i < c.num_nodes(); ++i) {
    if (c.agent(i).crashed()) return true;
  }
  return false;
}

// Operator-style recovery: restart crashed agent processes so their
// pods resume. Returns true if any agent needed it.
bool ResetCrashedAgents(Cluster& c) {
  bool any = false;
  for (std::size_t i = 0; i < c.num_nodes(); ++i) {
    if (c.agent(i).crashed()) {
      c.agent(i).Reset();
      any = true;
    }
  }
  return any;
}

void DestroyEverywhere(Cluster& c, os::PodId pod) {
  for (std::size_t n = 0; n < c.num_nodes(); ++n) {
    if (c.pods(n).Find(pod) != nullptr) c.pods(n).DestroyPod(pod);
  }
}

coord::Coordinator::Options OpOptions(const OpSpec& spec,
                                      const Scenario& s) {
  coord::Coordinator::Options options;
  options.tiered = s.tiered;
  options.fan_out = s.fan_out;
  options.variant = spec.variant;
  options.incremental = spec.incremental;
  options.copy_on_write = spec.copy_on_write;
  options.compress = spec.compress;
  options.retransmit_interval = 300 * kMillisecond;
  options.timeout = 30 * kSecond;
  options.heartbeat_interval = 500 * kMillisecond;
  options.max_missed_heartbeats = 3;
  return options;
}

}  // namespace

const char* MutationName(Mutation mutation) {
  switch (mutation) {
    case Mutation::kNone: return "none";
    case Mutation::kAbandonWorkload: return "abandon-workload";
    case Mutation::kSkipDropFilter: return "skip-drop-filter";
    case Mutation::kCommitFailedGeneration: return "commit-failed-generation";
    case Mutation::kRestartBlindLatest: return "restart-blind-latest";
    case Mutation::kWipeCoordinatorJournal: return "wipe-coordinator-journal";
    case Mutation::kDuplicateContinue: return "duplicate-continue";
    case Mutation::kLeakPartialImage: return "leak-partial-image";
    case Mutation::kDropLastReplica: return "drop-last-replica";
    case Mutation::kShardAckWithoutForward:
      return "shard-ack-without-forward";
    case Mutation::kDropPageResponse: return "drop-page-response";
    case Mutation::kResumeBothSides: return "resume-both-sides";
  }
  return "none";
}

bool MutationFromName(const std::string& name, Mutation& out) {
  static constexpr Mutation kAll[] = {
      Mutation::kNone,
      Mutation::kAbandonWorkload,
      Mutation::kSkipDropFilter,
      Mutation::kCommitFailedGeneration,
      Mutation::kRestartBlindLatest,
      Mutation::kWipeCoordinatorJournal,
      Mutation::kDuplicateContinue,
      Mutation::kLeakPartialImage,
      Mutation::kDropLastReplica,
      Mutation::kShardAckWithoutForward,
      Mutation::kDropPageResponse,
      Mutation::kResumeBothSides,
  };
  for (Mutation m : kAll) {
    if (name == MutationName(m)) {
      out = m;
      return true;
    }
  }
  return false;
}

Explorer::Explorer(RunOptions options)
    : options_(options), oracle_(InvariantOracle::Defaults()) {}

RunResult Explorer::RunScenario(const Scenario& scenario) {
  const Mutation mutation = options_.mutation;
  ClusterConfig config;
  config.seed = scenario.seed;
  config.num_nodes = scenario.num_nodes;
  Cluster c(config);
  // Whole-run verbose capture: comm-silence needs per-segment rx
  // instants around every checkpoint window.
  c.sim().tracer().set_capacity(1 << 18);
  c.sim().tracer().set_verbose(true);

  if (mutation == Mutation::kSkipDropFilter) {
    for (std::size_t i = 0; i < c.num_nodes(); ++i) {
      c.agent(i).set_test_skip_filter(true);
    }
  }
  if (mutation == Mutation::kDuplicateContinue) {
    c.coordinator().set_test_duplicate_continue(true);
  }
  if (mutation == Mutation::kShardAckWithoutForward) {
    for (std::size_t i = 0; i < c.num_nodes(); ++i) {
      c.shard_coordinator(i).set_test_ack_without_forward(true);
    }
  }

  fault::FaultPlan plan(scenario.seed * 9176 + 0x5eed);
  if (!scenario.faults.empty()) {
    ArmScenarioFaults(scenario, c, plan);
    c.ArmFaults(plan);
  }

  WorkloadDriver w;
  SpawnWorkload(c, scenario, w);
  c.sim().RunFor(10 * kMillisecond);

  // Hierarchical scenarios: one extra long-running member pod per node
  // beyond the two workload nodes, so coordinated ops span enough
  // members to form several shards. Not tracked by the workload driver.
  std::vector<os::PodId> pad_pods(c.num_nodes(), os::kNoPod);
  if (scenario.fan_out > 0) {
    for (std::size_t n = 0; n < c.num_nodes(); ++n) {
      if (n == w.node_a || n == w.node_b) continue;
      pad_pods[n] = c.CreatePod(n, "hier-pad" + std::to_string(n));
      c.pods(n).SpawnInPod(pad_pods[n], "cruz.counter",
                           apps::CounterArgs(1u << 30));
    }
    c.sim().RunFor(5 * kMillisecond);
  }

  std::vector<OpRecord> records;
  for (const OpSpec& spec : scenario.ops) {
    c.sim().RunFor(spec.pre_delay);
    OpRecord rec;
    rec.kind = spec.kind;
    rec.variant = spec.variant;
    rec.copy_on_write = spec.copy_on_write;
    coord::Coordinator::Options options = OpOptions(spec, scenario);
    std::vector<coord::Coordinator::Member> members = {
        c.MemberFor(w.node_a, w.pod_a), c.MemberFor(w.node_b, w.pod_b)};
    if (spec.kind != OpKind::kMigrate) {
      for (std::size_t n = 0; n < pad_pods.size(); ++n) {
        if (pad_pods[n] != os::kNoPod) {
          members.push_back(c.MemberFor(n, pad_pods[n]));
        }
      }
    }
    rec.members = members.size();

    switch (spec.kind) {
      case OpKind::kCheckpoint: {
        auto pending = c.StartGenerationCheckpoint(members, options,
                                                   kGenRoot);
        c.sim().RunWhile([&] { return pending->finished; },
                         c.sim().Now() + options.timeout + 2 * kSecond);
        rec.result = c.SettleGenerationCheckpoint(pending);
        rec.allocated_generation = rec.result.allocated;
        if (mutation == Mutation::kCommitFailedGeneration &&
            !rec.result.stats.success) {
          // Sabotage: publish a manifest for the discarded generation
          // anyway (pointing at the images the op meant to write).
          ckpt::GenerationStore store(c.fs(), kGenRoot);
          store.set_tracer(&c.sim().tracer());
          if (scenario.tiered) store.set_tiered(&c.tiered());
          std::vector<ckpt::ManifestEntry> entries;
          for (const auto& m : members) {
            ckpt::ManifestEntry e;
            e.pod = m.pod;
            e.image_path = coord::Coordinator::ImagePath(
                store.Prefix(rec.allocated_generation), m.pod);
            entries.push_back(std::move(e));
          }
          store.Commit(rec.allocated_generation, entries);
        }
        break;
      }
      case OpKind::kCoordinatorCrash: {
        auto pending = c.StartGenerationCheckpoint(members, options,
                                                   kGenRoot);
        c.sim().RunFor(2 * kMillisecond);
        if (mutation == Mutation::kWipeCoordinatorJournal) {
          c.fs().Remove(coord::IntentJournal::kDefaultPath);
        }
        c.RestartCoordinator();
        if (mutation == Mutation::kDuplicateContinue) {
          c.coordinator().set_test_duplicate_continue(true);
        }
        // Journal recovery aborts the orphaned op and resumes the
        // members; give those aborts time to land.
        c.sim().RunFor(500 * kMillisecond);
        rec.result = c.SettleGenerationCheckpoint(pending);
        rec.allocated_generation = rec.result.allocated;
        // A lost abort (or a wiped journal) leaves pods frozen behind
        // filters with no coordinator op to release them; restart the
        // agent processes, as an operator would after the incident.
        for (std::size_t i = 0; i < c.num_nodes(); ++i) c.agent(i).Reset();
        c.sim().RunFor(10 * kMillisecond);
        break;
      }
      case OpKind::kRestart: {
        options.variant = coord::ProtocolVariant::kBlocking;
        options.copy_on_write = false;
        ckpt::GenerationStore store(c.fs(), kGenRoot);
        if (scenario.tiered) store.set_tiered(&c.tiered());
        rec.newest_intact_before = store.NewestIntact().value_or(0);
        if (mutation == Mutation::kDropLastReplica && scenario.tiered &&
            rec.newest_intact_before != 0) {
          // Sabotage: after the intact check, silently lose every copy of
          // one image on every tier — the storage equivalent of bit rot
          // between verification and restore.
          auto manifest = store.ReadManifest(rec.newest_intact_before);
          if (manifest.has_value() && !manifest->empty()) {
            c.tiered().RemoveEverywhere(manifest->back().image_path);
          }
        }
        const bool blind = mutation == Mutation::kRestartBlindLatest;
        std::uint64_t blind_gen = store.LatestCommitted().value_or(0);
        if ((blind ? blind_gen : rec.newest_intact_before) == 0) {
          rec.attempted = false;
          break;
        }
        std::size_t n = c.num_nodes();
        std::size_t new_a = w.node_a;
        std::size_t new_b = w.node_b;
        if (scenario.fan_out == 0) {
          // Flat scenarios relocate freely. Hierarchical ones restart in
          // place: every other node already hosts a pad member pod, and a
          // coordinated op drives at most one pod per agent.
          new_a = spec.placement_salt % n;
          new_b = (new_a + 1 + (spec.placement_salt / 7) % (n - 1)) % n;
        }
        members = {coord::Coordinator::Member{c.node(new_a).ip(), w.pod_a},
                   coord::Coordinator::Member{c.node(new_b).ip(), w.pod_b}};
        for (std::size_t pn = 0; pn < pad_pods.size(); ++pn) {
          if (pad_pods[pn] != os::kNoPod) {
            members.push_back(c.MemberFor(pn, pad_pods[pn]));
          }
        }
        // Armed agent crashes can legitimately kill a restart attempt;
        // reset and retry until the one-shot faults are used up.
        for (int attempt = 0; attempt < 6; ++attempt) {
          DestroyEverywhere(c, w.pod_a);
          DestroyEverywhere(c, w.pod_b);
          for (os::PodId pad : pad_pods) {
            if (pad != os::kNoPod) DestroyEverywhere(c, pad);
          }
          c.sim().RunFor(5 * kMillisecond);
          if (blind) {
            std::vector<ckpt::ManifestEntry> manifest =
                store.ReadManifest(blind_gen).value();
            std::vector<std::string> paths;
            for (const auto& m : members) {
              for (const ckpt::ManifestEntry& e : manifest) {
                if (e.pod == m.pod) paths.push_back(e.image_path);
              }
            }
            rec.result = Cluster::GenerationOpResult{};
            rec.result.stats = c.RunRestart(members, paths, options);
            rec.result.generation = blind_gen;
            rec.result.latest_committed = blind_gen;
          } else {
            rec.result = c.RunGenerationRestart(members, options, kGenRoot);
          }
          rec.any_agent_crashed = AnyAgentCrashed(c) || rec.any_agent_crashed;
          if (rec.result.stats.success) break;
          if (!ResetCrashedAgents(c)) break;
          c.sim().RunFor(5 * kMillisecond);
        }
        if (rec.result.stats.success) {
          w.node_a = new_a;
          w.node_b = new_b;
          // Destroying the pods fired the exit hooks; the restored
          // processes are alive again and will exit on their own.
          w.exited_a = false;
          w.exited_b = false;
        }
        break;
      }
      case OpKind::kMigrate: {
        rec.members = 1;
        // A target distinct from both pods' nodes (one pod per agent per
        // coordinated op); impossible on a two-node cluster.
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < c.num_nodes(); ++i) {
          if (i != w.node_a && i != w.node_b &&
              pad_pods[i] == os::kNoPod) {
            candidates.push_back(i);
          }
        }
        if (candidates.empty()) {
          rec.attempted = false;
          break;
        }
        std::size_t target =
            candidates[spec.placement_salt % candidates.size()];
        bool done = false;
        ckpt::LiveMigrateOptions mopt;
        // Page-channel traffic goes through the scenario's fault plan
        // (page-request loss/dup/delay exercise the retransmit path).
        mopt.injector = &plan;
        mopt.test_drop_page_response =
            mutation == Mutation::kDropPageResponse;
        mopt.test_resume_both_sides =
            mutation == Mutation::kResumeBothSides;
        auto mode = static_cast<ckpt::MigrateMode>(
            scenario.migrate_mode <= 3 ? scenario.migrate_mode : 1);
        rec.migrated_pod = w.pod_a;
        ckpt::LiveMigrator::MigrateWithMode(
            c.pods(w.node_a), c.pods(target), w.pod_a, mode, mopt,
            [&](const ckpt::LiveMigrateStats& s) {
              done = true;
              rec.migrate = s;
            });
        c.sim().RunWhile([&] { return done; }, c.sim().Now() + 60 * kSecond);
        rec.result.stats.success = done;
        if (done) {
          w.node_a = target;
          // Tearing down the source pod fired the exit hook for a
          // still-running process; the migrated copy is live again.
          if (w.units_a < w.target) w.exited_a = false;
        }
        break;
      }
    }
    // Any armed agent crash that fired leaves wreckage an operator would
    // clean up: note it (it excuses op failure) and restart the agent.
    if (spec.kind != OpKind::kRestart) {
      rec.any_agent_crashed = AnyAgentCrashed(c);
      ResetCrashedAgents(c);
    }
    c.sim().RunFor(5 * kMillisecond);
    records.push_back(std::move(rec));
  }

  if (mutation != Mutation::kAbandonWorkload) {
    c.sim().RunWhile(
        [&] {
          w.Sample(c);
          return w.Completed();
        },
        c.sim().Now() + 600 * kSecond);
  }
  w.Sample(c);

  if (mutation == Mutation::kLeakPartialImage) {
    c.fs().WriteFile(std::string(kGenRoot) + "/gen_999998/pod_1.img",
                     Bytes{0xde, 0xad});
  }

  obs::TraceQuery query(c.sim().tracer());
  RunContext ctx;
  ctx.scenario = &scenario;
  ctx.cluster = &c;
  ctx.trace = &query;
  ctx.ops = std::move(records);
  ctx.workload = w.Result();
  ctx.gen_root = kGenRoot;
  ctx.member_pod_ips = {w.ip_a, w.ip_b};

  RunResult result;
  result.scenario = scenario;
  result.violations = oracle_.Check(ctx);
  result.passed = result.violations.empty();
  if (!result.passed) {
    result.trace_jsonl = c.sim().tracer().ExportJsonl();
    obs::causal::FlightTrigger trigger;
    trigger.ts = c.sim().Now();
    for (const OpRecord& r : ctx.ops) {
      if (r.result.stats.op_id != 0) trigger.op = r.result.stats.op_id;
    }
    trigger.kind = "invariant-violation";
    trigger.detail = result.violations.front().invariant + ": " +
                     result.violations.front().detail;
    trigger.repro = scenario.Encode();
    obs::causal::FlightRecorderOptions fr;
    // The oracle fires at end of run, which can be long after the faulty
    // op: keep the whole (ring-bounded) history in scope and let the
    // event cap bound the artifact instead.
    fr.window = trigger.ts;
    fr.max_events = 16384;
    std::vector<obs::TraceEvent> window(c.sim().tracer().events().begin(),
                                        c.sim().tracer().events().end());
    result.flight_record = obs::causal::FlightRecorder::Capture(
        std::move(window), trigger, fr);
  }
  std::ostringstream summary;
  summary << scenario.Summary() << " -> "
          << (result.passed ? "ok"
                            : std::to_string(result.violations.size()) +
                                  " violation(s)");
  result.summary = summary.str();
  return result;
}

}  // namespace cruz::check
