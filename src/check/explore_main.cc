// cruz_explore: deterministic simulation explorer CLI.
//
//   cruz_explore --seeds 0..200           run a seed range, report failures
//   cruz_explore --seed 42                run one seed
//   cruz_explore --repro "<string>"       re-run an encoded scenario
//   cruz_explore --shrink                 minimize each failing scenario
//   cruz_explore --mutation NAME          inject a deliberate bug
//   cruz_explore --artifact-dir PATH      write repro_seed_<N>.txt on failure
//   cruz_explore --list-invariants        print the invariant catalog
//
// Exit status is 0 iff every run passed the oracle.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "check/explorer.h"
#include "check/scenario.h"
#include "check/shrink.h"

namespace {

using cruz::check::Explorer;
using cruz::check::Mutation;
using cruz::check::MutationFromName;
using cruz::check::RunOptions;
using cruz::check::RunResult;
using cruz::check::Scenario;
using cruz::check::ScenarioGenerator;
using cruz::check::Shrinker;
using cruz::check::ShrinkResult;

struct Args {
  bool has_range = false;
  std::uint64_t seed_begin = 0;
  std::uint64_t seed_end = 0;  // exclusive
  std::vector<std::uint64_t> seeds;
  std::vector<std::string> repros;
  bool shrink = false;
  std::size_t shrink_max_runs = 200;
  RunOptions options;
  std::string artifact_dir;
  bool list_invariants = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seeds A..B] [--seed N] [--repro STR] [--shrink]\n"
      "          [--shrink-max-runs N] [--mutation NAME]\n"
      "          [--artifact-dir PATH] [--list-invariants]\n",
      argv0);
}

bool ParseU64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](std::string& out) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    };
    std::string value;
    if (flag == "--seeds") {
      if (!next(value)) return false;
      auto dots = value.find("..");
      if (dots == std::string::npos) return false;
      if (!ParseU64(value.substr(0, dots), args.seed_begin)) return false;
      if (!ParseU64(value.substr(dots + 2), args.seed_end)) return false;
      if (args.seed_end <= args.seed_begin) return false;
      args.has_range = true;
    } else if (flag == "--seed") {
      std::uint64_t seed = 0;
      if (!next(value) || !ParseU64(value, seed)) return false;
      args.seeds.push_back(seed);
    } else if (flag == "--repro") {
      if (!next(value)) return false;
      args.repros.push_back(value);
    } else if (flag == "--shrink") {
      args.shrink = true;
    } else if (flag == "--shrink-max-runs") {
      if (!next(value)) return false;
      std::uint64_t n = 0;
      if (!ParseU64(value, n) || n == 0) return false;
      args.shrink_max_runs = static_cast<std::size_t>(n);
    } else if (flag == "--mutation") {
      if (!next(value)) return false;
      if (!MutationFromName(value, args.options.mutation)) {
        std::fprintf(stderr, "unknown mutation: %s\n", value.c_str());
        return false;
      }
    } else if (flag == "--artifact-dir") {
      if (!next(value)) return false;
      args.artifact_dir = value;
    } else if (flag == "--list-invariants") {
      args.list_invariants = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void WriteArtifact(const Args& args, const std::string& tag,
                   const RunResult& run, const ShrinkResult* shrunk) {
  if (args.artifact_dir.empty()) return;
  std::string path = args.artifact_dir + "/repro_" + tag + ".txt";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write artifact %s\n", path.c_str());
    return;
  }
  out << "scenario: " << run.scenario.Encode() << "\n";
  for (const auto& v : run.violations) {
    out << "violation: " << v.invariant << ": " << v.detail << "\n";
  }
  if (shrunk != nullptr) {
    out << "shrunk: " << shrunk->repro << "\n";
    out << "shrink_runs: " << shrunk->runs << "\n";
    for (const auto& v : shrunk->violations) {
      out << "shrunk_violation: " << v.invariant << ": " << v.detail << "\n";
    }
  }
  // Companions for offline analysis: the raw trace (cruz_analyze --trace)
  // and the flight-recorder snapshot of the pre-fault window.
  if (!run.trace_jsonl.empty()) {
    std::ofstream trace(args.artifact_dir + "/trace_" + tag + ".jsonl",
                        std::ios::binary);
    if (trace) trace << run.trace_jsonl;
  }
  if (!run.flight_record.empty()) {
    std::ofstream flight(args.artifact_dir + "/flight_" + tag + ".json",
                         std::ios::binary);
    if (flight) flight << run.flight_record;
  }
}

// Runs one scenario; returns true on pass. On failure prints the
// violations, optionally shrinks, and writes an artifact.
bool RunOne(Explorer& explorer, const Args& args, const Scenario& scenario,
            const std::string& tag) {
  RunResult run = explorer.RunScenario(scenario);
  std::printf("%s\n", run.summary.c_str());
  if (run.passed) return true;
  for (const auto& v : run.violations) {
    std::printf("  violation[%s]: %s\n", v.invariant.c_str(),
                v.detail.c_str());
  }
  std::printf("  repro: %s\n", run.scenario.Encode().c_str());
  if (args.shrink) {
    Shrinker shrinker(args.options);
    ShrinkResult shrunk = shrinker.Shrink(run.scenario, args.shrink_max_runs);
    std::printf("  shrunk (%zu runs): %s\n", shrunk.runs,
                shrunk.repro.c_str());
    WriteArtifact(args, tag, run, &shrunk);
  } else {
    WriteArtifact(args, tag, run, nullptr);
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    Usage(argv[0]);
    return 2;
  }

  Explorer explorer(args.options);

  if (args.list_invariants) {
    for (const auto& name : explorer.oracle().names()) {
      std::printf("%s\n", name.c_str());
    }
    if (!args.has_range && args.seeds.empty() && args.repros.empty()) {
      return 0;
    }
  }

  if (!args.has_range && args.seeds.empty() && args.repros.empty()) {
    Usage(argv[0]);
    return 2;
  }

  std::uint64_t total = 0;
  std::uint64_t failed = 0;

  auto account = [&](bool ok) {
    ++total;
    if (!ok) ++failed;
  };

  if (args.has_range) {
    for (std::uint64_t seed = args.seed_begin; seed < args.seed_end; ++seed) {
      account(RunOne(explorer, args, ScenarioGenerator::FromSeed(seed),
                     "seed_" + std::to_string(seed)));
    }
  }
  for (std::uint64_t seed : args.seeds) {
    account(RunOne(explorer, args, ScenarioGenerator::FromSeed(seed),
                   "seed_" + std::to_string(seed)));
  }
  std::size_t repro_index = 0;
  for (const auto& repro : args.repros) {
    std::optional<Scenario> scenario = Scenario::Decode(repro);
    if (!scenario.has_value()) {
      std::fprintf(stderr, "bad repro string: %s\n", repro.c_str());
      return 2;
    }
    account(RunOne(explorer, args, *scenario,
                   "repro_" + std::to_string(repro_index++)));
  }

  std::printf("explored %llu scenario(s): %llu failed\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(failed));
  return failed == 0 ? 0 : 1;
}
