#include "check/shrink.h"

namespace cruz::check {

ShrinkResult Shrinker::Shrink(const Scenario& failing,
                              std::size_t max_runs) {
  Explorer explorer(options_);
  ShrinkResult result;
  Scenario best = failing;
  std::vector<Violation> best_violations;

  auto fails = [&](const Scenario& candidate,
                   std::vector<Violation>& violations) {
    if (result.runs >= max_runs) return false;
    ++result.runs;
    RunResult r = explorer.RunScenario(candidate);
    violations = std::move(r.violations);
    return !r.passed;
  };

  // Establish the baseline (and its violations for the report).
  if (!fails(best, best_violations)) {
    result.minimal = best;
    result.repro = best.Encode();
    return result;  // does not reproduce: nothing to shrink
  }

  bool progress = true;
  while (progress && result.runs < max_runs) {
    progress = false;
    std::vector<Violation> v;

    // Faults: ddmin-style — first try dropping each half, then singles.
    if (best.faults.size() > 1) {
      for (int half = 0; half < 2; ++half) {
        Scenario t = best;
        std::size_t mid = t.faults.size() / 2;
        if (half == 0) {
          t.faults.erase(t.faults.begin(),
                         t.faults.begin() + static_cast<long>(mid));
        } else {
          t.faults.erase(t.faults.begin() + static_cast<long>(mid),
                         t.faults.end());
        }
        if (fails(t, v)) {
          best = std::move(t);
          best_violations = std::move(v);
          progress = true;
          break;
        }
      }
    }
    for (std::size_t i = 0; i < best.faults.size();) {
      Scenario t = best;
      t.faults.erase(t.faults.begin() + static_cast<long>(i));
      if (fails(t, v)) {
        best = std::move(t);
        best_violations = std::move(v);
        progress = true;
      } else {
        ++i;
      }
    }

    // Operations, one at a time.
    for (std::size_t i = 0; i < best.ops.size();) {
      Scenario t = best;
      t.ops.erase(t.ops.begin() + static_cast<long>(i));
      if (fails(t, v)) {
        best = std::move(t);
        best_violations = std::move(v);
        progress = true;
      } else {
        ++i;
      }
    }

    // Topology: collapse to the minimum cluster.
    if (best.num_nodes > 2) {
      Scenario t = best;
      t.num_nodes = 2;
      if (fails(t, v)) {
        best = std::move(t);
        best_violations = std::move(v);
        progress = true;
      }
    }

    // Workload size, halving while the failure persists.
    while (best.workload_units > 2 && result.runs < max_runs) {
      Scenario t = best;
      t.workload_units = std::max<std::uint64_t>(t.workload_units / 2, 1);
      if (t.workload == WorkloadKind::kStream) {
        t.workload_units = std::max<std::uint64_t>(t.workload_units,
                                                   64 * 1024);
      }
      if (t.workload_units == best.workload_units) break;
      if (fails(t, v)) {
        best = std::move(t);
        best_violations = std::move(v);
        progress = true;
      } else {
        break;
      }
    }
  }

  result.minimal = best;
  result.repro = best.Encode();
  result.violations = std::move(best_violations);
  return result;
}

}  // namespace cruz::check
