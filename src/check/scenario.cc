#include "check/scenario.h"

#include <sstream>

#include "common/rng.h"

namespace cruz::check {

namespace {

const char* WorkloadName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kStream: return "stream";
    case WorkloadKind::kKvStore: return "kvstore";
    case WorkloadKind::kCounters: return "counters";
  }
  return "unknown";
}

// Splits on single spaces; the repro format never quotes or escapes.
std::vector<std::string> Tokens(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

// Parses "k1,k2,...": fixed-width comma-separated u64 fields.
bool SplitU64(const std::string& s, std::vector<std::uint64_t>& out) {
  std::uint64_t value = 0;
  bool have_digit = false;
  for (char c : s) {
    if (c == ',') {
      if (!have_digit) return false;
      out.push_back(value);
      value = 0;
      have_digit = false;
    } else if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      have_digit = true;
    } else {
      return false;
    }
  }
  if (!have_digit) return false;
  out.push_back(value);
  return true;
}

}  // namespace

std::string Scenario::Summary() const {
  std::ostringstream out;
  out << "seed=" << seed << " nodes=" << num_nodes << " wl="
      << WorkloadName(workload) << " units=" << workload_units
      << (tiered ? " tiered" : "");
  if (fan_out > 0) out << " fanout=" << fan_out;
  if (migrate_mode != 1) {
    out << " migrate=" << static_cast<unsigned>(migrate_mode);
  }
  out << " ops=" << ops.size() << " faults=" << faults.size();
  return out.str();
}

std::string Scenario::Encode() const {
  std::ostringstream out;
  out << "cruzrepro1 seed=" << seed << " nodes=" << num_nodes << " wl="
      << static_cast<unsigned>(workload) << " units=" << workload_units;
  if (tiered) out << " tiered=1";
  if (fan_out > 0) out << " fanout=" << fan_out;
  if (migrate_mode != 1) {
    out << " migrate=" << static_cast<unsigned>(migrate_mode);
  }
  for (const OpSpec& op : ops) {
    out << " op=" << static_cast<unsigned>(op.kind) << ','
        << op.pre_delay / kMillisecond << ','
        << static_cast<unsigned>(op.variant) << ',' << (op.incremental ? 1 : 0)
        << ',' << (op.copy_on_write ? 1 : 0) << ',' << (op.compress ? 1 : 0)
        << ',' << op.placement_salt;
  }
  for (const FaultSpec& f : faults) {
    out << " fault=" << static_cast<unsigned>(f.kind) << ',' << f.node << ','
        << f.permille << ',' << f.extra;
  }
  return out.str();
}

std::optional<Scenario> Scenario::Decode(const std::string& repro) {
  std::vector<std::string> tokens = Tokens(repro);
  if (tokens.empty() || tokens[0] != "cruzrepro1") return std::nullopt;
  Scenario s;
  s.ops.clear();
  s.faults.clear();
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    std::size_t eq = tok.find('=');
    if (eq == std::string::npos) return std::nullopt;
    std::string key = tok.substr(0, eq);
    std::string value = tok.substr(eq + 1);
    std::vector<std::uint64_t> fields;
    if (!SplitU64(value, fields)) return std::nullopt;
    if (key == "seed" && fields.size() == 1) {
      s.seed = fields[0];
    } else if (key == "nodes" && fields.size() == 1) {
      s.num_nodes = static_cast<std::uint32_t>(fields[0]);
    } else if (key == "wl" && fields.size() == 1 && fields[0] <= 2) {
      s.workload = static_cast<WorkloadKind>(fields[0]);
    } else if (key == "units" && fields.size() == 1) {
      s.workload_units = fields[0];
    } else if (key == "tiered" && fields.size() == 1) {
      s.tiered = fields[0] != 0;
    } else if (key == "fanout" && fields.size() == 1 && fields[0] >= 2 &&
               fields[0] <= 256) {
      s.fan_out = static_cast<std::uint32_t>(fields[0]);
    } else if (key == "migrate" && fields.size() == 1 && fields[0] <= 3) {
      s.migrate_mode = static_cast<std::uint8_t>(fields[0]);
    } else if (key == "op" && fields.size() == 7 && fields[0] <= 3 &&
               fields[2] <= 2) {
      OpSpec op;
      op.kind = static_cast<OpKind>(fields[0]);
      op.pre_delay = static_cast<DurationNs>(fields[1]) * kMillisecond;
      op.variant = static_cast<coord::ProtocolVariant>(fields[2]);
      op.incremental = fields[3] != 0;
      op.copy_on_write = fields[4] != 0;
      op.compress = fields[5] != 0;
      op.placement_salt = static_cast<std::uint32_t>(fields[6]);
      s.ops.push_back(op);
    } else if (key == "fault" && fields.size() == 4 && fields[0] <= 9) {
      FaultSpec f;
      f.kind = static_cast<FaultSpecKind>(fields[0]);
      f.node = static_cast<std::uint32_t>(fields[1]);
      f.permille = static_cast<std::uint32_t>(fields[2]);
      f.extra = static_cast<std::uint32_t>(fields[3]);
      s.faults.push_back(f);
    } else {
      return std::nullopt;
    }
  }
  if (s.num_nodes < 2) return std::nullopt;
  return s;
}

Scenario ScenarioGenerator::FromSeed(std::uint64_t seed) {
  // Decorrelate from the cluster's own use of the seed (the Cluster
  // constructor seeds its Simulator with the same value).
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xC2B2AE3D27D4EB4Full);
  Scenario s;
  s.seed = seed;
  s.num_nodes = 2 + static_cast<std::uint32_t>(rng.NextBelow(3));  // 2..4
  s.workload = static_cast<WorkloadKind>(rng.NextBelow(3));
  switch (s.workload) {
    case WorkloadKind::kStream:
      s.workload_units = (128 + rng.NextBelow(385)) * 1024;  // 128..512 KiB
      break;
    case WorkloadKind::kKvStore:
      s.workload_units = 100 + rng.NextBelow(201);  // operations
      break;
    case WorkloadKind::kCounters:
      s.workload_units = 5000 + rng.NextBelow(15001);  // iterations
      break;
  }

  std::size_t num_ops = 1 + rng.NextBelow(3);  // 1..3
  for (std::size_t i = 0; i < num_ops; ++i) {
    OpSpec op;
    // Weighted mix: checkpoints dominate, disturbances ride along.
    std::uint64_t k = rng.NextBelow(10);
    op.kind = k < 5   ? OpKind::kCheckpoint
              : k < 7 ? OpKind::kRestart
              : k < 9 ? OpKind::kMigrate
                      : OpKind::kCoordinatorCrash;
    op.pre_delay = (5 + rng.NextBelow(60)) * kMillisecond;
    op.incremental = rng.NextBernoulli(0.4);
    op.copy_on_write = rng.NextBernoulli(0.4);
    // Copy-on-write requires the early-continue variant (the pod resumes
    // before disk-done, so the blocking handshake does not apply).
    op.variant = op.copy_on_write
                     ? coord::ProtocolVariant::kOptimized
                     : static_cast<coord::ProtocolVariant>(rng.NextBelow(3));
    op.compress = rng.NextBernoulli(0.3);
    op.placement_salt = static_cast<std::uint32_t>(rng.NextU64());
    s.ops.push_back(op);
  }

  std::size_t num_faults = rng.NextBelow(5);  // 0..4
  for (std::size_t i = 0; i < num_faults; ++i) {
    FaultSpec f;
    f.kind = static_cast<FaultSpecKind>(rng.NextBelow(6));
    f.node = static_cast<std::uint32_t>(rng.NextBelow(s.num_nodes));
    switch (f.kind) {
      case FaultSpecKind::kMessageLoss:
        f.permille = 50 + static_cast<std::uint32_t>(rng.NextBelow(201));
        break;
      case FaultSpecKind::kMessageDup:
        f.permille = 50 + static_cast<std::uint32_t>(rng.NextBelow(251));
        break;
      case FaultSpecKind::kMessageDelay:
        f.permille = 50 + static_cast<std::uint32_t>(rng.NextBelow(251));
        f.extra = 1 + static_cast<std::uint32_t>(rng.NextBelow(30));  // ms
        break;
      case FaultSpecKind::kDiskFail:
      case FaultSpecKind::kImageCorrupt:
        f.extra = 1;
        break;
      case FaultSpecKind::kAgentCrashOnMsg: {
        // Crash on one of the protocol messages an agent receives.
        static constexpr std::uint8_t kTriggers[] = {
            static_cast<std::uint8_t>(coord::MsgType::kCheckpoint),
            static_cast<std::uint8_t>(coord::MsgType::kContinue),
            static_cast<std::uint8_t>(coord::MsgType::kRestart),
        };
        f.extra = kTriggers[rng.NextBelow(3)];
        break;
      }
      default:  // tier-scoped kinds are drawn separately below
        break;
    }
    s.faults.push_back(f);
  }

  // Tiered storage mode, drawn after everything else so pre-tier seeds
  // keep their exact op/fault schedules (pinned repro strings and the
  // shrinker's golden cases replay unchanged). kNetfsOutage is decode-only
  // here: an outage window also blanks the coordinator's intent journal
  // (appends fail silently), which perturbs epoch bookkeeping in ways the
  // protocol oracles would mis-attribute; tests exercise it directly.
  s.tiered = rng.NextBernoulli(0.5);
  if (s.tiered) {
    std::size_t extra = rng.NextBelow(3);  // 0..2 tier-scoped faults
    for (std::size_t i = 0; i < extra; ++i) {
      FaultSpec f;
      std::uint64_t k = rng.NextBelow(3);
      f.kind = k == 0   ? FaultSpecKind::kLocalDiskLoss
               : k == 1 ? FaultSpecKind::kPartnerUnreachable
                        : FaultSpecKind::kNoSpace;
      f.node = static_cast<std::uint32_t>(rng.NextBelow(s.num_nodes));
      switch (f.kind) {
        case FaultSpecKind::kLocalDiskLoss:
          f.extra = 10 + static_cast<std::uint32_t>(rng.NextBelow(120));
          break;
        case FaultSpecKind::kNoSpace:
          // Local-disk byte budget in KiB: tight enough to trigger
          // eviction, loose enough to hold one image.
          f.extra = 96 + static_cast<std::uint32_t>(rng.NextBelow(161));
          break;
        default:
          break;
      }
      s.faults.push_back(f);
    }
  }

  // Hierarchical coordination, drawn after everything else for the same
  // reason as tiered mode: flat seeds keep their exact schedules.
  // Hierarchical scenarios widen the cluster so the tree has more than
  // one shard; the explorer pads the member list with one pod per extra
  // node. Fault node indices stay valid (they were drawn below the
  // original num_nodes).
  if (rng.NextBernoulli(0.25)) {
    s.fan_out = 2 + static_cast<std::uint32_t>(rng.NextBelow(3));  // 2..4
    s.num_nodes = std::max(
        s.num_nodes, 5 + static_cast<std::uint32_t>(rng.NextBelow(4)));
  }

  // Migration mode, drawn last (same reason again: earlier draws — and
  // hence every pre-post-copy seed's schedule — stay bit-identical).
  s.migrate_mode = static_cast<std::uint8_t>(rng.NextBelow(4));
  return s;
}

}  // namespace cruz::check
