// Whole-run invariants over a finished scenario.
//
// The oracle is the shared "what must always hold" half of the explorer:
// every chaos test and every seed of a sweep asserts through the same
// registered checks instead of private per-test asserts. Checks read the
// run's trace (obs::TraceQuery), the per-operation records collected by
// the Explorer, and the final shared-FS state, and emit Violations — a
// passing run emits none. Defaults() registers the catalog documented in
// DESIGN.md §9; tests can Register() extra checks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/scenario.h"
#include "ckpt/live_migrate.h"
#include "cruz/cluster.h"
#include "obs/trace_query.h"

namespace cruz::check {

// What the explorer recorded about one scheduled operation.
struct OpRecord {
  OpKind kind = OpKind::kCheckpoint;
  // False when the op was skipped (e.g. a restart with no committed
  // generation to restore from, or a migration with no legal target).
  bool attempted = true;
  Cluster::GenerationOpResult result;
  // Generation number allocated for a checkpoint attempt (committed or
  // discarded); 0 for non-checkpoint ops.
  std::uint64_t allocated_generation = 0;
  // NewestIntact() sampled immediately before a restart attempt.
  std::uint64_t newest_intact_before = 0;
  std::size_t members = 0;
  coord::ProtocolVariant variant = coord::ProtocolVariant::kBlocking;
  bool copy_on_write = false;
  // Any agent process was in the crashed state right after the op (a
  // legitimate reason for the op to fail).
  bool any_agent_crashed = false;
  // Live migration (kMigrate): which pod moved and the migrator's final
  // stats snapshot (page accounting for resident-set-complete).
  os::PodId migrated_pod = os::kNoPod;
  ckpt::LiveMigrateStats migrate;
};

struct WorkloadResult {
  bool completed = false;
  std::uint64_t units = 0;       // bytes / operations / iterations done
  std::uint64_t mismatches = 0;  // verification failures
  std::uint64_t target = 0;
};

// Everything an invariant may inspect about one finished run.
struct RunContext {
  const Scenario* scenario = nullptr;
  Cluster* cluster = nullptr;
  obs::TraceQuery* trace = nullptr;
  std::vector<OpRecord> ops;
  WorkloadResult workload;
  std::string gen_root;
  // Workload pod addresses, for spotting pod traffic in tcp.rx conns.
  std::vector<std::string> member_pod_ips;
};

struct Violation {
  std::string invariant;
  std::string detail;
};

class InvariantOracle {
 public:
  using CheckFn =
      std::function<void(const RunContext&, std::vector<Violation>&)>;

  void Register(std::string name, CheckFn check);

  // The full catalog (see DESIGN.md §9): workload-intact, comm-silence,
  // gen-commit, restart-newest-intact, protocol-order,
  // continue-exactly-once, no-partial-state, replica-availability,
  // migration-exactly-one-running-copy, resident-set-complete.
  static InvariantOracle Defaults();

  // Runs every registered invariant; empty result = run passed.
  std::vector<Violation> Check(const RunContext& ctx) const;

  std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, CheckFn>> checks_;
};

}  // namespace cruz::check
