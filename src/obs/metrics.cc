#include "obs/metrics.h"

#include <cstdio>

namespace cruz::obs {

namespace {

// Locale-independent double rendering (gauges, means).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

void Histogram::Record(std::uint64_t v) {
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
  int bucket = 0;
  while (bucket < kBuckets - 1 && (1ull << bucket) < v) ++bucket;
  ++buckets_[bucket];
}

void MetricsRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::TextDump() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += name + " " + FormatDouble(g.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + "_count " + std::to_string(h.count()) + "\n";
    out += name + "_sum " + std::to_string(h.sum()) + "\n";
    out += name + "_min " + std::to_string(h.min()) + "\n";
    out += name + "_max " + std::to_string(h.max()) + "\n";
    out += name + "_mean " + FormatDouble(h.mean()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + name + "\":" + std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + name + "\":" + FormatDouble(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(h.count()) +
           ",\"sum\":" + std::to_string(h.sum()) +
           ",\"min\":" + std::to_string(h.min()) +
           ",\"max\":" + std::to_string(h.max()) +
           ",\"mean\":" + FormatDouble(h.mean()) + "}";
  }
  out += "}}\n";
  return out;
}

}  // namespace cruz::obs
