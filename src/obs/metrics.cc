#include "obs/metrics.h"

#include <cstdio>

namespace cruz::obs {

namespace {

// Locale-independent double rendering (gauges, means).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

void Histogram::Record(std::uint64_t v) {
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
  int bucket = 0;
  while (bucket < kBuckets - 1 && (1ull << bucket) < v) ++bucket;
  ++buckets_[bucket];
}

std::uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  std::uint64_t rank = static_cast<std::uint64_t>(q * count_);
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      std::uint64_t upper = i == kBuckets - 1 ? ~0ull : 1ull << i;
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

void MetricsRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::TextDump() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += name + " " + FormatDouble(g.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + "_count " + std::to_string(h.count()) + "\n";
    out += name + "_sum " + std::to_string(h.sum()) + "\n";
    out += name + "_min " + std::to_string(h.min()) + "\n";
    out += name + "_max " + std::to_string(h.max()) + "\n";
    out += name + "_mean " + FormatDouble(h.mean()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + name + "\":" + std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + name + "\":" + FormatDouble(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(h.count()) +
           ",\"sum\":" + std::to_string(h.sum()) +
           ",\"min\":" + std::to_string(h.min()) +
           ",\"max\":" + std::to_string(h.max()) +
           ",\"mean\":" + FormatDouble(h.mean()) + ",\"buckets\":[";
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      out += "[" + std::to_string(i) + "," + std::to_string(h.bucket(i)) +
             "]";
    }
    out += "]}";
  }
  out += "}}\n";
  return out;
}

std::string MetricsRegistry::ExportPrometheus() const {
  auto sanitize = [](const std::string& name) {
    std::string out = "cruz_";
    for (char c : name) {
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == ':';
      out += ok ? c : '_';
    }
    return out;
  };
  std::string out;
  for (const auto& [name, c] : counters_) {
    std::string n = sanitize(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    std::string n = sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + FormatDouble(g.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    std::string n = sanitize(name);
    out += "# TYPE " + n + " histogram\n";
    int highest = -1;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) != 0) highest = i;
    }
    std::uint64_t cumulative = 0;
    for (int i = 0; i <= highest; ++i) {
      cumulative += h.bucket(i);
      out += n + "_bucket{le=\"" + std::to_string(1ull << i) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
    out += n + "_sum " + std::to_string(h.sum()) + "\n";
    out += n + "_count " + std::to_string(h.count()) + "\n";
    if (h.count() > 0) {
      // Summary-style quantile series synthesized from the buckets
      // (bucket-upper-bound semantics, see Histogram::Percentile), so a
      // re-exposed snapshot answers "what was p99" without the raw
      // samples.
      static constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
      for (double q : kQuantiles) {
        out += n + "{quantile=\"" + FormatDouble(q) + "\"} " +
               std::to_string(h.Percentile(q)) + "\n";
      }
    }
  }
  return out;
}

}  // namespace cruz::obs
