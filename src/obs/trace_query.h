// Query helper over a Tracer's completed events.
//
// Tests and benches use this to turn the flat event ring into timeline
// assertions: "the freeze phase ends before the commit phase begins",
// "no pod traffic was delivered between this agent's filter install and
// its resume", "the max agent save span for op 7 is X ns". Results are
// returned in (ts, seq) order so iteration is deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace cruz::obs {

class TraceQuery {
 public:
  // Snapshots the tracer's completed events, sorted by (ts, seq).
  explicit TraceQuery(const Tracer& tracer);

  // Filter predicates: empty string / 0 = wildcard.
  struct Filter {
    std::string category;
    std::string name;
    std::uint64_t op = 0;
    std::string agent;

    Filter& Category(std::string v) { category = std::move(v); return *this; }
    Filter& Name(std::string v) { name = std::move(v); return *this; }
    Filter& Op(std::uint64_t v) { op = v; return *this; }
    Filter& Agent(std::string v) { agent = std::move(v); return *this; }
  };

  std::vector<const TraceEvent*> Select(const Filter& filter) const;
  std::vector<const TraceEvent*> Named(const std::string& name) const {
    return Select(Filter{}.Name(name));
  }

  // First/last matching event by timestamp; nullptr when none matches.
  const TraceEvent* First(const Filter& filter) const;
  const TraceEvent* Last(const Filter& filter) const;

  std::size_t Count(const Filter& filter) const {
    return Select(filter).size();
  }
  // Matching events with ts in [begin, end].
  std::size_t CountBetween(const Filter& filter, TimeNs begin,
                           TimeNs end) const;

  // Max span duration among matches (0 when none).
  DurationNs MaxDuration(const Filter& filter) const;

  // True iff `inner` lies entirely within `outer` ([ts, end_ts]).
  static bool Within(const TraceEvent& inner, const TraceEvent& outer) {
    return inner.ts >= outer.ts && inner.end_ts() <= outer.end_ts();
  }

  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  static bool Matches(const TraceEvent& e, const Filter& f);

  std::vector<TraceEvent> events_;
};

}  // namespace cruz::obs
