// Deterministic structured tracing for the simulation.
//
// A Tracer records typed span and instant events into a bounded per-run
// ring buffer. Every event is stamped with the *simulated* clock (the
// Simulator installs itself as the tracer's clock), so two runs with the
// same seed and the same schedule of API calls produce byte-identical
// exports — which is what lets tests assert on timeline claims (Fig. 2
// phase ordering, the Fig. 6 stall-and-recover pulse) instead of log
// scraping.
//
// Events carry the attributes the checkpoint pipeline is described in:
// `op` (coordinated-operation id == fencing epoch), `phase` (freeze /
// commit / save / ...), `agent` (node name), `pod`, and `conn` (a TCP
// four-tuple), plus free-form key/value args. Exports:
//
//   * ExportChromeJson() — Chrome trace_event JSON ("X"/"i" phases),
//     loadable in chrome://tracing / Perfetto.
//   * ExportJsonl()      — one flat JSON object per line, for tooling.
//
// High-volume events (per-TCP-segment instants) are gated behind
// set_verbose(true) so long benches do not churn the ring.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.h"

namespace cruz::obs {

enum class EventKind : std::uint8_t { kSpan, kInstant };

// Typed attributes of one event. Unset fields are omitted from exports.
struct TraceAttrs {
  std::uint64_t op = 0;  // coordinated-operation id (0 = unset)
  std::string phase;
  std::string agent;  // node name
  std::uint64_t pod = 0;  // os::kNoPod (0) = unset
  std::string conn;   // TCP four-tuple rendering
  // Extra key/value pairs, exported in insertion order.
  std::vector<std::pair<std::string, std::string>> args;

  TraceAttrs& Op(std::uint64_t v) { op = v; return *this; }
  TraceAttrs& Phase(std::string v) { phase = std::move(v); return *this; }
  TraceAttrs& Agent(std::string v) { agent = std::move(v); return *this; }
  TraceAttrs& Pod(std::uint64_t v) { pod = v; return *this; }
  TraceAttrs& Conn(std::string v) { conn = std::move(v); return *this; }
  TraceAttrs& Arg(std::string key, std::string value) {
    args.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  TraceAttrs& Arg(std::string key, std::uint64_t value) {
    args.emplace_back(std::move(key), std::to_string(value));
    return *this;
  }
};

struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  TimeNs ts = 0;        // begin time (spans) or occurrence time (instants)
  DurationNs dur = 0;   // spans only
  std::uint64_t seq = 0;  // insertion sequence (completion order)
  std::string category;   // "coord", "agent", "ckpt", "tcp", "fault", ...
  std::string name;
  TraceAttrs attrs;

  TimeNs end_ts() const { return ts + dur; }
};

using SpanId = std::uint64_t;
constexpr SpanId kInvalidSpanId = 0;

// Appends one event as a single flat JSON object (no newline) — the same
// rendering ExportJsonl() uses per line, shared with the flight recorder.
void AppendJsonlEvent(std::string& out, const TraceEvent& e);

class Tracer {
 public:
  using Clock = std::function<TimeNs()>;

  // Until a clock is installed (the Simulator does it), events stamp 0.
  void SetClock(Clock clock) { clock_ = std::move(clock); }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }
  // Verbose gate for high-volume events (per-segment TCP instants).
  void set_verbose(bool verbose) { verbose_ = verbose; }
  bool verbose() const { return verbose_; }

  // Sampling for the verbose event class: keep one of every
  // `keep_one_in` verbose-gated events (1 = keep all, the default). At
  // thousand-node scale per-segment instants would otherwise drown the
  // ring; decimating them keeps the ring representative without
  // touching any non-verbose event. With sampling at 1 the gate is a
  // plain bool check, so unsampled runs export byte-identical traces.
  void SetSampling(std::uint32_t keep_one_in) {
    sampling_ = keep_one_in == 0 ? 1 : keep_one_in;
  }
  std::uint32_t sampling() const { return sampling_; }

  // Call-site gate for verbose-class events: false when verbose capture
  // is off; under sampling, true for exactly one in sampling() calls
  // (deterministic — a modulo counter, no RNG).
  bool VerboseSample() {
    if (!verbose_) return false;
    if (sampling_ <= 1) return true;
    return (verbose_calls_++ % sampling_) == 0;
  }

  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  std::size_t capacity() const { return capacity_; }

  // Opens a span at the current simulated time. Returns an id for
  // EndSpan(); kInvalidSpanId when tracing is disabled.
  SpanId BeginSpan(std::string category, std::string name,
                   TraceAttrs attrs = {});
  // Closes a span: the completed event enters the ring, ordered by
  // completion. Invalid/unknown ids are ignored (a span opened while the
  // tracer was enabled may be closed after a Clear()).
  void EndSpan(SpanId id);
  // Closes a span, appending extra args gathered while it ran.
  void EndSpan(SpanId id,
               std::vector<std::pair<std::string, std::string>> extra_args);

  void Instant(std::string category, std::string name,
               TraceAttrs attrs = {});

  // Completed events, in completion order. Open spans are not included.
  const std::deque<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t open_spans() const { return open_.size(); }

  void Clear();

  // Chrome trace_event JSON. Timestamps are microseconds with fixed
  // 3-decimal nanosecond precision; thread ids are assigned per distinct
  // `agent` attribute in first-seen order, so output is byte-stable for
  // deterministic runs.
  std::string ExportChromeJson() const;
  // One JSON object per line, same field names, newline-terminated.
  std::string ExportJsonl() const;

 private:
  TimeNs NowNs() const { return clock_ ? clock_() : 0; }
  void Push(TraceEvent event);

  struct OpenSpan {
    TimeNs begin = 0;
    std::string category;
    std::string name;
    TraceAttrs attrs;
  };

  Clock clock_;
  bool enabled_ = true;
  bool verbose_ = false;
  std::uint32_t sampling_ = 1;
  std::uint64_t verbose_calls_ = 0;
  std::size_t capacity_ = 1 << 16;
  std::uint64_t next_span_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::unordered_map<SpanId, OpenSpan> open_;
  std::deque<TraceEvent> events_;
};

}  // namespace cruz::obs
