// Windowed SLO evaluation over a latency timeline.
//
// An SloObjective declares what a compliant window looks like
// ("p99 < 5 ms per 100 ms window"). The SloMonitor hangs off a
// WindowedRecorder's rotation callback: each finished window is
// evaluated against every objective, and each breach both accumulates
// an SloViolation record and emits an `slo.violation` instant onto the
// shared trace timeline — which is what lets `cruz_analyze --slo` (and
// tests) join violation windows against checkpoint/migration phases in
// the same causal trace, instead of eyeballing two separate files.
//
// The instant is stamped at the simulated time the window rotated (the
// first completion past the window's end); the window's exact
// [begin, end) bounds travel in the event args, so the attribution join
// never depends on the stamp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/latency/windowed.h"
#include "obs/trace.h"

namespace cruz::obs {

struct SloObjective {
  // Rendered into the violation's `objective` arg, e.g. "p99<5ms".
  std::string name;
  double quantile = 0.99;
  DurationNs threshold = 5 * kMillisecond;
};

struct SloViolation {
  std::string objective;
  std::uint64_t window_index = 0;
  TimeNs begin = 0;
  TimeNs end = 0;
  std::uint64_t observed_ns = 0;   // the window's value at the quantile
  std::uint64_t threshold_ns = 0;
  std::uint64_t count = 0;         // completions in the window
};

class SloMonitor {
 public:
  // `tracer` may be null (evaluation only, no timeline events).
  SloMonitor(Tracer* tracer, std::vector<SloObjective> objectives)
      : tracer_(tracer), objectives_(std::move(objectives)) {}

  // Wire as the recorder's rotation callback:
  //   recorder.SetWindowCallback([&](auto& w, auto& h) {
  //     monitor.OnWindow(w, h); });
  // Empty windows are compliant by definition — under a stall the spike
  // lands in the completion window (see WindowedRecorder).
  void OnWindow(const WindowStats& window, const LatencyHistogram& hist);

  const std::vector<SloViolation>& violations() const {
    return violations_;
  }
  std::uint64_t windows_evaluated() const { return windows_evaluated_; }

  // Violation windows for one objective, coalesced into the bench's
  // recovery metric: time from the first violating window's begin to
  // the last violating window's end (0 when compliant throughout).
  DurationNs RecoveryToSlo(const std::string& objective) const;

 private:
  Tracer* tracer_;
  std::vector<SloObjective> objectives_;
  std::vector<SloViolation> violations_;
  std::uint64_t windows_evaluated_ = 0;
};

}  // namespace cruz::obs
