#include "obs/latency/histogram.h"

namespace cruz::obs {

namespace {

int MsbIndex(std::uint64_t v) {
  int msb = 0;
  while (v >>= 1) ++msb;
  return msb;
}

}  // namespace

LatencyHistogram::LatencyHistogram()
    : counts_(kSubBucketCount +
              static_cast<std::size_t>(kBucketCount - 1) *
                  kSubBucketHalfCount) {}

std::size_t LatencyHistogram::IndexFor(std::uint64_t value) {
  if (value < kSubBucketCount) return static_cast<std::size_t>(value);
  // Values with most-significant bit m >= kSubBucketBits fall in bucket
  // b = m - (kSubBucketBits - 1); shifting by b yields a sub-bucket in
  // [kSubBucketHalfCount, kSubBucketCount).
  int b = MsbIndex(value) - (kSubBucketBits - 1);
  std::uint64_t sub = value >> b;
  return kSubBucketCount +
         static_cast<std::size_t>(b - 1) * kSubBucketHalfCount +
         static_cast<std::size_t>(sub - kSubBucketHalfCount);
}

std::uint64_t LatencyHistogram::UpperBoundFor(std::size_t index) {
  if (index < kSubBucketCount) return index;  // exact range
  std::size_t r = index - kSubBucketCount;
  int b = static_cast<int>(r / kSubBucketHalfCount) + 1;
  std::uint64_t sub = r % kSubBucketHalfCount + kSubBucketHalfCount;
  return ((sub + 1) << b) - 1;
}

void LatencyHistogram::Record(std::uint64_t value) {
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++counts_[IndexFor(value)];
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

void LatencyHistogram::Clear() {
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
  counts_.assign(counts_.size(), 0);
}

std::uint64_t LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based from the smallest value.
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      std::uint64_t upper = UpperBoundFor(i);
      // The bucket's upper bound can overshoot the true maximum (the
      // max is tracked exactly); never report past it.
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

}  // namespace cruz::obs
