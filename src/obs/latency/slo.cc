#include "obs/latency/slo.h"

namespace cruz::obs {

void SloMonitor::OnWindow(const WindowStats& window,
                          const LatencyHistogram& hist) {
  ++windows_evaluated_;
  if (window.count == 0) return;
  for (const SloObjective& objective : objectives_) {
    std::uint64_t observed = hist.Percentile(objective.quantile);
    if (observed <= static_cast<std::uint64_t>(objective.threshold)) {
      continue;
    }
    SloViolation v;
    v.objective = objective.name;
    v.window_index = window.index;
    v.begin = window.begin;
    v.end = window.end;
    v.observed_ns = observed;
    v.threshold_ns = static_cast<std::uint64_t>(objective.threshold);
    v.count = window.count;
    violations_.push_back(v);
    if (tracer_ != nullptr) {
      tracer_->Instant("slo", "slo.violation",
                       TraceAttrs{}
                           .Arg("objective", objective.name)
                           .Arg("window", v.window_index)
                           .Arg("begin_ns", v.begin)
                           .Arg("end_ns", v.end)
                           .Arg("observed_ns", v.observed_ns)
                           .Arg("threshold_ns", v.threshold_ns)
                           .Arg("count", v.count));
    }
  }
}

DurationNs SloMonitor::RecoveryToSlo(const std::string& objective) const {
  TimeNs first = 0, last = 0;
  bool any = false;
  for (const SloViolation& v : violations_) {
    if (v.objective != objective) continue;
    if (!any || v.begin < first) first = v.begin;
    if (!any || v.end > last) last = v.end;
    any = true;
  }
  return any ? last - first : 0;
}

}  // namespace cruz::obs
