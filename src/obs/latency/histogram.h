// HDR-style log-linear latency histogram (~3 significant digits).
//
// The power-of-two obs::Histogram is fine for separating "100 us" from
// "1 s", but request-latency percentiles need sub-millisecond
// resolution across a nanoseconds-to-minutes range. This is the
// standard HdrHistogram layout: values are bucketed by their
// most-significant bit, and each power-of-two bucket is split into
// kSubBucketHalfCount linear sub-buckets, so every recorded value lands
// in a bucket whose width is at most value / 1024 — a guaranteed
// relative error below 0.1% (hence "~3 significant digits") at a fixed
// ~220 KiB of counts, no matter how many samples are recorded.
//
// Percentile(q) follows bucket-upper-bound semantics: it returns the
// highest value equivalent to the bucket holding the rank-⌈q·count⌉
// sample, so the result never under-reports (the exact sample is ≤ the
// returned value ≤ exact · (1 + 1/1024) + 1). Histograms recorded on
// different nodes or windows Merge() exactly (bucket-wise addition),
// which is what lets a per-window timeline and a whole-run summary
// share one recording path.
//
// Everything is integer arithmetic on simulated-time nanoseconds:
// byte-identical across same-seed runs by construction.
#pragma once

#include <cstdint>
#include <vector>

namespace cruz::obs {

class LatencyHistogram {
 public:
  // 2^10 linear sub-buckets per power-of-two bucket: values below 1024
  // are exact, larger values have relative bucket width <= 1/1024.
  static constexpr int kSubBucketBits = 10;
  static constexpr std::uint64_t kSubBucketCount = 1ull << kSubBucketBits;
  static constexpr std::uint64_t kSubBucketHalfCount = kSubBucketCount / 2;
  // Buckets cover the full u64 range: bucket 0 holds [0, 1024) exactly,
  // each further bucket doubles the range at half the sub-resolution.
  static constexpr int kBucketCount = 64 - kSubBucketBits + 1;

  LatencyHistogram();

  void Record(std::uint64_t value);
  // Bucket-wise addition; all summary statistics combine exactly.
  void Merge(const LatencyHistogram& other);
  void Clear();

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  // Value at quantile q (clamped to (0, 1]): the upper bound of the
  // bucket containing the sample of rank ceil(q * count), counted from
  // the smallest recorded value, capped at the exactly-tracked max (so
  // Percentile(1.0) == max()). 0 when empty.
  std::uint64_t Percentile(double q) const;

  // Index math, exposed for tests: the linear counts index a value
  // records into, and the largest value mapping to that index.
  static std::size_t IndexFor(std::uint64_t value);
  static std::uint64_t UpperBoundFor(std::size_t index);

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace cruz::obs
