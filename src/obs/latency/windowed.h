// Fixed sim-time windows over a latency stream.
//
// A WindowedRecorder slices completion-stamped latency samples into
// consecutive windows of a fixed simulated-time length and rotates each
// finished window into a compact WindowStats entry (p50/p99/p999/max
// plus counts), building the per-window percentile timeline that SLO
// evaluation and the `--slo` attribution join run over. Samples are
// binned by *completion* time — a request stalled behind a checkpoint
// freeze surfaces, with its full intended-send-to-completion latency,
// in the window where it finally completed, so a stall is visible as a
// latency spike right after it resolves (and the windows during the
// stall are visibly empty).
//
// Rotation happens lazily when a sample lands past the current window;
// skipped windows are materialized as zero-count entries so the
// timeline is dense and window index i always covers
// [origin + i*window, origin + (i+1)*window). The optional callback
// fires once per rotated window, with the window's full histogram still
// intact — that is the SloMonitor's evaluation hook. Finalize() flushes
// the trailing partial window.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "obs/latency/histogram.h"

namespace cruz::obs {

struct WindowStats {
  std::uint64_t index = 0;  // window number since the origin
  TimeNs begin = 0;
  TimeNs end = 0;
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t max = 0;
};

class WindowedRecorder {
 public:
  // Called as each window rotates: the finished stats plus the window's
  // histogram (valid only for the duration of the call).
  using WindowCallback =
      std::function<void(const WindowStats&, const LatencyHistogram&)>;

  WindowedRecorder(TimeNs origin, DurationNs window);

  void SetWindowCallback(WindowCallback cb) { callback_ = std::move(cb); }

  // Adds one sample. completion_ts must be >= origin and non-decreasing
  // across calls up to window granularity; a sample landing before the
  // current window (cannot happen in a single-threaded simulation) is
  // counted into the current window and tallied in late_samples().
  void Record(TimeNs completion_ts, std::uint64_t latency_ns);

  // Flushes the in-progress window into the timeline. Call once, after
  // the run; further Record() calls would start a fresh window.
  void Finalize();

  const std::vector<WindowStats>& windows() const { return windows_; }
  // Whole-run distribution across every window.
  const LatencyHistogram& total() const { return total_; }
  DurationNs window_length() const { return window_; }
  TimeNs origin() const { return origin_; }
  std::uint64_t late_samples() const { return late_samples_; }

 private:
  void Rotate(std::uint64_t until_index);

  TimeNs origin_;
  DurationNs window_;
  std::uint64_t current_index_ = 0;
  std::uint64_t late_samples_ = 0;
  LatencyHistogram current_;
  LatencyHistogram total_;
  std::vector<WindowStats> windows_;
  WindowCallback callback_;
};

}  // namespace cruz::obs
