#include "obs/latency/windowed.h"

namespace cruz::obs {

WindowedRecorder::WindowedRecorder(TimeNs origin, DurationNs window)
    : origin_(origin), window_(window == 0 ? 1 : window) {}

void WindowedRecorder::Record(TimeNs completion_ts,
                              std::uint64_t latency_ns) {
  std::uint64_t index = completion_ts < origin_
                            ? 0
                            : (completion_ts - origin_) / window_;
  if (index < current_index_) {
    ++late_samples_;  // count into the open window rather than drop
  } else if (index > current_index_) {
    Rotate(index);
  }
  current_.Record(latency_ns);
  total_.Record(latency_ns);
}

void WindowedRecorder::Finalize() { Rotate(current_index_ + 1); }

void WindowedRecorder::Rotate(std::uint64_t until_index) {
  while (current_index_ < until_index) {
    WindowStats stats;
    stats.index = current_index_;
    stats.begin = origin_ + current_index_ * window_;
    stats.end = stats.begin + window_;
    stats.count = current_.count();
    stats.p50 = current_.Percentile(0.50);
    stats.p99 = current_.Percentile(0.99);
    stats.p999 = current_.Percentile(0.999);
    stats.max = current_.max();
    windows_.push_back(stats);
    if (callback_) callback_(stats, current_);
    if (current_.count() != 0) current_.Clear();  // zeroing 220 KiB is
                                                  // skipped for gap windows
    ++current_index_;
  }
}

}  // namespace cruz::obs
