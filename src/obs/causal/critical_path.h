// Cross-node critical-path attribution for coordinated operations.
//
// For each `coord.op.*` span the analyzer walks the causal chain
// backward from the reply that completed the operation — across message
// edges (CausalGraph) and local spans — and labels every nanosecond of
// the op's wall time with a protocol phase:
//
//   freeze-wait      request dispatch, request hop, done-reply hop
//   filter-install   request receipt -> save span begin on the agent
//   save-downtime    local save while the pod is stopped
//   save-background  COW write-out after the pod could already resume
//   restore          local image load + restore (restart ops)
//   commit-wait      done/comm-disabled hop + the coordinator's gap
//                    before <continue>, and the continue hop itself
//   resume           agent resume span + continue-done hop
//   finish           final reply receipt -> op span end
//   unattributed     wall time no causal segment explains
//
// `migrate.op.*` spans (live migration) are analyzed too, from the
// migrator's own sub-spans instead of the message graph:
//
//   stop-copy        pod stopped: state transfer between stop and resume
//   postcopy-fetch   post-resume demand-fetch stalls (post-copy/hybrid)
//
// The segments exactly tile [op begin, op end]: overlaps are clipped and
// gaps become explicit `unattributed` segments, so the phase totals sum
// to the coordinator-measured wall time by construction. Per phase the
// node contributing the most time is flagged as the straggler.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/causal/causal_graph.h"

namespace cruz::obs::causal {

struct PathSegment {
  TimeNs begin = 0;
  TimeNs end = 0;
  std::string phase;
  std::string node;  // the node the time is charged to

  DurationNs ns() const { return end - begin; }
};

struct PhaseTotal {
  std::string phase;
  DurationNs total = 0;
  std::string straggler;        // node charged the most time
  DurationNs straggler_ns = 0;  // that node's share
};

// Which storage tier one agent's restore actually read from (tiered
// runs stamp the agent.restore span with a `source` arg).
struct RestoreSource {
  std::string node;    // the restoring agent's node
  std::string source;  // "local" | "partner" | "netfs"
  DurationNs ns = 0;   // that agent's restore span duration
};

struct OpBreakdown {
  std::uint64_t op_id = 0;
  std::string kind;  // "checkpoint" | "restart" | a migrate mode name
  std::string coordinator;
  bool success = false;
  TimeNs begin = 0;
  TimeNs end = 0;

  // In canonical phase order, zero phases omitted. Sums to wall().
  std::vector<PhaseTotal> phases;
  // The raw tiling, in time order.
  std::vector<PathSegment> segments;

  DurationNs unattributed = 0;
  // Post-op TCP retransmit recovery: how long after the op end the last
  // `tcp.recovered` fired (0 when none before the next op). Reported
  // separately — it is outside the op's wall time.
  DurationNs tcp_recovery = 0;
  // Per-agent restore-source attribution (restart ops in tiered runs;
  // empty otherwise), sorted by node name.
  std::vector<RestoreSource> restore_sources;

  DurationNs wall() const { return end - begin; }
  DurationNs PhaseNs(const std::string& phase) const;
};

class CriticalPathAnalyzer {
 public:
  explicit CriticalPathAnalyzer(const CausalGraph& graph) : graph_(graph) {}

  // Every coord.op.* span found in the trace, in op-id order.
  std::vector<OpBreakdown> AnalyzeAll() const;
  std::optional<OpBreakdown> AnalyzeOp(std::uint64_t op_id) const;

  // Deterministic human-readable table (byte-identical across same-seed
  // runs) and machine-readable JSON, both including the match stats.
  static std::string RenderReport(const std::vector<OpBreakdown>& ops,
                                  const MatchStats& stats);
  static std::string RenderJson(const std::vector<OpBreakdown>& ops,
                                const MatchStats& stats);

 private:
  OpBreakdown AnalyzeSpan(std::size_t op_span_index) const;

  const CausalGraph& graph_;
};

}  // namespace cruz::obs::causal
