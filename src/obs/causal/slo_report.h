// SLO violation attribution: joining `slo.violation` windows against the
// causal critical path.
//
// The load pipeline (src/load + src/obs/latency) stamps one
// `slo.violation` instant per breached latency window onto the same
// trace timeline the checkpoint/migration coordinator writes its op
// spans to. This module answers "*why* was that window bad": each
// violation window is intersected with the per-op phase tiling the
// CriticalPathAnalyzer produced, and charged to the (phase, node) with
// the largest time overlap — "save-downtime on node1 during checkpoint
// op 3", not just "p99 was 87 ms".
//
// The join, in priority order:
//   1. direct overlap with an op's phase segments (max overlap wins;
//      ties break by canonical phase order, then node, then op id);
//   2. overlap with an op's post-op TCP retransmit-recovery tail,
//      charged as pseudo-phase "tcp-recovery" to the op's dominant
//      straggler (the stall is the op's fault, just after its wall);
//   3. a window that begins within one window-length of the nearest
//      preceding op's extended end (queued requests draining right
//      after resume) is charged to that op's dominant phase;
//   4. otherwise "unattributed" — load benches assert this is zero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/causal/causal_graph.h"
#include "obs/causal/critical_path.h"

namespace cruz::obs::causal {

struct SloAttribution {
  // The violation, parsed from the slo.violation instant's args.
  std::string objective;
  std::uint64_t window_index = 0;
  TimeNs window_begin = 0;
  TimeNs window_end = 0;
  std::uint64_t observed_ns = 0;
  std::uint64_t threshold_ns = 0;
  std::uint64_t count = 0;

  // The join result.
  std::string phase;          // winning phase, "tcp-recovery", or
                              // "unattributed"
  std::string node;           // straggler charged ("" if unattributed)
  std::uint64_t op_id = 0;    // the charged op (meaningless if
                              // unattributed)
  std::string op_kind;
  DurationNs overlap_ns = 0;  // window∩segment time behind the verdict
                              // (0 for the queue-drain fallback)
};

struct SloReport {
  std::vector<SloAttribution> violations;
  std::size_t attributed = 0;  // violations with a concrete phase+node
};

// Joins every slo.violation instant in the graph against `ops`
// (typically CriticalPathAnalyzer::AnalyzeAll() on the same graph).
SloReport BuildSloReport(const CausalGraph& graph,
                         const std::vector<OpBreakdown>& ops);

// Deterministic renderings (byte-identical across same-seed runs).
std::string RenderSloReport(const SloReport& report);
std::string RenderSloJson(const SloReport& report);

}  // namespace cruz::obs::causal
