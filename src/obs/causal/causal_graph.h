// Cross-node happens-before graph over a trace.
//
// The coordinator and agents stamp every control-message transmission
// with a correlation id (op id + message kind + sender + per-sender seq;
// see coord::CorrId) on both the `*.msg.send` and `*.msg.recv` instants.
// Build() joins them: each (send, recv) pair sharing a corr id becomes a
// happens-before edge. Fault plans leave visible, honest residue instead
// of mis-joins:
//
//   * dropped message   -> send with no recv (unmatched_sends)
//   * duplicated wire   -> two recvs on one send (second edge flagged
//     copy                  duplicate)
//   * delayed message   -> edge with a long latency, still matched
//   * pre-correlation   -> recv without a corr arg (unmatched_recvs)
//     sender
//
// Span parentage needs no explicit edges: spans carry (op, agent, phase)
// attributes, and the critical-path analyzer walks them by lookup.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"

namespace cruz::obs::causal {

struct CausalEdge {
  std::size_t send = 0;  // index into events()
  std::size_t recv = 0;
  std::string corr;
  // True for the second and later recvs joining the same send (a wire
  // duplicate or a replayed datagram).
  bool duplicate = false;
};

struct MatchStats {
  std::size_t sends = 0;
  std::size_t recvs = 0;
  std::size_t matched = 0;          // edges, including duplicates
  std::size_t duplicate_recvs = 0;  // edges flagged duplicate
  std::size_t unmatched_sends = 0;  // transmissions never delivered
  std::size_t unmatched_recvs = 0;  // deliveries with no visible send
  // A recv whose corr id resolved to a send with a different op or
  // message type. Must stay 0 — anything else is an instrumentation bug.
  std::size_t mis_joins = 0;
};

class CausalGraph {
 public:
  // Takes any event stream (live tracer snapshot or ImportJsonl) and
  // canonicalizes its order before matching.
  static CausalGraph Build(std::vector<TraceEvent> events);

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<CausalEdge>& edges() const { return edges_; }
  const MatchStats& stats() const { return stats_; }

  // The matching send for a recv event index (first edge wins).
  std::optional<std::size_t> SendFor(std::size_t recv_index) const;
  // All recv event indexes joined to a send event index.
  std::vector<std::size_t> RecvsFor(std::size_t send_index) const;

  // Event indexes of sends that were never matched (message lost, or the
  // receiver was dead).
  std::vector<std::size_t> UnmatchedSends() const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<CausalEdge> edges_;
  MatchStats stats_;
  std::unordered_map<std::size_t, std::size_t> send_for_recv_;
  std::unordered_map<std::size_t, std::vector<std::size_t>> recvs_for_send_;
  std::vector<std::size_t> unmatched_sends_;
};

}  // namespace cruz::obs::causal
