#include "obs/causal/flight_recorder.h"

#include "obs/causal/causal_graph.h"
#include "obs/causal/trace_io.h"

namespace cruz::obs::causal {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string FlightRecorder::Capture(std::vector<TraceEvent> events,
                                    const FlightTrigger& trigger,
                                    const FlightRecorderOptions& options) {
  TimeNs lo = trigger.ts > options.window ? trigger.ts - options.window : 0;
  std::vector<TraceEvent> window;
  for (TraceEvent& e : events) {
    // Keep anything overlapping [lo, trigger.ts]: a span that began
    // before the window but was still open at the fault is evidence.
    if (e.end_ts() < lo || e.ts > trigger.ts) continue;
    window.push_back(std::move(e));
  }
  CanonicalizeTraceOrder(window);
  bool truncated = false;
  if (window.size() > options.max_events) {
    window.erase(window.begin(),
                 window.end() - static_cast<std::ptrdiff_t>(
                                    options.max_events));
    truncated = true;
  }

  CausalGraph graph = CausalGraph::Build(std::move(window));
  const auto& evs = graph.events();

  std::string out = "{\"trigger\":{\"ts_ns\":" + std::to_string(trigger.ts) +
                    ",\"op\":" + std::to_string(trigger.op) + ",\"kind\":";
  AppendEscaped(out, trigger.kind);
  out += ",\"detail\":";
  AppendEscaped(out, trigger.detail);
  out += ",\"repro\":";
  AppendEscaped(out, trigger.repro);
  out += "},\"window\":{\"begin_ns\":" + std::to_string(lo) +
         ",\"end_ns\":" + std::to_string(trigger.ts) +
         ",\"events\":" + std::to_string(evs.size()) + ",\"truncated\":";
  out += truncated ? "true" : "false";
  out += "},\"events\":[";
  for (std::size_t i = 0; i < evs.size(); ++i) {
    if (i != 0) out += ',';
    AppendJsonlEvent(out, evs[i]);
  }
  out += "],\"causal\":{\"edges\":[";
  bool first = true;
  for (const CausalEdge& e : graph.edges()) {
    if (!first) out += ',';
    first = false;
    out += "{\"send_seq\":" + std::to_string(evs[e.send].seq) +
           ",\"recv_seq\":" + std::to_string(evs[e.recv].seq) +
           ",\"corr\":";
    AppendEscaped(out, e.corr);
    out += ",\"duplicate\":";
    out += e.duplicate ? "true" : "false";
    out += "}";
  }
  out += "],\"unmatched_send_seqs\":[";
  first = true;
  for (std::size_t idx : graph.UnmatchedSends()) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(evs[idx].seq);
  }
  const MatchStats& st = graph.stats();
  out += "],\"stats\":{\"sends\":" + std::to_string(st.sends) +
         ",\"recvs\":" + std::to_string(st.recvs) +
         ",\"matched\":" + std::to_string(st.matched) +
         ",\"duplicate_recvs\":" + std::to_string(st.duplicate_recvs) +
         ",\"unmatched_sends\":" + std::to_string(st.unmatched_sends) +
         ",\"unmatched_recvs\":" + std::to_string(st.unmatched_recvs) +
         ",\"mis_joins\":" + std::to_string(st.mis_joins) + "}}}";
  return out;
}

}  // namespace cruz::obs::causal
