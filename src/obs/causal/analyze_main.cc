// cruz_analyze: offline analysis of Cruz trace and metric exports.
//
//   cruz_analyze --trace run.jsonl [--op N] [--json]
//       Import a Tracer::ExportJsonl file (or flight-recorder "events"
//       lines), build the causal graph, and print the per-op
//       critical-path breakdown — phase attribution, stragglers, match
//       stats. --json swaps the table for machine-readable JSON.
//
//   cruz_analyze --trace run.jsonl --slo [--json]
//       Join each `slo.violation` window in the trace against the
//       per-op critical-path phase tiling and print which
//       checkpoint/migration phase (and straggler node) each breached
//       latency window overlaps — the "why was p99 bad at t=1.2s"
//       report.
//
//   cruz_analyze --metrics metrics.json
//       Re-expose a MetricsRegistry::ExportJson snapshot in Prometheus
//       text-exposition format (histograms gain synthesized quantile
//       lines).
//
// Both inputs may be given; the trace report prints first.
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/causal/causal_graph.h"
#include "obs/causal/critical_path.h"
#include "obs/causal/json_lite.h"
#include "obs/causal/slo_report.h"
#include "obs/causal/trace_io.h"
#include "obs/metrics.h"

namespace {

using namespace cruz::obs::causal;

int Usage() {
  std::fprintf(
      stderr,
      "usage: cruz_analyze --trace FILE [--op N] [--slo] [--json]\n"
      "       cruz_analyze --metrics FILE\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int AnalyzeTrace(const std::string& path, std::optional<std::uint64_t> op,
                 bool slo, bool json) {
  std::string text;
  if (!ReadFile(path, text)) {
    std::fprintf(stderr, "cruz_analyze: cannot read %s\n", path.c_str());
    return 1;
  }
  ImportStats stats;
  std::vector<cruz::obs::TraceEvent> events = ImportJsonl(text, &stats);
  if (stats.skipped > 0) {
    std::fprintf(stderr, "cruz_analyze: skipped %zu unparseable line(s)\n",
                 stats.skipped);
  }
  if (events.empty()) {
    std::fprintf(stderr, "cruz_analyze: no trace events in %s\n",
                 path.c_str());
    return 1;
  }
  CausalGraph graph = CausalGraph::Build(std::move(events));
  CriticalPathAnalyzer analyzer(graph);
  if (slo) {
    SloReport report = BuildSloReport(graph, analyzer.AnalyzeAll());
    std::string out =
        json ? RenderSloJson(report) : RenderSloReport(report);
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }
  std::vector<OpBreakdown> ops;
  if (op.has_value()) {
    std::optional<OpBreakdown> one = analyzer.AnalyzeOp(*op);
    if (!one.has_value()) {
      std::fprintf(stderr, "cruz_analyze: no op %llu in trace\n",
                   static_cast<unsigned long long>(*op));
      return 1;
    }
    ops.push_back(std::move(*one));
  } else {
    ops = analyzer.AnalyzeAll();
  }
  std::string out = json
                        ? CriticalPathAnalyzer::RenderJson(ops, graph.stats())
                        : CriticalPathAnalyzer::RenderReport(ops,
                                                             graph.stats());
  std::fwrite(out.data(), 1, out.size(), stdout);
  if (!json) std::fputc('\n', stdout);
  return 0;
}

int ExposeMetrics(const std::string& path) {
  std::string text;
  if (!ReadFile(path, text)) {
    std::fprintf(stderr, "cruz_analyze: cannot read %s\n", path.c_str());
    return 1;
  }
  JsonValue root;
  std::string error;
  if (!ParseJson(text, root, error) ||
      root.type != JsonValue::Type::kObject) {
    std::fprintf(stderr, "cruz_analyze: bad metrics JSON: %s\n",
                 error.c_str());
    return 1;
  }
  cruz::obs::MetricsRegistry registry;
  if (const JsonValue* counters = root.Find("counters")) {
    for (const auto& [name, v] : counters->fields) {
      registry.counter(name).Add(v.AsU64());
    }
  }
  if (const JsonValue* gauges = root.Find("gauges")) {
    for (const auto& [name, v] : gauges->fields) {
      registry.gauge(name).Set(v.AsDouble());
    }
  }
  if (const JsonValue* histograms = root.Find("histograms")) {
    for (const auto& [name, v] : histograms->fields) {
      cruz::obs::Histogram& h = registry.histogram(name);
      const JsonValue* count = v.Find("count");
      const JsonValue* sum = v.Find("sum");
      const JsonValue* min = v.Find("min");
      const JsonValue* max = v.Find("max");
      h.Restore(count != nullptr ? count->AsU64() : 0,
                sum != nullptr ? sum->AsU64() : 0,
                min != nullptr ? min->AsU64() : 0,
                max != nullptr ? max->AsU64() : 0);
      if (const JsonValue* buckets = v.Find("buckets")) {
        for (const JsonValue& pair : buckets->items) {
          if (pair.items.size() == 2) {
            h.RestoreBucket(static_cast<int>(pair.items[0].AsU64()),
                            pair.items[1].AsU64());
          }
        }
      }
    }
  }
  std::string out = registry.ExportPrometheus();
  std::fwrite(out.data(), 1, out.size(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::optional<std::uint64_t> op;
  bool slo = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--op" && i + 1 < argc) {
      op = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--slo") {
      slo = true;
    } else if (arg == "--json") {
      json = true;
    } else {
      return Usage();
    }
  }
  if (trace_path.empty() && metrics_path.empty()) return Usage();
  int rc = 0;
  if (!trace_path.empty()) rc = AnalyzeTrace(trace_path, op, slo, json);
  if (rc == 0 && !metrics_path.empty()) rc = ExposeMetrics(metrics_path);
  return rc;
}
