#include "obs/causal/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "obs/causal/trace_io.h"

namespace cruz::obs::causal {

namespace {

constexpr const char* kOpSpanPrefix = "coord.op.";
// Live-migration ops trace their own op spans; they are analyzed from
// direct sub-spans (stop-copy downtime, post-copy demand fetches) rather
// than from the coordination message graph.
constexpr const char* kMigrateOpSpanPrefix = "migrate.op.";

// Canonical output order; also the order phase totals are rendered in.
// "shard-wait" is hierarchical-mode only: the time a sub-coordinator
// spent aggregating its shard (last agent reply -> upward report).
// "stop-copy" and "postcopy-fetch" are migration-only: the pod-stopped
// transfer window and post-resume demand-fetch stalls respectively.
constexpr const char* kPhaseOrder[] = {
    "freeze-wait",  "filter-install", "save-downtime",
    "save-background", "restore",     "shard-wait",
    "commit-wait",  "resume",         "finish",
    "stop-copy",    "postcopy-fetch", "unattributed"};

bool IsMigrateOpSpan(const TraceEvent& e) {
  return e.kind == EventKind::kSpan &&
         e.name.rfind(kMigrateOpSpanPrefix, 0) == 0;
}

bool IsOpSpan(const TraceEvent& e) {
  return (e.kind == EventKind::kSpan &&
          e.name.rfind(kOpSpanPrefix, 0) == 0) ||
         IsMigrateOpSpan(e);
}

bool TypeIn(const std::string& type,
            std::initializer_list<const char*> set) {
  for (const char* t : set) {
    if (type == t) return true;
  }
  return false;
}

std::string FormatMs(DurationNs ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                static_cast<unsigned long long>(ns / 1000000),
                static_cast<unsigned long long>(ns % 1000000));
  return buf;
}

std::string FormatPct(DurationNs part, DurationNs total) {
  std::uint64_t tenths =
      total == 0 ? 0 : (part * 1000 + total / 2) / total;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu.%llu%%",
                static_cast<unsigned long long>(tenths / 10),
                static_cast<unsigned long long>(tenths % 10));
  return buf;
}

std::string Pad(std::string s, std::size_t width) {
  while (s.size() < width) s += ' ';
  return s;
}

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

// One op's worth of lookup state over the shared event stream.
struct OpWalk {
  const std::vector<TraceEvent>& events;
  std::uint64_t op_id;

  // Last recv instant on `node` (coordinator or agent side) whose message
  // type is in `types`, at or before `max_ts`.
  std::optional<std::size_t> LastRecv(
      const std::string& node, std::initializer_list<const char*> types,
      TimeNs max_ts) const {
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const TraceEvent& e = events[i];
      if (e.kind != EventKind::kInstant) continue;
      if (e.name != "coord.msg.recv" && e.name != "agent.msg.recv") continue;
      if (e.attrs.op != op_id || e.attrs.agent != node) continue;
      if (e.ts > max_ts) continue;
      if (!TypeIn(EventArg(e, "type"), types)) continue;
      best = i;  // canonical order: later index == later (ts, node, seq)
    }
    return best;
  }

  // Last span named `name` for this op on `node` ending at or before
  // `max_end` (kMaxTime to accept any).
  const TraceEvent* LastSpan(const std::string& name,
                             const std::string& node,
                             TimeNs max_end) const {
    const TraceEvent* best = nullptr;
    for (const TraceEvent& e : events) {
      if (e.kind != EventKind::kSpan || e.name != name) continue;
      if (e.attrs.op != op_id || e.attrs.agent != node) continue;
      if (e.end_ts() > max_end) continue;
      best = &e;
    }
    return best;
  }
};

constexpr TimeNs kMaxTime = ~static_cast<TimeNs>(0);

}  // namespace

DurationNs OpBreakdown::PhaseNs(const std::string& phase) const {
  for (const PhaseTotal& p : phases) {
    if (p.phase == phase) return p.total;
  }
  return 0;
}

OpBreakdown CriticalPathAnalyzer::AnalyzeSpan(
    std::size_t op_span_index) const {
  const auto& events = graph_.events();
  const TraceEvent& op = events[op_span_index];

  OpBreakdown b;
  b.op_id = op.attrs.op;
  const bool is_migrate = IsMigrateOpSpan(op);
  b.kind = op.name.substr(is_migrate
                              ? std::string(kMigrateOpSpanPrefix).size()
                              : std::string(kOpSpanPrefix).size());
  b.coordinator = op.attrs.agent;
  b.begin = op.ts;
  b.end = op.end_ts();
  // Migrate op spans close only on completion; coordination spans carry
  // an explicit success arg.
  b.success = is_migrate || EventArg(op, "success") == "true";

  OpWalk walk{events, b.op_id};
  std::vector<PathSegment> raw;
  auto add = [&raw](TimeNs s, TimeNs e, const char* phase,
                    const std::string& node) {
    if (e > s) raw.push_back(PathSegment{s, e, phase, node});
  };

  // The local save (or restore) chain on `node`, back to the request
  // receipt. With `resume_gate` set, stop the save at the downtime end —
  // the COW resume gate — instead of the full write-out. Returns the
  // request recv the chain hangs off, if visible.
  auto local_chain = [&](const std::string& node, TimeNs before,
                         bool resume_gate) -> std::optional<std::size_t> {
    const TraceEvent* save = walk.LastSpan("agent.save", node, before);
    const TraceEvent* restore = walk.LastSpan("agent.restore", node, before);
    const TraceEvent* s =
        restore != nullptr &&
                (save == nullptr || restore->end_ts() > save->end_ts())
            ? restore
            : save;
    if (s == nullptr) return std::nullopt;
    if (s->name == "agent.restore") {
      add(s->ts, s->end_ts(), "restore", node);
    } else {
      const TraceEvent* dt = walk.LastSpan("agent.downtime", node, before);
      if (dt != nullptr && dt->end_ts() < s->end_ts()) {
        add(s->ts, dt->end_ts(), "save-downtime", node);
        if (!resume_gate) {
          add(dt->end_ts(), s->end_ts(), "save-background", node);
        }
      } else {
        add(s->ts, s->end_ts(), "save-downtime", node);
      }
    }
    auto req = walk.LastRecv(node, {"checkpoint", "restart"}, s->ts);
    if (req.has_value()) {
      add(events[*req].ts, s->ts, "filter-install", node);
    }
    return req;
  };

  // When the pod could locally have resumed: downtime end (COW) or the
  // save/restore completion. 0 when the trace has no local spans.
  auto local_ready = [&](const std::string& node) -> TimeNs {
    const TraceEvent* save = walk.LastSpan("agent.save", node, kMaxTime);
    const TraceEvent* restore =
        walk.LastSpan("agent.restore", node, kMaxTime);
    const TraceEvent* s =
        restore != nullptr &&
                (save == nullptr || restore->end_ts() > save->end_ts())
            ? restore
            : save;
    if (s == nullptr) return 0;
    const TraceEvent* dt = walk.LastSpan("agent.downtime", node, kMaxTime);
    if (s->name == "agent.save" && dt != nullptr &&
        dt->end_ts() < s->end_ts()) {
      return dt->end_ts();
    }
    return s->end_ts();
  };

  if (is_migrate) {
    // Migration ops are single-owner: the critical path is read straight
    // off the migrator's own sub-spans. The stop-copy window is the
    // downtime; each postcopy-fetch span is a demand-fetch stall of the
    // resumed pod (they never overlap — the whole process parks on a
    // fault — so the tiling below sums them exactly).
    for (const TraceEvent& e : events) {
      if (e.kind != EventKind::kSpan || e.attrs.op != b.op_id) continue;
      if (e.name == "migrate.downtime") {
        add(e.ts, e.end_ts(), "stop-copy", e.attrs.agent);
      } else if (e.name == "migrate.postcopy.fetch") {
        add(e.ts, e.end_ts(), "postcopy-fetch", e.attrs.agent);
      }
    }
  } else if (b.success) {
    auto terminal = walk.LastRecv(
        b.coordinator,
        {"done", "continue-done", "comm-disabled", "failed", "shard-done",
         "shard-continue-done", "shard-comm-disabled", "shard-failed"},
        b.end);
    if (terminal.has_value()) {
      add(events[*terminal].ts, b.end, "finish", b.coordinator);
      std::optional<std::size_t> cur = terminal;
      // Bounded: each step moves strictly earlier in the op; the bound
      // only guards against pathological hand-written traces.
      for (int step = 0; cur.has_value() && step < 256; ++step) {
        auto send = graph_.SendFor(*cur);
        if (!send.has_value()) break;
        const TraceEvent& s = events[*send];
        const TraceEvent& r = events[*cur];
        const std::string& type = EventArg(s, "type");
        const std::string& sender = s.attrs.agent;
        const char* hop =
            TypeIn(type, {"continue", "comm-disabled", "shard-continue",
                          "shard-comm-disabled"})
                ? "commit-wait"
            : TypeIn(type, {"continue-done", "shard-continue-done"})
                ? "resume"
            : type == "shard-done" ? "shard-wait"
                                   : "freeze-wait";
        add(s.ts, r.ts, hop, sender);
        if (TypeIn(type, {"checkpoint", "restart"})) {
          if (sender == b.coordinator) {
            // Request dispatch: whatever the coordinator spent between op
            // start and putting this request on the wire.
            add(b.begin, s.ts, "freeze-wait", b.coordinator);
            break;
          }
          // Hierarchical: a sub-coordinator dispatched this request after
          // receiving the root's shard request.
          auto req = walk.LastRecv(
              sender, {"shard-checkpoint", "shard-restart"}, s.ts);
          if (req.has_value()) {
            add(events[*req].ts, s.ts, "freeze-wait", sender);
          }
          cur = req;
        } else if (TypeIn(type, {"shard-checkpoint", "shard-restart"})) {
          add(b.begin, s.ts, "freeze-wait", b.coordinator);
          break;
        } else if (TypeIn(type, {"done", "failed"})) {
          cur = local_chain(sender, s.ts, /*resume_gate=*/false);
        } else if (TypeIn(type, {"shard-done", "shard-failed"})) {
          // The sub's upward report follows its last shard-agent reply;
          // the gap is the shard aggregation wait.
          auto trigger = walk.LastRecv(sender, {"done", "failed"}, s.ts);
          if (trigger.has_value()) {
            add(events[*trigger].ts, s.ts, "shard-wait", sender);
          }
          cur = trigger;
        } else if (type == "comm-disabled") {
          auto req =
              walk.LastRecv(sender, {"checkpoint", "restart"}, s.ts);
          if (req.has_value()) {
            add(events[*req].ts, s.ts, "filter-install", sender);
          }
          cur = req;
        } else if (type == "shard-comm-disabled") {
          auto trigger = walk.LastRecv(sender, {"comm-disabled"}, s.ts);
          if (trigger.has_value()) {
            add(events[*trigger].ts, s.ts, "commit-wait", sender);
          }
          cur = trigger;
        } else if (type == "continue") {
          // Sender-based: the root's <continue> follows its last phase-1
          // reply; a sub-coordinator's follows the root's <shard-continue>.
          auto trigger = walk.LastRecv(
              sender,
              {"done", "comm-disabled", "failed", "shard-continue"}, s.ts);
          if (trigger.has_value()) {
            add(events[*trigger].ts, s.ts, "commit-wait", sender);
          }
          cur = trigger;
        } else if (type == "shard-continue") {
          auto trigger = walk.LastRecv(
              b.coordinator,
              {"shard-done", "shard-comm-disabled", "shard-failed"}, s.ts);
          if (trigger.has_value()) {
            add(events[*trigger].ts, s.ts, "commit-wait", b.coordinator);
          }
          cur = trigger;
        } else if (type == "shard-continue-done") {
          auto trigger = walk.LastRecv(sender, {"continue-done"}, s.ts);
          if (trigger.has_value()) {
            add(events[*trigger].ts, s.ts, "resume", sender);
          }
          cur = trigger;
        } else if (type == "continue-done") {
          const TraceEvent* cs =
              walk.LastSpan("agent.continue", sender, s.ts);
          if (cs == nullptr) break;
          add(cs->ts, cs->end_ts(), "resume", sender);
          auto cont = walk.LastRecv(sender, {"continue"}, cs->ts);
          TimeNs ready = local_ready(sender);
          if (cont.has_value() && events[*cont].ts >= ready) {
            // The resume waited on permission, not on local work.
            cur = cont;
          } else {
            cur = local_chain(sender, cs->ts, /*resume_gate=*/true);
          }
        } else {
          break;  // ping / flush traffic: not part of the walk
        }
      }
    }
  }

  // Tile [begin, end] exactly: sort, clip overlaps, name the gaps. This
  // is what makes the phase totals sum to the wall time by construction.
  std::stable_sort(raw.begin(), raw.end(),
                   [](const PathSegment& a, const PathSegment& c) {
                     if (a.begin != c.begin) return a.begin < c.begin;
                     return a.end < c.end;
                   });
  TimeNs cursor = b.begin;
  for (const PathSegment& s : raw) {
    TimeNs sb = std::max(s.begin, cursor);
    TimeNs se = std::min(s.end, b.end);
    if (se <= cursor) continue;
    if (sb > cursor) {
      b.segments.push_back(PathSegment{cursor, sb, "unattributed", ""});
    }
    b.segments.push_back(PathSegment{sb, se, s.phase, s.node});
    cursor = se;
  }
  if (cursor < b.end) {
    b.segments.push_back(PathSegment{cursor, b.end, "unattributed", ""});
  }

  // Aggregate phase totals and per-phase straggler.
  std::unordered_map<std::string, DurationNs> totals;
  std::unordered_map<std::string,
                     std::unordered_map<std::string, DurationNs>>
      by_node;
  for (const PathSegment& s : b.segments) {
    totals[s.phase] += s.ns();
    if (!s.node.empty()) by_node[s.phase][s.node] += s.ns();
  }
  for (const char* phase : kPhaseOrder) {
    auto it = totals.find(phase);
    if (it == totals.end() || it->second == 0) continue;
    PhaseTotal p;
    p.phase = phase;
    p.total = it->second;
    auto nodes = by_node.find(phase);
    if (nodes != by_node.end()) {
      for (const auto& [node, ns] : nodes->second) {
        if (ns > p.straggler_ns ||
            (ns == p.straggler_ns && node < p.straggler)) {
          p.straggler = node;
          p.straggler_ns = ns;
        }
      }
    }
    b.phases.push_back(std::move(p));
  }
  b.unattributed = b.PhaseNs("unattributed");

  // Post-op TCP retransmit recovery window (verbose traces only).
  TimeNs next_op = kMaxTime;
  for (const TraceEvent& e : events) {
    if (IsOpSpan(e) && e.attrs.op != b.op_id && e.ts >= b.end) {
      next_op = std::min(next_op, e.ts);
    }
  }
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kInstant && e.name == "tcp.recovered" &&
        e.ts > b.end && e.ts <= next_op) {
      b.tcp_recovery = std::max(b.tcp_recovery, e.ts - b.end);
    }
  }

  // Restore-source attribution: tiered runs stamp every agent.restore
  // span with the tier the image was actually read from.
  for (const TraceEvent& e : events) {
    if (e.name != "agent.restore" || e.attrs.op != b.op_id) continue;
    std::string source;
    for (const auto& [k, v] : e.attrs.args) {
      if (k == "source") source = v;
    }
    if (source.empty()) continue;
    b.restore_sources.push_back(
        RestoreSource{e.attrs.agent, source, e.dur});
  }
  std::stable_sort(b.restore_sources.begin(), b.restore_sources.end(),
                   [](const RestoreSource& x, const RestoreSource& y) {
                     return x.node < y.node;
                   });
  return b;
}

std::vector<OpBreakdown> CriticalPathAnalyzer::AnalyzeAll() const {
  std::vector<OpBreakdown> out;
  const auto& events = graph_.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (IsOpSpan(events[i])) out.push_back(AnalyzeSpan(i));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const OpBreakdown& a, const OpBreakdown& b) {
                     return a.op_id < b.op_id;
                   });
  return out;
}

std::optional<OpBreakdown> CriticalPathAnalyzer::AnalyzeOp(
    std::uint64_t op_id) const {
  const auto& events = graph_.events();
  std::optional<OpBreakdown> out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (IsOpSpan(events[i]) && events[i].attrs.op == op_id) {
      out = AnalyzeSpan(i);  // last span for the id wins
    }
  }
  return out;
}

std::string CriticalPathAnalyzer::RenderReport(
    const std::vector<OpBreakdown>& ops, const MatchStats& stats) {
  std::string out;
  out += "causal critical-path report: " + std::to_string(ops.size()) +
         " op(s)\n";
  out += "edges: sends=" + std::to_string(stats.sends) +
         " recvs=" + std::to_string(stats.recvs) +
         " matched=" + std::to_string(stats.matched) +
         " duplicates=" + std::to_string(stats.duplicate_recvs) +
         " unmatched_sends=" + std::to_string(stats.unmatched_sends) +
         " unmatched_recvs=" + std::to_string(stats.unmatched_recvs) +
         " mis_joins=" + std::to_string(stats.mis_joins) + "\n";
  for (const OpBreakdown& op : ops) {
    out += "\nop " + std::to_string(op.op_id) + " " + op.kind +
           " coordinator=" + op.coordinator +
           " wall=" + FormatMs(op.wall()) + "ms" +
           " success=" + (op.success ? "true" : "false") + "\n";
    out += "  " + Pad("phase", 16) + Pad("ms", 16) + Pad("share", 8) +
           "straggler\n";
    for (const PhaseTotal& p : op.phases) {
      out += "  " + Pad(p.phase, 16) + Pad(FormatMs(p.total), 16) +
             Pad(FormatPct(p.total, op.wall()), 8);
      if (p.straggler.empty()) {
        out += "-";
      } else {
        out += p.straggler + " (" + FormatMs(p.straggler_ns) + "ms)";
      }
      out += "\n";
    }
    if (op.tcp_recovery > 0) {
      out += "  tcp-recovery (post-op): " + FormatMs(op.tcp_recovery) +
             "ms\n";
    }
    if (!op.restore_sources.empty()) {
      out += "  restore-sources:";
      for (std::size_t j = 0; j < op.restore_sources.size(); ++j) {
        const RestoreSource& r = op.restore_sources[j];
        out += (j == 0 ? " " : ", ") + r.node + "=" + r.source + " (" +
               FormatMs(r.ns) + "ms)";
      }
      out += "\n";
    }
  }
  return out;
}

std::string CriticalPathAnalyzer::RenderJson(
    const std::vector<OpBreakdown>& ops, const MatchStats& stats) {
  std::string out = "{\"ops\":[";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OpBreakdown& op = ops[i];
    if (i != 0) out += ',';
    out += "{\"op\":" + std::to_string(op.op_id) + ",\"kind\":";
    AppendEscaped(out, op.kind);
    out += ",\"coordinator\":";
    AppendEscaped(out, op.coordinator);
    out += ",\"success\":";
    out += op.success ? "true" : "false";
    out += ",\"begin_ns\":" + std::to_string(op.begin) +
           ",\"end_ns\":" + std::to_string(op.end) +
           ",\"wall_ns\":" + std::to_string(op.wall()) +
           ",\"unattributed_ns\":" + std::to_string(op.unattributed) +
           ",\"tcp_recovery_ns\":" + std::to_string(op.tcp_recovery) +
           ",\"restore_sources\":[";
    for (std::size_t j = 0; j < op.restore_sources.size(); ++j) {
      const RestoreSource& r = op.restore_sources[j];
      if (j != 0) out += ',';
      out += "{\"node\":";
      AppendEscaped(out, r.node);
      out += ",\"source\":";
      AppendEscaped(out, r.source);
      out += ",\"ns\":" + std::to_string(r.ns) + "}";
    }
    out += "],\"phases\":[";
    for (std::size_t j = 0; j < op.phases.size(); ++j) {
      const PhaseTotal& p = op.phases[j];
      if (j != 0) out += ',';
      out += "{\"phase\":";
      AppendEscaped(out, p.phase);
      out += ",\"ns\":" + std::to_string(p.total) + ",\"straggler\":";
      AppendEscaped(out, p.straggler);
      out += ",\"straggler_ns\":" + std::to_string(p.straggler_ns) + "}";
    }
    out += "],\"segments\":[";
    for (std::size_t j = 0; j < op.segments.size(); ++j) {
      const PathSegment& s = op.segments[j];
      if (j != 0) out += ',';
      out += "{\"begin_ns\":" + std::to_string(s.begin) +
             ",\"end_ns\":" + std::to_string(s.end) + ",\"phase\":";
      AppendEscaped(out, s.phase);
      out += ",\"node\":";
      AppendEscaped(out, s.node);
      out += "}";
    }
    out += "]}";
  }
  out += "],\"match_stats\":{\"sends\":" + std::to_string(stats.sends) +
         ",\"recvs\":" + std::to_string(stats.recvs) +
         ",\"matched\":" + std::to_string(stats.matched) +
         ",\"duplicate_recvs\":" + std::to_string(stats.duplicate_recvs) +
         ",\"unmatched_sends\":" + std::to_string(stats.unmatched_sends) +
         ",\"unmatched_recvs\":" + std::to_string(stats.unmatched_recvs) +
         ",\"mis_joins\":" + std::to_string(stats.mis_joins) + "}}";
  return out;
}

}  // namespace cruz::obs::causal
