#include "obs/causal/slo_report.h"

#include <cstdio>
#include <cstdlib>

#include "obs/causal/trace_io.h"

namespace cruz::obs::causal {

namespace {

std::uint64_t ArgU64(const TraceEvent& e, const std::string& key) {
  const std::string& s = EventArg(e, key);
  return s.empty() ? 0 : std::strtoull(s.c_str(), nullptr, 10);
}

std::string FormatMs(DurationNs ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                static_cast<unsigned long long>(ns / 1000000),
                static_cast<unsigned long long>(ns % 1000000));
  return buf;
}

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

DurationNs Overlap(TimeNs a_begin, TimeNs a_end, TimeNs b_begin,
                   TimeNs b_end) {
  TimeNs begin = a_begin > b_begin ? a_begin : b_begin;
  TimeNs end = a_end < b_end ? a_end : b_end;
  return end > begin ? end - begin : 0;
}

// The phase the op spent the most time in (first wins on ties — phases
// are already in canonical order), with its straggler node.
const PhaseTotal* DominantPhase(const OpBreakdown& op) {
  const PhaseTotal* best = nullptr;
  for (const PhaseTotal& p : op.phases) {
    if (p.phase == "unattributed") continue;
    if (best == nullptr || p.total > best->total) best = &p;
  }
  return best;
}

// One candidate charge for a violation window, accumulated in
// deterministic (op order, first-seen) order.
struct Candidate {
  std::string phase;
  std::string node;
  std::uint64_t op_id = 0;
  std::string op_kind;
  DurationNs overlap = 0;
};

void Accumulate(std::vector<Candidate>& cands, const std::string& phase,
                const std::string& node, const OpBreakdown& op,
                DurationNs overlap) {
  for (Candidate& c : cands) {
    if (c.phase == phase && c.node == node && c.op_id == op.op_id) {
      c.overlap += overlap;
      return;
    }
  }
  cands.push_back(Candidate{phase, node, op.op_id, op.kind, overlap});
}

}  // namespace

SloReport BuildSloReport(const CausalGraph& graph,
                         const std::vector<OpBreakdown>& ops) {
  SloReport report;
  for (const TraceEvent& e : graph.events()) {
    if (e.kind != EventKind::kInstant || e.name != "slo.violation") {
      continue;
    }
    SloAttribution a;
    a.objective = EventArg(e, "objective");
    a.window_index = ArgU64(e, "window");
    a.window_begin = ArgU64(e, "begin_ns");
    a.window_end = ArgU64(e, "end_ns");
    a.observed_ns = ArgU64(e, "observed_ns");
    a.threshold_ns = ArgU64(e, "threshold_ns");
    a.count = ArgU64(e, "count");
    DurationNs window_len = a.window_end > a.window_begin
                                ? a.window_end - a.window_begin
                                : 0;

    // 1+2: direct overlap with phase segments and recovery tails.
    std::vector<Candidate> cands;
    for (const OpBreakdown& op : ops) {
      for (const PathSegment& seg : op.segments) {
        if (seg.phase == "unattributed") continue;
        DurationNs ov =
            Overlap(seg.begin, seg.end, a.window_begin, a.window_end);
        if (ov > 0) Accumulate(cands, seg.phase, seg.node, op, ov);
      }
      if (op.tcp_recovery > 0) {
        DurationNs ov = Overlap(op.end, op.end + op.tcp_recovery,
                                a.window_begin, a.window_end);
        if (ov > 0) {
          const PhaseTotal* dom = DominantPhase(op);
          Accumulate(cands, "tcp-recovery",
                     dom != nullptr ? dom->straggler : op.coordinator, op,
                     ov);
        }
      }
    }
    const Candidate* best = nullptr;
    for (const Candidate& c : cands) {
      if (best == nullptr || c.overlap > best->overlap) best = &c;
    }
    if (best != nullptr) {
      a.phase = best->phase;
      a.node = best->node;
      a.op_id = best->op_id;
      a.op_kind = best->op_kind;
      a.overlap_ns = best->overlap;
    } else {
      // 3: queue-drain fallback — requests delayed by an op that ended
      // just before the window began complete (and violate) here.
      const OpBreakdown* recent = nullptr;
      for (const OpBreakdown& op : ops) {
        TimeNs extended_end = op.end + op.tcp_recovery;
        if (extended_end > a.window_begin) continue;  // not preceding
        if (a.window_begin - extended_end > window_len) continue;
        if (recent == nullptr || extended_end > recent->end +
                                                    recent->tcp_recovery) {
          recent = &op;
        }
      }
      const PhaseTotal* dom =
          recent != nullptr ? DominantPhase(*recent) : nullptr;
      if (dom != nullptr) {
        a.phase = dom->phase;
        a.node = dom->straggler.empty() ? recent->coordinator
                                        : dom->straggler;
        a.op_id = recent->op_id;
        a.op_kind = recent->kind;
      } else {
        a.phase = "unattributed";
      }
    }
    if (a.phase != "unattributed" && !a.node.empty()) ++report.attributed;
    report.violations.push_back(std::move(a));
  }
  return report;
}

std::string RenderSloReport(const SloReport& report) {
  std::string out;
  out += "slo attribution report: " +
         std::to_string(report.violations.size()) + " violation(s), " +
         std::to_string(report.attributed) + " attributed\n";
  for (const SloAttribution& a : report.violations) {
    out += "[w " + std::to_string(a.window_index) + "] " +
           FormatMs(a.window_begin) + "ms.." + FormatMs(a.window_end) +
           "ms " + a.objective +
           " observed=" + FormatMs(a.observed_ns) +
           "ms count=" + std::to_string(a.count) + " -> " + a.phase;
    if (a.phase != "unattributed") {
      out += " @ " + (a.node.empty() ? "-" : a.node) + " (op " +
             std::to_string(a.op_id) + " " + a.op_kind;
      if (a.overlap_ns > 0) {
        out += ", overlap " + FormatMs(a.overlap_ns) + "ms";
      } else {
        out += ", queue-drain";
      }
      out += ")";
    }
    out += "\n";
  }
  return out;
}

std::string RenderSloJson(const SloReport& report) {
  std::string out = "{\"violations\":[";
  for (std::size_t i = 0; i < report.violations.size(); ++i) {
    const SloAttribution& a = report.violations[i];
    if (i != 0) out += ',';
    out += "{\"window\":" + std::to_string(a.window_index) +
           ",\"begin_ns\":" + std::to_string(a.window_begin) +
           ",\"end_ns\":" + std::to_string(a.window_end) +
           ",\"objective\":";
    AppendEscaped(out, a.objective);
    out += ",\"observed_ns\":" + std::to_string(a.observed_ns) +
           ",\"threshold_ns\":" + std::to_string(a.threshold_ns) +
           ",\"count\":" + std::to_string(a.count) + ",\"phase\":";
    AppendEscaped(out, a.phase);
    out += ",\"node\":";
    AppendEscaped(out, a.node);
    out += ",\"op\":" + std::to_string(a.op_id) + ",\"kind\":";
    AppendEscaped(out, a.op_kind);
    out += ",\"overlap_ns\":" + std::to_string(a.overlap_ns) + "}";
  }
  out += "],\"attributed\":" + std::to_string(report.attributed) + "}\n";
  return out;
}

}  // namespace cruz::obs::causal
