// Trace stream import and canonical ordering for causal analysis.
//
// The analyzer operates on the same TraceEvent type the Tracer records,
// whether the events come straight from a live tracer (benches, the
// explorer) or from an exported JSONL file (cruz_analyze). ImportJsonl
// inverts Tracer::ExportJsonl line by line.
//
// CanonicalizeTraceOrder establishes the deterministic total order all
// analysis runs in: (timestamp, node, emission seq). The tracer's ring is
// completion-ordered, which is already deterministic for one run, but the
// analyzer must stay byte-stable when per-node streams are merged or a
// file round-trip reorders lines — the node-id tiebreak pins equal-time
// events from different nodes, the seq tiebreak pins equal-time events
// from one node.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace cruz::obs::causal {

struct ImportStats {
  std::size_t events = 0;
  std::size_t skipped = 0;  // malformed or non-event lines
};

// Parses Tracer::ExportJsonl output (one JSON object per line; blank
// lines ignored). Unparseable lines are counted, not fatal: a truncated
// tail must not hide the rest of a flight recording.
std::vector<TraceEvent> ImportJsonl(const std::string& text,
                                    ImportStats* stats = nullptr);

// Sorts into the canonical (ts, agent, seq) total order.
void CanonicalizeTraceOrder(std::vector<TraceEvent>& events);

// Value of a free-form arg on an event; empty string when absent.
const std::string& EventArg(const TraceEvent& e, const std::string& key);

}  // namespace cruz::obs::causal
