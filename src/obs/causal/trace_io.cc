#include "obs/causal/trace_io.h"

#include <algorithm>

#include "obs/causal/json_lite.h"

namespace cruz::obs::causal {

namespace {

bool ParseEventLine(const std::string& line, TraceEvent& out) {
  JsonValue v;
  std::string error;
  if (!ParseJson(line, v, error) || v.type != JsonValue::Type::kObject) {
    return false;
  }
  const JsonValue* kind = v.Find("kind");
  const JsonValue* name = v.Find("name");
  if (kind == nullptr || name == nullptr) return false;
  out.kind = kind->text == "span" ? EventKind::kSpan : EventKind::kInstant;
  out.name = name->text;
  if (const JsonValue* f = v.Find("ts_ns")) out.ts = f->AsU64();
  if (const JsonValue* f = v.Find("dur_ns")) out.dur = f->AsU64();
  if (const JsonValue* f = v.Find("seq")) out.seq = f->AsU64();
  if (const JsonValue* f = v.Find("cat")) out.category = f->text;
  if (const JsonValue* args = v.Find("args")) {
    for (const auto& [key, value] : args->fields) {
      if (key == "op") {
        out.attrs.op = value.AsU64();
      } else if (key == "phase") {
        out.attrs.phase = value.text;
      } else if (key == "agent") {
        out.attrs.agent = value.text;
      } else if (key == "pod") {
        out.attrs.pod = value.AsU64();
      } else if (key == "conn") {
        out.attrs.conn = value.text;
      } else {
        out.attrs.args.emplace_back(key, value.text);
      }
    }
  }
  return true;
}

}  // namespace

std::vector<TraceEvent> ImportJsonl(const std::string& text,
                                    ImportStats* stats) {
  std::vector<TraceEvent> events;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) {
      std::string line = text.substr(begin, end - begin);
      TraceEvent e;
      if (ParseEventLine(line, e)) {
        events.push_back(std::move(e));
        if (stats != nullptr) ++stats->events;
      } else if (stats != nullptr) {
        ++stats->skipped;
      }
    }
    begin = end + 1;
  }
  return events;
}

void CanonicalizeTraceOrder(std::vector<TraceEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     if (a.attrs.agent != b.attrs.agent) {
                       return a.attrs.agent < b.attrs.agent;
                     }
                     return a.seq < b.seq;
                   });
}

const std::string& EventArg(const TraceEvent& e, const std::string& key) {
  static const std::string kEmpty;
  for (const auto& [k, v] : e.attrs.args) {
    if (k == key) return v;
  }
  return kEmpty;
}

}  // namespace cruz::obs::causal
