#include "obs/causal/causal_graph.h"

#include "obs/causal/trace_io.h"

namespace cruz::obs::causal {

namespace {

bool IsSendInstant(const TraceEvent& e) {
  return e.kind == EventKind::kInstant &&
         (e.name == "coord.msg.send" || e.name == "agent.msg.send");
}

bool IsRecvInstant(const TraceEvent& e) {
  return e.kind == EventKind::kInstant &&
         (e.name == "coord.msg.recv" || e.name == "agent.msg.recv");
}

}  // namespace

CausalGraph CausalGraph::Build(std::vector<TraceEvent> events) {
  CanonicalizeTraceOrder(events);
  CausalGraph g;
  g.events_ = std::move(events);

  // First pass: index sends by corr id. In canonical order a send always
  // precedes its recvs (network latency is positive), so the map is
  // complete before any recv consults it — but build it fully anyway so
  // a clock-skewed import still matches.
  std::unordered_map<std::string, std::size_t> send_by_corr;
  for (std::size_t i = 0; i < g.events_.size(); ++i) {
    const TraceEvent& e = g.events_[i];
    if (!IsSendInstant(e)) continue;
    ++g.stats_.sends;
    const std::string& corr = EventArg(e, "corr");
    if (!corr.empty()) send_by_corr.emplace(corr, i);
  }

  for (std::size_t i = 0; i < g.events_.size(); ++i) {
    const TraceEvent& e = g.events_[i];
    if (!IsRecvInstant(e)) continue;
    ++g.stats_.recvs;
    const std::string& corr = EventArg(e, "corr");
    auto it = corr.empty() ? send_by_corr.end() : send_by_corr.find(corr);
    if (it == send_by_corr.end()) {
      ++g.stats_.unmatched_recvs;
      continue;
    }
    std::size_t send_index = it->second;
    const TraceEvent& s = g.events_[send_index];
    // A corr id encodes op and type; a join that disagrees on either
    // means the id scheme broke. Count it and refuse the edge.
    if (s.attrs.op != e.attrs.op ||
        EventArg(s, "type") != EventArg(e, "type")) {
      ++g.stats_.mis_joins;
      continue;
    }
    CausalEdge edge;
    edge.send = send_index;
    edge.recv = i;
    edge.corr = corr;
    auto& recvs = g.recvs_for_send_[send_index];
    edge.duplicate = !recvs.empty();
    if (edge.duplicate) ++g.stats_.duplicate_recvs;
    recvs.push_back(i);
    g.send_for_recv_.emplace(i, send_index);
    g.edges_.push_back(std::move(edge));
    ++g.stats_.matched;
  }

  for (std::size_t i = 0; i < g.events_.size(); ++i) {
    if (IsSendInstant(g.events_[i]) &&
        g.recvs_for_send_.find(i) == g.recvs_for_send_.end()) {
      g.unmatched_sends_.push_back(i);
    }
  }
  g.stats_.unmatched_sends = g.unmatched_sends_.size();
  return g;
}

std::optional<std::size_t> CausalGraph::SendFor(
    std::size_t recv_index) const {
  auto it = send_for_recv_.find(recv_index);
  if (it == send_for_recv_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::size_t> CausalGraph::RecvsFor(
    std::size_t send_index) const {
  auto it = recvs_for_send_.find(send_index);
  if (it == recvs_for_send_.end()) return {};
  return it->second;
}

std::vector<std::size_t> CausalGraph::UnmatchedSends() const {
  return unmatched_sends_;
}

}  // namespace cruz::obs::causal
