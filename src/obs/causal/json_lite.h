// Minimal recursive-descent JSON reader for the analysis tooling.
//
// cruz_analyze consumes files the simulation itself wrote (trace JSONL,
// MetricsRegistry::ExportJson snapshots), so this parser only needs to be
// correct for well-formed JSON, not forgiving: any syntax error fails the
// parse. Object keys keep insertion order; numbers keep their raw text so
// 64-bit nanosecond timestamps round-trip exactly.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cruz::obs::causal {

struct JsonValue {
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  bool boolean = false;
  std::string text;  // string value, or raw number text
  std::vector<JsonValue> items;                          // arrays
  std::vector<std::pair<std::string, JsonValue>> fields;  // objects

  // First field with this key; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  // Number/string as u64 (raw text, exact for 64-bit); 0 on mismatch.
  std::uint64_t AsU64() const;
  double AsDouble() const;
};

// Parses exactly one JSON value (trailing whitespace allowed, trailing
// garbage is an error). Returns false with a message in `error`.
bool ParseJson(const std::string& text, JsonValue& out, std::string& error);

}  // namespace cruz::obs::causal
