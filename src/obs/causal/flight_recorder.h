// Crash-scoped flight recorder.
//
// The tracer's ring buffer is already an always-on bounded window of
// recent history. When something goes wrong — an invariant oracle
// violation, an injected crash the scenario did not survive — Capture()
// freezes the pre-fault window ending at the trigger, joins its causal
// edges, and serializes the whole thing to a single self-contained JSON
// artifact: trigger metadata (including the repro string that replays
// the run), the window's events in canonical order, and the causal-graph
// slice (edges by event seq, unmatched sends, match stats). The events
// array is line-compatible with Tracer::ExportJsonl, so cruz_analyze and
// ImportJsonl consume recordings unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/trace.h"

namespace cruz::obs::causal {

struct FlightTrigger {
  TimeNs ts = 0;          // when the fault fired (sim time)
  std::uint64_t op = 0;   // failing op id, 0 when not op-scoped
  std::string kind;       // "invariant-violation", "crash", ...
  std::string detail;     // human-readable cause (oracle detail, ...)
  std::string repro;      // replay string (cruzrepro1...), may be empty
};

struct FlightRecorderOptions {
  // Pre-fault window: events ending earlier than trigger.ts - window are
  // dropped, as are events that begin after the trigger.
  DurationNs window = 5 * kSecond;
  // Hard cap on recorded events; the oldest are dropped first and the
  // artifact is marked truncated.
  std::size_t max_events = 4096;
};

class FlightRecorder {
 public:
  // Serializes the recording as a single JSON document.
  static std::string Capture(std::vector<TraceEvent> events,
                             const FlightTrigger& trigger,
                             const FlightRecorderOptions& options = {});
};

}  // namespace cruz::obs::causal
