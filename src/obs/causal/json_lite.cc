#include "obs/causal/json_lite.h"

#include <cstdlib>

namespace cruz::obs::causal {

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool Fail(const std::string& why) {
    if (error.empty()) {
      error = why + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Literal(const char* word, std::size_t len) {
    if (text.compare(pos, len, word) != 0) return Fail("bad literal");
    pos += len;
    return true;
  }

  bool ParseString(std::string& out) {
    if (pos >= text.size() || text[pos] != '"') return Fail("expected '\"'");
    ++pos;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return Fail("truncated escape");
      char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // The exporter only escapes control characters; encode the rest
          // of the BMP as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue& out) {
    SkipWs();
    if (pos >= text.size()) return Fail("unexpected end of input");
    char c = text[pos];
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return ParseString(out.text);
    }
    if (c == '{') {
      ++pos;
      out.type = JsonValue::Type::kObject;
      SkipWs();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        SkipWs();
        std::string key;
        if (!ParseString(key)) return false;
        SkipWs();
        if (pos >= text.size() || text[pos] != ':') return Fail("expected ':'");
        ++pos;
        JsonValue value;
        if (!ParseValue(value)) return false;
        out.fields.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (pos >= text.size()) return Fail("unterminated object");
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == '}') {
          ++pos;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out.type = JsonValue::Type::kArray;
      SkipWs();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        JsonValue value;
        if (!ParseValue(value)) return false;
        out.items.push_back(std::move(value));
        SkipWs();
        if (pos >= text.size()) return Fail("unterminated array");
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == ']') {
          ++pos;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == 't') {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return Literal("true", 4);
    }
    if (c == 'f') {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return Literal("false", 5);
    }
    if (c == 'n') {
      out.type = JsonValue::Type::kNull;
      return Literal("null", 4);
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      out.type = JsonValue::Type::kNumber;
      std::size_t start = pos;
      if (text[pos] == '-') ++pos;
      while (pos < text.size() &&
             ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
              text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
              text[pos] == '-')) {
        ++pos;
      }
      out.text = text.substr(start, pos - start);
      return true;
    }
    return Fail("unexpected character");
  }
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t JsonValue::AsU64() const {
  if (type != Type::kNumber && type != Type::kString) return 0;
  return std::strtoull(text.c_str(), nullptr, 10);
}

double JsonValue::AsDouble() const {
  if (type != Type::kNumber && type != Type::kString) return 0;
  return std::strtod(text.c_str(), nullptr);
}

bool ParseJson(const std::string& text, JsonValue& out, std::string& error) {
  out = JsonValue{};  // reused output values must not accumulate fields
  Parser p{text};
  if (!p.ParseValue(out)) {
    error = p.error;
    return false;
  }
  p.SkipWs();
  if (p.pos != text.size()) {
    error = "trailing garbage at offset " + std::to_string(p.pos);
    return false;
  }
  return true;
}

}  // namespace cruz::obs::causal
