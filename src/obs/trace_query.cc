#include "obs/trace_query.h"

#include <algorithm>

namespace cruz::obs {

TraceQuery::TraceQuery(const Tracer& tracer)
    : events_(tracer.events().begin(), tracer.events().end()) {
  std::sort(events_.begin(), events_.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              return a.seq < b.seq;
            });
}

bool TraceQuery::Matches(const TraceEvent& e, const Filter& f) {
  if (!f.category.empty() && e.category != f.category) return false;
  if (!f.name.empty() && e.name != f.name) return false;
  if (f.op != 0 && e.attrs.op != f.op) return false;
  if (!f.agent.empty() && e.attrs.agent != f.agent) return false;
  return true;
}

std::vector<const TraceEvent*> TraceQuery::Select(
    const Filter& filter) const {
  std::vector<const TraceEvent*> out;
  for (const TraceEvent& e : events_) {
    if (Matches(e, filter)) out.push_back(&e);
  }
  return out;
}

const TraceEvent* TraceQuery::First(const Filter& filter) const {
  for (const TraceEvent& e : events_) {
    if (Matches(e, filter)) return &e;
  }
  return nullptr;
}

const TraceEvent* TraceQuery::Last(const Filter& filter) const {
  const TraceEvent* found = nullptr;
  for (const TraceEvent& e : events_) {
    if (Matches(e, filter)) found = &e;
  }
  return found;
}

std::size_t TraceQuery::CountBetween(const Filter& filter, TimeNs begin,
                                     TimeNs end) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.ts >= begin && e.ts <= end && Matches(e, filter)) ++n;
  }
  return n;
}

DurationNs TraceQuery::MaxDuration(const Filter& filter) const {
  DurationNs max = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == EventKind::kSpan && Matches(e, filter)) {
      max = std::max(max, e.dur);
    }
  }
  return max;
}

}  // namespace cruz::obs
