// Deterministic metrics: counters, gauges, histograms.
//
// A MetricsRegistry is a flat name -> instrument map (names are
// dot-separated, e.g. "coord.retransmits_total"). Instruments are created
// on first use and live for the registry's lifetime, so call sites can
// cache references. Iteration order is the sorted name order, and all
// numeric formatting is locale-independent, so TextDump()/ExportJson()
// are byte-stable across runs of a deterministic simulation.
//
// Histograms use power-of-two buckets (upper bound 1, 2, 4, ... 2^63):
// cheap, deterministic, and good enough to separate a 100 us coordination
// overhead from a 1 s disk write.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace cruz::obs {

class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(std::uint64_t v);
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  // Count of samples v with v <= 2^bucket.
  std::uint64_t bucket(int i) const { return buckets_[i]; }

  // Quantile estimate from the power-of-two buckets: the upper bound
  // (2^i) of the bucket containing the sample of rank ceil(q * count),
  // capped at the exactly-tracked max — so Percentile(1.0) == max() and
  // the estimate never exceeds any recorded value's true magnitude by
  // more than the bucket width (a factor of 2). Computed purely from
  // bucket counts, so it works on Restore()d snapshots too. 0 when
  // empty; q is clamped to (0, 1].
  std::uint64_t Percentile(double q) const;

  // Rebuild from an ExportJson snapshot (cruz_analyze re-exposition):
  // Restore the scalars, then RestoreBucket each sparse bucket entry.
  void Restore(std::uint64_t count, std::uint64_t sum, std::uint64_t min_v,
               std::uint64_t max_v) {
    count_ = count;
    sum_ = sum;
    min_ = count == 0 ? ~0ull : min_v;
    max_ = max_v;
  }
  void RestoreBucket(int i, std::uint64_t c) {
    if (i >= 0 && i < kBuckets) buckets_[i] = c;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
  std::uint64_t buckets_[kBuckets] = {};
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  void Reset();

  // "name value" lines (histograms expand to _count/_sum/_min/_max/_mean),
  // sorted by name.
  std::string TextDump() const;
  // {"counters":{...},"gauges":{...},"histograms":{...}} with sorted keys.
  // Histograms include a sparse "buckets" array of [exponent, count]
  // pairs (count of samples v with 2^(e-1) < v <= 2^e), so a snapshot can
  // be re-exposed in Prometheus form by cruz_analyze.
  std::string ExportJson() const;
  // Prometheus text exposition (version 0.0.4): counters and gauges as-is,
  // histograms as cumulative `_bucket{le="2^i"}` series plus `_sum`,
  // `_count`, and (when non-empty) synthesized `{quantile="q"}` lines
  // computed via Percentile(). Names are prefixed "cruz_" with dots
  // mapped to underscores. Bucket series stop at the highest non-empty
  // bucket, then `+Inf`.
  std::string ExportPrometheus() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace cruz::obs
