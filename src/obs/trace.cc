#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace cruz::obs {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendString(std::string& out, const std::string& s) {
  out += '"';
  AppendEscaped(out, s);
  out += '"';
}

// Nanoseconds rendered as microseconds with exactly three decimals:
// integer formatting only, so the output is byte-stable.
void AppendMicros(std::string& out, TimeNs ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  out += buf;
}

// The typed attributes plus free-form args as one JSON object.
void AppendArgs(std::string& out, const TraceAttrs& a) {
  out += '{';
  bool first = true;
  auto sep = [&] {
    if (!first) out += ',';
    first = false;
  };
  if (a.op != 0) {
    sep();
    out += "\"op\":" + std::to_string(a.op);
  }
  if (!a.phase.empty()) {
    sep();
    out += "\"phase\":";
    AppendString(out, a.phase);
  }
  if (!a.agent.empty()) {
    sep();
    out += "\"agent\":";
    AppendString(out, a.agent);
  }
  if (a.pod != 0) {
    sep();
    out += "\"pod\":" + std::to_string(a.pod);
  }
  if (!a.conn.empty()) {
    sep();
    out += "\"conn\":";
    AppendString(out, a.conn);
  }
  for (const auto& [key, value] : a.args) {
    sep();
    AppendString(out, key);
    out += ':';
    AppendString(out, value);
  }
  out += '}';
}

}  // namespace

SpanId Tracer::BeginSpan(std::string category, std::string name,
                         TraceAttrs attrs) {
  if (!enabled_) return kInvalidSpanId;
  SpanId id = next_span_id_++;
  open_[id] = OpenSpan{NowNs(), std::move(category), std::move(name),
                       std::move(attrs)};
  return id;
}

void Tracer::EndSpan(SpanId id) { EndSpan(id, {}); }

void Tracer::EndSpan(
    SpanId id, std::vector<std::pair<std::string, std::string>> extra_args) {
  auto it = open_.find(id);
  if (it == open_.end()) return;
  OpenSpan span = std::move(it->second);
  open_.erase(it);
  if (!enabled_) return;
  TraceEvent event;
  event.kind = EventKind::kSpan;
  event.ts = span.begin;
  event.dur = NowNs() - span.begin;
  event.category = std::move(span.category);
  event.name = std::move(span.name);
  event.attrs = std::move(span.attrs);
  for (auto& [key, value] : extra_args) {
    event.attrs.args.emplace_back(std::move(key), std::move(value));
  }
  Push(std::move(event));
}

void Tracer::Instant(std::string category, std::string name,
                     TraceAttrs attrs) {
  if (!enabled_) return;
  TraceEvent event;
  event.kind = EventKind::kInstant;
  event.ts = NowNs();
  event.category = std::move(category);
  event.name = std::move(name);
  event.attrs = std::move(attrs);
  Push(std::move(event));
}

void Tracer::Push(TraceEvent event) {
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void Tracer::Clear() {
  events_.clear();
  open_.clear();
  dropped_ = 0;
  next_seq_ = 0;
}

std::string Tracer::ExportChromeJson() const {
  // Thread ids per distinct agent, in first-seen order; tid 1 is the
  // coordinator / unattributed track.
  std::unordered_map<std::string, int> tids;
  std::vector<std::string> tid_names;
  auto tid_for = [&](const std::string& agent) {
    if (agent.empty()) return 1;
    auto [it, inserted] =
        tids.emplace(agent, static_cast<int>(tid_names.size()) + 2);
    if (inserted) tid_names.push_back(agent);
    return it->second;
  };

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"ph\":\"";
    out += e.kind == EventKind::kSpan ? 'X' : 'i';
    out += "\",\"pid\":1,\"tid\":" + std::to_string(tid_for(e.attrs.agent));
    out += ",\"ts\":";
    AppendMicros(out, e.ts);
    if (e.kind == EventKind::kSpan) {
      out += ",\"dur\":";
      AppendMicros(out, e.dur);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"cat\":";
    AppendString(out, e.category);
    out += ",\"name\":";
    AppendString(out, e.name);
    out += ",\"args\":";
    AppendArgs(out, e.attrs);
    out += '}';
  }
  // Thread-name metadata so the per-agent tracks are labeled.
  for (std::size_t i = 0; i < tid_names.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(i + 2) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":";
    AppendString(out, tid_names[i]);
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":\"" +
         std::to_string(dropped_) + "\"}}\n";
  return out;
}

void AppendJsonlEvent(std::string& out, const TraceEvent& e) {
  out += "{\"kind\":\"";
  out += e.kind == EventKind::kSpan ? "span" : "instant";
  out += "\",\"ts_ns\":" + std::to_string(e.ts);
  if (e.kind == EventKind::kSpan) {
    out += ",\"dur_ns\":" + std::to_string(e.dur);
  }
  // The emission sequence rides along so re-imported streams keep the
  // deterministic same-timestamp tiebreak (causal analysis needs a total
  // order that is stable across runs of the same seed).
  out += ",\"seq\":" + std::to_string(e.seq);
  out += ",\"cat\":";
  AppendString(out, e.category);
  out += ",\"name\":";
  AppendString(out, e.name);
  out += ",\"args\":";
  AppendArgs(out, e.attrs);
  out += '}';
}

std::string Tracer::ExportJsonl() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    AppendJsonlEvent(out, e);
    out += '\n';
  }
  return out;
}

}  // namespace cruz::obs
