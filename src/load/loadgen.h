// Open-loop load generation against the kv store.
//
// A LoadGen drives one threaded cruz.kv_server with many concurrent
// connections, each a `cruz.kv_loadconn` process on a client node. The
// schedule is open-loop: connection c's k-th request has an *intended*
// send time of
//
//     base + offset_c + k * interarrival
//
// fixed entirely by the configuration, never by the server. A connection
// that finds itself past its intended time (because the previous response
// stalled behind a checkpoint freeze) issues immediately, and the
// request's latency is measured from the intended time — so the queueing
// delay a closed-loop harness would silently absorb is charged to the
// measurement. Coordinated omission is impossible by construction: there
// is no code path that shifts the schedule.
//
// Completions flow through ProcessCtx::ReportOpLatency into the node's
// op-latency sink, which LoadGen points at a WindowedRecorder — the
// per-window percentile timeline that SloMonitor and `cruz_analyze --slo`
// consume. Every connection verifies GETs against a private mirror;
// keyspaces are partitioned per connection (key_base = conn *
// keys_per_conn) so concurrent connections never race on a key. The
// server table has 4096 slots and no deletion, so connections *
// keys_per_conn must stay <= 2048 to keep the load factor sane; Start()
// checks this.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/units.h"
#include "net/address.h"
#include "obs/latency/windowed.h"
#include "os/os.h"

namespace cruz::load {

struct LoadGenOptions {
  net::Ipv4Address server_ip{};
  std::uint16_t port = 5432;
  std::uint32_t connections = 256;
  // Per-connection interarrival; aggregate arrival rate is
  // connections / interarrival.
  DurationNs interarrival = 10 * kMillisecond;
  std::uint32_t requests_per_conn = 100;
  TimeNs base = 0;  // schedule origin (and the recorder's window origin)
  DurationNs window = 100 * kMillisecond;
  std::uint32_t keys_per_conn = 2;
  std::uint64_t seed = 1;
};

class LoadGen {
 public:
  // `client_os` is the node the connection processes run on; its
  // op-latency sink is claimed by Start().
  LoadGen(os::Os& client_os, const LoadGenOptions& options);

  // Spawns one cruz.kv_loadconn per connection and installs the sink.
  // Wire SLO evaluation via recorder().SetWindowCallback *before* this.
  void Start();

  // True once every connection has reported its full request quota.
  bool Done() const { return completed_ >= expected_; }
  // Flushes the trailing partial window; call after the run.
  void Finish() { recorder_.Finalize(); }

  obs::WindowedRecorder& recorder() { return recorder_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t expected() const { return expected_; }
  const std::vector<os::Pid>& pids() const { return pids_; }
  // Sums verification failures across all connection processes.
  std::uint64_t VerificationFailures() const;

 private:
  os::Os& os_;
  LoadGenOptions options_;
  obs::WindowedRecorder recorder_;
  std::vector<os::Pid> pids_;
  std::uint64_t completed_ = 0;
  std::uint64_t expected_;
};

// Args for one cruz.kv_loadconn process. Exposed for tests that drive a
// single connection without the LoadGen harness.
cruz::Bytes KvLoadConnArgs(net::Ipv4Address server_ip, std::uint16_t port,
                           std::uint32_t conn, TimeNs base,
                           DurationNs interarrival, DurationNs offset,
                           std::uint32_t requests, std::uint64_t seed,
                           std::uint32_t key_base, std::uint32_t key_count);

struct LoadConnStatus {
  std::uint64_t requests_done = 0;
  std::uint64_t verification_failures = 0;
};
LoadConnStatus ReadLoadConnStatus(const os::Process& proc);

// Registers cruz.kv_loadconn (idempotent).
void RegisterLoadPrograms();

}  // namespace cruz::load
