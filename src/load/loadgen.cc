#include "load/loadgen.h"

#include <memory>

#include "apps/kvstore.h"
#include "apps/minimsg.h"
#include "apps/programs.h"
#include "common/error.h"

namespace cruz::load {

namespace {

using apps::IoStatus;
using apps::kKvRequestSize;
using apps::kKvResponseSize;
using apps::kStatusAddr;

// Request/response staging buffer (response at +64).
constexpr std::uint64_t kIoAddr = 0x380000;
// Per-key GET-verification mirror: [known][value] stride 16.
constexpr std::uint64_t kMirrorAddr = kStatusAddr + 16;

// splitmix-style mixer; independent of the server's hash (the mirror
// lives client-side, nothing needs to agree across the wire).
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// ---------------------------------------------------------------------------
// cruz.kv_loadconn — one open-loop connection.
// ---------------------------------------------------------------------------

class KvLoadConnProgram : public os::Program {
 public:
  // Registers: r3 fd, r6 io progress. The request index lives in status
  // memory so the connection is checkpoint-safe like every program here.
  void Step(os::ProcessCtx& ctx) override {
    enum : std::uint64_t {
      kInit,
      kConnect,
      kWait,
      kIssue,
      kSendRequest,
      kRecvResponse,
      kVerify,
    };
    cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
    cruz::ByteReader r(args);
    net::Endpoint server{net::Ipv4Address{r.GetU32()}, r.GetU16()};
    std::uint32_t conn = r.GetU32();
    TimeNs base = r.GetU64();
    DurationNs interarrival = r.GetU64();
    DurationNs offset = r.GetU64();
    std::uint32_t requests = r.GetU32();
    std::uint64_t seed = r.GetU64();
    std::uint32_t key_base = r.GetU32();
    std::uint32_t key_count = r.GetU32();

    switch (ctx.Pc()) {
      case kInit: {
        SysResult fd = ctx.SocketTcp();
        if (!SysOk(fd)) {
          ctx.ExitProcess(1);
          return;
        }
        ctx.Reg(3) = static_cast<std::uint64_t>(fd);
        ctx.Pc() = kConnect;
        break;
      }
      case kConnect: {
        switch (apps::ConnectTo(ctx, static_cast<os::Fd>(ctx.Reg(3)),
                                server)) {
          case IoStatus::kDone:
            ctx.Pc() = kWait;
            break;
          case IoStatus::kBlocked:
            return;
          default:
            ctx.Close(static_cast<os::Fd>(ctx.Reg(3)));
            ctx.Pc() = kInit;
            ctx.Sleep(10 * kMillisecond);
            return;
        }
        break;
      }
      case kWait: {
        std::uint64_t index = ctx.Mem().ReadU64(kStatusAddr);
        if (index >= requests) {
          ctx.Close(static_cast<os::Fd>(ctx.Reg(3)));
          ctx.ExitProcess(0);
          return;
        }
        // The intended send time is a pure function of the schedule; a
        // late response never shifts it, it only makes `now` later.
        TimeNs intended = base + offset + index * interarrival;
        if (ctx.Now() < intended) {
          ctx.Sleep(intended - ctx.Now());
          return;
        }
        ctx.Pc() = kIssue;
        break;
      }
      case kIssue: {
        std::uint64_t index = ctx.Mem().ReadU64(kStatusAddr);
        std::uint64_t h = Mix(seed ^ Mix(index));
        bool is_put = (h & 1) != 0;
        std::uint32_t key = key_base + static_cast<std::uint32_t>(h >> 8) %
                                           (key_count == 0 ? 1 : key_count);
        std::uint64_t value = Mix(h);
        cruz::ByteWriter w;
        w.PutU8(is_put ? 1 : 2);
        w.PutU32(key);
        w.PutU64(is_put ? value : 0);
        ctx.Mem().WriteBytes(kIoAddr, w.data());
        ctx.Reg(6) = 0;
        ctx.Pc() = kSendRequest;
        break;
      }
      case kSendRequest: {
        std::uint64_t progress = ctx.Reg(6);
        IoStatus s = apps::SendAll(ctx, static_cast<os::Fd>(ctx.Reg(3)),
                                   kIoAddr, kKvRequestSize, progress);
        ctx.Reg(6) = progress;
        if (s == IoStatus::kBlocked) return;
        if (s != IoStatus::kDone) {
          ctx.ExitProcess(2);
          return;
        }
        ctx.Reg(6) = 0;
        ctx.Pc() = kRecvResponse;
        break;
      }
      case kRecvResponse: {
        std::uint64_t progress = ctx.Reg(6);
        IoStatus s = apps::RecvAll(ctx, static_cast<os::Fd>(ctx.Reg(3)),
                                   kIoAddr + 64, kKvResponseSize, progress);
        ctx.Reg(6) = progress;
        if (s == IoStatus::kBlocked) return;
        if (s != IoStatus::kDone) {
          ctx.ExitProcess(3);
          return;
        }
        ctx.Reg(6) = 0;
        ctx.Pc() = kVerify;
        break;
      }
      case kVerify: {
        std::uint64_t index = ctx.Mem().ReadU64(kStatusAddr);
        std::uint64_t h = Mix(seed ^ Mix(index));
        bool is_put = (h & 1) != 0;
        std::uint32_t j = static_cast<std::uint32_t>(h >> 8) %
                          (key_count == 0 ? 1 : key_count);
        std::uint64_t value = Mix(h);
        std::uint64_t mirror = kMirrorAddr + j * 16;
        cruz::Bytes resp =
            ctx.Mem().ReadBytes(kIoAddr + 64, kKvResponseSize);
        cruz::ByteReader rr(resp);
        std::uint8_t status = rr.GetU8();
        std::uint64_t result = rr.GetU64();
        std::uint64_t failures = ctx.Mem().ReadU64(kStatusAddr + 8);
        if (is_put) {
          if (status != 1 || result != value) ++failures;
          ctx.Mem().WriteU64(mirror, 1);
          ctx.Mem().WriteU64(mirror + 8, value);
        } else if (ctx.Mem().ReadU64(mirror) == 1) {
          if (status != 1 || result != ctx.Mem().ReadU64(mirror + 8)) {
            ++failures;
          }
        } else if (status != 0) {
          ++failures;
        }
        ctx.Mem().WriteU64(kStatusAddr + 8, failures);
        ctx.Mem().WriteU64(kStatusAddr, index + 1);
        ctx.ReportOpLatency(conn, base + offset + index * interarrival);
        ctx.Pc() = kWait;
        break;
      }
    }
  }
};

}  // namespace

LoadGen::LoadGen(os::Os& client_os, const LoadGenOptions& options)
    : os_(client_os),
      options_(options),
      recorder_(options.base, options.window),
      expected_(static_cast<std::uint64_t>(options.connections) *
                options.requests_per_conn) {}

void LoadGen::Start() {
  CRUZ_CHECK(options_.connections * options_.keys_per_conn <= 2048,
             "keyspace exceeds half the server table (4096 slots)");
  RegisterLoadPrograms();
  os_.set_op_latency_sink(
      [this](std::uint64_t, TimeNs intended, TimeNs completed) {
        ++completed_;
        recorder_.Record(completed, completed - intended);
      });
  for (std::uint32_t c = 0; c < options_.connections; ++c) {
    // Spread connection phases uniformly across one interarrival period
    // so the aggregate arrival process is smooth, not a thundering herd.
    DurationNs offset = options_.connections == 0
                            ? 0
                            : options_.interarrival * c / options_.connections;
    cruz::Bytes args = KvLoadConnArgs(
        options_.server_ip, options_.port, c, options_.base,
        options_.interarrival, offset, options_.requests_per_conn,
        options_.seed + c, c * options_.keys_per_conn,
        options_.keys_per_conn);
    pids_.push_back(os_.Spawn("cruz.kv_loadconn", args));
  }
}

std::uint64_t LoadGen::VerificationFailures() const {
  std::uint64_t total = 0;
  for (os::Pid pid : pids_) {
    if (const os::Process* proc = os_.FindProcess(pid)) {
      total += ReadLoadConnStatus(*proc).verification_failures;
    }
  }
  return total;
}

cruz::Bytes KvLoadConnArgs(net::Ipv4Address server_ip, std::uint16_t port,
                           std::uint32_t conn, TimeNs base,
                           DurationNs interarrival, DurationNs offset,
                           std::uint32_t requests, std::uint64_t seed,
                           std::uint32_t key_base, std::uint32_t key_count) {
  cruz::ByteWriter w;
  w.PutU32(server_ip.value);
  w.PutU16(port);
  w.PutU32(conn);
  w.PutU64(base);
  w.PutU64(interarrival);
  w.PutU64(offset);
  w.PutU32(requests);
  w.PutU64(seed);
  w.PutU32(key_base);
  w.PutU32(key_count);
  return w.Take();
}

LoadConnStatus ReadLoadConnStatus(const os::Process& proc) {
  LoadConnStatus s;
  s.requests_done = proc.memory().ReadU64(kStatusAddr);
  s.verification_failures = proc.memory().ReadU64(kStatusAddr + 8);
  return s;
}

void RegisterLoadPrograms() {
  static const bool done = [] {
    os::ProgramRegistry::Instance().Register(
        "cruz.kv_loadconn",
        [] { return std::make_unique<KvLoadConnProgram>(); });
    return true;
  }();
  (void)done;
}

}  // namespace cruz::load
