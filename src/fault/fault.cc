#include "fault/fault.h"

#include <sstream>

namespace cruz::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMessageDrop:
      return "msg-drop";
    case FaultKind::kMessageDuplicate:
      return "msg-dup";
    case FaultKind::kMessageDelay:
      return "msg-delay";
    case FaultKind::kDiskWriteFail:
      return "disk-write-fail";
    case FaultKind::kImageCorrupt:
      return "image-corrupt";
    case FaultKind::kAgentCrash:
      return "agent-crash";
    case FaultKind::kNodeCrash:
      return "node-crash";
    case FaultKind::kNodeReboot:
      return "node-reboot";
    case FaultKind::kLocalDiskLoss:
      return "local-disk-loss";
    case FaultKind::kPartnerUnreachable:
      return "partner-unreachable";
    case FaultKind::kNetfsOutage:
      return "netfs-outage";
    case FaultKind::kNoSpace:
      return "no-space";
  }
  return "?";
}

void FaultPlan::ArmDiskWriteFailure(const std::string& node,
                                    std::uint32_t count) {
  disk_failures_[node] += count;
}

void FaultPlan::ArmImageCorruption(const std::string& node,
                                   std::uint32_t count) {
  corruptions_[node] += count;
}

void FaultPlan::ArmAgentCrash(const std::string& node,
                              std::uint8_t msg_type) {
  agent_crashes_[node] = msg_type;
}

void FaultPlan::ArmNodeCrash(std::size_t index, TimeNs crash_at,
                             DurationNs reboot_after) {
  node_crashes_.push_back(NodeCrashSpec{index, crash_at, reboot_after});
}

void FaultPlan::ArmAgentCrashAt(std::size_t index, TimeNs crash_at) {
  agent_crash_times_.push_back(AgentCrashSpec{index, crash_at});
}

void FaultPlan::ArmLocalDiskLoss(std::size_t index, TimeNs at) {
  disk_losses_.push_back(DiskLossSpec{index, at});
}

void FaultPlan::ArmPartnerUnreachable(const std::string& node) {
  partner_unreachable_.insert(node);
}

void FaultPlan::ArmNetfsOutage(TimeNs start, DurationNs duration) {
  netfs_outages_.push_back(NetfsOutageSpec{start, duration});
}

std::size_t FaultPlan::CountEvents(FaultKind kind) const {
  std::size_t n = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string FaultPlan::EventLog() const {
  std::ostringstream os;
  for (const FaultEvent& e : events_) {
    os << FaultKindName(e.kind) << " " << e.detail << "\n";
  }
  return os.str();
}

void FaultPlan::RecordEvent(FaultKind kind, const std::string& detail) {
  events_.push_back(FaultEvent{kind, detail});
  if (tracer_ != nullptr) {
    tracer_->Instant("fault",
                     std::string("fault.") + FaultKindName(kind),
                     obs::TraceAttrs{}.Arg("detail", detail));
  }
}

MessageFate FaultPlan::OnControlSend(const std::string& sender_node,
                                     std::uint32_t receiver_ip,
                                     std::uint8_t msg_type) {
  MessageFate fate;
  // One RNG draw per armed fault class per message keeps the stream
  // consumption — and with it the whole run — deterministic.
  std::string detail = sender_node + "->" + std::to_string(receiver_ip) +
                       " type=" + std::to_string(msg_type);
  if (loss_p_ > 0.0 && rng_.NextBernoulli(loss_p_)) {
    fate.drop = true;
    RecordEvent(FaultKind::kMessageDrop, detail);
    return fate;  // dropped messages are neither delayed nor duplicated
  }
  if (dup_p_ > 0.0 && rng_.NextBernoulli(dup_p_)) {
    fate.duplicate = true;
    RecordEvent(FaultKind::kMessageDuplicate, detail);
  }
  if (delay_p_ > 0.0 && max_delay_ > 0 && rng_.NextBernoulli(delay_p_)) {
    fate.delay = rng_.NextBelow(max_delay_) + 1;
    RecordEvent(FaultKind::kMessageDelay, detail);
  }
  return fate;
}

bool FaultPlan::FailImageWrite(const std::string& node,
                               const std::string& path) {
  auto it = disk_failures_.find(node);
  if (it == disk_failures_.end() || it->second == 0) return false;
  --it->second;
  RecordEvent(FaultKind::kDiskWriteFail, node + " " + path);
  return true;
}

void FaultPlan::MaybeCorruptImage(const std::string& node,
                                  const std::string& path,
                                  cruz::Bytes& image) {
  auto it = corruptions_.find(node);
  if (it == corruptions_.end() || it->second == 0 || image.empty()) return;
  --it->second;
  // Flip a handful of bits at seeded offsets; enough to defeat the image
  // CRC with certainty while leaving the file readable.
  std::size_t flips = 1 + rng_.NextBelow(7);
  for (std::size_t i = 0; i < flips; ++i) {
    std::size_t at = rng_.NextBelow(image.size());
    image[at] ^= static_cast<std::uint8_t>(1u << rng_.NextBelow(8));
  }
  RecordEvent(FaultKind::kImageCorrupt, node + " " + path);
}

bool FaultPlan::CrashAgentOnMessage(const std::string& node,
                                    std::uint8_t msg_type) {
  auto it = agent_crashes_.find(node);
  if (it == agent_crashes_.end() || it->second != msg_type) return false;
  agent_crashes_.erase(it);  // one-shot
  RecordEvent(FaultKind::kAgentCrash, node);
  return true;
}

bool FaultPlan::PartnerUnreachable(const std::string& node) {
  if (partner_unreachable_.count(node) == 0) return false;
  RecordEvent(FaultKind::kPartnerUnreachable, node);
  return true;
}

void FaultPlan::OnNoSpace(const std::string& store, const std::string& path) {
  RecordEvent(FaultKind::kNoSpace, store + " " + path);
}

}  // namespace cruz::fault
