// Deterministic fault injection.
//
// The paper claims the Fig. 2 protocol "can be extended in a
// straightforward way to tolerate Coordinator and Agent failures"; this
// module provides the machinery to actually exercise those extensions. A
// FaultPlan is armed from tests and benches with a set of fault specs —
// agent-process crashes, whole-node crashes (with scheduled reboot), disk
// write failures, checkpoint-image bit corruption, and control-channel
// drop/duplicate/delay — and every probabilistic decision is drawn from a
// single seeded RNG, so a run is reproducible bit-for-bit from the seed.
//
// The plan is passive: the coordination and checkpoint layers consult it
// at well-defined hook points (Injector interface) and apply whatever fate
// it dictates. Node crash/reboot schedules are the one exception — they
// are fixed times computed at arm time, executed by cruz::Cluster::
// ArmFaults, which keeps the plan itself free of simulator dependencies.
// Every injected fault is appended to an event log tests can assert on.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/units.h"
#include "obs/trace.h"

namespace cruz::fault {

// What happens to one control-plane message about to be sent.
struct MessageFate {
  bool drop = false;
  bool duplicate = false;
  DurationNs delay = 0;  // applied to the original (and the duplicate)
};

enum class FaultKind : std::uint8_t {
  kMessageDrop,
  kMessageDuplicate,
  kMessageDelay,
  kDiskWriteFail,
  kImageCorrupt,
  kAgentCrash,
  kNodeCrash,
  kNodeReboot,
  // Tier-scoped storage faults (the tiered checkpoint store consults
  // these; see src/ckpt/store/).
  kLocalDiskLoss,       // a node's tier-1 cache is wiped
  kPartnerUnreachable,  // replication to / reads from a partner blocked
  kNetfsOutage,         // the shared FS rejects all I/O for a window
  kNoSpace,             // a write hit -ENOSPC on some tier
};

const char* FaultKindName(FaultKind kind);

// One injected fault, recorded for post-run assertions.
struct FaultEvent {
  FaultKind kind;
  std::string detail;  // node name, image path, message type, ...
};

// Hook interface consulted by the coordination / checkpoint layers. All
// hooks are no-fault by default so a null injector and a default injector
// behave identically.
class Injector {
 public:
  virtual ~Injector() = default;

  // Control-channel message about to leave `sender_node` for
  // `receiver_node`; `msg_type` is the raw coord::MsgType byte.
  virtual MessageFate OnControlSend(const std::string& sender_node,
                                    std::uint32_t receiver_ip,
                                    std::uint8_t msg_type) {
    (void)sender_node;
    (void)receiver_ip;
    (void)msg_type;
    return {};
  }

  // True if the checkpoint-image write on `node` must fail with an I/O
  // error (the agent reports the failure instead of <done>).
  virtual bool FailImageWrite(const std::string& node,
                              const std::string& path) {
    (void)node;
    (void)path;
    return false;
  }

  // Flips bits in an image that is about to be written (silent media
  // corruption; detected later by the CRC check on restore/verify).
  virtual void MaybeCorruptImage(const std::string& node,
                                 const std::string& path,
                                 cruz::Bytes& image) {
    (void)node;
    (void)path;
    (void)image;
  }

  // True if the agent process on `node` must crash upon receiving a
  // message of `msg_type` (it stops responding until Reset()).
  virtual bool CrashAgentOnMessage(const std::string& node,
                                   std::uint8_t msg_type) {
    (void)node;
    (void)msg_type;
    return false;
  }

  // True if storage traffic between `node` and another node's disk must
  // be blocked (partner replication on commit, partner reads on
  // restore). Models a partition that leaves the control plane intact.
  virtual bool PartnerUnreachable(const std::string& node) {
    (void)node;
    return false;
  }

  // Notification: a write on `store` (a tier name, e.g. "node2:disk" or
  // "netfs") returned -ENOSPC. Lets the plan log the fault even though
  // capacity itself is configuration, not an injected event.
  virtual void OnNoSpace(const std::string& store, const std::string& path) {
    (void)store;
    (void)path;
  }
};

// A whole-node crash with an optional scheduled reboot, executed by
// Cluster::ArmFaults through sim events.
struct NodeCrashSpec {
  std::size_t node_index = 0;
  TimeNs crash_at = 0;
  DurationNs reboot_after = 0;  // 0 = stays down
};

// An agent-process crash at an absolute sim time (the node stays up),
// executed by Cluster::ArmFaults through sim events. Unlike the
// message-triggered ArmAgentCrash, a timed crash can land in the middle
// of an agent's background work — e.g. the copy-on-write write-out
// window, after the pod has already resumed.
struct AgentCrashSpec {
  std::size_t node_index = 0;
  TimeNs crash_at = 0;
};

// A scheduled loss of one node's tier-1 checkpoint cache (the node
// itself keeps running), executed by Cluster::ArmFaults.
struct DiskLossSpec {
  std::size_t node_index = 0;
  TimeNs at = 0;
};

// A window during which the shared netfs fails every operation with
// -EIO, executed by Cluster::ArmFaults (availability toggles).
struct NetfsOutageSpec {
  TimeNs start = 0;
  DurationNs duration = 0;
};

class FaultPlan : public Injector {
 public:
  explicit FaultPlan(std::uint64_t seed) : rng_(seed) {}

  // --- arming -------------------------------------------------------------
  // Control-channel faults, applied to every coordination message.
  void ArmMessageLoss(double probability) { loss_p_ = probability; }
  void ArmMessageDuplication(double probability) { dup_p_ = probability; }
  void ArmMessageDelay(double probability, DurationNs max_delay) {
    delay_p_ = probability;
    max_delay_ = max_delay;
  }

  // Fails the next `count` checkpoint-image writes on `node`.
  void ArmDiskWriteFailure(const std::string& node, std::uint32_t count = 1);

  // Corrupts the next `count` image writes on `node` (random bit flips).
  void ArmImageCorruption(const std::string& node, std::uint32_t count = 1);

  // Crashes the agent on `node` when it next receives a message of
  // `msg_type` (e.g. coord::MsgType::kCheckpoint as a raw byte).
  void ArmAgentCrash(const std::string& node, std::uint8_t msg_type);

  // Schedules a fail-stop of node `index` at `crash_at` (absolute sim
  // time), rebooting `reboot_after` later (0 = stays down). Executed by
  // Cluster::ArmFaults.
  void ArmNodeCrash(std::size_t index, TimeNs crash_at,
                    DurationNs reboot_after = 0);

  // Crashes only the agent process on node `index` at `crash_at`
  // (absolute sim time); the node itself keeps running. Executed by
  // Cluster::ArmFaults.
  void ArmAgentCrashAt(std::size_t index, TimeNs crash_at);

  // Wipes the tier-1 checkpoint cache of node `index` at `at` (absolute
  // sim time); the node keeps running. Executed by Cluster::ArmFaults.
  void ArmLocalDiskLoss(std::size_t index, TimeNs at);

  // Blocks storage traffic between `node` and other nodes' disks for the
  // rest of the run (partner replication and partner-tier reads fail).
  void ArmPartnerUnreachable(const std::string& node);

  // Makes the shared netfs unavailable for [start, start + duration).
  // Executed by Cluster::ArmFaults.
  void ArmNetfsOutage(TimeNs start, DurationNs duration);

  const std::vector<NodeCrashSpec>& node_crashes() const {
    return node_crashes_;
  }
  const std::vector<AgentCrashSpec>& agent_crash_times() const {
    return agent_crash_times_;
  }
  const std::vector<DiskLossSpec>& disk_losses() const {
    return disk_losses_;
  }
  const std::vector<NetfsOutageSpec>& netfs_outages() const {
    return netfs_outages_;
  }

  // Mirror every injected fault onto a tracer timeline (nullptr
  // disables). Cluster::ArmFaults routes the plan to the sim's tracer so
  // fault instants interleave with the protocol spans they perturb.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // --- injected-fault log -------------------------------------------------
  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t CountEvents(FaultKind kind) const;
  // Compact one-line-per-event form; equal across runs with equal seeds
  // and equal schedules (determinism assertions).
  std::string EventLog() const;
  void RecordEvent(FaultKind kind, const std::string& detail);

  // --- Injector -----------------------------------------------------------
  MessageFate OnControlSend(const std::string& sender_node,
                            std::uint32_t receiver_ip,
                            std::uint8_t msg_type) override;
  bool FailImageWrite(const std::string& node,
                      const std::string& path) override;
  void MaybeCorruptImage(const std::string& node, const std::string& path,
                         cruz::Bytes& image) override;
  bool CrashAgentOnMessage(const std::string& node,
                           std::uint8_t msg_type) override;
  bool PartnerUnreachable(const std::string& node) override;
  void OnNoSpace(const std::string& store, const std::string& path) override;

 private:
  Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  double loss_p_ = 0.0;
  double dup_p_ = 0.0;
  double delay_p_ = 0.0;
  DurationNs max_delay_ = 0;
  std::map<std::string, std::uint32_t> disk_failures_;   // node -> remaining
  std::map<std::string, std::uint32_t> corruptions_;     // node -> remaining
  std::map<std::string, std::uint8_t> agent_crashes_;    // node -> msg type
  std::vector<NodeCrashSpec> node_crashes_;
  std::vector<AgentCrashSpec> agent_crash_times_;
  std::vector<DiskLossSpec> disk_losses_;
  std::vector<NetfsOutageSpec> netfs_outages_;
  std::set<std::string> partner_unreachable_;
  std::vector<FaultEvent> events_;
};

}  // namespace cruz::fault
