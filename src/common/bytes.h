// Bounds-checked binary codecs.
//
// ByteWriter appends fixed-width integers (network byte order), blobs, and
// length-prefixed strings to a growable buffer. ByteReader consumes the same
// encoding and throws CodecError on any truncation or overrun, so corrupted
// packets and checkpoint images fail loudly instead of propagating garbage.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace cruz {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  // Adopts a recycled buffer (cleared, capacity kept) so pooled hot
  // paths can encode without touching the allocator.
  ByteWriter(Bytes reuse, std::size_t reserve) : buf_(std::move(reuse)) {
    buf_.clear();
    buf_.reserve(reserve);
  }

  void PutU8(std::uint8_t v) { buf_.push_back(v); }
  void PutU16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void PutU32(std::uint32_t v) {
    PutU16(static_cast<std::uint16_t>(v >> 16));
    PutU16(static_cast<std::uint16_t>(v));
  }
  void PutU64(std::uint64_t v) {
    PutU32(static_cast<std::uint32_t>(v >> 32));
    PutU32(static_cast<std::uint32_t>(v));
  }
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutBytes(ByteSpan data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void PutBytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  // Length-prefixed (u32) blob.
  void PutBlob(ByteSpan data) {
    PutU32(static_cast<std::uint32_t>(data.size()));
    PutBytes(data);
  }
  // Length-prefixed (u32) string.
  void PutString(const std::string& s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    PutBytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  // Overwrites a previously written u16 at `offset` (e.g. a length or
  // checksum field patched after the payload is known).
  void PatchU16(std::size_t offset, std::uint16_t v) {
    CRUZ_CHECK(offset + 2 <= buf_.size(), "PatchU16 out of range");
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }
  void PatchU32(std::size_t offset, std::uint32_t v) {
    CRUZ_CHECK(offset + 4 <= buf_.size(), "PatchU32 out of range");
    buf_[offset] = static_cast<std::uint8_t>(v >> 24);
    buf_[offset + 1] = static_cast<std::uint8_t>(v >> 16);
    buf_[offset + 2] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 3] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const { return buf_.size(); }
  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  std::uint8_t GetU8() {
    Need(1);
    return data_[pos_++];
  }
  std::uint16_t GetU16() {
    Need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t GetU32() {
    std::uint32_t hi = GetU16();
    return (hi << 16) | GetU16();
  }
  std::uint64_t GetU64() {
    std::uint64_t hi = GetU32();
    return (hi << 32) | GetU32();
  }
  std::int64_t GetI64() { return static_cast<std::int64_t>(GetU64()); }
  bool GetBool() { return GetU8() != 0; }

  Bytes GetBytes(std::size_t n) {
    Need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  ByteSpan GetSpan(std::size_t n) {
    Need(n);
    ByteSpan out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  Bytes GetBlob() {
    std::uint32_t n = GetU32();
    return GetBytes(n);
  }
  std::string GetString() {
    std::uint32_t n = GetU32();
    ByteSpan s = GetSpan(n);
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }

  void Skip(std::size_t n) {
    Need(n);
    pos_ += n;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  void Need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw CodecError("ByteReader: truncated input (need " +
                       std::to_string(n) + " bytes at offset " +
                       std::to_string(pos_) + ", have " +
                       std::to_string(data_.size() - pos_) + ")");
    }
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace cruz
