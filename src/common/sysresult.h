// Errno-style syscall results for the simulated OS.
//
// The simulated kernel exposes the same convention as Linux: syscalls return
// a non-negative value on success and -errno on failure. Keeping this ABI
// (rather than exceptions or std::expected) is deliberate: the Zap/Cruz
// interposition layer wraps syscalls, and faithful error propagation through
// the wrappers is part of what the paper's mechanism must preserve.
#pragma once

#include <cstdint>

namespace cruz {

using SysResult = std::int64_t;

// Simulated errno values. Numeric values match Linux x86-64 so that traces
// read naturally; only the constants used by the simulation are defined.
enum Errno : int {
  CRUZ_EOK = 0,
  CRUZ_EPERM = 1,
  CRUZ_ENOENT = 2,
  CRUZ_ESRCH = 3,
  CRUZ_EINTR = 4,
  CRUZ_EIO = 5,
  CRUZ_EBADF = 9,
  CRUZ_ECHILD = 10,
  CRUZ_EAGAIN = 11,
  CRUZ_ENOMEM = 12,
  CRUZ_EACCES = 13,
  CRUZ_EFAULT = 14,
  CRUZ_EBUSY = 16,
  CRUZ_EEXIST = 17,
  CRUZ_ENODEV = 19,
  CRUZ_ENOTDIR = 20,
  CRUZ_EISDIR = 21,
  CRUZ_EINVAL = 22,
  CRUZ_ENFILE = 23,
  CRUZ_EMFILE = 24,
  CRUZ_ENOTTY = 25,
  CRUZ_EFBIG = 27,
  CRUZ_ENOSPC = 28,
  CRUZ_ESPIPE = 29,
  CRUZ_EROFS = 30,
  CRUZ_EPIPE = 32,
  CRUZ_ENOSYS = 38,
  CRUZ_ENOTEMPTY = 39,
  CRUZ_ENOTSOCK = 88,
  CRUZ_EDESTADDRREQ = 89,
  CRUZ_EMSGSIZE = 90,
  CRUZ_EOPNOTSUPP = 95,
  CRUZ_EADDRINUSE = 98,
  CRUZ_EADDRNOTAVAIL = 99,
  CRUZ_ENETUNREACH = 101,
  CRUZ_ECONNABORTED = 103,
  CRUZ_ECONNRESET = 104,
  CRUZ_ENOBUFS = 105,
  CRUZ_EISCONN = 106,
  CRUZ_ENOTCONN = 107,
  CRUZ_ETIMEDOUT = 110,
  CRUZ_ECONNREFUSED = 111,
  CRUZ_EHOSTUNREACH = 113,
  CRUZ_EALREADY = 114,
  CRUZ_EINPROGRESS = 115,
};

constexpr SysResult SysErr(Errno e) { return -static_cast<SysResult>(e); }
constexpr bool SysOk(SysResult r) { return r >= 0; }
constexpr Errno SysErrno(SysResult r) {
  return r >= 0 ? CRUZ_EOK : static_cast<Errno>(-r);
}

// Human-readable errno name, for logs and test diagnostics.
const char* ErrnoName(Errno e);

}  // namespace cruz
