// Minimal leveled logger for the simulation.
//
// Log lines are tagged with the simulated timestamp (supplied by the caller
// through a thread-local hook installed by the Simulator) and a component
// tag. Default level is kWarn so tests and benchmarks stay quiet; examples
// raise it to kInfo to narrate what the system does.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace cruz {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  // Hook used by the Simulator so log lines carry simulated time.
  // Returns UINT64_MAX when no simulation is active.
  static std::uint64_t CurrentSimTime();
  static void SetSimTimeProvider(std::uint64_t (*provider)());

  static void Write(LogLevel level, const std::string& component,
                    const std::string& message);
};

namespace log_internal {

class LineBuilder {
 public:
  LineBuilder(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  ~LineBuilder() { Logger::Write(level_, component_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define CRUZ_LOG(lvl, component)                       \
  if (::cruz::Logger::level() <= (lvl))                \
  ::cruz::log_internal::LineBuilder((lvl), (component))

#define CRUZ_TRACE(component) CRUZ_LOG(::cruz::LogLevel::kTrace, component)
#define CRUZ_DEBUG(component) CRUZ_LOG(::cruz::LogLevel::kDebug, component)
#define CRUZ_INFO(component) CRUZ_LOG(::cruz::LogLevel::kInfo, component)
#define CRUZ_WARN(component) CRUZ_LOG(::cruz::LogLevel::kWarn, component)
#define CRUZ_ERROR(component) CRUZ_LOG(::cruz::LogLevel::kError, component)

}  // namespace cruz
