#include "common/log.h"

#include <cstdio>

namespace cruz {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::uint64_t (*g_time_provider)() = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

LogLevel Logger::level() { return g_level; }
void Logger::set_level(LogLevel level) { g_level = level; }

std::uint64_t Logger::CurrentSimTime() {
  return g_time_provider ? g_time_provider() : ~0ull;
}

void Logger::SetSimTimeProvider(std::uint64_t (*provider)()) {
  g_time_provider = provider;
}

void Logger::Write(LogLevel level, const std::string& component,
                   const std::string& message) {
  if (level < g_level) return;
  std::uint64_t t = CurrentSimTime();
  if (t == ~0ull) {
    std::fprintf(stderr, "[   --.------] %s %-10s %s\n", LevelName(level),
                 component.c_str(), message.c_str());
  } else {
    std::fprintf(stderr, "[%5llu.%06llu] %s %-10s %s\n",
                 static_cast<unsigned long long>(t / 1000000000ull),
                 static_cast<unsigned long long>((t % 1000000000ull) / 1000),
                 LevelName(level), component.c_str(), message.c_str());
  }
}

}  // namespace cruz
