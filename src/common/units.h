// Simulated-time and data-size units.
//
// All simulated time is an absolute count of nanoseconds since simulation
// start (TimeNs). Durations are also in nanoseconds. Helper constants keep
// call sites readable: `sim.RunFor(5 * kMillisecond)`.
#pragma once

#include <cstdint>

namespace cruz {

using TimeNs = std::uint64_t;
using DurationNs = std::uint64_t;

constexpr DurationNs kNanosecond = 1;
constexpr DurationNs kMicrosecond = 1000 * kNanosecond;
constexpr DurationNs kMillisecond = 1000 * kMicrosecond;
constexpr DurationNs kSecond = 1000 * kMillisecond;

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;

// Converts a payload size and link rate (bits/s) to serialization time.
constexpr DurationNs TransmitTimeNs(std::uint64_t bytes,
                                    std::uint64_t bits_per_second) {
  return bits_per_second == 0
             ? 0
             : (bytes * 8ull * kSecond) / bits_per_second;
}

constexpr double ToSeconds(DurationNs d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double ToMillis(DurationNs d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double ToMicros(DurationNs d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

}  // namespace cruz
