#include "common/rng.h"

#include <cmath>

namespace cruz {
namespace {

// SplitMix64, used to expand the seed into xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Debiased multiply-shift (Lemire). bound == 0 is a caller bug; return 0.
  if (bound == 0) return 0;
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::NextRange(std::uint64_t lo, std::uint64_t hi) {
  if (hi <= lo) return lo;
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace cruz
