// CRC-32 (IEEE 802.3 polynomial), used to protect checkpoint image sections
// and to implement the simulated Ethernet frame check sequence.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace cruz {

std::uint32_t Crc32(ByteSpan data);

// Incremental form: feed chunks, then Finish().
class Crc32Accumulator {
 public:
  void Update(ByteSpan data);
  std::uint32_t Finish() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace cruz
