#include "common/sysresult.h"

namespace cruz {

const char* ErrnoName(Errno e) {
  switch (e) {
    case CRUZ_EOK: return "OK";
    case CRUZ_EPERM: return "EPERM";
    case CRUZ_ENOENT: return "ENOENT";
    case CRUZ_ESRCH: return "ESRCH";
    case CRUZ_EINTR: return "EINTR";
    case CRUZ_EIO: return "EIO";
    case CRUZ_EBADF: return "EBADF";
    case CRUZ_ECHILD: return "ECHILD";
    case CRUZ_EAGAIN: return "EAGAIN";
    case CRUZ_ENOMEM: return "ENOMEM";
    case CRUZ_EACCES: return "EACCES";
    case CRUZ_EFAULT: return "EFAULT";
    case CRUZ_EBUSY: return "EBUSY";
    case CRUZ_EEXIST: return "EEXIST";
    case CRUZ_ENODEV: return "ENODEV";
    case CRUZ_ENOTDIR: return "ENOTDIR";
    case CRUZ_EISDIR: return "EISDIR";
    case CRUZ_EINVAL: return "EINVAL";
    case CRUZ_ENFILE: return "ENFILE";
    case CRUZ_EMFILE: return "EMFILE";
    case CRUZ_ENOTTY: return "ENOTTY";
    case CRUZ_EFBIG: return "EFBIG";
    case CRUZ_ENOSPC: return "ENOSPC";
    case CRUZ_ESPIPE: return "ESPIPE";
    case CRUZ_EROFS: return "EROFS";
    case CRUZ_EPIPE: return "EPIPE";
    case CRUZ_ENOSYS: return "ENOSYS";
    case CRUZ_ENOTEMPTY: return "ENOTEMPTY";
    case CRUZ_ENOTSOCK: return "ENOTSOCK";
    case CRUZ_EDESTADDRREQ: return "EDESTADDRREQ";
    case CRUZ_EMSGSIZE: return "EMSGSIZE";
    case CRUZ_EOPNOTSUPP: return "EOPNOTSUPP";
    case CRUZ_EADDRINUSE: return "EADDRINUSE";
    case CRUZ_EADDRNOTAVAIL: return "EADDRNOTAVAIL";
    case CRUZ_ENETUNREACH: return "ENETUNREACH";
    case CRUZ_ECONNABORTED: return "ECONNABORTED";
    case CRUZ_ECONNRESET: return "ECONNRESET";
    case CRUZ_ENOBUFS: return "ENOBUFS";
    case CRUZ_EISCONN: return "EISCONN";
    case CRUZ_ENOTCONN: return "ENOTCONN";
    case CRUZ_ETIMEDOUT: return "ETIMEDOUT";
    case CRUZ_ECONNREFUSED: return "ECONNREFUSED";
    case CRUZ_EHOSTUNREACH: return "EHOSTUNREACH";
    case CRUZ_EALREADY: return "EALREADY";
    case CRUZ_EINPROGRESS: return "EINPROGRESS";
  }
  return "E???";
}

}  // namespace cruz
