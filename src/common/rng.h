// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every source of randomness in the simulation (link loss, jitter, workload
// data) draws from an explicitly seeded Rng so that a run is reproducible
// bit-for-bit from its seed. No global RNG exists by design.
#pragma once

#include <cstdint>

namespace cruz {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over [0, 2^64).
  std::uint64_t NextU64();

  // Uniform over [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform over [lo, hi] inclusive.
  std::uint64_t NextRange(std::uint64_t lo, std::uint64_t hi);

  // Uniform over [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  // Derives an independent child stream (for per-component determinism).
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace cruz
