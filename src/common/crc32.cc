#include "common/crc32.h"

#include <array>
#include <cstring>

namespace cruz {
namespace {

// Slicing-by-8: table[0] is the classic byte-wise CRC-32 (IEEE,
// reflected 0xEDB88320) table; table[k][b] extends table[k-1][b] by one
// zero byte. Eight input bytes are then folded per iteration with eight
// independent lookups instead of an 8-deep dependency chain, which is
// what makes checkpoint page checksumming CPU-bound on table lookups
// rather than on the serial (crc >> 8) recurrence.
struct SlicingTables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  SlicingTables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
      }
    }
  }
};

const SlicingTables& Tables() {
  static const SlicingTables tables;
  return tables;
}

}  // namespace

void Crc32Accumulator::Update(ByteSpan data) {
  const auto& t = Tables().t;
  std::uint32_t c = state_;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    // Byte-assembled little-endian loads keep the fold endian-neutral.
    std::uint32_t lo = static_cast<std::uint32_t>(p[0]) |
                       (static_cast<std::uint32_t>(p[1]) << 8) |
                       (static_cast<std::uint32_t>(p[2]) << 16) |
                       (static_cast<std::uint32_t>(p[3]) << 24);
    std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                       (static_cast<std::uint32_t>(p[5]) << 8) |
                       (static_cast<std::uint32_t>(p[6]) << 16) |
                       (static_cast<std::uint32_t>(p[7]) << 24);
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
        t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
        t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t Crc32(ByteSpan data) {
  Crc32Accumulator acc;
  acc.Update(data);
  return acc.Finish();
}

}  // namespace cruz
