#include "common/crc32.h"

#include <array>

namespace cruz {
namespace {

std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

void Crc32Accumulator::Update(ByteSpan data) {
  const auto& table = Table();
  std::uint32_t c = state_;
  for (std::uint8_t b : data) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t Crc32(ByteSpan data) {
  Crc32Accumulator acc;
  acc.Update(data);
  return acc.Finish();
}

}  // namespace cruz
