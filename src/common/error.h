// Exception hierarchy for the Cruz library.
//
// Exceptions signal failures to perform a required task (I.10): codec
// corruption, violated invariants, misuse of the public API. Expected,
// recoverable conditions inside the simulated OS (EAGAIN, ECONNREFUSED, ...)
// are reported through errno-style syscall results instead (see sysresult.h),
// mirroring the kernel ABI the paper's system lives behind.
#pragma once

#include <stdexcept>
#include <string>

namespace cruz {

// Base class for all errors raised by the Cruz library.
class CruzError : public std::runtime_error {
 public:
  explicit CruzError(const std::string& what) : std::runtime_error(what) {}
};

// Raised when decoding a packet or checkpoint image fails (truncation, bad
// magic, CRC mismatch, out-of-range field).
class CodecError : public CruzError {
 public:
  explicit CodecError(const std::string& what) : CruzError(what) {}
};

// Raised when a caller violates an API precondition.
class UsageError : public CruzError {
 public:
  explicit UsageError(const std::string& what) : CruzError(what) {}
};

// Raised when an internal invariant is violated; indicates a bug in the
// library, never a recoverable condition.
class InvariantError : public CruzError {
 public:
  explicit InvariantError(const std::string& what) : CruzError(what) {}
};

// CRUZ_CHECK: precondition/invariant check that survives release builds.
#define CRUZ_CHECK(cond, msg)                                     \
  do {                                                            \
    if (!(cond)) {                                                \
      throw ::cruz::InvariantError(std::string("CRUZ_CHECK failed: ") + \
                                   #cond + ": " + (msg));         \
    }                                                             \
  } while (0)

}  // namespace cruz
