// Checkpoint image data model and serialization.
//
// A PodCheckpoint captures everything §2-§4 of the paper lists for the
// enhanced Zap: process virtual memory (non-zero pages only), CPU state
// (per-thread register files), file descriptors (including shared
// descriptions from dup), pipes with buffered data, SysV shared memory
// and semaphores, listening sockets with their accept queues, established
// TCP connections (via tcp::TcpConnCheckpoint, §4.1), UDP sockets, and
// the pod's identity: name, virtual pids, VIF IP/MAC and the fake MAC.
//
// The wire format is: magic "CRUZIMG1", version, length-prefixed payload,
// CRC-32 trailer. Deserialization validates all of it and throws
// CodecError on corruption.
//
// Two on-disk versions coexist (the header is self-describing):
//   version 1 — raw pages (fixed kPageSize bytes per page record). The
//     original format; still written by default and always readable.
//   version 2 — compressed pages: the header gains a codec id byte and
//     each page record is a length-prefixed blob encoded by
//     ckpt::EncodePage (per-page codec tag + raw-page CRC + payload).
// Readers dispatch on the version field, so images written by the
// uncompressed codec load unchanged and compressed images are rejected
// with CodecError on any per-page corruption.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/page_codec.h"
#include "common/bytes.h"
#include "net/address.h"
#include "os/file.h"
#include "os/process.h"
#include "os/types.h"
#include "tcp/checkpoint_state.h"

namespace cruz::ckpt {

struct ThreadRecord {
  os::Tid tid = 0;
  os::Registers regs;
};

struct PageRecord {
  std::uint64_t page_index = 0;
  cruz::Bytes content;  // kPageSize bytes
};

// One open file description (possibly shared by several fds via dup).
struct DescRecord {
  std::uint64_t ref = 0;  // identity within the image
  os::FileDescription::Kind kind = os::FileDescription::Kind::kFile;
  std::string path;            // kFile
  std::uint64_t offset = 0;    // kFile
  os::PipeId pipe_id = 0;      // kPipe*
  std::uint64_t socket_ref = 0;  // sockets: original SocketId
};

struct FdRecord {
  os::Fd fd = 0;
  std::uint64_t desc_ref = 0;
};

struct ShmAttachRecord {
  std::int32_t key = 0;  // original (pre-virtualization) key
  std::uint64_t addr = 0;
};

struct ProcessRecord {
  os::Pid vpid = 0;
  std::string program;
  std::vector<ThreadRecord> threads;
  std::vector<PageRecord> pages;
  std::vector<FdRecord> fds;
  std::vector<ShmAttachRecord> shm_attachments;
};

struct PipeRecord {
  os::PipeId id = 0;
  cruz::Bytes buffer;
};

struct ShmRecord {
  os::ShmId virtual_id = 0;  // id the pod's processes hold
  std::int32_t key = 0;      // original (pre-virtualization) key
  cruz::Bytes data;
};

struct SemRecord {
  os::SemId virtual_id = 0;
  std::int32_t key = 0;
  std::int32_t value = 0;
};

struct ConnRecord {
  std::uint64_t socket_ref = 0;
  // recv_pending holds alternate-buffer data + peeked receive-buffer data,
  // concatenated in delivery order (paper §4.1).
  tcp::TcpConnCheckpoint conn;
};

struct ListenerRecord {
  std::uint64_t socket_ref = 0;
  std::uint16_t port = 0;
  int backlog = 0;
  std::vector<std::uint64_t> accept_queue;  // socket refs of pending children
};

struct UdpRecord {
  std::uint64_t socket_ref = 0;
  std::uint16_t port = 0;
  std::vector<std::pair<net::Endpoint, cruz::Bytes>> rx;
};

// A TCP socket that existed but had no connection yet (fresh or bound).
struct FreshSocketRecord {
  std::uint64_t socket_ref = 0;
  bool bound = false;
  std::uint16_t port = 0;
};

struct PodCheckpoint {
  // Pod identity (paper §4.2): preserved across restore so external peers
  // see the same addresses.
  os::PodId pod_id = os::kNoPod;
  std::string pod_name;
  net::Ipv4Address ip;
  net::MacAddress vif_mac;
  net::MacAddress fake_mac;
  os::Pid next_vpid = 1;

  // Incremental checkpointing (paper §5.2): an incremental image carries
  // only the memory pages dirtied since its parent image was taken; all
  // other state (sockets, pipes, IPC, fds, registers) is small and always
  // captured in full. Restore resolves the parent chain from the shared
  // filesystem and overlays pages oldest-to-newest.
  bool incremental = false;
  std::uint32_t generation = 0;
  std::string parent_image;

  std::vector<ShmRecord> shm;
  std::vector<SemRecord> sems;
  std::vector<PipeRecord> pipes;
  std::vector<DescRecord> descs;
  std::vector<ConnRecord> conns;
  std::vector<ListenerRecord> listeners;
  std::vector<UdpRecord> udp;
  std::vector<FreshSocketRecord> fresh_sockets;
  std::vector<ProcessRecord> processes;

  // Bytes of state that dominate disk time (memory pages + buffers).
  std::uint64_t StateBytes() const;

  // `compress == false` emits the version-1 format byte-for-byte;
  // `compress == true` emits version 2 with RLE-compressed pages.
  cruz::Bytes Serialize(bool compress = false) const;
  static PodCheckpoint Deserialize(cruz::ByteSpan image);

  // Overlays this (incremental) image's pages and current state onto
  // `base`, producing the full state at this image's generation. Every
  // field except memory pages comes from *this; pages are base pages
  // updated with this image's dirty pages, per process (matched by vpid).
  PodCheckpoint MergeOnto(const PodCheckpoint& base) const;
};

}  // namespace cruz::ckpt
