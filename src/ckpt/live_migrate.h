// Live (pre-copy) pod migration.
//
// The paper's migration path (§1: "reduce application downtime during
// hardware and operating system maintenance by migrating the application
// to a different machine") is stop-and-copy: downtime covers the whole
// state transfer. Pre-copy — iteratively transferring memory while the
// pod keeps running, then stopping only for the (small) final dirty set —
// is the standard refinement, and the dirty-page tracking built for
// incremental checkpointing (§5.2) provides exactly the machinery.
//
// Rounds: round 1 copies all pages over the network while the pod runs;
// each later round copies the pages dirtied during the previous round;
// when the dirty set stops shrinking (or a round/threshold limit hits),
// the pod is stopped, the residual state (last dirty pages + kernel
// state: sockets, pipes, IPC) moves, and the pod resumes on the target.
// Downtime covers only that final phase.
#pragma once

#include <cstdint>
#include <functional>

#include "ckpt/engine.h"
#include "pod/pod.h"

namespace cruz::ckpt {

struct LiveMigrateOptions {
  int max_rounds = 5;
  // Pre-copy stops early once a round's dirty set is this small.
  std::uint64_t stop_threshold_bytes = 128 * 1024;
  // Migration-stream bandwidth (gigabit-class by default).
  std::uint64_t network_bytes_per_sec = 110 * kMiB;
};

struct LiveMigrateStats {
  int rounds = 0;                  // pre-copy rounds executed
  std::uint64_t precopy_bytes = 0;  // transferred while running
  std::uint64_t final_bytes = 0;    // transferred during the stop
  DurationNs downtime = 0;          // pod stopped -> resumed on target
  DurationNs total_duration = 0;    // start -> resumed on target
  os::PodId pod = os::kNoPod;       // id on the target (preserved)
};

class LiveMigrator {
 public:
  using DoneFn = std::function<void(const LiveMigrateStats&)>;

  // Migrates `pod` from `source`'s node to `target`'s node. Asynchronous:
  // runs over simulated time and invokes `done` once the pod is resumed
  // on the target. The pod id, addresses, and all connections are
  // preserved exactly as in checkpoint-restart.
  static void Migrate(pod::PodManager& source, pod::PodManager& target,
                      os::PodId pod, const LiveMigrateOptions& options,
                      DoneFn done);

  // Baseline for comparison: classic stop-and-copy (stop, transfer
  // everything, restore, resume). Same interface.
  static void StopAndCopy(pod::PodManager& source, pod::PodManager& target,
                          os::PodId pod, const LiveMigrateOptions& options,
                          DoneFn done);
};

}  // namespace cruz::ckpt
