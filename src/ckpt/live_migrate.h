// Live pod migration: pre-copy, post-copy, and hybrid.
//
// The paper's migration path (§1: "reduce application downtime during
// hardware and operating system maintenance by migrating the application
// to a different machine") is stop-and-copy: downtime covers the whole
// state transfer. Two standard refinements move work out of the downtime
// window, in opposite directions:
//
//   * Pre-copy transfers memory iteratively *before* the stop — round 1
//     copies all pages while the pod runs, each later round copies the
//     pages dirtied during the previous round — then stops only for the
//     (small) final dirty set. The dirty-page tracking built for
//     incremental checkpointing (§5.2) provides exactly the machinery.
//   * Post-copy stops the pod briefly, moves only kernel state plus a
//     minimal hot set (the pages dirtied during a short observation
//     window just before the stop), resumes the pod on the target, and
//     fetches the remaining pages on demand over a page-request /
//     page-response channel, with a background push draining the residue.
//     Downtime is minimal; the cost reappears as *degradation* — time the
//     resumed pod spends stalled on demand fetches.
//   * Hybrid runs N pre-copy rounds, then post-copies the remainder: the
//     stop transfers kernel state only, pages still dirty at the stop are
//     demand-paged. (VM-style "pre-copy + post-copy residue".)
//
// The page channel is modeled on the simulated network's cost model:
// request/response latencies and a retransmit timer, with every message
// offered to a fault::Injector (the coord::MsgType bytes kPageRequest /
// kPageResponse) so FaultPlan-driven chaos tests can drop, duplicate, and
// delay page traffic. Duplicate deliveries are idempotent (os::Memory::
// FillPage drops fills for resident pages); a request arriving after the
// source released its frozen image is counted in `late_serves`, which
// must stay zero in any correct run — release happens only once every
// page is resident on the target.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ckpt/engine.h"
#include "fault/fault.h"
#include "pod/pod.h"

namespace cruz::ckpt {

// Raw wire bytes of coord::MsgType::{kPageRequest, kPageResponse}. The
// ckpt library deliberately does not link against coord; a static_assert
// in tests/live_migrate_modes_test.cc pins these to the enum values.
inline constexpr std::uint8_t kPageRequestMsgByte = 22;
inline constexpr std::uint8_t kPageResponseMsgByte = 23;

enum class MigrateMode : std::uint8_t {
  kStopAndCopy = 0,
  kPreCopy = 1,
  kPostCopy = 2,
  kHybrid = 3,
};

const char* MigrateModeName(MigrateMode mode);

struct LiveMigrateOptions {
  int max_rounds = 5;
  // Pre-copy stops early once a round's dirty set is this small.
  std::uint64_t stop_threshold_bytes = 128 * 1024;
  // Migration-stream bandwidth (gigabit-class by default).
  std::uint64_t network_bytes_per_sec = 110 * kMiB;

  // --- post-copy knobs -----------------------------------------------------
  // Observation window before the stop: pages dirtied during it form the
  // hot set that moves with the pod (a cheap working-set estimate).
  DurationNs hot_window = 2 * kMillisecond;
  // One-way page-channel latency (request and response each pay it).
  DurationNs page_latency = 100 * kMicrosecond;
  // Demand-fetch retransmit timer: a missing page still absent this long
  // after its request was sent is requested again.
  DurationNs page_request_timeout = 2 * kMillisecond;
  // Pacing of the background residue push (one page per tick).
  DurationNs push_interval = 50 * kMicrosecond;
  // Consulted for every page-channel message (drop/duplicate/delay);
  // nullptr = fault-free channel.
  fault::Injector* injector = nullptr;

  // --- test-only protocol mutations (check/explorer.h) ---------------------
  // Skips the source-side pod destroy: both sides end up with a copy.
  bool test_resume_both_sides = false;
  // The source accounts pushed/served pages as delivered without sending
  // the response: "done" fires with pages still missing on the target.
  bool test_drop_page_response = false;
};

// One pre-copy round's work, for per-round breakdowns.
struct MigrateRound {
  std::uint64_t dirty_bytes = 0;  // transferred in this round
  DurationNs duration = 0;        // wall time of this round's transfer
};

struct LiveMigrateStats {
  MigrateMode mode = MigrateMode::kPreCopy;
  int rounds = 0;                   // pre-copy rounds executed
  std::vector<MigrateRound> round_breakdown;  // one entry per round
  std::uint64_t precopy_bytes = 0;  // transferred while running
  std::uint64_t final_bytes = 0;    // transferred during the stop
  DurationNs downtime = 0;          // pod stopped -> resumed on target
  DurationNs total_duration = 0;    // start -> fully migrated
  // Post-resume time the pod spent stalled on demand fetches (post-copy
  // and hybrid; 0 for the stop-bounded modes).
  DurationNs degradation = 0;

  // --- page accounting (post-copy / hybrid) --------------------------------
  std::uint64_t pages_total = 0;
  std::uint64_t pages_resident_at_resume = 0;
  std::uint64_t pages_fetched_on_demand = 0;
  std::uint64_t pages_pushed = 0;
  // Fills dropped because the page was already resident (retransmit or
  // push racing a demand fetch). Benign by design, counted for tests.
  std::uint64_t duplicate_fills_dropped = 0;
  // Requests served after the source released its frozen image. Must be
  // zero: release happens only at full residency.
  std::uint64_t late_serves = 0;
  std::uint64_t requests_retransmitted = 0;

  std::uint64_t op_id = 0;          // migrate.op.* trace span op id
  os::PodId pod = os::kNoPod;       // id on the target (preserved)
};

class LiveMigrator {
 public:
  using DoneFn = std::function<void(const LiveMigrateStats&)>;

  // Migrates `pod` from `source`'s node to `target`'s node with pre-copy
  // rounds. Asynchronous: runs over simulated time and invokes `done`
  // once the pod is resumed on the target. The pod id, addresses, and
  // all connections are preserved exactly as in checkpoint-restart.
  static void Migrate(pod::PodManager& source, pod::PodManager& target,
                      os::PodId pod, const LiveMigrateOptions& options,
                      DoneFn done);

  // Baseline for comparison: classic stop-and-copy (stop, transfer
  // everything, restore, resume). Same interface.
  static void StopAndCopy(pod::PodManager& source, pod::PodManager& target,
                          os::PodId pod, const LiveMigrateOptions& options,
                          DoneFn done);

  // Post-copy: short hot-set observation window, minimal stop (kernel
  // state + hot set), resume on target, demand-fetch + background-push
  // the residue. `done` fires at FULL residency, not at resume.
  static void PostCopy(pod::PodManager& source, pod::PodManager& target,
                       os::PodId pod, const LiveMigrateOptions& options,
                       DoneFn done);

  // Hybrid: pre-copy rounds, then post-copy whatever is still dirty at
  // the stop. Downtime covers only the kernel-state transfer.
  static void Hybrid(pod::PodManager& source, pod::PodManager& target,
                     os::PodId pod, const LiveMigrateOptions& options,
                     DoneFn done);

  // Mode dispatcher (harness / explorer convenience).
  static void MigrateWithMode(pod::PodManager& source,
                              pod::PodManager& target, os::PodId pod,
                              MigrateMode mode,
                              const LiveMigrateOptions& options, DoneFn done);
};

}  // namespace cruz::ckpt
