#include "ckpt/image.h"

#include <map>

#include "common/crc32.h"
#include "common/error.h"

namespace cruz::ckpt {

namespace {

constexpr char kMagic[8] = {'C', 'R', 'U', 'Z', 'I', 'M', 'G', '1'};
constexpr std::uint32_t kVersionRaw = 1;         // raw fixed-size pages
constexpr std::uint32_t kVersionCompressed = 2;  // per-page codec blobs

void PutMac(cruz::ByteWriter& w, net::MacAddress mac) {
  w.PutBytes(mac.octets.data(), 6);
}

net::MacAddress GetMac(cruz::ByteReader& r) {
  net::MacAddress mac;
  cruz::ByteSpan s = r.GetSpan(6);
  std::copy(s.begin(), s.end(), mac.octets.begin());
  return mac;
}

}  // namespace

std::uint64_t PodCheckpoint::StateBytes() const {
  std::uint64_t n = 0;
  for (const ProcessRecord& p : processes) {
    n += p.pages.size() * os::kPageSize;
  }
  for (const ShmRecord& s : shm) n += s.data.size();
  for (const PipeRecord& p : pipes) n += p.buffer.size();
  for (const ConnRecord& c : conns) n += c.conn.TotalBytes();
  for (const UdpRecord& u : udp) {
    for (const auto& [src, payload] : u.rx) n += payload.size();
  }
  return n;
}

cruz::Bytes PodCheckpoint::Serialize(bool compress) const {
  cruz::ByteWriter body;
  body.PutU32(pod_id);
  body.PutString(pod_name);
  body.PutU32(ip.value);
  PutMac(body, vif_mac);
  PutMac(body, fake_mac);
  body.PutU32(static_cast<std::uint32_t>(next_vpid));
  body.PutBool(incremental);
  body.PutU32(generation);
  body.PutString(parent_image);

  body.PutU32(static_cast<std::uint32_t>(shm.size()));
  for (const ShmRecord& s : shm) {
    body.PutU32(static_cast<std::uint32_t>(s.virtual_id));
    body.PutU32(static_cast<std::uint32_t>(s.key));
    body.PutBlob(s.data);
  }
  body.PutU32(static_cast<std::uint32_t>(sems.size()));
  for (const SemRecord& s : sems) {
    body.PutU32(static_cast<std::uint32_t>(s.virtual_id));
    body.PutU32(static_cast<std::uint32_t>(s.key));
    body.PutU32(static_cast<std::uint32_t>(s.value));
  }
  body.PutU32(static_cast<std::uint32_t>(pipes.size()));
  for (const PipeRecord& p : pipes) {
    body.PutU64(p.id);
    body.PutBlob(p.buffer);
  }
  body.PutU32(static_cast<std::uint32_t>(descs.size()));
  for (const DescRecord& d : descs) {
    body.PutU64(d.ref);
    body.PutU8(static_cast<std::uint8_t>(d.kind));
    body.PutString(d.path);
    body.PutU64(d.offset);
    body.PutU64(d.pipe_id);
    body.PutU64(d.socket_ref);
  }
  body.PutU32(static_cast<std::uint32_t>(conns.size()));
  for (const ConnRecord& c : conns) {
    body.PutU64(c.socket_ref);
    c.conn.Serialize(body);
  }
  body.PutU32(static_cast<std::uint32_t>(listeners.size()));
  for (const ListenerRecord& l : listeners) {
    body.PutU64(l.socket_ref);
    body.PutU16(l.port);
    body.PutU32(static_cast<std::uint32_t>(l.backlog));
    body.PutU32(static_cast<std::uint32_t>(l.accept_queue.size()));
    for (std::uint64_t ref : l.accept_queue) body.PutU64(ref);
  }
  body.PutU32(static_cast<std::uint32_t>(udp.size()));
  for (const UdpRecord& u : udp) {
    body.PutU64(u.socket_ref);
    body.PutU16(u.port);
    body.PutU32(static_cast<std::uint32_t>(u.rx.size()));
    for (const auto& [src, payload] : u.rx) {
      body.PutU32(src.ip.value);
      body.PutU16(src.port);
      body.PutBlob(payload);
    }
  }
  body.PutU32(static_cast<std::uint32_t>(fresh_sockets.size()));
  for (const FreshSocketRecord& f : fresh_sockets) {
    body.PutU64(f.socket_ref);
    body.PutBool(f.bound);
    body.PutU16(f.port);
  }
  body.PutU32(static_cast<std::uint32_t>(processes.size()));
  for (const ProcessRecord& p : processes) {
    body.PutU32(static_cast<std::uint32_t>(p.vpid));
    body.PutString(p.program);
    body.PutU32(static_cast<std::uint32_t>(p.threads.size()));
    for (const ThreadRecord& t : p.threads) {
      body.PutU32(static_cast<std::uint32_t>(t.tid));
      for (int i = 0; i < os::kNumRegisters; ++i) body.PutU64(t.regs.r[i]);
    }
    body.PutU32(static_cast<std::uint32_t>(p.pages.size()));
    for (const PageRecord& page : p.pages) {
      body.PutU64(page.page_index);
      if (compress) {
        body.PutBlob(EncodePage(page.content, PageCodec::kRle));
      } else {
        body.PutBytes(page.content);
      }
    }
    body.PutU32(static_cast<std::uint32_t>(p.fds.size()));
    for (const FdRecord& f : p.fds) {
      body.PutU32(static_cast<std::uint32_t>(f.fd));
      body.PutU64(f.desc_ref);
    }
    body.PutU32(static_cast<std::uint32_t>(p.shm_attachments.size()));
    for (const ShmAttachRecord& a : p.shm_attachments) {
      body.PutU32(static_cast<std::uint32_t>(a.key));
      body.PutU64(a.addr);
    }
  }

  cruz::ByteWriter out(body.size() + 25);
  out.PutBytes(reinterpret_cast<const std::uint8_t*>(kMagic), 8);
  if (compress) {
    // Self-describing header: version 2 carries the preferred codec id so
    // tools can identify the page encoding without parsing the body.
    out.PutU32(kVersionCompressed);
    out.PutU8(static_cast<std::uint8_t>(PageCodec::kRle));
  } else {
    out.PutU32(kVersionRaw);
  }
  out.PutBlob(body.data());
  out.PutU32(cruz::Crc32(body.data()));
  return out.Take();
}

PodCheckpoint PodCheckpoint::Deserialize(cruz::ByteSpan image) {
  cruz::ByteReader outer(image);
  cruz::ByteSpan magic = outer.GetSpan(8);
  if (!std::equal(magic.begin(), magic.end(),
                  reinterpret_cast<const std::uint8_t*>(kMagic))) {
    throw cruz::CodecError("not a Cruz checkpoint image");
  }
  std::uint32_t version = outer.GetU32();
  if (version != kVersionRaw && version != kVersionCompressed) {
    throw cruz::CodecError("unsupported image version " +
                           std::to_string(version));
  }
  bool compressed = version == kVersionCompressed;
  if (compressed) {
    std::uint8_t codec = outer.GetU8();
    if (codec > static_cast<std::uint8_t>(PageCodec::kRle)) {
      throw cruz::CodecError("unsupported image page codec " +
                             std::to_string(codec));
    }
  }
  cruz::Bytes body = outer.GetBlob();
  std::uint32_t crc = outer.GetU32();
  if (crc != cruz::Crc32(body)) {
    throw cruz::CodecError("checkpoint image CRC mismatch");
  }

  cruz::ByteReader r(body);
  PodCheckpoint ck;
  ck.pod_id = r.GetU32();
  ck.pod_name = r.GetString();
  ck.ip.value = r.GetU32();
  ck.vif_mac = GetMac(r);
  ck.fake_mac = GetMac(r);
  ck.next_vpid = static_cast<os::Pid>(r.GetU32());
  ck.incremental = r.GetBool();
  ck.generation = r.GetU32();
  ck.parent_image = r.GetString();

  std::uint32_t n = r.GetU32();
  for (std::uint32_t i = 0; i < n; ++i) {
    ShmRecord s;
    s.virtual_id = static_cast<os::ShmId>(r.GetU32());
    s.key = static_cast<std::int32_t>(r.GetU32());
    s.data = r.GetBlob();
    ck.shm.push_back(std::move(s));
  }
  n = r.GetU32();
  for (std::uint32_t i = 0; i < n; ++i) {
    SemRecord s;
    s.virtual_id = static_cast<os::SemId>(r.GetU32());
    s.key = static_cast<std::int32_t>(r.GetU32());
    s.value = static_cast<std::int32_t>(r.GetU32());
    ck.sems.push_back(s);
  }
  n = r.GetU32();
  for (std::uint32_t i = 0; i < n; ++i) {
    PipeRecord p;
    p.id = r.GetU64();
    p.buffer = r.GetBlob();
    ck.pipes.push_back(std::move(p));
  }
  n = r.GetU32();
  for (std::uint32_t i = 0; i < n; ++i) {
    DescRecord d;
    d.ref = r.GetU64();
    std::uint8_t kind = r.GetU8();
    if (kind > static_cast<std::uint8_t>(
                   os::FileDescription::Kind::kUdpSocket)) {
      throw cruz::CodecError("invalid fd kind in image");
    }
    d.kind = static_cast<os::FileDescription::Kind>(kind);
    d.path = r.GetString();
    d.offset = r.GetU64();
    d.pipe_id = r.GetU64();
    d.socket_ref = r.GetU64();
    ck.descs.push_back(std::move(d));
  }
  n = r.GetU32();
  for (std::uint32_t i = 0; i < n; ++i) {
    ConnRecord c;
    c.socket_ref = r.GetU64();
    c.conn = tcp::TcpConnCheckpoint::Deserialize(r);
    ck.conns.push_back(std::move(c));
  }
  n = r.GetU32();
  for (std::uint32_t i = 0; i < n; ++i) {
    ListenerRecord l;
    l.socket_ref = r.GetU64();
    l.port = r.GetU16();
    l.backlog = static_cast<int>(r.GetU32());
    std::uint32_t m = r.GetU32();
    for (std::uint32_t j = 0; j < m; ++j) {
      l.accept_queue.push_back(r.GetU64());
    }
    ck.listeners.push_back(std::move(l));
  }
  n = r.GetU32();
  for (std::uint32_t i = 0; i < n; ++i) {
    UdpRecord u;
    u.socket_ref = r.GetU64();
    u.port = r.GetU16();
    std::uint32_t m = r.GetU32();
    for (std::uint32_t j = 0; j < m; ++j) {
      net::Endpoint src;
      src.ip.value = r.GetU32();
      src.port = r.GetU16();
      u.rx.emplace_back(src, r.GetBlob());
    }
    ck.udp.push_back(std::move(u));
  }
  n = r.GetU32();
  for (std::uint32_t i = 0; i < n; ++i) {
    FreshSocketRecord f;
    f.socket_ref = r.GetU64();
    f.bound = r.GetBool();
    f.port = r.GetU16();
    ck.fresh_sockets.push_back(f);
  }
  n = r.GetU32();
  for (std::uint32_t i = 0; i < n; ++i) {
    ProcessRecord p;
    p.vpid = static_cast<os::Pid>(r.GetU32());
    p.program = r.GetString();
    std::uint32_t threads = r.GetU32();
    for (std::uint32_t j = 0; j < threads; ++j) {
      ThreadRecord t;
      t.tid = static_cast<os::Tid>(r.GetU32());
      for (int k = 0; k < os::kNumRegisters; ++k) t.regs.r[k] = r.GetU64();
      p.threads.push_back(t);
    }
    std::uint32_t pages = r.GetU32();
    for (std::uint32_t j = 0; j < pages; ++j) {
      PageRecord page;
      page.page_index = r.GetU64();
      if (compressed) {
        page.content = DecodePage(r.GetBlob());
      } else {
        page.content = r.GetBytes(os::kPageSize);
      }
      p.pages.push_back(std::move(page));
    }
    std::uint32_t fds = r.GetU32();
    for (std::uint32_t j = 0; j < fds; ++j) {
      FdRecord f;
      f.fd = static_cast<os::Fd>(r.GetU32());
      f.desc_ref = r.GetU64();
      p.fds.push_back(f);
    }
    std::uint32_t atts = r.GetU32();
    for (std::uint32_t j = 0; j < atts; ++j) {
      ShmAttachRecord a;
      a.key = static_cast<std::int32_t>(r.GetU32());
      a.addr = r.GetU64();
      p.shm_attachments.push_back(a);
    }
    ck.processes.push_back(std::move(p));
  }
  if (!r.AtEnd()) {
    throw cruz::CodecError("trailing bytes in checkpoint image");
  }
  return ck;
}

PodCheckpoint PodCheckpoint::MergeOnto(const PodCheckpoint& base) const {
  CRUZ_CHECK(base.pod_id == pod_id, "MergeOnto: pod mismatch");
  PodCheckpoint merged = *this;  // newest non-page state wins
  merged.incremental = false;
  merged.parent_image.clear();
  // Per-process page overlay: base pages first, then this image's dirty
  // pages. Processes that did not exist in the base keep only their own
  // pages (everything they ever touched is dirty since creation).
  for (ProcessRecord& proc : merged.processes) {
    const ProcessRecord* base_proc = nullptr;
    for (const ProcessRecord& bp : base.processes) {
      if (bp.vpid == proc.vpid) {
        base_proc = &bp;
        break;
      }
    }
    if (base_proc == nullptr) continue;
    std::map<std::uint64_t, const cruz::Bytes*> by_index;
    for (const PageRecord& page : base_proc->pages) {
      by_index[page.page_index] = &page.content;
    }
    for (const PageRecord& page : proc.pages) {
      by_index[page.page_index] = &page.content;
    }
    std::vector<PageRecord> combined;
    combined.reserve(by_index.size());
    for (const auto& [index, content] : by_index) {
      combined.push_back(PageRecord{index, *content});
    }
    proc.pages = std::move(combined);
  }
  return merged;
}

}  // namespace cruz::ckpt
