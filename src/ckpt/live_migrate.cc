#include "ckpt/live_migrate.h"

#include <memory>

#include "common/error.h"
#include "common/log.h"
#include "sim/simulator.h"

namespace cruz::ckpt {

namespace {

DurationNs TransferTime(std::uint64_t bytes,
                        const LiveMigrateOptions& options) {
  return options.network_bytes_per_sec == 0
             ? 0
             : bytes * kSecond / options.network_bytes_per_sec;
}

// Counts the pod's current dirty bytes and clears the tracking, starting
// the next pre-copy window. The pod keeps running.
std::uint64_t SweepDirtyBytes(pod::PodManager& pods, os::PodId id) {
  os::Os& os = pods.node().os();
  std::uint64_t bytes = 0;
  for (os::Pid pid : os.PodProcesses(id)) {
    os::Process* proc = os.FindProcess(pid);
    if (proc == nullptr) continue;
    bytes += proc->memory().dirty_pages().size() * os::kPageSize;
    proc->memory().ClearDirty();
  }
  return bytes;
}

std::uint64_t ResidentBytes(pod::PodManager& pods, os::PodId id) {
  os::Os& os = pods.node().os();
  std::uint64_t bytes = 0;
  for (os::Pid pid : os.PodProcesses(id)) {
    os::Process* proc = os.FindProcess(pid);
    if (proc != nullptr) bytes += proc->memory().ResidentBytes();
  }
  return bytes;
}

// The shared final phase: stop, capture, move the pod, resume, report.
// `residual_bytes` is what still has to cross the network while the pod
// is stopped.
void FinalPhase(pod::PodManager& source, pod::PodManager& target,
                os::PodId id, const LiveMigrateOptions& options,
                TimeNs started, LiveMigrateStats stats,
                LiveMigrator::DoneFn done) {
  sim::Simulator& sim = source.node().os().sim();
  TimeNs stop_time = sim.Now();
  CheckpointEngine::StopPod(source, id);
  PodCheckpoint ck = CheckpointEngine::CapturePod(source, id);
  // Residual transfer: the final dirty pages plus the non-memory state
  // (sockets, pipes, IPC — everything except the pre-copied pages).
  std::uint64_t page_bytes = 0;
  for (const ProcessRecord& proc : ck.processes) {
    page_bytes += proc.pages.size() * os::kPageSize;
  }
  std::uint64_t kernel_state =
      ck.StateBytes() > page_bytes ? ck.StateBytes() - page_bytes : 0;
  stats.final_bytes += kernel_state;
  std::uint64_t final_bytes = stats.final_bytes;
  DurationNs transfer = TransferTime(final_bytes, options);
  source.DestroyPod(id);
  sim.Schedule(transfer, [&target, ck = std::move(ck), stats, stop_time,
                          started, done = std::move(done)]() mutable {
    sim::Simulator& sim2 = target.node().os().sim();
    os::PodId restored = CheckpointEngine::RestorePod(target, ck);
    CheckpointEngine::ResumePod(target, restored);
    stats.pod = restored;
    stats.downtime = sim2.Now() - stop_time;
    stats.total_duration = sim2.Now() - started;
    CRUZ_INFO("migrate") << "pod " << restored << " migrated: rounds="
                         << stats.rounds << " downtime="
                         << ToMillis(stats.downtime) << "ms";
    done(stats);
  });
}

void PrecopyRound(pod::PodManager& source, pod::PodManager& target,
                  os::PodId id, LiveMigrateOptions options, TimeNs started,
                  LiveMigrateStats stats, LiveMigrator::DoneFn done) {
  sim::Simulator& sim = source.node().os().sim();
  // Copy this round's pages while the pod runs: round 1 copies the whole
  // resident set; later rounds copy what the previous round dirtied.
  std::uint64_t round_bytes;
  if (stats.rounds == 0) {
    SweepDirtyBytes(source, id);  // start the first dirty window
    round_bytes = ResidentBytes(source, id);
  } else {
    round_bytes = SweepDirtyBytes(source, id);
  }
  stats.rounds += 1;
  stats.precopy_bytes += round_bytes;
  DurationNs transfer = TransferTime(round_bytes, options);
  sim.Schedule(transfer, [&source, &target, id, options, started, stats,
                          done = std::move(done)]() mutable {
    if (source.Find(id) == nullptr) return;  // pod vanished mid-migration
    // Peek at what got dirtied while this round was in flight.
    std::uint64_t dirty_now = 0;
    os::Os& os = source.node().os();
    for (os::Pid pid : os.PodProcesses(id)) {
      os::Process* proc = os.FindProcess(pid);
      if (proc != nullptr) {
        dirty_now += proc->memory().dirty_pages().size() * os::kPageSize;
      }
    }
    if (dirty_now > options.stop_threshold_bytes &&
        stats.rounds < options.max_rounds) {
      PrecopyRound(source, target, id, options, started, stats,
                   std::move(done));
      return;
    }
    stats.final_bytes = dirty_now;
    FinalPhase(source, target, id, options, started, stats,
               std::move(done));
  });
}

}  // namespace

void LiveMigrator::Migrate(pod::PodManager& source,
                           pod::PodManager& target, os::PodId pod,
                           const LiveMigrateOptions& options, DoneFn done) {
  CRUZ_CHECK(source.Find(pod) != nullptr, "Migrate: no such pod");
  LiveMigrateStats stats;
  TimeNs started = source.node().os().sim().Now();
  PrecopyRound(source, target, pod, options, started, stats,
               std::move(done));
}

void LiveMigrator::StopAndCopy(pod::PodManager& source,
                               pod::PodManager& target, os::PodId pod,
                               const LiveMigrateOptions& options,
                               DoneFn done) {
  CRUZ_CHECK(source.Find(pod) != nullptr, "StopAndCopy: no such pod");
  LiveMigrateStats stats;
  TimeNs started = source.node().os().sim().Now();
  stats.final_bytes = ResidentBytes(source, pod);
  FinalPhase(source, target, pod, options, started, stats,
             std::move(done));
}

}  // namespace cruz::ckpt
