#include "ckpt/live_migrate.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace cruz::ckpt {

const char* MigrateModeName(MigrateMode mode) {
  switch (mode) {
    case MigrateMode::kStopAndCopy: return "stop-and-copy";
    case MigrateMode::kPreCopy: return "pre-copy";
    case MigrateMode::kPostCopy: return "post-copy";
    case MigrateMode::kHybrid: return "hybrid";
  }
  return "unknown";
}

namespace {

DurationNs TransferTime(std::uint64_t bytes,
                        const LiveMigrateOptions& options) {
  return options.network_bytes_per_sec == 0
             ? 0
             : bytes * kSecond / options.network_bytes_per_sec;
}

// Counts the pod's current dirty bytes and clears the tracking, starting
// the next pre-copy window. The pod keeps running.
std::uint64_t SweepDirtyBytes(pod::PodManager& pods, os::PodId id) {
  os::Os& os = pods.node().os();
  std::uint64_t bytes = 0;
  for (os::Pid pid : os.PodProcesses(id)) {
    os::Process* proc = os.FindProcess(pid);
    if (proc == nullptr) continue;
    bytes += proc->memory().dirty_pages().size() * os::kPageSize;
    proc->memory().ClearDirty();
  }
  return bytes;
}

// The non-page state that must cross the network during any stop:
// registers, fd tables, connection/pipe/IPC records — approximated by
// the serialized image size minus the raw page payload. StateBytes()
// alone counts buffered *data*, which is zero for a socketless pod, and
// a stop never moves zero bytes.
std::uint64_t KernelStateBytes(const PodCheckpoint& ck,
                               std::uint64_t page_bytes) {
  std::uint64_t wire = ck.Serialize(/*compress=*/false).size();
  return wire > page_bytes ? wire - page_bytes : 0;
}

std::uint64_t ResidentBytes(pod::PodManager& pods, os::PodId id) {
  os::Os& os = pods.node().os();
  std::uint64_t bytes = 0;
  for (os::Pid pid : os.PodProcesses(id)) {
    os::Process* proc = os.FindProcess(pid);
    if (proc != nullptr) bytes += proc->memory().ResidentBytes();
  }
  return bytes;
}

// Migrate op ids live in their own namespace (bit 62 set) so they can
// never collide with coordinator op ids in shared traces.
std::uint64_t NextMigrateOpId(sim::Simulator& sim) {
  obs::Counter& ops = sim.metrics().counter("migrate.ops_total");
  ops.Add();
  return (1ull << 62) | ops.value();
}

// The op span is charged to the source node (the migrator runs there);
// attribution reads the agent attr to name a straggler node.
obs::SpanId BeginOpSpan(pod::PodManager& source, MigrateMode mode,
                        std::uint64_t op_id, os::PodId pod) {
  os::Os& os = source.node().os();
  return os.sim().tracer().BeginSpan(
      "migrate", std::string("migrate.op.") + MigrateModeName(mode),
      obs::TraceAttrs{}.Agent(os.node_name()).Op(op_id).Pod(pod));
}

// The shared final phase of the stop-bounded modes: stop, capture, move
// the pod, resume, report. `residual_bytes` is what still has to cross
// the network while the pod is stopped.
void FinalPhase(pod::PodManager& source, pod::PodManager& target,
                os::PodId id, const LiveMigrateOptions& options,
                TimeNs started, LiveMigrateStats stats, obs::SpanId op_span,
                LiveMigrator::DoneFn done) {
  sim::Simulator& sim = source.node().os().sim();
  TimeNs stop_time = sim.Now();
  obs::SpanId downtime_span = sim.tracer().BeginSpan(
      "migrate", "migrate.downtime",
      obs::TraceAttrs{}
          .Agent(source.node().os().node_name())
          .Op(stats.op_id)
          .Pod(id)
          .Phase("stop-copy"));
  CheckpointEngine::StopPod(source, id);
  PodCheckpoint ck = CheckpointEngine::CapturePod(source, id);
  // Residual transfer: the final dirty pages plus the non-memory state
  // (sockets, pipes, IPC — everything except the pre-copied pages).
  std::uint64_t page_bytes = 0;
  for (const ProcessRecord& proc : ck.processes) {
    page_bytes += proc.pages.size() * os::kPageSize;
  }
  std::uint64_t kernel_state = KernelStateBytes(ck, page_bytes);
  stats.final_bytes += kernel_state;
  std::uint64_t final_bytes = stats.final_bytes;
  DurationNs transfer = TransferTime(final_bytes, options);
  source.DestroyPod(id);
  sim.Schedule(transfer, [&target, ck = std::move(ck), stats, stop_time,
                          started, op_span, downtime_span,
                          done = std::move(done)]() mutable {
    sim::Simulator& sim2 = target.node().os().sim();
    os::PodId restored = CheckpointEngine::RestorePod(target, ck);
    CheckpointEngine::ResumePod(target, restored);
    stats.pod = restored;
    stats.downtime = sim2.Now() - stop_time;
    stats.total_duration = sim2.Now() - started;
    sim2.tracer().EndSpan(downtime_span);
    sim2.tracer().EndSpan(op_span);
    CRUZ_INFO("migrate") << "pod " << restored << " migrated ("
                         << MigrateModeName(stats.mode)
                         << "): rounds=" << stats.rounds << " downtime="
                         << ToMillis(stats.downtime) << "ms";
    done(stats);
  });
}

// ---------------------------------------------------------------------------
// Post-copy page-server session
// ---------------------------------------------------------------------------

// Shared state of one in-flight post-copy (or hybrid) migration: the
// source's frozen page image, the target's residue bookkeeping, and the
// demand/push protocol state. Lives until full residency.
struct PostCopySession : std::enable_shared_from_this<PostCopySession> {
  using PageKey = std::pair<os::Pid, std::uint64_t>;  // (vpid, page index)

  sim::Simulator* sim = nullptr;
  pod::PodManager* source = nullptr;  // page server's side (liveness gate)
  pod::PodManager* target = nullptr;
  os::PodId pod_id = os::kNoPod;
  LiveMigrateOptions options;
  LiveMigrateStats stats;
  TimeNs started = 0;
  TimeNs stop_time = 0;
  obs::SpanId op_span = obs::kInvalidSpanId;
  LiveMigrator::DoneFn done;

  // Fault-hook attribution: page requests travel target -> source, page
  // responses source -> target.
  std::string source_node;
  std::string target_node;
  std::uint32_t source_ip = 0;
  std::uint32_t target_ip = 0;

  // Frozen source image: per-vpid shared-page snapshots taken while the
  // pod was stopped. Released (cleared) only at full residency; a
  // request arriving later is refused, never served.
  std::map<os::Pid, os::MemorySnapshot> frozen;
  bool released = false;

  std::map<os::Pid, os::Pid> real_pid;  // vpid -> real pid on the target
  std::map<os::Pid, std::set<std::uint64_t>> residue;  // not yet resident
  std::uint64_t remaining = 0;
  bool finished = false;

  std::set<PageKey> demand_pending;         // fault outstanding
  std::map<PageKey, TimeNs> fault_started;  // degradation accounting
  std::map<PageKey, obs::SpanId> fetch_span;
  std::map<PageKey, TimeNs> push_sent;  // in-flight pushes (loss re-push)

  bool IsMissing(const PageKey& key) const {
    auto it = residue.find(key.first);
    return it != residue.end() && it->second.count(key.second) != 0;
  }

  fault::MessageFate RequestFate() {
    return options.injector == nullptr
               ? fault::MessageFate{}
               : options.injector->OnControlSend(target_node, source_ip,
                                                kPageRequestMsgByte);
  }
  fault::MessageFate ResponseFate() {
    return options.injector == nullptr
               ? fault::MessageFate{}
               : options.injector->OnControlSend(source_node, target_ip,
                                                kPageResponseMsgByte);
  }

  // Missing-page trap: the target OS invokes this with the faulting
  // process already parked.
  void OnFault(os::Pid vpid, std::uint64_t page) {
    if (finished) return;
    PageKey key{vpid, page};
    fault_started.emplace(key, sim->Now());
    fetch_span.emplace(
        key, sim->tracer().BeginSpan(
                 "migrate", "migrate.postcopy.fetch",
                 obs::TraceAttrs{}
                     .Agent(target_node)
                     .Op(stats.op_id)
                     .Pod(pod_id)
                     .Phase("postcopy-fetch")
                     .Arg("vpid", static_cast<std::uint64_t>(vpid))
                     .Arg("page", page)));
    if (sim->tracer().VerboseSample()) {
      sim->tracer().Instant("migrate", "migrate.postcopy.fault",
                            obs::TraceAttrs{}
                                .Op(stats.op_id)
                                .Pod(pod_id)
                                .Arg("page", page));
    }
    SendRequest(key, /*retransmit=*/false);
  }

  // Target -> source demand fetch, with a retransmit timer.
  void SendRequest(PageKey key, bool retransmit) {
    if (finished || !IsMissing(key)) return;
    if (retransmit) stats.requests_retransmitted += 1;
    demand_pending.insert(key);
    auto self = shared_from_this();
    fault::MessageFate fate = RequestFate();
    int deliveries = fate.drop ? 0 : (fate.duplicate ? 2 : 1);
    for (int i = 0; i < deliveries; ++i) {
      sim->Schedule(options.page_latency + fate.delay,
                    [self, key] { self->ServeRequest(key); });
    }
    sim->Schedule(options.page_request_timeout, [self, key] {
      if (self->finished || !self->IsMissing(key)) return;
      if (self->demand_pending.count(key) == 0) return;
      self->SendRequest(key, /*retransmit=*/true);
    });
  }

  // A crashed source machine serves nothing: its frozen image died with
  // it. Demand fetches go unanswered (the target stalls, cleanly) and
  // the background push stops. Latched — a later reboot brings back an
  // empty machine, not the frozen image.
  mutable bool source_dead = false;
  bool SourceDead() const {
    if (!source_dead && source != nullptr && source->node().failed()) {
      source_dead = true;
    }
    return source_dead;
  }

  // Source side: a request arrived at the frozen page store.
  void ServeRequest(PageKey key) {
    if (SourceDead()) return;
    if (released) {
      // The fence: after release the source refuses — it can no longer
      // serve, and counting proves it never does (late_serves == 0).
      sim->metrics().counter("migrate.postcopy.late_requests_total").Add();
      return;
    }
    SendResponse(key, /*demand=*/true);
  }

  // Source -> target page delivery (demand response or background push).
  void SendResponse(PageKey key, bool demand) {
    if (released) {
      stats.late_serves += 1;
      return;
    }
    auto fit = frozen.find(key.first);
    if (fit == frozen.end() || fit->second.Find(key.second) == nullptr) {
      return;
    }
    if (options.test_drop_page_response) {
      // Breaking mutation: the page is accounted as delivered but never
      // sent, so "done" fires with pages still missing on the target.
      Account(key, demand);
      return;
    }
    fault::MessageFate fate = ResponseFate();
    int deliveries = fate.drop ? 0 : (fate.duplicate ? 2 : 1);
    auto self = shared_from_this();
    for (int i = 0; i < deliveries; ++i) {
      sim->Schedule(options.page_latency + fate.delay, [self, key, demand] {
        self->DeliverPage(key, demand);
      });
    }
  }

  // Target side: page content arrived.
  void DeliverPage(PageKey key, bool demand) {
    if (finished) {
      stats.duplicate_fills_dropped += 1;
      return;
    }
    auto fit = frozen.find(key.first);
    if (fit == frozen.end()) return;
    const os::MemorySnapshot::Page* content = fit->second.Find(key.second);
    if (content == nullptr) return;
    auto pit = real_pid.find(key.first);
    if (pit == real_pid.end()) return;
    os::Os& os = target->node().os();
    if (!os.FillPage(pit->second, key.second,
                     cruz::ByteSpan(content->data(), content->size()))) {
      stats.duplicate_fills_dropped += 1;
      return;
    }
    Account(key, demand);
  }

  // A page became resident (or, under the drop-response mutation, was
  // falsely accounted as such).
  void Account(PageKey key, bool demand) {
    auto rit = residue.find(key.first);
    if (rit == residue.end() || rit->second.erase(key.second) == 0) return;
    remaining -= 1;
    push_sent.erase(key);
    bool was_pending = demand_pending.erase(key) != 0;
    if (demand) {
      stats.pages_fetched_on_demand += 1;
    } else {
      stats.pages_pushed += 1;
    }
    if (was_pending) {
      auto ts = fault_started.find(key);
      if (ts != fault_started.end()) {
        DurationNs stall = sim->Now() - ts->second;
        stats.degradation += stall;
        sim->metrics()
            .histogram("migrate.postcopy.fault_latency_ns")
            .Record(static_cast<std::uint64_t>(stall));
        fault_started.erase(ts);
      }
      auto sp = fetch_span.find(key);
      if (sp != fetch_span.end()) {
        sim->tracer().EndSpan(sp->second);
        fetch_span.erase(sp);
      }
    }
    if (remaining == 0) Finish();
  }

  // Background active push: drains the residue sequentially, skipping
  // pages with an outstanding demand fetch or a recent in-flight push.
  void SchedulePush() {
    auto self = shared_from_this();
    sim->Schedule(options.push_interval, [self] { self->PushNext(); });
  }

  void PushNext() {
    if (finished || SourceDead()) return;
    TimeNs now = sim->Now();
    for (const auto& [vpid, pages] : residue) {
      for (std::uint64_t page : pages) {
        PageKey key{vpid, page};
        if (demand_pending.count(key) != 0) continue;
        auto sent = push_sent.find(key);
        if (sent != push_sent.end() &&
            now - sent->second < options.page_request_timeout) {
          continue;  // in flight; re-eligible if the response was lost
        }
        push_sent[key] = now;
        SendResponse(key, /*demand=*/false);
        SchedulePush();
        return;
      }
    }
    if (remaining > 0) SchedulePush();  // everything in flight: poll again
  }

  // Full residency: release the frozen image, detach the fault handlers,
  // and report. This is the only place the source lets go of its copy.
  void Finish() {
    if (finished) return;
    finished = true;
    released = true;
    frozen.clear();
    os::Os& os = target->node().os();
    for (const auto& [vpid, real] : real_pid) {
      os.ClearPageFaultHandler(real);
    }
    stats.total_duration = sim->Now() - started;
    sim->tracer().EndSpan(
        op_span, {{"pages_fetched",
                   std::to_string(stats.pages_fetched_on_demand)},
                  {"pages_pushed", std::to_string(stats.pages_pushed)}});
    sim->metrics()
        .counter("migrate.postcopy.pages_fetched_total")
        .Add(stats.pages_fetched_on_demand);
    sim->metrics()
        .counter("migrate.postcopy.pages_pushed_total")
        .Add(stats.pages_pushed);
    CRUZ_INFO("migrate") << "pod " << stats.pod << " migrated ("
                         << MigrateModeName(stats.mode)
                         << "): downtime=" << ToMillis(stats.downtime)
                         << "ms degradation="
                         << ToMillis(stats.degradation) << "ms fetched="
                         << stats.pages_fetched_on_demand << " pushed="
                         << stats.pages_pushed;
    if (done) done(stats);
  }
};

// The post-copy stop: capture while sampling dirty sets, transfer kernel
// state (+ the hot set when it was not pre-copied), restore with the
// residue marked missing, resume, and hand off to the page server.
//
// `resident_is_dirty` selects which pages travel with the pod:
//   * post-copy: the pages dirtied during the hot window (the working
//     set); they cross the network during the stop.
//   * hybrid: the complement of the dirty set — those pages were already
//     pre-copied, so only kernel state crosses during the stop.
void PostCopyStop(pod::PodManager& source, pod::PodManager& target,
                  os::PodId id, const LiveMigrateOptions& options,
                  TimeNs started, LiveMigrateStats stats,
                  obs::SpanId op_span, bool resident_is_dirty,
                  LiveMigrator::DoneFn done) {
  sim::Simulator& sim = source.node().os().sim();
  os::Os& src_os = source.node().os();
  TimeNs stop_time = sim.Now();
  obs::SpanId downtime_span = sim.tracer().BeginSpan(
      "migrate", "migrate.downtime",
      obs::TraceAttrs{}
          .Agent(src_os.node_name())
          .Op(stats.op_id)
          .Pod(id)
          .Phase("stop-copy"));
  CheckpointEngine::StopPod(source, id);

  auto session = std::make_shared<PostCopySession>();
  session->sim = &sim;
  session->target = &target;
  session->pod_id = id;
  session->options = options;
  session->started = started;
  session->stop_time = stop_time;
  session->op_span = op_span;
  session->done = std::move(done);
  session->source = &source;
  session->source_node = source.node().name();
  session->target_node = target.node().name();
  if (!src_os.stack().interfaces().empty()) {
    session->source_ip = src_os.stack().interfaces().front().ip.value;
  }
  if (!target.node().os().stack().interfaces().empty()) {
    session->target_ip =
        target.node().os().stack().interfaces().front().ip.value;
  }

  // Sample per-process dirty sets and freeze the full image BEFORE the
  // capture (capture resets the dirty baseline).
  std::map<os::Pid, std::set<std::uint64_t>> resident;
  for (os::Pid pid : src_os.PodProcesses(id)) {
    os::Process* proc = src_os.FindProcess(pid);
    if (proc == nullptr) continue;
    os::Pid vpid = source.ToVirtualPid(id, pid);
    const std::set<std::uint64_t>& dirty = proc->memory().dirty_pages();
    os::MemorySnapshot snap = proc->memory().Snapshot();
    std::set<std::uint64_t>& keep = resident[vpid];
    std::set<std::uint64_t>& miss = session->residue[vpid];
    for (const auto& [index, page] : snap.pages()) {
      bool is_dirty = dirty.count(index) != 0;
      if (is_dirty == resident_is_dirty) {
        keep.insert(index);
      } else {
        miss.insert(index);
      }
    }
    session->remaining += miss.size();
    session->frozen.emplace(vpid, std::move(snap));
  }

  PodCheckpoint ck = CheckpointEngine::CapturePod(source, id);
  std::uint64_t resident_pages = 0;
  for (ProcessRecord& p : ck.processes) {
    const std::set<std::uint64_t>& keep = resident[p.vpid];
    std::erase_if(p.pages, [&keep](const PageRecord& page) {
      return keep.count(page.page_index) == 0;
    });
    resident_pages += p.pages.size();
  }
  // Split the filtered image into the bare kernel structures (registers,
  // fd tables, connections — always cross during the stop) and the
  // resident page records (payload + per-page headers). Hybrid's
  // resident pages already crossed during its pre-copy round, so only
  // post-copy's hot set pays for its page records here.
  std::uint64_t full_wire = ck.Serialize(/*compress=*/false).size();
  std::vector<std::vector<PageRecord>> parked;
  parked.reserve(ck.processes.size());
  for (ProcessRecord& p : ck.processes) {
    parked.push_back(std::move(p.pages));
    p.pages.clear();
  }
  std::uint64_t bare_kernel = ck.Serialize(/*compress=*/false).size();
  auto parked_it = parked.begin();
  for (ProcessRecord& p : ck.processes) {
    p.pages = std::move(*parked_it++);
  }
  std::uint64_t resident_wire =
      full_wire > bare_kernel ? full_wire - bare_kernel : 0;
  stats.pages_total = resident_pages + session->remaining;
  stats.pages_resident_at_resume = resident_pages;
  // Either way the target must learn which pages are NOT coming — the
  // missing-page directory, one page index per residue page — before it
  // can resume and fault on them.
  stats.final_bytes += bare_kernel +
                       sizeof(std::uint64_t) * session->remaining +
                       (resident_is_dirty ? resident_wire : 0);
  DurationNs transfer = TransferTime(stats.final_bytes, options);

  if (options.test_resume_both_sides) {
    // Breaking mutation: the source keeps its (running!) copy.
    CheckpointEngine::ResumePod(source, id);
  } else {
    source.DestroyPod(id);
  }

  sim.Schedule(transfer, [session, ck = std::move(ck), stats,
                          downtime_span]() mutable {
    pod::PodManager& tgt = *session->target;
    sim::Simulator& sim2 = tgt.node().os().sim();
    os::Os& os = tgt.node().os();
    os::PodId restored = CheckpointEngine::RestorePod(tgt, ck);
    for (const ProcessRecord& p : ck.processes) {
      os::Pid real = tgt.ToRealPid(restored, p.vpid);
      if (real == os::kNoPid) continue;
      os::Process* proc = os.FindProcess(real);
      if (proc == nullptr) continue;
      session->real_pid[p.vpid] = real;
      for (std::uint64_t page : session->residue[p.vpid]) {
        proc->memory().MarkMissing(page);
      }
      os::Pid vpid = p.vpid;
      os.SetPageFaultHandler(real, [session, vpid](std::uint64_t page) {
        session->OnFault(vpid, page);
      });
    }
    CheckpointEngine::ResumePod(tgt, restored);
    stats.pod = restored;
    stats.downtime = sim2.Now() - session->stop_time;
    sim2.tracer().EndSpan(downtime_span);
    sim2.tracer().Instant("migrate", "migrate.postcopy.resume",
                          obs::TraceAttrs{}
                              .Op(stats.op_id)
                              .Pod(restored)
                              .Arg("resident",
                                   stats.pages_resident_at_resume)
                              .Arg("residue", session->remaining));
    session->stats = stats;
    if (session->remaining == 0) {
      session->Finish();
    } else {
      session->SchedulePush();
    }
  });
}

// One pre-copy round; calls `stop` (with stats.final_bytes set to the
// dirty bytes observed at the stop decision) once the dirty set is small
// enough or the round limit hits.
void PrecopyRound(pod::PodManager& source, pod::PodManager& target,
                  os::PodId id, LiveMigrateOptions options, TimeNs started,
                  LiveMigrateStats stats,
                  std::function<void(LiveMigrateStats)> stop) {
  sim::Simulator& sim = source.node().os().sim();
  // Copy this round's pages while the pod runs: round 1 copies the whole
  // resident set; later rounds copy what the previous round dirtied.
  std::uint64_t round_bytes;
  if (stats.rounds == 0) {
    SweepDirtyBytes(source, id);  // start the first dirty window
    round_bytes = ResidentBytes(source, id);
  } else {
    round_bytes = SweepDirtyBytes(source, id);
  }
  stats.rounds += 1;
  stats.precopy_bytes += round_bytes;
  DurationNs transfer = TransferTime(round_bytes, options);
  stats.round_breakdown.push_back(MigrateRound{round_bytes, transfer});
  sim.Schedule(transfer, [&source, &target, id, options, started, stats,
                          stop = std::move(stop)]() mutable {
    if (source.Find(id) == nullptr) return;  // pod vanished mid-migration
    // Peek at what got dirtied while this round was in flight.
    std::uint64_t dirty_now = 0;
    os::Os& os = source.node().os();
    for (os::Pid pid : os.PodProcesses(id)) {
      os::Process* proc = os.FindProcess(pid);
      if (proc != nullptr) {
        dirty_now += proc->memory().dirty_pages().size() * os::kPageSize;
      }
    }
    if (dirty_now > options.stop_threshold_bytes &&
        stats.rounds < options.max_rounds) {
      PrecopyRound(source, target, id, options, started, stats,
                   std::move(stop));
      return;
    }
    stats.final_bytes = dirty_now;
    stop(stats);
  });
}

}  // namespace

void LiveMigrator::Migrate(pod::PodManager& source,
                           pod::PodManager& target, os::PodId pod,
                           const LiveMigrateOptions& options, DoneFn done) {
  CRUZ_CHECK(source.Find(pod) != nullptr, "Migrate: no such pod");
  sim::Simulator& sim = source.node().os().sim();
  LiveMigrateStats stats;
  stats.mode = MigrateMode::kPreCopy;
  stats.op_id = NextMigrateOpId(sim);
  obs::SpanId op_span = BeginOpSpan(source, stats.mode, stats.op_id, pod);
  TimeNs started = sim.Now();
  PrecopyRound(source, target, pod, options, started, stats,
               [&source, &target, pod, options, started, op_span,
                done = std::move(done)](LiveMigrateStats s) mutable {
                 FinalPhase(source, target, pod, options, started,
                            std::move(s), op_span, std::move(done));
               });
}

void LiveMigrator::StopAndCopy(pod::PodManager& source,
                               pod::PodManager& target, os::PodId pod,
                               const LiveMigrateOptions& options,
                               DoneFn done) {
  CRUZ_CHECK(source.Find(pod) != nullptr, "StopAndCopy: no such pod");
  sim::Simulator& sim = source.node().os().sim();
  LiveMigrateStats stats;
  stats.mode = MigrateMode::kStopAndCopy;
  stats.op_id = NextMigrateOpId(sim);
  obs::SpanId op_span = BeginOpSpan(source, stats.mode, stats.op_id, pod);
  TimeNs started = sim.Now();
  stats.final_bytes = ResidentBytes(source, pod);
  FinalPhase(source, target, pod, options, started, std::move(stats),
             op_span, std::move(done));
}

void LiveMigrator::PostCopy(pod::PodManager& source,
                            pod::PodManager& target, os::PodId pod,
                            const LiveMigrateOptions& options, DoneFn done) {
  CRUZ_CHECK(source.Find(pod) != nullptr, "PostCopy: no such pod");
  sim::Simulator& sim = source.node().os().sim();
  LiveMigrateStats stats;
  stats.mode = MigrateMode::kPostCopy;
  stats.op_id = NextMigrateOpId(sim);
  obs::SpanId op_span = BeginOpSpan(source, stats.mode, stats.op_id, pod);
  TimeNs started = sim.Now();
  // Hot-set observation window: clear the dirty tracking, let the pod run
  // briefly, and take what it dirtied as the working-set estimate.
  SweepDirtyBytes(source, pod);
  sim.Schedule(options.hot_window, [&source, &target, pod, options, started,
                                    stats, op_span,
                                    done = std::move(done)]() mutable {
    if (source.Find(pod) == nullptr) return;  // pod vanished
    PostCopyStop(source, target, pod, options, started, std::move(stats),
                 op_span, /*resident_is_dirty=*/true, std::move(done));
  });
}

void LiveMigrator::Hybrid(pod::PodManager& source, pod::PodManager& target,
                          os::PodId pod, const LiveMigrateOptions& options,
                          DoneFn done) {
  CRUZ_CHECK(source.Find(pod) != nullptr, "Hybrid: no such pod");
  sim::Simulator& sim = source.node().os().sim();
  LiveMigrateStats stats;
  stats.mode = MigrateMode::kHybrid;
  stats.op_id = NextMigrateOpId(sim);
  obs::SpanId op_span = BeginOpSpan(source, stats.mode, stats.op_id, pod);
  TimeNs started = sim.Now();
  PrecopyRound(source, target, pod, options, started, stats,
               [&source, &target, pod, options, started,
                op_span, done = std::move(done)](LiveMigrateStats s) mutable {
                 // The dirty remainder is demand-paged, not stop-copied.
                 s.final_bytes = 0;
                 PostCopyStop(source, target, pod, options, started,
                              std::move(s), op_span,
                              /*resident_is_dirty=*/false, std::move(done));
               });
}

void LiveMigrator::MigrateWithMode(pod::PodManager& source,
                                   pod::PodManager& target, os::PodId pod,
                                   MigrateMode mode,
                                   const LiveMigrateOptions& options,
                                   DoneFn done) {
  switch (mode) {
    case MigrateMode::kStopAndCopy:
      StopAndCopy(source, target, pod, options, std::move(done));
      return;
    case MigrateMode::kPreCopy:
      Migrate(source, target, pod, options, std::move(done));
      return;
    case MigrateMode::kPostCopy:
      PostCopy(source, target, pod, options, std::move(done));
      return;
    case MigrateMode::kHybrid:
      Hybrid(source, target, pod, options, std::move(done));
      return;
  }
}

}  // namespace cruz::ckpt
