#include "ckpt/engine.h"

#include <map>
#include <set>

#include "common/error.h"
#include "common/log.h"
#include "sim/simulator.h"

namespace cruz::ckpt {

namespace {

// Cost model for the network-stack lock hold while socket state is
// extracted: a fixed per-connection cost plus a copy cost for buffered
// bytes (kernel memory bandwidth scale).
constexpr DurationNs kPerConnectionLockCost = 10 * kMicrosecond;
constexpr std::uint64_t kSocketCopyBytesPerSec = 500 * kMiB;

std::int32_t OriginalIpcKey(os::PodId pod, std::int32_t virtualized) {
  return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(virtualized) ^
      (static_cast<std::uint32_t>(pod) << 20));
}

}  // namespace

void CheckpointEngine::StopPod(pod::PodManager& pods, os::PodId id) {
  os::Os& os = pods.node().os();
  for (os::Pid pid : os.PodProcesses(id)) {
    os.Signal(pid, os::kSigStop);
  }
}

void CheckpointEngine::ResumePod(pod::PodManager& pods, os::PodId id) {
  os::Os& os = pods.node().os();
  for (os::Pid pid : os.PodProcesses(id)) {
    os.Signal(pid, os::kSigCont);
  }
}

std::uint64_t PodSnapshot::SnapshotPages() const {
  std::uint64_t pages = 0;
  for (const ProcessMemory& m : memory_) {
    pages += m.include.has_value() ? m.include->size()
                                   : m.memory.PageCount();
  }
  return pages;
}

std::uint64_t PodSnapshot::EstimatedStateBytes() const {
  return meta_.StateBytes() + SnapshotPages() * os::kPageSize;
}

PodCheckpoint PodSnapshot::Materialize() const {
  PodCheckpoint ck = meta_;
  for (const ProcessMemory& m : memory_) {
    for (ProcessRecord& rec : ck.processes) {
      if (rec.vpid != m.vpid) continue;
      for (const auto& [page_index, page] : m.memory.pages()) {
        if (m.include.has_value() && m.include->count(page_index) == 0) {
          continue;  // unchanged since the parent image
        }
        rec.pages.push_back(
            PageRecord{page_index, cruz::Bytes(page->begin(), page->end())});
      }
      break;
    }
  }
  return ck;
}

PodCheckpoint CheckpointEngine::CapturePod(pod::PodManager& pods,
                                           os::PodId id,
                                           CaptureStats* stats) {
  return CapturePod(pods, id, CaptureOptions{}, stats);
}

PodCheckpoint CheckpointEngine::CapturePod(pod::PodManager& pods,
                                           os::PodId id,
                                           const CaptureOptions& options,
                                           CaptureStats* stats) {
  return SnapshotPod(pods, id, options, stats).Materialize();
}

PodSnapshot CheckpointEngine::SnapshotPod(pod::PodManager& pods,
                                          os::PodId id,
                                          const CaptureOptions& options,
                                          CaptureStats* stats) {
  pod::Pod* pod = pods.Find(id);
  CRUZ_CHECK(pod != nullptr, "CapturePod: no such pod");
  os::Node& node = pods.node();
  os::Os& os = node.os();
  os::NetworkStack& stack = node.stack();

  // 1. Stop every process in the pod (paper: "Zap sends SIGSTOP signals
  //    to stop the execution of all processes in a pod").
  StopPod(pods, id);

  PodSnapshot snap;
  PodCheckpoint& ck = snap.meta_;
  ck.pod_id = pod->id;
  ck.pod_name = pod->name;
  ck.ip = pod->ip;
  ck.vif_mac = pod->vif_mac;
  ck.fake_mac = pod->fake_mac;
  ck.next_vpid = pod->next_vpid;
  ck.incremental = options.incremental;
  ck.generation = options.generation;
  ck.parent_image = options.parent_image;

  CaptureStats local_stats;

  // 2. SysV IPC objects: everything the pod's virtual-id maps reference.
  for (const auto& [virt, real] : pod->vshm_to_real) {
    os::ShmSegment* seg = os.sysv().FindShm(real);
    if (seg != nullptr) {
      ck.shm.push_back(
          ShmRecord{virt, OriginalIpcKey(id, seg->key), seg->data});
    }
  }
  for (const auto& [virt, real] : pod->vsem_to_real) {
    os::Semaphore* sem = os.sysv().FindSem(real);
    if (sem != nullptr) {
      ck.sems.push_back(
          SemRecord{virt, OriginalIpcKey(id, sem->key), sem->value});
    }
  }

  // 3. Walk processes: threads, memory, fd tables.
  std::map<const os::FileDescription*, std::uint64_t> desc_refs;
  std::map<os::PipeId, const os::Pipe*> pipes_seen;
  std::set<os::SocketId> sockets_seen;
  std::uint64_t next_desc_ref = 1;

  for (os::Pid pid : os.PodProcesses(id)) {
    os::Process* proc = os.FindProcess(pid);
    CRUZ_CHECK(proc != nullptr, "pod process vanished during capture");
    ProcessRecord rec;
    rec.vpid = pods.ToVirtualPid(id, pid);
    rec.program = proc->program_name();
    for (const os::Thread& t : proc->threads()) {
      if (t.state == os::ThreadState::kExited) continue;
      rec.threads.push_back(ThreadRecord{t.tid, t.regs});
      ++local_stats.threads;
    }
    // Memory is not copied here: the snapshot shares every page with the
    // live address space, and post-resume writes copy lazily (COW).
    PodSnapshot::ProcessMemory mem;
    mem.vpid = rec.vpid;
    mem.memory = proc->memory().Snapshot();
    if (options.incremental) {
      mem.include = proc->memory().dirty_pages();
    }
    // Every capture (full or incremental) starts the next delta window at
    // SNAPSHOT time: pages written after the pod resumes — even while the
    // background write-out is still running — belong to the next delta.
    proc->memory().ClearDirty();
    snap.memory_.push_back(std::move(mem));
    for (const auto& [fd, desc] : proc->fds()) {
      auto ref_it = desc_refs.find(desc.get());
      if (ref_it == desc_refs.end()) {
        std::uint64_t ref = next_desc_ref++;
        ref_it = desc_refs.emplace(desc.get(), ref).first;
        DescRecord d;
        d.ref = ref;
        d.kind = desc->kind;
        d.path = desc->path;
        d.offset = desc->offset;
        if (desc->pipe != nullptr) {
          d.pipe_id = desc->pipe->id();
          pipes_seen.emplace(desc->pipe->id(), desc->pipe.get());
        }
        if (desc->IsSocket()) {
          d.socket_ref = desc->socket;
          sockets_seen.insert(desc->socket);
        }
        ck.descs.push_back(std::move(d));
      }
      rec.fds.push_back(FdRecord{fd, ref_it->second});
    }
    for (const os::ShmAttachment& att : proc->shm_attachments()) {
      os::ShmSegment* seg = os.sysv().FindShm(att.shm_id);
      if (seg != nullptr) {
        rec.shm_attachments.push_back(
            ShmAttachRecord{OriginalIpcKey(id, seg->key), att.addr});
      }
    }
    ++local_stats.processes;
    ck.processes.push_back(std::move(rec));
  }

  // 4. Pipe buffers.
  for (const auto& [pipe_id, pipe] : pipes_seen) {
    ck.pipes.push_back(PipeRecord{pipe_id, pipe->SnapshotBuffer()});
    ++local_stats.pipes;
  }

  // 5. Socket state, captured under the (simulated) stack locks. The
  //    lock-hold duration is reported so the agent can charge it; it
  //    covers only the socket extraction, not the whole checkpoint.
  std::uint64_t socket_bytes = 0;
  auto capture_connection = [&](os::TcpSocketObject* sock) {
    CRUZ_CHECK(sock->conn != nullptr, "capture_connection without conn");
    ConnRecord c;
    c.socket_ref = sock->id;
    c.conn = sock->conn->ExportCheckpoint();
    // "Data from both buffers are concatenated and saved in the
    // checkpoint": alternate-buffer data first, then the receive buffer.
    if (!sock->alt_recv.empty()) {
      cruz::Bytes merged = sock->alt_recv;
      merged.insert(merged.end(), c.conn.recv_pending.begin(),
                    c.conn.recv_pending.end());
      c.conn.recv_pending = std::move(merged);
    }
    socket_bytes += c.conn.TotalBytes();
    ++local_stats.tcp_connections;
    ck.conns.push_back(std::move(c));
  };

  for (os::SocketId sid : sockets_seen) {
    if (os::TcpSocketObject* sock = stack.FindTcp(sid)) {
      switch (sock->state) {
        case os::TcpSocketObject::State::kListening: {
          ListenerRecord l;
          l.socket_ref = sid;
          l.port = sock->local.port;
          l.backlog = sock->backlog;
          for (os::SocketId child_id : sock->accept_queue) {
            l.accept_queue.push_back(child_id);
            os::TcpSocketObject* child = stack.FindTcp(child_id);
            if (child != nullptr && child->conn != nullptr) {
              capture_connection(child);
            }
          }
          ++local_stats.listeners;
          ck.listeners.push_back(std::move(l));
          break;
        }
        case os::TcpSocketObject::State::kConnecting:
        case os::TcpSocketObject::State::kConnected:
          capture_connection(sock);
          break;
        case os::TcpSocketObject::State::kFresh:
        case os::TcpSocketObject::State::kBound:
        case os::TcpSocketObject::State::kError:
          ck.fresh_sockets.push_back(FreshSocketRecord{
              sid, sock->state == os::TcpSocketObject::State::kBound,
              sock->local.port});
          break;
      }
    } else if (os::UdpSocketObject* usock = stack.FindUdp(sid)) {
      UdpRecord u;
      u.socket_ref = sid;
      u.port = usock->local.port;
      for (const auto& [src, payload] : usock->rx) {
        socket_bytes += payload.size();
        u.rx.emplace_back(src, payload);
      }
      ck.udp.push_back(std::move(u));
    }
  }

  local_stats.network_lock_hold =
      local_stats.tcp_connections * kPerConnectionLockCost +
      socket_bytes * kSecond / kSocketCopyBytesPerSec;
  local_stats.snapshot_pages = snap.SnapshotPages();
  local_stats.state_bytes = snap.EstimatedStateBytes();
  if (stats != nullptr) *stats = local_stats;

  sim::Simulator& sim = node.os().sim();
  sim.tracer().Instant(
      "ckpt", "ckpt.capture",
      obs::TraceAttrs{}
          .Agent(node.name())
          .Pod(pod->id)
          .Arg("processes", local_stats.processes)
          .Arg("threads", local_stats.threads)
          .Arg("tcp_connections", local_stats.tcp_connections)
          .Arg("pages", local_stats.snapshot_pages)
          .Arg("state_bytes", local_stats.state_bytes)
          .Arg("incremental", options.incremental ? "true" : "false"));
  sim.metrics().counter("ckpt.captures_total").Add();
  sim.metrics().counter("ckpt.captured_pages_total")
      .Add(local_stats.snapshot_pages);
  sim.metrics().counter("ckpt.captured_state_bytes_total")
      .Add(local_stats.state_bytes);

  CRUZ_INFO("ckpt") << node.name() << ": snapshotted pod " << pod->name
                    << " (" << local_stats.processes << " procs, "
                    << local_stats.tcp_connections << " conns, "
                    << local_stats.snapshot_pages << " pages, "
                    << local_stats.state_bytes << " state bytes)";
  return snap;
}

PodCheckpoint CheckpointEngine::LoadImageChain(os::FileStore& fs,
                                               const std::string& path) {
  // Walk parent links to the full base image, then overlay forward.
  std::vector<PodCheckpoint> chain;
  std::string current = path;
  for (;;) {
    cruz::Bytes image;
    if (!SysOk(fs.ReadFile(current, image))) {
      throw UsageError("checkpoint image missing from shared FS: " +
                       current);
    }
    chain.push_back(PodCheckpoint::Deserialize(image));
    if (!chain.back().incremental) break;
    CRUZ_CHECK(!chain.back().parent_image.empty(),
               "incremental image without a parent link");
    current = chain.back().parent_image;
    CRUZ_CHECK(chain.size() < 1000, "checkpoint chain too long (cycle?)");
  }
  PodCheckpoint merged = chain.back();  // the full base
  for (auto it = std::next(chain.rbegin()); it != chain.rend(); ++it) {
    merged = it->MergeOnto(merged);
  }
  return merged;
}

os::PodId CheckpointEngine::RestorePod(pod::PodManager& pods,
                                       const PodCheckpoint& ck) {
  os::Node& node = pods.node();
  os::Os& os = node.os();
  os::NetworkStack& stack = node.stack();

  // 1. Recreate the pod with its preserved identity: same pod id, IP,
  //    VIF MAC (hardware permitting) and fake MAC.
  pod::PodCreateOptions opt;
  opt.name = ck.pod_name;
  opt.ip = ck.ip;
  opt.id = ck.pod_id;
  opt.vif_mac = ck.vif_mac;
  opt.fake_mac = ck.fake_mac;
  os::PodId id = pods.CreatePod(opt);
  pod::Pod* pod = pods.Find(id);
  pod->next_vpid = ck.next_vpid;
  // Update the subnet's view of (IP -> MAC). With a migratable MAC this
  // refreshes switch learning; in the shared-MAC scheme it is the ARP
  // update the paper describes.
  pods.AnnouncePod(id);

  // 2. SysV objects: fresh kernel ids bound behind the pod's stable
  //    virtual ids (which live on in restored process registers).
  std::map<std::int32_t, os::ShmId> shm_by_key;
  for (const ShmRecord& s : ck.shm) {
    std::int32_t vkey = static_cast<std::int32_t>(
        (static_cast<std::uint32_t>(id) << 20) ^
        static_cast<std::uint32_t>(s.key));
    os::ShmId real = os.sysv().InstallShm(vkey, s.data);
    shm_by_key[s.key] = real;
    pods.BindShmId(id, s.virtual_id, real);
  }
  for (const SemRecord& s : ck.sems) {
    std::int32_t vkey = static_cast<std::int32_t>(
        (static_cast<std::uint32_t>(id) << 20) ^
        static_cast<std::uint32_t>(s.key));
    pods.BindSemId(id, s.virtual_id, os.sysv().InstallSem(vkey, s.value));
  }

  // 3. Pipes.
  std::map<os::PipeId, std::shared_ptr<os::Pipe>> pipes;
  for (const PipeRecord& p : ck.pipes) {
    auto pipe = std::make_shared<os::Pipe>(p.id);
    pipe->RestoreBuffer(p.buffer);
    pipes[p.id] = std::move(pipe);
  }

  // 4. Sockets: connections first (the §4.1 replay fires inside), then
  //    listeners (re-attaching pending accept-queue children), then UDP.
  std::map<std::uint64_t, os::SocketId> sock_map;
  for (const ConnRecord& c : ck.conns) {
    sock_map[c.socket_ref] =
        stack.RestoreTcpFromCheckpoint(c.conn, c.conn.recv_pending);
  }
  for (const ListenerRecord& l : ck.listeners) {
    os::SocketId sid = stack.InstallRestoredListener(
        net::Endpoint{ck.ip, l.port}, l.backlog);
    sock_map[l.socket_ref] = sid;
    os::TcpSocketObject* listener = stack.FindTcp(sid);
    for (std::uint64_t child_ref : l.accept_queue) {
      auto it = sock_map.find(child_ref);
      if (it != sock_map.end()) {
        listener->accept_queue.push_back(it->second);
      }
    }
  }
  for (const UdpRecord& u : ck.udp) {
    os::SocketId sid = stack.CreateUdpSocket();
    stack.UdpBind(sid, net::Endpoint{ck.ip, u.port});
    os::UdpSocketObject* usock = stack.FindUdp(sid);
    for (const auto& [src, payload] : u.rx) {
      usock->rx.emplace_back(src, payload);
    }
    sock_map[u.socket_ref] = sid;
  }
  for (const FreshSocketRecord& f : ck.fresh_sockets) {
    os::SocketId sid = stack.CreateTcpSocket();
    if (f.bound) {
      stack.TcpBind(sid, net::Endpoint{ck.ip, f.port});
    }
    sock_map[f.socket_ref] = sid;
  }

  // 5. Open file descriptions (shared across dup'ed fds).
  std::map<std::uint64_t, std::shared_ptr<os::FileDescription>> descs;
  for (const DescRecord& d : ck.descs) {
    auto desc = std::make_shared<os::FileDescription>();
    desc->kind = d.kind;
    desc->path = d.path;
    desc->offset = d.offset;
    if (d.kind == os::FileDescription::Kind::kPipeRead ||
        d.kind == os::FileDescription::Kind::kPipeWrite) {
      auto it = pipes.find(d.pipe_id);
      CRUZ_CHECK(it != pipes.end(), "restore: dangling pipe reference");
      desc->pipe = it->second;
    }
    if (desc->IsSocket()) {
      auto it = sock_map.find(d.socket_ref);
      CRUZ_CHECK(it != sock_map.end(), "restore: dangling socket reference");
      desc->socket = it->second;
    }
    descs[d.ref] = std::move(desc);
  }

  // 6. Processes: fresh real pids, stable virtual pids, memory + registers
  //    restored, fds re-attached. Installed SIGSTOPped.
  for (const ProcessRecord& p : ck.processes) {
    os::Pid pid = os.AllocatePid();
    auto proc = std::make_unique<os::Process>(pid, p.program);
    proc->set_pod(id);
    proc->set_program(os::ProgramRegistry::Instance().Create(p.program));
    proc->set_state(os::ProcessState::kStopped);
    for (const ThreadRecord& t : p.threads) {
      proc->InstallThread(t.tid, t.regs);
    }
    for (const PageRecord& page : p.pages) {
      proc->memory().InstallPage(page.page_index, page.content);
    }
    for (const FdRecord& f : p.fds) {
      auto it = descs.find(f.desc_ref);
      CRUZ_CHECK(it != descs.end(), "restore: dangling desc reference");
      proc->InstallFd(f.fd, it->second);
      if (it->second->kind == os::FileDescription::Kind::kPipeRead) {
        it->second->pipe->AddReader();
      } else if (it->second->kind ==
                 os::FileDescription::Kind::kPipeWrite) {
        it->second->pipe->AddWriter();
      }
    }
    for (const ShmAttachRecord& a : p.shm_attachments) {
      auto it = shm_by_key.find(a.key);
      if (it != shm_by_key.end()) {
        os::ShmSegment* seg = os.sysv().FindShm(it->second);
        if (seg != nullptr) ++seg->attach_count;
        proc->shm_attachments().push_back(
            os::ShmAttachment{it->second, a.addr});
      }
    }
    os.InstallProcess(std::move(proc));
    pods.BindVirtualPid(id, p.vpid, pid);
    // Threads become runnable but are not scheduled until SIGCONT.
    os.StartProcessThreads(pid);
  }

  sim::Simulator& sim = node.os().sim();
  sim.tracer().Instant("ckpt", "ckpt.restore",
                       obs::TraceAttrs{}
                           .Agent(node.name())
                           .Pod(ck.pod_id)
                           .Arg("processes", ck.processes.size())
                           .Arg("tcp_connections", ck.conns.size())
                           .Arg("listeners", ck.listeners.size())
                           .Arg("generation", ck.generation));
  sim.metrics().counter("ckpt.restores_total").Add();

  CRUZ_INFO("ckpt") << node.name() << ": restored pod " << ck.pod_name
                    << " (" << ck.processes.size() << " procs, "
                    << ck.conns.size() << " conns)";
  return id;
}

}  // namespace cruz::ckpt
