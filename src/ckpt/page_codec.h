// Per-page compression codec for checkpoint images (paper §5.2,
// "checkpoint compression" future work).
//
// Checkpoint memory is dominated by pages that are mostly zero or carry
// long byte runs (stencil grids, zeroed heaps), so a byte-level run-length
// codec gets large wins without external dependencies. Every encoded page
// is self-describing and self-checking:
//
//   [u8 codec id][u32 CRC-32 of the raw page][codec payload]
//
// kRaw stores the 4 KiB page verbatim; kRle stores (u16 run length,
// u8 value) tokens whose lengths must sum to exactly kPageSize. The
// encoder picks whichever is smaller, so compression never expands a page
// beyond 5 bytes of header. DecodePage verifies the run structure and the
// CRC and throws CodecError on any corruption — a single flipped bit in a
// compressed page is detected here even if the image's outer CRC was
// fixed up by an attacker or recomputed after the corruption.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace cruz::ckpt {

enum class PageCodec : std::uint8_t {
  kRaw = 0,  // verbatim page bytes
  kRle = 1,  // run-length tokens (u16 length, u8 value)
};

// Encodes one kPageSize page. `preferred` selects the target codec; the
// encoder falls back to kRaw when RLE would be larger.
cruz::Bytes EncodePage(cruz::ByteSpan page, PageCodec preferred);

// Decodes one encoded page back to exactly kPageSize bytes. Throws
// CodecError on unknown codec ids, malformed run structure, truncation,
// or a CRC mismatch against the recorded raw-page checksum.
cruz::Bytes DecodePage(cruz::ByteSpan encoded);

}  // namespace cruz::ckpt
