// Multi-tier checkpoint storage with partner redundancy.
//
// Cruz (§2) assumes a single always-available shared filesystem; real
// deployments (LLNL SCR) instead spread each checkpoint image across a
// storage hierarchy so a restartable generation survives node loss,
// netfs outage and disk-full:
//
//   tier 1  the writer's node-local disk cache (os::LocalDiskStore) —
//           fast, but shares the node's failure domain;
//   tier 2  the writer's ring partner's disk, written in parallel with
//           tier 1 (partner(i) = next live slot after i, deterministic);
//   tier 3  the shared netfs, filled by a background flush with
//           retry/backoff so a temporary outage only delays durability.
//
// Write path: CommitImage lands the image on tier 1 + tier 2 and
// returns the replica set the agent reports in <done>; the netfs flush
// runs in the background. Restore path: Resolve reads local → partner →
// netfs, falling back across tiers on -ENOENT or CRC mismatch, rebuilds
// missing local copies ("rebuild-on-restart"), and traces the chosen
// source + fallback chain as ckpt.store.* events so cruz_analyze can
// attribute restore traffic per tier. Eviction keeps the last K
// generations on the node disks once they are durable on the netfs, and
// -ENOSPC on any tier evicts the oldest non-latest generation's files
// rather than failing the checkpoint.
//
// The store is pure state + scheduling; I/O *cost* is still charged by
// the agents through Node::DiskWriteDuration / PartnerWriteDuration.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ckpt/store/replica.h"
#include "common/bytes.h"
#include "common/sysresult.h"
#include "common/units.h"
#include "fault/fault.h"
#include "os/file_store.h"
#include "os/netfs.h"
#include "os/node.h"
#include "sim/simulator.h"

namespace cruz::ckpt {

class TieredStore {
 public:
  // Partner replicas live on the partner's disk under this prefix, so a
  // node's own images and the copies it guards for its partner never
  // collide.
  static constexpr const char* kPartnerPrefix = "/partner";

  // Outcome of one cross-tier read.
  struct ResolveResult {
    Tier source = Tier::kNone;
    std::uint32_t node_index = 0;  // holder (0 for netfs)
    std::size_t fallbacks = 0;     // tiers/copies tried before success
    std::string chain;             // e.g. "local:miss,partner(node2):ok"
    bool rebuilt_local = false;
  };

  TieredStore(sim::Simulator& sim, os::NetworkFileSystem& netfs);

  // Ring membership, in registration order. Register every worker node
  // once at cluster construction; failed nodes stay in the ring (their
  // slot is skipped while down).
  void RegisterNode(os::Node* node);
  os::Node* PartnerOf(std::uint32_t node_index) const;
  os::Node* NodeByIndex(std::uint32_t node_index) const;

  void set_injector(fault::Injector* injector) { injector_ = injector; }
  // Keep the newest K generations on the node disks; older generations
  // are dropped from tiers 1-2 once every file is durable on the netfs.
  void set_keep_local_generations(std::size_t k) { keep_local_ = k; }
  void set_flush_retry_interval(DurationNs d) { flush_retry_ = d; }
  void set_max_flush_attempts(std::size_t n) { max_flush_attempts_ = n; }

  // --- write path ---------------------------------------------------------
  // Commits `image` to the writer's local disk and its partner's disk
  // (parallel writes; `duration` is the max of the two tier costs), then
  // schedules the background netfs flush. -ENOSPC on a disk evicts the
  // oldest non-current generation's files from that disk and retries.
  // Returns the image size, or an error if no tier accepted the image.
  SysResult CommitImage(os::Node& writer, const std::string& path,
                        cruz::Bytes image, std::vector<Replica>* replicas,
                        DurationNs* duration);

  // Metadata (generation manifests, SEQ): replicated synchronously to
  // every live node's disk and flushed to the netfs in the background,
  // so commits survive a netfs outage ("manifest commits late but
  // intact").
  void PutMeta(const std::string& path, cruz::Bytes bytes);
  SysResult ReadMeta(const std::string& path, cruz::Bytes& out) const;

  // Union of paths under `prefix` across every tier, with partner-copy
  // prefixes stripped; sorted, deduplicated.
  std::vector<std::string> ListAll(const std::string& prefix) const;

  // --- restore path -------------------------------------------------------
  // Cross-tier read: reader-local → partner tier (any other live node,
  // own copy or guarded copy) → netfs. Copies whose size/CRC disagree
  // with the commit-time record are skipped (fallback). When `reader` is
  // set and the winning copy was remote, the local tier is repopulated.
  // `trace` controls ckpt.store.resolve events + restore-source counters
  // (restores trace; verification probes do not).
  SysResult Resolve(os::Node* reader, const std::string& path,
                    cruz::Bytes& out, ResolveResult* rr = nullptr,
                    bool trace = true);
  bool HasAnyReplica(const std::string& path) const;

  // --- GC -----------------------------------------------------------------
  // Removes every copy of `path` (all disks, both prefixes, netfs) and
  // cancels any pending flush. Returns the number of copies removed.
  std::size_t RemoveEverywhere(const std::string& path);
  // Cross-tier discard of a generation directory (images + manifest).
  // Netfs copies that cannot be removed now (outage) are tombstoned and
  // reaped when the netfs returns.
  std::size_t DiscardPrefix(const std::string& prefix);

  // --- introspection (tests, benches) -------------------------------------
  bool FlushedToNetfs(const std::string& path) const;
  std::size_t PendingFlushCount() const { return pending_flush_.size(); }
  std::uint64_t flush_attempts_total() const { return flush_attempts_total_; }
  // Total bytes stored under `prefix` across node disks (both prefixes)
  // and the netfs; the zero-orphan assertions use this.
  std::uint64_t BytesUnderPrefix(const std::string& prefix) const;

 private:
  struct ImageMeta {
    std::uint64_t size = 0;
    std::uint32_t crc32 = 0;
    std::uint32_t writer = 0;
    bool flushed = false;
  };
  struct FlushState {
    std::uint32_t writer = 0;
    DurationNs backoff = 0;
    std::size_t attempts = 0;
  };

  void ScheduleFlush(const std::string& path, std::uint32_t writer,
                     DurationNs after);
  void AttemptFlush(const std::string& path);
  // Finds any live copy of `path` on the node disks (own or guarded).
  bool FindAnyCopy(const std::string& path, cruz::Bytes& out) const;
  // Frees space on `node`'s disk by dropping the oldest generation's
  // files (preferring netfs-durable ones), excluding `keep_prefix`.
  bool EvictLocalForSpace(os::Node& node, const std::string& keep_prefix);
  // Frees netfs space by dropping the oldest generation's netfs copies
  // that still have a disk replica, excluding `keep_prefix`.
  bool EvictNetfsForSpace(const std::string& keep_prefix);
  // Drops tier-1/2 copies of generations older than the newest K once
  // they are fully netfs-durable.
  void EnforceRetention();
  void ScheduleReaper();
  void ReapTombstones();
  bool Unreachable(const os::Node* node) const;
  void NotifyNoSpace(const std::string& store, const std::string& path);
  // ".../gen_000007/pod_1.img" -> ".../gen_000007" ("" if not gen-shaped).
  static std::string GenPrefixOf(const std::string& path);

  sim::Simulator& sim_;
  os::NetworkFileSystem& netfs_;
  fault::Injector* injector_ = nullptr;
  std::vector<os::Node*> ring_;
  std::size_t keep_local_ = 2;
  DurationNs flush_retry_ = 100 * kMillisecond;
  DurationNs flush_retry_max_ = 2 * kSecond;
  std::size_t max_flush_attempts_ = 64;
  // Commit-time truth per image path: expected size/CRC and durability.
  std::map<std::string, ImageMeta> index_;
  std::map<std::string, FlushState> pending_flush_;
  // Generation prefix -> files committed under it (images + manifests).
  std::map<std::string, std::set<std::string>> gen_files_;
  // Netfs paths whose removal failed during an outage; reaped later.
  std::set<std::string> tombstones_;
  bool reaper_scheduled_ = false;
  std::uint64_t flush_attempts_total_ = 0;
};

// FileStore view over the hierarchy for one reader: LoadImageChain and
// the generation verifier read through this, so every link of an
// incremental chain resolves across tiers independently. Reads are
// memoized per view (one resolve — and one trace event — per path).
class TieredReadView : public os::FileStore {
 public:
  TieredReadView(TieredStore& store, os::Node* reader, bool trace = true)
      : store_(store), reader_(reader), trace_(trace) {}

  bool Exists(const std::string& path) const override {
    return store_.HasAnyReplica(path);
  }
  SysResult ReadFile(const std::string& path,
                     cruz::Bytes& out) const override;
  SysResult FileSize(const std::string& path) const override;

  // Resolution of the first (head) path read through this view, for
  // restore-source attribution.
  const TieredStore::ResolveResult& head_result() const {
    return head_result_;
  }

 private:
  TieredStore& store_;
  os::Node* reader_;
  bool trace_;
  mutable bool have_head_ = false;
  mutable TieredStore::ResolveResult head_result_;
  mutable std::map<std::string, cruz::Bytes> cache_;
};

}  // namespace cruz::ckpt
