#include "ckpt/store/tiered_store.h"

#include <algorithm>

#include "common/crc32.h"
#include "common/log.h"
#include "obs/trace.h"

namespace cruz::ckpt {

namespace {

bool IsManifest(const std::string& path) {
  static constexpr const char* kSuffix = "/MANIFEST";
  static constexpr std::size_t kLen = 9;
  return path.size() >= kLen &&
         path.compare(path.size() - kLen, kLen, kSuffix) == 0;
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

TieredStore::TieredStore(sim::Simulator& sim, os::NetworkFileSystem& netfs)
    : sim_(sim), netfs_(netfs) {}

void TieredStore::RegisterNode(os::Node* node) { ring_.push_back(node); }

os::Node* TieredStore::NodeByIndex(std::uint32_t node_index) const {
  for (os::Node* n : ring_) {
    if (n->index() == node_index) return n;
  }
  return nullptr;
}

os::Node* TieredStore::PartnerOf(std::uint32_t node_index) const {
  std::size_t slot = ring_.size();
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (ring_[i]->index() == node_index) {
      slot = i;
      break;
    }
  }
  if (slot == ring_.size() || ring_.size() < 2) return nullptr;
  // Next live slot after ours; the ring is fixed at registration order,
  // so the assignment is deterministic and every node can recompute it.
  for (std::size_t step = 1; step < ring_.size(); ++step) {
    os::Node* candidate = ring_[(slot + step) % ring_.size()];
    if (!candidate->failed()) return candidate;
  }
  return nullptr;
}

bool TieredStore::Unreachable(const os::Node* node) const {
  return injector_ != nullptr && node != nullptr &&
         injector_->PartnerUnreachable(node->name());
}

void TieredStore::NotifyNoSpace(const std::string& store,
                                const std::string& path) {
  sim_.metrics().counter("ckpt.store.enospc_total").Add(1);
  if (injector_ != nullptr) injector_->OnNoSpace(store, path);
}

std::string TieredStore::GenPrefixOf(const std::string& path) {
  std::size_t at = path.find("/gen_");
  if (at == std::string::npos) return "";
  std::size_t end = path.find('/', at + 1);
  if (end == std::string::npos) return "";
  return path.substr(0, end);
}

SysResult TieredStore::CommitImage(os::Node& writer, const std::string& path,
                                   cruz::Bytes image,
                                   std::vector<Replica>* replicas,
                                   DurationNs* duration) {
  const std::uint64_t bytes = image.size();
  const std::uint32_t crc = Crc32(image);
  const std::string gen = GenPrefixOf(path);
  std::vector<Replica> out;

  // Tier 1: the writer's own disk. -ENOSPC evicts the oldest non-current
  // generation's files from this disk and retries.
  DurationNs local_cost = writer.DiskWriteDuration(bytes);
  SysResult local = writer.disk().WriteFile(path, image);
  if (SysErrno(local) == CRUZ_ENOSPC) {
    NotifyNoSpace(writer.disk().name(), path);
    while (!SysOk(local) && EvictLocalForSpace(writer, gen)) {
      local = writer.disk().WriteFile(path, image);
    }
  }
  if (SysOk(local)) {
    out.push_back(Replica{Tier::kLocal, writer.index(), bytes, crc});
  }

  // Tier 2: the ring partner, written in parallel with tier 1.
  DurationNs partner_cost = 0;
  os::Node* partner = PartnerOf(writer.index());
  if (partner != nullptr && !Unreachable(&writer) && !Unreachable(partner)) {
    std::string guarded = std::string(kPartnerPrefix) + path;
    SysResult pr = partner->disk().WriteFile(guarded, image);
    if (SysErrno(pr) == CRUZ_ENOSPC) {
      NotifyNoSpace(partner->disk().name(), path);
      while (!SysOk(pr) && EvictLocalForSpace(*partner, gen)) {
        pr = partner->disk().WriteFile(guarded, image);
      }
    }
    if (SysOk(pr)) {
      out.push_back(Replica{Tier::kPartner, partner->index(), bytes, crc});
      partner_cost = writer.PartnerWriteDuration(bytes);
    }
  } else if (partner != nullptr) {
    sim_.metrics().counter("ckpt.store.partner_skips_total").Add(1);
  }

  if (out.empty()) {
    // No tier accepted the image: the checkpoint on this member fails.
    return SysOk(local) ? SysErr(CRUZ_EIO) : local;
  }

  index_[path] = ImageMeta{bytes, crc, writer.index(), false};
  if (!gen.empty()) gen_files_[gen].insert(path);
  if (duration != nullptr) *duration = std::max(local_cost, partner_cost);
  if (replicas != nullptr) *replicas = out;

  sim_.metrics().counter("ckpt.store.commits_total").Add(1);
  sim_.tracer().Instant(
      "ckpt", "ckpt.store.commit",
      obs::TraceAttrs{}
          .Arg("path", path)
          .Arg("bytes", bytes)
          .Arg("replicas", static_cast<std::uint64_t>(out.size()))
          .Arg("partner",
               out.size() > 1 ? NodeByIndex(out[1].node_index)->name() : ""));

  // Tier 3 fills in the background once the foreground writes land.
  ScheduleFlush(path, writer.index(),
                std::max(local_cost, partner_cost) +
                    writer.NetfsWriteDuration(bytes));
  return static_cast<SysResult>(bytes);
}

void TieredStore::PutMeta(const std::string& path, cruz::Bytes bytes) {
  const std::string gen = GenPrefixOf(path);
  index_[path] = ImageMeta{bytes.size(), Crc32(bytes), 0, false};
  if (!gen.empty()) gen_files_[gen].insert(path);
  // Metadata is tiny and must survive any single failure domain: every
  // live node keeps a copy, and the netfs copy lands when it can.
  for (os::Node* n : ring_) {
    if (n->failed()) continue;
    SysResult r = n->disk().WriteFile(path, bytes);
    if (SysErrno(r) == CRUZ_ENOSPC) {
      NotifyNoSpace(n->disk().name(), path);
      if (EvictLocalForSpace(*n, gen)) n->disk().WriteFile(path, bytes);
    }
  }
  SysResult r = netfs_.WriteFile(path, std::move(bytes));
  if (SysOk(r)) {
    index_[path].flushed = true;
  } else {
    if (SysErrno(r) == CRUZ_ENOSPC) NotifyNoSpace("netfs", path);
    ScheduleFlush(path, 0, flush_retry_);
  }
}

SysResult TieredStore::ReadMeta(const std::string& path,
                                cruz::Bytes& out) const {
  SysResult r = netfs_.ReadFile(path, out);
  if (SysOk(r)) return r;
  for (os::Node* n : ring_) {
    if (n->failed()) continue;
    r = n->disk().ReadFile(path, out);
    if (SysOk(r)) return r;
  }
  return SysErr(CRUZ_ENOENT);
}

std::vector<std::string> TieredStore::ListAll(
    const std::string& prefix) const {
  std::set<std::string> paths;
  for (const std::string& p : netfs_.List(prefix)) paths.insert(p);
  const std::string guarded = std::string(kPartnerPrefix) + prefix;
  for (os::Node* n : ring_) {
    if (n->failed()) continue;
    for (const std::string& p : n->disk().List(prefix)) paths.insert(p);
    for (const std::string& p : n->disk().List(guarded)) {
      paths.insert(p.substr(std::string(kPartnerPrefix).size()));
    }
  }
  return std::vector<std::string>(paths.begin(), paths.end());
}

SysResult TieredStore::Resolve(os::Node* reader, const std::string& path,
                               cruz::Bytes& out, ResolveResult* rr,
                               bool trace) {
  ResolveResult scratch;
  ResolveResult& res = rr != nullptr ? *rr : scratch;
  res = ResolveResult{};
  auto meta_it = index_.find(path);
  auto valid = [&](const cruz::Bytes& bytes) {
    if (meta_it == index_.end()) return true;  // no commit-time record
    return bytes.size() == meta_it->second.size &&
           Crc32(bytes) == meta_it->second.crc32;
  };
  std::string chain;
  auto note = [&](const std::string& s) {
    if (!chain.empty()) chain += ",";
    chain += s;
    ++res.fallbacks;
  };
  const std::string guarded = std::string(kPartnerPrefix) + path;
  auto try_store = [&](const os::MemFileStore& store, const std::string& p,
                       const std::string& label) {
    cruz::Bytes bytes;
    if (!SysOk(store.ReadFile(p, bytes))) return false;
    if (!valid(bytes)) {
      note(label + ":crc");
      return false;
    }
    out = std::move(bytes);
    return true;
  };

  bool found = false;
  // Tier 1: the reader's own disk — its copy, or one it guards.
  if (reader != nullptr) {
    if (try_store(reader->disk(), path, "local") ||
        try_store(reader->disk(), guarded, "local")) {
      found = true;
      res.source = Tier::kLocal;
      res.node_index = reader->index();
    } else {
      note("local:miss");
    }
  }
  // Tier 2: any other live node, in ring order (the writer's copy if the
  // pod moved, or the partner-guarded copy if the writer died).
  if (!found) {
    if (reader != nullptr && Unreachable(reader)) {
      note("partner:unreachable");
    } else {
      for (os::Node* n : ring_) {
        if (n == reader || n->failed()) continue;
        if (Unreachable(n)) {
          note("partner(" + n->name() + "):unreachable");
          continue;
        }
        std::string label = "partner(" + n->name() + ")";
        if (try_store(n->disk(), path, label) ||
            try_store(n->disk(), guarded, label)) {
          found = true;
          res.source = Tier::kPartner;
          res.node_index = n->index();
          break;
        }
      }
      if (!found) note("partner:miss");
    }
  }
  // Tier 3: the shared netfs, last resort.
  if (!found) {
    cruz::Bytes bytes;
    SysResult r = netfs_.ReadFile(path, bytes);
    if (SysOk(r) && valid(bytes)) {
      out = std::move(bytes);
      found = true;
      res.source = Tier::kNetfs;
      res.node_index = 0;
    } else if (SysOk(r)) {
      note("netfs:crc");
    } else {
      note(SysErrno(r) == CRUZ_EIO ? "netfs:unavailable" : "netfs:miss");
    }
  }

  if (!found) {
    if (trace) {
      sim_.metrics().counter("ckpt.store.resolve_failures_total").Add(1);
      sim_.tracer().Instant(
          "ckpt", "ckpt.store.resolve_failed",
          obs::TraceAttrs{}.Arg("path", path).Arg("chain", chain));
    }
    return SysErr(CRUZ_ENOENT);
  }

  if (!chain.empty()) chain += ",";
  chain += std::string(TierName(res.source)) + ":ok";
  res.chain = chain;

  // Rebuild-on-restart: repopulate the reader's tier-1 cache so the next
  // restore (and the next flush) is local again.
  if (reader != nullptr && res.source != Tier::kLocal) {
    cruz::Bytes copy = out;
    SysResult w = reader->disk().WriteFile(path, std::move(copy));
    if (SysErrno(w) == CRUZ_ENOSPC) {
      NotifyNoSpace(reader->disk().name(), path);
      if (EvictLocalForSpace(*reader, GenPrefixOf(path))) {
        copy = out;
        w = reader->disk().WriteFile(path, std::move(copy));
      }
    }
    if (SysOk(w)) {
      res.rebuilt_local = true;
      sim_.metrics().counter("ckpt.store.rebuilds_total").Add(1);
      sim_.tracer().Instant("ckpt", "ckpt.store.rebuild",
                            obs::TraceAttrs{}
                                .Arg("path", path)
                                .Arg("node", reader->name())
                                .Arg("from", TierName(res.source)));
    }
  }

  if (trace) {
    sim_.metrics()
        .counter(std::string("ckpt.store.restore_source_") +
                 TierName(res.source))
        .Add(1);
    sim_.tracer().Instant(
        "ckpt", "ckpt.store.resolve",
        obs::TraceAttrs{}
            .Arg("path", path)
            .Arg("source", TierName(res.source))
            .Arg("chain", chain)
            .Arg("fallbacks", static_cast<std::uint64_t>(res.fallbacks)));
  }
  return static_cast<SysResult>(out.size());
}

bool TieredStore::HasAnyReplica(const std::string& path) const {
  const std::string guarded = std::string(kPartnerPrefix) + path;
  for (os::Node* n : ring_) {
    if (n->failed()) continue;
    if (n->disk().Exists(path) || n->disk().Exists(guarded)) return true;
  }
  return netfs_.Exists(path);
}

bool TieredStore::FindAnyCopy(const std::string& path,
                              cruz::Bytes& out) const {
  auto meta_it = index_.find(path);
  const std::string guarded = std::string(kPartnerPrefix) + path;
  for (os::Node* n : ring_) {
    if (n->failed()) continue;
    for (const std::string& p : {path, guarded}) {
      cruz::Bytes bytes;
      if (!SysOk(n->disk().ReadFile(p, bytes))) continue;
      // Never propagate a copy that disagrees with the commit record.
      if (meta_it != index_.end() &&
          (bytes.size() != meta_it->second.size ||
           Crc32(bytes) != meta_it->second.crc32)) {
        continue;
      }
      out = std::move(bytes);
      return true;
    }
  }
  return false;
}

void TieredStore::ScheduleFlush(const std::string& path, std::uint32_t writer,
                                DurationNs after) {
  pending_flush_[path] = FlushState{writer, flush_retry_, 0};
  sim_.Schedule(after, [this, path] { AttemptFlush(path); });
}

void TieredStore::AttemptFlush(const std::string& path) {
  auto it = pending_flush_.find(path);
  if (it == pending_flush_.end()) return;  // cancelled (abort/discard GC)
  ++flush_attempts_total_;
  ++it->second.attempts;

  cruz::Bytes bytes;
  if (!FindAnyCopy(path, bytes)) {
    // Every disk copy is gone (node loss + partner loss before the flush
    // landed). Nothing left to make durable.
    sim_.metrics().counter("ckpt.store.flush_abandoned_total").Add(1);
    sim_.tracer().Instant("ckpt", "ckpt.store.flush_abandoned",
                          obs::TraceAttrs{}.Arg("path", path).Arg(
                              "reason", "no intact source copy"));
    pending_flush_.erase(it);
    return;
  }

  SysResult r = netfs_.WriteFile(path, std::move(bytes));
  if (SysOk(r)) {
    auto meta_it = index_.find(path);
    if (meta_it != index_.end()) meta_it->second.flushed = true;
    sim_.metrics().counter("ckpt.store.flushes_total").Add(1);
    sim_.tracer().Instant(
        "ckpt", "ckpt.store.flush",
        obs::TraceAttrs{}.Arg("path", path).Arg(
            "attempts", static_cast<std::uint64_t>(it->second.attempts)));
    pending_flush_.erase(it);
    EnforceRetention();
    return;
  }

  if (SysErrno(r) == CRUZ_ENOSPC) {
    NotifyNoSpace("netfs", path);
    EvictNetfsForSpace(GenPrefixOf(path));
  }

  if (it->second.attempts >= max_flush_attempts_) {
    sim_.metrics().counter("ckpt.store.flush_abandoned_total").Add(1);
    sim_.tracer().Instant(
        "ckpt", "ckpt.store.flush_abandoned",
        obs::TraceAttrs{}.Arg("path", path).Arg("reason", "max attempts"));
    pending_flush_.erase(it);
    return;
  }

  sim_.metrics().counter("ckpt.store.flush_retries_total").Add(1);
  sim_.tracer().Instant(
      "ckpt", "ckpt.store.flush_retry",
      obs::TraceAttrs{}
          .Arg("path", path)
          .Arg("attempts", static_cast<std::uint64_t>(it->second.attempts))
          .Arg("error", ErrnoName(SysErrno(r))));
  DurationNs backoff = it->second.backoff;
  it->second.backoff = std::min(backoff * 2, flush_retry_max_);
  sim_.Schedule(backoff, [this, path] { AttemptFlush(path); });
}

bool TieredStore::EvictLocalForSpace(os::Node& node,
                                     const std::string& keep_prefix) {
  // Prefer generations that are already durable on the netfs; drop
  // unflushed files only as a last resort.
  for (bool require_flushed : {true, false}) {
    for (const auto& [gen, files] : gen_files_) {
      if (gen == keep_prefix) continue;
      std::size_t removed = 0;
      for (const std::string& f : files) {
        if (IsManifest(f)) continue;
        if (require_flushed) {
          auto m = index_.find(f);
          if (m == index_.end() || !m->second.flushed) continue;
        }
        if (SysOk(node.disk().Remove(f))) ++removed;
        if (SysOk(node.disk().Remove(std::string(kPartnerPrefix) + f))) {
          ++removed;
        }
      }
      if (removed > 0) {
        sim_.metrics().counter("ckpt.store.evictions_total").Add(1);
        sim_.tracer().Instant(
            "ckpt", "ckpt.store.evict",
            obs::TraceAttrs{}
                .Arg("gen", gen)
                .Arg("node", node.name())
                .Arg("files", static_cast<std::uint64_t>(removed))
                .Arg("reason", "enospc"));
        return true;
      }
    }
  }
  return false;
}

bool TieredStore::EvictNetfsForSpace(const std::string& keep_prefix) {
  for (const auto& [gen, files] : gen_files_) {
    if (gen == keep_prefix) continue;
    std::size_t removed = 0;
    for (const std::string& f : files) {
      if (IsManifest(f) || !netfs_.Exists(f)) continue;
      cruz::Bytes copy;
      if (!FindAnyCopy(f, copy)) continue;  // never drop the sole replica
      if (SysOk(netfs_.Remove(f))) {
        ++removed;
        auto m = index_.find(f);
        if (m != index_.end()) m->second.flushed = false;
      }
    }
    if (removed > 0) {
      sim_.metrics().counter("ckpt.store.evictions_total").Add(1);
      sim_.tracer().Instant("ckpt", "ckpt.store.evict",
                            obs::TraceAttrs{}
                                .Arg("gen", gen)
                                .Arg("node", "netfs")
                                .Arg("files",
                                     static_cast<std::uint64_t>(removed))
                                .Arg("reason", "enospc"));
      return true;
    }
  }
  return false;
}

void TieredStore::EnforceRetention() {
  if (keep_local_ == 0 || gen_files_.size() <= keep_local_) return;
  std::size_t evictable = gen_files_.size() - keep_local_;
  for (const auto& [gen, files] : gen_files_) {
    if (evictable == 0) break;
    --evictable;
    bool durable = true;
    for (const std::string& f : files) {
      if (IsManifest(f)) continue;
      auto m = index_.find(f);
      if (m == index_.end() || !m->second.flushed) {
        durable = false;
        break;
      }
    }
    if (!durable) continue;  // keep cache copies until the flush lands
    std::size_t removed = 0;
    for (const std::string& f : files) {
      if (IsManifest(f)) continue;
      for (os::Node* n : ring_) {
        if (SysOk(n->disk().Remove(f))) ++removed;
        if (SysOk(n->disk().Remove(std::string(kPartnerPrefix) + f))) {
          ++removed;
        }
      }
    }
    if (removed > 0) {
      sim_.metrics().counter("ckpt.store.evictions_total").Add(1);
      sim_.tracer().Instant(
          "ckpt", "ckpt.store.evict",
          obs::TraceAttrs{}
              .Arg("gen", gen)
              .Arg("files", static_cast<std::uint64_t>(removed))
              .Arg("reason", "retention"));
    }
  }
}

std::size_t TieredStore::RemoveEverywhere(const std::string& path) {
  std::size_t n = 0;
  const std::string guarded = std::string(kPartnerPrefix) + path;
  for (os::Node* node : ring_) {
    if (SysOk(node->disk().Remove(path))) ++n;
    if (SysOk(node->disk().Remove(guarded))) ++n;
  }
  SysResult r = netfs_.Remove(path);
  if (SysOk(r)) {
    ++n;
  } else if (SysErrno(r) == CRUZ_EIO) {
    auto m = index_.find(path);
    if (m != index_.end() && m->second.flushed) {
      tombstones_.insert(path);
      ScheduleReaper();
    }
  }
  pending_flush_.erase(path);
  index_.erase(path);
  std::string gen = GenPrefixOf(path);
  auto g = gen_files_.find(gen);
  if (g != gen_files_.end()) {
    g->second.erase(path);
    if (g->second.empty()) gen_files_.erase(g);
  }
  return n;
}

std::size_t TieredStore::DiscardPrefix(const std::string& prefix) {
  std::size_t n = 0;
  const std::string guarded = std::string(kPartnerPrefix) + prefix;
  for (os::Node* node : ring_) {
    for (const std::string& p : node->disk().List(prefix)) {
      if (SysOk(node->disk().Remove(p))) ++n;
    }
    for (const std::string& p : node->disk().List(guarded)) {
      if (SysOk(node->disk().Remove(p))) ++n;
    }
  }
  // Netfs copies: whatever is visible now, plus everything the index
  // says was (or may have been) flushed — an outage must not leave
  // half-flushed orphans behind, so unremovable paths are tombstoned.
  std::set<std::string> candidates;
  for (const std::string& p : netfs_.List(prefix)) candidates.insert(p);
  for (auto it = gen_files_.begin(); it != gen_files_.end();) {
    if (!HasPrefix(it->first, prefix)) {
      ++it;
      continue;
    }
    for (const std::string& f : it->second) {
      candidates.insert(f);
      pending_flush_.erase(f);
    }
    it = gen_files_.erase(it);
  }
  for (const std::string& p : candidates) {
    SysResult r = netfs_.Remove(p);
    if (SysOk(r)) {
      ++n;
    } else if (SysErrno(r) == CRUZ_EIO) {
      auto m = index_.find(p);
      if (m == index_.end() || m->second.flushed) {
        tombstones_.insert(p);
        ScheduleReaper();
      }
    }
    index_.erase(p);
  }
  for (auto it = pending_flush_.begin(); it != pending_flush_.end();) {
    if (HasPrefix(it->first, prefix)) {
      it = pending_flush_.erase(it);
    } else {
      ++it;
    }
  }
  if (n > 0) {
    sim_.tracer().Instant(
        "ckpt", "ckpt.store.discard",
        obs::TraceAttrs{}.Arg("prefix", prefix).Arg(
            "files", static_cast<std::uint64_t>(n)));
  }
  return n;
}

void TieredStore::ScheduleReaper() {
  if (reaper_scheduled_) return;
  reaper_scheduled_ = true;
  sim_.Schedule(flush_retry_max_, [this] { ReapTombstones(); });
}

void TieredStore::ReapTombstones() {
  reaper_scheduled_ = false;
  for (auto it = tombstones_.begin(); it != tombstones_.end();) {
    SysResult r = netfs_.Remove(*it);
    if (SysOk(r) || SysErrno(r) == CRUZ_ENOENT) {
      sim_.tracer().Instant("ckpt", "ckpt.store.reap",
                            obs::TraceAttrs{}.Arg("path", *it));
      it = tombstones_.erase(it);
    } else {
      ++it;
    }
  }
  if (!tombstones_.empty()) ScheduleReaper();
}

bool TieredStore::FlushedToNetfs(const std::string& path) const {
  auto it = index_.find(path);
  return it != index_.end() && it->second.flushed;
}

std::uint64_t TieredStore::BytesUnderPrefix(const std::string& prefix) const {
  std::uint64_t total = 0;
  const std::string guarded = std::string(kPartnerPrefix) + prefix;
  for (os::Node* n : ring_) {
    for (const std::string& p : n->disk().List(prefix)) {
      SysResult s = n->disk().FileSize(p);
      if (SysOk(s)) total += static_cast<std::uint64_t>(s);
    }
    for (const std::string& p : n->disk().List(guarded)) {
      SysResult s = n->disk().FileSize(p);
      if (SysOk(s)) total += static_cast<std::uint64_t>(s);
    }
  }
  for (const std::string& p : netfs_.List(prefix)) {
    SysResult s = netfs_.FileSize(p);
    if (SysOk(s)) total += static_cast<std::uint64_t>(s);
  }
  return total;
}

SysResult TieredReadView::ReadFile(const std::string& path,
                                   cruz::Bytes& out) const {
  auto it = cache_.find(path);
  if (it != cache_.end()) {
    out = it->second;
    return static_cast<SysResult>(out.size());
  }
  TieredStore::ResolveResult rr;
  SysResult r = store_.Resolve(reader_, path, out, &rr, trace_);
  if (!SysOk(r)) return r;
  if (!have_head_) {
    have_head_ = true;
    head_result_ = rr;
  }
  cache_[path] = out;
  return r;
}

SysResult TieredReadView::FileSize(const std::string& path) const {
  cruz::Bytes bytes;
  SysResult r = ReadFile(path, bytes);
  return SysOk(r) ? static_cast<SysResult>(bytes.size()) : r;
}

}  // namespace cruz::ckpt
