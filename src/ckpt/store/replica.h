// Replica schema for tiered checkpoint storage.
//
// Every committed image has a set of replicas spread across the storage
// hierarchy: the writer's local disk (tier 1), its ring partner's disk
// (tier 2), and — once the background flush lands — the shared netfs
// (tier 3). The generation manifest records the replica set captured at
// commit time (local + partner, with per-tier CRCs); the netfs replica
// is implicit and always consulted as the last resort.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cruz::ckpt {

enum class Tier : std::uint8_t {
  kLocal = 0,    // the reader/writer node's own disk
  kPartner = 1,  // another node's disk (own copy or partner copy)
  kNetfs = 2,    // the shared network filesystem
  kNone = 255,   // not resolved / not applicable
};

inline const char* TierName(Tier t) {
  switch (t) {
    case Tier::kLocal:
      return "local";
    case Tier::kPartner:
      return "partner";
    case Tier::kNetfs:
      return "netfs";
    case Tier::kNone:
      return "none";
  }
  return "?";
}

// One physical copy of one image.
struct Replica {
  Tier tier = Tier::kNone;
  std::uint32_t node_index = 0;  // holder (0 for the netfs tier)
  std::uint64_t size = 0;
  std::uint32_t crc32 = 0;
};

}  // namespace cruz::ckpt
