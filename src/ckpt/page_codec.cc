#include "ckpt/page_codec.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/crc32.h"
#include "common/error.h"
#include "os/memory.h"

namespace cruz::ckpt {

namespace {

// Length of the run of `value` starting at `start`, capped at 0xFFFF to
// fit the token's u16. Scans eight bytes per step: XOR against a
// splatted word leaves the first mismatching byte nonzero, and the
// endian-appropriate zero count locates it in memory order.
std::size_t RunLength(cruz::ByteSpan page, std::size_t start,
                      std::uint8_t value) {
  const std::uint64_t splat = 0x0101010101010101ull * value;
  std::size_t i = start;
  const std::size_t limit =
      std::min(page.size(), start + static_cast<std::size_t>(0xFFFF));
  while (i + 8 <= limit) {
    std::uint64_t word;
    std::memcpy(&word, page.data() + i, 8);
    std::uint64_t diff = word ^ splat;
    if (diff != 0) {
      int first = std::endian::native == std::endian::little
                      ? std::countr_zero(diff) / 8
                      : std::countl_zero(diff) / 8;
      return i + static_cast<std::size_t>(first) - start;
    }
    i += 8;
  }
  while (i < limit && page[i] == value) ++i;
  return i - start;
}

// RLE payload: (u16 run length, u8 value) tokens summing to kPageSize.
cruz::Bytes RleBody(cruz::ByteSpan page) {
  cruz::ByteWriter w;
  std::size_t i = 0;
  while (i < page.size()) {
    std::uint8_t value = page[i];
    std::size_t run = RunLength(page, i, value);
    w.PutU16(static_cast<std::uint16_t>(run));
    w.PutU8(value);
    i += run;
  }
  return w.Take();
}

}  // namespace

cruz::Bytes EncodePage(cruz::ByteSpan page, PageCodec preferred) {
  CRUZ_CHECK(page.size() == os::kPageSize, "EncodePage: wrong page size");
  std::uint32_t crc = cruz::Crc32(page);
  cruz::ByteWriter out;
  if (preferred == PageCodec::kRle) {
    cruz::Bytes body = RleBody(page);
    if (body.size() < page.size()) {
      out.PutU8(static_cast<std::uint8_t>(PageCodec::kRle));
      out.PutU32(crc);
      out.PutBytes(body);
      return out.Take();
    }
    // RLE would expand this page; store it raw instead.
  }
  out.PutU8(static_cast<std::uint8_t>(PageCodec::kRaw));
  out.PutU32(crc);
  out.PutBytes(page);
  return out.Take();
}

cruz::Bytes DecodePage(cruz::ByteSpan encoded) {
  cruz::ByteReader r(encoded);
  std::uint8_t codec = r.GetU8();
  std::uint32_t crc = r.GetU32();
  cruz::Bytes page;
  switch (static_cast<PageCodec>(codec)) {
    case PageCodec::kRaw:
      page = r.GetBytes(os::kPageSize);
      break;
    case PageCodec::kRle: {
      page.reserve(os::kPageSize);
      while (page.size() < os::kPageSize) {
        std::uint16_t run = r.GetU16();
        std::uint8_t value = r.GetU8();
        if (run == 0 || page.size() + run > os::kPageSize) {
          throw cruz::CodecError("compressed page: malformed run length");
        }
        page.insert(page.end(), run, value);
      }
      break;
    }
    default:
      throw cruz::CodecError("compressed page: unknown codec id " +
                             std::to_string(codec));
  }
  if (!r.AtEnd()) {
    throw cruz::CodecError("compressed page: trailing bytes");
  }
  if (cruz::Crc32(page) != crc) {
    throw cruz::CodecError("compressed page: CRC mismatch");
  }
  return page;
}

}  // namespace cruz::ckpt
