// Single-node checkpoint-restart engine (paper §3-§4).
//
// Capture: SIGSTOPs all processes in the pod, then extracts their state —
// including live socket state under the (simulated) network-stack lock —
// into a PodCheckpoint. Capture is non-destructive: the pod can be
// resumed afterwards (checkpoint-and-continue) or destroyed (migration).
//
// Restore: rebuilds the pod on any node — the VIF with the same IP and
// MAC identity, SysV objects, pipes, sockets (listeners, accept queues,
// connections with the §4.1 send-buffer replay and alternate receive
// buffers), and finally the processes with their memory images and
// register files, mapped to fresh real pids behind the pod's stable
// virtual pids. Restored processes are left SIGSTOPped so a coordinator
// can resume all pods only after every node has finished restoring.
#pragma once

#include <cstdint>

#include "ckpt/image.h"
#include "pod/pod.h"

namespace cruz::ckpt {

struct CaptureStats {
  std::uint32_t processes = 0;
  std::uint32_t threads = 0;
  std::uint32_t tcp_connections = 0;
  std::uint32_t listeners = 0;
  std::uint32_t pipes = 0;
  std::uint64_t state_bytes = 0;
  // Time the network stack's locks were held while the socket state was
  // extracted (the paper holds them "only for the duration needed to save
  // the socket states").
  DurationNs network_lock_hold = 0;
};

struct CaptureOptions {
  // Incremental checkpointing (paper §5.2): capture only memory pages
  // dirtied since the previous capture. The produced image records its
  // parent so restore can resolve the chain.
  bool incremental = false;
  std::string parent_image;
  std::uint32_t generation = 0;
};

class CheckpointEngine {
 public:
  // Stops the pod's processes and captures a checkpoint. The pod is left
  // stopped; call ResumePod (checkpoint-and-continue) or DestroyPod
  // (migration) afterwards. Every capture (full or incremental) resets
  // the dirty-page baseline for the next incremental capture.
  static PodCheckpoint CapturePod(pod::PodManager& pods, os::PodId id,
                                  CaptureStats* stats = nullptr);
  static PodCheckpoint CapturePod(pod::PodManager& pods, os::PodId id,
                                  const CaptureOptions& options,
                                  CaptureStats* stats = nullptr);

  // Loads a checkpoint image from the shared filesystem, resolving the
  // incremental parent chain (oldest-to-newest page overlay). Throws
  // CodecError on corruption, UsageError on a missing link.
  static PodCheckpoint LoadImageChain(os::NetworkFileSystem& fs,
                                      const std::string& path);

  // Rebuilds a pod from a checkpoint. Processes are installed SIGSTOPped;
  // call ResumePod to let them run.
  static os::PodId RestorePod(pod::PodManager& pods,
                              const PodCheckpoint& ck);

  static void StopPod(pod::PodManager& pods, os::PodId id);
  static void ResumePod(pod::PodManager& pods, os::PodId id);
};

}  // namespace cruz::ckpt
