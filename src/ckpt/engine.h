// Single-node checkpoint-restart engine (paper §3-§4).
//
// Capture: SIGSTOPs all processes in the pod, then extracts their state —
// including live socket state under the (simulated) network-stack lock —
// into a PodCheckpoint. Capture is non-destructive: the pod can be
// resumed afterwards (checkpoint-and-continue) or destroyed (migration).
//
// Restore: rebuilds the pod on any node — the VIF with the same IP and
// MAC identity, SysV objects, pipes, sockets (listeners, accept queues,
// connections with the §4.1 send-buffer replay and alternate receive
// buffers), and finally the processes with their memory images and
// register files, mapped to fresh real pids behind the pod's stable
// virtual pids. Restored processes are left SIGSTOPped so a coordinator
// can resume all pods only after every node has finished restoring.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "ckpt/image.h"
#include "os/file_store.h"
#include "pod/pod.h"

namespace cruz::ckpt {

struct CaptureStats {
  std::uint32_t processes = 0;
  std::uint32_t threads = 0;
  std::uint32_t tcp_connections = 0;
  std::uint32_t listeners = 0;
  std::uint32_t pipes = 0;
  std::uint64_t state_bytes = 0;
  // Memory pages referenced by the capture (after incremental filtering).
  std::uint64_t snapshot_pages = 0;
  // Time the network stack's locks were held while the socket state was
  // extracted (the paper holds them "only for the duration needed to save
  // the socket states").
  DurationNs network_lock_hold = 0;
  // Downtime/total split, filled by the agent's cost model: how long the
  // pod was actually stopped (with copy-on-write this covers only the
  // in-memory snapshot; stop-the-world covers the whole save) and the
  // full capture time including the background serialize + disk write.
  DurationNs downtime = 0;
  DurationNs total = 0;
};

struct CaptureOptions {
  // Incremental checkpointing (paper §5.2): capture only memory pages
  // dirtied since the previous capture. The produced image records its
  // parent so restore can resolve the chain.
  bool incremental = false;
  std::string parent_image;
  std::uint32_t generation = 0;
};

// Result of the stop-the-world phase of a forked (copy-on-write) capture
// (paper §5.2). Kernel state — sockets, pipes, IPC, fds, registers — is
// small and captured eagerly into `meta`; process memory is held as
// shared-page snapshot handles, so taking a PodSnapshot costs O(page
// table), not O(image). The pod can resume immediately afterwards: its
// writes copy pages lazily (os::Memory COW faults) and never perturb the
// snapshot. Materialize() — typically called later, from the background
// write-out — assembles the final PodCheckpoint, byte-identical to a
// stop-the-world capture taken at the snapshot point.
class PodSnapshot {
 public:
  const PodCheckpoint& meta() const { return meta_; }
  os::PodId pod_id() const { return meta_.pod_id; }

  // Pages this snapshot will serialize (after incremental filtering).
  std::uint64_t SnapshotPages() const;
  // Estimate of the eventual image's dominant bytes (pages + buffers),
  // used by the agent's cost model before the image exists.
  std::uint64_t EstimatedStateBytes() const;

  // Assembles the full checkpoint from the frozen page handles. Pure:
  // may be called any number of times, at any (simulated) time after the
  // snapshot, with identical results.
  PodCheckpoint Materialize() const;

 private:
  friend class CheckpointEngine;

  struct ProcessMemory {
    os::Pid vpid = 0;
    os::MemorySnapshot memory;
    // Set for incremental captures: only these pages are serialized
    // (dirty at snapshot time). Unset = all snapshot pages.
    std::optional<std::set<std::uint64_t>> include;
  };

  PodCheckpoint meta_;  // all kernel state; process page lists left empty
  std::vector<ProcessMemory> memory_;
};

class CheckpointEngine {
 public:
  // Stops the pod's processes and captures a checkpoint. The pod is left
  // stopped; call ResumePod (checkpoint-and-continue) or DestroyPod
  // (migration) afterwards. Every capture (full or incremental) resets
  // the dirty-page baseline for the next incremental capture.
  static PodCheckpoint CapturePod(pod::PodManager& pods, os::PodId id,
                                  CaptureStats* stats = nullptr);
  static PodCheckpoint CapturePod(pod::PodManager& pods, os::PodId id,
                                  const CaptureOptions& options,
                                  CaptureStats* stats = nullptr);

  // Stop-the-world phase only: stops the pod and captures kernel state
  // eagerly but memory as shared-page COW handles. The pod may be
  // resumed right after this returns, while the image is materialized
  // and written out in the background. The dirty-page baseline resets
  // HERE (snapshot time), not at image-commit time, so an incremental
  // capture taken after a COW capture carries exactly the pages written
  // post-snapshot.
  static PodSnapshot SnapshotPod(pod::PodManager& pods, os::PodId id,
                                 const CaptureOptions& options,
                                 CaptureStats* stats = nullptr);

  // Loads a checkpoint image from a file store — the shared netfs, or a
  // tier-resolving view over the local/partner/netfs hierarchy —
  // resolving the incremental parent chain (oldest-to-newest page
  // overlay). Throws CodecError on corruption, UsageError on a missing
  // link.
  static PodCheckpoint LoadImageChain(os::FileStore& fs,
                                      const std::string& path);

  // Rebuilds a pod from a checkpoint. Processes are installed SIGSTOPped;
  // call ResumePod to let them run.
  static os::PodId RestorePod(pod::PodManager& pods,
                              const PodCheckpoint& ck);

  static void StopPod(pod::PodManager& pods, os::PodId id);
  static void ResumePod(pod::PodManager& pods, os::PodId id);
};

}  // namespace cruz::ckpt
