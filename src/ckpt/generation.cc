#include "ckpt/generation.h"

#include <algorithm>

#include "ckpt/engine.h"
#include "common/bytes.h"
#include "common/crc32.h"
#include "common/error.h"
#include "common/log.h"

namespace cruz::ckpt {

std::uint64_t GenerationStore::Allocate() {
  std::uint64_t next = 1;
  cruz::Bytes raw;
  if (SysOk(fs_.ReadFile(SeqPath(), raw)) && raw.size() == 8) {
    cruz::ByteReader r(raw);
    next = r.GetU64() + 1;
  }
  cruz::ByteWriter w;
  w.PutU64(next);
  fs_.WriteFile(SeqPath(), w.Take());
  return next;
}

std::string GenerationStore::Prefix(std::uint64_t gen) const {
  std::string num = std::to_string(gen);
  if (num.size() < 6) num.insert(0, 6 - num.size(), '0');
  return root_ + "/gen_" + num;
}

void GenerationStore::Commit(std::uint64_t gen,
                             const std::vector<ManifestEntry>& entries) {
  cruz::ByteWriter payload;
  payload.PutU64(gen);
  payload.PutU32(static_cast<std::uint32_t>(entries.size()));
  for (const ManifestEntry& e : entries) {
    payload.PutU32(e.pod);
    payload.PutString(e.image_path);
    payload.PutU64(e.size);
    payload.PutU32(e.crc32);
  }
  cruz::Bytes body = payload.Take();
  cruz::ByteWriter framed;
  framed.PutU32(static_cast<std::uint32_t>(body.size()));
  framed.PutU32(cruz::Crc32(body));
  framed.PutBytes(body);
  // WriteFile is create-or-truncate in one step: the manifest appears
  // whole or not at all, making it the commit point.
  fs_.WriteFile(ManifestPath(gen), framed.Take());
  if (tracer_ != nullptr) {
    tracer_->Instant("ckpt", "ckpt.generation.commit",
                     obs::TraceAttrs{}.Arg("gen", gen));
  }
}

std::size_t GenerationStore::Discard(std::uint64_t gen) {
  std::size_t removed = 0;
  for (const std::string& path : fs_.List(Prefix(gen) + "/")) {
    if (SysOk(fs_.Remove(path))) ++removed;
  }
  if (removed > 0) {
    CRUZ_INFO("ckpt") << "generation " << gen << ": discarded " << removed
                      << " file(s)";
  }
  if (tracer_ != nullptr) {
    tracer_->Instant("ckpt", "ckpt.generation.discard",
                     obs::TraceAttrs{}.Arg("gen", gen));
  }
  return removed;
}

std::vector<std::uint64_t> GenerationStore::Committed() const {
  std::vector<std::uint64_t> gens;
  const std::string prefix = root_ + "/gen_";
  for (const std::string& path : fs_.List(prefix)) {
    if (path.size() <= prefix.size()) continue;
    std::size_t slash = path.find('/', prefix.size());
    if (slash == std::string::npos ||
        path.compare(slash, std::string::npos, "/MANIFEST") != 0) {
      continue;
    }
    std::uint64_t gen = 0;
    for (std::size_t i = prefix.size(); i < slash; ++i) {
      char c = path[i];
      if (c < '0' || c > '9') {
        gen = 0;
        break;
      }
      gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (gen != 0 && ReadManifest(gen).has_value()) gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

std::optional<std::uint64_t> GenerationStore::LatestCommitted() const {
  std::vector<std::uint64_t> gens = Committed();
  if (gens.empty()) return std::nullopt;
  return gens.back();
}

std::optional<std::vector<ManifestEntry>> GenerationStore::ReadManifest(
    std::uint64_t gen) const {
  cruz::Bytes raw;
  if (!SysOk(fs_.ReadFile(ManifestPath(gen), raw))) return std::nullopt;
  try {
    cruz::ByteReader r(raw);
    std::uint32_t len = r.GetU32();
    std::uint32_t crc = r.GetU32();
    cruz::Bytes body = r.GetBytes(len);
    if (cruz::Crc32(body) != crc) return std::nullopt;
    cruz::ByteReader br(body);
    if (br.GetU64() != gen) return std::nullopt;
    std::uint32_t n = br.GetU32();
    std::vector<ManifestEntry> entries;
    for (std::uint32_t i = 0; i < n; ++i) {
      ManifestEntry e;
      e.pod = br.GetU32();
      e.image_path = br.GetString();
      e.size = br.GetU64();
      e.crc32 = br.GetU32();
      entries.push_back(std::move(e));
    }
    return entries;
  } catch (const cruz::CodecError&) {
    return std::nullopt;
  }
}

bool GenerationStore::Verify(std::uint64_t gen) const {
  std::optional<std::vector<ManifestEntry>> manifest = ReadManifest(gen);
  if (!manifest.has_value()) return false;
  for (const ManifestEntry& e : *manifest) {
    cruz::Bytes image;
    if (!SysOk(fs_.ReadFile(e.image_path, image))) return false;
    if (image.size() != e.size || cruz::Crc32(image) != e.crc32) {
      CRUZ_WARN("ckpt") << "generation " << gen << ": " << e.image_path
                        << " fails the manifest size/CRC check";
      return false;
    }
    try {
      CheckpointEngine::LoadImageChain(fs_, e.image_path);
    } catch (const cruz::CruzError&) {
      CRUZ_WARN("ckpt") << "generation " << gen << ": " << e.image_path
                        << " does not deserialize";
      return false;
    }
  }
  return true;
}

std::optional<std::uint64_t> GenerationStore::NewestIntact() const {
  std::vector<std::uint64_t> gens = Committed();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    if (Verify(*it)) return *it;
  }
  return std::nullopt;
}

}  // namespace cruz::ckpt
