#include "ckpt/generation.h"

#include <algorithm>

#include "ckpt/engine.h"
#include "ckpt/store/tiered_store.h"
#include "common/bytes.h"
#include "common/crc32.h"
#include "common/error.h"
#include "common/log.h"

namespace cruz::ckpt {

std::uint64_t GenerationStore::Allocate() {
  std::uint64_t next = 1;
  cruz::Bytes raw;
  SysResult r = tiered_ != nullptr ? tiered_->ReadMeta(SeqPath(), raw)
                                   : fs_.ReadFile(SeqPath(), raw);
  if (SysOk(r) && raw.size() == 8) {
    cruz::ByteReader reader(raw);
    next = reader.GetU64() + 1;
  }
  cruz::ByteWriter w;
  w.PutU64(next);
  if (tiered_ != nullptr) {
    tiered_->PutMeta(SeqPath(), w.Take());
  } else {
    fs_.WriteFile(SeqPath(), w.Take());
  }
  return next;
}

std::string GenerationStore::Prefix(std::uint64_t gen) const {
  std::string num = std::to_string(gen);
  if (num.size() < 6) num.insert(0, 6 - num.size(), '0');
  return root_ + "/gen_" + num;
}

void GenerationStore::Commit(std::uint64_t gen,
                             const std::vector<ManifestEntry>& entries) {
  cruz::ByteWriter payload;
  payload.PutU64(gen);
  payload.PutU32(static_cast<std::uint32_t>(entries.size()));
  for (const ManifestEntry& e : entries) {
    payload.PutU32(e.pod);
    payload.PutString(e.image_path);
    payload.PutU64(e.size);
    payload.PutU32(e.crc32);
    payload.PutU32(static_cast<std::uint32_t>(e.replicas.size()));
    for (const Replica& rep : e.replicas) {
      payload.PutU8(static_cast<std::uint8_t>(rep.tier));
      payload.PutU32(rep.node_index);
      payload.PutU64(rep.size);
      payload.PutU32(rep.crc32);
    }
  }
  cruz::Bytes body = payload.Take();
  cruz::ByteWriter framed;
  framed.PutU32(static_cast<std::uint32_t>(body.size()));
  framed.PutU32(cruz::Crc32(body));
  framed.PutBytes(body);
  // WriteFile is create-or-truncate in one step: the manifest appears
  // whole or not at all, making it the commit point. In tiered mode the
  // manifest replicates to every node disk immediately and reaches the
  // netfs via the background flush, so the commit survives an outage.
  if (tiered_ != nullptr) {
    tiered_->PutMeta(ManifestPath(gen), framed.Take());
  } else {
    cruz::Bytes manifest = framed.Take();
    SysResult w = fs_.WriteFile(ManifestPath(gen), manifest);
    while (SysErrno(w) == CRUZ_ENOSPC && EvictOldestCommitted(gen) > 0) {
      w = fs_.WriteFile(ManifestPath(gen), manifest);
    }
    if (!SysOk(w)) {
      CRUZ_WARN("ckpt") << "generation " << gen
                        << ": manifest write failed ("
                        << ErrnoName(SysErrno(w))
                        << "); generation stays uncommitted";
      return;
    }
  }
  if (tracer_ != nullptr) {
    tracer_->Instant("ckpt", "ckpt.generation.commit",
                     obs::TraceAttrs{}.Arg("gen", gen));
  }
}

std::size_t GenerationStore::Discard(std::uint64_t gen) {
  std::size_t removed = 0;
  for (const std::string& path : fs_.List(Prefix(gen) + "/")) {
    if (SysOk(fs_.Remove(path))) ++removed;
  }
  // Tiered mode: also reap local and partner replicas and cancel any
  // in-flight netfs flush, so an aborted generation leaves zero orphan
  // bytes on any tier.
  if (tiered_ != nullptr) removed += tiered_->DiscardPrefix(Prefix(gen));
  if (removed > 0) {
    CRUZ_INFO("ckpt") << "generation " << gen << ": discarded " << removed
                      << " file(s)";
  }
  if (tracer_ != nullptr) {
    tracer_->Instant("ckpt", "ckpt.generation.discard",
                     obs::TraceAttrs{}.Arg("gen", gen));
  }
  return removed;
}

std::vector<std::uint64_t> GenerationStore::Committed() const {
  std::vector<std::uint64_t> gens;
  const std::string prefix = root_ + "/gen_";
  std::vector<std::string> paths = tiered_ != nullptr
                                       ? tiered_->ListAll(prefix)
                                       : fs_.List(prefix);
  for (const std::string& path : paths) {
    if (path.size() <= prefix.size()) continue;
    std::size_t slash = path.find('/', prefix.size());
    if (slash == std::string::npos ||
        path.compare(slash, std::string::npos, "/MANIFEST") != 0) {
      continue;
    }
    std::uint64_t gen = 0;
    for (std::size_t i = prefix.size(); i < slash; ++i) {
      char c = path[i];
      if (c < '0' || c > '9') {
        gen = 0;
        break;
      }
      gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (gen != 0 && ReadManifest(gen).has_value()) gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

std::optional<std::uint64_t> GenerationStore::LatestCommitted() const {
  std::vector<std::uint64_t> gens = Committed();
  if (gens.empty()) return std::nullopt;
  return gens.back();
}

std::optional<std::vector<ManifestEntry>> GenerationStore::ReadManifest(
    std::uint64_t gen) const {
  cruz::Bytes raw;
  SysResult read = tiered_ != nullptr
                       ? tiered_->ReadMeta(ManifestPath(gen), raw)
                       : fs_.ReadFile(ManifestPath(gen), raw);
  if (!SysOk(read)) return std::nullopt;
  try {
    cruz::ByteReader r(raw);
    std::uint32_t len = r.GetU32();
    std::uint32_t crc = r.GetU32();
    cruz::Bytes body = r.GetBytes(len);
    if (cruz::Crc32(body) != crc) return std::nullopt;
    cruz::ByteReader br(body);
    if (br.GetU64() != gen) return std::nullopt;
    std::uint32_t n = br.GetU32();
    std::vector<ManifestEntry> entries;
    for (std::uint32_t i = 0; i < n; ++i) {
      ManifestEntry e;
      e.pod = br.GetU32();
      e.image_path = br.GetString();
      e.size = br.GetU64();
      e.crc32 = br.GetU32();
      std::uint32_t replicas = br.GetU32();
      for (std::uint32_t j = 0; j < replicas; ++j) {
        Replica rep;
        rep.tier = static_cast<Tier>(br.GetU8());
        rep.node_index = br.GetU32();
        rep.size = br.GetU64();
        rep.crc32 = br.GetU32();
        e.replicas.push_back(rep);
      }
      entries.push_back(std::move(e));
    }
    return entries;
  } catch (const cruz::CodecError&) {
    return std::nullopt;
  }
}

bool GenerationStore::Verify(std::uint64_t gen) const {
  std::optional<std::vector<ManifestEntry>> manifest = ReadManifest(gen);
  if (!manifest.has_value()) return false;
  // Tiered mode: the generation is restartable iff every image has at
  // least one intact replica on some tier; the verification probe reads
  // through the tier-resolving view (untraced — it is not a restore).
  std::optional<TieredReadView> view;
  if (tiered_ != nullptr) {
    view.emplace(*tiered_, /*reader=*/nullptr, /*trace=*/false);
  }
  os::FileStore& fs =
      view.has_value() ? static_cast<os::FileStore&>(*view) : fs_;
  for (const ManifestEntry& e : *manifest) {
    cruz::Bytes image;
    if (!SysOk(fs.ReadFile(e.image_path, image))) return false;
    if (image.size() != e.size || cruz::Crc32(image) != e.crc32) {
      CRUZ_WARN("ckpt") << "generation " << gen << ": " << e.image_path
                        << " fails the manifest size/CRC check";
      return false;
    }
    try {
      CheckpointEngine::LoadImageChain(fs, e.image_path);
    } catch (const cruz::CruzError&) {
      CRUZ_WARN("ckpt") << "generation " << gen << ": " << e.image_path
                        << " does not deserialize";
      return false;
    }
  }
  return true;
}

std::optional<std::uint64_t> GenerationStore::NewestIntact() const {
  std::vector<std::uint64_t> gens = Committed();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    if (Verify(*it)) return *it;
  }
  return std::nullopt;
}

std::size_t GenerationStore::EvictOldestCommitted(std::uint64_t keep_gen) {
  std::vector<std::uint64_t> gens = Committed();
  if (gens.size() < 2) return 0;  // never evict the only restorable gen
  for (std::uint64_t gen : gens) {
    if (gen == keep_gen || gen == gens.back()) continue;
    std::size_t removed = Discard(gen);
    if (removed > 0) {
      CRUZ_WARN("ckpt") << "generation " << gen
                        << ": evicted to reclaim space";
      if (tracer_ != nullptr) {
        tracer_->Instant("ckpt", "ckpt.generation.evict",
                         obs::TraceAttrs{}.Arg("gen", gen).Arg(
                             "reason", "enospc"));
      }
      return removed;
    }
  }
  return 0;
}

bool GenerationStore::EvictForSpace(os::NetworkFileSystem& fs,
                                    const std::string& image_path) {
  std::size_t at = image_path.find("/gen_");
  if (at == std::string::npos) return false;
  std::uint64_t current = 0;
  for (std::size_t i = at + 5; i < image_path.size(); ++i) {
    char c = image_path[i];
    if (c == '/') break;
    if (c < '0' || c > '9') return false;
    current = current * 10 + static_cast<std::uint64_t>(c - '0');
  }
  GenerationStore store(fs, image_path.substr(0, at));
  return store.EvictOldestCommitted(current) > 0;
}

}  // namespace cruz::ckpt
