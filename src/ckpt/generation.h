// Checkpoint generations on the shared filesystem.
//
// Each coordinated checkpoint writes its images under a fresh
// per-generation directory and the generation becomes visible only when a
// manifest is committed after every agent reported <done> — so the shared
// FS never exposes a half-written checkpoint as restorable. The manifest
// records, per member pod, the image path plus its size and CRC-32, which
// lets restart verify every image *before* touching any pod and fall back
// to the newest older generation that is still fully intact (e.g. after
// silent media corruption of the latest images). Aborted generations are
// discarded wholesale by deleting everything under their directory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "os/netfs.h"
#include "os/types.h"

namespace cruz::ckpt {

struct ManifestEntry {
  os::PodId pod = os::kNoPod;
  std::string image_path;
  std::uint64_t size = 0;     // image bytes at commit time
  std::uint32_t crc32 = 0;    // CRC-32 of the whole image file
};

class GenerationStore {
 public:
  static constexpr const char* kDefaultRoot = "/ckpt/gens";

  explicit GenerationStore(os::NetworkFileSystem& fs,
                           std::string root = kDefaultRoot)
      : fs_(fs), root_(std::move(root)) {}

  // Allocates the next generation number. Monotonic across coordinator
  // incarnations: the counter is persisted in a SEQ file on the shared FS.
  std::uint64_t Allocate();

  // Directory prefix for a generation's images, e.g. "/ckpt/gens/gen_000007".
  std::string Prefix(std::uint64_t gen) const;

  // Atomically publishes the generation: the manifest write is the commit
  // point (a generation without a manifest does not exist for restart).
  void Commit(std::uint64_t gen, const std::vector<ManifestEntry>& entries);

  // Abort path: deletes every file under the generation's directory
  // (partial images, manifest if any). Returns the number removed.
  std::size_t Discard(std::uint64_t gen);

  // Committed generations (those with a readable, CRC-intact manifest),
  // ascending.
  std::vector<std::uint64_t> Committed() const;
  std::optional<std::uint64_t> LatestCommitted() const;

  std::optional<std::vector<ManifestEntry>> ReadManifest(
      std::uint64_t gen) const;

  // Deep verification: manifest intact and every member image present
  // with the recorded size and CRC-32, and deserializable (including its
  // incremental parent chain). This is what restart runs before choosing
  // a generation.
  bool Verify(std::uint64_t gen) const;

  // Newest committed generation that passes Verify, scanning backwards.
  std::optional<std::uint64_t> NewestIntact() const;

  // Mirror commit/discard decisions onto a tracer timeline (nullptr
  // disables), so invariant checks can pin the commit point against the
  // protocol spans around it.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  std::string SeqPath() const { return root_ + "/SEQ"; }
  std::string ManifestPath(std::uint64_t gen) const {
    return Prefix(gen) + "/MANIFEST";
  }

  os::NetworkFileSystem& fs_;
  std::string root_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace cruz::ckpt
