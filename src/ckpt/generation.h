// Checkpoint generations on the shared filesystem.
//
// Each coordinated checkpoint writes its images under a fresh
// per-generation directory and the generation becomes visible only when a
// manifest is committed after every agent reported <done> — so the shared
// FS never exposes a half-written checkpoint as restorable. The manifest
// records, per member pod, the image path plus its size and CRC-32, which
// lets restart verify every image *before* touching any pod and fall back
// to the newest older generation that is still fully intact (e.g. after
// silent media corruption of the latest images). Aborted generations are
// discarded wholesale by deleting everything under their directory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/store/replica.h"
#include "obs/trace.h"
#include "os/netfs.h"
#include "os/types.h"

namespace cruz::ckpt {

class TieredStore;

struct ManifestEntry {
  os::PodId pod = os::kNoPod;
  std::string image_path;
  std::uint64_t size = 0;     // image bytes at commit time
  std::uint32_t crc32 = 0;    // CRC-32 of the whole image file
  // Where the image lived at commit time (tiered mode: local + partner;
  // the netfs replica appears later via the background flush and is
  // always consulted as the last resort). Empty for legacy netfs-only
  // generations.
  std::vector<Replica> replicas;
};

class GenerationStore {
 public:
  static constexpr const char* kDefaultRoot = "/ckpt/gens";

  explicit GenerationStore(os::NetworkFileSystem& fs,
                           std::string root = kDefaultRoot)
      : fs_(fs), root_(std::move(root)) {}

  // Allocates the next generation number. Monotonic across coordinator
  // incarnations: the counter is persisted in a SEQ file on the shared FS.
  std::uint64_t Allocate();

  // Directory prefix for a generation's images, e.g. "/ckpt/gens/gen_000007".
  std::string Prefix(std::uint64_t gen) const;

  // Atomically publishes the generation: the manifest write is the commit
  // point (a generation without a manifest does not exist for restart).
  void Commit(std::uint64_t gen, const std::vector<ManifestEntry>& entries);

  // Abort path: deletes every file under the generation's directory
  // (partial images, manifest if any). Returns the number removed.
  std::size_t Discard(std::uint64_t gen);

  // Committed generations (those with a readable, CRC-intact manifest),
  // ascending.
  std::vector<std::uint64_t> Committed() const;
  std::optional<std::uint64_t> LatestCommitted() const;

  std::optional<std::vector<ManifestEntry>> ReadManifest(
      std::uint64_t gen) const;

  // Deep verification: manifest intact and every member image present
  // with the recorded size and CRC-32, and deserializable (including its
  // incremental parent chain). This is what restart runs before choosing
  // a generation.
  bool Verify(std::uint64_t gen) const;

  // Newest committed generation that passes Verify, scanning backwards.
  std::optional<std::uint64_t> NewestIntact() const;

  // Mirror commit/discard decisions onto a tracer timeline (nullptr
  // disables), so invariant checks can pin the commit point against the
  // protocol spans around it.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Tiered mode: manifests and the SEQ counter replicate across the node
  // disks (surviving a netfs outage), Verify accepts any intact replica
  // of each image, and Discard reaps every tier. nullptr = legacy
  // netfs-only behavior.
  void set_tiered(TieredStore* tiered) { tiered_ = tiered; }
  TieredStore* tiered() const { return tiered_; }

  // -ENOSPC handling: discards the oldest committed generation other
  // than `keep_gen` and the latest one, freeing space for the checkpoint
  // in progress instead of aborting it. Returns the number of files
  // removed (0 = nothing evictable).
  std::size_t EvictOldestCommitted(std::uint64_t keep_gen);

  // Agent-side -ENOSPC helper: given a full image path
  // ("<root>/gen_XXXXXX/pod_N.img"), evicts the oldest non-latest
  // committed generation under that root. Returns true if space was
  // reclaimed and the write is worth retrying.
  static bool EvictForSpace(os::NetworkFileSystem& fs,
                            const std::string& image_path);

 private:
  std::string SeqPath() const { return root_ + "/SEQ"; }
  std::string ManifestPath(std::uint64_t gen) const {
    return Prefix(gen) + "/MANIFEST";
  }

  os::NetworkFileSystem& fs_;
  std::string root_;
  obs::Tracer* tracer_ = nullptr;
  TieredStore* tiered_ = nullptr;
};

}  // namespace cruz::ckpt
