#include "pod/pod.h"

#include "common/error.h"
#include "common/log.h"

namespace cruz::pod {

PodManager::PodManager(os::Node& node) : node_(node) {
  node_.os().set_interposer(this);
  // Pod ids are allocated from a per-node range so they stay globally
  // unique across the cluster: a pod restored on another machine keeps
  // its id (which also namespaces its SysV IPC keys).
  next_pod_id_ = node.index() * 1000 + 1;
}

PodManager::~PodManager() {
  if (node_.os().interposer() == this) {
    node_.os().set_interposer(nullptr);
  }
}

os::PodId PodManager::CreatePod(const PodCreateOptions& options) {
  os::PodId id = options.id != os::kNoPod ? options.id : next_pod_id_++;
  if (id >= next_pod_id_) next_pod_id_ = id + 1;
  CRUZ_CHECK(pods_.count(id) == 0, "pod id already in use");

  Pod pod;
  pod.id = id;
  pod.name = options.name.empty() ? ("pod" + std::to_string(id))
                                  : options.name;
  pod.ip = options.ip;
  pod.netmask = node_.config().netmask;
  pod.vif_name = "pod" + std::to_string(id);

  // MAC strategy (paper §4.2): a VIF gets its own network-visible MAC if
  // the hardware can filter multiple unicast addresses; otherwise it
  // shares the physical MAC and relies on gratuitous ARP at migration.
  pod.own_mac = node_.nic().supports_multiple_macs();
  if (pod.own_mac) {
    // Derived from the globally-unique pod id, so VIF MACs never collide
    // across nodes and survive migration unchanged.
    pod.vif_mac = options.vif_mac.IsZero()
                      ? net::MacAddress::FromId(0x20000000u + id)
                      : options.vif_mac;
  } else {
    pod.vif_mac = node_.nic().primary_mac();
  }
  // The fake MAC is the pod's stable virtual hardware identity; it never
  // changes across migration (DHCP lease key).
  pod.fake_mac = options.fake_mac.IsZero()
                     ? net::MacAddress::FromId(0xFA000000u + id)
                     : options.fake_mac;

  node_.stack().AddInterface(pod.vif_name, pod.vif_mac, pod.ip, pod.netmask,
                             /*is_virtual=*/true);
  CRUZ_INFO("pod") << node_.name() << ": created pod " << pod.name << " ("
                   << pod.ip.ToString() << ", vif mac "
                   << pod.vif_mac.ToString() << ")";
  pods_.emplace(id, std::move(pod));
  return id;
}

void PodManager::DestroyPod(os::PodId id) {
  Pod* pod = Find(id);
  if (pod == nullptr) return;
  // Tear down silently: the VIF is deleted at the original host before
  // the processes die (paper §4.2), and a transient drop rule swallows
  // any RST/FIN the socket teardown would otherwise emit — the migrated
  // incarnation owns these connections now.
  net::Ipv4Address pod_ip = pod->ip;
  std::uint64_t filter = node_.stack().AddFilter(
      [pod_ip](const net::Ipv4Packet& pkt) {
        return pkt.src == pod_ip || pkt.dst == pod_ip;
      });
  node_.stack().RemoveInterface(pod->vif_name);
  for (os::Pid pid : node_.os().PodProcesses(id)) {
    node_.os().DestroyProcess(pid, 128 + os::kSigKill);
  }
  node_.stack().PurgeSocketsForIp(pod_ip);
  node_.stack().RemoveFilter(filter);
  pods_.erase(id);
}

void PodManager::RemoveVif(os::PodId id) {
  Pod* pod = Find(id);
  if (pod == nullptr) return;
  node_.stack().RemoveInterface(pod->vif_name);
}

Pod* PodManager::Find(os::PodId id) {
  auto it = pods_.find(id);
  return it == pods_.end() ? nullptr : &it->second;
}

os::Pid PodManager::SpawnInPod(os::PodId id, const std::string& program,
                               cruz::ByteSpan args) {
  Pod* pod = Find(id);
  CRUZ_CHECK(pod != nullptr, "SpawnInPod: no such pod");
  os::Pid real = node_.os().Spawn(program, args, id);
  return ToVirtualPid(id, real);
}

void PodManager::BindVirtualPid(os::PodId id, os::Pid vpid, os::Pid real) {
  Pod* pod = Find(id);
  CRUZ_CHECK(pod != nullptr, "BindVirtualPid: no such pod");
  // OnProcessCreated may already have auto-assigned a vpid; rebind.
  auto it = pod->real_to_vpid.find(real);
  if (it != pod->real_to_vpid.end()) {
    pod->vpid_to_real.erase(it->second);
    pod->real_to_vpid.erase(it);
  }
  pod->vpid_to_real[vpid] = real;
  pod->real_to_vpid[real] = vpid;
  if (vpid >= pod->next_vpid) pod->next_vpid = vpid + 1;
}

void PodManager::AnnouncePod(os::PodId id) {
  Pod* pod = Find(id);
  if (pod == nullptr) return;
  node_.stack().AnnounceAddress(pod->ip, pod->vif_mac);
}

// ---------------------------------------------------------------------------
// SyscallInterposer
// ---------------------------------------------------------------------------

void PodManager::OnProcessCreated(os::PodId id, os::Pid real) {
  Pod* pod = Find(id);
  if (pod == nullptr) return;
  os::Pid vpid = pod->next_vpid++;
  pod->vpid_to_real[vpid] = real;
  pod->real_to_vpid[real] = vpid;
}

void PodManager::OnProcessExited(os::PodId id, os::Pid real) {
  Pod* pod = Find(id);
  if (pod == nullptr) return;
  auto it = pod->real_to_vpid.find(real);
  if (it != pod->real_to_vpid.end()) {
    pod->vpid_to_real.erase(it->second);
    pod->real_to_vpid.erase(it);
  }
}

os::Pid PodManager::ToVirtualPid(os::PodId id, os::Pid real) {
  Pod* pod = Find(id);
  if (pod == nullptr) return os::kNoPid;
  auto it = pod->real_to_vpid.find(real);
  return it == pod->real_to_vpid.end() ? os::kNoPid : it->second;
}

os::Pid PodManager::ToRealPid(os::PodId id, os::Pid virt) {
  Pod* pod = Find(id);
  if (pod == nullptr) return os::kNoPid;
  auto it = pod->vpid_to_real.find(virt);
  return it == pod->vpid_to_real.end() ? os::kNoPid : it->second;
}

net::Ipv4Address PodManager::PodAddress(os::PodId id) {
  Pod* pod = Find(id);
  return pod == nullptr ? net::kAnyAddress : pod->ip;
}

std::optional<net::MacAddress> PodManager::FakeMac(os::PodId id) {
  Pod* pod = Find(id);
  if (pod == nullptr) return std::nullopt;
  return pod->fake_mac;
}

std::int32_t PodManager::VirtualizeIpcKey(os::PodId id, std::int32_t key) {
  // Pod-private key space: fold the pod id into the key's high bits.
  return static_cast<std::int32_t>((static_cast<std::uint32_t>(id) << 20) ^
                                   static_cast<std::uint32_t>(key));
}

os::ShmId PodManager::ShmIdToVirtual(os::PodId id, os::ShmId real) {
  Pod* pod = Find(id);
  if (pod == nullptr) return real;
  auto it = pod->real_to_vshm.find(real);
  if (it != pod->real_to_vshm.end()) return it->second;
  os::ShmId virt = pod->next_vshm++;
  pod->vshm_to_real[virt] = real;
  pod->real_to_vshm[real] = virt;
  return virt;
}

os::ShmId PodManager::ShmIdToReal(os::PodId id, os::ShmId virt) {
  Pod* pod = Find(id);
  if (pod == nullptr) return virt;
  auto it = pod->vshm_to_real.find(virt);
  return it == pod->vshm_to_real.end() ? -1 : it->second;
}

os::SemId PodManager::SemIdToVirtual(os::PodId id, os::SemId real) {
  Pod* pod = Find(id);
  if (pod == nullptr) return real;
  auto it = pod->real_to_vsem.find(real);
  if (it != pod->real_to_vsem.end()) return it->second;
  os::SemId virt = pod->next_vsem++;
  pod->vsem_to_real[virt] = real;
  pod->real_to_vsem[real] = virt;
  return virt;
}

os::SemId PodManager::SemIdToReal(os::PodId id, os::SemId virt) {
  Pod* pod = Find(id);
  if (pod == nullptr) return virt;
  auto it = pod->vsem_to_real.find(virt);
  return it == pod->vsem_to_real.end() ? -1 : it->second;
}

void PodManager::BindShmId(os::PodId id, os::ShmId virt, os::ShmId real) {
  Pod* pod = Find(id);
  CRUZ_CHECK(pod != nullptr, "BindShmId: no such pod");
  pod->vshm_to_real[virt] = real;
  pod->real_to_vshm[real] = virt;
  if (virt >= pod->next_vshm) pod->next_vshm = virt + 1;
}

void PodManager::BindSemId(os::PodId id, os::SemId virt, os::SemId real) {
  Pod* pod = Find(id);
  CRUZ_CHECK(pod != nullptr, "BindSemId: no such pod");
  pod->vsem_to_real[virt] = real;
  pod->real_to_vsem[real] = virt;
  if (virt >= pod->next_vsem) pod->next_vsem = virt + 1;
}

}  // namespace cruz::pod
