// PrOcess Domains (pods) — Zap's thin virtualization layer.
//
// A pod gives a group of processes a private name space (paper §2):
// virtual pids that stay stable across checkpoint-restart even when the
// corresponding real pids are taken on the target machine, a private
// virtual network interface (VIF) carrying the pod's externally-routable
// IP address, and a virtualized view of network hardware (the fake MAC
// reported by the intercepted SIOCGIFHWADDR). PodManager implements the
// os::SyscallInterposer hook interface — the simulation's equivalent of
// Zap's system-call interposition.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "net/address.h"
#include "os/node.h"
#include "os/os.h"
#include "os/types.h"

namespace cruz::pod {

struct Pod {
  os::PodId id = os::kNoPod;
  std::string name;
  net::Ipv4Address ip;
  net::Ipv4Address netmask;
  // True when the VIF carries its own MAC address (hardware supports
  // multiple unicast filters); false = shared-MAC scheme with gratuitous
  // ARP on migration.
  bool own_mac = false;
  net::MacAddress vif_mac;   // MAC the VIF uses on the wire
  net::MacAddress fake_mac;  // stable virtual MAC exposed to the pod
  std::string vif_name;      // interface name on the hosting stack

  // Virtual <-> real pid maps.
  std::map<os::Pid, os::Pid> vpid_to_real;
  std::map<os::Pid, os::Pid> real_to_vpid;
  os::Pid next_vpid = 1;

  // Virtual <-> real SysV identifier maps (same stability property as
  // virtual pids: restored processes keep using their old virtual ids).
  std::map<os::ShmId, os::ShmId> vshm_to_real;
  std::map<os::ShmId, os::ShmId> real_to_vshm;
  os::ShmId next_vshm = 1;
  std::map<os::SemId, os::SemId> vsem_to_real;
  std::map<os::SemId, os::SemId> real_to_vsem;
  os::SemId next_vsem = 1;
};

struct PodCreateOptions {
  std::string name;
  net::Ipv4Address ip;  // externally routable, unique on the subnet
  // Preserved identifiers for restore/migration; zero = allocate fresh.
  os::PodId id = os::kNoPod;
  net::MacAddress vif_mac{};
  net::MacAddress fake_mac{};
};

class PodManager : public os::SyscallInterposer {
 public:
  explicit PodManager(os::Node& node);
  ~PodManager() override;

  os::Node& node() { return node_; }

  // Creates a pod and attaches its VIF to the node's stack. Whether the
  // VIF gets its own MAC depends on the node's NIC capability.
  os::PodId CreatePod(const PodCreateOptions& options);
  // Destroys the pod: kills its processes and deletes the VIF.
  void DestroyPod(os::PodId id);
  // Detaches the VIF without killing state bookkeeping (migration source:
  // "when a pod is migrated, its VIF is deleted at the original host").
  void RemoveVif(os::PodId id);

  Pod* Find(os::PodId id);
  const std::map<os::PodId, Pod>& pods() const { return pods_; }

  // Spawns a process inside the pod; returns its *virtual* pid.
  os::Pid SpawnInPod(os::PodId id, const std::string& program,
                     cruz::ByteSpan args);

  // Restore path: maps a known virtual pid onto a freshly created real
  // process (Zap restarts succeed even when the old pids are in use).
  void BindVirtualPid(os::PodId id, os::Pid vpid, os::Pid real);

  // Announces the pod's (IP -> MAC) mapping via gratuitous ARP; used by
  // the shared-MAC migration scheme after the VIF lands on new hardware.
  void AnnouncePod(os::PodId id);

  // --- os::SyscallInterposer ---------------------------------------------------
  void OnProcessCreated(os::PodId pod, os::Pid real) override;
  void OnProcessExited(os::PodId pod, os::Pid real) override;
  os::Pid ToVirtualPid(os::PodId pod, os::Pid real) override;
  os::Pid ToRealPid(os::PodId pod, os::Pid virt) override;
  net::Ipv4Address PodAddress(os::PodId pod) override;
  std::optional<net::MacAddress> FakeMac(os::PodId pod) override;
  std::int32_t VirtualizeIpcKey(os::PodId pod, std::int32_t key) override;
  os::ShmId ShmIdToVirtual(os::PodId pod, os::ShmId real) override;
  os::ShmId ShmIdToReal(os::PodId pod, os::ShmId virt) override;
  os::SemId SemIdToVirtual(os::PodId pod, os::SemId real) override;
  os::SemId SemIdToReal(os::PodId pod, os::SemId virt) override;

  // Restore path: binds a known virtual SysV id to a fresh real id.
  void BindShmId(os::PodId pod, os::ShmId virt, os::ShmId real);
  void BindSemId(os::PodId pod, os::SemId virt, os::SemId real);

 private:
  os::Node& node_;
  std::map<os::PodId, Pod> pods_;
  os::PodId next_pod_id_ = 1;
};

}  // namespace cruz::pod
