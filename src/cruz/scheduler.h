// Job scheduler (the paper's LSF integration, §6: "integrated it with
// LSF, a job scheduler for clusters").
//
// A job is a set of tasks, one pod per task, placed round-robin across
// live nodes. The scheduler can checkpoint a job periodically (the §6
// experiments checkpoint every 8 seconds of execution), and recovers from
// node failures by coordinated restart of the whole job from its most
// recent checkpoint images on the surviving nodes — the fault-tolerance
// use case of §1.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cruz/cluster.h"

namespace cruz {

class JobScheduler {
 public:
  struct TaskSpec {
    std::string program;
    // Called once all task pod addresses are known (rank -> address), so
    // distributed programs can embed their peers' addresses.
    std::function<cruz::Bytes(const std::vector<net::Ipv4Address>& pods,
                              std::size_t task_index)>
        args;
  };

  struct JobSpec {
    std::string name;
    std::vector<TaskSpec> tasks;
    // 0 = no automatic checkpoints.
    DurationNs checkpoint_interval = 0;
  };

  enum class JobState {
    kRunning,
    kCheckpointing,
    kRestarting,
    kCompleted,
    kFailed,
  };

  struct Task {
    std::size_t node = 0;
    os::PodId pod = os::kNoPod;
    os::Pid vpid = 0;
    net::Ipv4Address pod_ip;
  };

  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kRunning;
    std::vector<Task> tasks;
    std::vector<std::string> last_images;  // from the latest checkpoint
    std::uint32_t checkpoints_taken = 0;
    std::uint32_t restarts = 0;
  };

  explicit JobScheduler(Cluster& cluster);
  ~JobScheduler();

  // Places and starts a job. Returns its id.
  std::uint64_t Submit(JobSpec spec);

  const Job* Find(std::uint64_t id) const;

  // Takes a coordinated checkpoint of the job now (asynchronous; the
  // result updates the job's last_images).
  void CheckpointJob(std::uint64_t id);

  // Reacts to a node failure: every job with a task on that node is
  // restarted from its last checkpoint on the surviving nodes (or marked
  // failed if it was never checkpointed).
  void HandleNodeFailure(std::size_t node_index);

  // Reads a task's process (nullptr once it exited).
  os::Process* TaskProcess(const Job& job, std::size_t task_index);

 private:
  void PollJobs();
  void ScheduleCheckpointTimer(std::uint64_t id);
  std::size_t NextLiveNode();

  Cluster& cluster_;
  std::map<std::uint64_t, Job> jobs_;
  std::uint64_t next_job_id_ = 1;
  std::size_t placement_cursor_ = 0;
  sim::EventId poll_timer_ = sim::kInvalidEventId;
  bool shutting_down_ = false;
};

}  // namespace cruz
