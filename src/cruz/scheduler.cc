#include "cruz/scheduler.h"

#include "common/error.h"
#include "common/log.h"

namespace cruz {

namespace {
constexpr DurationNs kPollInterval = 100 * kMillisecond;
}

JobScheduler::JobScheduler(Cluster& cluster) : cluster_(cluster) {
  poll_timer_ = cluster_.sim().Schedule(kPollInterval, [this] {
    poll_timer_ = sim::kInvalidEventId;
    PollJobs();
  });
}

JobScheduler::~JobScheduler() {
  shutting_down_ = true;
  if (poll_timer_ != sim::kInvalidEventId) {
    cluster_.sim().Cancel(poll_timer_);
  }
}

std::size_t JobScheduler::NextLiveNode() {
  for (std::size_t tries = 0; tries < cluster_.num_nodes(); ++tries) {
    std::size_t candidate = placement_cursor_;
    placement_cursor_ = (placement_cursor_ + 1) % cluster_.num_nodes();
    if (!cluster_.node(candidate).failed()) return candidate;
  }
  throw UsageError("no live nodes available for placement");
}

std::uint64_t JobScheduler::Submit(JobSpec spec) {
  CRUZ_CHECK(!spec.tasks.empty(), "job with no tasks");
  Job job;
  job.id = next_job_id_++;
  job.spec = std::move(spec);

  // Place: one pod per task, round-robin on live nodes.
  std::vector<net::Ipv4Address> pod_ips;
  for (std::size_t t = 0; t < job.spec.tasks.size(); ++t) {
    Task task;
    task.node = NextLiveNode();
    task.pod = cluster_.CreatePod(
        task.node, job.spec.name + "." + std::to_string(t));
    task.pod_ip = cluster_.pods(task.node).Find(task.pod)->ip;
    pod_ips.push_back(task.pod_ip);
    job.tasks.push_back(task);
  }
  // Spawn once every address is known.
  for (std::size_t t = 0; t < job.tasks.size(); ++t) {
    const TaskSpec& ts = job.spec.tasks[t];
    cruz::Bytes args = ts.args ? ts.args(pod_ips, t) : cruz::Bytes{};
    Task& task = job.tasks[t];
    task.vpid = cluster_.pods(task.node).SpawnInPod(task.pod, ts.program,
                                                    args);
  }
  std::uint64_t id = job.id;
  jobs_.emplace(id, std::move(job));
  if (jobs_.at(id).spec.checkpoint_interval > 0) {
    ScheduleCheckpointTimer(id);
  }
  CRUZ_INFO("sched") << "submitted job " << id << " ("
                     << jobs_.at(id).spec.name << ", "
                     << jobs_.at(id).tasks.size() << " tasks)";
  return id;
}

const JobScheduler::Job* JobScheduler::Find(std::uint64_t id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

os::Process* JobScheduler::TaskProcess(const Job& job,
                                       std::size_t task_index) {
  const Task& task = job.tasks.at(task_index);
  os::Pid real =
      cluster_.pods(task.node).ToRealPid(task.pod, task.vpid);
  if (real == os::kNoPid) return nullptr;
  return cluster_.node(task.node).os().FindProcess(real);
}

void JobScheduler::ScheduleCheckpointTimer(std::uint64_t id) {
  Job* job = const_cast<Job*>(Find(id));
  if (job == nullptr) return;
  cluster_.sim().Schedule(job->spec.checkpoint_interval, [this, id] {
    if (shutting_down_) return;
    Job* j = const_cast<Job*>(Find(id));
    if (j == nullptr || j->state == JobState::kCompleted ||
        j->state == JobState::kFailed) {
      return;
    }
    CheckpointJob(id);
    ScheduleCheckpointTimer(id);
  });
}

void JobScheduler::CheckpointJob(std::uint64_t id) {
  Job* job = const_cast<Job*>(Find(id));
  if (job == nullptr || job->state != JobState::kRunning) return;
  if (cluster_.coordinator().busy()) return;  // try again next interval
  std::vector<coord::Coordinator::Member> members;
  for (const Task& task : job->tasks) {
    members.push_back(cluster_.MemberFor(task.node, task.pod));
  }
  coord::Coordinator::Options options;
  options.image_prefix = "/ckpt/job" + std::to_string(id) + "_gen" +
                         std::to_string(job->checkpoints_taken);
  job->state = JobState::kCheckpointing;
  cluster_.coordinator().Checkpoint(
      members, options, [this, id](const coord::Coordinator::OpStats& s) {
        Job* j = const_cast<Job*>(Find(id));
        if (j == nullptr) return;
        if (j->state == JobState::kCheckpointing) {
          j->state = JobState::kRunning;
        }
        if (s.success) {
          j->last_images = s.image_paths;
          ++j->checkpoints_taken;
        }
      });
}

void JobScheduler::HandleNodeFailure(std::size_t node_index) {
  for (auto& [id, job] : jobs_) {
    if (job.state == JobState::kCompleted ||
        job.state == JobState::kFailed) {
      continue;
    }
    bool affected = false;
    for (const Task& task : job.tasks) {
      if (task.node == node_index) affected = true;
    }
    if (!affected) continue;
    if (job.last_images.empty()) {
      job.state = JobState::kFailed;
      CRUZ_WARN("sched") << "job " << id
                         << " lost with no checkpoint; marked failed";
      continue;
    }
    // Kill the survivors (their state is inconsistent with the failed
    // task) and restart the whole job from the last checkpoint.
    job.state = JobState::kRestarting;
    for (Task& task : job.tasks) {
      if (task.node != node_index &&
          !cluster_.node(task.node).failed()) {
        cluster_.pods(task.node).DestroyPod(task.pod);
      }
    }
    std::vector<coord::Coordinator::Member> members;
    for (Task& task : job.tasks) {
      task.node = NextLiveNode();
      members.push_back(
          coord::Coordinator::Member{cluster_.node(task.node).ip(),
                                     task.pod});
    }
    std::uint64_t job_id = id;
    cluster_.coordinator().Restart(
        members, job.last_images, {},
        [this, job_id](const coord::Coordinator::OpStats& s) {
          Job* j = const_cast<Job*>(Find(job_id));
          if (j == nullptr) return;
          if (s.success) {
            j->state = JobState::kRunning;
            ++j->restarts;
            CRUZ_INFO("sched") << "job " << job_id
                               << " restarted from checkpoint";
          } else {
            j->state = JobState::kFailed;
          }
        });
    // One coordinated restart at a time (the coordinator is busy).
    break;
  }
}

void JobScheduler::PollJobs() {
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning) continue;
    bool any_alive = false;
    for (const Task& task : job.tasks) {
      if (cluster_.node(task.node).failed()) continue;
      if (!cluster_.node(task.node)
               .os()
               .PodProcesses(task.pod)
               .empty()) {
        any_alive = true;
      }
    }
    if (!any_alive) {
      job.state = JobState::kCompleted;
      CRUZ_INFO("sched") << "job " << id << " completed";
      // Tidy up the empty pods.
      for (const Task& task : job.tasks) {
        if (!cluster_.node(task.node).failed()) {
          cluster_.pods(task.node).DestroyPod(task.pod);
        }
      }
    }
  }
  poll_timer_ = cluster_.sim().Schedule(kPollInterval, [this] {
    poll_timer_ = sim::kInvalidEventId;
    PollJobs();
  });
}

}  // namespace cruz
