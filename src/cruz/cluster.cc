#include "cruz/cluster.h"

#include "apps/programs.h"
#include "common/crc32.h"
#include "common/error.h"
#include "common/log.h"

namespace cruz {

Cluster::Cluster(const ClusterConfig& config) : sim_(config.seed) {
  apps::RegisterPrograms();
  ethernet_ = std::make_unique<net::EthernetSwitch>(sim_, config.link);

  for (std::uint32_t i = 0; i < config.num_nodes; ++i) {
    os::NodeConfig node_config = config.node_template;
    // Nodes 0..97 keep their historical 10.0.0.x addresses (the rest of
    // the third octet is reserved: .99 coordinator, .100+ pods, .200+
    // DHCP); larger clusters spill into 10.0.1.x and up (/16 subnet).
    if (i < 98) {
      node_config.ip = net::Ipv4Address::FromOctets(
          10, 0, 0, static_cast<std::uint8_t>(i + 1));
    } else {
      std::uint32_t n = i - 98;
      node_config.ip = net::Ipv4Address::FromOctets(
          10, 0, static_cast<std::uint8_t>(1 + n / 254),
          static_cast<std::uint8_t>(1 + n % 254));
    }
    auto node = std::make_unique<os::Node>(sim_, *ethernet_, fs_,
                                           "node" + std::to_string(i + 1),
                                           i + 1, node_config);
    auto pods = std::make_unique<pod::PodManager>(*node);
    auto agent = std::make_unique<coord::CheckpointAgent>(*node, *pods);
    nodes_.push_back(std::move(node));
    pod_managers_.push_back(std::move(pods));
    agents_.push_back(std::move(agent));
  }

  // Multi-tier storage over the worker-node disks: deterministic partner
  // ring in node order. Built unconditionally (it is pure state until an
  // op with Options::tiered uses it).
  tiered_ = std::make_unique<ckpt::TieredStore>(sim_, fs_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    tiered_->RegisterNode(nodes_[i].get());
    agents_[i]->set_tiered_store(tiered_.get());
  }

  // Sub-coordinators for hierarchical mode (after tiered_: their abort /
  // recovery paths garbage-collect images on every tier).
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    shard_coordinators_.push_back(
        std::make_unique<coord::ShardCoordinator>(*nodes_[i],
                                                  tiered_.get()));
  }

  os::NodeConfig coord_config = config.node_template;
  coord_config.ip = net::Ipv4Address::FromOctets(10, 0, 0, 99);
  // Node index 0xFFFF keeps the coordinator's MAC clear of the worker
  // range (workers use 1..num_nodes; 99 used to collide at >= 99 nodes).
  coordinator_node_ = std::make_unique<os::Node>(
      sim_, *ethernet_, fs_, "coordinator", 0xFFFF, coord_config);
  coordinator_ = std::make_unique<coord::Coordinator>(
      *coordinator_node_, coord::IntentJournal::kDefaultPath,
      tiered_.get());

  if (config.with_dhcp_server && !nodes_.empty()) {
    dhcp_ = std::make_unique<os::DhcpServer>(
        nodes_.front()->stack(),
        net::Ipv4Address::FromOctets(10, 0, 0, 200), 50);
  }
}

Cluster::~Cluster() = default;

net::Ipv4Address Cluster::AllocatePodIp() {
  // The first 100 pods keep their historical 10.0.0.100..199 addresses;
  // larger clusters spill into 10.0.100.x and up (/16 subnet), clear of
  // the node range (10.0.1.x..) and the DHCP pool (10.0.0.200+).
  std::uint32_t n = next_pod_ip_offset_++;
  if (n < 200) {
    return net::Ipv4Address::FromOctets(10, 0, 0,
                                        static_cast<std::uint8_t>(n));
  }
  std::uint32_t spill = n - 200;
  CRUZ_CHECK(spill < 100u * 254u, "pod address pool exhausted");
  return net::Ipv4Address::FromOctets(
      10, 0, static_cast<std::uint8_t>(100 + spill / 254),
      static_cast<std::uint8_t>(1 + spill % 254));
}

os::PodId Cluster::CreatePod(std::size_t i, const std::string& name,
                             net::Ipv4Address ip) {
  pod::PodCreateOptions options;
  options.name = name;
  options.ip = ip.IsZero() ? AllocatePodIp() : ip;
  return pods(i).CreatePod(options);
}

coord::Coordinator::OpStats Cluster::RunCheckpoint(
    std::vector<coord::Coordinator::Member> members,
    coord::Coordinator::Options options) {
  coord::Coordinator::OpStats result;
  bool finished = false;
  coordinator_->Checkpoint(std::move(members), options,
                           [&](const coord::Coordinator::OpStats& stats) {
                             result = stats;
                             finished = true;
                           });
  bool done = sim_.RunWhile([&] { return finished; },
                            sim_.Now() + options.timeout + kSecond);
  CRUZ_CHECK(done, "coordinated checkpoint did not complete");
  return result;
}

coord::Coordinator::OpStats Cluster::RunRestart(
    std::vector<coord::Coordinator::Member> members,
    std::vector<std::string> image_paths,
    coord::Coordinator::Options options) {
  coord::Coordinator::OpStats result;
  bool finished = false;
  coordinator_->Restart(std::move(members), std::move(image_paths), options,
                        [&](const coord::Coordinator::OpStats& stats) {
                          result = stats;
                          finished = true;
                        });
  bool done = sim_.RunWhile([&] { return finished; },
                            sim_.Now() + options.timeout + kSecond);
  CRUZ_CHECK(done, "coordinated restart did not complete");
  return result;
}

void Cluster::ArmFaults(fault::FaultPlan& plan) {
  armed_plan_ = &plan;
  plan.set_tracer(&sim_.tracer());
  coordinator_->set_fault_injector(&plan);
  for (auto& agent : agents_) agent->set_fault_injector(&plan);
  for (auto& sub : shard_coordinators_) sub->set_fault_injector(&plan);
  tiered_->set_injector(&plan);

  // Tier-scoped faults: local-disk loss wipes one node's tier-1 cache
  // (the node itself stays up), a netfs outage window makes the shared
  // FS return -EIO for its duration.
  for (const fault::DiskLossSpec& spec : plan.disk_losses()) {
    CRUZ_CHECK(spec.node_index < nodes_.size(),
               "disk loss spec out of range");
    os::Node* node = nodes_[spec.node_index].get();
    fault::FaultPlan* p = &plan;
    TimeNs delay = spec.at > sim_.Now() ? spec.at - sim_.Now() : 0;
    sim_.Schedule(delay, [node, p] {
      node->disk().Clear();
      p->RecordEvent(fault::FaultKind::kLocalDiskLoss, node->name());
    });
  }
  for (const fault::NetfsOutageSpec& spec : plan.netfs_outages()) {
    fault::FaultPlan* p = &plan;
    os::NetworkFileSystem* fs = &fs_;
    TimeNs delay = spec.start > sim_.Now() ? spec.start - sim_.Now() : 0;
    sim_.Schedule(delay, [fs, p] {
      fs->set_available(false);
      p->RecordEvent(fault::FaultKind::kNetfsOutage, "start");
    });
    sim_.Schedule(delay + spec.duration, [fs, p] {
      fs->set_available(true);
      p->RecordEvent(fault::FaultKind::kNetfsOutage, "end");
    });
  }

  for (const fault::NodeCrashSpec& spec : plan.node_crashes()) {
    CRUZ_CHECK(spec.node_index < nodes_.size(),
               "node crash spec out of range");
    os::Node* node = nodes_[spec.node_index].get();
    coord::CheckpointAgent* agent = agents_[spec.node_index].get();
    coord::ShardCoordinator* sub = shard_coordinators_[spec.node_index].get();
    pod::PodManager* pods = pod_managers_[spec.node_index].get();
    fault::FaultPlan* p = &plan;
    TimeNs crash_delay =
        spec.crash_at > sim_.Now() ? spec.crash_at - sim_.Now() : 0;
    sim_.Schedule(crash_delay, [node, agent, sub, p] {
      node->Fail();
      agent->Crash();
      sub->Crash();
      p->RecordEvent(fault::FaultKind::kNodeCrash, node->name());
    });
    if (spec.reboot_after > 0) {
      sim_.Schedule(crash_delay + spec.reboot_after,
                    [node, agent, sub, pods, p] {
        node->Reboot();
        // A power-cycled machine comes back with no processes: clear the
        // stale pod bookkeeping before the restarted agent takes over.
        std::vector<os::PodId> stale;
        for (const auto& [id, pod] : pods->pods()) stale.push_back(id);
        for (os::PodId id : stale) pods->DestroyPod(id);
        agent->Reset();
        // The reborn sub-coordinator replays its intent journal, fencing
        // and cleaning any shard op it was driving when the node died.
        sub->Reset();
        p->RecordEvent(fault::FaultKind::kNodeReboot, node->name());
      });
    }
  }

  // Timed agent-process crashes (node stays up). These can hit inside an
  // agent's background write-out window, which no message-triggered crash
  // can reach once the pod has resumed.
  for (const fault::AgentCrashSpec& spec : plan.agent_crash_times()) {
    CRUZ_CHECK(spec.node_index < agents_.size(),
               "agent crash spec out of range");
    coord::CheckpointAgent* agent = agents_[spec.node_index].get();
    fault::FaultPlan* p = &plan;
    TimeNs crash_delay =
        spec.crash_at > sim_.Now() ? spec.crash_at - sim_.Now() : 0;
    sim_.Schedule(crash_delay, [agent, p] {
      agent->Crash();
      p->RecordEvent(fault::FaultKind::kAgentCrash, agent->node().name());
    });
  }
}

void Cluster::RestartCoordinator() {
  // Destroy first so the new incarnation can bind the coordinator port;
  // its constructor then replays the intent journal.
  coordinator_.reset();
  coordinator_ = std::make_unique<coord::Coordinator>(
      *coordinator_node_, coord::IntentJournal::kDefaultPath,
      tiered_.get());
  if (armed_plan_ != nullptr) {
    coordinator_->set_fault_injector(armed_plan_);
  }
}

std::shared_ptr<Cluster::PendingGenerationOp>
Cluster::StartGenerationCheckpoint(
    std::vector<coord::Coordinator::Member> members,
    coord::Coordinator::Options options, const std::string& root) {
  ckpt::GenerationStore store(fs_, root);
  if (options.tiered) store.set_tiered(tiered_.get());
  auto op = std::make_shared<PendingGenerationOp>();
  op->generation = store.Allocate();
  op->tiered = options.tiered;
  op->members = members;
  op->root = root;
  options.image_prefix = store.Prefix(op->generation);
  std::shared_ptr<PendingGenerationOp> capture = op;
  coordinator_->Checkpoint(std::move(members), options,
                           [capture](const coord::Coordinator::OpStats& s) {
                             capture->stats = s;
                             capture->finished = true;
                           });
  return op;
}

Cluster::GenerationOpResult Cluster::SettleGenerationCheckpoint(
    const std::shared_ptr<PendingGenerationOp>& op) {
  ckpt::GenerationStore store(fs_, op->root);
  store.set_tracer(&sim_.tracer());
  if (op->tiered) store.set_tiered(tiered_.get());
  GenerationOpResult result;
  result.allocated = op->generation;
  result.stats = op->stats;
  if (op->finished && op->stats.success) {
    result.generation = op->generation;
    std::vector<ckpt::ManifestEntry> entries;
    for (std::size_t i = 0; i < op->members.size(); ++i) {
      ckpt::ManifestEntry e;
      e.pod = op->members[i].pod;
      e.image_path = op->stats.image_paths.at(i);
      if (op->tiered && i < op->stats.replica_sets.size() &&
          !op->stats.replica_sets[i].empty()) {
        // Agents reported where their images landed in <done>; the
        // manifest records the replica locations and commit-time CRC
        // without touching the (possibly unavailable) netfs.
        const std::vector<ckpt::Replica>& reps = op->stats.replica_sets[i];
        e.size = reps.front().size;
        e.crc32 = reps.front().crc32;
        e.replicas = reps;
      } else {
        cruz::Bytes image;
        CRUZ_CHECK(SysOk(fs_.ReadFile(e.image_path, image)),
                   "committed image missing from the shared FS");
        e.size = image.size();
        e.crc32 = Crc32(image);
      }
      entries.push_back(std::move(e));
    }
    store.Commit(result.generation, entries);
  } else {
    // Aborted — or never finished (coordinator crashed mid-op): the
    // partial generation must not survive either way.
    if (!op->finished) result.stats.success = false;
    store.Discard(op->generation);
    result.generation = 0;
  }
  result.latest_committed = store.LatestCommitted().value_or(0);
  return result;
}

Cluster::GenerationOpResult Cluster::RunGenerationCheckpoint(
    std::vector<coord::Coordinator::Member> members,
    coord::Coordinator::Options options, const std::string& root) {
  DurationNs timeout = options.timeout;
  std::shared_ptr<PendingGenerationOp> op =
      StartGenerationCheckpoint(std::move(members), options, root);
  bool done = sim_.RunWhile([&] { return op->finished; },
                            sim_.Now() + timeout + kSecond);
  CRUZ_CHECK(done, "coordinated checkpoint did not complete");
  return SettleGenerationCheckpoint(op);
}

Cluster::GenerationOpResult Cluster::RunGenerationRestart(
    std::vector<coord::Coordinator::Member> members,
    coord::Coordinator::Options options, const std::string& root) {
  ckpt::GenerationStore store(fs_, root);
  if (options.tiered) store.set_tiered(tiered_.get());
  GenerationOpResult result;
  result.latest_committed = store.LatestCommitted().value_or(0);

  std::optional<std::uint64_t> intact = store.NewestIntact();
  if (!intact.has_value()) {
    result.stats.success = false;
    result.stats.abort_reason = "no intact checkpoint generation";
    return result;
  }
  result.generation = *intact;
  result.fell_back = result.generation != result.latest_committed;
  if (result.fell_back) {
    CRUZ_WARN("cruz") << "restart: generation " << result.latest_committed
                      << " is damaged, falling back to generation "
                      << result.generation;
  }

  std::vector<ckpt::ManifestEntry> manifest =
      *store.ReadManifest(result.generation);
  std::vector<std::string> image_paths;
  for (const coord::Coordinator::Member& m : members) {
    const ckpt::ManifestEntry* entry = nullptr;
    for (const ckpt::ManifestEntry& e : manifest) {
      if (e.pod == m.pod) {
        entry = &e;
        break;
      }
    }
    CRUZ_CHECK(entry != nullptr,
               "pod not present in the checkpoint generation manifest");
    image_paths.push_back(entry->image_path);
  }
  result.stats = RunRestart(std::move(members), std::move(image_paths),
                            options);
  return result;
}

}  // namespace cruz
