#include "cruz/cluster.h"

#include "apps/programs.h"
#include "common/error.h"

namespace cruz {

Cluster::Cluster(const ClusterConfig& config) : sim_(config.seed) {
  apps::RegisterPrograms();
  ethernet_ = std::make_unique<net::EthernetSwitch>(sim_, config.link);

  for (std::uint32_t i = 0; i < config.num_nodes; ++i) {
    os::NodeConfig node_config = config.node_template;
    node_config.ip = net::Ipv4Address::FromOctets(
        10, 0, 0, static_cast<std::uint8_t>(i + 1));
    auto node = std::make_unique<os::Node>(sim_, *ethernet_, fs_,
                                           "node" + std::to_string(i + 1),
                                           i + 1, node_config);
    auto pods = std::make_unique<pod::PodManager>(*node);
    auto agent = std::make_unique<coord::CheckpointAgent>(*node, *pods);
    nodes_.push_back(std::move(node));
    pod_managers_.push_back(std::move(pods));
    agents_.push_back(std::move(agent));
  }

  os::NodeConfig coord_config = config.node_template;
  coord_config.ip = net::Ipv4Address::FromOctets(10, 0, 0, 99);
  coordinator_node_ = std::make_unique<os::Node>(
      sim_, *ethernet_, fs_, "coordinator", 99, coord_config);
  coordinator_ = std::make_unique<coord::Coordinator>(*coordinator_node_);

  if (config.with_dhcp_server && !nodes_.empty()) {
    dhcp_ = std::make_unique<os::DhcpServer>(
        nodes_.front()->stack(),
        net::Ipv4Address::FromOctets(10, 0, 0, 200), 50);
  }
}

Cluster::~Cluster() = default;

net::Ipv4Address Cluster::AllocatePodIp() {
  CRUZ_CHECK(next_pod_ip_offset_ < 200, "pod address pool exhausted");
  return net::Ipv4Address::FromOctets(
      10, 0, 0, static_cast<std::uint8_t>(next_pod_ip_offset_++));
}

os::PodId Cluster::CreatePod(std::size_t i, const std::string& name,
                             net::Ipv4Address ip) {
  pod::PodCreateOptions options;
  options.name = name;
  options.ip = ip.IsZero() ? AllocatePodIp() : ip;
  return pods(i).CreatePod(options);
}

coord::Coordinator::OpStats Cluster::RunCheckpoint(
    std::vector<coord::Coordinator::Member> members,
    coord::Coordinator::Options options) {
  coord::Coordinator::OpStats result;
  bool finished = false;
  coordinator_->Checkpoint(std::move(members), options,
                           [&](const coord::Coordinator::OpStats& stats) {
                             result = stats;
                             finished = true;
                           });
  bool done = sim_.RunWhile([&] { return finished; },
                            sim_.Now() + options.timeout + kSecond);
  CRUZ_CHECK(done, "coordinated checkpoint did not complete");
  return result;
}

coord::Coordinator::OpStats Cluster::RunRestart(
    std::vector<coord::Coordinator::Member> members,
    std::vector<std::string> image_paths,
    coord::Coordinator::Options options) {
  coord::Coordinator::OpStats result;
  bool finished = false;
  coordinator_->Restart(std::move(members), std::move(image_paths), options,
                        [&](const coord::Coordinator::OpStats& stats) {
                          result = stats;
                          finished = true;
                        });
  bool done = sim_.RunWhile([&] { return finished; },
                            sim_.Now() + options.timeout + kSecond);
  CRUZ_CHECK(done, "coordinated restart did not complete");
  return result;
}

}  // namespace cruz
