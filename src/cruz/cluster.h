// Top-level facade: a complete simulated cluster, ready for Cruz.
//
// One Cluster owns the simulator, the Ethernet switch, the shared network
// filesystem, N application nodes (each with a pod manager and a
// checkpoint agent), and a separate coordinator node — the §6 testbed in
// one object. Helpers allocate pod addresses from the subnet, create pods,
// spawn programs into them, and run coordinated checkpoint/restart
// operations to completion.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ckpt/generation.h"
#include "ckpt/store/tiered_store.h"
#include "coord/agent.h"
#include "coord/coordinator.h"
#include "coord/shard_coordinator.h"
#include "fault/fault.h"
#include "net/ethernet_switch.h"
#include "os/dhcp.h"
#include "os/netfs.h"
#include "os/node.h"
#include "pod/pod.h"
#include "sim/simulator.h"

namespace cruz {

struct ClusterConfig {
  std::uint64_t seed = 1;
  std::uint32_t num_nodes = 2;  // application nodes
  os::NodeConfig node_template;  // ip is assigned per node
  net::LinkParams link;
  bool with_dhcp_server = false;  // serves 10.0.0.200+ on the first node
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator& sim() { return sim_; }
  net::EthernetSwitch& ethernet() { return *ethernet_; }
  os::NetworkFileSystem& fs() { return fs_; }
  // Multi-tier checkpoint storage over the worker-node disks + the netfs.
  // Always constructed; ops use it only when Options::tiered is set.
  ckpt::TieredStore& tiered() { return *tiered_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  os::Node& node(std::size_t i) { return *nodes_.at(i); }
  pod::PodManager& pods(std::size_t i) { return *pod_managers_.at(i); }
  coord::CheckpointAgent& agent(std::size_t i) { return *agents_.at(i); }
  // Every node runs a sub-coordinator (idle unless the root addresses the
  // node as a shard head — see Coordinator::Options::fan_out).
  coord::ShardCoordinator& shard_coordinator(std::size_t i) {
    return *shard_coordinators_.at(i);
  }

  os::Node& coordinator_node() { return *coordinator_node_; }
  coord::Coordinator& coordinator() { return *coordinator_; }
  os::DhcpServer* dhcp() { return dhcp_.get(); }

  // Allocates a pod address from the cluster subnet (10.0.0.100 up).
  net::Ipv4Address AllocatePodIp();

  // Creates a pod on node `i` with an allocated (or given) address.
  os::PodId CreatePod(std::size_t i, const std::string& name,
                      net::Ipv4Address ip = net::kAnyAddress);

  // Runs a coordinated checkpoint synchronously (drives the simulation
  // until the operation completes).
  coord::Coordinator::OpStats RunCheckpoint(
      std::vector<coord::Coordinator::Member> members,
      coord::Coordinator::Options options = {});
  coord::Coordinator::OpStats RunRestart(
      std::vector<coord::Coordinator::Member> members,
      std::vector<std::string> image_paths,
      coord::Coordinator::Options options = {});

  // Convenience: member descriptor for (node index, pod).
  coord::Coordinator::Member MemberFor(std::size_t node_index,
                                       os::PodId pod) {
    return coord::Coordinator::Member{nodes_.at(node_index)->ip(), pod};
  }

  // --- failure model ------------------------------------------------------

  // Arms a fault plan cluster-wide: the coordinator and every agent
  // consult it on the injection hook points, and the plan's node-crash
  // schedule is turned into sim events (Node::Fail + agent crash at
  // crash_at; Node::Reboot + agent restart + stale-pod cleanup at
  // crash_at + reboot_after). The plan must outlive the cluster run.
  void ArmFaults(fault::FaultPlan& plan);

  // Simulates a coordinator process crash + restart: the old incarnation
  // is destroyed and a fresh one recovers from the intent journal
  // (aborting any in-flight op and collecting its partial images).
  void RestartCoordinator();

  // Outcome of a generation-aware coordinated operation.
  struct GenerationOpResult {
    coord::Coordinator::OpStats stats;
    std::uint64_t generation = 0;       // written (checkpoint) / used (restart)
    std::uint64_t allocated = 0;        // gen allocated for the attempt
    std::uint64_t latest_committed = 0; // newest committed gen, 0 = none
    bool fell_back = false;             // restart skipped corrupt newer gen(s)
  };

  // Coordinated checkpoint into a fresh generation directory. The
  // generation is committed (manifest with per-image CRCs) only if every
  // agent reported <done>; on abort the partial generation is discarded.
  GenerationOpResult RunGenerationCheckpoint(
      std::vector<coord::Coordinator::Member> members,
      coord::Coordinator::Options options = {},
      const std::string& root = ckpt::GenerationStore::kDefaultRoot);

  // Asynchronous form of RunGenerationCheckpoint, for scenarios that need
  // to perturb the cluster (coordinator crash, ...) while the op is in
  // flight. Start allocates the generation and launches the coordinated
  // checkpoint; Settle (called after driving the sim) commits the
  // generation iff the op finished successfully, and discards it
  // otherwise — including when the op never finished at all.
  struct PendingGenerationOp {
    std::uint64_t generation = 0;
    bool tiered = false;
    bool finished = false;
    coord::Coordinator::OpStats stats;
    std::vector<coord::Coordinator::Member> members;
    std::string root;
  };
  std::shared_ptr<PendingGenerationOp> StartGenerationCheckpoint(
      std::vector<coord::Coordinator::Member> members,
      coord::Coordinator::Options options = {},
      const std::string& root = ckpt::GenerationStore::kDefaultRoot);
  GenerationOpResult SettleGenerationCheckpoint(
      const std::shared_ptr<PendingGenerationOp>& op);

  // Coordinated restart from the newest *intact* committed generation:
  // every member image is verified against the manifest CRCs first, and
  // corrupt generations are skipped in favor of older intact ones.
  GenerationOpResult RunGenerationRestart(
      std::vector<coord::Coordinator::Member> members,
      coord::Coordinator::Options options = {},
      const std::string& root = ckpt::GenerationStore::kDefaultRoot);

 private:
  sim::Simulator sim_;
  os::NetworkFileSystem fs_;
  std::unique_ptr<net::EthernetSwitch> ethernet_;
  std::vector<std::unique_ptr<os::Node>> nodes_;
  std::vector<std::unique_ptr<pod::PodManager>> pod_managers_;
  std::vector<std::unique_ptr<coord::CheckpointAgent>> agents_;
  std::vector<std::unique_ptr<coord::ShardCoordinator>> shard_coordinators_;
  std::unique_ptr<ckpt::TieredStore> tiered_;
  std::unique_ptr<os::Node> coordinator_node_;
  std::unique_ptr<coord::Coordinator> coordinator_;
  std::unique_ptr<os::DhcpServer> dhcp_;
  fault::FaultPlan* armed_plan_ = nullptr;
  std::uint32_t next_pod_ip_offset_ = 100;
};

}  // namespace cruz
