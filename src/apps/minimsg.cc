#include "apps/minimsg.h"

#include <algorithm>

namespace cruz::apps {

namespace {
constexpr std::size_t kIoChunk = 8192;
}

IoStatus SendAll(os::ProcessCtx& ctx, os::Fd fd, std::uint64_t addr,
                 std::uint64_t len, std::uint64_t& progress) {
  while (progress < len) {
    std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(kIoChunk,
                                                         len - progress));
    cruz::Bytes data = ctx.Mem().ReadBytes(addr + progress, chunk);
    SysResult n = ctx.SendTcp(fd, data);
    if (SysErrno(n) == CRUZ_EAGAIN) {
      ctx.BlockOnWritable(fd);
      return IoStatus::kBlocked;
    }
    if (n < 0) return IoStatus::kError;
    progress += static_cast<std::uint64_t>(n);
  }
  return IoStatus::kDone;
}

IoStatus RecvAll(os::ProcessCtx& ctx, os::Fd fd, std::uint64_t addr,
                 std::uint64_t len, std::uint64_t& progress) {
  while (progress < len) {
    cruz::Bytes buf;
    std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(kIoChunk,
                                                         len - progress));
    SysResult n = ctx.RecvTcp(fd, buf, want);
    if (SysErrno(n) == CRUZ_EAGAIN) {
      ctx.BlockOnReadable(fd);
      return IoStatus::kBlocked;
    }
    if (n == 0) return IoStatus::kEof;
    if (n < 0) return IoStatus::kError;
    ctx.Mem().WriteBytes(addr + progress, buf);
    progress += static_cast<std::uint64_t>(n);
  }
  return IoStatus::kDone;
}

IoStatus ConnectTo(os::ProcessCtx& ctx, os::Fd fd, net::Endpoint remote) {
  SysResult r = ctx.Connect(fd, remote);
  if (r == 0) return IoStatus::kDone;
  Errno e = SysErrno(r);
  if (e == CRUZ_EINPROGRESS || e == CRUZ_EALREADY) {
    ctx.BlockOnWritable(fd);
    return IoStatus::kBlocked;
  }
  return IoStatus::kError;
}

IoStatus AcceptOne(os::ProcessCtx& ctx, os::Fd listen_fd, os::Fd* out_fd) {
  SysResult r = ctx.Accept(listen_fd);
  if (SysErrno(r) == CRUZ_EAGAIN) {
    ctx.BlockOnReadable(listen_fd);
    return IoStatus::kBlocked;
  }
  if (r < 0) return IoStatus::kError;
  *out_fd = static_cast<os::Fd>(r);
  return IoStatus::kDone;
}

}  // namespace cruz::apps
