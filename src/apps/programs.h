// Reusable application programs for tests, examples, and benchmarks.
//
// All programs follow the transparent-checkpoint contract (see
// os/program.h): state lives exclusively in process memory and thread
// registers, so any of them can be checkpointed at an arbitrary instant
// and restored on another node. Progress counters are written to a
// well-known memory address (kStatusAddr) so harnesses can observe
// progress from outside without perturbing the process.
//
// Registered program names:
//   cruz.counter          — CPU loop; args: u64 iterations
//   cruz.echo_server      — TCP echo server; args: u16 port
//   cruz.echo_client      — TCP echo client; args: u32 ip, u16 port,
//                           u32 messages, u32 msg_len, u64 interval_ns
//   cruz.stream_sender    — max-rate TCP sender; args: u32 ip, u16 port,
//                           u64 total_bytes (0 = unbounded)
//   cruz.stream_receiver  — TCP sink verifying the pattern; args: u16 port
//   cruz.sysbench         — syscall-intensive loop for the runtime-overhead
//                           bench; args: u64 iterations, u64 cpu_ns_per_iter,
//                           u32 syscalls_per_iter
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "net/address.h"
#include "os/program.h"

namespace cruz::apps {

// Where programs publish progress counters (see each program's layout).
constexpr std::uint64_t kStatusAddr = 0x200000;

// Deterministic byte pattern used by the streaming pair; both ends compute
// it independently from the absolute stream offset, which makes loss,
// duplication, or reordering across a checkpoint detectable.
inline std::uint8_t PatternByte(std::uint64_t offset) {
  std::uint64_t x = offset * 0x9E3779B97F4A7C15ull;
  return static_cast<std::uint8_t>(x >> 56);
}

// Ensures the program factories above are registered (call once; idempotent).
void RegisterPrograms();

// --- argument builders -------------------------------------------------------

cruz::Bytes CounterArgs(std::uint64_t iterations);
cruz::Bytes EchoServerArgs(std::uint16_t port);
cruz::Bytes EchoClientArgs(net::Ipv4Address server_ip, std::uint16_t port,
                           std::uint32_t messages, std::uint32_t msg_len,
                           DurationNs interval);
cruz::Bytes StreamSenderArgs(net::Ipv4Address server_ip, std::uint16_t port,
                             std::uint64_t total_bytes);
// burst_interval > 0 makes the receiver a bursty consumer: it drains up
// to burst_bytes, then sleeps for the interval. This leaves data in the
// TCP receive buffer at any instant — which is what produces the Fig. 6
// "pulse" of buffered data delivered right after a checkpoint completes.
cruz::Bytes StreamReceiverArgs(std::uint16_t port,
                               DurationNs burst_interval = 0,
                               std::uint32_t burst_bytes = 65536);
cruz::Bytes SysbenchArgs(std::uint64_t iterations,
                         DurationNs cpu_per_iteration,
                         std::uint32_t syscalls_per_iteration);

// --- status readers (harness side) ---------------------------------------------

struct EchoClientStatus {
  std::uint64_t messages_done = 0;
  std::uint64_t mismatches = 0;
};
EchoClientStatus ReadEchoClientStatus(const os::Process& proc);

struct StreamStatus {
  std::uint64_t bytes = 0;       // sent or received
  std::uint64_t mismatches = 0;  // receiver only
};
StreamStatus ReadStreamStatus(const os::Process& proc);

std::uint64_t ReadCounter(const os::Process& proc);

}  // namespace cruz::apps
