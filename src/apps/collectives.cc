#include "apps/collectives.h"

#include <memory>

#include "apps/minimsg.h"
#include "apps/programs.h"

namespace cruz::apps {

namespace {

// Memory layout (all state checkpointable):
//   kAccAddr + 0:  accumulator for the current all-reduce
//   kAccAddr + 8:  value being forwarded this ring step ("to_send")
//   kAccAddr + 16: receive scratch for the incoming value
constexpr std::uint64_t kAccAddr = 0x310000;

AllreduceConfig ParseArgs(os::ProcessCtx& ctx) {
  cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
  cruz::ByteReader r(args);
  AllreduceConfig cfg;
  cfg.rank = r.GetU32();
  cfg.nranks = r.GetU32();
  cfg.port = r.GetU16();
  std::uint32_t peers = r.GetU32();
  for (std::uint32_t i = 0; i < peers; ++i) {
    cfg.peers.push_back(net::Ipv4Address{r.GetU32()});
  }
  cfg.iterations = r.GetU32();
  cfg.compute_per_iteration = r.GetU64();
  cfg.exit_when_done = r.GetBool();
  return cfg;
}

// Ring all-reduce for one 8-byte value: N-1 steps; in each step a rank
// sends what it received in the previous step (its own contribution in
// step 0), receives from the left, and accumulates.
class AllreduceRankProgram : public os::Program {
 public:
  // Registers: r3 listen fd, r4 right fd, r5 left fd, r6 io progress,
  // r7 ring step index.
  void Step(os::ProcessCtx& ctx) override {
    enum : std::uint64_t {
      kInit,
      kConnectStart,
      kConnect,
      kAccept,
      kBeginIteration,
      kSendStep,
      kRecvStep,
      kFinishStep,
      kVerify,
      kIdle,
    };
    AllreduceConfig cfg = ParseArgs(ctx);

    switch (ctx.Pc()) {
      case kInit: {
        SysResult fd = ctx.SocketTcp();
        if (!SysOk(fd) ||
            !SysOk(ctx.Bind(static_cast<os::Fd>(fd),
                            net::Endpoint{net::kAnyAddress, cfg.port})) ||
            !SysOk(ctx.Listen(static_cast<os::Fd>(fd), 4))) {
          ctx.ExitProcess(10);
          return;
        }
        ctx.Reg(3) = static_cast<std::uint64_t>(fd);
        ctx.Pc() = kConnectStart;
        break;
      }
      case kConnectStart: {
        SysResult fd = ctx.SocketTcp();
        if (!SysOk(fd)) {
          ctx.ExitProcess(11);
          return;
        }
        ctx.Reg(4) = static_cast<std::uint64_t>(fd);
        ctx.Pc() = kConnect;
        break;
      }
      case kConnect: {
        net::Endpoint right{cfg.peers[(cfg.rank + 1) % cfg.nranks],
                            cfg.port};
        switch (ConnectTo(ctx, static_cast<os::Fd>(ctx.Reg(4)), right)) {
          case IoStatus::kDone:
            ctx.Pc() = kAccept;
            break;
          case IoStatus::kBlocked:
            return;
          default:
            ctx.Close(static_cast<os::Fd>(ctx.Reg(4)));
            ctx.Pc() = kConnectStart;
            ctx.Sleep(10 * kMillisecond);
            return;
        }
        break;
      }
      case kAccept: {
        os::Fd left = -1;
        switch (AcceptOne(ctx, static_cast<os::Fd>(ctx.Reg(3)), &left)) {
          case IoStatus::kDone:
            ctx.Reg(5) = static_cast<std::uint64_t>(left);
            ctx.Pc() = kBeginIteration;
            break;
          case IoStatus::kBlocked:
            return;
          default:
            ctx.ExitProcess(12);
            return;
        }
        break;
      }
      case kBeginIteration: {
        std::uint64_t t = ctx.Mem().ReadU64(kStatusAddr);
        std::uint64_t contribution = AllreduceContribution(cfg.rank, t);
        ctx.Mem().WriteU64(kAccAddr, contribution);       // accumulator
        ctx.Mem().WriteU64(kAccAddr + 8, contribution);   // to_send
        ctx.Reg(7) = 0;  // ring step
        ctx.Reg(6) = 0;  // io progress
        ctx.Pc() = cfg.nranks > 1 ? kSendStep : kVerify;
        break;
      }
      case kSendStep: {
        std::uint64_t progress = ctx.Reg(6);
        IoStatus s = SendAll(ctx, static_cast<os::Fd>(ctx.Reg(4)),
                             kAccAddr + 8, 8, progress);
        ctx.Reg(6) = progress;
        if (s == IoStatus::kBlocked) return;
        if (s != IoStatus::kDone) {
          ctx.ExitProcess(13);
          return;
        }
        ctx.Reg(6) = 0;
        ctx.Pc() = kRecvStep;
        break;
      }
      case kRecvStep: {
        std::uint64_t progress = ctx.Reg(6);
        IoStatus s = RecvAll(ctx, static_cast<os::Fd>(ctx.Reg(5)),
                             kAccAddr + 16, 8, progress);
        ctx.Reg(6) = progress;
        if (s == IoStatus::kBlocked) return;
        if (s != IoStatus::kDone) {
          ctx.ExitProcess(14);
          return;
        }
        ctx.Reg(6) = 0;
        ctx.Pc() = kFinishStep;
        break;
      }
      case kFinishStep: {
        std::uint64_t incoming = ctx.Mem().ReadU64(kAccAddr + 16);
        ctx.Mem().WriteU64(kAccAddr, ctx.Mem().ReadU64(kAccAddr) +
                                         incoming);
        ctx.Mem().WriteU64(kAccAddr + 8, incoming);  // forward next step
        ctx.Reg(7) += 1;
        ctx.Pc() = (ctx.Reg(7) + 1 < cfg.nranks) ? kSendStep : kVerify;
        break;
      }
      case kVerify: {
        std::uint64_t t = ctx.Mem().ReadU64(kStatusAddr);
        std::uint64_t sum = ctx.Mem().ReadU64(kAccAddr);
        std::uint64_t mismatches = ctx.Mem().ReadU64(kStatusAddr + 8);
        if (sum != AllreduceExpected(cfg.nranks, t)) ++mismatches;
        ctx.Mem().WriteU64(kStatusAddr + 8, mismatches);
        ctx.Mem().WriteU64(kStatusAddr + 16, sum);
        ctx.ChargeCpu(cfg.compute_per_iteration);
        ctx.Mem().WriteU64(kStatusAddr, t + 1);
        if (t + 1 >= cfg.iterations) {
          ctx.Close(static_cast<os::Fd>(ctx.Reg(4)));
          ctx.Close(static_cast<os::Fd>(ctx.Reg(5)));
          ctx.Close(static_cast<os::Fd>(ctx.Reg(3)));
          if (cfg.exit_when_done) {
            ctx.ExitProcess(0);
          } else {
            ctx.Pc() = kIdle;
          }
          return;
        }
        ctx.Pc() = kBeginIteration;
        break;
      }
      case kIdle: {
        ctx.Sleep(kSecond);
        break;
      }
    }
  }
};

}  // namespace

std::uint64_t AllreduceContribution(std::uint32_t rank, std::uint64_t t) {
  return (static_cast<std::uint64_t>(rank) + 1) * 1000003ull + t * 17ull;
}

std::uint64_t AllreduceExpected(std::uint32_t nranks, std::uint64_t t) {
  std::uint64_t sum = 0;
  for (std::uint32_t r = 0; r < nranks; ++r) {
    sum += AllreduceContribution(r, t);
  }
  return sum;
}

cruz::Bytes AllreduceArgs(const AllreduceConfig& config) {
  cruz::ByteWriter w;
  w.PutU32(config.rank);
  w.PutU32(config.nranks);
  w.PutU16(config.port);
  w.PutU32(static_cast<std::uint32_t>(config.peers.size()));
  for (net::Ipv4Address peer : config.peers) w.PutU32(peer.value);
  w.PutU32(config.iterations);
  w.PutU64(config.compute_per_iteration);
  w.PutBool(config.exit_when_done);
  return w.Take();
}

AllreduceStatus ReadAllreduceStatus(const os::Process& proc) {
  AllreduceStatus s;
  s.iterations = proc.memory().ReadU64(kStatusAddr);
  s.mismatches = proc.memory().ReadU64(kStatusAddr + 8);
  s.last_sum = proc.memory().ReadU64(kStatusAddr + 16);
  return s;
}

void RegisterCollectivesProgram() {
  static const bool done = [] {
    os::ProgramRegistry::Instance().Register(
        "cruz.allreduce_rank",
        [] { return std::make_unique<AllreduceRankProgram>(); });
    return true;
  }();
  (void)done;
}

}  // namespace cruz::apps
