// Mini message-passing helpers for state-machine programs.
//
// The paper's point about message-passing applications is that Cruz needs
// NO changes to the library or the application (§5): checkpoint-restart
// works underneath arbitrary TCP-based communication layers. This header
// is that communication layer for our simulated programs: whole-message
// send/receive over stream sockets, with transfer progress kept in a
// caller-supplied register so a checkpoint can land anywhere inside a
// message and the restored process resumes the transfer exactly where it
// stopped. Nothing in here knows checkpoints exist.
#pragma once

#include <cstdint>

#include "os/program.h"

namespace cruz::apps {

enum class IoStatus {
  kDone,     // the full message moved
  kBlocked,  // would block; the thread has been parked, re-enter later
  kError,    // connection failed (peer reset, timeout, ...)
  kEof,      // clean remote close mid-receive
};

// Sends bytes [progress, len) of the message stored at `addr` in process
// memory. `progress` must live in a register (or checkpointed memory);
// it advances as bytes are accepted. On kDone, progress == len and the
// caller should reset it for the next message.
IoStatus SendAll(os::ProcessCtx& ctx, os::Fd fd, std::uint64_t addr,
                 std::uint64_t len, std::uint64_t& progress);

// Receives bytes [progress, len) of a message into `addr`.
IoStatus RecvAll(os::ProcessCtx& ctx, os::Fd fd, std::uint64_t addr,
                 std::uint64_t len, std::uint64_t& progress);

// Drives a nonblocking connect to completion: returns kDone once
// established, kBlocked while in progress (thread parked), kError on
// refusal/timeout.
IoStatus ConnectTo(os::ProcessCtx& ctx, os::Fd fd, net::Endpoint remote);

// Accepts one connection on a listening fd: on kDone the new fd is stored
// in `out_fd`.
IoStatus AcceptOne(os::ProcessCtx& ctx, os::Fd listen_fd, os::Fd* out_fd);

}  // namespace cruz::apps
