#include "apps/kvstore.h"

#include <memory>

#include "apps/minimsg.h"
#include "apps/programs.h"

namespace cruz::apps {

namespace {

// Open-addressed hash table in process memory: 4096 slots of 16 bytes
// ([key+1 (0 = empty)][value]). No deletion (the workload never needs it).
constexpr std::uint64_t kTableAddr = 0x500000;
constexpr std::uint64_t kTableSlots = 4096;
// Request/response staging buffer.
constexpr std::uint64_t kIoAddr = 0x380000;

std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t SlotAddr(std::uint64_t slot) {
  return kTableAddr + (slot % kTableSlots) * 16;
}

// Looks up `key`; returns the slot address holding it or the first empty
// slot (insert position). The table is sized so it never fills.
std::uint64_t FindSlot(os::ProcessCtx& ctx, std::uint32_t key) {
  std::uint64_t slot = Mix(key) % kTableSlots;
  for (std::uint64_t probe = 0; probe < kTableSlots; ++probe) {
    std::uint64_t addr = SlotAddr(slot + probe);
    std::uint64_t stored = ctx.Mem().ReadU64(addr);
    if (stored == 0 || stored == key + 1ull) return addr;
  }
  return SlotAddr(slot);  // full (cannot happen with this workload)
}

// Decodes the request staged at `io_addr`, executes it against the table
// and stages the response at the same address. Shared by the serial loop
// and the per-connection worker threads (the table is process-global; the
// single-threaded simulation makes each Step burst atomic).
void ServeRequest(os::ProcessCtx& ctx, std::uint64_t io_addr) {
  cruz::Bytes req = ctx.Mem().ReadBytes(io_addr, kKvRequestSize);
  cruz::ByteReader r(req);
  std::uint8_t op = r.GetU8();
  std::uint32_t key = r.GetU32();
  std::uint64_t value = r.GetU64();
  std::uint8_t status = 0;
  std::uint64_t result = 0;
  std::uint64_t slot = FindSlot(ctx, key);
  if (op == 1) {  // PUT
    ctx.Mem().WriteU64(slot, key + 1ull);
    ctx.Mem().WriteU64(slot + 8, value);
    status = 1;
    result = value;
  } else {  // GET
    if (ctx.Mem().ReadU64(slot) == key + 1ull) {
      status = 1;
      result = ctx.Mem().ReadU64(slot + 8);
    }
  }
  cruz::ByteWriter w;
  w.PutU8(status);
  w.PutU64(result);
  ctx.Mem().WriteBytes(io_addr, w.data());
  std::uint64_t served = ctx.Mem().ReadU64(kStatusAddr);
  ctx.Mem().WriteU64(kStatusAddr, served + 1);
  ctx.ChargeCpu(20 * kMicrosecond);  // request processing
}

// ---------------------------------------------------------------------------
// cruz.kv_server
// ---------------------------------------------------------------------------

class KvServerProgram : public os::Program {
 public:
  // Registers (main thread): r3 listen fd, r4 conn fd, r5 threaded flag,
  // r6 io progress. Worker threads (threaded mode): r3 conn fd, r6 io
  // progress; each worker stages io at kIoAddr + tid * 64.
  void Step(os::ProcessCtx& ctx) override {
    enum : std::uint64_t {
      kInit,
      kAccept,
      kReadRequest,
      kWriteResponse,
      // Thread-per-connection mode (r5 != 0): the main thread stays in
      // kAccept and spawns one worker per accepted connection.
      kWorkerInit,
      kWorkerRead,
      kWorkerWrite,
    };
    switch (ctx.Pc()) {
      case kInit: {
        cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
        cruz::ByteReader r(args);
        std::uint16_t port = r.GetU16();
        // Optional trailing byte (absent in legacy args): serve each
        // connection on its own thread instead of serially.
        bool threaded = !r.AtEnd() && r.GetU8() != 0;
        SysResult fd = ctx.SocketTcp();
        if (!SysOk(fd) ||
            !SysOk(ctx.Bind(static_cast<os::Fd>(fd),
                            net::Endpoint{net::kAnyAddress, port})) ||
            !SysOk(ctx.Listen(static_cast<os::Fd>(fd), threaded ? 4096 : 8))) {
          ctx.ExitProcess(10);
          return;
        }
        ctx.Reg(3) = static_cast<std::uint64_t>(fd);
        ctx.Reg(5) = threaded ? 1 : 0;
        ctx.Pc() = kAccept;
        break;
      }
      case kAccept: {
        os::Fd conn = -1;
        switch (AcceptOne(ctx, static_cast<os::Fd>(ctx.Reg(3)), &conn)) {
          case IoStatus::kDone:
            if (ctx.Reg(5) != 0) {  // threaded: hand off, keep accepting
              ctx.SpawnThread(kWorkerInit, static_cast<std::uint64_t>(conn));
              break;
            }
            ctx.Reg(4) = static_cast<std::uint64_t>(conn);
            ctx.Reg(6) = 0;
            ctx.Pc() = kReadRequest;
            break;
          case IoStatus::kBlocked:
            return;
          default:
            ctx.ExitProcess(11);
            return;
        }
        break;
      }
      case kReadRequest: {
        std::uint64_t progress = ctx.Reg(6);
        IoStatus s = RecvAll(ctx, static_cast<os::Fd>(ctx.Reg(4)), kIoAddr,
                             kKvRequestSize, progress);
        ctx.Reg(6) = progress;
        if (s == IoStatus::kBlocked) return;
        if (s == IoStatus::kEof) {  // client disconnected: next client
          ctx.Close(static_cast<os::Fd>(ctx.Reg(4)));
          ctx.Reg(6) = 0;
          ctx.Pc() = kAccept;
          return;
        }
        if (s != IoStatus::kDone) {
          ctx.ExitProcess(12);
          return;
        }
        ServeRequest(ctx, kIoAddr);
        ctx.Reg(6) = 0;
        ctx.Pc() = kWriteResponse;
        break;
      }
      case kWriteResponse: {
        std::uint64_t progress = ctx.Reg(6);
        IoStatus s = SendAll(ctx, static_cast<os::Fd>(ctx.Reg(4)), kIoAddr,
                             kKvResponseSize, progress);
        ctx.Reg(6) = progress;
        if (s == IoStatus::kBlocked) return;
        if (s != IoStatus::kDone) {
          ctx.ExitProcess(13);
          return;
        }
        ctx.Reg(6) = 0;
        ctx.Pc() = kReadRequest;
        break;
      }
      case kWorkerInit: {
        ctx.Reg(3) = ctx.Reg(1);  // conn fd passed as the thread arg
        ctx.Reg(6) = 0;
        ctx.Pc() = kWorkerRead;
        break;
      }
      case kWorkerRead: {
        std::uint64_t io = kIoAddr + ctx.tid() * 64;
        std::uint64_t progress = ctx.Reg(6);
        IoStatus s = RecvAll(ctx, static_cast<os::Fd>(ctx.Reg(3)), io,
                             kKvRequestSize, progress);
        ctx.Reg(6) = progress;
        if (s == IoStatus::kBlocked) return;
        if (s != IoStatus::kDone) {  // disconnect or reset: retire worker
          ctx.Close(static_cast<os::Fd>(ctx.Reg(3)));
          ctx.ExitThread();
          return;
        }
        ServeRequest(ctx, io);
        ctx.Reg(6) = 0;
        ctx.Pc() = kWorkerWrite;
        break;
      }
      case kWorkerWrite: {
        std::uint64_t io = kIoAddr + ctx.tid() * 64;
        std::uint64_t progress = ctx.Reg(6);
        IoStatus s = SendAll(ctx, static_cast<os::Fd>(ctx.Reg(3)), io,
                             kKvResponseSize, progress);
        ctx.Reg(6) = progress;
        if (s == IoStatus::kBlocked) return;
        if (s != IoStatus::kDone) {
          ctx.Close(static_cast<os::Fd>(ctx.Reg(3)));
          ctx.ExitThread();
          return;
        }
        ctx.Reg(6) = 0;
        ctx.Pc() = kWorkerRead;
        break;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// cruz.kv_client — issues a deterministic op stream and verifies GETs
// against its own mirror of the table (also in checkpointable memory).
// ---------------------------------------------------------------------------

class KvClientProgram : public os::Program {
 public:
  // Registers: r3 fd, r6 io progress. The op index lives in status memory
  // so the whole client is checkpoint-safe.
  void Step(os::ProcessCtx& ctx) override {
    enum : std::uint64_t {
      kInit,
      kConnect,
      kIssue,
      kSendRequest,
      kRecvResponse,
      kVerify,
    };
    cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
    cruz::ByteReader r(args);
    net::Endpoint server{net::Ipv4Address{r.GetU32()}, r.GetU16()};
    std::uint32_t operations = r.GetU32();
    std::uint64_t seed = r.GetU64();
    DurationNs think = r.GetU64();

    switch (ctx.Pc()) {
      case kInit: {
        SysResult fd = ctx.SocketTcp();
        if (!SysOk(fd)) {
          ctx.ExitProcess(1);
          return;
        }
        ctx.Reg(3) = static_cast<std::uint64_t>(fd);
        ctx.Pc() = kConnect;
        break;
      }
      case kConnect: {
        switch (ConnectTo(ctx, static_cast<os::Fd>(ctx.Reg(3)), server)) {
          case IoStatus::kDone:
            ctx.Reg(6) = 0;
            ctx.Pc() = kIssue;
            break;
          case IoStatus::kBlocked:
            return;
          default:
            ctx.Close(static_cast<os::Fd>(ctx.Reg(3)));
            ctx.Pc() = kInit;
            ctx.Sleep(10 * kMillisecond);
            return;
        }
        break;
      }
      case kIssue: {
        std::uint64_t index = ctx.Mem().ReadU64(kStatusAddr);
        std::uint64_t h = Mix(seed ^ Mix(index));
        bool is_put = (h & 3) != 0;  // 75% puts so GETs usually hit
        std::uint32_t key = static_cast<std::uint32_t>(h >> 8) % 512;
        std::uint64_t value = Mix(h);
        cruz::ByteWriter w;
        w.PutU8(is_put ? 1 : 2);
        w.PutU32(key);
        w.PutU64(is_put ? value : 0);
        ctx.Mem().WriteBytes(kIoAddr, w.data());
        // Issue timestamp for the latency sample reported in kVerify;
        // lives in status memory so it survives a checkpoint/restore.
        // The client is closed-loop, so intended send time == issue
        // time (open-loop intended schedules live in load::LoadGen).
        ctx.Mem().WriteU64(kStatusAddr + 16, ctx.Now());
        ctx.Reg(6) = 0;
        ctx.Pc() = kSendRequest;
        break;
      }
      case kSendRequest: {
        std::uint64_t progress = ctx.Reg(6);
        IoStatus s = SendAll(ctx, static_cast<os::Fd>(ctx.Reg(3)), kIoAddr,
                             kKvRequestSize, progress);
        ctx.Reg(6) = progress;
        if (s == IoStatus::kBlocked) return;
        if (s != IoStatus::kDone) {
          ctx.ExitProcess(2);
          return;
        }
        ctx.Reg(6) = 0;
        ctx.Pc() = kRecvResponse;
        break;
      }
      case kRecvResponse: {
        std::uint64_t progress = ctx.Reg(6);
        IoStatus s = RecvAll(ctx, static_cast<os::Fd>(ctx.Reg(3)),
                             kIoAddr + 64, kKvResponseSize, progress);
        ctx.Reg(6) = progress;
        if (s == IoStatus::kBlocked) return;
        if (s != IoStatus::kDone) {
          ctx.ExitProcess(3);
          return;
        }
        ctx.Reg(6) = 0;
        ctx.Pc() = kVerify;
        break;
      }
      case kVerify: {
        std::uint64_t index = ctx.Mem().ReadU64(kStatusAddr);
        std::uint64_t h = Mix(seed ^ Mix(index));
        bool is_put = (h & 3) != 0;
        std::uint32_t key = static_cast<std::uint32_t>(h >> 8) % 512;
        std::uint64_t value = Mix(h);
        cruz::Bytes resp = ctx.Mem().ReadBytes(kIoAddr + 64,
                                               kKvResponseSize);
        cruz::ByteReader rr(resp);
        std::uint8_t status = rr.GetU8();
        std::uint64_t result = rr.GetU64();
        std::uint64_t failures = ctx.Mem().ReadU64(kStatusAddr + 8);
        std::uint64_t slot = FindSlot(ctx, key);  // client-side mirror
        if (is_put) {
          if (status != 1 || result != value) ++failures;
          ctx.Mem().WriteU64(slot, key + 1ull);
          ctx.Mem().WriteU64(slot + 8, value);
        } else {
          bool known = ctx.Mem().ReadU64(slot) == key + 1ull;
          if (known) {
            if (status != 1 || result != ctx.Mem().ReadU64(slot + 8)) {
              ++failures;
            }
          } else if (status != 0) {
            ++failures;
          }
        }
        ctx.Mem().WriteU64(kStatusAddr + 8, failures);
        ctx.Mem().WriteU64(kStatusAddr, index + 1);
        // Same measurement path as LoadGen: a sampled kv.op instant on
        // the trace plus the node's latency sink (no-op during replay).
        ctx.ReportOpLatency(seed, ctx.Mem().ReadU64(kStatusAddr + 16));
        if (index + 1 >= operations) {
          ctx.Close(static_cast<os::Fd>(ctx.Reg(3)));
          ctx.ExitProcess(0);
          return;
        }
        ctx.Pc() = kIssue;
        if (think > 0) {
          ctx.Sleep(think);
          return;
        }
        break;
      }
    }
  }
};

}  // namespace

cruz::Bytes KvServerArgs(std::uint16_t port, bool threaded) {
  cruz::ByteWriter w;
  w.PutU16(port);
  // Legacy args stay byte-identical: the mode byte is only appended when
  // set, so serial-mode images and goldens are unchanged.
  if (threaded) w.PutU8(1);
  return w.Take();
}

cruz::Bytes KvClientArgs(net::Ipv4Address server_ip, std::uint16_t port,
                         std::uint32_t operations, std::uint64_t seed,
                         DurationNs think_time) {
  cruz::ByteWriter w;
  w.PutU32(server_ip.value);
  w.PutU16(port);
  w.PutU32(operations);
  w.PutU64(seed);
  w.PutU64(think_time);
  return w.Take();
}

KvClientStatus ReadKvClientStatus(const os::Process& proc) {
  KvClientStatus s;
  s.operations_done = proc.memory().ReadU64(kStatusAddr);
  s.verification_failures = proc.memory().ReadU64(kStatusAddr + 8);
  return s;
}

std::uint64_t ReadKvServerRequests(const os::Process& proc) {
  return proc.memory().ReadU64(kStatusAddr);
}

void RegisterKvPrograms() {
  static const bool done = [] {
    auto& reg = os::ProgramRegistry::Instance();
    reg.Register("cruz.kv_server",
                 [] { return std::make_unique<KvServerProgram>(); });
    reg.Register("cruz.kv_client",
                 [] { return std::make_unique<KvClientProgram>(); });
    return true;
  }();
  (void)done;
}

}  // namespace cruz::apps
