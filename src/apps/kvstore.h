// A small in-memory key-value database served over TCP.
//
// The paper's motivation names databases among the "complex applications"
// the enhanced Zap can checkpoint and restart (§1, §2). This is that
// workload class in miniature: a request/response server whose entire
// table lives in checkpointable process memory (open-addressed hash
// table), and a client that mirrors the expected contents and verifies
// every GET. A checkpoint can land between a request and its response;
// transparency means the client still sees exactly-once, consistent
// semantics.
//
// Wire protocol (fixed size, binary):
//   request : u8 op (1=PUT, 2=GET), u32 key, u64 value (PUT only; 0 for GET)
//   response: u8 status (1=ok, 0=missing), u64 value
//
// Programs:
//   cruz.kv_server — args: u16 port [, u8 threaded]. Serial by default
//                    (one connection at a time, as the original tests
//                    assume); with the threaded byte set, each accepted
//                    connection is served by its own thread so an
//                    open-loop load generator can hold many connections
//                    concurrently.
//   cruz.kv_client — args: u32 ip, u16 port, u32 operations, u64 seed,
//                    u64 think_time_ns
//
// Status (kStatusAddr): server: +0 requests served;
// client: +0 operations done, +8 verification failures.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "net/address.h"
#include "os/program.h"

namespace cruz::apps {

constexpr std::size_t kKvRequestSize = 13;
constexpr std::size_t kKvResponseSize = 9;

cruz::Bytes KvServerArgs(std::uint16_t port, bool threaded = false);
cruz::Bytes KvClientArgs(net::Ipv4Address server_ip, std::uint16_t port,
                         std::uint32_t operations, std::uint64_t seed,
                         DurationNs think_time);

struct KvClientStatus {
  std::uint64_t operations_done = 0;
  std::uint64_t verification_failures = 0;
};
KvClientStatus ReadKvClientStatus(const os::Process& proc);
std::uint64_t ReadKvServerRequests(const os::Process& proc);

// Registers both programs (idempotent).
void RegisterKvPrograms();

}  // namespace cruz::apps
