#include "apps/programs.h"

#include <algorithm>
#include <memory>

#include "common/sysresult.h"

namespace cruz::apps {

using os::Fd;
using os::ProcessCtx;

namespace {

// Register bank conventions shared by the programs below:
//   r0 = pc, r1 = args addr, r2 = args len, r3.. = program-specific.

Fd FdReg(ProcessCtx& ctx, int reg) { return static_cast<Fd>(ctx.Reg(reg)); }

// ---------------------------------------------------------------------------
// cruz.counter
// ---------------------------------------------------------------------------

class CounterProgram : public os::Program {
 public:
  void Step(ProcessCtx& ctx) override {
    if (ctx.Pc() == 0) {
      cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
      cruz::ByteReader r(args);
      ctx.Reg(3) = r.GetU64();
      ctx.Pc() = 1;
      return;
    }
    std::uint64_t count = ctx.Mem().ReadU64(kStatusAddr);
    ctx.Mem().WriteU64(kStatusAddr, count + 1);
    ctx.ChargeCpu(10 * kMicrosecond);
    if (count + 1 >= ctx.Reg(3)) ctx.ExitProcess(0);
  }
};

// ---------------------------------------------------------------------------
// cruz.echo_server — loops forever, serving one connection at a time.
// ---------------------------------------------------------------------------

class EchoServerProgram : public os::Program {
 public:
  void Step(ProcessCtx& ctx) override {
    enum : std::uint64_t { kInit, kAccept, kEcho };
    switch (ctx.Pc()) {
      case kInit: {
        cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
        cruz::ByteReader r(args);
        std::uint16_t port = r.GetU16();
        SysResult fd = ctx.SocketTcp();
        if (!SysOk(fd) ||
            !SysOk(ctx.Bind(static_cast<Fd>(fd),
                            net::Endpoint{net::kAnyAddress, port})) ||
            !SysOk(ctx.Listen(static_cast<Fd>(fd), 16))) {
          ctx.ExitProcess(1);
          return;
        }
        ctx.Reg(3) = static_cast<std::uint64_t>(fd);
        ctx.Pc() = kAccept;
        break;
      }
      case kAccept: {
        SysResult conn = ctx.Accept(FdReg(ctx, 3));
        if (SysErrno(conn) == CRUZ_EAGAIN) {
          ctx.BlockOnReadable(FdReg(ctx, 3));
          return;
        }
        if (!SysOk(conn)) {
          ctx.ExitProcess(2);
          return;
        }
        ctx.Reg(4) = static_cast<std::uint64_t>(conn);
        ctx.Pc() = kEcho;
        break;
      }
      case kEcho: {
        cruz::Bytes buf;
        SysResult n = ctx.RecvTcp(FdReg(ctx, 4), buf, 8192);
        if (SysErrno(n) == CRUZ_EAGAIN) {
          ctx.BlockOnReadable(FdReg(ctx, 4));
          return;
        }
        if (n <= 0) {  // EOF or error: back to accepting
          ctx.Close(FdReg(ctx, 4));
          ctx.Pc() = kAccept;
          return;
        }
        ctx.SendTcp(FdReg(ctx, 4), buf);
        std::uint64_t echoed = ctx.Mem().ReadU64(kStatusAddr);
        ctx.Mem().WriteU64(kStatusAddr,
                           echoed + static_cast<std::uint64_t>(n));
        break;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// cruz.echo_client — request/response loop with verification.
//
// Memory layout: kStatusAddr+0 = messages completed, +8 = mismatches.
// Registers: r3 = fd, r4 = message index, r5 = bytes echoed back so far
// for the current message, r6 = bytes sent for the current message.
// ---------------------------------------------------------------------------

class EchoClientProgram : public os::Program {
 public:
  void Step(ProcessCtx& ctx) override {
    enum : std::uint64_t { kInit, kConnect, kSend, kRecv, kPause };
    cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
    cruz::ByteReader r(args);
    net::Endpoint server{net::Ipv4Address{r.GetU32()}, r.GetU16()};
    std::uint32_t messages = r.GetU32();
    std::uint32_t msg_len = r.GetU32();
    DurationNs interval = r.GetU64();

    switch (ctx.Pc()) {
      case kInit: {
        SysResult fd = ctx.SocketTcp();
        if (!SysOk(fd)) {
          ctx.ExitProcess(1);
          return;
        }
        ctx.Reg(3) = static_cast<std::uint64_t>(fd);
        ctx.Pc() = kConnect;
        break;
      }
      case kConnect: {
        SysResult res = ctx.Connect(FdReg(ctx, 3), server);
        if (res == 0) {
          ctx.Pc() = kSend;
          ctx.Reg(5) = 0;
          ctx.Reg(6) = 0;
          return;
        }
        Errno e = SysErrno(res);
        if (e == CRUZ_EINPROGRESS || e == CRUZ_EALREADY) {
          ctx.BlockOnWritable(FdReg(ctx, 3));
          return;
        }
        ctx.ExitProcess(static_cast<int>(e));
        break;
      }
      case kSend: {
        // Message i's bytes are PatternByte(i * msg_len + k).
        std::uint64_t base = ctx.Reg(4) * msg_len;
        cruz::Bytes msg(msg_len - static_cast<std::size_t>(ctx.Reg(6)));
        for (std::size_t k = 0; k < msg.size(); ++k) {
          msg[k] = PatternByte(base + ctx.Reg(6) + k);
        }
        SysResult n = ctx.SendTcp(FdReg(ctx, 3), msg);
        if (SysErrno(n) == CRUZ_EAGAIN) {
          ctx.BlockOnWritable(FdReg(ctx, 3));
          return;
        }
        if (n < 0) {
          ctx.ExitProcess(static_cast<int>(SysErrno(n)));
          return;
        }
        ctx.Reg(6) += static_cast<std::uint64_t>(n);
        if (ctx.Reg(6) >= msg_len) ctx.Pc() = kRecv;
        break;
      }
      case kRecv: {
        cruz::Bytes buf;
        SysResult n = ctx.RecvTcp(FdReg(ctx, 3), buf, 8192);
        if (SysErrno(n) == CRUZ_EAGAIN) {
          ctx.BlockOnReadable(FdReg(ctx, 3));
          return;
        }
        if (n <= 0) {
          ctx.ExitProcess(n == 0 ? 10 : static_cast<int>(SysErrno(n)));
          return;
        }
        std::uint64_t base = ctx.Reg(4) * msg_len;
        std::uint64_t mismatches = ctx.Mem().ReadU64(kStatusAddr + 8);
        for (std::size_t k = 0; k < buf.size(); ++k) {
          if (buf[k] != PatternByte(base + ctx.Reg(5) + k)) ++mismatches;
        }
        ctx.Mem().WriteU64(kStatusAddr + 8, mismatches);
        ctx.Reg(5) += buf.size();
        if (ctx.Reg(5) >= msg_len) {
          ctx.Reg(4) += 1;
          ctx.Mem().WriteU64(kStatusAddr, ctx.Reg(4));
          ctx.Reg(5) = 0;
          ctx.Reg(6) = 0;
          if (ctx.Reg(4) >= messages) {
            ctx.Close(FdReg(ctx, 3));
            ctx.ExitProcess(0);
            return;
          }
          ctx.Pc() = kPause;
        }
        break;
      }
      case kPause: {
        ctx.Pc() = kSend;
        if (interval > 0) {
          ctx.Sleep(interval);
          return;
        }
        break;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// cruz.stream_sender — sends the deterministic pattern at maximum rate.
//
// Memory: kStatusAddr = bytes sent. Registers: r3 = fd.
// ---------------------------------------------------------------------------

class StreamSenderProgram : public os::Program {
 public:
  void Step(ProcessCtx& ctx) override {
    enum : std::uint64_t { kInit, kConnect, kStream };
    cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
    cruz::ByteReader r(args);
    net::Endpoint server{net::Ipv4Address{r.GetU32()}, r.GetU16()};
    std::uint64_t total = r.GetU64();

    switch (ctx.Pc()) {
      case kInit: {
        SysResult fd = ctx.SocketTcp();
        if (!SysOk(fd)) {
          ctx.ExitProcess(1);
          return;
        }
        ctx.Reg(3) = static_cast<std::uint64_t>(fd);
        ctx.Pc() = kConnect;
        break;
      }
      case kConnect: {
        SysResult res = ctx.Connect(FdReg(ctx, 3), server);
        if (res == 0) {
          ctx.Pc() = kStream;
          return;
        }
        Errno e = SysErrno(res);
        if (e == CRUZ_EINPROGRESS || e == CRUZ_EALREADY) {
          ctx.BlockOnWritable(FdReg(ctx, 3));
          return;
        }
        ctx.ExitProcess(static_cast<int>(e));
        break;
      }
      case kStream: {
        std::uint64_t sent = ctx.Mem().ReadU64(kStatusAddr);
        if (total != 0 && sent >= total) {
          ctx.Close(FdReg(ctx, 3));
          ctx.ExitProcess(0);
          return;
        }
        std::size_t chunk = 8192;
        if (total != 0) {
          chunk = std::min<std::uint64_t>(chunk, total - sent);
        }
        cruz::Bytes buf(chunk);
        for (std::size_t k = 0; k < buf.size(); ++k) {
          buf[k] = PatternByte(sent + k);
        }
        SysResult n = ctx.SendTcp(FdReg(ctx, 3), buf);
        if (SysErrno(n) == CRUZ_EAGAIN) {
          ctx.BlockOnWritable(FdReg(ctx, 3));
          return;
        }
        if (n < 0) {
          ctx.ExitProcess(static_cast<int>(SysErrno(n)));
          return;
        }
        ctx.Mem().WriteU64(kStatusAddr, sent + static_cast<std::uint64_t>(n));
        break;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// cruz.stream_receiver — accepts one stream and verifies the pattern.
//
// Memory: kStatusAddr = bytes received, +8 = mismatches. Registers:
// r3 = listen fd, r4 = conn fd.
// ---------------------------------------------------------------------------

class StreamReceiverProgram : public os::Program {
 public:
  void Step(ProcessCtx& ctx) override {
    enum : std::uint64_t { kInit, kAccept, kDrain };
    cruz::Bytes args0 = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
    cruz::ByteReader args_reader(args0);
    std::uint16_t port = args_reader.GetU16();
    DurationNs burst_interval = args_reader.GetU64();
    std::uint32_t burst_bytes = args_reader.GetU32();
    switch (ctx.Pc()) {
      case kInit: {
        SysResult fd = ctx.SocketTcp();
        if (!SysOk(fd) ||
            !SysOk(ctx.Bind(static_cast<Fd>(fd),
                            net::Endpoint{net::kAnyAddress, port})) ||
            !SysOk(ctx.Listen(static_cast<Fd>(fd), 4))) {
          ctx.ExitProcess(1);
          return;
        }
        ctx.Reg(3) = static_cast<std::uint64_t>(fd);
        ctx.Pc() = kAccept;
        break;
      }
      case kAccept: {
        SysResult conn = ctx.Accept(FdReg(ctx, 3));
        if (SysErrno(conn) == CRUZ_EAGAIN) {
          ctx.BlockOnReadable(FdReg(ctx, 3));
          return;
        }
        if (!SysOk(conn)) {
          ctx.ExitProcess(2);
          return;
        }
        ctx.Reg(4) = static_cast<std::uint64_t>(conn);
        ctx.Pc() = kDrain;
        break;
      }
      case kDrain: {
        // One drain burst: up to burst_bytes across multiple reads.
        std::uint32_t drained = 0;
        for (;;) {
          cruz::Bytes buf;
          std::size_t want = std::min<std::uint32_t>(
              65536, burst_bytes - drained);
          SysResult n = ctx.RecvTcp(FdReg(ctx, 4), buf, want);
          if (SysErrno(n) == CRUZ_EAGAIN) {
            if (burst_interval > 0) {
              ctx.Sleep(burst_interval);  // bursty consumer
            } else {
              ctx.BlockOnReadable(FdReg(ctx, 4));
            }
            return;
          }
          if (n == 0) {  // sender closed
            ctx.Close(FdReg(ctx, 4));
            ctx.ExitProcess(0);
            return;
          }
          if (n < 0) {
            ctx.ExitProcess(static_cast<int>(SysErrno(n)));
            return;
          }
          std::uint64_t received = ctx.Mem().ReadU64(kStatusAddr);
          std::uint64_t mismatches = ctx.Mem().ReadU64(kStatusAddr + 8);
          for (std::size_t k = 0; k < buf.size(); ++k) {
            if (buf[k] != PatternByte(received + k)) ++mismatches;
          }
          ctx.Mem().WriteU64(kStatusAddr,
                             received + static_cast<std::uint64_t>(n));
          ctx.Mem().WriteU64(kStatusAddr + 8, mismatches);
          drained += static_cast<std::uint32_t>(n);
          if (drained >= burst_bytes) {
            if (burst_interval > 0) {
              ctx.Sleep(burst_interval);
            }
            return;
          }
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// cruz.sysbench — a loop mixing computation with getpid() syscalls, used
// to measure Zap's interposition overhead (paper §6: < 0.5%).
// ---------------------------------------------------------------------------

class SysbenchProgram : public os::Program {
 public:
  void Step(ProcessCtx& ctx) override {
    cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
    cruz::ByteReader r(args);
    std::uint64_t iterations = r.GetU64();
    DurationNs cpu = r.GetU64();
    std::uint32_t syscalls = r.GetU32();
    std::uint64_t done = ctx.Mem().ReadU64(kStatusAddr);
    if (done >= iterations) {
      ctx.ExitProcess(0);
      return;
    }
    for (std::uint32_t i = 0; i < syscalls; ++i) {
      ctx.Getpid();
    }
    ctx.ChargeCpu(cpu);
    ctx.Mem().WriteU64(kStatusAddr, done + 1);
  }
};

}  // namespace

void RegisterPrograms() {
  static const bool done = [] {
    auto& reg = os::ProgramRegistry::Instance();
    reg.Register("cruz.counter",
                 [] { return std::make_unique<CounterProgram>(); });
    reg.Register("cruz.echo_server",
                 [] { return std::make_unique<EchoServerProgram>(); });
    reg.Register("cruz.echo_client",
                 [] { return std::make_unique<EchoClientProgram>(); });
    reg.Register("cruz.stream_sender",
                 [] { return std::make_unique<StreamSenderProgram>(); });
    reg.Register("cruz.stream_receiver",
                 [] { return std::make_unique<StreamReceiverProgram>(); });
    reg.Register("cruz.sysbench",
                 [] { return std::make_unique<SysbenchProgram>(); });
    return true;
  }();
  (void)done;
}

cruz::Bytes CounterArgs(std::uint64_t iterations) {
  cruz::ByteWriter w;
  w.PutU64(iterations);
  return w.Take();
}

cruz::Bytes EchoServerArgs(std::uint16_t port) {
  cruz::ByteWriter w;
  w.PutU16(port);
  return w.Take();
}

cruz::Bytes EchoClientArgs(net::Ipv4Address server_ip, std::uint16_t port,
                           std::uint32_t messages, std::uint32_t msg_len,
                           DurationNs interval) {
  cruz::ByteWriter w;
  w.PutU32(server_ip.value);
  w.PutU16(port);
  w.PutU32(messages);
  w.PutU32(msg_len);
  w.PutU64(interval);
  return w.Take();
}

cruz::Bytes StreamSenderArgs(net::Ipv4Address server_ip, std::uint16_t port,
                             std::uint64_t total_bytes) {
  cruz::ByteWriter w;
  w.PutU32(server_ip.value);
  w.PutU16(port);
  w.PutU64(total_bytes);
  return w.Take();
}

cruz::Bytes StreamReceiverArgs(std::uint16_t port,
                               DurationNs burst_interval,
                               std::uint32_t burst_bytes) {
  cruz::ByteWriter w;
  w.PutU16(port);
  w.PutU64(burst_interval);
  w.PutU32(burst_bytes);
  return w.Take();
}

cruz::Bytes SysbenchArgs(std::uint64_t iterations,
                         DurationNs cpu_per_iteration,
                         std::uint32_t syscalls_per_iteration) {
  cruz::ByteWriter w;
  w.PutU64(iterations);
  w.PutU64(cpu_per_iteration);
  w.PutU32(syscalls_per_iteration);
  return w.Take();
}

EchoClientStatus ReadEchoClientStatus(const os::Process& proc) {
  EchoClientStatus s;
  s.messages_done = proc.memory().ReadU64(kStatusAddr);
  s.mismatches = proc.memory().ReadU64(kStatusAddr + 8);
  return s;
}

StreamStatus ReadStreamStatus(const os::Process& proc) {
  StreamStatus s;
  s.bytes = proc.memory().ReadU64(kStatusAddr);
  s.mismatches = proc.memory().ReadU64(kStatusAddr + 8);
  return s;
}

std::uint64_t ReadCounter(const os::Process& proc) {
  return proc.memory().ReadU64(kStatusAddr);
}

}  // namespace cruz::apps
