// Ring collectives over plain TCP — an MPI-style workload.
//
// The paper's coordinated checkpoint works "for general TCP-based
// applications (including MPI and PVM applications) without any changes
// to applications or libraries" (§2). This program exercises exactly that
// pattern: every iteration performs a ring all-reduce (the communication
// kernel of MPI_Allreduce) where each rank contributes a deterministic
// value and verifies the reduced sum against the closed-form result. Any
// lost, duplicated, or reordered message — e.g. from a checkpoint landing
// mid-collective — would corrupt the sum and be counted as a mismatch.
//
// Program name: "cruz.allreduce_rank".
// Status (kStatusAddr): +0 iterations completed, +8 mismatches,
// +16 last reduced sum.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "net/address.h"
#include "os/program.h"

namespace cruz::apps {

struct AllreduceConfig {
  std::uint32_t rank = 0;
  std::uint32_t nranks = 1;
  std::uint16_t port = 9300;
  std::vector<net::Ipv4Address> peers;
  std::uint32_t iterations = 100;
  DurationNs compute_per_iteration = 500 * kMicrosecond;
  bool exit_when_done = true;
};

cruz::Bytes AllreduceArgs(const AllreduceConfig& config);

struct AllreduceStatus {
  std::uint64_t iterations = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t last_sum = 0;
};
AllreduceStatus ReadAllreduceStatus(const os::Process& proc);

// The value rank `r` contributes in iteration `t`, and the expected
// all-reduce result.
std::uint64_t AllreduceContribution(std::uint32_t rank, std::uint64_t t);
std::uint64_t AllreduceExpected(std::uint32_t nranks, std::uint64_t t);

// Registers "cruz.allreduce_rank" (idempotent).
void RegisterCollectivesProgram();

}  // namespace cruz::apps
