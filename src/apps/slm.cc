#include "apps/slm.h"

#include <cstring>
#include <memory>

#include "apps/minimsg.h"
#include "apps/programs.h"

namespace cruz::apps {

namespace {

constexpr std::uint64_t kGridAddr = 0x400000;
constexpr std::uint64_t kHaloAddr = 0x300000;

double InitialCell(std::uint32_t rank, std::uint32_t row,
                   std::uint32_t col) {
  return static_cast<double>(rank + 1) * 1000.0 +
         static_cast<double>(row) * 2.0 + static_cast<double>(col) * 0.25;
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return bits;
}

// One relaxation step applied to the rank's boundary rows, given the left
// neighbour's (pre-update) bottom row. The interior of the grid is
// checkpoint payload; the dynamics live on the boundary, which keeps the
// computation cheap while still making every iteration depend on the
// halo exchange (a dropped or duplicated message would change the
// checksum).
void EdgeStep(double* row0, double* bottom, const double* halo,
              std::uint32_t cols) {
  for (std::uint32_t c = 0; c < cols; ++c) {
    row0[c] = 0.5 * (row0[c] + halo[c]);
  }
  for (std::uint32_t c = 0; c < cols; ++c) {
    bottom[c] = 0.5 * (bottom[c] + row0[c]);
  }
}

std::uint64_t RowChecksum(const double* row, std::uint32_t cols) {
  std::uint64_t sum = 0;
  for (std::uint32_t c = 0; c < cols; ++c) {
    sum += DoubleBits(row[c]) * (c + 1);
  }
  return sum;
}

SlmConfig ParseArgs(os::ProcessCtx& ctx) {
  cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
  cruz::ByteReader r(args);
  SlmConfig cfg;
  cfg.rank = r.GetU32();
  cfg.nranks = r.GetU32();
  cfg.port = r.GetU16();
  std::uint32_t peers = r.GetU32();
  for (std::uint32_t i = 0; i < peers; ++i) {
    cfg.peers.push_back(net::Ipv4Address{r.GetU32()});
  }
  cfg.rows = r.GetU32();
  cfg.cols = r.GetU32();
  cfg.iterations = r.GetU32();
  cfg.compute_per_iteration = r.GetU64();
  cfg.exit_when_done = r.GetBool();
  return cfg;
}

class SlmRankProgram : public os::Program {
 public:
  // Registers: r3 listen fd, r4 right (outgoing) fd, r5 left (incoming)
  // fd, r6 transfer progress.
  void Step(os::ProcessCtx& ctx) override {
    enum : std::uint64_t {
      kInit,
      kConnectStart,
      kConnect,
      kAccept,
      kSend,
      kRecv,
      kCompute,
      kIdle,
    };
    SlmConfig cfg = ParseArgs(ctx);
    const std::uint64_t row_bytes = cfg.cols * 8ull;
    const std::uint64_t bottom_addr =
        kGridAddr + static_cast<std::uint64_t>(cfg.rows - 1) * row_bytes;

    switch (ctx.Pc()) {
      case kInit: {
        // Materialize the grid (the checkpointable state).
        for (std::uint32_t row = 0; row < cfg.rows; ++row) {
          for (std::uint32_t col = 0; col < cfg.cols; ++col) {
            ctx.Mem().WriteF64(kGridAddr + row * row_bytes + col * 8,
                               InitialCell(cfg.rank, row, col));
          }
        }
        SysResult fd = ctx.SocketTcp();
        if (!SysOk(fd) ||
            !SysOk(ctx.Bind(static_cast<os::Fd>(fd),
                            net::Endpoint{net::kAnyAddress, cfg.port})) ||
            !SysOk(ctx.Listen(static_cast<os::Fd>(fd), 4))) {
          ctx.ExitProcess(10);
          return;
        }
        ctx.Reg(3) = static_cast<std::uint64_t>(fd);
        ctx.Pc() = kConnectStart;
        break;
      }
      case kConnectStart: {
        SysResult fd = ctx.SocketTcp();
        if (!SysOk(fd)) {
          ctx.ExitProcess(11);
          return;
        }
        ctx.Reg(4) = static_cast<std::uint64_t>(fd);
        ctx.Pc() = kConnect;
        break;
      }
      case kConnect: {
        net::Endpoint right{cfg.peers[(cfg.rank + 1) % cfg.nranks],
                            cfg.port};
        switch (ConnectTo(ctx, static_cast<os::Fd>(ctx.Reg(4)), right)) {
          case IoStatus::kDone:
            ctx.Pc() = kAccept;
            break;
          case IoStatus::kBlocked:
            return;
          default:
            // Right neighbour not listening yet: back off and retry with
            // a fresh socket.
            ctx.Close(static_cast<os::Fd>(ctx.Reg(4)));
            ctx.Pc() = kConnectStart;
            ctx.Sleep(10 * kMillisecond);
            return;
        }
        break;
      }
      case kAccept: {
        os::Fd left = -1;
        switch (AcceptOne(ctx, static_cast<os::Fd>(ctx.Reg(3)), &left)) {
          case IoStatus::kDone:
            ctx.Reg(5) = static_cast<std::uint64_t>(left);
            ctx.Reg(6) = 0;
            ctx.Pc() = kSend;
            break;
          case IoStatus::kBlocked:
            return;
          default:
            ctx.ExitProcess(12);
            return;
        }
        break;
      }
      case kSend: {
        std::uint64_t progress = ctx.Reg(6);
        IoStatus s = SendAll(ctx, static_cast<os::Fd>(ctx.Reg(4)),
                             bottom_addr, row_bytes, progress);
        ctx.Reg(6) = progress;
        if (s == IoStatus::kBlocked) return;
        if (s != IoStatus::kDone) {
          ctx.ExitProcess(13);
          return;
        }
        ctx.Reg(6) = 0;
        ctx.Pc() = kRecv;
        break;
      }
      case kRecv: {
        std::uint64_t progress = ctx.Reg(6);
        IoStatus s = RecvAll(ctx, static_cast<os::Fd>(ctx.Reg(5)),
                             kHaloAddr, row_bytes, progress);
        ctx.Reg(6) = progress;
        if (s == IoStatus::kBlocked) return;
        if (s != IoStatus::kDone) {
          ctx.ExitProcess(14);
          return;
        }
        ctx.Reg(6) = 0;
        std::uint64_t moved = ctx.Mem().ReadU64(kStatusAddr + 16);
        ctx.Mem().WriteU64(kStatusAddr + 16, moved + 2 * row_bytes);
        ctx.Pc() = kCompute;
        break;
      }
      case kCompute: {
        std::vector<double> row0(cfg.cols), bottom(cfg.cols),
            halo(cfg.cols);
        for (std::uint32_t c = 0; c < cfg.cols; ++c) {
          row0[c] = ctx.Mem().ReadF64(kGridAddr + c * 8);
          bottom[c] = ctx.Mem().ReadF64(bottom_addr + c * 8);
          halo[c] = ctx.Mem().ReadF64(kHaloAddr + c * 8);
        }
        EdgeStep(row0.data(), bottom.data(), halo.data(), cfg.cols);
        for (std::uint32_t c = 0; c < cfg.cols; ++c) {
          ctx.Mem().WriteF64(kGridAddr + c * 8, row0[c]);
          ctx.Mem().WriteF64(bottom_addr + c * 8, bottom[c]);
        }
        ctx.ChargeCpu(cfg.compute_per_iteration);
        std::uint64_t iter = ctx.Mem().ReadU64(kStatusAddr) + 1;
        ctx.Mem().WriteU64(kStatusAddr, iter);
        ctx.Mem().WriteU64(kStatusAddr + 8,
                           RowChecksum(bottom.data(), cfg.cols));
        if (iter >= cfg.iterations) {
          ctx.Close(static_cast<os::Fd>(ctx.Reg(4)));
          ctx.Close(static_cast<os::Fd>(ctx.Reg(5)));
          ctx.Close(static_cast<os::Fd>(ctx.Reg(3)));
          if (cfg.exit_when_done) {
            ctx.ExitProcess(0);
          } else {
            ctx.Pc() = kIdle;
          }
          return;
        }
        ctx.Pc() = kSend;
        break;
      }
      case kIdle: {
        ctx.Sleep(kSecond);  // finished; stay observable
        break;
      }
    }
  }
};

}  // namespace

cruz::Bytes SlmArgs(const SlmConfig& config) {
  cruz::ByteWriter w;
  w.PutU32(config.rank);
  w.PutU32(config.nranks);
  w.PutU16(config.port);
  w.PutU32(static_cast<std::uint32_t>(config.peers.size()));
  for (net::Ipv4Address peer : config.peers) w.PutU32(peer.value);
  w.PutU32(config.rows);
  w.PutU32(config.cols);
  w.PutU32(config.iterations);
  w.PutU64(config.compute_per_iteration);
  w.PutBool(config.exit_when_done);
  return w.Take();
}

SlmStatus ReadSlmStatus(const os::Process& proc) {
  SlmStatus s;
  s.iterations = proc.memory().ReadU64(kStatusAddr);
  s.edge_checksum = proc.memory().ReadU64(kStatusAddr + 8);
  s.bytes_exchanged = proc.memory().ReadU64(kStatusAddr + 16);
  return s;
}

void RegisterSlmProgram() {
  static const bool done = [] {
    os::ProgramRegistry::Instance().Register(
        "cruz.slm_rank", [] { return std::make_unique<SlmRankProgram>(); });
    return true;
  }();
  (void)done;
}

std::uint64_t SlmReferenceChecksum(const SlmConfig& config,
                                   std::uint32_t iterations) {
  // Replays the boundary dynamics of ALL ranks in lockstep and returns
  // the checksum of `config.rank`'s bottom row.
  std::uint32_t n = config.nranks;
  std::vector<std::vector<double>> row0(n), bottom(n);
  for (std::uint32_t r = 0; r < n; ++r) {
    row0[r].resize(config.cols);
    bottom[r].resize(config.cols);
    for (std::uint32_t c = 0; c < config.cols; ++c) {
      row0[r][c] = InitialCell(r, 0, c);
      bottom[r][c] = InitialCell(r, config.rows - 1, c);
    }
  }
  std::vector<std::vector<double>> sent(n);
  for (std::uint32_t t = 0; t < iterations; ++t) {
    for (std::uint32_t r = 0; r < n; ++r) sent[r] = bottom[r];
    for (std::uint32_t r = 0; r < n; ++r) {
      const std::vector<double>& halo = sent[(r + n - 1) % n];
      EdgeStep(row0[r].data(), bottom[r].data(), halo.data(), config.cols);
    }
  }
  return RowChecksum(bottom[config.rank].data(), config.cols);
}

}  // namespace cruz::apps
