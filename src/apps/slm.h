// slm — semi-Lagrangian atmospheric model surrogate (paper §6).
//
// The paper's parallel benchmark is a weather-prediction code; what the
// checkpoint experiments depend on is its *shape*: a domain-decomposed
// iterative stencil whose per-rank state is a large grid in memory
// (checkpoint size), with per-iteration halo exchange between neighbours
// over TCP (communication that must survive checkpoints) and a fixed
// amount of computation per iteration (execution time that strong-scales
// with the number of nodes).
//
// Ranks are arranged in a directed ring: rank r listens on the common
// port and connects to rank (r+1) mod N. Each iteration, a rank sends its
// boundary row to its right neighbour, receives its left neighbour's
// boundary, then computes a relaxation step over its private grid.
// All state — the grid, iteration counter, transfer progress — lives in
// checkpointable memory and registers; the program builds only on the
// minimsg helpers, which know nothing about Cruz.
//
// Program name: "cruz.slm_rank".
// Status (kStatusAddr): +0 iterations completed, +8 checksum of the grid
// edge (progress witness), +16 exchange bytes moved.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "net/address.h"
#include "os/program.h"

namespace cruz::apps {

struct SlmConfig {
  std::uint32_t rank = 0;
  std::uint32_t nranks = 1;
  std::uint16_t port = 9200;            // every rank's pod listens here
  std::vector<net::Ipv4Address> peers;  // pod address of each rank
  std::uint32_t rows = 64;              // grid rows per rank
  std::uint32_t cols = 512;             // doubles per row
  std::uint32_t iterations = 1000;
  DurationNs compute_per_iteration = 2 * kMillisecond;
  // When false the rank idles after finishing (status remains readable)
  // instead of exiting; long-running-service mode for harnesses.
  bool exit_when_done = true;
};

// Serialized into the program args blob.
cruz::Bytes SlmArgs(const SlmConfig& config);

struct SlmStatus {
  std::uint64_t iterations = 0;
  std::uint64_t edge_checksum = 0;
  std::uint64_t bytes_exchanged = 0;
};
SlmStatus ReadSlmStatus(const os::Process& proc);

// Registers "cruz.slm_rank" (idempotent).
void RegisterSlmProgram();

// Reference model: grid edge checksum after `iterations` of the stencil,
// computed without any OS in the way. Tests compare a distributed run
// (with checkpoints and restarts in the middle) against this.
std::uint64_t SlmReferenceChecksum(const SlmConfig& config,
                                   std::uint32_t iterations);

}  // namespace cruz::apps
