// TCP send buffer with stable packet boundaries.
//
// Mirrors the Linux skb queue the paper walks at checkpoint time (§4.1):
// application bytes are packetized into segments ("skbs") at send() time;
// a segment's boundaries never change once it is sealed (first transmitted,
// or inserted whole by the restore engine). This is what makes it possible
// to checkpoint "the application-level data found in the send buffer and
// record the packet boundaries, which are preserved on restart".
//
// Layout in sequence space:
//
//    snd_una                    snd_nxt                 write_seq
//      |--- in flight (sealed) ---|--- queued, unsent ----|
//
// All three pointers live in the owning TcpConnection; the buffer indexes
// its segments by starting sequence number.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "tcp/seq.h"

namespace cruz::tcp {

struct SendSegment {
  Seq seq = 0;
  cruz::Bytes data;
  // A sealed segment's boundaries are final; unsealed tail segments may
  // still accept appended bytes (as tcp_sendmsg fills the last skb).
  bool sealed = false;
  // Retransmission bookkeeping.
  int transmit_count = 0;

  Seq end() const { return seq + static_cast<Seq>(data.size()); }
};

class SendBuffer {
 public:
  SendBuffer(std::size_t capacity_bytes, std::uint32_t mss)
      : capacity_(capacity_bytes), mss_(mss) {}

  // Appends application data starting at sequence `write_seq`, packetizing
  // into MSS-sized segments. Returns the number of bytes accepted (limited
  // by free capacity).
  std::size_t Append(cruz::ByteSpan data, Seq write_seq);

  // Inserts one pre-packetized segment (restore path). The segment is
  // sealed immediately so later Appends cannot merge into it.
  void AppendSealed(cruz::Bytes data, Seq seq);

  // Removes data acknowledged up to `ack` (cumulative). Partially-acked
  // segments are trimmed in place. Returns bytes freed.
  std::size_t AckUpTo(Seq ack);

  // Returns the segment containing `seq` (it must start exactly at `seq`
  // after normal operation), or nullptr if none.
  const SendSegment* SegmentAt(Seq seq) const;
  // Marks the segment at `seq` transmitted and seals it.
  void MarkTransmitted(Seq seq);

  // Splits the segment starting at `seq` so its first part holds exactly
  // `first_len` bytes (used by zero-window probing, which transmits a
  // one-byte split just as Linux's tcp_write_wakeup fragments an skb).
  // No-op if the segment is missing or already short enough.
  void Split(Seq seq, std::uint32_t first_len);

  bool Empty() const { return segments_.empty(); }
  std::size_t TotalBytes() const { return total_bytes_; }
  std::size_t FreeBytes() const {
    return total_bytes_ >= capacity_ ? 0 : capacity_ - total_bytes_;
  }
  std::size_t capacity() const { return capacity_; }
  std::uint32_t mss() const { return mss_; }

  // First unacknowledged segment (retransmission target), or nullptr.
  const SendSegment* Front() const {
    return segments_.empty() ? nullptr : &segments_.front();
  }

  // Iteration for checkpoint: all segments in sequence order.
  const std::deque<SendSegment>& segments() const { return segments_; }

 private:
  std::size_t capacity_;
  std::uint32_t mss_;
  std::deque<SendSegment> segments_;
  std::size_t total_bytes_ = 0;
};

}  // namespace cruz::tcp
