// 32-bit TCP sequence-number arithmetic (RFC 793 modular comparisons).
#pragma once

#include <cstdint>

namespace cruz::tcp {

using Seq = std::uint32_t;

constexpr bool SeqLt(Seq a, Seq b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
constexpr bool SeqLe(Seq a, Seq b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
constexpr bool SeqGt(Seq a, Seq b) { return SeqLt(b, a); }
constexpr bool SeqGe(Seq a, Seq b) { return SeqLe(b, a); }

// Distance from a to b (b - a), meaningful when SeqLe(a, b).
constexpr std::uint32_t SeqDiff(Seq a, Seq b) { return b - a; }

}  // namespace cruz::tcp
