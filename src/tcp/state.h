// TCP connection states (RFC 793 §3.2).
#pragma once

namespace cruz::tcp {

enum class TcpState : unsigned char {
  kClosed = 0,
  kListen,      // only used by the OS listener objects, not connections
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

const char* TcpStateName(TcpState s);

// True if the connection can still carry application data from this end.
constexpr bool CanSendData(TcpState s) {
  return s == TcpState::kEstablished || s == TcpState::kCloseWait;
}

// True if the connection may still deliver received data to the app.
constexpr bool CanReceiveData(TcpState s) {
  return s == TcpState::kEstablished || s == TcpState::kFinWait1 ||
         s == TcpState::kFinWait2;
}

}  // namespace cruz::tcp
