#include "tcp/send_buffer.h"

#include <algorithm>

#include "common/error.h"

namespace cruz::tcp {

std::size_t SendBuffer::Append(cruz::ByteSpan data, Seq write_seq) {
  std::size_t accepted = 0;
  std::size_t room = FreeBytes();
  while (accepted < data.size() && room > 0) {
    // Fill the unsealed tail segment first, as tcp_sendmsg does.
    if (!segments_.empty() && !segments_.back().sealed &&
        segments_.back().data.size() < mss_) {
      SendSegment& tail = segments_.back();
      std::size_t take = std::min({data.size() - accepted,
                                   static_cast<std::size_t>(mss_) -
                                       tail.data.size(),
                                   room});
      tail.data.insert(tail.data.end(), data.begin() + accepted,
                       data.begin() + accepted + take);
      accepted += take;
      room -= take;
      total_bytes_ += take;
      continue;
    }
    std::size_t take =
        std::min({data.size() - accepted, static_cast<std::size_t>(mss_),
                  room});
    SendSegment seg;
    seg.seq = write_seq + static_cast<Seq>(accepted);
    seg.data.assign(data.begin() + accepted, data.begin() + accepted + take);
    segments_.push_back(std::move(seg));
    accepted += take;
    room -= take;
    total_bytes_ += take;
  }
  return accepted;
}

void SendBuffer::AppendSealed(cruz::Bytes data, Seq seq) {
  CRUZ_CHECK(segments_.empty() || segments_.back().end() == seq,
             "AppendSealed: sequence gap in send buffer");
  SendSegment seg;
  seg.seq = seq;
  total_bytes_ += data.size();
  seg.data = std::move(data);
  seg.sealed = true;
  segments_.push_back(std::move(seg));
}

std::size_t SendBuffer::AckUpTo(Seq ack) {
  std::size_t freed = 0;
  while (!segments_.empty()) {
    SendSegment& front = segments_.front();
    if (SeqLe(front.end(), ack)) {
      freed += front.data.size();
      segments_.pop_front();
    } else if (SeqLt(front.seq, ack)) {
      // Partial ACK inside a segment: trim the acknowledged prefix.
      std::uint32_t cut = SeqDiff(front.seq, ack);
      front.data.erase(front.data.begin(), front.data.begin() + cut);
      front.seq = ack;
      freed += cut;
      break;
    } else {
      break;
    }
  }
  total_bytes_ -= freed;
  return freed;
}

const SendSegment* SendBuffer::SegmentAt(Seq seq) const {
  for (const SendSegment& seg : segments_) {
    if (seg.seq == seq) return &seg;
    if (SeqGt(seg.seq, seq)) break;
  }
  return nullptr;
}

void SendBuffer::Split(Seq seq, std::uint32_t first_len) {
  if (first_len == 0) return;
  for (auto it = segments_.begin(); it != segments_.end(); ++it) {
    if (it->seq != seq) continue;
    if (it->data.size() <= first_len) return;
    SendSegment tail;
    tail.seq = seq + first_len;
    tail.data.assign(it->data.begin() + first_len, it->data.end());
    tail.sealed = it->sealed;
    it->data.resize(first_len);
    segments_.insert(std::next(it), std::move(tail));
    return;
  }
}

void SendBuffer::MarkTransmitted(Seq seq) {
  for (SendSegment& seg : segments_) {
    if (seg.seq == seq) {
      seg.sealed = true;
      ++seg.transmit_count;
      return;
    }
  }
}

}  // namespace cruz::tcp
