#include "tcp/recv_buffer.h"

#include <algorithm>

namespace cruz::tcp {

bool RecvBuffer::Insert(Seq seq, cruz::ByteSpan data) {
  if (data.empty()) return false;
  Seq end = seq + static_cast<Seq>(data.size());

  // Trim the prefix already received.
  if (SeqLt(seq, rcv_nxt_)) {
    if (SeqLe(end, rcv_nxt_)) return false;  // fully duplicate
    std::uint32_t cut = SeqDiff(seq, rcv_nxt_);
    data = data.subspan(cut);
    seq = rcv_nxt_;
  }
  // Trim the suffix beyond the window.
  Seq window_end = rcv_nxt_ + Window();
  if (SeqGe(seq, window_end)) return false;
  if (SeqGt(end, window_end)) {
    data = data.subspan(0, SeqDiff(seq, window_end));
  }
  if (data.empty()) return false;

  if (seq == rcv_nxt_) {
    ordered_.insert(ordered_.end(), data.begin(), data.end());
    rcv_nxt_ += static_cast<Seq>(data.size());
    MergeOutOfOrder();
    return true;
  }
  // Out of order: store unless an existing entry already covers it.
  auto it = ooo_.find(seq);
  if (it == ooo_.end() || it->second.size() < data.size()) {
    if (it != ooo_.end()) ooo_bytes_ -= it->second.size();
    ooo_bytes_ += data.size();
    ooo_[seq] = cruz::Bytes(data.begin(), data.end());
  }
  return false;
}

void RecvBuffer::MergeOutOfOrder() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = ooo_.begin(); it != ooo_.end();) {
      Seq seq = it->first;
      Seq end = seq + static_cast<Seq>(it->second.size());
      if (SeqLe(end, rcv_nxt_)) {
        // Entirely stale.
        ooo_bytes_ -= it->second.size();
        it = ooo_.erase(it);
        continue;
      }
      if (SeqLe(seq, rcv_nxt_)) {
        std::uint32_t skip = SeqDiff(seq, rcv_nxt_);
        ordered_.insert(ordered_.end(), it->second.begin() + skip,
                        it->second.end());
        rcv_nxt_ = end;
        ooo_bytes_ -= it->second.size();
        it = ooo_.erase(it);
        progress = true;
        continue;
      }
      ++it;
    }
  }
}

std::size_t RecvBuffer::Read(cruz::Bytes& out, std::size_t max, bool peek) {
  std::size_t n = std::min(max, ordered_.size());
  out.insert(out.end(), ordered_.begin(),
             ordered_.begin() + static_cast<std::ptrdiff_t>(n));
  if (!peek) {
    ordered_.erase(ordered_.begin(),
                   ordered_.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return n;
}

}  // namespace cruz::tcp
