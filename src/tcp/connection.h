// A single TCP connection (the protocol control block plus machinery).
//
// The connection is transport-only: it emits TcpSegment objects through an
// output callback (the OS network stack wraps them in IPv4/Ethernet) and
// receives demultiplexed segments through OnSegment(). Timers run on the
// simulation clock. The implementation covers what Cruz depends on:
//
//   * three-way handshake (active and passive open), RST handling
//   * cumulative ACKs, retransmission timeout with exponential backoff,
//     fast retransmit on three duplicate ACKs, Karn's algorithm for RTT
//   * flow control via the advertised window, slow start / congestion
//     avoidance for the Fig. 6 backoff-and-recover behaviour
//   * Nagle's algorithm and TCP_CORK (packet-boundary control at restore)
//   * orderly close (FIN in both directions, TIME_WAIT), abort (RST)
//   * checkpoint export / restore per §4.1 of the paper
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/sysresult.h"
#include "net/address.h"
#include "sim/event_queue.h"
#include "tcp/checkpoint_state.h"
#include "tcp/config.h"
#include "tcp/recv_buffer.h"
#include "tcp/segment.h"
#include "tcp/send_buffer.h"

namespace cruz::sim {
class Simulator;
}

namespace cruz::tcp {

class TcpConnection {
 public:
  using OutputFn =
      std::function<void(const net::FourTuple&, const TcpSegment&)>;

  struct Callbacks {
    std::function<void()> on_established;
    std::function<void()> on_readable;
    std::function<void()> on_writable;
    // Remote sent FIN; pending data may still be readable.
    std::function<void()> on_remote_close;
    // Connection destroyed by RST or retransmission give-up. The argument
    // is the errno the next syscall should report.
    std::function<void(Errno)> on_error;
    // Connection fully closed (both directions done, TIME_WAIT elapsed).
    std::function<void()> on_closed;
  };

  TcpConnection(sim::Simulator& sim, const TcpConfig& cfg,
                net::FourTuple tuple, OutputFn output, Callbacks callbacks);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // --- opening ------------------------------------------------------------
  void OpenActive();                       // client connect(): sends SYN
  void OpenPassive(const TcpSegment& syn); // from a listener's SYN demux

  // --- application data path ----------------------------------------------
  // Queues data; returns bytes accepted, 0 if the buffer is full, or
  // -errno (EPIPE after close, ENOTCONN before establishment).
  SysResult Send(cruz::ByteSpan data);
  // Reads up to `max` bytes into `out`. Returns bytes read; 0 means EOF
  // (remote closed and drained); -EAGAIN when no data yet.
  SysResult Receive(cruz::Bytes& out, std::size_t max, bool peek = false);

  std::size_t ReadableBytes() const {
    return recv_ ? recv_->ReadableBytes() : 0;
  }
  std::size_t SendBufferFree() const { return send_.FreeBytes(); }

  void Close();  // orderly shutdown (FIN after queued data)
  void Abort();  // RST, immediate teardown

  // --- socket options -------------------------------------------------------
  void SetNagle(bool enabled);
  void SetCork(bool enabled);
  bool nagle() const { return nagle_; }
  bool cork() const { return cork_; }

  // --- stack-facing ----------------------------------------------------------
  void OnSegment(const TcpSegment& seg);

  // --- checkpoint-restart (paper §4.1) ---------------------------------------
  // Captures the connection state with the two-sequence-number rewrite.
  // Non-destructive: the live connection keeps running afterwards.
  TcpConnCheckpoint ExportCheckpoint() const;
  // Rebuilds a connection from a checkpoint: buffers start empty, then the
  // saved packets are replayed as sealed segments (boundary-preserving) and
  // a pending close is re-issued. Transmission starts immediately; if the
  // node's communication is still disabled those packets are dropped and
  // recovered by the retransmission timer.
  static std::unique_ptr<TcpConnection> Restore(sim::Simulator& sim,
                                                const TcpConfig& cfg,
                                                const TcpConnCheckpoint& ck,
                                                OutputFn output,
                                                Callbacks callbacks);

  // --- introspection -----------------------------------------------------------
  TcpState state() const { return state_; }
  const net::FourTuple& tuple() const { return tuple_; }
  Seq snd_una() const { return snd_una_; }
  Seq snd_nxt() const { return snd_nxt_; }
  Seq rcv_nxt() const { return recv_ ? recv_->rcv_nxt() : 0; }
  std::uint32_t cwnd() const { return cwnd_; }
  DurationNs rto() const { return rto_; }
  std::uint64_t segments_sent() const { return segments_sent_; }
  std::uint64_t segments_received() const { return segments_received_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t bytes_delivered_to_app() const {
    return bytes_delivered_to_app_;
  }
  Errno pending_error() const { return pending_error_; }
  bool rto_armed() const { return rto_timer_ != sim::kInvalidEventId; }
  bool persist_armed() const { return persist_timer_ != sim::kInvalidEventId; }

 private:
  // Transmit pump: emits queued data allowed by cwnd and the peer window,
  // honouring Nagle/CORK for unsealed tails, then a pending FIN.
  void TrySend();
  void EmitDataSegment(const SendSegment& seg, bool retransmit);
  void EmitControl(bool syn_flag, bool fin_flag, Seq seq);
  void SendAck();
  void SendRst(Seq seq);

  void ProcessAck(const TcpSegment& seg);
  void ProcessPayload(const TcpSegment& seg);
  void ProcessFin(const TcpSegment& seg);

  void EnterEstablished();
  void EnterTimeWait();
  void FailConnection(Errno err);
  void FinishClose();

  void ArmRto();
  void CancelRto();
  void OnRtoExpired();
  // Persist timer: while the peer advertises a window too small for the
  // next queued segment and nothing is in flight, probe with one byte so
  // the peer's window updates are not lost forever (classic zero-window
  // probing). Essential after a restore, where the saved peer window can
  // be stale (the restored peer's buffers start empty).
  void MaybeArmPersist();
  void CancelPersist();
  void OnPersistExpired();
  void MaybeSampleRtt(Seq ack);
  void OnAckAdvance(std::uint32_t acked_bytes, bool was_retransmit_recovery);

  std::uint16_t AdvertisedWindow() const;
  bool FinSent() const { return fin_seq_.has_value(); }
  // Sequence number our FIN occupies (valid once the FIN is queued).
  Seq FinSeq() const { return *fin_seq_; }

  sim::Simulator& sim_;
  TcpConfig cfg_;
  net::FourTuple tuple_;
  OutputFn output_;
  Callbacks cb_;

  TcpState state_ = TcpState::kClosed;

  Seq iss_ = 0;
  Seq irs_ = 0;
  Seq snd_una_ = 0;
  Seq snd_nxt_ = 0;
  Seq write_seq_ = 0;  // next sequence number for appended app data
  std::uint32_t snd_wnd_ = 0;

  SendBuffer send_;
  std::optional<RecvBuffer> recv_;

  // Congestion control (byte-based slow start / congestion avoidance).
  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0x7FFFFFFF;
  std::uint32_t bytes_acked_in_ca_ = 0;  // byte counter for CA growth
  int dup_acks_ = 0;

  // RTT estimation (Karn: only un-retransmitted segments are sampled).
  bool rtt_valid_ = false;
  double srtt_ns_ = 0;
  double rttvar_ns_ = 0;
  DurationNs rto_;
  std::optional<Seq> rtt_sample_end_;  // ack that completes the sample
  TimeNs rtt_sample_sent_at_ = 0;

  sim::EventId rto_timer_ = sim::kInvalidEventId;
  sim::EventId time_wait_timer_ = sim::kInvalidEventId;
  sim::EventId persist_timer_ = sim::kInvalidEventId;
  DurationNs persist_interval_ = 0;
  int backoff_count_ = 0;

  bool app_closed_ = false;            // Close() called
  std::optional<Seq> fin_seq_;         // seq our FIN occupies once queued
  bool fin_acked_ = false;

  bool nagle_ = true;
  bool cork_ = false;

  std::uint32_t last_advertised_window_ = 0;
  Errno pending_error_ = CRUZ_EOK;

  // Tracing: set while recovering lost data via RTO/fast retransmit;
  // cleared (with a tcp.recovered event) by the first advancing ACK.
  bool retransmit_recovery_ = false;
  TimeNs recovery_started_at_ = 0;

  std::uint64_t segments_sent_ = 0;
  std::uint64_t segments_received_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t bytes_delivered_to_app_ = 0;
};

}  // namespace cruz::tcp
