#include "tcp/segment.h"

#include "common/error.h"
#include "tcp/state.h"

namespace cruz::tcp {

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

namespace {
constexpr std::uint8_t kFlagFin = 0x01;
constexpr std::uint8_t kFlagSyn = 0x02;
constexpr std::uint8_t kFlagRst = 0x04;
constexpr std::uint8_t kFlagPsh = 0x08;
constexpr std::uint8_t kFlagAck = 0x10;
}  // namespace

cruz::Bytes TcpSegment::Encode() const {
  cruz::ByteWriter w(WireSize());
  w.PutU16(src_port);
  w.PutU16(dst_port);
  w.PutU32(seq);
  w.PutU32(ack);
  // Data offset in 32-bit words (5 without options, 6 with MSS option).
  std::uint8_t data_offset = mss_option ? 6 : 5;
  w.PutU8(static_cast<std::uint8_t>(data_offset << 4));
  std::uint8_t flags = 0;
  if (fin) flags |= kFlagFin;
  if (syn) flags |= kFlagSyn;
  if (rst) flags |= kFlagRst;
  if (psh) flags |= kFlagPsh;
  if (ack_flag) flags |= kFlagAck;
  w.PutU8(flags);
  w.PutU16(window);
  w.PutU16(0);  // checksum: covered by the simulated IP layer
  w.PutU16(0);  // urgent pointer (unused)
  if (mss_option) {
    w.PutU8(2);  // kind: MSS
    w.PutU8(4);  // length
    w.PutU16(mss_option);
  }
  w.PutBytes(payload);
  return w.Take();
}

TcpSegment TcpSegment::Decode(cruz::ByteSpan wire) {
  cruz::ByteReader r(wire);
  TcpSegment s;
  s.src_port = r.GetU16();
  s.dst_port = r.GetU16();
  s.seq = r.GetU32();
  s.ack = r.GetU32();
  std::uint8_t data_offset = static_cast<std::uint8_t>(r.GetU8() >> 4);
  if (data_offset < 5) {
    throw cruz::CodecError("TCP data offset below minimum");
  }
  std::size_t header_bytes = static_cast<std::size_t>(data_offset) * 4;
  if (header_bytes > wire.size()) {
    throw cruz::CodecError("TCP header longer than segment");
  }
  std::uint8_t flags = r.GetU8();
  s.fin = flags & kFlagFin;
  s.syn = flags & kFlagSyn;
  s.rst = flags & kFlagRst;
  s.psh = flags & kFlagPsh;
  s.ack_flag = flags & kFlagAck;
  s.window = r.GetU16();
  r.Skip(2);  // checksum
  r.Skip(2);  // urgent pointer
  // Parse options (only MSS is understood; others are skipped).
  std::size_t options_end = header_bytes;
  while (r.pos() < options_end) {
    std::uint8_t kind = r.GetU8();
    if (kind == 0) break;      // end of options
    if (kind == 1) continue;   // NOP
    std::uint8_t len = r.GetU8();
    if (len < 2 || r.pos() + (len - 2) > options_end) {
      throw cruz::CodecError("malformed TCP option");
    }
    if (kind == 2 && len == 4) {
      s.mss_option = r.GetU16();
    } else {
      r.Skip(static_cast<std::size_t>(len) - 2);
    }
  }
  if (r.pos() < options_end) r.Skip(options_end - r.pos());
  s.payload = r.GetBytes(r.remaining());
  return s;
}

std::string TcpSegment::ToString() const {
  std::string flags;
  if (syn) flags += "SYN,";
  if (ack_flag) flags += "ACK,";
  if (fin) flags += "FIN,";
  if (rst) flags += "RST,";
  if (psh) flags += "PSH,";
  if (!flags.empty()) flags.pop_back();
  return "[" + flags + " seq=" + std::to_string(seq) +
         " ack=" + std::to_string(ack) +
         " len=" + std::to_string(payload.size()) +
         " win=" + std::to_string(window) + "]";
}

}  // namespace cruz::tcp
