#include "tcp/connection.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "sim/simulator.h"

namespace cruz::tcp {

TcpConnection::TcpConnection(sim::Simulator& sim, const TcpConfig& cfg,
                             net::FourTuple tuple, OutputFn output,
                             Callbacks callbacks)
    : sim_(sim),
      cfg_(cfg),
      tuple_(tuple),
      output_(std::move(output)),
      cb_(std::move(callbacks)),
      send_(cfg.send_buffer_capacity, cfg.mss),
      rto_(cfg.initial_rto) {
  cwnd_ = cfg_.initial_cwnd_segments * cfg_.mss;
}

TcpConnection::~TcpConnection() {
  CancelRto();
  CancelPersist();
  if (time_wait_timer_ != sim::kInvalidEventId) {
    sim_.Cancel(time_wait_timer_);
  }
}

// --------------------------------------------------------------------------
// Opening
// --------------------------------------------------------------------------

void TcpConnection::OpenActive() {
  CRUZ_CHECK(state_ == TcpState::kClosed, "OpenActive on non-closed socket");
  iss_ = static_cast<Seq>(sim_.rng().NextU64());
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN occupies iss_
  write_seq_ = iss_ + 1;
  state_ = TcpState::kSynSent;
  EmitControl(/*syn_flag=*/true, /*fin_flag=*/false, iss_);
  ArmRto();
}

void TcpConnection::OpenPassive(const TcpSegment& syn) {
  CRUZ_CHECK(state_ == TcpState::kClosed, "OpenPassive on non-closed socket");
  CRUZ_CHECK(syn.syn && !syn.ack_flag, "OpenPassive needs a pure SYN");
  iss_ = static_cast<Seq>(sim_.rng().NextU64());
  irs_ = syn.seq;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  write_seq_ = iss_ + 1;
  snd_wnd_ = syn.window;
  recv_.emplace(cfg_.recv_buffer_capacity, irs_ + 1);
  state_ = TcpState::kSynReceived;
  EmitControl(/*syn_flag=*/true, /*fin_flag=*/false, iss_);  // SYN+ACK
  ArmRto();
}

// --------------------------------------------------------------------------
// Application data path
// --------------------------------------------------------------------------

SysResult TcpConnection::Send(cruz::ByteSpan data) {
  if (pending_error_ != CRUZ_EOK) return SysErr(pending_error_);
  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived) {
    return SysErr(CRUZ_EAGAIN);  // still connecting
  }
  if (app_closed_ || !CanSendData(state_)) return SysErr(CRUZ_EPIPE);
  if (data.empty()) return 0;
  std::size_t accepted = send_.Append(data, write_seq_);
  write_seq_ += static_cast<Seq>(accepted);
  if (accepted == 0) return SysErr(CRUZ_EAGAIN);  // buffer full
  TrySend();
  return static_cast<SysResult>(accepted);
}

SysResult TcpConnection::Receive(cruz::Bytes& out, std::size_t max,
                                 bool peek) {
  if (!recv_) {
    return pending_error_ != CRUZ_EOK ? SysErr(pending_error_)
                                      : SysErr(CRUZ_ENOTCONN);
  }
  if (recv_->ReadableBytes() == 0) {
    if (pending_error_ != CRUZ_EOK) return SysErr(pending_error_);
    // EOF once the remote's FIN has been consumed and the buffer drained.
    switch (state_) {
      case TcpState::kCloseWait:
      case TcpState::kClosing:
      case TcpState::kLastAck:
      case TcpState::kTimeWait:
      case TcpState::kClosed:
        return 0;
      default:
        return SysErr(CRUZ_EAGAIN);
    }
  }
  std::size_t n = recv_->Read(out, max, peek);
  if (!peek) {
    bytes_delivered_to_app_ += n;
    // Window update: if consuming opened at least one MSS of window beyond
    // what the peer last saw, tell it (prevents zero-window deadlock).
    if (recv_->Window() >=
        last_advertised_window_ + static_cast<std::uint32_t>(cfg_.mss)) {
      SendAck();
    }
  }
  return static_cast<SysResult>(n);
}

void TcpConnection::Close() {
  if (app_closed_) return;
  app_closed_ = true;
  switch (state_) {
    case TcpState::kClosed:
      return;
    case TcpState::kSynSent:
      CancelRto();
      FinishClose();
      return;
    default:
      TrySend();  // FIN is emitted once queued data drains
  }
}

void TcpConnection::Abort() {
  if (state_ == TcpState::kClosed) return;
  if (state_ != TcpState::kSynSent) {
    SendRst(snd_nxt_);
  }
  CancelRto();
  FinishClose();
}

void TcpConnection::SetNagle(bool enabled) {
  nagle_ = enabled;
  if (enabled == false) TrySend();  // flush any held partial segment
}

void TcpConnection::SetCork(bool enabled) {
  cork_ = enabled;
  if (enabled == false) TrySend();
}

// --------------------------------------------------------------------------
// Transmit pump
// --------------------------------------------------------------------------

void TcpConnection::TrySend() {
  if (state_ == TcpState::kClosed || state_ == TcpState::kSynSent ||
      state_ == TcpState::kSynReceived || state_ == TcpState::kTimeWait) {
    return;
  }
  bool sent_any = false;
  for (;;) {
    std::uint32_t inflight = SeqDiff(snd_una_, snd_nxt_);
    std::uint32_t wnd_allow =
        snd_wnd_ > inflight ? snd_wnd_ - inflight : 0;
    std::uint32_t cwnd_allow = cwnd_ > inflight ? cwnd_ - inflight : 0;
    std::uint32_t allow = std::min(wnd_allow, cwnd_allow);
    const SendSegment* seg = send_.SegmentAt(snd_nxt_);
    if (seg == nullptr) break;
    if (seg->data.size() > allow) break;  // window/cwnd exhausted
    if (!seg->sealed && seg->data.size() < cfg_.mss) {
      // Partial tail segment: CORK holds it unconditionally; Nagle holds it
      // while older data is in flight. Sealed segments (restored packets or
      // already-transmitted ones) bypass both, preserving boundaries.
      if (cork_) break;
      if (nagle_ && inflight > 0) break;
    }
    // A segment with a prior transmission is a retransmission (the pump
    // also drives go-back-N recovery after an RTO pulls snd_nxt back).
    bool is_retransmit = seg->transmit_count > 0;
    EmitDataSegment(*seg, is_retransmit);
    if (!rtt_sample_end_.has_value() && !is_retransmit) {
      rtt_sample_end_ = seg->end();
      rtt_sample_sent_at_ = sim_.Now();
    }
    send_.MarkTransmitted(seg->seq);
    snd_nxt_ = seg->end();
    sent_any = true;
  }
  // Emit FIN once the application closed and all queued data has been
  // packetized and transmitted.
  if (app_closed_ && send_.SegmentAt(snd_nxt_) == nullptr) {
    if (!FinSent()) {
      bool may_fin = false;
      switch (state_) {
        case TcpState::kEstablished:
          state_ = TcpState::kFinWait1;
          may_fin = true;
          break;
        case TcpState::kCloseWait:
          state_ = TcpState::kLastAck;
          may_fin = true;
          break;
        // A restored connection may already be in a FIN-in-flight state;
        // the FIN is re-queued without a state transition.
        case TcpState::kFinWait1:
        case TcpState::kClosing:
        case TcpState::kLastAck:
          may_fin = !fin_acked_;
          break;
        default:
          break;
      }
      if (may_fin) {
        fin_seq_ = snd_nxt_;
        EmitControl(/*syn_flag=*/false, /*fin_flag=*/true, snd_nxt_);
        snd_nxt_ += 1;
        sent_any = true;
      }
    } else if (!fin_acked_ && snd_nxt_ == FinSeq()) {
      // Go-back-N pulled snd_nxt back over an unacked FIN: re-emit it.
      EmitControl(/*syn_flag=*/false, /*fin_flag=*/true, snd_nxt_);
      ++retransmissions_;
      snd_nxt_ += 1;
      sent_any = true;
    }
  }
  if (sent_any && rto_timer_ == sim::kInvalidEventId) {
    ArmRto();
  }
  MaybeArmPersist();
}

void TcpConnection::MaybeArmPersist() {
  if (persist_timer_ != sim::kInvalidEventId) return;
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) return;
  if (snd_una_ != snd_nxt_) return;  // RTO covers outstanding data
  const SendSegment* seg = send_.SegmentAt(snd_nxt_);
  if (seg == nullptr) return;
  std::uint32_t allow = std::min<std::uint32_t>(snd_wnd_, cwnd_);
  if (seg->data.size() <= allow) return;  // pump will send it
  if (persist_interval_ == 0) persist_interval_ = rto_;
  persist_timer_ = sim_.Schedule(persist_interval_, [this] {
    persist_timer_ = sim::kInvalidEventId;
    OnPersistExpired();
  });
}

void TcpConnection::CancelPersist() {
  if (persist_timer_ != sim::kInvalidEventId) {
    sim_.Cancel(persist_timer_);
    persist_timer_ = sim::kInvalidEventId;
  }
  persist_interval_ = 0;
}

void TcpConnection::OnPersistExpired() {
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) return;
  const SendSegment* seg = send_.SegmentAt(snd_nxt_);
  std::uint32_t allow = std::min<std::uint32_t>(snd_wnd_, cwnd_);
  if (seg == nullptr || snd_una_ != snd_nxt_ ||
      seg->data.size() <= allow) {
    // No longer blocked on the window; let the pump take over.
    persist_interval_ = 0;
    TrySend();
    return;
  }
  // Window probe: split one byte off the queued segment and force it out,
  // ignoring the (stale or zero) window — exactly what Linux's
  // tcp_write_wakeup does. The byte occupies sequence space, so the peer's
  // ACK (or duplicate ACK, if its window really is zero) flows through the
  // normal ACK path and refreshes snd_wnd.
  send_.Split(snd_nxt_, 1);
  const SendSegment* probe = send_.SegmentAt(snd_nxt_);
  CRUZ_CHECK(probe != nullptr && probe->data.size() == 1,
             "persist probe split failed");
  EmitDataSegment(*probe, /*retransmit=*/false);
  send_.MarkTransmitted(probe->seq);
  snd_nxt_ += 1;
  if (rto_timer_ == sim::kInvalidEventId) ArmRto();
  persist_interval_ =
      std::min<DurationNs>(persist_interval_ * 2, cfg_.max_rto);
  persist_timer_ = sim_.Schedule(persist_interval_, [this] {
    persist_timer_ = sim::kInvalidEventId;
    OnPersistExpired();
  });
}

void TcpConnection::EmitDataSegment(const SendSegment& seg, bool retransmit) {
  TcpSegment out;
  out.src_port = tuple_.local.port;
  out.dst_port = tuple_.remote.port;
  out.seq = seg.seq;
  out.payload = seg.data;
  out.ack_flag = recv_.has_value();
  out.ack = recv_ ? recv_->rcv_nxt() : 0;
  out.psh = seg.data.size() < cfg_.mss;
  out.window = AdvertisedWindow();
  last_advertised_window_ = out.window;
  ++segments_sent_;
  if (retransmit) {
    ++retransmissions_;
    sim_.metrics().counter("tcp.retransmits_total").Add();
  }
  if (sim_.tracer().VerboseSample()) {
    sim_.tracer().Instant("tcp", "tcp.tx",
                          obs::TraceAttrs{}
                              .Conn(tuple_.ToString())
                              .Arg("seq", seg.seq)
                              .Arg("len", seg.data.size())
                              .Arg("retransmit", retransmit ? "true"
                                                            : "false"));
  }
  output_(tuple_, out);
}

void TcpConnection::EmitControl(bool syn_flag, bool fin_flag, Seq seq) {
  TcpSegment out;
  out.src_port = tuple_.local.port;
  out.dst_port = tuple_.remote.port;
  out.seq = seq;
  out.syn = syn_flag;
  out.fin = fin_flag;
  out.ack_flag = recv_.has_value();
  out.ack = recv_ ? recv_->rcv_nxt() : 0;
  out.window = AdvertisedWindow();
  if (syn_flag) out.mss_option = static_cast<std::uint16_t>(cfg_.mss);
  last_advertised_window_ = out.window;
  ++segments_sent_;
  output_(tuple_, out);
}

void TcpConnection::SendAck() {
  TcpSegment out;
  out.src_port = tuple_.local.port;
  out.dst_port = tuple_.remote.port;
  out.seq = snd_nxt_;
  out.ack_flag = true;
  out.ack = recv_ ? recv_->rcv_nxt() : 0;
  out.window = AdvertisedWindow();
  last_advertised_window_ = out.window;
  ++segments_sent_;
  output_(tuple_, out);
}

void TcpConnection::SendRst(Seq seq) {
  TcpSegment out;
  out.src_port = tuple_.local.port;
  out.dst_port = tuple_.remote.port;
  out.seq = seq;
  out.rst = true;
  out.ack_flag = recv_.has_value();
  out.ack = recv_ ? recv_->rcv_nxt() : 0;
  ++segments_sent_;
  output_(tuple_, out);
}

std::uint16_t TcpConnection::AdvertisedWindow() const {
  std::uint32_t w = recv_ ? recv_->Window()
                          : static_cast<std::uint32_t>(
                                cfg_.recv_buffer_capacity);
  return static_cast<std::uint16_t>(std::min<std::uint32_t>(w, 0xFFFF));
}

// --------------------------------------------------------------------------
// Segment processing
// --------------------------------------------------------------------------

void TcpConnection::OnSegment(const TcpSegment& seg) {
  ++segments_received_;
  if (sim_.tracer().VerboseSample()) {
    sim_.tracer().Instant("tcp", "tcp.rx",
                          obs::TraceAttrs{}
                              .Conn(tuple_.ToString())
                              .Arg("seq", seg.seq)
                              .Arg("len", seg.payload.size())
                              .Arg("ack", seg.ack_flag ? seg.ack : 0));
  }
  switch (state_) {
    case TcpState::kClosed:
      if (!seg.rst) SendRst(seg.ack_flag ? seg.ack : 0);
      return;
    case TcpState::kListen:
      CRUZ_CHECK(false, "listener segments are demuxed by the stack");
      return;
    case TcpState::kSynSent: {
      if (seg.rst) {
        if (seg.ack_flag && seg.ack == snd_nxt_) {
          FailConnection(CRUZ_ECONNREFUSED);
        }
        return;
      }
      if (seg.syn && seg.ack_flag && seg.ack == snd_nxt_) {
        snd_una_ = seg.ack;
        irs_ = seg.seq;
        snd_wnd_ = seg.window;
        recv_.emplace(cfg_.recv_buffer_capacity, irs_ + 1);
        CancelRto();
        backoff_count_ = 0;
        rto_ = cfg_.initial_rto;
        EnterEstablished();
        SendAck();
        TrySend();
      }
      return;
    }
    case TcpState::kSynReceived: {
      if (seg.rst) {
        FailConnection(CRUZ_ECONNRESET);
        return;
      }
      if (seg.syn && !seg.ack_flag && seg.seq == irs_) {
        EmitControl(/*syn_flag=*/true, /*fin_flag=*/false, iss_);
        return;  // duplicate SYN: re-answer with SYN+ACK
      }
      if (seg.ack_flag && seg.ack == snd_nxt_) {
        snd_una_ = seg.ack;
        snd_wnd_ = seg.window;
        CancelRto();
        backoff_count_ = 0;
        rto_ = cfg_.initial_rto;
        EnterEstablished();
        // The establishing ACK may piggyback data or FIN; fall through.
        if (!seg.payload.empty()) ProcessPayload(seg);
        if (seg.fin) ProcessFin(seg);
        TrySend();
      }
      return;
    }
    default:
      break;  // synchronized states handled below
  }

  // --- synchronized states -------------------------------------------------
  if (seg.rst) {
    // Accept an RST whose sequence number is within the receive window.
    Seq wnd_end = recv_->rcv_nxt() + recv_->Window();
    if (SeqGe(seg.seq, recv_->rcv_nxt()) && SeqLt(seg.seq, wnd_end)) {
      FailConnection(CRUZ_ECONNRESET);
    }
    return;
  }
  if (seg.syn && SeqLt(seg.seq, recv_->rcv_nxt())) {
    SendAck();  // stale duplicate SYN: challenge-ack
    return;
  }
  if (seg.ack_flag) {
    ProcessAck(seg);
    if (state_ == TcpState::kClosed) return;
  }
  if (!seg.payload.empty()) {
    ProcessPayload(seg);
  }
  if (seg.fin) {
    ProcessFin(seg);
  }
}

void TcpConnection::ProcessAck(const TcpSegment& seg) {
  Seq ack = seg.ack;
  // Upper bound of acknowledgeable sequence space: everything the
  // application has written (whether or not this incarnation of the
  // connection has transmitted it yet) plus a pending FIN. After a restore
  // — or after a go-back-N timeout — the peer's cumulative ACK may exceed
  // snd_nxt while still being genuine: it covers bytes a previous
  // transmission delivered. Such ACKs are accepted and snd_nxt
  // fast-forwards past the acknowledged data.
  Seq limit = write_seq_ + (FinSent() ? 1 : 0);
  if (SeqGt(ack, limit)) {
    // ACK for data that does not exist in our stream: bogus; answer with
    // an ACK and drop (RFC 793).
    SendAck();
    return;
  }
  if (SeqGt(ack, snd_una_)) {
    std::uint32_t acked = SeqDiff(snd_una_, ack);
    if (SeqGt(ack, snd_nxt_)) snd_nxt_ = ack;
    MaybeSampleRtt(ack);
    send_.AckUpTo(ack);
    snd_una_ = ack;
    OnAckAdvance(acked, retransmit_recovery_);
    dup_acks_ = 0;
    backoff_count_ = 0;
    snd_wnd_ = seg.window;
    CancelPersist();  // fresh window information; re-armed if still blocked
    // Congestion window growth: slow start below ssthresh, then one MSS
    // per window's worth of ACKed bytes (byte-counting CA).
    if (cwnd_ < ssthresh_) {
      cwnd_ += std::min(acked, cfg_.mss);
    } else {
      bytes_acked_in_ca_ += acked;
      if (bytes_acked_in_ca_ >= cwnd_) {
        bytes_acked_in_ca_ = 0;
        cwnd_ += cfg_.mss;
      }
    }
    if (FinSent() && !fin_acked_ && SeqGe(snd_una_, FinSeq() + 1)) {
      fin_acked_ = true;
      switch (state_) {
        case TcpState::kFinWait1:
          state_ = TcpState::kFinWait2;
          break;
        case TcpState::kClosing:
          EnterTimeWait();
          break;
        case TcpState::kLastAck:
          FinishClose();
          return;
        default:
          break;
      }
    }
    if (snd_una_ == snd_nxt_) {
      CancelRto();
      rto_ = std::clamp(rto_, cfg_.min_rto, cfg_.max_rto);
    } else {
      ArmRto();  // restart for the next outstanding segment
    }
    TrySend();
    if (cb_.on_writable && send_.FreeBytes() > 0) cb_.on_writable();
    return;
  }
  // ack <= snd_una: old or duplicate ACK.
  if (ack == snd_una_) {
    snd_wnd_ = seg.window;  // window update
    CancelPersist();
    bool pure_dup = seg.payload.empty() && !seg.fin && !seg.syn &&
                    snd_una_ != snd_nxt_;
    if (pure_dup && ++dup_acks_ == 3) {
      // Fast retransmit of the oldest outstanding segment.
      const SendSegment* s = send_.SegmentAt(snd_una_);
      if (s != nullptr) {
        std::uint32_t inflight = SeqDiff(snd_una_, snd_nxt_);
        ssthresh_ = std::max(inflight / 2, 2 * cfg_.mss);
        cwnd_ = ssthresh_;
        bytes_acked_in_ca_ = 0;
        rtt_sample_end_.reset();  // Karn: invalidate the RTT sample
        if (!retransmit_recovery_) {
          retransmit_recovery_ = true;
          recovery_started_at_ = sim_.Now();
        }
        sim_.tracer().Instant("tcp", "tcp.fast_retransmit",
                              obs::TraceAttrs{}
                                  .Conn(tuple_.ToString())
                                  .Arg("seq", s->seq));
        EmitDataSegment(*s, /*retransmit=*/true);
        send_.MarkTransmitted(s->seq);
        ArmRto();
      }
    }
    TrySend();  // the window may have opened
  }
}

void TcpConnection::ProcessPayload(const TcpSegment& seg) {
  if (!recv_) return;
  bool advanced = recv_->Insert(seg.seq, seg.payload);
  // Quick-ACK every data segment: in-order data is cumulatively ACKed,
  // out-of-order or duplicate data generates the duplicate ACKs the sender
  // needs for fast retransmit — and, after a restore, the ACKs that move
  // the peer past its replayed packets.
  SendAck();
  if (advanced && cb_.on_readable) cb_.on_readable();
}

void TcpConnection::ProcessFin(const TcpSegment& seg) {
  if (!recv_) return;
  Seq fin_seq = seg.seq + static_cast<Seq>(seg.payload.size());
  if (SeqLt(fin_seq, recv_->rcv_nxt())) {
    SendAck();  // duplicate FIN (we already consumed it)
    return;
  }
  if (fin_seq != recv_->rcv_nxt()) {
    return;  // FIN beyond a gap; the missing data will be retransmitted
  }
  recv_->ConsumeFin();
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      if (fin_acked_) {
        EnterTimeWait();
      } else {
        state_ = TcpState::kClosing;
      }
      break;
    case TcpState::kFinWait2:
      EnterTimeWait();
      break;
    default:
      break;  // duplicate FIN in CLOSING/TIME_WAIT handled above
  }
  SendAck();
  if (cb_.on_remote_close) cb_.on_remote_close();
  if (cb_.on_readable) cb_.on_readable();  // wake readers to observe EOF
}

// --------------------------------------------------------------------------
// State transitions
// --------------------------------------------------------------------------

void TcpConnection::EnterEstablished() {
  state_ = TcpState::kEstablished;
  if (cb_.on_established) cb_.on_established();
}

void TcpConnection::EnterTimeWait() {
  state_ = TcpState::kTimeWait;
  CancelRto();
  if (time_wait_timer_ == sim::kInvalidEventId) {
    time_wait_timer_ =
        sim_.Schedule(cfg_.time_wait_duration, [this] {
          time_wait_timer_ = sim::kInvalidEventId;
          FinishClose();
        });
  }
}

void TcpConnection::FailConnection(Errno err) {
  pending_error_ = err;
  CancelRto();
  CancelPersist();
  if (time_wait_timer_ != sim::kInvalidEventId) {
    sim_.Cancel(time_wait_timer_);
    time_wait_timer_ = sim::kInvalidEventId;
  }
  state_ = TcpState::kClosed;
  if (cb_.on_error) cb_.on_error(err);
}

void TcpConnection::FinishClose() {
  CancelRto();
  CancelPersist();
  if (time_wait_timer_ != sim::kInvalidEventId) {
    sim_.Cancel(time_wait_timer_);
    time_wait_timer_ = sim::kInvalidEventId;
  }
  state_ = TcpState::kClosed;
  if (cb_.on_closed) cb_.on_closed();
}

// --------------------------------------------------------------------------
// Timers / RTT
// --------------------------------------------------------------------------

void TcpConnection::ArmRto() {
  CancelRto();
  rto_timer_ = sim_.Schedule(rto_, [this] {
    rto_timer_ = sim::kInvalidEventId;
    OnRtoExpired();
  });
}

void TcpConnection::CancelRto() {
  if (rto_timer_ != sim::kInvalidEventId) {
    sim_.Cancel(rto_timer_);
    rto_timer_ = sim::kInvalidEventId;
  }
}

void TcpConnection::OnRtoExpired() {
  switch (state_) {
    case TcpState::kSynSent:
      if (++backoff_count_ > cfg_.max_syn_retransmits) {
        FailConnection(CRUZ_ETIMEDOUT);
        return;
      }
      EmitControl(/*syn_flag=*/true, /*fin_flag=*/false, iss_);
      ++retransmissions_;
      rto_ = std::min<DurationNs>(rto_ * 2, cfg_.max_rto);
      ArmRto();
      return;
    case TcpState::kSynReceived:
      if (++backoff_count_ > cfg_.max_syn_retransmits) {
        FailConnection(CRUZ_ETIMEDOUT);
        return;
      }
      EmitControl(/*syn_flag=*/true, /*fin_flag=*/false, iss_);
      ++retransmissions_;
      rto_ = std::min<DurationNs>(rto_ * 2, cfg_.max_rto);
      ArmRto();
      return;
    case TcpState::kClosed:
    case TcpState::kTimeWait:
      return;
    default:
      break;
  }
  if (snd_una_ == snd_nxt_) return;  // nothing outstanding
  if (++backoff_count_ > cfg_.max_retransmits) {
    FailConnection(CRUZ_ETIMEDOUT);
    return;
  }
  // Timeout congestion response: halve the pipe estimate, restart from one
  // MSS in slow start (this produces the Fig. 6 backoff curve), and go
  // back to snd_una — the whole unacknowledged flight is resent as the
  // congestion window reopens, which is how an entire flight dropped by
  // the checkpoint packet filter is recovered.
  std::uint32_t inflight = SeqDiff(snd_una_, snd_nxt_);
  ssthresh_ = std::max(inflight / 2, 2 * cfg_.mss);
  cwnd_ = cfg_.mss;
  bytes_acked_in_ca_ = 0;
  dup_acks_ = 0;
  rtt_sample_end_.reset();  // Karn's algorithm
  snd_nxt_ = snd_una_;      // go-back-N

  if (!retransmit_recovery_) {
    retransmit_recovery_ = true;
    recovery_started_at_ = sim_.Now();
  }
  sim_.tracer().Instant("tcp", "tcp.rto",
                        obs::TraceAttrs{}
                            .Conn(tuple_.ToString())
                            .Arg("inflight", inflight)
                            .Arg("backoff", static_cast<std::uint64_t>(
                                                backoff_count_))
                            .Arg("rto_ns", rto_));
  sim_.metrics().counter("tcp.rto_total").Add();

  rto_ = std::min<DurationNs>(rto_ * 2, cfg_.max_rto);
  ArmRto();
  TrySend();
}

void TcpConnection::OnAckAdvance(std::uint32_t acked_bytes,
                                 bool was_retransmit_recovery) {
  if (!was_retransmit_recovery) return;
  // First cumulative-ACK advance after a loss episode: the peer is
  // receiving our retransmissions again. This is the Fig. 6 "recovered"
  // moment — recovery_ns measures RTO/fast-retransmit until here.
  retransmit_recovery_ = false;
  sim_.tracer().Instant("tcp", "tcp.recovered",
                        obs::TraceAttrs{}
                            .Conn(tuple_.ToString())
                            .Arg("acked_bytes", acked_bytes)
                            .Arg("recovery_ns",
                                 sim_.Now() - recovery_started_at_));
}

void TcpConnection::MaybeSampleRtt(Seq ack) {
  if (!rtt_sample_end_.has_value() || SeqLt(ack, *rtt_sample_end_)) return;
  double sample = static_cast<double>(sim_.Now() - rtt_sample_sent_at_);
  rtt_sample_end_.reset();
  if (!rtt_valid_) {
    srtt_ns_ = sample;
    rttvar_ns_ = sample / 2;
    rtt_valid_ = true;
  } else {
    constexpr double kAlpha = 1.0 / 8.0;
    constexpr double kBeta = 1.0 / 4.0;
    rttvar_ns_ = (1 - kBeta) * rttvar_ns_ +
                 kBeta * std::abs(srtt_ns_ - sample);
    srtt_ns_ = (1 - kAlpha) * srtt_ns_ + kAlpha * sample;
  }
  double rto = srtt_ns_ +
               std::max(static_cast<double>(cfg_.rto_granularity),
                        4 * rttvar_ns_);
  rto_ = std::clamp(static_cast<DurationNs>(rto), cfg_.min_rto, cfg_.max_rto);
}

// --------------------------------------------------------------------------
// Checkpoint-restart
// --------------------------------------------------------------------------

TcpConnCheckpoint TcpConnection::ExportCheckpoint() const {
  TcpConnCheckpoint ck;
  ck.tuple = tuple_;
  ck.state = state_;
  ck.iss = iss_;
  ck.irs = irs_;
  ck.snd_una = snd_una_;
  ck.rcv_nxt = recv_ ? recv_->rcv_nxt() : 0;
  ck.snd_wnd = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(snd_wnd_, 0xFFFF));
  ck.nagle_enabled = nagle_;
  ck.cork_enabled = cork_;
  ck.cwnd_bytes = cwnd_;
  ck.ssthresh_bytes = ssthresh_;
  ck.app_closed = app_closed_;
  ck.fin_acked = fin_acked_;
  // Send-buffer walk: every segment from snd_una onward, one entry per
  // packet, boundaries preserved.
  for (const SendSegment& seg : send_.segments()) {
    ck.send_packets.push_back(seg.data);
  }
  // Receive-buffer peek (MSG_PEEK semantics: non-destructive).
  if (recv_) {
    recv_->PeekAll(ck.recv_pending);
  }
  std::uint64_t send_bytes = 0;
  for (const cruz::Bytes& p : ck.send_packets) send_bytes += p.size();
  sim_.tracer().Instant("tcp", "tcp.export",
                        obs::TraceAttrs{}
                            .Conn(tuple_.ToString())
                            .Arg("snd_una", ck.snd_una)
                            .Arg("snd_nxt", snd_nxt_)
                            .Arg("rcv_nxt", ck.rcv_nxt)
                            .Arg("send_buffer_bytes", send_bytes)
                            .Arg("recv_buffer_bytes",
                                 ck.recv_pending.size()));
  sim_.metrics().counter("tcp.exports_total").Add();
  return ck;
}

std::unique_ptr<TcpConnection> TcpConnection::Restore(
    sim::Simulator& sim, const TcpConfig& cfg, const TcpConnCheckpoint& ck,
    OutputFn output, Callbacks callbacks) {
  auto c = std::make_unique<TcpConnection>(sim, cfg, ck.tuple,
                                           std::move(output),
                                           std::move(callbacks));
  std::uint64_t replay_bytes = 0;
  for (const cruz::Bytes& p : ck.send_packets) replay_bytes += p.size();
  sim.tracer().Instant("tcp", "tcp.restore",
                       obs::TraceAttrs{}
                           .Conn(ck.tuple.ToString())
                           .Arg("snd_una", ck.snd_una)
                           .Arg("rcv_nxt", ck.rcv_nxt)
                           .Arg("replay_packets", ck.send_packets.size())
                           .Arg("replay_bytes", replay_bytes));
  sim.metrics().counter("tcp.restores_total").Add();
  c->state_ = ck.state;
  c->iss_ = ck.iss;
  c->irs_ = ck.irs;
  // The two-sequence-number rewrite: the restored socket starts with
  // snd_nxt == snd_una (empty send buffer, "data not yet issued") and the
  // saved rcv_nxt (empty receive buffer, "data already delivered").
  c->snd_una_ = ck.snd_una;
  c->snd_nxt_ = ck.snd_una;
  c->write_seq_ = ck.snd_una;
  c->snd_wnd_ = ck.snd_wnd;
  c->nagle_ = ck.nagle_enabled;
  c->cork_ = ck.cork_enabled;
  c->cwnd_ = std::max(ck.cwnd_bytes, cfg.mss);
  c->ssthresh_ = ck.ssthresh_bytes;
  c->app_closed_ = ck.app_closed;
  c->fin_acked_ = ck.fin_acked;

  switch (ck.state) {
    case TcpState::kClosed:
      return c;
    case TcpState::kSynSent:
      // Re-send the SYN; the normal handshake machinery takes over.
      c->snd_nxt_ = ck.snd_una + 1;
      c->write_seq_ = c->snd_nxt_;
      c->EmitControl(/*syn_flag=*/true, /*fin_flag=*/false, c->iss_);
      c->ArmRto();
      return c;
    default:
      break;
  }
  c->recv_.emplace(cfg.recv_buffer_capacity, ck.rcv_nxt);
  if (ck.state == TcpState::kSynReceived) {
    c->snd_nxt_ = ck.snd_una + 1;
    c->write_seq_ = c->snd_nxt_;
    c->EmitControl(/*syn_flag=*/true, /*fin_flag=*/false, c->iss_);
    c->ArmRto();
    return c;
  }
  if (ck.fin_acked) {
    // Our FIN is already acknowledged; snd_una sits one past it.
    c->fin_seq_ = ck.snd_una - 1;
  }
  // Replay the saved send-buffer packets as sealed segments. Packet
  // boundaries are preserved exactly: each saved packet becomes one
  // segment regardless of Nagle/CORK (the sealed flag bypasses both,
  // which is the simulation's equivalent of "temporarily set the socket
  // TCP options to disable the Nagle algorithm ... before issuing the
  // send system calls").
  for (const cruz::Bytes& pkt : ck.send_packets) {
    c->send_.AppendSealed(pkt, c->write_seq_);
    c->write_seq_ += static_cast<Seq>(pkt.size());
  }
  if (ck.state == TcpState::kTimeWait) {
    c->EnterTimeWait();
    return c;
  }
  // Kick the transmit pump: replayed packets (and a pending FIN) go out
  // immediately. If the node's packet filter is still dropping traffic,
  // the retransmission timer recovers them once communication is enabled.
  c->TrySend();
  return c;
}

// --------------------------------------------------------------------------
// Checkpoint serialization
// --------------------------------------------------------------------------

void TcpConnCheckpoint::Serialize(cruz::ByteWriter& w) const {
  w.PutU32(tuple.local.ip.value);
  w.PutU16(tuple.local.port);
  w.PutU32(tuple.remote.ip.value);
  w.PutU16(tuple.remote.port);
  w.PutU8(static_cast<std::uint8_t>(state));
  w.PutU32(iss);
  w.PutU32(irs);
  w.PutU32(snd_una);
  w.PutU32(rcv_nxt);
  w.PutU16(snd_wnd);
  w.PutBool(nagle_enabled);
  w.PutBool(cork_enabled);
  w.PutU32(cwnd_bytes);
  w.PutU32(ssthresh_bytes);
  w.PutBool(app_closed);
  w.PutBool(fin_acked);
  w.PutU32(static_cast<std::uint32_t>(send_packets.size()));
  for (const auto& p : send_packets) w.PutBlob(p);
  w.PutBlob(recv_pending);
}

TcpConnCheckpoint TcpConnCheckpoint::Deserialize(cruz::ByteReader& r) {
  TcpConnCheckpoint ck;
  ck.tuple.local.ip.value = r.GetU32();
  ck.tuple.local.port = r.GetU16();
  ck.tuple.remote.ip.value = r.GetU32();
  ck.tuple.remote.port = r.GetU16();
  std::uint8_t st = r.GetU8();
  if (st > static_cast<std::uint8_t>(TcpState::kTimeWait)) {
    throw cruz::CodecError("invalid TCP state in checkpoint");
  }
  ck.state = static_cast<TcpState>(st);
  ck.iss = r.GetU32();
  ck.irs = r.GetU32();
  ck.snd_una = r.GetU32();
  ck.rcv_nxt = r.GetU32();
  ck.snd_wnd = r.GetU16();
  ck.nagle_enabled = r.GetBool();
  ck.cork_enabled = r.GetBool();
  ck.cwnd_bytes = r.GetU32();
  ck.ssthresh_bytes = r.GetU32();
  ck.app_closed = r.GetBool();
  ck.fin_acked = r.GetBool();
  std::uint32_t n = r.GetU32();
  ck.send_packets.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ck.send_packets.push_back(r.GetBlob());
  }
  ck.recv_pending = r.GetBlob();
  return ck;
}

}  // namespace cruz::tcp
