// TCP segment wire format.
//
// A 20-byte fixed header plus an optional MSS option (on SYN segments),
// matching the classic layout (RFC 793). Checksums are carried by the
// simulated IPv4 layer; the TCP checksum field is reserved-zero here.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "tcp/seq.h"

namespace cruz::tcp {

constexpr std::size_t kTcpHeaderSize = 20;
constexpr std::size_t kTcpMssOptionSize = 4;

struct TcpSegment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Seq seq = 0;
  Seq ack = 0;
  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;
  std::uint16_t window = 0;
  std::uint16_t mss_option = 0;  // 0 = option absent; only valid with syn
  cruz::Bytes payload;

  // Sequence space this segment occupies (payload + SYN/FIN flags).
  std::uint32_t SeqLen() const {
    return static_cast<std::uint32_t>(payload.size()) + (syn ? 1u : 0u) +
           (fin ? 1u : 0u);
  }
  Seq SeqEnd() const { return seq + SeqLen(); }

  std::size_t WireSize() const {
    return kTcpHeaderSize + (mss_option ? kTcpMssOptionSize : 0) +
           payload.size();
  }

  cruz::Bytes Encode() const;
  static TcpSegment Decode(cruz::ByteSpan wire);

  // Compact human-readable form for logs: "[SYN,ACK seq=1 ack=2 len=0]".
  std::string ToString() const;
};

}  // namespace cruz::tcp
