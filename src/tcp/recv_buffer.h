// TCP receive buffer: in-order byte queue plus out-of-order reassembly.
//
// Incoming segments are trimmed against rcv_nxt and the advertised window,
// contiguous data is appended to the in-order queue, and out-of-order
// segments are parked in a reassembly map until the gap fills. Reads support
// MSG_PEEK semantics — the checkpoint engine peeks the undelivered bytes
// without consuming them (paper §4.1).
#pragma once

#include <cstdint>
#include <map>

#include "common/bytes.h"
#include "tcp/seq.h"

namespace cruz::tcp {

class RecvBuffer {
 public:
  RecvBuffer(std::size_t capacity_bytes, Seq rcv_nxt)
      : capacity_(capacity_bytes), rcv_nxt_(rcv_nxt) {}

  // Ingests segment payload starting at `seq`. Data below rcv_nxt or beyond
  // the window is trimmed. Returns true if rcv_nxt advanced.
  bool Insert(Seq seq, cruz::ByteSpan data);

  // Copies up to `max` readable bytes into `out`; consumes them unless
  // `peek` is set. Returns the number of bytes copied.
  std::size_t Read(cruz::Bytes& out, std::size_t max, bool peek);

  std::size_t ReadableBytes() const { return ordered_.size(); }

  // Appends all readable bytes to `out` without consuming them (MSG_PEEK).
  void PeekAll(cruz::Bytes& out) const {
    out.insert(out.end(), ordered_.begin(), ordered_.end());
  }

  // Receive window to advertise: free space for in-order data.
  std::uint32_t Window() const {
    std::size_t used = ordered_.size() + ooo_bytes_;
    return used >= capacity_ ? 0
                             : static_cast<std::uint32_t>(capacity_ - used);
  }

  Seq rcv_nxt() const { return rcv_nxt_; }

  // Consumes the peer's FIN (advances rcv_nxt over the FIN's sequence slot).
  void ConsumeFin() { ++rcv_nxt_; }

 private:
  void MergeOutOfOrder();

  std::size_t capacity_;
  Seq rcv_nxt_;
  cruz::Bytes ordered_;                 // in-order, undelivered bytes
  struct SeqLess {
    bool operator()(Seq a, Seq b) const { return SeqLt(a, b); }
  };
  std::map<Seq, cruz::Bytes, SeqLess> ooo_;  // reassembly queue, by seq
  std::size_t ooo_bytes_ = 0;
};

}  // namespace cruz::tcp
