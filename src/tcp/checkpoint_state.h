// The per-connection state captured at checkpoint time (paper §4.1).
//
// This is the "modified version of the TCP connection state which reflects
// an empty receive buffer ... and an empty send buffer": the saved snd_nxt
// is rewritten to unack_nxt (snd_una), send-buffer contents are saved as a
// list of packets whose boundaries must be preserved at restore, and
// received-but-undelivered bytes are saved separately so the restore engine
// can feed them through the pod's alternate receive buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "net/address.h"
#include "tcp/seq.h"
#include "tcp/state.h"

namespace cruz::tcp {

struct TcpConnCheckpoint {
  net::FourTuple tuple;
  TcpState state = TcpState::kClosed;

  Seq iss = 0;  // initial send sequence number
  Seq irs = 0;  // initial receive sequence number

  // unack_nxt in the paper's Fig. 3. The saved snd_nxt equals this value;
  // the send-buffer packets below re-advance it at restore.
  Seq snd_una = 0;
  Seq rcv_nxt = 0;

  std::uint16_t snd_wnd = 0;  // last peer-advertised window

  // Socket options that affect packetization (restored before replay).
  bool nagle_enabled = true;
  bool cork_enabled = false;

  // Congestion state (saved so post-restart behaviour matches the live
  // connection, including any backoff in progress).
  std::uint32_t cwnd_bytes = 0;
  std::uint32_t ssthresh_bytes = 0;

  // True if the application had already called close() (a FIN is pending
  // or in flight); the restore engine re-issues the close after replay.
  bool app_closed = false;
  // True if our FIN was already acknowledged by the peer.
  bool fin_acked = false;

  // Send-buffer contents from snd_una onward, one entry per packet
  // ("the data packetization indicated in the send buffer must be
  // preserved across checkpoint and restart").
  std::vector<cruz::Bytes> send_packets;

  // In-order received bytes not yet delivered to the application, obtained
  // with MSG_PEEK semantics. Restored via the pod's alternate buffer, not
  // through the TCP receive path.
  cruz::Bytes recv_pending;

  std::uint64_t TotalBytes() const {
    std::uint64_t n = recv_pending.size();
    for (const auto& p : send_packets) n += p.size();
    return n;
  }

  void Serialize(cruz::ByteWriter& w) const;
  static TcpConnCheckpoint Deserialize(cruz::ByteReader& r);
};

}  // namespace cruz::tcp
