// Tunables for the simulated TCP implementation.
//
// Defaults approximate the Linux 2.4-era stack the paper used: 1460-byte
// MSS, 200 ms minimum RTO, exponential backoff, 64 KiB socket buffers.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace cruz::tcp {

struct TcpConfig {
  std::uint32_t mss = 1460;
  std::size_t send_buffer_capacity = 64 * 1024;
  std::size_t recv_buffer_capacity = 64 * 1024;

  // RFC 6298-style retransmission timeout bounds. Linux clamps the minimum
  // RTO at 200 ms, which is what produces the ~100 ms communication gap
  // after a checkpoint in the paper's Fig. 6.
  DurationNs initial_rto = 1 * kSecond;
  DurationNs min_rto = 200 * kMillisecond;
  DurationNs max_rto = 60 * kSecond;
  DurationNs rto_granularity = 1 * kMillisecond;

  int max_retransmits = 15;
  int max_syn_retransmits = 6;

  DurationNs time_wait_duration = 10 * kSecond;

  // Initial congestion window in segments (classic Linux: ~3 MSS).
  std::uint32_t initial_cwnd_segments = 3;
};

}  // namespace cruz::tcp
