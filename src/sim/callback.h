// Small-buffer-optimized callable for simulator events.
//
// Scheduling a timer used to heap-allocate a std::function for every
// event — at millions of events per run the allocator dominated the DES
// kernel profile. SimCallback stores small callables (the common case:
// a few pointers plus a moved-in Bytes buffer) inline in 48 bytes and
// only falls back to the heap for oversized or throwing-move captures.
// It is move-only, so frame buffers and other resources can be moved
// into an event instead of copied to satisfy std::function's
// copyability requirement.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace cruz::sim {

class SimCallback {
 public:
  SimCallback() = default;
  SimCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SimCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SimCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
      relocate_ = [](void* s, void* dst) {
        Fn* fn = std::launder(reinterpret_cast<Fn*>(s));
        if (dst != nullptr) ::new (dst) Fn(std::move(*fn));
        fn->~Fn();
      };
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* s) { (**reinterpret_cast<Fn**>(s))(); };
      relocate_ = [](void* s, void* dst) {
        Fn** fn = reinterpret_cast<Fn**>(s);
        if (dst != nullptr) {
          ::new (dst) Fn*(*fn);
        } else {
          delete *fn;
        }
      };
    }
  }

  SimCallback(SimCallback&& other) noexcept { MoveFrom(other); }
  SimCallback& operator=(SimCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  SimCallback(const SimCallback&) = delete;
  SimCallback& operator=(const SimCallback&) = delete;

  ~SimCallback() { Reset(); }

  void operator()() { invoke_(storage_); }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  // 48 bytes covers every hot capture in the tree (the largest, a switch
  // frame delivery, is {this, port, nic, Bytes} = 48 on LP64) without
  // bloating the event-queue slots.
  static constexpr std::size_t kInlineSize = 48;

  void Reset() {
    if (relocate_ != nullptr) {
      relocate_(storage_, nullptr);
      invoke_ = nullptr;
      relocate_ = nullptr;
    }
  }
  void MoveFrom(SimCallback& other) noexcept {
    if (other.relocate_ != nullptr) {
      other.relocate_(other.storage_, storage_);
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
    }
  }

  using Invoke = void (*)(void*);
  // relocate(src, dst): move-construct into dst then destroy src, or
  // just destroy src when dst is null.
  using Relocate = void (*)(void*, void*);

  Invoke invoke_ = nullptr;
  Relocate relocate_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

}  // namespace cruz::sim
