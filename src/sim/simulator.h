// The Simulator owns simulated time, the event queue, and the root RNG.
//
// The whole cluster (nodes, network, protocols, workloads) hangs off one
// Simulator instance and advances by draining events. Execution is strictly
// single-threaded and deterministic: the same seed and the same schedule of
// API calls produce bit-identical runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace cruz::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Per-run observability: every layer reaches the tracer and metrics
  // through the simulator, and events are stamped with simulated time —
  // so same-seed runs export byte-identical traces.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Schedules `cb` after `delay` (relative) or at `when` (absolute; must not
  // be in the past).
  EventId Schedule(DurationNs delay, EventQueue::Callback cb);
  EventId ScheduleAt(TimeNs when, EventQueue::Callback cb);
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs until the queue drains or `Stop()` is called.
  void Run();
  // Runs until simulated time reaches `deadline` (events at exactly
  // `deadline` still fire), the queue drains, or Stop() is called.
  void RunUntil(TimeNs deadline);
  void RunFor(DurationNs duration) { RunUntil(now_ + duration); }
  // Runs events one at a time while `predicate()` is false; returns true if
  // the predicate became true, false if the queue drained or the optional
  // deadline passed first.
  bool RunWhile(const std::function<bool()>& predicate,
                TimeNs deadline = ~0ull);

  void Stop() { stopped_ = true; }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  // Pops the earliest event, advances the clock to its timestamp, runs it.
  void StepOne();

  TimeNs now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  EventQueue queue_;
  Rng rng_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
};

}  // namespace cruz::sim
