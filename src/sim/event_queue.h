// Deterministic discrete-event queue.
//
// Events fire in (time, insertion-sequence) order so that ties are broken
// deterministically. Cancellation is O(1) via tombstones: a cancelled event
// stays in the heap but is skipped when it reaches the top.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace cruz::sim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `cb` at absolute simulated time `when`. Returns an id usable
  // with Cancel().
  EventId ScheduleAt(TimeNs when, Callback cb);

  // Cancels a pending event. Returns true iff the event was still pending
  // (not yet fired and not already cancelled).
  bool Cancel(EventId id);

  bool IsPending(EventId id) const { return pending_.count(id) != 0; }

  bool Empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  // Time of the earliest pending event. Queue must not be empty.
  TimeNs NextTime() const;

  // Pops the earliest pending event without running it; stores its time in
  // *when. The caller runs the callback (after advancing its clock, so the
  // callback observes the event's own timestamp as "now").
  Callback PopNext(TimeNs* when);

  // Pops and runs the earliest pending event; returns its time. Convenience
  // for callers without a clock (unit tests).
  TimeNs RunNext();

 private:
  struct Entry {
    TimeNs when;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  void SkipCancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
};

}  // namespace cruz::sim
