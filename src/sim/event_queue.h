// Deterministic discrete-event queue.
//
// Events fire in (time, insertion-sequence) order so that ties are broken
// deterministically — that contract is what makes same-seed runs
// bit-identical, and it is unchanged from the original priority_queue
// design (proven by the differential tests in tests/sim_test.cc and the
// trace goldens in tests/goldens/).
//
// Internally this is an indexed 4-ary heap over a slot slab:
//
//   * slots_ owns the event records (time, tie-break sequence, callback)
//     and recycles them through a free list, so a steady schedule/cancel
//     workload reaches a fixed footprint and stops allocating;
//   * heap_ holds slot indices ordered by (when, seq); each slot tracks
//     its heap position, so Cancel() removes the entry *eagerly* in
//     O(log n). The previous design left cancelled entries in the heap
//     as tombstones until popped, which made long-lived periodic timers
//     (heartbeats, RTO reschedules, flush retries) grow the heap without
//     bound over million-event runs;
//   * EventId packs {slot index, per-slot generation}, so Cancel() and
//     IsPending() are O(1) array probes — no hash table on the hot path.
//
// Callbacks are SimCallback (see callback.h): small captures live inline
// in the slot, so scheduling a timer does not touch the allocator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "sim/callback.h"

namespace cruz::sim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = SimCallback;

  // Schedules `cb` at absolute simulated time `when`. Returns an id usable
  // with Cancel().
  EventId ScheduleAt(TimeNs when, Callback cb);

  // Cancels a pending event. Returns true iff the event was still pending
  // (not yet fired and not already cancelled). The entry is removed
  // immediately; its slot and callback storage are recycled.
  bool Cancel(EventId id);

  bool IsPending(EventId id) const { return SlotFor(id) != kNoSlot; }

  bool Empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  // Time of the earliest pending event. Queue must not be empty.
  TimeNs NextTime() const;

  // Pops the earliest pending event without running it; stores its time in
  // *when. The caller runs the callback (after advancing its clock, so the
  // callback observes the event's own timestamp as "now").
  Callback PopNext(TimeNs* when);

  // Pops and runs the earliest pending event; returns its time. Convenience
  // for callers without a clock (unit tests).
  TimeNs RunNext();

  // Introspection for leak regression tests and benches: the number of
  // slab slots ever allocated. Bounded by the peak number of
  // *simultaneously pending* events — cancelled/fired slots are reused.
  std::size_t storage_slots() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Slot {
    TimeNs when = 0;
    std::uint64_t seq = 0;      // insertion order; the deterministic tie-break
    std::uint32_t generation = 0;
    std::uint32_t heap_pos = kNoSlot;  // kNoSlot when the slot is free
    std::uint32_t next_free = kNoSlot;
    Callback cb;
  };

  // Decodes an id; kNoSlot unless it names a currently pending event.
  std::uint32_t SlotFor(EventId id) const {
    std::uint32_t index = static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1;
    if (index >= slots_.size()) return kNoSlot;
    const Slot& slot = slots_[index];
    if (slot.heap_pos == kNoSlot ||
        slot.generation != static_cast<std::uint32_t>(id >> 32)) {
      return kNoSlot;
    }
    return index;
  }
  static EventId IdFor(std::uint32_t index, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) |
           (static_cast<EventId>(index) + 1);
  }

  bool Before(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.when != sb.when) return sa.when < sb.when;
    return sa.seq < sb.seq;
  }
  void SiftUp(std::uint32_t pos);
  void SiftDown(std::uint32_t pos);
  void RemoveAt(std::uint32_t pos);
  void FreeSlot(std::uint32_t index);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> heap_;  // slot indices, 4-ary min-heap
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
};

}  // namespace cruz::sim
