#include "sim/simulator.h"

#include "common/error.h"
#include "common/log.h"

namespace cruz::sim {
namespace {

// Hook for the logger: points at the most recently constructed live
// Simulator so log lines carry simulated time. Single-threaded by design.
Simulator* g_active = nullptr;

std::uint64_t ActiveSimTime() {
  return g_active ? g_active->Now() : ~0ull;
}

}  // namespace

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  g_active = this;
  Logger::SetSimTimeProvider(&ActiveSimTime);
  tracer_.SetClock([this] { return now_; });
}

Simulator::~Simulator() {
  if (g_active == this) {
    g_active = nullptr;
  }
}

EventId Simulator::Schedule(DurationNs delay, EventQueue::Callback cb) {
  return queue_.ScheduleAt(now_ + delay, std::move(cb));
}

EventId Simulator::ScheduleAt(TimeNs when, EventQueue::Callback cb) {
  CRUZ_CHECK(when >= now_, "ScheduleAt in the past");
  return queue_.ScheduleAt(when, std::move(cb));
}

void Simulator::StepOne() {
  TimeNs when = 0;
  EventQueue::Callback cb = queue_.PopNext(&when);
  now_ = when;  // advance the clock before the callback observes Now()
  cb();
  ++events_executed_;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && !queue_.Empty()) {
    StepOne();
  }
}

void Simulator::RunUntil(TimeNs deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.Empty() && queue_.NextTime() <= deadline) {
    StepOne();
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulator::RunWhile(const std::function<bool()>& predicate,
                         TimeNs deadline) {
  stopped_ = false;
  while (!stopped_) {
    if (predicate()) return true;
    if (queue_.Empty() || queue_.NextTime() > deadline) return false;
    StepOne();
  }
  return predicate();
}

}  // namespace cruz::sim
