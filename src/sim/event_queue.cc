#include "sim/event_queue.h"

#include "common/error.h"

namespace cruz::sim {

EventId EventQueue::ScheduleAt(TimeNs when, Callback cb) {
  EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(cb)});
  pending_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  return pending_.erase(id) != 0;
}

void EventQueue::SkipCancelled() const {
  // Entries whose id is no longer in pending_ were cancelled; drop them.
  while (!heap_.empty() &&
         pending_.find(heap_.top().id) == pending_.end()) {
    heap_.pop();
  }
}

TimeNs EventQueue::NextTime() const {
  SkipCancelled();
  CRUZ_CHECK(!heap_.empty(), "NextTime on empty queue");
  return heap_.top().when;
}

EventQueue::Callback EventQueue::PopNext(TimeNs* when) {
  SkipCancelled();
  CRUZ_CHECK(!heap_.empty(), "PopNext on empty queue");
  // Move the callback out before running it: the callback may schedule or
  // cancel other events, mutating the heap.
  Entry entry{heap_.top().when, heap_.top().id,
              std::move(const_cast<Entry&>(heap_.top()).cb)};
  heap_.pop();
  pending_.erase(entry.id);
  *when = entry.when;
  return std::move(entry.cb);
}

TimeNs EventQueue::RunNext() {
  TimeNs when = 0;
  Callback cb = PopNext(&when);
  cb();
  return when;
}

}  // namespace cruz::sim
