#include "sim/event_queue.h"

#include <utility>

#include "common/error.h"

namespace cruz::sim {

namespace {
constexpr std::uint32_t kArity = 4;
}  // namespace

EventId EventQueue::ScheduleAt(TimeNs when, Callback cb) {
  std::uint32_t index;
  if (free_head_ != kNoSlot) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.when = when;
  slot.seq = next_seq_++;
  slot.cb = std::move(cb);
  slot.heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(index);
  SiftUp(slot.heap_pos);
  return IdFor(index, slot.generation);
}

bool EventQueue::Cancel(EventId id) {
  std::uint32_t index = SlotFor(id);
  if (index == kNoSlot) return false;
  RemoveAt(slots_[index].heap_pos);
  FreeSlot(index);
  return true;
}

TimeNs EventQueue::NextTime() const {
  CRUZ_CHECK(!heap_.empty(), "NextTime on empty queue");
  return slots_[heap_[0]].when;
}

EventQueue::Callback EventQueue::PopNext(TimeNs* when) {
  CRUZ_CHECK(!heap_.empty(), "PopNext on empty queue");
  std::uint32_t index = heap_[0];
  Slot& slot = slots_[index];
  *when = slot.when;
  // Move the callback out before running it: the callback may schedule or
  // cancel other events, mutating the heap and the slab.
  Callback cb = std::move(slot.cb);
  RemoveAt(0);
  FreeSlot(index);
  return cb;
}

TimeNs EventQueue::RunNext() {
  TimeNs when = 0;
  Callback cb = PopNext(&when);
  cb();
  return when;
}

void EventQueue::SiftUp(std::uint32_t pos) {
  std::uint32_t moving = heap_[pos];
  while (pos > 0) {
    std::uint32_t parent = (pos - 1) / kArity;
    if (!Before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = moving;
  slots_[moving].heap_pos = pos;
}

void EventQueue::SiftDown(std::uint32_t pos) {
  std::uint32_t moving = heap_[pos];
  const std::uint32_t count = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    std::uint32_t first_child = pos * kArity + 1;
    if (first_child >= count) break;
    std::uint32_t last_child = first_child + kArity - 1;
    if (last_child >= count) last_child = count - 1;
    std::uint32_t best = first_child;
    for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], moving)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].heap_pos = pos;
    pos = best;
  }
  heap_[pos] = moving;
  slots_[moving].heap_pos = pos;
}

void EventQueue::RemoveAt(std::uint32_t pos) {
  std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail entry
  heap_[pos] = last;
  slots_[last].heap_pos = pos;
  // The displaced entry may need to move either direction relative to
  // its new neighbourhood.
  SiftUp(pos);
  SiftDown(slots_[last].heap_pos);
}

void EventQueue::FreeSlot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.cb = Callback();  // release any heap-spilled capture now
  slot.heap_pos = kNoSlot;
  ++slot.generation;
  slot.next_free = free_head_;
  free_head_ = index;
}

}  // namespace cruz::sim
