// Open file descriptions.
//
// As in Unix, a file descriptor indexes a (possibly shared, via dup) open
// file description carrying the per-open state: file offset for regular
// files, the pipe object and end for pipes, the socket id for sockets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "os/pipe.h"
#include "os/types.h"

namespace cruz::os {

struct FileDescription {
  enum class Kind : std::uint8_t {
    kFile = 0,
    kPipeRead,
    kPipeWrite,
    kTcpSocket,
    kUdpSocket,
  };

  Kind kind = Kind::kFile;

  // kFile
  std::string path;
  std::uint64_t offset = 0;

  // kPipeRead / kPipeWrite
  std::shared_ptr<Pipe> pipe;

  // kTcpSocket / kUdpSocket
  SocketId socket = 0;

  bool IsSocket() const {
    return kind == Kind::kTcpSocket || kind == Kind::kUdpSocket;
  }
};

}  // namespace cruz::os
