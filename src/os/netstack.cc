#include "os/netstack.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "sim/simulator.h"
#include "tcp/segment.h"

namespace cruz::os {

namespace {
// Local delivery (loopback) cost: a trip through the IP stack without the
// wire.
constexpr DurationNs kLoopbackDelay = 2 * kMicrosecond;
constexpr int kArpMaxRetries = 3;
constexpr DurationNs kArpRetryInterval = 500 * kMillisecond;
}  // namespace

NetworkStack::NetworkStack(sim::Simulator& sim, std::string node_name,
                           net::Nic* nic, tcp::TcpConfig tcp_config)
    : sim_(sim),
      node_name_(std::move(node_name)),
      nic_(nic),
      tcp_config_(tcp_config) {
  if (nic_ != nullptr) {
    nic_->set_receive_handler([this](cruz::ByteSpan wire) { OnFrame(wire); });
  }
}

void NetworkStack::WakeAll(std::vector<ThreadRef>& waiters) {
  if (waiters.empty()) return;
  if (wake_) {
    wake_(waiters);
  }
  waiters.clear();
}

// ---------------------------------------------------------------------------
// Interfaces
// ---------------------------------------------------------------------------

void NetworkStack::AddInterface(const std::string& name, net::MacAddress mac,
                                net::Ipv4Address ip, net::Ipv4Address netmask,
                                bool is_virtual) {
  CRUZ_CHECK(FindInterfaceByName(name) == nullptr,
             "duplicate interface " + name);
  interfaces_.push_back(Interface{name, mac, ip, netmask, is_virtual});
  if (nic_ != nullptr && mac != nic_->primary_mac()) {
    // VIF with its own MAC: program an additional hardware filter, or fall
    // back to promiscuous mode if the NIC cannot do that (paper §4.2).
    if (nic_->supports_multiple_macs()) {
      nic_->AddMacFilter(mac);
    } else {
      nic_->set_promiscuous(true);
    }
  }
  CRUZ_DEBUG("netstack") << node_name_ << ": interface " << name << " "
                         << ip.ToString() << " mac " << mac.ToString();
}

void NetworkStack::RemoveInterface(const std::string& name) {
  for (auto it = interfaces_.begin(); it != interfaces_.end(); ++it) {
    if (it->name == name) {
      if (nic_ != nullptr && it->mac != nic_->primary_mac()) {
        nic_->RemoveMacFilter(it->mac);
      }
      interfaces_.erase(it);
      return;
    }
  }
}

const Interface* NetworkStack::FindInterfaceByName(
    const std::string& name) const {
  for (const Interface& i : interfaces_) {
    if (i.name == name) return &i;
  }
  return nullptr;
}

const Interface* NetworkStack::FindInterfaceByIp(net::Ipv4Address ip) const {
  for (const Interface& i : interfaces_) {
    if (i.ip == ip) return &i;
  }
  return nullptr;
}

bool NetworkStack::OwnsIp(net::Ipv4Address ip) const {
  return FindInterfaceByIp(ip) != nullptr;
}

void NetworkStack::AnnounceAddress(net::Ipv4Address ip, net::MacAddress mac) {
  net::ArpPacket arp;
  arp.op = net::ArpOp::kRequest;  // gratuitous ARP is a broadcast request
  arp.sender_mac = mac;
  arp.sender_ip = ip;
  arp.target_mac = net::MacAddress{};
  arp.target_ip = ip;
  net::EthernetFrame frame;
  frame.dst = net::MacAddress::Broadcast();
  frame.src = mac;
  frame.ether_type = net::EtherType::kArp;
  frame.payload = arp.Encode();
  if (nic_ != nullptr) nic_->Transmit(frame.Encode());
}

// ---------------------------------------------------------------------------
// Netfilter
// ---------------------------------------------------------------------------

std::uint64_t NetworkStack::AddFilter(FilterFn fn) {
  std::uint64_t id = next_filter_id_++;
  filters_.push_back(Filter{id, std::move(fn)});
  return id;
}

void NetworkStack::RemoveFilter(std::uint64_t id) {
  filters_.erase(std::remove_if(filters_.begin(), filters_.end(),
                                [id](const Filter& f) { return f.id == id; }),
                 filters_.end());
}

// ---------------------------------------------------------------------------
// IP output path
// ---------------------------------------------------------------------------

const Interface* NetworkStack::RouteSourceInterface(
    net::Ipv4Address src) const {
  const Interface* match = FindInterfaceByIp(src);
  if (match != nullptr) return match;
  for (const Interface& i : interfaces_) {
    if (!i.is_virtual) return &i;
  }
  return interfaces_.empty() ? nullptr : &interfaces_.front();
}

void NetworkStack::SendIpv4(net::Ipv4Packet pkt) {
  // OUTPUT netfilter hook: the coordinated-checkpoint agent's drop rule
  // silently discards pod traffic at the lowest level (paper §5).
  for (const Filter& f : filters_) {
    if (f.fn(pkt)) {
      ++filtered_packets_;
      return;
    }
  }
  ++ip_tx_;
  if (OwnsIp(pkt.dst)) {
    // Loopback: deliver locally (still passes the INPUT hook).
    sim_.Schedule(kLoopbackDelay, [this, pkt = std::move(pkt)] {
      for (const Filter& f : filters_) {
        if (f.fn(pkt)) {
          ++filtered_packets_;
          return;
        }
      }
      DeliverIpv4Local(pkt);
    });
    return;
  }
  const Interface* out_if = RouteSourceInterface(pkt.src);
  if (out_if == nullptr) {
    CRUZ_WARN("netstack") << node_name_ << ": no interface to send from";
    return;
  }
  if (pkt.dst.IsBroadcast()) {
    // Broadcasts reach local listeners too (as on Linux).
    sim_.Schedule(kLoopbackDelay,
                  [this, pkt] { DeliverIpv4Local(pkt); });
    TransmitIpv4(pkt, *out_if, net::MacAddress::Broadcast());
    return;
  }
  if (!pkt.dst.SameSubnet(out_if->ip, out_if->netmask)) {
    // Single-subnet cluster (the paper's migration domain); no router.
    CRUZ_WARN("netstack") << node_name_ << ": " << pkt.dst.ToString()
                          << " not on subnet, dropped";
    return;
  }
  ResolveAndSend(std::move(pkt), *out_if);
}

void NetworkStack::ResolveAndSend(net::Ipv4Packet pkt,
                                  const Interface& out_if) {
  auto cached = arp_cache_.find(pkt.dst);
  if (cached != arp_cache_.end()) {
    TransmitIpv4(pkt, out_if, cached->second);
    return;
  }
  ArpPending& pending = arp_pending_[pkt.dst];
  pending.queued.push_back(std::move(pkt));
  pending.out_if_name = out_if.name;
  if (pending.retry_timer == sim::kInvalidEventId) {
    pending.retries = 0;
    SendArpRequest(pending.queued.back().dst, out_if);
    net::Ipv4Address target = pending.queued.back().dst;
    pending.retry_timer = sim_.Schedule(kArpRetryInterval, [this, target] {
      auto it = arp_pending_.find(target);
      if (it == arp_pending_.end()) return;
      it->second.retry_timer = sim::kInvalidEventId;
      if (++it->second.retries >= kArpMaxRetries) {
        CRUZ_WARN("netstack")
            << node_name_ << ": ARP timeout for " << target.ToString();
        arp_pending_.erase(it);
        return;
      }
      const Interface* oif = FindInterfaceByName(it->second.out_if_name);
      if (oif == nullptr && !interfaces_.empty()) oif = &interfaces_.front();
      if (oif != nullptr) SendArpRequest(target, *oif);
      // Re-arm by re-entering through a fresh pending lookup.
      it->second.retry_timer =
          sim_.Schedule(kArpRetryInterval, [this, target] {
            auto it2 = arp_pending_.find(target);
            if (it2 == arp_pending_.end()) return;
            it2->second.retry_timer = sim::kInvalidEventId;
            arp_pending_.erase(it2);  // final give-up
          });
    });
  }
}

void NetworkStack::SendArpRequest(net::Ipv4Address target,
                                  const Interface& out_if) {
  ++arp_requests_sent_;
  net::ArpPacket arp;
  arp.op = net::ArpOp::kRequest;
  arp.sender_mac = out_if.mac;
  arp.sender_ip = out_if.ip;
  arp.target_ip = target;
  net::EthernetFrame frame;
  frame.dst = net::MacAddress::Broadcast();
  frame.src = out_if.mac;
  frame.ether_type = net::EtherType::kArp;
  frame.payload = arp.Encode();
  if (nic_ != nullptr) nic_->Transmit(frame.Encode());
}

void NetworkStack::TransmitIpv4(const net::Ipv4Packet& pkt,
                                const Interface& out_if,
                                net::MacAddress dst_mac) {
  if (nic_ == nullptr) return;
  // Single pass into one pooled buffer: Ethernet header, IPv4 header,
  // payload — no intermediate per-layer Bytes on the per-packet path.
  ByteWriter w(nic_->AcquireFrameBuffer(),
               net::kEthernetHeaderSize + pkt.WireSize());
  net::EthernetFrame::EncodeHeader(w, dst_mac, out_if.mac,
                                   net::EtherType::kIpv4);
  pkt.EncodeInto(w);
  nic_->Transmit(w.Take());
}

// ---------------------------------------------------------------------------
// Input path
// ---------------------------------------------------------------------------

void NetworkStack::OnFrame(cruz::ByteSpan wire) {
  net::EthernetFrame frame;
  try {
    frame = net::EthernetFrame::Decode(wire);
  } catch (const cruz::CodecError&) {
    return;  // malformed frame: dropped, as hardware would
  }
  if (frame.ether_type == net::EtherType::kArp) {
    try {
      HandleArp(net::ArpPacket::Decode(frame.payload));
    } catch (const cruz::CodecError&) {
    }
    return;
  }
  net::Ipv4Packet pkt;
  try {
    pkt = net::Ipv4Packet::Decode(frame.payload);
  } catch (const cruz::CodecError&) {
    return;
  }
  // INPUT netfilter hook.
  for (const Filter& f : filters_) {
    if (f.fn(pkt)) {
      ++filtered_packets_;
      return;
    }
  }
  if (!OwnsIp(pkt.dst) && !pkt.dst.IsBroadcast()) {
    return;  // not ours (promiscuous-mode spillover); hosts do not forward
  }
  DeliverIpv4Local(pkt);
}

void NetworkStack::DeliverIpv4Local(const net::Ipv4Packet& pkt) {
  ++ip_rx_;
  switch (pkt.proto) {
    case net::IpProto::kTcp:
      HandleTcpSegment(pkt);
      break;
    case net::IpProto::kUdp:
      HandleUdpDatagram(pkt);
      break;
  }
}

void NetworkStack::HandleArp(const net::ArpPacket& arp) {
  // Learn/refresh the sender mapping (this is how gratuitous ARP updates
  // the subnet after a shared-MAC migration).
  if (!arp.sender_ip.IsZero()) {
    arp_cache_[arp.sender_ip] = arp.sender_mac;
    auto pending = arp_pending_.find(arp.sender_ip);
    if (pending != arp_pending_.end()) {
      if (pending->second.retry_timer != sim::kInvalidEventId) {
        sim_.Cancel(pending->second.retry_timer);
      }
      std::vector<net::Ipv4Packet> queued = std::move(pending->second.queued);
      std::string ifname = pending->second.out_if_name;
      arp_pending_.erase(pending);
      const Interface* oif = FindInterfaceByName(ifname);
      if (oif == nullptr && !interfaces_.empty()) oif = &interfaces_.front();
      for (net::Ipv4Packet& p : queued) {
        if (oif != nullptr) TransmitIpv4(p, *oif, arp.sender_mac);
      }
    }
  }
  if (arp.op == net::ArpOp::kRequest) {
    const Interface* owned = FindInterfaceByIp(arp.target_ip);
    if (owned != nullptr && !arp.IsGratuitous()) {
      net::ArpPacket reply;
      reply.op = net::ArpOp::kReply;
      reply.sender_mac = owned->mac;
      reply.sender_ip = owned->ip;
      reply.target_mac = arp.sender_mac;
      reply.target_ip = arp.sender_ip;
      net::EthernetFrame frame;
      frame.dst = arp.sender_mac;
      frame.src = owned->mac;
      frame.ether_type = net::EtherType::kArp;
      frame.payload = reply.Encode();
      if (nic_ != nullptr) nic_->Transmit(frame.Encode());
    }
  }
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

tcp::TcpConnection::OutputFn NetworkStack::MakeConnOutput() {
  return [this](const net::FourTuple& tuple, const tcp::TcpSegment& seg) {
    net::Ipv4Packet pkt;
    pkt.src = tuple.local.ip;
    pkt.dst = tuple.remote.ip;
    pkt.proto = net::IpProto::kTcp;
    pkt.payload = seg.Encode();
    SendIpv4(std::move(pkt));
  };
}

tcp::TcpConnection::Callbacks NetworkStack::MakeConnCallbacks(SocketId id) {
  tcp::TcpConnection::Callbacks cb;
  cb.on_established = [this, id] {
    TcpSocketObject* sock = FindTcp(id);
    if (sock == nullptr) return;
    if (sock->state == TcpSocketObject::State::kConnecting) {
      sock->state = TcpSocketObject::State::kConnected;
    }
    WakeAll(sock->write_waiters);
    WakeAll(sock->read_waiters);
  };
  cb.on_readable = [this, id] {
    TcpSocketObject* sock = FindTcp(id);
    if (sock != nullptr) WakeAll(sock->read_waiters);
  };
  cb.on_writable = [this, id] {
    TcpSocketObject* sock = FindTcp(id);
    if (sock != nullptr) WakeAll(sock->write_waiters);
  };
  cb.on_remote_close = [this, id] {
    TcpSocketObject* sock = FindTcp(id);
    if (sock != nullptr) WakeAll(sock->read_waiters);
  };
  cb.on_error = [this, id](Errno err) {
    TcpSocketObject* sock = FindTcp(id);
    if (sock == nullptr) return;
    sock->state = TcpSocketObject::State::kError;
    sock->error = err;
    WakeAll(sock->read_waiters);
    WakeAll(sock->write_waiters);
    WakeAll(sock->accept_waiters);
  };
  cb.on_closed = [this, id] {
    TcpSocketObject* sock = FindTcp(id);
    if (sock == nullptr) return;
    WakeAll(sock->read_waiters);
    WakeAll(sock->write_waiters);
  };
  return cb;
}

void NetworkStack::RegisterTuple(const net::FourTuple& tuple, SocketId id) {
  tcp_by_tuple_[tuple] = id;
}

SocketId NetworkStack::CreateTcpSocket() {
  SocketId id = next_socket_id_++;
  auto sock = std::make_unique<TcpSocketObject>();
  sock->id = id;
  tcp_sockets_.emplace(id, std::move(sock));
  return id;
}

TcpSocketObject* NetworkStack::FindTcp(SocketId id) {
  auto it = tcp_sockets_.find(id);
  return it == tcp_sockets_.end() ? nullptr : it->second.get();
}

SysResult NetworkStack::TcpBind(SocketId id, net::Endpoint local) {
  TcpSocketObject* sock = FindTcp(id);
  if (sock == nullptr) return SysErr(CRUZ_EBADF);
  if (sock->state != TcpSocketObject::State::kFresh) {
    return SysErr(CRUZ_EINVAL);
  }
  if (!local.ip.IsZero() && !OwnsIp(local.ip)) {
    return SysErr(CRUZ_EADDRNOTAVAIL);
  }
  if (local.port != 0) {
    net::Endpoint exact = local;
    net::Endpoint any{net::kAnyAddress, local.port};
    if (tcp_listeners_.count(exact) || tcp_listeners_.count(any)) {
      return SysErr(CRUZ_EADDRINUSE);
    }
  } else {
    local.port = AllocateEphemeralPort(local.ip);
  }
  sock->local = local;
  sock->state = TcpSocketObject::State::kBound;
  return 0;
}

SysResult NetworkStack::TcpListen(SocketId id, int backlog) {
  TcpSocketObject* sock = FindTcp(id);
  if (sock == nullptr) return SysErr(CRUZ_EBADF);
  if (sock->state != TcpSocketObject::State::kBound) {
    return SysErr(CRUZ_EINVAL);
  }
  sock->backlog = std::max(backlog, 1);
  sock->state = TcpSocketObject::State::kListening;
  tcp_listeners_[sock->local] = id;
  return 0;
}

SysResult NetworkStack::TcpConnect(SocketId id, net::Endpoint remote) {
  TcpSocketObject* sock = FindTcp(id);
  if (sock == nullptr) return SysErr(CRUZ_EBADF);
  switch (sock->state) {
    case TcpSocketObject::State::kConnecting:
      return SysErr(CRUZ_EALREADY);
    case TcpSocketObject::State::kConnected:
      return SysErr(CRUZ_EISCONN);
    case TcpSocketObject::State::kError:
      return SysErr(sock->error);
    case TcpSocketObject::State::kListening:
      return SysErr(CRUZ_EINVAL);
    default:
      break;
  }
  CRUZ_CHECK(!sock->local.ip.IsZero(),
             "TcpConnect requires a bound local address (the OS performs "
             "the implicit bind)");
  net::FourTuple tuple{sock->local, remote};
  if (tcp_by_tuple_.count(tuple)) return SysErr(CRUZ_EADDRINUSE);
  sock->state = TcpSocketObject::State::kConnecting;
  sock->conn = std::make_unique<tcp::TcpConnection>(
      sim_, tcp_config_, tuple, MakeConnOutput(), MakeConnCallbacks(id));
  RegisterTuple(tuple, id);
  sock->conn->OpenActive();
  return SysErr(CRUZ_EINPROGRESS);
}

SysResult NetworkStack::TcpAccept(SocketId id, SocketId* child) {
  TcpSocketObject* sock = FindTcp(id);
  if (sock == nullptr) return SysErr(CRUZ_EBADF);
  if (sock->state != TcpSocketObject::State::kListening) {
    return SysErr(CRUZ_EINVAL);
  }
  if (sock->accept_queue.empty()) return SysErr(CRUZ_EAGAIN);
  *child = sock->accept_queue.front();
  sock->accept_queue.pop_front();
  return 0;
}

void NetworkStack::DestroyTcpSocket(SocketId id) {
  TcpSocketObject* sock = FindTcp(id);
  if (sock == nullptr) return;
  if (sock->state == TcpSocketObject::State::kListening) {
    tcp_listeners_.erase(sock->local);
    // Children waiting in the accept queue are aborted, as Linux does.
    for (SocketId child_id : sock->accept_queue) {
      TcpSocketObject* child = FindTcp(child_id);
      if (child != nullptr && child->conn) {
        child->conn->Abort();
        tcp_by_tuple_.erase(child->conn->tuple());
        tcp_sockets_.erase(child_id);
      }
    }
  }
  if (sock->conn) {
    tcp::TcpConnection* conn = sock->conn.get();
    if (conn->state() == tcp::TcpState::kClosed) {
      tcp_by_tuple_.erase(conn->tuple());
      tcp_sockets_.erase(id);
      return;
    }
    // Orderly close; the connection object lingers (detached from any fd)
    // until the FIN handshake finishes. A lazy reaper bounds its lifetime.
    net::FourTuple tuple = conn->tuple();
    sock->read_waiters.clear();
    sock->write_waiters.clear();
    sock->accept_waiters.clear();
    conn->Close();
    sim_.Schedule(tcp_config_.time_wait_duration +
                      tcp_config_.max_rto * 2,
                  [this, id, tuple] {
                    TcpSocketObject* s = FindTcp(id);
                    if (s != nullptr) {
                      if (s->conn &&
                          s->conn->state() != tcp::TcpState::kClosed) {
                        s->conn->Abort();
                      }
                      // The tuple may have been re-registered by a
                      // restored connection; only erase our own mapping.
                      auto it = tcp_by_tuple_.find(tuple);
                      if (it != tcp_by_tuple_.end() && it->second == id) {
                        tcp_by_tuple_.erase(it);
                      }
                      tcp_sockets_.erase(id);
                    }
                  });
    return;
  }
  tcp_sockets_.erase(id);
}

SocketId NetworkStack::RestoreTcpFromCheckpoint(
    const tcp::TcpConnCheckpoint& ck, cruz::Bytes alt_recv) {
  SocketId id = CreateTcpSocket();
  TcpSocketObject* sock = FindTcp(id);
  sock->local = ck.tuple.local;
  sock->alt_recv = std::move(alt_recv);
  sock->state = ck.state == tcp::TcpState::kClosed
                    ? TcpSocketObject::State::kError
                    : TcpSocketObject::State::kConnected;
  if (ck.state == tcp::TcpState::kSynSent ||
      ck.state == tcp::TcpState::kSynReceived) {
    sock->state = TcpSocketObject::State::kConnecting;
  }
  // Restore kicks off the send-buffer replay immediately; if the agent
  // has not yet re-enabled communication, those packets hit the drop rule
  // and are recovered by the retransmission timer (paper §5).
  sock->conn = tcp::TcpConnection::Restore(sim_, tcp_config_, ck,
                                           MakeConnOutput(),
                                           MakeConnCallbacks(id));
  RegisterTuple(ck.tuple, id);
  return id;
}

void NetworkStack::PurgeSocketsForIp(net::Ipv4Address ip) {
  for (auto it = tcp_sockets_.begin(); it != tcp_sockets_.end();) {
    TcpSocketObject* sock = it->second.get();
    if (sock->local.ip == ip) {
      if (sock->conn) {
        sock->conn->Abort();  // any RST is dropped by the caller's filter
        auto t = tcp_by_tuple_.find(sock->conn->tuple());
        if (t != tcp_by_tuple_.end() && t->second == sock->id) {
          tcp_by_tuple_.erase(t);
        }
      }
      if (sock->state == TcpSocketObject::State::kListening) {
        tcp_listeners_.erase(sock->local);
      }
      it = tcp_sockets_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = udp_sockets_.begin(); it != udp_sockets_.end();) {
    if (it->second->local.ip == ip) {
      udp_by_endpoint_.erase(it->second->local);
      it = udp_sockets_.erase(it);
    } else {
      ++it;
    }
  }
}

SocketId NetworkStack::InstallRestoredListener(net::Endpoint local,
                                               int backlog) {
  SocketId id = CreateTcpSocket();
  TcpSocketObject* sock = FindTcp(id);
  sock->local = local;
  sock->backlog = backlog;
  sock->state = TcpSocketObject::State::kListening;
  tcp_listeners_[local] = id;
  return id;
}

void NetworkStack::HandleTcpSegment(const net::Ipv4Packet& pkt) {
  tcp::TcpSegment seg;
  try {
    seg = tcp::TcpSegment::Decode(pkt.payload);
  } catch (const cruz::CodecError&) {
    return;
  }
  net::FourTuple tuple{{pkt.dst, seg.dst_port}, {pkt.src, seg.src_port}};
  auto it = tcp_by_tuple_.find(tuple);
  if (it != tcp_by_tuple_.end()) {
    TcpSocketObject* sock = FindTcp(it->second);
    if (sock != nullptr && sock->conn) {
      sock->conn->OnSegment(seg);
      return;
    }
  }
  // No connection: a SYN may match a listener.
  if (seg.syn && !seg.ack_flag) {
    auto lit = tcp_listeners_.find(tuple.local);
    if (lit == tcp_listeners_.end()) {
      lit = tcp_listeners_.find(
          net::Endpoint{net::kAnyAddress, seg.dst_port});
    }
    if (lit != tcp_listeners_.end()) {
      TcpSocketObject* listener = FindTcp(lit->second);
      if (listener != nullptr &&
          listener->accept_queue.size() <
              static_cast<std::size_t>(listener->backlog)) {
        SocketId child_id = CreateTcpSocket();
        TcpSocketObject* child = FindTcp(child_id);
        child->local = tuple.local;
        child->state = TcpSocketObject::State::kConnecting;
        SocketId listener_id = lit->second;
        auto callbacks = MakeConnCallbacks(child_id);
        // Wrap on_established to also enqueue on the listener.
        auto base_established = callbacks.on_established;
        callbacks.on_established = [this, child_id, listener_id,
                                    base_established] {
          if (base_established) base_established();
          TcpSocketObject* l = FindTcp(listener_id);
          if (l != nullptr &&
              l->state == TcpSocketObject::State::kListening) {
            l->accept_queue.push_back(child_id);
            WakeAll(l->accept_waiters);
          }
        };
        child->conn = std::make_unique<tcp::TcpConnection>(
            sim_, tcp_config_, tuple, MakeConnOutput(),
            std::move(callbacks));
        RegisterTuple(tuple, child_id);
        child->conn->OpenPassive(seg);
        return;
      }
    }
  }
  // No taker: answer with RST (unless this was itself an RST).
  if (!seg.rst) {
    tcp::TcpSegment rst;
    rst.src_port = seg.dst_port;
    rst.dst_port = seg.src_port;
    rst.rst = true;
    if (seg.ack_flag) {
      rst.seq = seg.ack;
    } else {
      rst.ack_flag = true;
      rst.ack = seg.seq + seg.SeqLen();
    }
    net::Ipv4Packet out;
    out.src = pkt.dst;
    out.dst = pkt.src;
    out.proto = net::IpProto::kTcp;
    out.payload = rst.Encode();
    SendIpv4(std::move(out));
  }
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

SocketId NetworkStack::CreateUdpSocket() {
  SocketId id = next_socket_id_++;
  auto sock = std::make_unique<UdpSocketObject>();
  sock->id = id;
  udp_sockets_.emplace(id, std::move(sock));
  return id;
}

UdpSocketObject* NetworkStack::FindUdp(SocketId id) {
  auto it = udp_sockets_.find(id);
  return it == udp_sockets_.end() ? nullptr : it->second.get();
}

SysResult NetworkStack::UdpBind(SocketId id, net::Endpoint local) {
  UdpSocketObject* sock = FindUdp(id);
  if (sock == nullptr) return SysErr(CRUZ_EBADF);
  if (!local.ip.IsZero() && !OwnsIp(local.ip)) {
    return SysErr(CRUZ_EADDRNOTAVAIL);
  }
  if (local.port == 0) {
    local.port = AllocateEphemeralPort(local.ip);
  } else if (udp_by_endpoint_.count(local) ||
             udp_by_endpoint_.count(
                 net::Endpoint{net::kAnyAddress, local.port})) {
    return SysErr(CRUZ_EADDRINUSE);
  }
  if (sock->local.port != 0) udp_by_endpoint_.erase(sock->local);
  sock->local = local;
  udp_by_endpoint_[local] = id;
  return 0;
}

SysResult NetworkStack::UdpSendTo(SocketId id, net::Endpoint remote,
                                  cruz::ByteSpan data) {
  UdpSocketObject* sock = FindUdp(id);
  if (sock == nullptr) return SysErr(CRUZ_EBADF);
  if (sock->local.port == 0) {
    net::Ipv4Address src =
        interfaces_.empty() ? net::kAnyAddress : interfaces_.front().ip;
    SysResult r = UdpBind(id, net::Endpoint{src, 0});
    if (!SysOk(r)) return r;
  }
  net::Ipv4Address src_ip = sock->local.ip;
  if (src_ip.IsZero() && !interfaces_.empty()) {
    src_ip = interfaces_.front().ip;
  }
  if (data.size() + net::kUdpHeaderSize + net::kIpv4HeaderSize >
      net::kEthernetMtu) {
    return SysErr(CRUZ_EMSGSIZE);  // no fragmentation support
  }
  net::UdpDatagram dgram;
  dgram.src_port = sock->local.port;
  dgram.dst_port = remote.port;
  dgram.payload.assign(data.begin(), data.end());
  net::Ipv4Packet pkt;
  pkt.src = src_ip;
  pkt.dst = remote.ip;
  pkt.proto = net::IpProto::kUdp;
  pkt.payload = dgram.Encode();
  SendIpv4(std::move(pkt));
  return static_cast<SysResult>(data.size());
}

void NetworkStack::DestroyUdpSocket(SocketId id) {
  UdpSocketObject* sock = FindUdp(id);
  if (sock == nullptr) return;
  if (sock->local.port != 0) udp_by_endpoint_.erase(sock->local);
  udp_sockets_.erase(id);
}

void NetworkStack::HandleUdpDatagram(const net::Ipv4Packet& pkt) {
  net::UdpDatagram dgram;
  try {
    dgram = net::UdpDatagram::Decode(pkt.payload);
  } catch (const cruz::CodecError&) {
    return;
  }
  // Kernel-space UDP services (DHCP, checkpoint agents/coordinator) take
  // precedence. Service processing is serialized through the node's
  // protocol CPU when a cost is configured.
  auto svc = udp_services_.find(dgram.dst_port);
  if (svc != udp_services_.end()) {
    if (udp_service_cost_ == 0) {
      svc->second(net::Endpoint{pkt.src, dgram.src_port}, dgram.payload);
      return;
    }
    TimeNs start = std::max(sim_.Now(), udp_service_busy_until_);
    udp_service_busy_until_ = start + udp_service_cost_;
    std::uint16_t port = dgram.dst_port;
    sim_.ScheduleAt(udp_service_busy_until_,
                    [this, port, src = net::Endpoint{pkt.src, dgram.src_port},
                     payload = std::move(dgram.payload)] {
                      auto it = udp_services_.find(port);
                      if (it != udp_services_.end()) {
                        it->second(src, payload);
                      }
                    });
    return;
  }
  auto it = udp_by_endpoint_.find(net::Endpoint{pkt.dst, dgram.dst_port});
  if (it == udp_by_endpoint_.end()) {
    it = udp_by_endpoint_.find(
        net::Endpoint{net::kAnyAddress, dgram.dst_port});
  }
  if (it == udp_by_endpoint_.end()) return;  // no ICMP in this simulation
  UdpSocketObject* sock = FindUdp(it->second);
  if (sock == nullptr) return;
  if (sock->rx.size() >= UdpSocketObject::kMaxQueue) return;  // overflow
  sock->rx.emplace_back(net::Endpoint{pkt.src, dgram.src_port},
                        std::move(dgram.payload));
  WakeAll(sock->read_waiters);
}

void NetworkStack::RegisterUdpService(std::uint16_t port,
                                      UdpService service) {
  udp_services_[port] = std::move(service);
}

void NetworkStack::UnregisterUdpService(std::uint16_t port) {
  udp_services_.erase(port);
}

std::uint16_t NetworkStack::AllocateEphemeralPort(net::Ipv4Address ip) {
  for (int attempts = 0; attempts < 20000; ++attempts) {
    std::uint16_t port = next_ephemeral_port_++;
    if (next_ephemeral_port_ == 0) next_ephemeral_port_ = 32768;
    if (port < 32768) continue;
    net::Endpoint candidate{ip, port};
    bool in_use = udp_by_endpoint_.count(candidate) ||
                  tcp_listeners_.count(candidate);
    if (!in_use) {
      for (const auto& [tuple, sid] : tcp_by_tuple_) {
        if (tuple.local.port == port) {
          in_use = true;
          break;
        }
      }
    }
    if (!in_use) return port;
  }
  throw InvariantError("ephemeral port space exhausted");
}

}  // namespace cruz::os
