// Sparse paged process memory.
//
// A process address space is a map from page index to 4 KiB pages,
// allocated on first write. The checkpoint engine serializes only the
// allocated (non-zero) pages — "most of the state consists of the non-zero
// contents of the virtual memory of all processes running in the pod"
// (paper §6) — so checkpoint size tracks what the application touched.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "common/bytes.h"

namespace cruz::os {

constexpr std::size_t kPageSize = 4096;
constexpr std::uint64_t kPageShift = 12;

class Memory {
 public:
  using Page = std::vector<std::uint8_t>;  // always kPageSize long

  // --- raw access -----------------------------------------------------------
  void WriteBytes(std::uint64_t addr, cruz::ByteSpan data);
  void ReadBytes(std::uint64_t addr, std::uint8_t* out, std::size_t n) const;
  cruz::Bytes ReadBytes(std::uint64_t addr, std::size_t n) const;

  // --- typed helpers ----------------------------------------------------------
  void WriteU64(std::uint64_t addr, std::uint64_t v);
  std::uint64_t ReadU64(std::uint64_t addr) const;
  void WriteF64(std::uint64_t addr, double v);
  double ReadF64(std::uint64_t addr) const;

  // --- pages -------------------------------------------------------------------
  const std::map<std::uint64_t, Page>& pages() const { return pages_; }
  std::size_t PageCount() const { return pages_.size(); }
  std::size_t ResidentBytes() const { return pages_.size() * kPageSize; }
  void InstallPage(std::uint64_t page_index, cruz::ByteSpan content);
  void Clear() { pages_.clear(); }

  // Drops pages that are entirely zero (used to keep checkpoints small).
  void DropZeroPages();

  // --- dirty tracking (incremental checkpointing, paper §5.2) -------------
  // Every write marks its pages dirty; an incremental checkpoint saves
  // only pages dirtied since the previous checkpoint cleared the set.
  const std::set<std::uint64_t>& dirty_pages() const { return dirty_; }
  void ClearDirty() { dirty_.clear(); }
  bool IsDirty(std::uint64_t page_index) const {
    return dirty_.count(page_index) != 0;
  }

 private:
  Page& PageForWrite(std::uint64_t page_index);
  // Returns nullptr for never-written pages (reads see zeros).
  const Page* PageForRead(std::uint64_t page_index) const;

  std::map<std::uint64_t, Page> pages_;
  std::set<std::uint64_t> dirty_;
};

}  // namespace cruz::os
