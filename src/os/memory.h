// Sparse paged process memory with copy-on-write snapshots.
//
// A process address space is a map from page index to 4 KiB pages,
// allocated on first write. The checkpoint engine serializes only the
// allocated (non-zero) pages — "most of the state consists of the non-zero
// contents of the virtual memory of all processes running in the pod"
// (paper §6) — so checkpoint size tracks what the application touched.
//
// Pages are reference-counted so a checkpoint can take a MemorySnapshot —
// a frozen view sharing every page — in O(page table) time while the pod
// is stopped (paper §5.2, forked checkpointing). After the pod resumes,
// the first write to a shared page copies it privately (a "COW fault"),
// so the snapshot stays byte-stable while the background write-out
// serializes it, and the running pod pays only for the pages it touches.
//
// Post-copy live migration adds a third page state: *missing*. A missing
// page has known-but-not-yet-transferred content living on the migration
// source; any touch raises a PageFault so the OS can suspend the faulting
// process until FillPage() delivers the bytes. Missing is distinct from
// absent: absent (never-written) pages still read as zeros.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"

namespace cruz::os {

constexpr std::size_t kPageSize = 4096;
constexpr std::uint64_t kPageShift = 12;

// Thrown by Memory on any access to a missing (demand-paged) page. The OS
// catches it in RunStep, rewinds the thread, and parks the whole process
// until the page server delivers the content.
struct PageFault {
  std::uint64_t page_index = 0;
};

// Immutable view of a memory image at snapshot time. Pages are shared
// with the live Memory until the pod writes to them; the snapshot keeps
// its own references, so it is unaffected by later writes (which copy)
// and by page drops in the live address space.
class MemorySnapshot {
 public:
  using Page = std::vector<std::uint8_t>;
  using PageMap = std::map<std::uint64_t, std::shared_ptr<const Page>>;

  MemorySnapshot() = default;
  explicit MemorySnapshot(PageMap pages) : pages_(std::move(pages)) {}

  const PageMap& pages() const { return pages_; }
  std::size_t PageCount() const { return pages_.size(); }
  std::uint64_t ResidentBytes() const { return pages_.size() * kPageSize; }

  // Returns nullptr for pages not present at snapshot time.
  const Page* Find(std::uint64_t page_index) const {
    auto it = pages_.find(page_index);
    return it == pages_.end() ? nullptr : it->second.get();
  }

 private:
  PageMap pages_;
};

class Memory {
 public:
  using Page = std::vector<std::uint8_t>;  // always kPageSize long

  // --- raw access -----------------------------------------------------------
  void WriteBytes(std::uint64_t addr, cruz::ByteSpan data);
  void ReadBytes(std::uint64_t addr, std::uint8_t* out, std::size_t n) const;
  cruz::Bytes ReadBytes(std::uint64_t addr, std::size_t n) const;

  // --- typed helpers ----------------------------------------------------------
  void WriteU64(std::uint64_t addr, std::uint64_t v);
  std::uint64_t ReadU64(std::uint64_t addr) const;
  void WriteF64(std::uint64_t addr, double v);
  double ReadF64(std::uint64_t addr) const;

  // --- pages -------------------------------------------------------------------
  const std::map<std::uint64_t, std::shared_ptr<Page>>& pages() const {
    return pages_;
  }
  std::size_t PageCount() const { return pages_.size(); }
  std::size_t ResidentBytes() const { return pages_.size() * kPageSize; }
  void InstallPage(std::uint64_t page_index, cruz::ByteSpan content);
  void Clear() {
    pages_.clear();
    missing_.clear();
  }

  // Drops pages that are entirely zero (used to keep checkpoints small).
  void DropZeroPages();

  // --- demand paging (post-copy migration) ---------------------------------
  // Declares a page as known-but-not-resident: its content exists on the
  // migration source and any touch before FillPage() raises a PageFault.
  void MarkMissing(std::uint64_t page_index);
  bool IsMissing(std::uint64_t page_index) const {
    return missing_.count(page_index) != 0;
  }
  const std::set<std::uint64_t>& missing_pages() const { return missing_; }
  bool HasMissingPages() const { return !missing_.empty(); }
  // Installs `content` iff the page is still missing and returns true.
  // A fill for a page that is already resident is dropped (false): this
  // is what makes duplicate page responses — retransmits, background push
  // racing a demand fetch — idempotent instead of state-corrupting.
  bool FillPage(std::uint64_t page_index, cruz::ByteSpan content);

  // --- copy-on-write snapshots (forked checkpointing, paper §5.2) ----------
  // Freezes the current image by sharing every page with the returned
  // snapshot. O(page table), no page copies. Writes after the snapshot
  // copy the touched page first (counted in cow_faults), so the snapshot
  // is byte-stable forever.
  MemorySnapshot Snapshot() const;

  // Pages copied because a write hit a page shared with a snapshot.
  std::uint64_t cow_faults() const { return cow_faults_; }
  void ResetCowFaults() { cow_faults_ = 0; }

  // --- dirty tracking (incremental checkpointing, paper §5.2) -------------
  // Every write marks its pages dirty; an incremental checkpoint saves
  // only pages dirtied since the previous checkpoint cleared the set.
  // Internally a word-indexed bitmap (O(1) test-and-set on the write hot
  // path); the std::set view is materialized lazily on demand so callers
  // keep the exact ordered-set semantics they always had.
  const std::set<std::uint64_t>& dirty_pages() const;
  void ClearDirty() {
    dirty_words_.clear();
    dirty_cache_.clear();
    dirty_cache_valid_ = true;
  }
  bool IsDirty(std::uint64_t page_index) const {
    auto it = dirty_words_.find(page_index >> 6);
    return it != dirty_words_.end() &&
           (it->second >> (page_index & 63)) & 1u;
  }

 private:
  void MarkDirty(std::uint64_t page_index);
  Page& PageForWrite(std::uint64_t page_index);
  // Returns nullptr for never-written pages (reads see zeros).
  const Page* PageForRead(std::uint64_t page_index) const;

  // Pages are shared with snapshots; a write that hits a shared page
  // (use_count > 1) clones it first.
  std::map<std::uint64_t, std::shared_ptr<Page>> pages_;
  // Demand-paged pages: content pending delivery, any touch faults.
  std::set<std::uint64_t> missing_;
  // Dirty bitmap: page-index word (index >> 6) -> 64-page bit mask.
  std::unordered_map<std::uint64_t, std::uint64_t> dirty_words_;
  mutable std::set<std::uint64_t> dirty_cache_;
  mutable bool dirty_cache_valid_ = true;
  std::uint64_t cow_faults_ = 0;
};

}  // namespace cruz::os
