// The simulated kernel: process table, thread scheduler, syscalls, signal
// delivery, and the pod interposition hooks.
//
// Zap's architecture interposes a thin virtualization layer between
// applications and the OS (paper Fig. 1). Here that boundary is explicit:
// every syscall a Program issues flows through ProcessCtx into Os, and Os
// consults the installed SyscallInterposer (implemented by the pod layer)
// at exactly the points the paper describes — pid virtualization, bind and
// connect address rewriting, and the SIOCGIFHWADDR fake-MAC ioctl. The
// base "kernel" has no knowledge of pods beyond this hook interface,
// mirroring "without requiring ... base kernel modifications".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/sysresult.h"
#include "common/units.h"
#include "os/netfs.h"
#include "os/netstack.h"
#include "os/process.h"
#include "os/program.h"
#include "os/sysv_ipc.h"
#include "os/types.h"

namespace cruz::sim {
class Simulator;
}

namespace cruz::os {

// Hook interface implemented by the pod layer (Zap's interposition).
class SyscallInterposer {
 public:
  virtual ~SyscallInterposer() = default;
  virtual void OnProcessCreated(PodId pod, Pid real) = 0;
  virtual void OnProcessExited(PodId pod, Pid real) = 0;
  virtual Pid ToVirtualPid(PodId pod, Pid real) = 0;
  virtual Pid ToRealPid(PodId pod, Pid virt) = 0;
  // IP address of the pod's VIF; bind/connect wrappers substitute it.
  virtual net::Ipv4Address PodAddress(PodId pod) = 0;
  // Fake MAC returned by the intercepted SIOCGIFHWADDR (paper §4.2).
  virtual std::optional<net::MacAddress> FakeMac(PodId pod) = 0;
  // Pod-private SysV key namespace.
  virtual std::int32_t VirtualizeIpcKey(PodId pod, std::int32_t key) = 0;
  // SysV identifier virtualization: programs inside pods only ever see
  // virtual shm/sem ids, which stay stable across restore even though the
  // kernel assigns fresh real ids (same principle as virtual pids).
  virtual ShmId ShmIdToVirtual(PodId pod, ShmId real) = 0;
  virtual ShmId ShmIdToReal(PodId pod, ShmId virt) = 0;
  virtual SemId SemIdToVirtual(PodId pod, SemId real) = 0;
  virtual SemId SemIdToReal(PodId pod, SemId virt) = 0;
};

class Os {
 public:
  Os(sim::Simulator& sim, std::string node_name, NetworkStack* stack,
     NetworkFileSystem* fs);

  const std::string& node_name() const { return node_name_; }
  sim::Simulator& sim() { return sim_; }
  NetworkStack& stack() { return *stack_; }
  NetworkFileSystem& fs() { return *fs_; }
  SysVIpc& sysv() { return sysv_; }

  void set_interposer(SyscallInterposer* i) { interposer_ = i; }
  SyscallInterposer* interposer() { return interposer_; }

  // Called when a process fully exits (harness / job-scheduler hook).
  void set_process_exit_hook(std::function<void(Pid, int)> hook) {
    process_exit_hook_ = std::move(hook);
  }

  // Called for every request latency a program reports via
  // ProcessCtx::ReportOpLatency (load-generator hook). Receives the
  // connection id, the *intended* send time and the completion time.
  using OpLatencySink =
      std::function<void(std::uint64_t conn, TimeNs intended, TimeNs completed)>;
  void set_op_latency_sink(OpLatencySink sink) {
    op_latency_sink_ = std::move(sink);
  }
  // Emits a sampled `kv.op` trace instant, then feeds the sink (which
  // gets every sample — trace sampling only decimates timeline volume).
  void ReportOpLatency(std::uint64_t conn, TimeNs intended);

  // --- process management ------------------------------------------------------
  // Creates a process running `program` with `args` copied into its
  // address space. Returns the real pid.
  Pid Spawn(const std::string& program, cruz::ByteSpan args,
            PodId pod = kNoPod, Pid ppid = kNoPid);
  Process* FindProcess(Pid pid);
  const std::map<Pid, std::unique_ptr<Process>>& processes() const {
    return processes_;
  }
  std::vector<Pid> PodProcesses(PodId pod) const;

  // Signal delivery: SIGSTOP freezes scheduling, SIGCONT resumes,
  // SIGKILL/SIGTERM terminate.
  SysResult Signal(Pid pid, int signal);
  // Immediate teardown of a process (releases fds, wakes peers).
  void DestroyProcess(Pid pid, int exit_code);

  // Restore path: installs a process rebuilt from a checkpoint (memory and
  // threads already populated by the engine). Threads start runnable.
  // Construct the process with a pid from AllocatePid().
  Pid AllocatePid() { return next_pid_++; }
  Pid InstallProcess(std::unique_ptr<Process> proc);
  void StartProcessThreads(Pid pid);

  // --- demand paging (post-copy migration) -------------------------------------
  // Delivers the content of a missing page to `pid`. If the page was the
  // one a thread is parked on, the thread (and the rest of the process,
  // which stalls as a unit while a fault is pending) resumes. Returns
  // false and installs nothing when the page is not missing — duplicate
  // deliveries (retransmits, push racing a demand fetch) are dropped.
  bool FillPage(Pid pid, std::uint64_t page_index, cruz::ByteSpan content);
  // Handler invoked when a thread of `pid` touches a missing page; the
  // migration target's page-server client uses it to issue the demand
  // fetch. The faulting process is already parked when it runs.
  void SetPageFaultHandler(Pid pid,
                           std::function<void(std::uint64_t)> handler) {
    page_fault_handlers_[pid] = std::move(handler);
  }
  void ClearPageFaultHandler(Pid pid) { page_fault_handlers_.erase(pid); }

  // --- scheduling --------------------------------------------------------------
  void MakeRunnable(ThreadRef ref);
  void WakeThreads(std::vector<ThreadRef>& refs);
  // True if every process on this node is idle (no runnable threads).
  bool Quiescent() const;

  // Per-step scheduling cost knobs (used by the runtime-overhead bench).
  DurationNs syscall_interposition_cost() const {
    return interposition_cost_;
  }
  void set_syscall_interposition_cost(DurationNs c) {
    interposition_cost_ = c;
  }

  std::uint64_t steps_executed() const { return steps_executed_; }
  std::uint64_t syscall_count() const { return syscall_count_; }

  // --- syscall implementations (called via ProcessCtx) --------------------------
  SysResult SysGetpid(Process& proc);
  SysResult SysSpawn(Process& proc, const std::string& program,
                     cruz::ByteSpan args);
  SysResult SysKill(Process& proc, Pid pid, int signal);

  SysResult SysOpen(Process& proc, const std::string& path, bool create);
  SysResult SysRead(Process& proc, Fd fd, cruz::Bytes& out, std::size_t max);
  SysResult SysWrite(Process& proc, Fd fd, cruz::ByteSpan data);
  SysResult SysClose(Process& proc, Fd fd);
  SysResult SysDup(Process& proc, Fd fd);
  SysResult SysPipe(Process& proc, Fd* read_end, Fd* write_end);

  SysResult SysSocketTcp(Process& proc);
  SysResult SysSocketUdp(Process& proc);
  SysResult SysBind(Process& proc, Fd fd, net::Endpoint local);
  SysResult SysListen(Process& proc, Fd fd, int backlog);
  SysResult SysAccept(Process& proc, Fd fd);
  SysResult SysConnect(Process& proc, Fd fd, net::Endpoint remote);
  SysResult SysSendTcp(Process& proc, Fd fd, cruz::ByteSpan data);
  SysResult SysRecvTcp(Process& proc, Fd fd, cruz::Bytes& out,
                       std::size_t max, bool peek);
  SysResult SysSendToUdp(Process& proc, Fd fd, net::Endpoint remote,
                         cruz::ByteSpan data);
  SysResult SysRecvFromUdp(Process& proc, Fd fd, cruz::Bytes& out,
                           net::Endpoint* from);
  SysResult SysSetNodelay(Process& proc, Fd fd, bool on);
  SysResult SysSetCork(Process& proc, Fd fd, bool on);
  SysResult SysShutdownTcp(Process& proc, Fd fd);
  SysResult SysGetIfHwAddr(Process& proc, const std::string& ifname,
                           net::MacAddress* mac);
  SysResult SysGetIfAddr(Process& proc, const std::string& ifname,
                         net::Ipv4Address* ip);

  SysResult SysShmGet(Process& proc, std::int32_t key, std::size_t size);
  SysResult SysShmAt(Process& proc, ShmId id, std::uint64_t addr);
  SysResult SysShmReadU64(Process& proc, ShmId id, std::uint64_t offset);
  SysResult SysShmWriteU64(Process& proc, ShmId id, std::uint64_t offset,
                           std::uint64_t v);
  SysResult SysSemGet(Process& proc, std::int32_t key, std::int32_t initial);
  SysResult SysSemOp(Process& proc, SemId id, std::int32_t delta);

  // Blocking registration used by ProcessCtx::BlockOn*.
  // Id translation helpers (virtual -> real for in-pod processes).
  ShmId RealShmId(Process& proc, ShmId id);
  SemId RealSemId(Process& proc, SemId id);

  void BlockThreadOnFd(Process& proc, Thread& thread, Fd fd, bool writable);
  void BlockThreadOnSem(Process& proc, Thread& thread, SemId sem);
  void SleepThread(Process& proc, Thread& thread, DurationNs d);

 private:
  void ScheduleStep(ThreadRef ref, DurationNs delay);
  void RunStep(ThreadRef ref);
  void ReleaseFd(Process& proc, const std::shared_ptr<FileDescription>& d);
  TcpSocketObject* TcpFromFd(Process& proc, Fd fd,
                             std::shared_ptr<FileDescription>* desc_out);
  // Charges the Zap interposition cost for syscalls issued from inside a
  // pod (the paper's <0.5% runtime overhead).
  void ChargeSyscall(Process& proc);

  sim::Simulator& sim_;
  std::string node_name_;
  NetworkStack* stack_;
  NetworkFileSystem* fs_;
  SysVIpc sysv_;
  SyscallInterposer* interposer_ = nullptr;
  std::function<void(Pid, int)> process_exit_hook_;
  OpLatencySink op_latency_sink_;

  std::map<Pid, std::unique_ptr<Process>> processes_;
  std::map<Pid, std::function<void(std::uint64_t)>> page_fault_handlers_;
  Pid next_pid_ = 100;
  PipeId next_pipe_id_ = 1;

  DurationNs step_granularity_ = 1 * kMicrosecond;
  DurationNs interposition_cost_ = 50;  // 50 ns per interposed syscall
  std::uint64_t steps_executed_ = 0;
  std::uint64_t syscall_count_ = 0;
  DurationNs pending_syscall_charge_ = 0;
};

}  // namespace cruz::os
