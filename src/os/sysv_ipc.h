// System V shared memory and semaphores (the subset Cruz checkpoints).
//
// The paper lists shared memory and semaphores among the OS resources the
// enhanced Zap can checkpoint and restart (§2). Shared memory segments are
// kernel page arrays mapped into process address spaces; semaphores are
// counting semaphores with blocking semop.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/sysresult.h"
#include "os/types.h"

namespace cruz::os {

struct ShmSegment {
  ShmId id = 0;
  std::int32_t key = 0;
  std::size_t size = 0;
  cruz::Bytes data;  // backing store, shared by all attachments
  int attach_count = 0;
};

struct ShmAttachment {
  ShmId shm_id = 0;
  std::uint64_t addr = 0;  // base address in the attaching process
};

struct Semaphore {
  SemId id = 0;
  std::int32_t key = 0;
  std::int32_t value = 0;
  std::vector<ThreadRef> waiters;  // threads blocked in semop(-n)
};

// Per-node SysV namespace. In-pod keys are virtualized by the pod layer
// so segments move with the pod.
class SysVIpc {
 public:
  // shmget: find-or-create by key. Returns shm id.
  SysResult ShmGet(std::int32_t key, std::size_t size, bool create);
  ShmSegment* FindShm(ShmId id);
  SysResult ShmRemove(ShmId id);

  SysResult SemGet(std::int32_t key, std::int32_t initial, bool create);
  Semaphore* FindSem(SemId id);
  SysResult SemRemove(SemId id);

  const std::map<ShmId, ShmSegment>& shm_segments() const { return shm_; }
  const std::map<SemId, Semaphore>& semaphores() const { return sems_; }

  // Restore-time: installs a segment/semaphore with a fresh id and returns
  // it (the pod layer maps old ids to new ones).
  ShmId InstallShm(std::int32_t key, cruz::Bytes data);
  SemId InstallSem(std::int32_t key, std::int32_t value);

 private:
  std::map<ShmId, ShmSegment> shm_;
  std::map<SemId, Semaphore> sems_;
  ShmId next_shm_id_ = 1;
  SemId next_sem_id_ = 1;
};

}  // namespace cruz::os
