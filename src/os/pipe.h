// Anonymous pipes (the classic bounded byte channel), checkpointable.
//
// Zap's original implementation already supported pipes; Cruz inherits
// that. A pipe is a kernel object shared by its read and write fds
// (possibly across processes in the pod); the checkpoint engine serializes
// each pipe once, keyed by its id, and reconnects restored fds to the
// recreated object.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/bytes.h"
#include "common/sysresult.h"
#include "os/types.h"

namespace cruz::os {

class Pipe {
 public:
  static constexpr std::size_t kCapacity = 64 * 1024;

  explicit Pipe(PipeId id) : id_(id) {}

  PipeId id() const { return id_; }

  // Returns bytes written, or -EAGAIN when full, -EPIPE when no readers.
  SysResult Write(cruz::ByteSpan data);
  // Returns bytes read, 0 at EOF (no writers and drained), -EAGAIN when
  // empty but writers remain.
  SysResult Read(cruz::Bytes& out, std::size_t max);

  std::size_t Readable() const { return buffer_.size(); }
  std::size_t WritableSpace() const { return kCapacity - buffer_.size(); }

  // Reference counting of fd ends (dup/close bookkeeping).
  void AddReader() { ++readers_; }
  void AddWriter() { ++writers_; }
  void RemoveReader() { --readers_; }
  void RemoveWriter() { --writers_; }
  int readers() const { return readers_; }
  int writers() const { return writers_; }

  // Threads parked on this pipe (woken by the OS when state changes).
  std::vector<ThreadRef>& read_waiters() { return read_waiters_; }
  std::vector<ThreadRef>& write_waiters() { return write_waiters_; }

  // Checkpoint support: full buffer contents.
  cruz::Bytes SnapshotBuffer() const {
    return cruz::Bytes(buffer_.begin(), buffer_.end());
  }
  void RestoreBuffer(cruz::ByteSpan data) {
    buffer_.assign(data.begin(), data.end());
  }

 private:
  PipeId id_;
  std::deque<std::uint8_t> buffer_;
  int readers_ = 0;
  int writers_ = 0;
  std::vector<ThreadRef> read_waiters_;
  std::vector<ThreadRef> write_waiters_;
};

}  // namespace cruz::os
