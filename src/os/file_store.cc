#include "os/file_store.h"

#include <algorithm>

namespace cruz::os {

bool MemFileStore::WouldOverflow(const std::string& path,
                                 std::uint64_t incoming) const {
  if (capacity_ == 0) return false;
  std::uint64_t used = TotalBytes();
  auto it = files_.find(path);
  if (it != files_.end()) used -= it->second.size();
  return used + incoming > capacity_;
}

SysResult MemFileStore::WriteFile(const std::string& path,
                                  cruz::Bytes content) {
  if (!available_) return SysErr(CRUZ_EIO);
  if (WouldOverflow(path, content.size())) return SysErr(CRUZ_ENOSPC);
  SysResult n = static_cast<SysResult>(content.size());
  files_[path] = std::move(content);
  return n;
}

SysResult MemFileStore::AppendFile(const std::string& path,
                                   cruz::ByteSpan content) {
  if (!available_) return SysErr(CRUZ_EIO);
  auto it = files_.find(path);
  std::uint64_t grown =
      (it != files_.end() ? it->second.size() : 0) + content.size();
  if (WouldOverflow(path, grown)) return SysErr(CRUZ_ENOSPC);
  cruz::Bytes& f = files_[path];
  f.insert(f.end(), content.begin(), content.end());
  return static_cast<SysResult>(content.size());
}

SysResult MemFileStore::ReadFile(const std::string& path,
                                 cruz::Bytes& out) const {
  if (!available_) return SysErr(CRUZ_EIO);
  auto it = files_.find(path);
  if (it == files_.end()) return SysErr(CRUZ_ENOENT);
  out = it->second;
  return static_cast<SysResult>(out.size());
}

SysResult MemFileStore::ReadAt(const std::string& path, std::uint64_t offset,
                               std::size_t n, cruz::Bytes& out) const {
  if (!available_) return SysErr(CRUZ_EIO);
  auto it = files_.find(path);
  if (it == files_.end()) return SysErr(CRUZ_ENOENT);
  const cruz::Bytes& f = it->second;
  if (offset >= f.size()) return 0;
  std::size_t take = std::min<std::uint64_t>(n, f.size() - offset);
  out.insert(out.end(), f.begin() + static_cast<std::ptrdiff_t>(offset),
             f.begin() + static_cast<std::ptrdiff_t>(offset + take));
  return static_cast<SysResult>(take);
}

SysResult MemFileStore::WriteAt(const std::string& path, std::uint64_t offset,
                                cruz::ByteSpan data, bool create) {
  if (!available_) return SysErr(CRUZ_EIO);
  auto it = files_.find(path);
  if (it == files_.end()) {
    if (!create) return SysErr(CRUZ_ENOENT);
    if (WouldOverflow(path, offset + data.size())) return SysErr(CRUZ_ENOSPC);
    it = files_.emplace(path, cruz::Bytes{}).first;
  } else if (offset + data.size() > it->second.size() &&
             WouldOverflow(path, offset + data.size())) {
    return SysErr(CRUZ_ENOSPC);
  }
  cruz::Bytes& f = it->second;
  if (offset + data.size() > f.size()) {
    f.resize(offset + data.size(), 0);
  }
  std::copy(data.begin(), data.end(),
            f.begin() + static_cast<std::ptrdiff_t>(offset));
  return static_cast<SysResult>(data.size());
}

SysResult MemFileStore::Remove(const std::string& path) {
  if (!available_) return SysErr(CRUZ_EIO);
  return files_.erase(path) != 0 ? 0 : SysErr(CRUZ_ENOENT);
}

SysResult MemFileStore::FileSize(const std::string& path) const {
  if (!available_) return SysErr(CRUZ_EIO);
  auto it = files_.find(path);
  if (it == files_.end()) return SysErr(CRUZ_ENOENT);
  return static_cast<SysResult>(it->second.size());
}

std::vector<std::string> MemFileStore::List(const std::string& prefix) const {
  std::vector<std::string> out;
  if (!available_) return out;
  for (const auto& [path, content] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

std::uint64_t MemFileStore::TotalBytes() const {
  std::uint64_t n = 0;
  for (const auto& [path, content] : files_) n += content.size();
  return n;
}

}  // namespace cruz::os
