#include "os/sysv_ipc.h"

namespace cruz::os {

SysResult SysVIpc::ShmGet(std::int32_t key, std::size_t size, bool create) {
  for (auto& [id, seg] : shm_) {
    if (seg.key == key) return id;
  }
  if (!create) return SysErr(CRUZ_ENOENT);
  ShmId id = next_shm_id_++;
  ShmSegment seg;
  seg.id = id;
  seg.key = key;
  seg.size = size;
  seg.data.assign(size, 0);
  shm_.emplace(id, std::move(seg));
  return id;
}

ShmSegment* SysVIpc::FindShm(ShmId id) {
  auto it = shm_.find(id);
  return it == shm_.end() ? nullptr : &it->second;
}

SysResult SysVIpc::ShmRemove(ShmId id) {
  return shm_.erase(id) != 0 ? 0 : SysErr(CRUZ_ENOENT);
}

SysResult SysVIpc::SemGet(std::int32_t key, std::int32_t initial,
                          bool create) {
  for (auto& [id, sem] : sems_) {
    if (sem.key == key) return id;
  }
  if (!create) return SysErr(CRUZ_ENOENT);
  SemId id = next_sem_id_++;
  Semaphore sem;
  sem.id = id;
  sem.key = key;
  sem.value = initial;
  sems_.emplace(id, std::move(sem));
  return id;
}

Semaphore* SysVIpc::FindSem(SemId id) {
  auto it = sems_.find(id);
  return it == sems_.end() ? nullptr : &it->second;
}

SysResult SysVIpc::SemRemove(SemId id) {
  return sems_.erase(id) != 0 ? 0 : SysErr(CRUZ_ENOENT);
}

ShmId SysVIpc::InstallShm(std::int32_t key, cruz::Bytes data) {
  ShmId id = next_shm_id_++;
  ShmSegment seg;
  seg.id = id;
  seg.key = key;
  seg.size = data.size();
  seg.data = std::move(data);
  shm_.emplace(id, std::move(seg));
  return id;
}

SemId SysVIpc::InstallSem(std::int32_t key, std::int32_t value) {
  SemId id = next_sem_id_++;
  Semaphore sem;
  sem.id = id;
  sem.key = key;
  sem.value = value;
  sems_.emplace(id, std::move(sem));
  return id;
}

}  // namespace cruz::os
