// Fundamental identifier types for the simulated OS.
#pragma once

#include <cstdint>

namespace cruz::os {

using Pid = std::int32_t;   // process id (real, kernel-level)
using Tid = std::int32_t;   // thread id within a process
using Fd = std::int32_t;    // file descriptor
using PodId = std::uint32_t;
using SocketId = std::uint64_t;
using PipeId = std::uint64_t;
using ShmId = std::int32_t;
using SemId = std::int32_t;

constexpr Pid kNoPid = -1;
constexpr PodId kNoPod = 0;

// Signal numbers (Linux subset used by the simulation). Named kSig* to
// avoid colliding with the host <signal.h> macros.
enum Signal : int {
  kSigKill = 9,
  kSigUsr1 = 10,
  kSigTerm = 15,
  kSigCont = 18,
  kSigStop = 19,
};

// A (pid, tid) pair identifying a schedulable thread.
struct ThreadRef {
  Pid pid = kNoPid;
  Tid tid = 0;
  bool operator==(const ThreadRef&) const = default;
};

}  // namespace cruz::os
