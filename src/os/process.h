// Processes and threads of the simulated OS.
//
// A process owns an address space (Memory), a file-descriptor table,
// threads, SysV shared-memory attachments, and signal state. Application
// code (a Program) keeps ALL of its state in the address space and in the
// small per-thread register file — exactly the state a transparent
// checkpointer can see — so a process rebuilt from those two pieces
// resumes identically. Program code itself is re-instantiated by name at
// restart, just as a real checkpointer relies on the executable being
// present on the target machine.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/address.h"
#include "os/file.h"
#include "os/memory.h"
#include "os/sysv_ipc.h"
#include "os/types.h"

namespace cruz::os {

class Program;

// The per-thread "CPU state": a program counter plus general registers.
constexpr int kNumRegisters = 16;

struct Registers {
  std::uint64_t r[kNumRegisters] = {};
  std::uint64_t& pc() { return r[0]; }
  std::uint64_t pc() const { return r[0]; }
};

enum class ThreadState : std::uint8_t {
  kRunnable = 0,
  kBlocked,   // parked on a wait object; a wakeup makes it runnable
  kExited,
};

// One recorded syscall result inside a step, for deterministic re-execution
// after a page fault (see StepJournal).
struct SysRecord {
  SysResult result = 0;
  cruz::Bytes out;         // received payload (recv/read-style calls)
  net::Endpoint from;      // recvfrom source
  std::uint64_t a = 0;     // extra out-params (fd pairs, mac/ip values)
  std::uint64_t b = 0;
};

// Journal of the syscalls a partially-executed step has already performed.
//
// A Program::Step is atomic from the program's point of view, but a touch
// of a missing page aborts it mid-flight (PageFault) after some syscalls
// may already have consumed input or sent packets. When the page arrives
// the step re-executes from its entry registers; the journal replays the
// recorded results for the prefix that already ran (without re-performing
// the destructive side effects), so the re-execution is bit-identical up
// to the fault point and then continues live. The journal is transient
// scheduling state: it exists only while the process has missing pages
// and is never serialized (checkpointing a mid-paging pod is forbidden).
struct StepJournal {
  std::vector<SysRecord> records;
  std::size_t cursor = 0;  // next record to replay on re-execution
};

struct Thread {
  Tid tid = 0;
  ThreadState state = ThreadState::kRunnable;
  Registers regs;
  // True while a step event for this thread is in the simulator queue
  // (prevents double-scheduling).
  bool step_scheduled = false;
  // Non-null only while demand paging may interrupt this thread's steps.
  std::shared_ptr<StepJournal> journal;
};

enum class ProcessState : std::uint8_t {
  kLive = 0,
  kStopped,  // SIGSTOP: threads keep their state but are not scheduled
  kZombie,   // exited, not yet reaped
};

class Process {
 public:
  // Constructor and destructor are out-of-line: Program is an incomplete
  // type here and the unique_ptr member needs it complete.
  Process(Pid pid, std::string program_name);
  ~Process();

  Pid pid() const { return pid_; }
  Pid ppid() const { return ppid_; }
  void set_ppid(Pid p) { ppid_ = p; }

  const std::string& program_name() const { return program_name_; }
  Program* program() const { return program_.get(); }
  void set_program(std::unique_ptr<Program> p);

  PodId pod() const { return pod_; }
  void set_pod(PodId p) { pod_ = p; }

  ProcessState state() const { return state_; }
  void set_state(ProcessState s) { state_ = s; }
  int exit_code() const { return exit_code_; }
  void set_exit_code(int c) { exit_code_ = c; }

  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }

  // --- threads ---------------------------------------------------------------
  Thread& MainThread() { return threads_.at(0); }
  Thread* FindThread(Tid tid);
  // Threads live in a deque so references held by a running ProcessCtx
  // stay valid when a step spawns a new thread.
  Tid CreateThread(Registers regs);
  // Restore path: installs a thread with its original tid.
  void InstallThread(Tid tid, Registers regs);
  std::deque<Thread>& threads() { return threads_; }
  const std::deque<Thread>& threads() const { return threads_; }
  bool AllThreadsExited() const;

  // --- fd table ----------------------------------------------------------------
  Fd AllocateFd(std::shared_ptr<FileDescription> desc);
  // Installs at a specific fd (restore path).
  void InstallFd(Fd fd, std::shared_ptr<FileDescription> desc);
  std::shared_ptr<FileDescription> LookupFd(Fd fd) const;
  SysResult RemoveFd(Fd fd);
  const std::map<Fd, std::shared_ptr<FileDescription>>& fds() const {
    return fds_;
  }

  // --- demand paging (post-copy migration) ---------------------------------
  // While a thread is parked on a missing page, the whole process stalls:
  // no other thread of the process is stepped, so the re-executed step
  // observes exactly the state it saw before the fault. At most one fault
  // is in flight per process by construction.
  bool has_pending_fault() const { return pending_fault_tid_ >= 0; }
  Tid pending_fault_tid() const { return pending_fault_tid_; }
  std::uint64_t pending_fault_page() const { return pending_fault_page_; }
  void SetPendingFault(Tid tid, std::uint64_t page_index) {
    pending_fault_tid_ = tid;
    pending_fault_page_ = page_index;
  }
  void ClearPendingFault() { pending_fault_tid_ = -1; }

  // --- shm attachments -----------------------------------------------------------
  std::vector<ShmAttachment>& shm_attachments() { return shm_attachments_; }
  const std::vector<ShmAttachment>& shm_attachments() const {
    return shm_attachments_;
  }

 private:
  Pid pid_;
  Pid ppid_ = kNoPid;
  std::string program_name_;
  std::unique_ptr<Program> program_;
  PodId pod_ = kNoPod;
  ProcessState state_ = ProcessState::kLive;
  int exit_code_ = 0;

  Memory memory_;
  std::deque<Thread> threads_;
  Tid next_tid_ = 0;
  std::map<Fd, std::shared_ptr<FileDescription>> fds_;
  Fd next_fd_ = 3;  // 0..2 conventionally reserved
  std::vector<ShmAttachment> shm_attachments_;
  Tid pending_fault_tid_ = -1;  // < 0: no fault in flight
  std::uint64_t pending_fault_page_ = 0;
};

}  // namespace cruz::os
