#include "os/netfs.h"

#include <algorithm>

namespace cruz::os {

void NetworkFileSystem::WriteFile(const std::string& path,
                                  cruz::Bytes content) {
  files_[path] = std::move(content);
}

void NetworkFileSystem::AppendFile(const std::string& path,
                                   cruz::ByteSpan content) {
  cruz::Bytes& f = files_[path];
  f.insert(f.end(), content.begin(), content.end());
}

SysResult NetworkFileSystem::ReadFile(const std::string& path,
                                      cruz::Bytes& out) const {
  auto it = files_.find(path);
  if (it == files_.end()) return SysErr(CRUZ_ENOENT);
  out = it->second;
  return static_cast<SysResult>(out.size());
}

SysResult NetworkFileSystem::ReadAt(const std::string& path,
                                    std::uint64_t offset, std::size_t n,
                                    cruz::Bytes& out) const {
  auto it = files_.find(path);
  if (it == files_.end()) return SysErr(CRUZ_ENOENT);
  const cruz::Bytes& f = it->second;
  if (offset >= f.size()) return 0;
  std::size_t take = std::min<std::uint64_t>(n, f.size() - offset);
  out.insert(out.end(), f.begin() + static_cast<std::ptrdiff_t>(offset),
             f.begin() + static_cast<std::ptrdiff_t>(offset + take));
  return static_cast<SysResult>(take);
}

SysResult NetworkFileSystem::WriteAt(const std::string& path,
                                     std::uint64_t offset,
                                     cruz::ByteSpan data, bool create) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    if (!create) return SysErr(CRUZ_ENOENT);
    it = files_.emplace(path, cruz::Bytes{}).first;
  }
  cruz::Bytes& f = it->second;
  if (offset + data.size() > f.size()) {
    f.resize(offset + data.size(), 0);
  }
  std::copy(data.begin(), data.end(),
            f.begin() + static_cast<std::ptrdiff_t>(offset));
  return static_cast<SysResult>(data.size());
}

SysResult NetworkFileSystem::Remove(const std::string& path) {
  return files_.erase(path) != 0 ? 0 : SysErr(CRUZ_ENOENT);
}

SysResult NetworkFileSystem::FileSize(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return SysErr(CRUZ_ENOENT);
  return static_cast<SysResult>(it->second.size());
}

std::vector<std::string> NetworkFileSystem::List(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, content] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

std::uint64_t NetworkFileSystem::TotalBytes() const {
  std::uint64_t n = 0;
  for (const auto& [path, content] : files_) n += content.size();
  return n;
}

}  // namespace cruz::os
