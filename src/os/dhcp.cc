#include "os/dhcp.h"

#include "common/error.h"
#include "common/log.h"

namespace cruz::os {

namespace {
constexpr std::uint32_t kRequestMagic = 0xD4C90001;
constexpr std::uint32_t kAckMagic = 0xD4C90002;
}  // namespace

cruz::Bytes EncodeDhcpRequest(net::MacAddress chaddr) {
  cruz::ByteWriter w;
  w.PutU32(kRequestMagic);
  w.PutBytes(chaddr.octets.data(), 6);
  return w.Take();
}

cruz::Bytes EncodeDhcpAck(net::MacAddress chaddr, net::Ipv4Address ip) {
  cruz::ByteWriter w;
  w.PutU32(kAckMagic);
  w.PutBytes(chaddr.octets.data(), 6);
  w.PutU32(ip.value);
  return w.Take();
}

bool DecodeDhcpRequest(cruz::ByteSpan payload, net::MacAddress* chaddr) {
  try {
    cruz::ByteReader r(payload);
    if (r.GetU32() != kRequestMagic) return false;
    cruz::ByteSpan mac = r.GetSpan(6);
    std::copy(mac.begin(), mac.end(), chaddr->octets.begin());
    return true;
  } catch (const cruz::CodecError&) {
    return false;
  }
}

bool DecodeDhcpAck(cruz::ByteSpan payload, net::MacAddress* chaddr,
                   net::Ipv4Address* ip) {
  try {
    cruz::ByteReader r(payload);
    if (r.GetU32() != kAckMagic) return false;
    cruz::ByteSpan mac = r.GetSpan(6);
    std::copy(mac.begin(), mac.end(), chaddr->octets.begin());
    ip->value = r.GetU32();
    return true;
  } catch (const cruz::CodecError&) {
    return false;
  }
}

DhcpServer::DhcpServer(NetworkStack& stack, net::Ipv4Address range_start,
                       std::uint32_t range_size)
    : stack_(stack), range_start_(range_start), range_size_(range_size) {
  stack_.RegisterUdpService(
      kDhcpServerPort,
      [this](net::Endpoint from, const cruz::Bytes& payload) {
        OnRequest(from, payload);
      });
}

DhcpServer::~DhcpServer() { stack_.UnregisterUdpService(kDhcpServerPort); }

void DhcpServer::OnRequest(net::Endpoint from, const cruz::Bytes& payload) {
  net::MacAddress chaddr;
  if (!DecodeDhcpRequest(payload, &chaddr)) return;
  // The lease is keyed by the chaddr in the payload — NOT by the Ethernet
  // source — so a migrated pod presenting the same fake MAC renews the
  // same address (paper §4.2).
  auto it = leases_.find(chaddr);
  net::Ipv4Address assigned;
  if (it != leases_.end()) {
    assigned = it->second;
  } else {
    if (next_offset_ >= range_size_) {
      CRUZ_WARN("dhcp") << "address pool exhausted";
      return;
    }
    assigned = net::Ipv4Address{range_start_.value + next_offset_++};
    leases_[chaddr] = assigned;
  }
  // Reply to the IP broadcast address: the client may not have an address
  // configured yet.
  cruz::Bytes ack = EncodeDhcpAck(chaddr, assigned);
  net::UdpDatagram dgram;
  dgram.src_port = kDhcpServerPort;
  dgram.dst_port = kDhcpClientPort;
  dgram.payload = std::move(ack);
  net::Ipv4Packet pkt;
  pkt.src = stack_.interfaces().empty() ? net::kAnyAddress
                                        : stack_.interfaces().front().ip;
  pkt.dst = net::Ipv4Address{0xFFFFFFFF};
  pkt.proto = net::IpProto::kUdp;
  pkt.payload = dgram.Encode();
  stack_.SendIpv4(std::move(pkt));
  (void)from;
}

void DhcpClient::Request(NetworkStack& stack, net::MacAddress chaddr,
                         LeaseCallback on_lease) {
  // Kernel-space client helper: listen for the ACK on port 68, broadcast
  // the request, deliver the lease through the callback, then unregister.
  stack.RegisterUdpService(
      kDhcpClientPort,
      [&stack, chaddr, on_lease = std::move(on_lease)](
          net::Endpoint, const cruz::Bytes& payload) {
        net::MacAddress acked;
        net::Ipv4Address ip;
        if (!DecodeDhcpAck(payload, &acked, &ip) || acked != chaddr) return;
        // Unregistering destroys this closure; copy the callback out first
        // so it survives its own deregistration.
        LeaseCallback deliver = on_lease;
        stack.UnregisterUdpService(kDhcpClientPort);
        deliver(ip);
      });
  net::UdpDatagram dgram;
  dgram.src_port = kDhcpClientPort;
  dgram.dst_port = kDhcpServerPort;
  dgram.payload = EncodeDhcpRequest(chaddr);
  net::Ipv4Packet pkt;
  pkt.src = stack.interfaces().empty() ? net::kAnyAddress
                                       : stack.interfaces().front().ip;
  pkt.dst = net::Ipv4Address{0xFFFFFFFF};
  pkt.proto = net::IpProto::kUdp;
  pkt.payload = dgram.Encode();
  stack.SendIpv4(std::move(pkt));
}

}  // namespace cruz::os
