// Application programs and the registry that re-instantiates them at
// restart.
//
// A Program is the *code* of an application: a resumable state machine
// driven by the scheduler. Each invocation of Step() runs one bounded
// burst of work for one thread. All persistent state must live in the
// process address space (ctx.Mem()) or the thread register file
// (ctx.Reg(i)); the Program object itself must stay stateless, because a
// restored process gets a *fresh* Program instance (looked up by name in
// the ProgramRegistry) with only memory + registers carried over — the
// exact contract of a transparent checkpointer.
//
// Blocking: syscalls never block; they return -EAGAIN. A program that
// needs to wait calls ctx.BlockOnReadable(fd) / BlockOnWritable(fd) /
// Sleep(d) and returns from Step(); the scheduler re-runs Step() at the
// same pc after the wakeup, and the program re-issues the syscall. This is
// the classic poll-retry structure of event-driven code, and it is what
// makes a thread restored as "runnable" simply re-enter its wait.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/sysresult.h"
#include "common/units.h"
#include "net/address.h"
#include "os/memory.h"
#include "os/process.h"
#include "os/types.h"

namespace cruz::os {

class Os;

// The syscall/CPU surface handed to Program::Step. Thin wrapper around
// (Os, Process, Thread); see os.h for the kernel-side implementations.
class ProcessCtx {
 public:
  ProcessCtx(Os& os, Process& proc, Thread& thread)
      : os_(os), proc_(proc), thread_(thread) {}

  // --- CPU state -------------------------------------------------------------
  std::uint64_t& Reg(int i) { return thread_.regs.r[i]; }
  std::uint64_t& Pc() { return thread_.regs.pc(); }
  Memory& Mem() { return proc_.memory(); }
  Tid tid() const { return thread_.tid; }

  // --- scheduling ---------------------------------------------------------------
  TimeNs Now() const;
  // Accounts simulated CPU time for this step (the next step of this
  // thread is scheduled after the accumulated charge).
  void ChargeCpu(DurationNs d) { cpu_charge_ += d; }
  // Parks the thread; a wakeup re-runs Step at the current pc.
  void BlockOnReadable(Fd fd);
  void BlockOnWritable(Fd fd);
  void BlockOnSem(SemId sem);
  void Sleep(DurationNs d);
  void ExitProcess(int code);
  void ExitThread();

  // --- observability ---------------------------------------------------------
  // Reports one completed request: latency is Now() - intended, where
  // `intended` is the open-loop schedule's intended send time (measuring
  // from the intended, not actual, send makes coordinated omission
  // impossible by construction). Emits a sampled `kv.op` trace instant
  // and feeds the node's op-latency sink. No-op during post-fault
  // replay — the original execution already reported the sample.
  void ReportOpLatency(std::uint64_t conn, TimeNs intended);

  // --- process management ----------------------------------------------------------
  SysResult Getpid();
  SysResult Spawn(const std::string& program, cruz::ByteSpan args);
  SysResult SpawnThread(std::uint64_t pc, std::uint64_t arg);
  SysResult Kill(Pid pid, int signal);

  // --- files / pipes -----------------------------------------------------------------
  SysResult Open(const std::string& path, bool create);
  SysResult Read(Fd fd, cruz::Bytes& out, std::size_t max);
  SysResult Write(Fd fd, cruz::ByteSpan data);
  SysResult Close(Fd fd);
  SysResult Dup(Fd fd);
  SysResult MakePipe(Fd* read_end, Fd* write_end);

  // --- sockets ------------------------------------------------------------------------
  SysResult SocketTcp();
  SysResult SocketUdp();
  SysResult Bind(Fd fd, net::Endpoint local);
  SysResult Listen(Fd fd, int backlog);
  SysResult Accept(Fd fd);
  SysResult Connect(Fd fd, net::Endpoint remote);
  SysResult SendTcp(Fd fd, cruz::ByteSpan data);
  SysResult RecvTcp(Fd fd, cruz::Bytes& out, std::size_t max,
                    bool peek = false);
  SysResult SendToUdp(Fd fd, net::Endpoint remote, cruz::ByteSpan data);
  SysResult RecvFromUdp(Fd fd, cruz::Bytes& out, net::Endpoint* from);
  SysResult SetNodelay(Fd fd, bool on);
  SysResult SetCork(Fd fd, bool on);
  SysResult ShutdownTcp(Fd fd);  // orderly close of the write side

  // --- network ioctls (SIOCGIFHWADDR et al.) ----------------------------------
  SysResult GetIfHwAddr(const std::string& ifname, net::MacAddress* mac);
  SysResult GetIfAddr(const std::string& ifname, net::Ipv4Address* ip);

  // --- SysV IPC -------------------------------------------------------------------
  SysResult ShmGet(std::int32_t key, std::size_t size);
  SysResult ShmAt(ShmId id, std::uint64_t addr);
  SysResult ShmReadU64(ShmId id, std::uint64_t offset);
  SysResult ShmWriteU64(ShmId id, std::uint64_t offset, std::uint64_t v);
  SysResult SemGet(std::int32_t key, std::int32_t initial);
  SysResult SemOp(SemId id, std::int32_t delta);  // -EAGAIN if would block

  // Internal: state consumed by the scheduler after Step returns.
  DurationNs cpu_charge() const { return cpu_charge_; }
  bool parked() const { return parked_; }

 private:
  friend class Os;

  // Step-journal interception (see StepJournal in process.h). While a
  // post-fault re-execution is replaying, each syscall wrapper returns
  // the recorded result of the aborted prefix instead of re-performing
  // the (already applied) side effect; past the prefix, and whenever the
  // address space has missing pages, live results are recorded. Both are
  // no-ops on the common path (journal == nullptr).
  bool ReplayActive() const {
    return thread_.journal != nullptr &&
           thread_.journal->cursor < thread_.journal->records.size();
  }
  const SysRecord& ReplayNext() {
    return thread_.journal->records[thread_.journal->cursor++];
  }
  bool Recording() const { return thread_.journal != nullptr; }
  SysRecord& Record(SysResult result) {
    thread_.journal->records.push_back(SysRecord{result, {}, {}, 0, 0});
    thread_.journal->cursor = thread_.journal->records.size();
    return thread_.journal->records.back();
  }
  // Replay/record wrapper for syscalls whose only output is the result.
  template <typename Live>
  SysResult Intercept(Live&& live) {
    if (ReplayActive()) return ReplayNext().result;
    SysResult r = live();
    if (Recording()) Record(r);
    return r;
  }

  Os& os_;
  Process& proc_;
  Thread& thread_;
  DurationNs cpu_charge_ = 0;
  bool parked_ = false;
};

class Program {
 public:
  virtual ~Program() = default;
  // Runs one step for one thread. Must not retain references to ctx.
  virtual void Step(ProcessCtx& ctx) = 0;
};

// Name -> factory registry. Programs self-register at static-init time via
// RegisterProgram, or tests register lambdas directly.
class ProgramRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Program>()>;

  static ProgramRegistry& Instance();

  void Register(const std::string& name, Factory factory);
  // Throws UsageError for unknown names (a restart on a machine without
  // the application binary is a deployment error, not a silent no-op).
  std::unique_ptr<Program> Create(const std::string& name) const;
  bool Contains(const std::string& name) const;

 private:
  std::map<std::string, Factory> factories_;
};

// Helper for static registration:
//   CRUZ_REGISTER_PROGRAM("slm_rank", SlmRankProgram);
#define CRUZ_REGISTER_PROGRAM(name, Type)                              \
  static const bool cruz_prog_reg_##Type = [] {                        \
    ::cruz::os::ProgramRegistry::Instance().Register(                  \
        (name), [] { return std::make_unique<Type>(); });              \
    return true;                                                       \
  }()

}  // namespace cruz::os
