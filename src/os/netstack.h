// Per-node network stack: interfaces (physical + per-pod VIFs), ARP, IPv4
// routing on a single subnet, UDP, TCP socket objects, and netfilter hooks.
//
// Key Cruz-specific capabilities live here:
//   * virtual interfaces with their own externally-routable IP (and,
//     hardware permitting, their own MAC) that can be deleted on one node
//     and recreated on another (paper §4.2);
//   * gratuitous-ARP announcement for the shared-MAC migration scheme;
//   * netfilter rules that silently drop all traffic to/from a pod's IP —
//     the "disable communication" step of the coordinated checkpoint
//     protocol (paper §5);
//   * TCP socket objects wrapping tcp::TcpConnection with listener/accept
//     queues and the pod's alternate receive buffer for restored data.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/sysresult.h"
#include "net/address.h"
#include "net/ethernet_switch.h"
#include "net/nic.h"
#include "net/packet.h"
#include "os/types.h"
#include "sim/event_queue.h"
#include "tcp/config.h"
#include "tcp/connection.h"

namespace cruz::sim {
class Simulator;
}

namespace cruz::os {

struct Interface {
  std::string name;
  net::MacAddress mac;  // network-visible MAC used on the wire
  net::Ipv4Address ip;
  net::Ipv4Address netmask;
  bool is_virtual = false;
};

struct UdpSocketObject {
  SocketId id = 0;
  net::Endpoint local;
  std::deque<std::pair<net::Endpoint, cruz::Bytes>> rx;
  std::vector<ThreadRef> read_waiters;
  static constexpr std::size_t kMaxQueue = 256;
};

struct TcpSocketObject {
  enum class State : std::uint8_t {
    kFresh = 0,
    kBound,
    kListening,
    kConnecting,
    kConnected,   // established (may be half-closed)
    kError,       // reset / timed out; error holds the errno
  };

  SocketId id = 0;
  State state = State::kFresh;
  net::Endpoint local;
  Errno error = CRUZ_EOK;

  // Listener state.
  int backlog = 0;
  std::deque<SocketId> accept_queue;  // established, unaccepted children

  // Connection state.
  std::unique_ptr<tcp::TcpConnection> conn;

  // Zap restore path: received-but-undelivered bytes from the checkpoint,
  // delivered ahead of the TCP receive path by the intercepted recv
  // syscall (paper §4.1 "alternate buffer").
  cruz::Bytes alt_recv;

  std::vector<ThreadRef> read_waiters;
  std::vector<ThreadRef> write_waiters;
  std::vector<ThreadRef> accept_waiters;
};

class NetworkStack {
 public:
  using WakeFn = std::function<void(std::vector<ThreadRef>&)>;
  using FilterFn = std::function<bool(const net::Ipv4Packet&)>;  // true=drop

  NetworkStack(sim::Simulator& sim, std::string node_name, net::Nic* nic,
               tcp::TcpConfig tcp_config = {});

  // Wires thread wakeups (set by the Os; takes and clears the list).
  void set_wake_fn(WakeFn fn) { wake_ = std::move(fn); }

  net::Nic* nic() { return nic_; }
  const tcp::TcpConfig& tcp_config() const { return tcp_config_; }

  // --- interfaces -----------------------------------------------------------
  // Adds an interface. For a virtual interface with its own MAC the NIC
  // must support multiple MAC filters; otherwise pass the physical MAC.
  void AddInterface(const std::string& name, net::MacAddress mac,
                    net::Ipv4Address ip, net::Ipv4Address netmask,
                    bool is_virtual);
  void RemoveInterface(const std::string& name);
  const Interface* FindInterfaceByName(const std::string& name) const;
  const Interface* FindInterfaceByIp(net::Ipv4Address ip) const;
  bool OwnsIp(net::Ipv4Address ip) const;
  const std::vector<Interface>& interfaces() const { return interfaces_; }

  // Gratuitous ARP: announce (ip -> mac) to the whole subnet. Used when a
  // migrated pod's VIF lands on hardware with a different MAC (§4.2).
  void AnnounceAddress(net::Ipv4Address ip, net::MacAddress mac);

  // --- netfilter ---------------------------------------------------------------
  std::uint64_t AddFilter(FilterFn fn);
  void RemoveFilter(std::uint64_t id);
  std::size_t filter_count() const { return filters_.size(); }
  std::uint64_t filtered_packets() const { return filtered_packets_; }

  // --- IP output -----------------------------------------------------------------
  // Routes, ARP-resolves and transmits. Packets to one of this node's own
  // addresses loop back locally.
  void SendIpv4(net::Ipv4Packet pkt);

  // --- UDP -------------------------------------------------------------------------
  SocketId CreateUdpSocket();
  UdpSocketObject* FindUdp(SocketId id);
  SysResult UdpBind(SocketId id, net::Endpoint local);
  SysResult UdpSendTo(SocketId id, net::Endpoint remote, cruz::ByteSpan data);
  void DestroyUdpSocket(SocketId id);

  // --- TCP -------------------------------------------------------------------------
  SocketId CreateTcpSocket();
  TcpSocketObject* FindTcp(SocketId id);
  SysResult TcpBind(SocketId id, net::Endpoint local);
  SysResult TcpListen(SocketId id, int backlog);
  // Active open; local.ip must already be set (bind or implicit bind).
  SysResult TcpConnect(SocketId id, net::Endpoint remote);
  // Pops an established child from a listener. -EAGAIN when empty.
  SysResult TcpAccept(SocketId id, SocketId* child);
  void DestroyTcpSocket(SocketId id);

  // Restore path: rebuilds a connection from its checkpoint (the §4.1
  // replay happens inside TcpConnection::Restore) and installs it into a
  // fresh socket object with the alternate receive buffer attached.
  SocketId RestoreTcpFromCheckpoint(const tcp::TcpConnCheckpoint& ck,
                                    cruz::Bytes alt_recv);
  // Restore path: recreates a listener.
  SocketId InstallRestoredListener(net::Endpoint local, int backlog);

  // Silently destroys every socket whose local address is `ip` (pod
  // teardown after migration: the restored incarnation owns the
  // connections; nothing may be transmitted from here).
  void PurgeSocketsForIp(net::Ipv4Address ip);

  // Enumeration for the checkpoint engine.
  std::map<SocketId, std::unique_ptr<TcpSocketObject>>& tcp_sockets() {
    return tcp_sockets_;
  }
  std::map<SocketId, std::unique_ptr<UdpSocketObject>>& udp_sockets() {
    return udp_sockets_;
  }

  // Ephemeral port allocation for an address this node owns.
  std::uint16_t AllocateEphemeralPort(net::Ipv4Address ip);

  // Raw frame input (wired to the NIC receive handler).
  void OnFrame(cruz::ByteSpan wire);

  // --- UDP service hook (kernel-space services such as DHCP) ---------------
  // If set for a port, datagrams to that port are handed to the service
  // instead of a socket.
  using UdpService =
      std::function<void(net::Endpoint from, const cruz::Bytes& payload)>;
  void RegisterUdpService(std::uint16_t port, UdpService service);
  void UnregisterUdpService(std::uint16_t port);
  // Models kernel UDP receive processing for service ports: each datagram
  // occupies the (single) protocol-processing CPU for this long before
  // the service sees it, so near-simultaneous arrivals queue behind each
  // other. This is what makes coordination overhead grow with the number
  // of <done> messages converging on the coordinator (paper Fig. 5b).
  void set_udp_service_processing_cost(DurationNs cost) {
    udp_service_cost_ = cost;
  }

  // --- stats ------------------------------------------------------------------
  std::uint64_t ip_tx() const { return ip_tx_; }
  std::uint64_t ip_rx() const { return ip_rx_; }
  std::uint64_t arp_requests_sent() const { return arp_requests_sent_; }

 private:
  void WakeAll(std::vector<ThreadRef>& waiters);
  void DeliverIpv4Local(const net::Ipv4Packet& pkt);
  void HandleArp(const net::ArpPacket& arp);
  void HandleTcpSegment(const net::Ipv4Packet& pkt);
  void HandleUdpDatagram(const net::Ipv4Packet& pkt);
  void TransmitIpv4(const net::Ipv4Packet& pkt, const Interface& out_if,
                    net::MacAddress dst_mac);
  void ResolveAndSend(net::Ipv4Packet pkt, const Interface& out_if);
  void SendArpRequest(net::Ipv4Address target, const Interface& out_if);
  const Interface* RouteSourceInterface(net::Ipv4Address src) const;

  // Wires a connection's callbacks to a socket object.
  tcp::TcpConnection::Callbacks MakeConnCallbacks(SocketId id);
  tcp::TcpConnection::OutputFn MakeConnOutput();
  void RegisterTuple(const net::FourTuple& tuple, SocketId id);

  sim::Simulator& sim_;
  std::string node_name_;
  net::Nic* nic_;
  tcp::TcpConfig tcp_config_;
  WakeFn wake_;

  std::vector<Interface> interfaces_;

  // ARP.
  struct ArpPending {
    std::vector<net::Ipv4Packet> queued;
    int retries = 0;
    sim::EventId retry_timer = sim::kInvalidEventId;
    std::string out_if_name;
  };
  std::unordered_map<net::Ipv4Address, net::MacAddress> arp_cache_;
  std::unordered_map<net::Ipv4Address, ArpPending> arp_pending_;

  // Netfilter.
  struct Filter {
    std::uint64_t id;
    FilterFn fn;
  };
  std::vector<Filter> filters_;
  std::uint64_t next_filter_id_ = 1;
  std::uint64_t filtered_packets_ = 0;

  // Sockets.
  std::map<SocketId, std::unique_ptr<TcpSocketObject>> tcp_sockets_;
  std::map<SocketId, std::unique_ptr<UdpSocketObject>> udp_sockets_;
  SocketId next_socket_id_ = 1;
  std::unordered_map<net::FourTuple, SocketId> tcp_by_tuple_;
  std::map<net::Endpoint, SocketId> tcp_listeners_;
  std::map<net::Endpoint, SocketId> udp_by_endpoint_;
  std::map<std::uint16_t, UdpService> udp_services_;
  DurationNs udp_service_cost_ = 0;
  TimeNs udp_service_busy_until_ = 0;
  std::uint16_t next_ephemeral_port_ = 32768;

  std::uint64_t ip_tx_ = 0;
  std::uint64_t ip_rx_ = 0;
  std::uint64_t arp_requests_sent_ = 0;
};

}  // namespace cruz::os
