#include "os/node.h"

#include "common/log.h"
#include "sim/simulator.h"

namespace cruz::os {

Node::Node(sim::Simulator& sim, net::EthernetSwitch& ethernet,
           NetworkFileSystem& fs, std::string name, std::uint32_t index,
           const NodeConfig& config)
    : sim_(sim),
      ethernet_(ethernet),
      name_(std::move(name)),
      index_(index),
      config_(config) {
  nic_ = std::make_unique<net::Nic>(
      sim, net::MacAddress::FromId(0x10000000u + index), name_ + "/eth0");
  nic_->set_supports_multiple_macs(config_.nic_supports_multiple_macs);
  ethernet_.AttachNic(nic_.get());
  stack_ = std::make_unique<NetworkStack>(sim, name_, nic_.get(),
                                          config_.tcp);
  stack_->AddInterface("eth0", nic_->primary_mac(), config_.ip,
                       config_.netmask, /*is_virtual=*/false);
  os_ = std::make_unique<Os>(sim, name_, stack_.get(), &fs);
  disk_ = std::make_unique<LocalDiskStore>(name_);
  disk_->set_capacity_bytes(config_.local_disk_capacity_bytes);
}

void Node::Fail() {
  if (failed_) return;
  failed_ = true;
  CRUZ_INFO("node") << name_ << ": FAIL-STOP";
  ethernet_.DetachNic(nic_.get());
  std::vector<Pid> pids;
  for (const auto& [pid, proc] : os_->processes()) pids.push_back(pid);
  for (Pid pid : pids) os_->DestroyProcess(pid, 128 + kSigKill);
  // The tier-1 checkpoint cache shares the node's failure domain: losing
  // the machine loses its local images (the tiered store falls back to
  // the partner replica or the netfs).
  disk_->Clear();
}

void Node::Reboot() {
  if (!failed_) return;
  failed_ = false;
  CRUZ_INFO("node") << name_ << ": REBOOT";
  ethernet_.AttachNic(nic_.get());
}

}  // namespace cruz::os
