// Minimal DHCP (kernel-space UDP services on ports 67/68).
//
// The paper's dynamic-address path (§4.2) depends on one property of
// DHCP: the server identifies a client by the MAC address *in the request
// payload* (chaddr), not by the Ethernet source address. Cruz therefore
// preserves a pod's lease across migration by having the intercepted
// SIOCGIFHWADDR return a stable fake MAC that the client embeds in its
// requests. This implementation models exactly that: a two-message
// REQUEST/ACK exchange where the lease key is the payload chaddr.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "common/bytes.h"
#include "net/address.h"
#include "os/netstack.h"

namespace cruz::os {

constexpr std::uint16_t kDhcpServerPort = 67;
constexpr std::uint16_t kDhcpClientPort = 68;

struct DhcpLease {
  net::MacAddress chaddr;
  net::Ipv4Address ip;
};

// Runs on one node of the subnet; hands out addresses from a fixed range,
// keyed (and kept stable) by chaddr.
class DhcpServer {
 public:
  DhcpServer(NetworkStack& stack, net::Ipv4Address range_start,
             std::uint32_t range_size);
  ~DhcpServer();

  std::size_t lease_count() const { return leases_.size(); }
  const std::map<net::MacAddress, net::Ipv4Address>& leases() const {
    return leases_;
  }

 private:
  void OnRequest(net::Endpoint from, const cruz::Bytes& payload);

  NetworkStack& stack_;
  net::Ipv4Address range_start_;
  std::uint32_t range_size_;
  std::map<net::MacAddress, net::Ipv4Address> leases_;
  std::uint32_t next_offset_ = 0;
};

// Client helper: one REQUEST broadcast, lease returned via callback. The
// node's stack must already have an interface to send from; the assigned
// address is the caller's to configure (the pod manager adds the VIF).
class DhcpClient {
 public:
  using LeaseCallback = std::function<void(net::Ipv4Address)>;

  // Issues a request with the given chaddr (for pods: the fake MAC).
  static void Request(NetworkStack& stack, net::MacAddress chaddr,
                      LeaseCallback on_lease);
};

// Wire format helpers (shared by client and server, exercised in tests).
cruz::Bytes EncodeDhcpRequest(net::MacAddress chaddr);
cruz::Bytes EncodeDhcpAck(net::MacAddress chaddr, net::Ipv4Address ip);
bool DecodeDhcpRequest(cruz::ByteSpan payload, net::MacAddress* chaddr);
bool DecodeDhcpAck(cruz::ByteSpan payload, net::MacAddress* chaddr,
                   net::Ipv4Address* ip);

}  // namespace cruz::os
