// Storage substrate shared by the netfs and per-node local disks.
//
// FileStore is the minimal read interface a checkpoint consumer needs
// (restore walks an image chain by path); MemFileStore is the full
// in-memory filesystem model behind both os::NetworkFileSystem and
// os::LocalDiskStore. It adds two failure-domain knobs the tiered
// checkpoint store exercises:
//
//  - a capacity budget: writes that would exceed it fail with -ENOSPC
//    instead of silently growing (0 = unlimited), and
//  - an availability flag: an unavailable store fails every operation
//    with -EIO, modelling a netfs outage window or an unmounted disk.
//
// I/O cost is still charged by the caller through the per-node disk
// model (Node::DiskWriteDuration); the store is pure state.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/sysresult.h"

namespace cruz::os {

// Read-side interface: enough to locate and load checkpoint images.
// CheckpointEngine::LoadImageChain takes this, so a restore can read
// from a plain filesystem or from a tier-resolving view alike.
class FileStore {
 public:
  virtual ~FileStore() = default;

  virtual bool Exists(const std::string& path) const = 0;
  // Returns the byte count read, or -ENOENT / -EIO.
  virtual SysResult ReadFile(const std::string& path,
                             cruz::Bytes& out) const = 0;
  virtual SysResult FileSize(const std::string& path) const = 0;
};

// In-memory filesystem with a capacity budget and an availability flag.
class MemFileStore : public FileStore {
 public:
  MemFileStore() = default;
  explicit MemFileStore(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  bool Exists(const std::string& path) const override {
    return available_ && files_.count(path) != 0;
  }

  // Creates or truncates. Returns the byte count written, -ENOSPC when
  // the capacity budget would be exceeded, or -EIO when unavailable.
  SysResult WriteFile(const std::string& path, cruz::Bytes content);
  // Appends, creating if missing.
  SysResult AppendFile(const std::string& path, cruz::ByteSpan content);
  // Returns -ENOENT if missing.
  SysResult ReadFile(const std::string& path, cruz::Bytes& out) const override;
  // Reads [offset, offset+n) into out; short reads at EOF. -ENOENT if
  // missing.
  SysResult ReadAt(const std::string& path, std::uint64_t offset,
                   std::size_t n, cruz::Bytes& out) const;
  // Writes at offset, extending with zeros if needed. -ENOENT if missing
  // and `create` is false.
  SysResult WriteAt(const std::string& path, std::uint64_t offset,
                    cruz::ByteSpan data, bool create);
  SysResult Remove(const std::string& path);
  SysResult FileSize(const std::string& path) const override;

  std::vector<std::string> List(const std::string& prefix) const;

  std::uint64_t TotalBytes() const;

  // Capacity budget in bytes; 0 means unlimited. Applies to writes only
  // (existing content is never dropped by shrinking the budget).
  void set_capacity_bytes(std::uint64_t capacity) { capacity_ = capacity; }
  std::uint64_t capacity_bytes() const { return capacity_; }

  // An unavailable store fails every operation with -EIO (netfs outage
  // window, dead disk). Contents are preserved across the outage.
  void set_available(bool available) { available_ = available; }
  bool available() const { return available_; }

  // Drops every file: local-disk loss, or a failed node taking its
  // checkpoint cache with it.
  void Clear() { files_.clear(); }

 private:
  // Would the store exceed its budget after writing `incoming` bytes to
  // `path` (replacing whatever is there)?
  bool WouldOverflow(const std::string& path, std::uint64_t incoming) const;

  std::string name_;
  std::map<std::string, cruz::Bytes> files_;
  std::uint64_t capacity_ = 0;
  bool available_ = true;
};

}  // namespace cruz::os
