#include "os/pipe.h"

#include <algorithm>

namespace cruz::os {

SysResult Pipe::Write(cruz::ByteSpan data) {
  if (readers_ == 0) return SysErr(CRUZ_EPIPE);
  std::size_t space = WritableSpace();
  if (space == 0) return SysErr(CRUZ_EAGAIN);
  std::size_t n = std::min(space, data.size());
  buffer_.insert(buffer_.end(), data.begin(), data.begin() + n);
  return static_cast<SysResult>(n);
}

SysResult Pipe::Read(cruz::Bytes& out, std::size_t max) {
  if (buffer_.empty()) {
    return writers_ == 0 ? 0 : SysErr(CRUZ_EAGAIN);
  }
  std::size_t n = std::min(max, buffer_.size());
  out.insert(out.end(), buffer_.begin(),
             buffer_.begin() + static_cast<std::ptrdiff_t>(n));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(n));
  return static_cast<SysResult>(n);
}

}  // namespace cruz::os
