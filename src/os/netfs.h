// Shared network filesystem.
//
// Zap/Cruz do not checkpoint file-system state; they rely on "a
// network-accessible file system that is accessible from any machine on
// which the application may be restarted" (paper §2). This is that
// substrate: one NetworkFileSystem instance is shared by all nodes, so a
// checkpoint image written on one machine can be read during restart on
// another. I/O cost is charged by the caller through the per-node disk
// model (Node::DiskWriteDuration), keeping storage and timing concerns
// separate.
//
// The storage model itself lives in os::MemFileStore; NetworkFileSystem
// keeps the name (and the single-shared-instance role) while gaining the
// capacity budget and outage-window behavior the tiered checkpoint store
// builds on.
#pragma once

#include "os/file_store.h"

namespace cruz::os {

class NetworkFileSystem : public MemFileStore {
 public:
  NetworkFileSystem() : MemFileStore("netfs") {}
};

}  // namespace cruz::os
