// Shared network filesystem.
//
// Zap/Cruz do not checkpoint file-system state; they rely on "a
// network-accessible file system that is accessible from any machine on
// which the application may be restarted" (paper §2). This is that
// substrate: one NetworkFileSystem instance is shared by all nodes, so a
// checkpoint image written on one machine can be read during restart on
// another. I/O cost is charged by the caller through the per-node disk
// model (Node::DiskWriteDuration), keeping storage and timing concerns
// separate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/sysresult.h"

namespace cruz::os {

class NetworkFileSystem {
 public:
  bool Exists(const std::string& path) const {
    return files_.count(path) != 0;
  }

  // Creates or truncates.
  void WriteFile(const std::string& path, cruz::Bytes content);
  // Appends, creating if missing.
  void AppendFile(const std::string& path, cruz::ByteSpan content);
  // Returns -ENOENT if missing.
  SysResult ReadFile(const std::string& path, cruz::Bytes& out) const;
  // Reads [offset, offset+n) into out; short reads at EOF. -ENOENT if
  // missing.
  SysResult ReadAt(const std::string& path, std::uint64_t offset,
                   std::size_t n, cruz::Bytes& out) const;
  // Writes at offset, extending with zeros if needed. -ENOENT if missing
  // and `create` is false.
  SysResult WriteAt(const std::string& path, std::uint64_t offset,
                    cruz::ByteSpan data, bool create);
  SysResult Remove(const std::string& path);
  SysResult FileSize(const std::string& path) const;

  std::vector<std::string> List(const std::string& prefix) const;

  std::uint64_t TotalBytes() const;

 private:
  std::map<std::string, cruz::Bytes> files_;
};

}  // namespace cruz::os
