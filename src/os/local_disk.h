// Per-node local disk: tier 1 of the checkpoint storage hierarchy.
//
// Each Node owns one LocalDiskStore. It is a failure domain: when the
// node fails, its local disk contents are lost with it (Node::Fail
// clears it), which is exactly why the tiered store also replicates
// every image to a partner node and eventually to the shared netfs.
// Capacity defaults to unlimited; NodeConfig::local_disk_capacity_bytes
// arms the -ENOSPC path.
#pragma once

#include "os/file_store.h"

namespace cruz::os {

class LocalDiskStore : public MemFileStore {
 public:
  explicit LocalDiskStore(std::string node_name)
      : MemFileStore(std::move(node_name) + ":disk") {}
};

}  // namespace cruz::os
