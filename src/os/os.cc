#include "os/os.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "sim/simulator.h"

namespace cruz::os {

// Address where Spawn copies the argument blob (programs read their
// configuration from here; the blob is part of checkpointed memory).
constexpr std::uint64_t kArgsAddr = 0x1000;

Os::Os(sim::Simulator& sim, std::string node_name, NetworkStack* stack,
       NetworkFileSystem* fs)
    : sim_(sim), node_name_(std::move(node_name)), stack_(stack), fs_(fs) {
  if (stack_ != nullptr) {
    stack_->set_wake_fn(
        [this](std::vector<ThreadRef>& refs) { WakeThreads(refs); });
  }
}

// ---------------------------------------------------------------------------
// Process management
// ---------------------------------------------------------------------------

Pid Os::Spawn(const std::string& program, cruz::ByteSpan args, PodId pod,
              Pid ppid) {
  Pid pid = next_pid_++;
  auto proc = std::make_unique<Process>(pid, program);
  proc->set_ppid(ppid);
  proc->set_pod(pod);
  proc->set_program(ProgramRegistry::Instance().Create(program));
  if (!args.empty()) {
    proc->memory().WriteBytes(kArgsAddr, args);
  }
  Registers regs;
  regs.r[1] = kArgsAddr;
  regs.r[2] = args.size();
  Tid tid = proc->CreateThread(regs);
  Process* raw = proc.get();
  processes_.emplace(pid, std::move(proc));
  if (pod != kNoPod && interposer_ != nullptr) {
    interposer_->OnProcessCreated(pod, pid);
  }
  (void)raw;
  ScheduleStep(ThreadRef{pid, tid}, step_granularity_);
  CRUZ_DEBUG("os") << node_name_ << ": spawned pid " << pid << " ("
                   << program << ") pod " << pod;
  return pid;
}

Pid Os::InstallProcess(std::unique_ptr<Process> proc) {
  // Restore path: the engine builds the process around a fresh real pid
  // obtained from AllocatePid(); the pod layer maps the process's old
  // *virtual* pid onto it, which is how Zap restarts processes whose
  // former pids are already in use on this machine.
  Pid pid = proc->pid();
  CRUZ_CHECK(processes_.count(pid) == 0,
             "InstallProcess: pid already in use");
  processes_.emplace(pid, std::move(proc));
  if (pid >= next_pid_) next_pid_ = pid + 1;
  return pid;
}

void Os::StartProcessThreads(Pid pid) {
  Process* proc = FindProcess(pid);
  if (proc == nullptr) return;
  for (Thread& t : proc->threads()) {
    if (t.state == ThreadState::kBlocked) {
      // Restored threads resume runnable and re-enter their waits.
      t.state = ThreadState::kRunnable;
    }
    if (t.state == ThreadState::kRunnable && !t.step_scheduled &&
        proc->state() == ProcessState::kLive) {
      t.step_scheduled = true;
      ThreadRef ref{pid, t.tid};
      sim_.Schedule(step_granularity_, [this, ref] { RunStep(ref); });
    }
  }
}

Process* Os::FindProcess(Pid pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

std::vector<Pid> Os::PodProcesses(PodId pod) const {
  std::vector<Pid> out;
  for (const auto& [pid, proc] : processes_) {
    if (proc->pod() == pod) out.push_back(pid);
  }
  return out;
}

SysResult Os::Signal(Pid pid, int signal) {
  Process* proc = FindProcess(pid);
  if (proc == nullptr) return SysErr(CRUZ_ESRCH);
  switch (signal) {
    case kSigStop:
      if (proc->state() == ProcessState::kLive) {
        proc->set_state(ProcessState::kStopped);
      }
      return 0;
    case kSigCont:
      if (proc->state() == ProcessState::kStopped) {
        proc->set_state(ProcessState::kLive);
        for (Thread& t : proc->threads()) {
          if (t.state == ThreadState::kRunnable && !t.step_scheduled) {
            ScheduleStep(ThreadRef{pid, t.tid}, step_granularity_);
          }
        }
      }
      return 0;
    case kSigKill:
      DestroyProcess(pid, 128 + kSigKill);
      return 0;
    case kSigTerm:
      DestroyProcess(pid, 128 + kSigTerm);
      return 0;
    default:
      return SysErr(CRUZ_EINVAL);
  }
}

void Os::DestroyProcess(Pid pid, int exit_code) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) return;
  Process* proc = it->second.get();
  // Release all fds (closes pipe ends, tears down sockets).
  std::vector<Fd> fds;
  for (const auto& [fd, desc] : proc->fds()) fds.push_back(fd);
  for (Fd fd : fds) {
    std::shared_ptr<FileDescription> desc = proc->LookupFd(fd);
    proc->RemoveFd(fd);
    ReleaseFd(*proc, desc);
  }
  // Detach shm.
  for (const ShmAttachment& att : proc->shm_attachments()) {
    ShmSegment* seg = sysv_.FindShm(att.shm_id);
    if (seg != nullptr) --seg->attach_count;
  }
  PodId pod = proc->pod();
  if (pod != kNoPod && interposer_ != nullptr) {
    interposer_->OnProcessExited(pod, pid);
  }
  CRUZ_DEBUG("os") << node_name_ << ": pid " << pid << " exited ("
                   << exit_code << ")";
  // The hook runs while the (torn-down) process is still visible so
  // observers can read its final memory image.
  if (process_exit_hook_) process_exit_hook_(pid, exit_code);
  page_fault_handlers_.erase(pid);
  processes_.erase(pid);
}

bool Os::FillPage(Pid pid, std::uint64_t page_index, cruz::ByteSpan content) {
  Process* proc = FindProcess(pid);
  if (proc == nullptr) return false;
  if (!proc->memory().FillPage(page_index, content)) return false;
  if (proc->has_pending_fault() &&
      proc->pending_fault_page() == page_index) {
    Tid tid = proc->pending_fault_tid();
    proc->ClearPendingFault();
    MakeRunnable(ThreadRef{pid, tid});
    // Sibling threads were runnable but gated by the process-wide fault
    // stall; their step events may have fired and bailed, so rekick them.
    if (proc->state() == ProcessState::kLive) {
      for (Thread& t : proc->threads()) {
        if (t.state == ThreadState::kRunnable && !t.step_scheduled) {
          ScheduleStep(ThreadRef{pid, t.tid}, step_granularity_);
        }
      }
    }
  }
  return true;
}

void Os::ReleaseFd(Process& proc,
                   const std::shared_ptr<FileDescription>& desc) {
  if (desc == nullptr) return;
  switch (desc->kind) {
    case FileDescription::Kind::kPipeRead:
      desc->pipe->RemoveReader();
      WakeThreads(desc->pipe->write_waiters());  // writers see EPIPE
      WakeThreads(desc->pipe->read_waiters());
      break;
    case FileDescription::Kind::kPipeWrite:
      desc->pipe->RemoveWriter();
      WakeThreads(desc->pipe->read_waiters());  // readers see EOF
      break;
    case FileDescription::Kind::kTcpSocket:
      // Destroy the socket only when the last descriptor drops (dup).
      if (desc.use_count() <= 1 && stack_ != nullptr) {
        stack_->DestroyTcpSocket(desc->socket);
      }
      break;
    case FileDescription::Kind::kUdpSocket:
      if (desc.use_count() <= 1 && stack_ != nullptr) {
        stack_->DestroyUdpSocket(desc->socket);
      }
      break;
    case FileDescription::Kind::kFile:
      break;
  }
  (void)proc;
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

void Os::ScheduleStep(ThreadRef ref, DurationNs delay) {
  Process* proc = FindProcess(ref.pid);
  if (proc == nullptr) return;
  Thread* thread = proc->FindThread(ref.tid);
  if (thread == nullptr || thread->step_scheduled) return;
  thread->step_scheduled = true;
  sim_.Schedule(delay, [this, ref] { RunStep(ref); });
}

void Os::RunStep(ThreadRef ref) {
  Process* proc = FindProcess(ref.pid);
  if (proc == nullptr) return;
  Thread* thread = proc->FindThread(ref.tid);
  if (thread == nullptr) return;
  thread->step_scheduled = false;
  if (proc->state() != ProcessState::kLive ||
      thread->state != ThreadState::kRunnable) {
    return;
  }
  // Process-wide fault stall: while one thread is parked on a missing
  // page, no sibling thread runs, so the re-executed step observes
  // exactly the process state it saw before the fault. FillPage rekicks
  // the stalled siblings.
  if (proc->has_pending_fault()) return;
  CRUZ_CHECK(proc->program() != nullptr, "process without program code");
  // While the address space has missing pages a step may abort mid-flight
  // on a PageFault; the journal lets the re-execution replay the syscall
  // results its aborted prefix already consumed.
  if (proc->memory().HasMissingPages() && thread->journal == nullptr) {
    thread->journal = std::make_shared<StepJournal>();
  }
  ProcessCtx ctx(*this, *proc, *thread);
  pending_syscall_charge_ = 0;
  Registers entry_regs = thread->regs;
  try {
    proc->program()->Step(ctx);
  } catch (const PageFault& fault) {
    // Rewind to the step's entry state and park the whole process until
    // the page server delivers the page. The journal cursor resets so the
    // re-execution replays the prefix that already ran.
    thread->regs = entry_regs;
    thread->state = ThreadState::kBlocked;
    if (thread->journal == nullptr) {
      thread->journal = std::make_shared<StepJournal>();
    }
    thread->journal->cursor = 0;
    proc->SetPendingFault(ref.tid, fault.page_index);
    ++steps_executed_;
    auto handler = page_fault_handlers_.find(ref.pid);
    if (handler != page_fault_handlers_.end()) {
      handler->second(fault.page_index);
    }
    return;
  }
  // Clean completion: the step is committed, its journal is dead weight.
  thread->journal = nullptr;
  ++steps_executed_;

  if (proc->state() == ProcessState::kZombie) {
    DestroyProcess(ref.pid, proc->exit_code());
    return;
  }
  if (thread->state == ThreadState::kExited) {
    if (proc->AllThreadsExited()) {
      DestroyProcess(ref.pid, proc->exit_code());
    }
    return;
  }
  if (thread->state == ThreadState::kRunnable) {
    DurationNs cost = std::max(ctx.cpu_charge() + pending_syscall_charge_,
                               step_granularity_);
    ScheduleStep(ref, cost);
  }
}

void Os::MakeRunnable(ThreadRef ref) {
  Process* proc = FindProcess(ref.pid);
  if (proc == nullptr) return;
  Thread* thread = proc->FindThread(ref.tid);
  if (thread == nullptr || thread->state == ThreadState::kExited) return;
  thread->state = ThreadState::kRunnable;
  if (proc->state() == ProcessState::kLive) {
    ScheduleStep(ref, step_granularity_);
  }
  // Stopped processes keep the runnable mark; kSigCont reschedules.
}

void Os::WakeThreads(std::vector<ThreadRef>& refs) {
  std::vector<ThreadRef> local;
  local.swap(refs);  // callers' lists are one-shot
  for (const ThreadRef& ref : local) {
    MakeRunnable(ref);
  }
}

bool Os::Quiescent() const {
  for (const auto& [pid, proc] : processes_) {
    for (const Thread& t : proc->threads()) {
      if (t.state == ThreadState::kRunnable &&
          proc->state() == ProcessState::kLive) {
        return false;
      }
    }
  }
  return true;
}

void Os::ChargeSyscall(Process& proc) {
  ++syscall_count_;
  if (proc.pod() != kNoPod) {
    // Zap's interposition layer adds a small per-syscall cost; this is
    // what the <0.5% runtime overhead in §6 measures.
    pending_syscall_charge_ += interposition_cost_;
  }
}

// ---------------------------------------------------------------------------
// Blocking primitives
// ---------------------------------------------------------------------------

namespace {
void AddWaiter(std::vector<ThreadRef>& waiters, ThreadRef ref) {
  if (std::find(waiters.begin(), waiters.end(), ref) == waiters.end()) {
    waiters.push_back(ref);
  }
}
}  // namespace

void Os::BlockThreadOnFd(Process& proc, Thread& thread, Fd fd,
                         bool writable) {
  std::shared_ptr<FileDescription> desc = proc.LookupFd(fd);
  if (desc == nullptr) return;  // bad fd: stay runnable, program will see EBADF
  ThreadRef ref{proc.pid(), thread.tid};
  switch (desc->kind) {
    case FileDescription::Kind::kFile:
      return;  // regular files never block
    case FileDescription::Kind::kPipeRead:
      AddWaiter(desc->pipe->read_waiters(), ref);
      break;
    case FileDescription::Kind::kPipeWrite:
      AddWaiter(desc->pipe->write_waiters(), ref);
      break;
    case FileDescription::Kind::kTcpSocket: {
      TcpSocketObject* sock = stack_->FindTcp(desc->socket);
      if (sock == nullptr) return;
      if (sock->state == TcpSocketObject::State::kListening) {
        AddWaiter(sock->accept_waiters, ref);
      } else if (writable) {
        AddWaiter(sock->write_waiters, ref);
      } else {
        AddWaiter(sock->read_waiters, ref);
      }
      break;
    }
    case FileDescription::Kind::kUdpSocket: {
      UdpSocketObject* sock = stack_->FindUdp(desc->socket);
      if (sock == nullptr) return;
      AddWaiter(sock->read_waiters, ref);
      break;
    }
  }
  thread.state = ThreadState::kBlocked;
}

void Os::BlockThreadOnSem(Process& proc, Thread& thread, SemId sem) {
  Semaphore* s = sysv_.FindSem(RealSemId(proc, sem));
  if (s == nullptr) return;
  AddWaiter(s->waiters, ThreadRef{proc.pid(), thread.tid});
  thread.state = ThreadState::kBlocked;
}

void Os::SleepThread(Process& proc, Thread& thread, DurationNs d) {
  thread.state = ThreadState::kBlocked;
  ThreadRef ref{proc.pid(), thread.tid};
  sim_.Schedule(d, [this, ref] { MakeRunnable(ref); });
}

// ---------------------------------------------------------------------------
// Syscalls: process
// ---------------------------------------------------------------------------

SysResult Os::SysGetpid(Process& proc) {
  ChargeSyscall(proc);
  if (proc.pod() != kNoPod && interposer_ != nullptr) {
    return interposer_->ToVirtualPid(proc.pod(), proc.pid());
  }
  return proc.pid();
}

SysResult Os::SysSpawn(Process& proc, const std::string& program,
                       cruz::ByteSpan args) {
  ChargeSyscall(proc);
  if (!ProgramRegistry::Instance().Contains(program)) {
    return SysErr(CRUZ_ENOENT);
  }
  Pid child = Spawn(program, args, proc.pod(), proc.pid());
  if (proc.pod() != kNoPod && interposer_ != nullptr) {
    return interposer_->ToVirtualPid(proc.pod(), child);
  }
  return child;
}

SysResult Os::SysKill(Process& proc, Pid pid, int signal) {
  ChargeSyscall(proc);
  Pid real = pid;
  if (proc.pod() != kNoPod && interposer_ != nullptr) {
    real = interposer_->ToRealPid(proc.pod(), pid);
    if (real == kNoPid) return SysErr(CRUZ_ESRCH);
    // Pods cannot signal processes outside themselves.
    Process* target = FindProcess(real);
    if (target == nullptr || target->pod() != proc.pod()) {
      return SysErr(CRUZ_ESRCH);
    }
  }
  return Signal(real, signal);
}

// ---------------------------------------------------------------------------
// Syscalls: files, pipes
// ---------------------------------------------------------------------------

SysResult Os::SysOpen(Process& proc, const std::string& path, bool create) {
  ChargeSyscall(proc);
  if (!fs_->Exists(path)) {
    if (!create) return SysErr(CRUZ_ENOENT);
    fs_->WriteFile(path, {});
  }
  auto desc = std::make_shared<FileDescription>();
  desc->kind = FileDescription::Kind::kFile;
  desc->path = path;
  return proc.AllocateFd(std::move(desc));
}

SysResult Os::SysRead(Process& proc, Fd fd, cruz::Bytes& out,
                      std::size_t max) {
  ChargeSyscall(proc);
  std::shared_ptr<FileDescription> desc = proc.LookupFd(fd);
  if (desc == nullptr) return SysErr(CRUZ_EBADF);
  switch (desc->kind) {
    case FileDescription::Kind::kFile: {
      SysResult r = fs_->ReadAt(desc->path, desc->offset, max, out);
      if (SysOk(r)) desc->offset += static_cast<std::uint64_t>(r);
      return r;
    }
    case FileDescription::Kind::kPipeRead: {
      SysResult r = desc->pipe->Read(out, max);
      if (SysOk(r) && r > 0) WakeThreads(desc->pipe->write_waiters());
      return r;
    }
    case FileDescription::Kind::kPipeWrite:
      return SysErr(CRUZ_EBADF);
    case FileDescription::Kind::kTcpSocket:
      return SysRecvTcp(proc, fd, out, max, false);
    case FileDescription::Kind::kUdpSocket:
      return SysErr(CRUZ_EOPNOTSUPP);  // use RecvFromUdp
  }
  return SysErr(CRUZ_EINVAL);
}

SysResult Os::SysWrite(Process& proc, Fd fd, cruz::ByteSpan data) {
  ChargeSyscall(proc);
  std::shared_ptr<FileDescription> desc = proc.LookupFd(fd);
  if (desc == nullptr) return SysErr(CRUZ_EBADF);
  switch (desc->kind) {
    case FileDescription::Kind::kFile: {
      SysResult r = fs_->WriteAt(desc->path, desc->offset, data, true);
      if (SysOk(r)) desc->offset += static_cast<std::uint64_t>(r);
      return r;
    }
    case FileDescription::Kind::kPipeWrite: {
      SysResult r = desc->pipe->Write(data);
      if (SysOk(r) && r > 0) WakeThreads(desc->pipe->read_waiters());
      return r;
    }
    case FileDescription::Kind::kPipeRead:
      return SysErr(CRUZ_EBADF);
    case FileDescription::Kind::kTcpSocket:
      return SysSendTcp(proc, fd, data);
    case FileDescription::Kind::kUdpSocket:
      return SysErr(CRUZ_EDESTADDRREQ);
  }
  return SysErr(CRUZ_EINVAL);
}

SysResult Os::SysClose(Process& proc, Fd fd) {
  ChargeSyscall(proc);
  std::shared_ptr<FileDescription> desc = proc.LookupFd(fd);
  if (desc == nullptr) return SysErr(CRUZ_EBADF);
  proc.RemoveFd(fd);
  ReleaseFd(proc, desc);
  return 0;
}

SysResult Os::SysDup(Process& proc, Fd fd) {
  ChargeSyscall(proc);
  std::shared_ptr<FileDescription> desc = proc.LookupFd(fd);
  if (desc == nullptr) return SysErr(CRUZ_EBADF);
  if (desc->kind == FileDescription::Kind::kPipeRead) {
    desc->pipe->AddReader();
  } else if (desc->kind == FileDescription::Kind::kPipeWrite) {
    desc->pipe->AddWriter();
  }
  return proc.AllocateFd(desc);
}

SysResult Os::SysPipe(Process& proc, Fd* read_end, Fd* write_end) {
  ChargeSyscall(proc);
  auto pipe = std::make_shared<Pipe>(next_pipe_id_++);
  pipe->AddReader();
  pipe->AddWriter();
  auto rd = std::make_shared<FileDescription>();
  rd->kind = FileDescription::Kind::kPipeRead;
  rd->pipe = pipe;
  auto wr = std::make_shared<FileDescription>();
  wr->kind = FileDescription::Kind::kPipeWrite;
  wr->pipe = pipe;
  *read_end = proc.AllocateFd(std::move(rd));
  *write_end = proc.AllocateFd(std::move(wr));
  return 0;
}

// ---------------------------------------------------------------------------
// Syscalls: sockets
// ---------------------------------------------------------------------------

TcpSocketObject* Os::TcpFromFd(Process& proc, Fd fd,
                               std::shared_ptr<FileDescription>* desc_out) {
  std::shared_ptr<FileDescription> desc = proc.LookupFd(fd);
  if (desc == nullptr || desc->kind != FileDescription::Kind::kTcpSocket) {
    return nullptr;
  }
  if (desc_out != nullptr) *desc_out = desc;
  return stack_->FindTcp(desc->socket);
}

SysResult Os::SysSocketTcp(Process& proc) {
  ChargeSyscall(proc);
  auto desc = std::make_shared<FileDescription>();
  desc->kind = FileDescription::Kind::kTcpSocket;
  desc->socket = stack_->CreateTcpSocket();
  return proc.AllocateFd(std::move(desc));
}

SysResult Os::SysSocketUdp(Process& proc) {
  ChargeSyscall(proc);
  auto desc = std::make_shared<FileDescription>();
  desc->kind = FileDescription::Kind::kUdpSocket;
  desc->socket = stack_->CreateUdpSocket();
  return proc.AllocateFd(std::move(desc));
}

SysResult Os::SysBind(Process& proc, Fd fd, net::Endpoint local) {
  ChargeSyscall(proc);
  std::shared_ptr<FileDescription> desc = proc.LookupFd(fd);
  if (desc == nullptr || !desc->IsSocket()) return SysErr(CRUZ_ENOTSOCK);
  // Zap's bind wrapper: a process inside a pod can only bind the pod's
  // address — the wrapper replaces whatever address was requested with
  // the pod VIF's IP (paper §4.2).
  if (proc.pod() != kNoPod && interposer_ != nullptr) {
    local.ip = interposer_->PodAddress(proc.pod());
  }
  if (desc->kind == FileDescription::Kind::kTcpSocket) {
    return stack_->TcpBind(desc->socket, local);
  }
  return stack_->UdpBind(desc->socket, local);
}

SysResult Os::SysListen(Process& proc, Fd fd, int backlog) {
  ChargeSyscall(proc);
  std::shared_ptr<FileDescription> desc;
  TcpSocketObject* sock = TcpFromFd(proc, fd, &desc);
  if (sock == nullptr) return SysErr(CRUZ_ENOTSOCK);
  return stack_->TcpListen(desc->socket, backlog);
}

SysResult Os::SysAccept(Process& proc, Fd fd) {
  ChargeSyscall(proc);
  std::shared_ptr<FileDescription> desc;
  TcpSocketObject* sock = TcpFromFd(proc, fd, &desc);
  if (sock == nullptr) return SysErr(CRUZ_ENOTSOCK);
  SocketId child = 0;
  SysResult r = stack_->TcpAccept(desc->socket, &child);
  if (!SysOk(r)) return r;
  auto child_desc = std::make_shared<FileDescription>();
  child_desc->kind = FileDescription::Kind::kTcpSocket;
  child_desc->socket = child;
  return proc.AllocateFd(std::move(child_desc));
}

SysResult Os::SysConnect(Process& proc, Fd fd, net::Endpoint remote) {
  ChargeSyscall(proc);
  std::shared_ptr<FileDescription> desc;
  TcpSocketObject* sock = TcpFromFd(proc, fd, &desc);
  if (sock == nullptr) return SysErr(CRUZ_ENOTSOCK);
  if (sock->state == TcpSocketObject::State::kConnected) return 0;
  if (sock->state == TcpSocketObject::State::kError) {
    return SysErr(sock->error);
  }
  if (sock->state == TcpSocketObject::State::kFresh) {
    // Zap's connect wrapper performs the implicit bind to the pod's VIF
    // address (outside a pod: to the node's primary address).
    net::Endpoint local{};
    if (proc.pod() != kNoPod && interposer_ != nullptr) {
      local.ip = interposer_->PodAddress(proc.pod());
    } else if (!stack_->interfaces().empty()) {
      local.ip = stack_->interfaces().front().ip;
    }
    SysResult r = stack_->TcpBind(desc->socket, local);
    if (!SysOk(r)) return r;
  }
  return stack_->TcpConnect(desc->socket, remote);
}

SysResult Os::SysSendTcp(Process& proc, Fd fd, cruz::ByteSpan data) {
  ChargeSyscall(proc);
  TcpSocketObject* sock = TcpFromFd(proc, fd, nullptr);
  if (sock == nullptr) return SysErr(CRUZ_ENOTSOCK);
  if (sock->state == TcpSocketObject::State::kError) {
    return SysErr(sock->error);
  }
  if (sock->conn == nullptr) return SysErr(CRUZ_ENOTCONN);
  return sock->conn->Send(data);
}

SysResult Os::SysRecvTcp(Process& proc, Fd fd, cruz::Bytes& out,
                         std::size_t max, bool peek) {
  ChargeSyscall(proc);
  TcpSocketObject* sock = TcpFromFd(proc, fd, nullptr);
  if (sock == nullptr) return SysErr(CRUZ_ENOTSOCK);
  // Zap's intercepted receive: data restored into the alternate buffer is
  // delivered before anything from the TCP receive path (paper §4.1).
  if (!sock->alt_recv.empty()) {
    std::size_t n = std::min(max, sock->alt_recv.size());
    out.insert(out.end(), sock->alt_recv.begin(),
               sock->alt_recv.begin() + static_cast<std::ptrdiff_t>(n));
    if (!peek) {
      sock->alt_recv.erase(
          sock->alt_recv.begin(),
          sock->alt_recv.begin() + static_cast<std::ptrdiff_t>(n));
    }
    return static_cast<SysResult>(n);
  }
  if (sock->conn == nullptr) {
    return sock->state == TcpSocketObject::State::kError
               ? SysErr(sock->error)
               : SysErr(CRUZ_ENOTCONN);
  }
  return sock->conn->Receive(out, max, peek);
}

SysResult Os::SysSendToUdp(Process& proc, Fd fd, net::Endpoint remote,
                           cruz::ByteSpan data) {
  ChargeSyscall(proc);
  std::shared_ptr<FileDescription> desc = proc.LookupFd(fd);
  if (desc == nullptr || desc->kind != FileDescription::Kind::kUdpSocket) {
    return SysErr(CRUZ_ENOTSOCK);
  }
  UdpSocketObject* sock = stack_->FindUdp(desc->socket);
  if (sock == nullptr) return SysErr(CRUZ_EBADF);
  if (sock->local.port == 0 && proc.pod() != kNoPod &&
      interposer_ != nullptr) {
    // Implicit bind to the pod address for in-pod senders.
    SysResult r = stack_->UdpBind(
        desc->socket,
        net::Endpoint{interposer_->PodAddress(proc.pod()), 0});
    if (!SysOk(r)) return r;
  }
  return stack_->UdpSendTo(desc->socket, remote, data);
}

SysResult Os::SysRecvFromUdp(Process& proc, Fd fd, cruz::Bytes& out,
                             net::Endpoint* from) {
  ChargeSyscall(proc);
  std::shared_ptr<FileDescription> desc = proc.LookupFd(fd);
  if (desc == nullptr || desc->kind != FileDescription::Kind::kUdpSocket) {
    return SysErr(CRUZ_ENOTSOCK);
  }
  UdpSocketObject* sock = stack_->FindUdp(desc->socket);
  if (sock == nullptr) return SysErr(CRUZ_EBADF);
  if (sock->rx.empty()) return SysErr(CRUZ_EAGAIN);
  auto& [src, payload] = sock->rx.front();
  if (from != nullptr) *from = src;
  out.insert(out.end(), payload.begin(), payload.end());
  SysResult n = static_cast<SysResult>(payload.size());
  sock->rx.pop_front();
  return n;
}

SysResult Os::SysSetNodelay(Process& proc, Fd fd, bool on) {
  ChargeSyscall(proc);
  TcpSocketObject* sock = TcpFromFd(proc, fd, nullptr);
  if (sock == nullptr) return SysErr(CRUZ_ENOTSOCK);
  if (sock->conn == nullptr) return SysErr(CRUZ_ENOTCONN);
  sock->conn->SetNagle(!on);
  return 0;
}

SysResult Os::SysSetCork(Process& proc, Fd fd, bool on) {
  ChargeSyscall(proc);
  TcpSocketObject* sock = TcpFromFd(proc, fd, nullptr);
  if (sock == nullptr) return SysErr(CRUZ_ENOTSOCK);
  if (sock->conn == nullptr) return SysErr(CRUZ_ENOTCONN);
  sock->conn->SetCork(on);
  return 0;
}

SysResult Os::SysShutdownTcp(Process& proc, Fd fd) {
  ChargeSyscall(proc);
  TcpSocketObject* sock = TcpFromFd(proc, fd, nullptr);
  if (sock == nullptr) return SysErr(CRUZ_ENOTSOCK);
  if (sock->conn == nullptr) return SysErr(CRUZ_ENOTCONN);
  sock->conn->Close();
  return 0;
}

SysResult Os::SysGetIfHwAddr(Process& proc, const std::string& ifname,
                             net::MacAddress* mac) {
  ChargeSyscall(proc);
  // Zap intercepts SIOCGIFHWADDR for pods and returns the fake MAC, so a
  // DHCP client keeps its lease identity across migration (paper §4.2).
  if (proc.pod() != kNoPod && interposer_ != nullptr) {
    std::optional<net::MacAddress> fake = interposer_->FakeMac(proc.pod());
    if (fake.has_value()) {
      *mac = *fake;
      return 0;
    }
  }
  const Interface* iface = stack_->FindInterfaceByName(ifname);
  if (iface == nullptr) return SysErr(CRUZ_ENODEV);
  *mac = iface->mac;
  return 0;
}

SysResult Os::SysGetIfAddr(Process& proc, const std::string& ifname,
                           net::Ipv4Address* ip) {
  ChargeSyscall(proc);
  if (proc.pod() != kNoPod && interposer_ != nullptr) {
    *ip = interposer_->PodAddress(proc.pod());
    return 0;
  }
  const Interface* iface = stack_->FindInterfaceByName(ifname);
  if (iface == nullptr) return SysErr(CRUZ_ENODEV);
  *ip = iface->ip;
  return 0;
}

// ---------------------------------------------------------------------------
// Syscalls: SysV IPC
// ---------------------------------------------------------------------------

SysResult Os::SysShmGet(Process& proc, std::int32_t key, std::size_t size) {
  ChargeSyscall(proc);
  if (proc.pod() == kNoPod || interposer_ == nullptr) {
    return sysv_.ShmGet(key, size, /*create=*/true);
  }
  std::int32_t k = interposer_->VirtualizeIpcKey(proc.pod(), key);
  SysResult real = sysv_.ShmGet(k, size, /*create=*/true);
  if (!SysOk(real)) return real;
  return interposer_->ShmIdToVirtual(proc.pod(), static_cast<ShmId>(real));
}

ShmId Os::RealShmId(Process& proc, ShmId id) {
  if (proc.pod() == kNoPod || interposer_ == nullptr) return id;
  return interposer_->ShmIdToReal(proc.pod(), id);
}

SemId Os::RealSemId(Process& proc, SemId id) {
  if (proc.pod() == kNoPod || interposer_ == nullptr) return id;
  return interposer_->SemIdToReal(proc.pod(), id);
}

SysResult Os::SysShmAt(Process& proc, ShmId id, std::uint64_t addr) {
  ChargeSyscall(proc);
  id = RealShmId(proc, id);
  ShmSegment* seg = sysv_.FindShm(id);
  if (seg == nullptr) return SysErr(CRUZ_EINVAL);
  ++seg->attach_count;
  proc.shm_attachments().push_back(ShmAttachment{id, addr});
  return 0;
}

SysResult Os::SysShmReadU64(Process& proc, ShmId id, std::uint64_t offset) {
  ChargeSyscall(proc);
  id = RealShmId(proc, id);
  ShmSegment* seg = sysv_.FindShm(id);
  if (seg == nullptr || offset + 8 > seg->data.size()) {
    return SysErr(CRUZ_EFAULT);
  }
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | seg->data[offset + static_cast<std::uint64_t>(i)];
  }
  return static_cast<SysResult>(v);
}

SysResult Os::SysShmWriteU64(Process& proc, ShmId id, std::uint64_t offset,
                             std::uint64_t v) {
  ChargeSyscall(proc);
  id = RealShmId(proc, id);
  ShmSegment* seg = sysv_.FindShm(id);
  if (seg == nullptr || offset + 8 > seg->data.size()) {
    return SysErr(CRUZ_EFAULT);
  }
  for (int i = 0; i < 8; ++i) {
    seg->data[offset + static_cast<std::uint64_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
  return 0;
}

SysResult Os::SysSemGet(Process& proc, std::int32_t key,
                        std::int32_t initial) {
  ChargeSyscall(proc);
  if (proc.pod() == kNoPod || interposer_ == nullptr) {
    return sysv_.SemGet(key, initial, /*create=*/true);
  }
  std::int32_t k = interposer_->VirtualizeIpcKey(proc.pod(), key);
  SysResult real = sysv_.SemGet(k, initial, /*create=*/true);
  if (!SysOk(real)) return real;
  return interposer_->SemIdToVirtual(proc.pod(), static_cast<SemId>(real));
}

SysResult Os::SysSemOp(Process& proc, SemId id, std::int32_t delta) {
  ChargeSyscall(proc);
  id = RealSemId(proc, id);
  Semaphore* sem = sysv_.FindSem(id);
  if (sem == nullptr) return SysErr(CRUZ_EINVAL);
  if (delta >= 0) {
    sem->value += delta;
    if (delta > 0) WakeThreads(sem->waiters);
    return 0;
  }
  if (sem->value + delta < 0) return SysErr(CRUZ_EAGAIN);
  sem->value += delta;
  return 0;
}

void Os::ReportOpLatency(std::uint64_t conn, TimeNs intended) {
  TimeNs now = sim_.Now();
  std::uint64_t latency = now >= intended ? now - intended : 0;
  if (sim_.tracer().VerboseSample()) {
    sim_.tracer().Instant("kv", "kv.op",
                          obs::TraceAttrs{}
                              .Agent(node_name_)
                              .Arg("conn", conn)
                              .Arg("intended_ns", intended)
                              .Arg("latency_ns", latency));
  }
  if (op_latency_sink_) op_latency_sink_(conn, intended, now);
}

// ---------------------------------------------------------------------------
// ProcessCtx forwarding
// ---------------------------------------------------------------------------

TimeNs ProcessCtx::Now() const { return os_.sim().Now(); }

void ProcessCtx::BlockOnReadable(Fd fd) {
  parked_ = true;
  os_.BlockThreadOnFd(proc_, thread_, fd, /*writable=*/false);
}
void ProcessCtx::BlockOnWritable(Fd fd) {
  parked_ = true;
  os_.BlockThreadOnFd(proc_, thread_, fd, /*writable=*/true);
}
void ProcessCtx::BlockOnSem(SemId sem) {
  parked_ = true;
  os_.BlockThreadOnSem(proc_, thread_, sem);
}
void ProcessCtx::Sleep(DurationNs d) {
  parked_ = true;
  os_.SleepThread(proc_, thread_, d);
}
void ProcessCtx::ExitProcess(int code) {
  proc_.set_exit_code(code);
  proc_.set_state(ProcessState::kZombie);
  for (Thread& t : proc_.threads()) t.state = ThreadState::kExited;
}
void ProcessCtx::ExitThread() { thread_.state = ThreadState::kExited; }

void ProcessCtx::ReportOpLatency(std::uint64_t conn, TimeNs intended) {
  // During post-fault re-execution the original run already reported
  // this completion; replaying it would double-count the sample.
  if (ReplayActive()) return;
  os_.ReportOpLatency(conn, intended);
}

// Every wrapper below goes through the step journal (see Intercept /
// ReplayActive in program.h): during a post-fault re-execution the
// recorded result is returned without re-performing the side effect,
// which already happened in the aborted prefix. Park calls (BlockOn*,
// Sleep) are deliberately NOT journaled — AddWaiter dedups and the
// poll-retry program structure tolerates spurious wakeups.

SysResult ProcessCtx::Getpid() {
  return Intercept([&] { return os_.SysGetpid(proc_); });
}
SysResult ProcessCtx::Spawn(const std::string& program, cruz::ByteSpan args) {
  return Intercept([&] { return os_.SysSpawn(proc_, program, args); });
}
SysResult ProcessCtx::SpawnThread(std::uint64_t pc, std::uint64_t arg) {
  if (ReplayActive()) return ReplayNext().result;
  Registers regs;
  regs.r[0] = pc;
  regs.r[1] = arg;
  Tid tid = proc_.CreateThread(regs);
  os_.MakeRunnable(ThreadRef{proc_.pid(), tid});
  if (Recording()) Record(tid);
  return tid;
}
SysResult ProcessCtx::Kill(Pid pid, int signal) {
  return Intercept([&] { return os_.SysKill(proc_, pid, signal); });
}
SysResult ProcessCtx::Open(const std::string& path, bool create) {
  return Intercept([&] { return os_.SysOpen(proc_, path, create); });
}
SysResult ProcessCtx::Read(Fd fd, cruz::Bytes& out, std::size_t max) {
  if (ReplayActive()) {
    const SysRecord& rec = ReplayNext();
    out.insert(out.end(), rec.out.begin(), rec.out.end());
    return rec.result;
  }
  std::size_t before = out.size();
  SysResult r = os_.SysRead(proc_, fd, out, max);
  if (Recording()) {
    Record(r).out.assign(out.begin() + static_cast<std::ptrdiff_t>(before),
                         out.end());
  }
  return r;
}
SysResult ProcessCtx::Write(Fd fd, cruz::ByteSpan data) {
  return Intercept([&] { return os_.SysWrite(proc_, fd, data); });
}
SysResult ProcessCtx::Close(Fd fd) {
  return Intercept([&] { return os_.SysClose(proc_, fd); });
}
SysResult ProcessCtx::Dup(Fd fd) {
  return Intercept([&] { return os_.SysDup(proc_, fd); });
}
SysResult ProcessCtx::MakePipe(Fd* read_end, Fd* write_end) {
  if (ReplayActive()) {
    const SysRecord& rec = ReplayNext();
    *read_end = static_cast<Fd>(rec.a);
    *write_end = static_cast<Fd>(rec.b);
    return rec.result;
  }
  SysResult r = os_.SysPipe(proc_, read_end, write_end);
  if (Recording()) {
    SysRecord& rec = Record(r);
    rec.a = static_cast<std::uint64_t>(*read_end);
    rec.b = static_cast<std::uint64_t>(*write_end);
  }
  return r;
}
SysResult ProcessCtx::SocketTcp() {
  return Intercept([&] { return os_.SysSocketTcp(proc_); });
}
SysResult ProcessCtx::SocketUdp() {
  return Intercept([&] { return os_.SysSocketUdp(proc_); });
}
SysResult ProcessCtx::Bind(Fd fd, net::Endpoint local) {
  return Intercept([&] { return os_.SysBind(proc_, fd, local); });
}
SysResult ProcessCtx::Listen(Fd fd, int backlog) {
  return Intercept([&] { return os_.SysListen(proc_, fd, backlog); });
}
SysResult ProcessCtx::Accept(Fd fd) {
  return Intercept([&] { return os_.SysAccept(proc_, fd); });
}
SysResult ProcessCtx::Connect(Fd fd, net::Endpoint remote) {
  return Intercept([&] { return os_.SysConnect(proc_, fd, remote); });
}
SysResult ProcessCtx::SendTcp(Fd fd, cruz::ByteSpan data) {
  return Intercept([&] { return os_.SysSendTcp(proc_, fd, data); });
}
SysResult ProcessCtx::RecvTcp(Fd fd, cruz::Bytes& out, std::size_t max,
                              bool peek) {
  if (ReplayActive()) {
    const SysRecord& rec = ReplayNext();
    out.insert(out.end(), rec.out.begin(), rec.out.end());
    return rec.result;
  }
  std::size_t before = out.size();
  SysResult r = os_.SysRecvTcp(proc_, fd, out, max, peek);
  if (Recording()) {
    Record(r).out.assign(out.begin() + static_cast<std::ptrdiff_t>(before),
                         out.end());
  }
  return r;
}
SysResult ProcessCtx::SendToUdp(Fd fd, net::Endpoint remote,
                                cruz::ByteSpan data) {
  return Intercept([&] { return os_.SysSendToUdp(proc_, fd, remote, data); });
}
SysResult ProcessCtx::RecvFromUdp(Fd fd, cruz::Bytes& out,
                                  net::Endpoint* from) {
  if (ReplayActive()) {
    const SysRecord& rec = ReplayNext();
    out.insert(out.end(), rec.out.begin(), rec.out.end());
    if (from != nullptr) *from = rec.from;
    return rec.result;
  }
  std::size_t before = out.size();
  net::Endpoint src{};
  SysResult r = os_.SysRecvFromUdp(proc_, fd, out, &src);
  if (from != nullptr) *from = src;
  if (Recording()) {
    SysRecord& rec = Record(r);
    rec.out.assign(out.begin() + static_cast<std::ptrdiff_t>(before),
                   out.end());
    rec.from = src;
  }
  return r;
}
SysResult ProcessCtx::SetNodelay(Fd fd, bool on) {
  return Intercept([&] { return os_.SysSetNodelay(proc_, fd, on); });
}
SysResult ProcessCtx::SetCork(Fd fd, bool on) {
  return Intercept([&] { return os_.SysSetCork(proc_, fd, on); });
}
SysResult ProcessCtx::ShutdownTcp(Fd fd) {
  return Intercept([&] { return os_.SysShutdownTcp(proc_, fd); });
}
SysResult ProcessCtx::GetIfHwAddr(const std::string& ifname,
                                  net::MacAddress* mac) {
  if (ReplayActive()) {
    const SysRecord& rec = ReplayNext();
    for (int i = 0; i < 6; ++i) {
      mac->octets[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(rec.a >> (8 * i));
    }
    return rec.result;
  }
  SysResult r = os_.SysGetIfHwAddr(proc_, ifname, mac);
  if (Recording()) {
    std::uint64_t packed = 0;
    for (int i = 5; i >= 0; --i) {
      packed = (packed << 8) | mac->octets[static_cast<std::size_t>(i)];
    }
    Record(r).a = packed;
  }
  return r;
}
SysResult ProcessCtx::GetIfAddr(const std::string& ifname,
                                net::Ipv4Address* ip) {
  if (ReplayActive()) {
    const SysRecord& rec = ReplayNext();
    ip->value = static_cast<std::uint32_t>(rec.a);
    return rec.result;
  }
  SysResult r = os_.SysGetIfAddr(proc_, ifname, ip);
  if (Recording()) Record(r).a = ip->value;
  return r;
}
SysResult ProcessCtx::ShmGet(std::int32_t key, std::size_t size) {
  return Intercept([&] { return os_.SysShmGet(proc_, key, size); });
}
SysResult ProcessCtx::ShmAt(ShmId id, std::uint64_t addr) {
  return Intercept([&] { return os_.SysShmAt(proc_, id, addr); });
}
SysResult ProcessCtx::ShmReadU64(ShmId id, std::uint64_t offset) {
  return Intercept([&] { return os_.SysShmReadU64(proc_, id, offset); });
}
SysResult ProcessCtx::ShmWriteU64(ShmId id, std::uint64_t offset,
                                  std::uint64_t v) {
  return Intercept([&] { return os_.SysShmWriteU64(proc_, id, offset, v); });
}
SysResult ProcessCtx::SemGet(std::int32_t key, std::int32_t initial) {
  return Intercept([&] { return os_.SysSemGet(proc_, key, initial); });
}
SysResult ProcessCtx::SemOp(SemId id, std::int32_t delta) {
  return Intercept([&] { return os_.SysSemOp(proc_, id, delta); });
}

// ---------------------------------------------------------------------------
// ProgramRegistry
// ---------------------------------------------------------------------------

ProgramRegistry& ProgramRegistry::Instance() {
  static ProgramRegistry registry;
  return registry;
}

void ProgramRegistry::Register(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<Program> ProgramRegistry::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw UsageError("unknown program: " + name);
  }
  return it->second();
}

bool ProgramRegistry::Contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

}  // namespace cruz::os
