#include "os/process.h"

#include "common/error.h"
#include "os/program.h"

namespace cruz::os {

Process::Process(Pid pid, std::string program_name)
    : pid_(pid), program_name_(std::move(program_name)) {}

Process::~Process() = default;

void Process::set_program(std::unique_ptr<Program> p) {
  program_ = std::move(p);
}

Thread* Process::FindThread(Tid tid) {
  for (Thread& t : threads_) {
    if (t.tid == tid) return &t;
  }
  return nullptr;
}

Tid Process::CreateThread(Registers regs) {
  Thread t;
  t.tid = next_tid_++;
  t.regs = regs;
  threads_.push_back(t);
  return t.tid;
}

void Process::InstallThread(Tid tid, Registers regs) {
  CRUZ_CHECK(FindThread(tid) == nullptr, "InstallThread: duplicate tid");
  Thread t;
  t.tid = tid;
  t.regs = regs;
  threads_.push_back(t);
  if (tid >= next_tid_) next_tid_ = tid + 1;
}

bool Process::AllThreadsExited() const {
  for (const Thread& t : threads_) {
    if (t.state != ThreadState::kExited) return false;
  }
  return true;
}

Fd Process::AllocateFd(std::shared_ptr<FileDescription> desc) {
  Fd fd = next_fd_++;
  fds_[fd] = std::move(desc);
  return fd;
}

void Process::InstallFd(Fd fd, std::shared_ptr<FileDescription> desc) {
  fds_[fd] = std::move(desc);
  if (fd >= next_fd_) next_fd_ = fd + 1;
}

std::shared_ptr<FileDescription> Process::LookupFd(Fd fd) const {
  auto it = fds_.find(fd);
  return it == fds_.end() ? nullptr : it->second;
}

SysResult Process::RemoveFd(Fd fd) {
  return fds_.erase(fd) != 0 ? 0 : SysErr(CRUZ_EBADF);
}

}  // namespace cruz::os
