#include "os/memory.h"

#include <algorithm>
#include <bit>

#include "common/error.h"

namespace cruz::os {

void Memory::MarkDirty(std::uint64_t page_index) {
  std::uint64_t& word = dirty_words_[page_index >> 6];
  std::uint64_t bit = 1ull << (page_index & 63);
  if ((word & bit) == 0) {
    word |= bit;
    dirty_cache_valid_ = false;
  }
}

const std::set<std::uint64_t>& Memory::dirty_pages() const {
  if (!dirty_cache_valid_) {
    dirty_cache_.clear();
    for (const auto& [word_index, word] : dirty_words_) {
      std::uint64_t bits = word;
      while (bits != 0) {
        int bit = std::countr_zero(bits);
        dirty_cache_.insert((word_index << 6) | static_cast<unsigned>(bit));
        bits &= bits - 1;
      }
    }
    dirty_cache_valid_ = true;
  }
  return dirty_cache_;
}

Memory::Page& Memory::PageForWrite(std::uint64_t page_index) {
  if (!missing_.empty() && missing_.count(page_index) != 0) {
    throw PageFault{page_index};
  }
  MarkDirty(page_index);
  auto it = pages_.find(page_index);
  if (it == pages_.end()) {
    it = pages_.emplace(page_index, std::make_shared<Page>(kPageSize, 0))
             .first;
  } else if (it->second.use_count() > 1) {
    // The page is shared with at least one snapshot: copy before the
    // write so the snapshot's view stays frozen (COW fault).
    it->second = std::make_shared<Page>(*it->second);
    ++cow_faults_;
  }
  return *it->second;
}

const Memory::Page* Memory::PageForRead(std::uint64_t page_index) const {
  if (!missing_.empty() && missing_.count(page_index) != 0) {
    throw PageFault{page_index};
  }
  auto it = pages_.find(page_index);
  return it == pages_.end() ? nullptr : it->second.get();
}

void Memory::WriteBytes(std::uint64_t addr, cruz::ByteSpan data) {
  std::size_t done = 0;
  while (done < data.size()) {
    std::uint64_t a = addr + done;
    std::uint64_t page_index = a >> kPageShift;
    std::size_t offset = static_cast<std::size_t>(a & (kPageSize - 1));
    std::size_t n = std::min(data.size() - done, kPageSize - offset);
    Page& page = PageForWrite(page_index);
    std::memcpy(page.data() + offset, data.data() + done, n);
    done += n;
  }
}

void Memory::ReadBytes(std::uint64_t addr, std::uint8_t* out,
                       std::size_t n) const {
  std::size_t done = 0;
  while (done < n) {
    std::uint64_t a = addr + done;
    std::uint64_t page_index = a >> kPageShift;
    std::size_t offset = static_cast<std::size_t>(a & (kPageSize - 1));
    std::size_t take = std::min(n - done, kPageSize - offset);
    const Page* page = PageForRead(page_index);
    if (page != nullptr) {
      std::memcpy(out + done, page->data() + offset, take);
    } else {
      std::memset(out + done, 0, take);
    }
    done += take;
  }
}

cruz::Bytes Memory::ReadBytes(std::uint64_t addr, std::size_t n) const {
  cruz::Bytes out(n);
  ReadBytes(addr, out.data(), n);
  return out;
}

void Memory::WriteU64(std::uint64_t addr, std::uint64_t v) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  WriteBytes(addr, cruz::ByteSpan(buf, 8));
}

std::uint64_t Memory::ReadU64(std::uint64_t addr) const {
  std::uint8_t buf[8];
  ReadBytes(addr, buf, 8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | buf[i];
  }
  return v;
}

void Memory::WriteF64(std::uint64_t addr, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  WriteU64(addr, bits);
}

double Memory::ReadF64(std::uint64_t addr) const {
  std::uint64_t bits = ReadU64(addr);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

void Memory::InstallPage(std::uint64_t page_index, cruz::ByteSpan content) {
  CRUZ_CHECK(content.size() == kPageSize, "InstallPage: wrong size");
  pages_[page_index] =
      std::make_shared<Page>(content.begin(), content.end());
  MarkDirty(page_index);
}

void Memory::MarkMissing(std::uint64_t page_index) {
  CRUZ_CHECK(pages_.find(page_index) == pages_.end(),
             "MarkMissing: page is resident");
  missing_.insert(page_index);
}

bool Memory::FillPage(std::uint64_t page_index, cruz::ByteSpan content) {
  if (missing_.erase(page_index) == 0) return false;
  InstallPage(page_index, content);
  return true;
}

void Memory::DropZeroPages() {
  for (auto it = pages_.begin(); it != pages_.end();) {
    bool all_zero =
        std::all_of(it->second->begin(), it->second->end(),
                    [](std::uint8_t b) { return b == 0; });
    it = all_zero ? pages_.erase(it) : std::next(it);
  }
}

MemorySnapshot Memory::Snapshot() const {
  CRUZ_CHECK(missing_.empty(), "Snapshot: demand paging in progress");
  MemorySnapshot::PageMap shared;
  for (const auto& [index, page] : pages_) {
    shared.emplace(index, page);
  }
  return MemorySnapshot(std::move(shared));
}

}  // namespace cruz::os
