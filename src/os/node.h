// A cluster node: NIC + network stack + OS + local disk model.
//
// The paper's testbed nodes are dual 1 GHz P-III machines with gigabit
// NICs; the only node-level hardware characteristic the experiments
// depend on is the local disk bandwidth that dominates checkpoint latency
// (Fig. 5a), modeled here as a fixed write rate plus seek latency.
#pragma once

#include <memory>
#include <string>

#include "common/units.h"
#include "net/address.h"
#include "net/ethernet_switch.h"
#include "net/nic.h"
#include "os/local_disk.h"
#include "os/netfs.h"
#include "os/netstack.h"
#include "os/os.h"
#include "tcp/config.h"

namespace cruz::os {

struct NodeConfig {
  net::Ipv4Address ip;
  // /16: the scale benchmarks address ~1000 nodes plus a pod per node,
  // which overflows a /24. All historical 10.0.0.x assignments remain on
  // the (now wider) subnet, so routing behavior is unchanged for them.
  net::Ipv4Address netmask = net::Ipv4Address::FromOctets(255, 255, 0, 0);
  tcp::TcpConfig tcp;
  // Local disk used for checkpoint images (the paper reports checkpoint
  // latency dominated by writing state to disk; ~1 s for the slm state).
  std::uint64_t disk_write_bytes_per_sec = 80 * kMiB;
  DurationNs disk_latency = 5 * kMillisecond;
  bool nic_supports_multiple_macs = true;
  // Tiered checkpoint storage knobs. 0 means "same rate as the local
  // disk", which keeps tiered and non-tiered runs time-identical unless
  // a benchmark deliberately models slower replication / netfs links.
  std::uint64_t local_disk_capacity_bytes = 0;  // 0 = unlimited
  std::uint64_t partner_write_bytes_per_sec = 0;
  std::uint64_t netfs_write_bytes_per_sec = 0;
};

class Node {
 public:
  Node(sim::Simulator& sim, net::EthernetSwitch& ethernet,
       NetworkFileSystem& fs, std::string name, std::uint32_t index,
       const NodeConfig& config);

  const std::string& name() const { return name_; }
  std::uint32_t index() const { return index_; }
  net::Ipv4Address ip() const { return config_.ip; }
  const NodeConfig& config() const { return config_; }

  // Per-node disk tuning (heterogeneous-cluster benchmarks).
  void set_disk_write_bytes_per_sec(std::uint64_t bps) {
    config_.disk_write_bytes_per_sec = bps;
  }

  net::Nic& nic() { return *nic_; }
  NetworkStack& stack() { return *stack_; }
  Os& os() { return *os_; }
  // Tier-1 checkpoint cache. Shares the node's failure domain: Fail()
  // clears it (the images die with the machine).
  LocalDiskStore& disk() { return *disk_; }
  const LocalDiskStore& disk() const { return *disk_; }

  // Duration to write `bytes` to the local disk (checkpoint path).
  DurationNs DiskWriteDuration(std::uint64_t bytes) const {
    return config_.disk_latency +
           (config_.disk_write_bytes_per_sec == 0
                ? 0
                : bytes * kSecond / config_.disk_write_bytes_per_sec);
  }
  DurationNs DiskReadDuration(std::uint64_t bytes) const {
    // Reads (restart path) run at ~2x the write rate, typical of the era.
    return config_.disk_latency +
           (config_.disk_write_bytes_per_sec == 0
                ? 0
                : bytes * kSecond / (2 * config_.disk_write_bytes_per_sec));
  }
  // Duration to replicate `bytes` to the partner node's disk. Defaults
  // to the local disk write rate so partner replication is overlapped
  // (and time-equivalent) with the local write unless configured slower.
  DurationNs PartnerWriteDuration(std::uint64_t bytes) const {
    std::uint64_t bps = config_.partner_write_bytes_per_sec != 0
                            ? config_.partner_write_bytes_per_sec
                            : config_.disk_write_bytes_per_sec;
    return config_.disk_latency + (bps == 0 ? 0 : bytes * kSecond / bps);
  }
  // Duration to flush `bytes` to the shared netfs (background tier).
  DurationNs NetfsWriteDuration(std::uint64_t bytes) const {
    std::uint64_t bps = config_.netfs_write_bytes_per_sec != 0
                            ? config_.netfs_write_bytes_per_sec
                            : config_.disk_write_bytes_per_sec;
    return config_.disk_latency + (bps == 0 ? 0 : bytes * kSecond / bps);
  }

  // Fail-stop: detaches the NIC and destroys every process. Used for the
  // fault-tolerance scenarios (restart elsewhere from the checkpoint).
  void Fail();
  bool failed() const { return failed_; }

  // Brings a failed node back: re-attaches the NIC to the switch. All
  // pre-crash processes are gone (Fail destroyed them); higher layers are
  // responsible for cleaning up stale pod bookkeeping and restoring work
  // from checkpoints, like a machine rejoining the cluster after a power
  // cycle.
  void Reboot();

 private:
  sim::Simulator& sim_;
  net::EthernetSwitch& ethernet_;
  std::string name_;
  std::uint32_t index_;
  NodeConfig config_;
  std::unique_ptr<net::Nic> nic_;
  std::unique_ptr<NetworkStack> stack_;
  std::unique_ptr<Os> os_;
  std::unique_ptr<LocalDiskStore> disk_;
  bool failed_ = false;
};

}  // namespace cruz::os
