// A cluster node: NIC + network stack + OS + local disk model.
//
// The paper's testbed nodes are dual 1 GHz P-III machines with gigabit
// NICs; the only node-level hardware characteristic the experiments
// depend on is the local disk bandwidth that dominates checkpoint latency
// (Fig. 5a), modeled here as a fixed write rate plus seek latency.
#pragma once

#include <memory>
#include <string>

#include "common/units.h"
#include "net/address.h"
#include "net/ethernet_switch.h"
#include "net/nic.h"
#include "os/netfs.h"
#include "os/netstack.h"
#include "os/os.h"
#include "tcp/config.h"

namespace cruz::os {

struct NodeConfig {
  net::Ipv4Address ip;
  net::Ipv4Address netmask = net::Ipv4Address::FromOctets(255, 255, 255, 0);
  tcp::TcpConfig tcp;
  // Local disk used for checkpoint images (the paper reports checkpoint
  // latency dominated by writing state to disk; ~1 s for the slm state).
  std::uint64_t disk_write_bytes_per_sec = 80 * kMiB;
  DurationNs disk_latency = 5 * kMillisecond;
  bool nic_supports_multiple_macs = true;
};

class Node {
 public:
  Node(sim::Simulator& sim, net::EthernetSwitch& ethernet,
       NetworkFileSystem& fs, std::string name, std::uint32_t index,
       const NodeConfig& config);

  const std::string& name() const { return name_; }
  std::uint32_t index() const { return index_; }
  net::Ipv4Address ip() const { return config_.ip; }
  const NodeConfig& config() const { return config_; }

  // Per-node disk tuning (heterogeneous-cluster benchmarks).
  void set_disk_write_bytes_per_sec(std::uint64_t bps) {
    config_.disk_write_bytes_per_sec = bps;
  }

  net::Nic& nic() { return *nic_; }
  NetworkStack& stack() { return *stack_; }
  Os& os() { return *os_; }

  // Duration to write `bytes` to the local disk (checkpoint path).
  DurationNs DiskWriteDuration(std::uint64_t bytes) const {
    return config_.disk_latency +
           (config_.disk_write_bytes_per_sec == 0
                ? 0
                : bytes * kSecond / config_.disk_write_bytes_per_sec);
  }
  DurationNs DiskReadDuration(std::uint64_t bytes) const {
    // Reads (restart path) run at ~2x the write rate, typical of the era.
    return config_.disk_latency +
           (config_.disk_write_bytes_per_sec == 0
                ? 0
                : bytes * kSecond / (2 * config_.disk_write_bytes_per_sec));
  }

  // Fail-stop: detaches the NIC and destroys every process. Used for the
  // fault-tolerance scenarios (restart elsewhere from the checkpoint).
  void Fail();
  bool failed() const { return failed_; }

  // Brings a failed node back: re-attaches the NIC to the switch. All
  // pre-crash processes are gone (Fail destroyed them); higher layers are
  // responsible for cleaning up stale pod bookkeeping and restoring work
  // from checkpoints, like a machine rejoining the cluster after a power
  // cycle.
  void Reboot();

 private:
  sim::Simulator& sim_;
  net::EthernetSwitch& ethernet_;
  std::string name_;
  std::uint32_t index_;
  NodeConfig config_;
  std::unique_ptr<net::Nic> nic_;
  std::unique_ptr<NetworkStack> stack_;
  std::unique_ptr<Os> os_;
  bool failed_ = false;
};

}  // namespace cruz::os
