// Per-node Checkpoint Agent (paper Fig. 2).
//
// The agent is a kernel-space service on each machine. For a checkpoint it
// (1) configures the packet filter to silently drop all traffic to/from
// the local pod, (2) stops the pod's processes and takes the local
// checkpoint (including live TCP state), (3) reports <done>, (4) on
// <continue> resumes the processes and removes the filter. Restart runs
// the identical protocol with restore instead of save; communication is
// disabled *before* restoring so replayed TCP transmissions cannot reach
// peers whose state is not yet restored (paper §5).
//
// The agent also implements the Fig. 4 optimized variant (resume as soon
// as the local save completes, once the coordinator confirms communication
// is disabled everywhere) and the CoCheck/MPVM-style all-to-all flush
// baseline used for the message-complexity comparison.
//
// Local operation costs are modeled explicitly: per-process stop cost, the
// network-stack lock hold while socket state is extracted, image
// serialization at memory bandwidth, and the dominant disk write/read
// time. The agent reports its local duration in <done>, which is how the
// coordinator separates local work from coordination overhead (§6).
//
// Failure model: the agent fences stale coordinators by epoch, reports
// local failures (<failed>) instead of going silent, answers liveness
// probes (<ping>/<pong>), deletes its partial image when an op aborts,
// and can be crashed/reset by the fault-injection framework — Crash()
// models the agent process dying (it stops responding until Reset(),
// which performs the recovery a restarted agent would: resume the pod,
// drop the filter, discard the partial image).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "ckpt/engine.h"
#include "ckpt/store/replica.h"
#include "coord/message.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "os/node.h"
#include "pod/pod.h"

namespace cruz::ckpt {
class TieredStore;
}  // namespace cruz::ckpt

namespace cruz::coord {

class CheckpointAgent {
 public:
  CheckpointAgent(os::Node& node, pod::PodManager& pods);
  ~CheckpointAgent();

  CheckpointAgent(const CheckpointAgent&) = delete;
  CheckpointAgent& operator=(const CheckpointAgent&) = delete;

  os::Node& node() { return node_; }

  std::uint64_t checkpoints_served() const { return checkpoints_served_; }
  std::uint64_t restarts_served() const { return restarts_served_; }

  // Deterministic fault injection (tests/benches); nullptr disables.
  void set_fault_injector(fault::Injector* injector) { fault_ = injector; }

  // Multi-tier checkpoint storage. When set AND the request carries
  // tiered=true, saves commit through TieredStore::CommitImage (local +
  // partner, background netfs flush) and restores resolve across the
  // tier hierarchy. nullptr = legacy netfs-only I/O.
  void set_tiered_store(ckpt::TieredStore* store) { tiered_ = store; }

  // Sabotage hook for oracle self-tests: report the drop filter as
  // installed (the trace instant still fires) without actually adding it
  // to the netstack, so pod traffic keeps flowing through the "frozen"
  // window. Never set outside tests.
  void set_test_skip_filter(bool skip) { test_skip_filter_ = skip; }

  // Simulates the agent process dying: all messages are ignored and any
  // in-flight local work is abandoned (the pod stays stopped, the drop
  // filter stays installed — exactly the wreckage a real agent crash
  // leaves behind).
  void Crash();
  bool crashed() const { return crashed_; }

  // Recovery performed by a restarted agent process: resume a stopped
  // pod, remove the leftover drop filter, delete the partial image of an
  // unfinished checkpoint, and forget all volatile state (incremental
  // baselines, epoch high-water mark, reply cache).
  void Reset();

 private:
  struct ActiveOp {
    std::uint64_t op_id = 0;
    std::uint64_t epoch = 0;
    os::PodId pod = os::kNoPod;
    ProtocolVariant variant = ProtocolVariant::kBlocking;
    bool is_restart = false;
    net::Endpoint coordinator;
    std::uint64_t filter_id = 0;
    TimeNs started = 0;
    DurationNs local_duration = 0;
    // How long the pod's processes are stopped: the whole save for a
    // stop-the-world checkpoint, only the snapshot for copy-on-write.
    DurationNs downtime = 0;
    bool save_done = false;
    // With copy-on-write the pod may resume before the disk write
    // finishes: resume_ready flips at capture time instead of save time.
    bool resume_ready = false;
    bool continue_received = false;
    bool resumed = false;
    bool done_sent = false;
    bool continue_done_sent = false;
    std::string image_path;      // written by this checkpoint op
    bool image_written = false;  // true once the image is on the FS
    // Tiered mode: where this op's image landed (reported in <done>) and,
    // for restarts, which tier actually served it (ckpt::Tier as u8).
    std::vector<ckpt::Replica> replicas;
    std::uint8_t restore_source = 255;
    std::uint32_t flush_messages = 0;
    std::set<std::uint32_t> flush_acks_pending;
    std::optional<CoordMessage> pending_request;  // original request
    // Tracing: the local save/restore window, the pod-stopped window
    // (ends when the pod becomes locally resumable), and the continue
    // (resume) window.
    obs::SpanId save_span = obs::kInvalidSpanId;
    obs::SpanId downtime_span = obs::kInvalidSpanId;
    obs::SpanId continue_span = obs::kInvalidSpanId;
  };

  void OnDatagram(net::Endpoint from, const cruz::Bytes& payload);
  void HandleCheckpoint(const CoordMessage& m, net::Endpoint from);
  void StartLocalCheckpoint(const CoordMessage& m);
  // Forked (copy-on-write) checkpoint: short stop-the-world snapshot,
  // then a background serialize + disk write after the pod resumes.
  void StartForkedCheckpoint(const CoordMessage& m,
                             const ckpt::CaptureOptions& capture);
  void HandleRestart(const CoordMessage& m, net::Endpoint from);
  void HandleContinue(const CoordMessage& m);
  void HandleAbort(const CoordMessage& m);
  void HandlePing(const CoordMessage& m, net::Endpoint from);
  void HandleFlushMarker(const CoordMessage& m, net::Endpoint from);
  void HandleFlushAck(const CoordMessage& m);
  void MaybeResume();
  void MaybeFinishOp();
  void InstallDropFilter(net::Ipv4Address pod_ip);
  void RemoveDropFilter();
  void Send(net::Endpoint to, CoordMessage m);
  // Closes any spans the active op still holds open (abort/crash paths).
  void EndOpSpans(const char* outcome);
  // Local failure: clean up, report <failed> so the coordinator aborts
  // fast instead of waiting out its timeout.
  void FailLocalOp(net::Endpoint coordinator, const CoordMessage& m,
                   const char* why);
  // Deletes the partial image of an aborted checkpoint and invalidates
  // the incremental baseline (the next capture must be full).
  void DiscardCheckpointImage(os::PodId pod, const std::string& path);

  os::Node& node_;
  pod::PodManager& pods_;
  fault::Injector* fault_ = nullptr;
  ckpt::TieredStore* tiered_ = nullptr;
  bool test_skip_filter_ = false;
  bool crashed_ = false;
  ActiveOp op_;
  // Fencing: highest epoch observed from any coordinator; lower-epoch
  // requests are stale (dead coordinator, delayed duplicate) and ignored.
  std::uint64_t max_epoch_seen_ = 0;
  // Incremental chains: last image written per pod (path, generation).
  std::map<os::PodId, std::pair<std::string, std::uint32_t>> last_image_;
  // Message-loss tolerance: replies for the most recently completed op,
  // re-sent when the coordinator retransmits a request we already served.
  std::uint64_t last_completed_op_ = 0;
  // Abort fencing: a delayed <checkpoint>/<restart> can arrive after its
  // op's <abort> already did; serving it would freeze the pod for a dead
  // coordinator op and leak an orphan image.
  std::uint64_t last_aborted_op_ = 0;
  bool last_completed_was_checkpoint_ = false;
  os::PodId last_completed_pod_ = os::kNoPod;
  std::string last_completed_image_path_;
  CoordMessage last_done_reply_;
  CoordMessage last_continue_done_reply_;
  net::Endpoint last_coordinator_;
  bool op_active_ = false;
  // Flush-baseline markers that arrive before this agent's own
  // <checkpoint> request (the coordinator serializes requests, so at
  // large N a peer's marker can outrace ours). Held here and credited
  // to the op when it activates, keeping the message count exact.
  std::uint64_t early_flush_op_ = 0;
  std::uint32_t early_flush_messages_ = 0;
  std::uint64_t checkpoints_served_ = 0;
  std::uint64_t restarts_served_ = 0;
  // Correlation sequence for send instants (CoordMessage::corr_seq).
  // Deliberately not cleared by Reset(): trace identity must stay unique
  // across simulated agent-process restarts within one run.
  std::uint32_t next_corr_seq_ = 0;
};

}  // namespace cruz::coord
