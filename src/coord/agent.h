// Per-node Checkpoint Agent (paper Fig. 2).
//
// The agent is a kernel-space service on each machine. For a checkpoint it
// (1) configures the packet filter to silently drop all traffic to/from
// the local pod, (2) stops the pod's processes and takes the local
// checkpoint (including live TCP state), (3) reports <done>, (4) on
// <continue> resumes the processes and removes the filter. Restart runs
// the identical protocol with restore instead of save; communication is
// disabled *before* restoring so replayed TCP transmissions cannot reach
// peers whose state is not yet restored (paper §5).
//
// The agent also implements the Fig. 4 optimized variant (resume as soon
// as the local save completes, once the coordinator confirms communication
// is disabled everywhere) and the CoCheck/MPVM-style all-to-all flush
// baseline used for the message-complexity comparison.
//
// Local operation costs are modeled explicitly: per-process stop cost, the
// network-stack lock hold while socket state is extracted, image
// serialization at memory bandwidth, and the dominant disk write/read
// time. The agent reports its local duration in <done>, which is how the
// coordinator separates local work from coordination overhead (§6).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "ckpt/engine.h"
#include "coord/message.h"
#include "os/node.h"
#include "pod/pod.h"

namespace cruz::coord {

class CheckpointAgent {
 public:
  CheckpointAgent(os::Node& node, pod::PodManager& pods);
  ~CheckpointAgent();

  CheckpointAgent(const CheckpointAgent&) = delete;
  CheckpointAgent& operator=(const CheckpointAgent&) = delete;

  os::Node& node() { return node_; }

  std::uint64_t checkpoints_served() const { return checkpoints_served_; }
  std::uint64_t restarts_served() const { return restarts_served_; }

 private:
  struct ActiveOp {
    std::uint64_t op_id = 0;
    os::PodId pod = os::kNoPod;
    ProtocolVariant variant = ProtocolVariant::kBlocking;
    bool is_restart = false;
    net::Endpoint coordinator;
    std::uint64_t filter_id = 0;
    TimeNs started = 0;
    DurationNs local_duration = 0;
    bool save_done = false;
    // With copy-on-write the pod may resume before the disk write
    // finishes: resume_ready flips at capture time instead of save time.
    bool resume_ready = false;
    bool continue_received = false;
    bool resumed = false;
    bool done_sent = false;
    bool continue_done_sent = false;
    std::uint32_t flush_messages = 0;
    std::set<std::uint32_t> flush_acks_pending;
    std::optional<CoordMessage> pending_request;  // original request
  };

  void OnDatagram(net::Endpoint from, const cruz::Bytes& payload);
  void HandleCheckpoint(const CoordMessage& m, net::Endpoint from);
  void StartLocalCheckpoint(const CoordMessage& m);
  void HandleRestart(const CoordMessage& m, net::Endpoint from);
  void HandleContinue(const CoordMessage& m);
  void HandleAbort(const CoordMessage& m);
  void HandleFlushMarker(const CoordMessage& m, net::Endpoint from);
  void HandleFlushAck(const CoordMessage& m);
  void MaybeResume();
  void MaybeFinishOp();
  void InstallDropFilter(net::Ipv4Address pod_ip);
  void RemoveDropFilter();
  void Send(net::Endpoint to, CoordMessage m);

  os::Node& node_;
  pod::PodManager& pods_;
  ActiveOp op_;
  // Incremental chains: last image written per pod (path, generation).
  std::map<os::PodId, std::pair<std::string, std::uint32_t>> last_image_;
  // Message-loss tolerance: replies for the most recently completed op,
  // re-sent when the coordinator retransmits a request we already served.
  std::uint64_t last_completed_op_ = 0;
  CoordMessage last_done_reply_;
  CoordMessage last_continue_done_reply_;
  net::Endpoint last_coordinator_;
  bool op_active_ = false;
  std::uint64_t checkpoints_served_ = 0;
  std::uint64_t restarts_served_ = 0;
};

}  // namespace cruz::coord
