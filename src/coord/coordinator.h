// The Checkpoint Coordinator (paper Fig. 2).
//
// Runs on a node distinct from the application nodes (as in §6). One
// coordinated operation at a time:
//
//   Step 1: send <checkpoint> (or <restart>) to every agent.
//   Step 2: wait for <done> from all agents.
//   Step 3: send <continue> to all agents.
//   Step 4: wait for <continue-done> from all agents.
//
// This is the minimum message count needed for atomicity (two-phase
// commit): O(N) messages, versus the O(N²) all-to-all flush of the
// MPVM/CoCheck/LAM-MPI baselines (also implemented, for comparison).
// With the Fig. 4 optimization the <continue> is sent as soon as every
// agent reports communication disabled, letting each node resume right
// after its own local save.
//
// The coordinator measures exactly what §6 reports: total checkpoint
// latency (first <checkpoint> sent to last <done> received, Fig. 5a) and
// the coordination overhead (full latency minus the maxima of the local
// checkpoint and continue times, Fig. 5b).
//
// Failure model (the paper: the protocol "can be extended in a
// straightforward way to tolerate Coordinator and Agent failures"):
//  - Lost control messages are retransmitted with exponential backoff and
//    seeded jitter, capped by max_retransmit_rounds.
//  - Every op carries a fencing epoch, monotonic across coordinator
//    incarnations; agents reject stale-epoch requests.
//  - An intent record is journaled to the shared FS before the first
//    message of an op; a restarted coordinator aborts the journaled
//    in-flight op and garbage-collects its partial images.
//  - Optional liveness probing (<ping>/<pong>) detects a dead agent or
//    node in a few heartbeats and aborts the op fast instead of eating
//    the full operation timeout.
//  - An agent that cannot perform its local part reports <failed>, which
//    aborts the op immediately; aborted checkpoint images are deleted.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ckpt/store/replica.h"
#include "coord/journal.h"
#include "coord/message.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "os/node.h"
#include "sim/event_queue.h"

namespace cruz::ckpt {
class TieredStore;
}  // namespace cruz::ckpt

namespace cruz::coord {

class Coordinator {
 public:
  struct Member {
    net::Ipv4Address agent_ip;  // node address of the agent
    os::PodId pod = os::kNoPod;
  };

  struct Options {
    ProtocolVariant variant = ProtocolVariant::kBlocking;
    DurationNs timeout = 120 * kSecond;
    // Unanswered requests are retransmitted (the coordination channel is
    // UDP). The interval starts at retransmit_interval and grows by
    // retransmit_backoff per round, capped at retransmit_max_interval
    // (0 = 4x the initial interval); each round is jittered ±25% from the
    // simulator's seeded RNG so retransmissions cannot synchronize.
    // retransmit_interval == 0 disables retransmission entirely.
    DurationNs retransmit_interval = 2 * kSecond;
    double retransmit_backoff = 2.0;
    DurationNs retransmit_max_interval = 0;
    // Abort the op after this many retransmit rounds (0 = no cap; the
    // overall timeout still applies).
    std::uint32_t max_retransmit_rounds = 0;
    // Liveness probing: every heartbeat_interval the coordinator pings
    // members that still owe a reply; an agent that misses more than
    // max_missed_heartbeats consecutive probes is declared dead and the
    // op is aborted early. 0 disables probing (and then only the overall
    // timeout bounds the op).
    DurationNs heartbeat_interval = 0;
    std::uint32_t max_missed_heartbeats = 3;
    std::string image_prefix = "/ckpt/op";
    // §5.2 optimizations (checkpoints only). Incremental images save only
    // pages dirtied since each agent's previous checkpoint of the pod;
    // copy-on-write resumes the pod right after the in-memory capture.
    // Combine copy_on_write with ProtocolVariant::kOptimized so the
    // resume permission also arrives early.
    bool incremental = false;
    bool copy_on_write = false;
    // Write version-2 images with RLE-compressed pages (shrinks the
    // dominant disk-write time; restore reads either version).
    bool compress = false;
    // Multi-tier storage: agents commit images to local + partner disks
    // (netfs flush in the background) and restarts resolve across the
    // tier hierarchy. Requires a TieredStore passed at construction.
    bool tiered = false;
    // Hierarchical coordination (DESIGN.md §13): partition the members
    // into contiguous shards of at most fan_out agents, each driven by
    // the sub-coordinator on the shard's first node, so the root
    // addresses ⌈N/fan_out⌉ endpoints instead of N. 0 = flat. Ignored
    // by the flush baseline (its all-to-all marker traffic is the point
    // of that comparison).
    std::uint32_t fan_out = 0;
  };

  struct OpStats {
    bool success = false;
    std::uint64_t op_id = 0;
    std::uint64_t epoch = 0;  // fencing epoch carried by every message
    // First <checkpoint> sent to last <done> received (Fig. 5a metric).
    DurationNs checkpoint_latency = 0;
    // First message sent to last <continue-done> received.
    DurationNs full_latency = 0;
    DurationNs max_local = 0;     // max agent-local checkpoint/restore time
    DurationNs max_continue = 0;  // max agent-local continue time
    // Max agent-reported pod downtime: how long any pod's processes were
    // stopped. Stop-the-world: ≈ max_local. Copy-on-write: only the
    // snapshot, so downtime ≪ max_local (the Fig. 5a split this PR adds).
    DurationNs max_downtime = 0;
    // full_latency − max_local − max_continue (Fig. 5b metric).
    DurationNs coordination_overhead = 0;
    std::uint32_t coordinator_messages = 0;  // sent by the coordinator
    std::uint32_t total_messages = 0;  // + agent replies + flush traffic
    // Failure-handling counters.
    std::uint32_t retransmits = 0;  // messages re-sent after loss
    std::uint32_t timeouts = 0;     // overall-timeout expirations (0/1)
    std::uint32_t aborts = 0;       // <abort> messages sent
    std::string abort_reason;       // empty on success
    std::vector<std::string> image_paths;
    // Tiered mode, per member (same order as the member list): where each
    // image landed at commit time (checkpoints — feeds the generation
    // manifest) and which tier served each restore (ckpt::Tier as u8,
    // 255 = unset).
    std::vector<std::vector<ckpt::Replica>> replica_sets;
    std::vector<std::uint8_t> restore_sources;
    // Hierarchical mode: number of shards (0 = flat) and the maximum
    // number of distinct destinations any single endpoint addressed
    // during the op (flat: N at the root; hierarchical: the larger of
    // the shard count and the largest shard).
    std::uint32_t shard_count = 0;
    std::uint32_t max_endpoint_fanout = 0;
  };

  // What a restarted coordinator found in its intent journal.
  struct RecoveryReport {
    bool had_incomplete = false;
    std::uint64_t epoch = 0;      // epoch of the in-flight op
    bool was_restart = false;
    std::size_t images_removed = 0;  // partial images garbage-collected
  };

  using DoneFn = std::function<void(const OpStats&)>;

  // `tiered` (optional) enables cross-tier garbage collection: journal
  // recovery and op aborts reap local/partner replicas and pending netfs
  // flushes, not just the netfs copy. It must be passed at construction
  // because recovery runs in the constructor.
  explicit Coordinator(os::Node& node,
                       std::string journal_path = IntentJournal::kDefaultPath,
                       ckpt::TieredStore* tiered = nullptr);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Coordinated checkpoint of one pod per member. Image paths are derived
  // from options.image_prefix and reported in the stats.
  void Checkpoint(std::vector<Member> members, Options options, DoneFn done);

  // Coordinated restart from previously written images (one per member,
  // same order).
  void Restart(std::vector<Member> members,
               std::vector<std::string> image_paths, Options options,
               DoneFn done);

  bool busy() const { return op_active_; }
  std::uint64_t epoch() const { return epoch_; }
  const RecoveryReport& recovery() const { return recovery_; }

  // Deterministic fault injection (tests/benches); nullptr disables.
  void set_fault_injector(fault::Injector* injector) { fault_ = injector; }

  // Sabotage hook for oracle self-tests: broadcast <continue> twice from
  // the protocol layer (above the fault-injection hooks, so the extra
  // copies count as real sends). Never set outside tests.
  void set_test_duplicate_continue(bool dup) { test_duplicate_continue_ = dup; }

  static std::string ImagePath(const std::string& prefix, os::PodId pod) {
    return prefix + "/pod_" + std::to_string(pod) + ".img";
  }

 private:
  // One shard of the hierarchical tree: the sub-coordinator's node plus
  // the member indices it drives.
  struct Shard {
    net::Ipv4Address sub_ip;
    std::vector<std::size_t> member_indices;
  };

  void Begin(bool is_restart, std::vector<Member> members,
             std::vector<std::string> image_paths, Options options,
             DoneFn done);
  void OnDatagram(net::Endpoint from, const cruz::Bytes& payload);
  void SendToAgent(std::size_t member_index, CoordMessage m);
  void SendToShard(std::size_t shard_index, CoordMessage m);
  // Downward shard request (kShardCheckpoint/kShardRestart) for one
  // shard, carrying the roster and per-member parameters.
  CoordMessage BuildShardRequest(const Shard& shard) const;
  // Sends the shard request, splitting the roster across datagrams so no
  // fragment exceeds the Ethernet MTU (the stack does not IP-fragment);
  // the sub starts once it holds member_total distinct members.
  void SendShardRequest(std::size_t shard_index);
  // Folds a sub-coordinator's cumulative shard-internal message count
  // into the grand total (high-water delta: exact under re-sent replies).
  void AccumulateShardMessages(std::uint32_t sub_ip,
                               std::uint32_t cumulative);
  void TransmitControl(net::Ipv4Address dst, const CoordMessage& m,
                       std::uint16_t dst_port = kAgentPort);
  void BroadcastContinue();
  void AbortOp(const std::string& reason);
  void Finish(bool success);
  void ScheduleRetransmit();
  void RetransmitPending();
  void ScheduleHeartbeat();
  void HeartbeatTick();
  // Journal replay at construction: fence + clean up a predecessor's
  // in-flight op.
  void RecoverFromJournal();

  os::Node& node_;
  IntentJournal journal_;
  ckpt::TieredStore* tiered_ = nullptr;
  fault::Injector* fault_ = nullptr;
  bool test_duplicate_continue_ = false;
  // Monotonic fencing epoch, persisted through the journal. Each op gets
  // epoch_ + 1; op ids equal epochs so they are also globally unique.
  std::uint64_t epoch_ = 0;
  RecoveryReport recovery_;
  // Correlation sequence for send instants: monotonic per incarnation,
  // never reused within a trace (see CoordMessage::corr_seq).
  std::uint32_t next_corr_seq_ = 0;

  bool op_active_ = false;
  bool is_restart_ = false;
  bool hierarchical_ = false;
  std::vector<Shard> shards_;
  Options options_;
  std::vector<Member> members_;
  OpStats stats_;
  DoneFn done_fn_;
  TimeNs op_start_ = 0;
  // Keyed by agent ip (flat) or sub-coordinator ip (hierarchical).
  std::set<std::uint32_t> pending_done_;
  std::set<std::uint32_t> pending_continue_done_;
  std::set<std::uint32_t> pending_comm_disabled_;  // Fig. 4
  // Hierarchical bookkeeping, keyed by sub-coordinator ip: cumulative
  // shard-internal message counts (see AccumulateShardMessages) and the
  // distinct member reports received from fragmented <shard-done>s.
  std::map<std::uint32_t, std::uint32_t> shard_messages_seen_;
  std::map<std::uint32_t, std::set<std::uint32_t>> shard_done_members_;
  bool continue_sent_ = false;
  std::vector<std::string> image_paths_;
  sim::EventId timeout_event_ = sim::kInvalidEventId;
  sim::EventId retransmit_event_ = sim::kInvalidEventId;
  sim::EventId heartbeat_event_ = sim::kInvalidEventId;
  // Tracing: the whole op, the freeze phase (first request -> last
  // <done>), and the commit phase (<continue> -> last <continue-done>).
  obs::SpanId op_span_ = obs::kInvalidSpanId;
  obs::SpanId freeze_span_ = obs::kInvalidSpanId;
  obs::SpanId commit_span_ = obs::kInvalidSpanId;
  DurationNs retransmit_interval_now_ = 0;  // current backoff interval
  std::uint32_t retransmit_rounds_ = 0;
  std::map<std::uint32_t, std::uint32_t> missed_heartbeats_;  // by agent ip
};

}  // namespace cruz::coord
