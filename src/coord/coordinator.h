// The Checkpoint Coordinator (paper Fig. 2).
//
// Runs on a node distinct from the application nodes (as in §6). One
// coordinated operation at a time:
//
//   Step 1: send <checkpoint> (or <restart>) to every agent.
//   Step 2: wait for <done> from all agents.
//   Step 3: send <continue> to all agents.
//   Step 4: wait for <continue-done> from all agents.
//
// This is the minimum message count needed for atomicity (two-phase
// commit): O(N) messages, versus the O(N²) all-to-all flush of the
// MPVM/CoCheck/LAM-MPI baselines (also implemented, for comparison).
// With the Fig. 4 optimization the <continue> is sent as soon as every
// agent reports communication disabled, letting each node resume right
// after its own local save.
//
// The coordinator measures exactly what §6 reports: total checkpoint
// latency (first <checkpoint> sent to last <done> received, Fig. 5a) and
// the coordination overhead (full latency minus the maxima of the local
// checkpoint and continue times, Fig. 5b).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "coord/message.h"
#include "os/node.h"
#include "sim/event_queue.h"

namespace cruz::coord {

class Coordinator {
 public:
  struct Member {
    net::Ipv4Address agent_ip;  // node address of the agent
    os::PodId pod = os::kNoPod;
  };

  struct Options {
    ProtocolVariant variant = ProtocolVariant::kBlocking;
    DurationNs timeout = 120 * kSecond;
    // Unanswered requests are retransmitted at this interval (the
    // coordination channel is UDP; the paper notes the protocol extends
    // straightforwardly to tolerate message loss). 0 disables.
    DurationNs retransmit_interval = 2 * kSecond;
    std::string image_prefix = "/ckpt/op";
    // §5.2 optimizations (checkpoints only). Incremental images save only
    // pages dirtied since each agent's previous checkpoint of the pod;
    // copy-on-write resumes the pod right after the in-memory capture.
    // Combine copy_on_write with ProtocolVariant::kOptimized so the
    // resume permission also arrives early.
    bool incremental = false;
    bool copy_on_write = false;
  };

  struct OpStats {
    bool success = false;
    std::uint64_t op_id = 0;
    // First <checkpoint> sent to last <done> received (Fig. 5a metric).
    DurationNs checkpoint_latency = 0;
    // First message sent to last <continue-done> received.
    DurationNs full_latency = 0;
    DurationNs max_local = 0;     // max agent-local checkpoint/restore time
    DurationNs max_continue = 0;  // max agent-local continue time
    // full_latency − max_local − max_continue (Fig. 5b metric).
    DurationNs coordination_overhead = 0;
    std::uint32_t coordinator_messages = 0;  // sent by the coordinator
    std::uint32_t total_messages = 0;  // + agent replies + flush traffic
    std::vector<std::string> image_paths;
  };

  using DoneFn = std::function<void(const OpStats&)>;

  explicit Coordinator(os::Node& node);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Coordinated checkpoint of one pod per member. Image paths are derived
  // from options.image_prefix and reported in the stats.
  void Checkpoint(std::vector<Member> members, Options options, DoneFn done);

  // Coordinated restart from previously written images (one per member,
  // same order).
  void Restart(std::vector<Member> members,
               std::vector<std::string> image_paths, Options options,
               DoneFn done);

  bool busy() const { return op_active_; }

  static std::string ImagePath(const std::string& prefix, os::PodId pod) {
    return prefix + "/pod_" + std::to_string(pod) + ".img";
  }

 private:
  void Begin(bool is_restart, std::vector<Member> members,
             std::vector<std::string> image_paths, Options options,
             DoneFn done);
  void OnDatagram(net::Endpoint from, const cruz::Bytes& payload);
  void SendToAgent(std::size_t member_index, CoordMessage m);
  void BroadcastContinue();
  void Finish(bool success);
  void ScheduleRetransmit();
  void RetransmitPending();

  os::Node& node_;
  std::uint64_t next_op_id_ = 1;

  bool op_active_ = false;
  bool is_restart_ = false;
  Options options_;
  std::vector<Member> members_;
  OpStats stats_;
  DoneFn done_fn_;
  TimeNs op_start_ = 0;
  std::set<std::uint32_t> pending_done_;           // agent ips
  std::set<std::uint32_t> pending_continue_done_;  // agent ips
  std::set<std::uint32_t> pending_comm_disabled_;  // Fig. 4
  bool continue_sent_ = false;
  std::vector<std::string> image_paths_;
  sim::EventId timeout_event_ = sim::kInvalidEventId;
  sim::EventId retransmit_event_ = sim::kInvalidEventId;
};

}  // namespace cruz::coord
