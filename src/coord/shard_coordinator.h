// Per-node sub-coordinator for hierarchical checkpoints (DESIGN.md §13).
//
// At ~1000 nodes a flat coordinator must address every agent itself: the
// message count stays O(N) but the *per-endpoint* fan-out grows linearly,
// and the root's serialized datagram processing becomes the scaling wall.
// Hierarchical mode bounds the fan-out at every endpoint: the root talks
// to ⌈N/F⌉ sub-coordinators (one per shard of ≤ F agents), each of which
// replays the flat Fig. 2 protocol to its own shard and answers with one
// aggregated ack per phase.
//
// Every node runs a ShardCoordinator on kShardPort; it is idle (and
// costs nothing) unless the root addresses the node as a shard head.
// The sub-coordinator composes with the same robustness machinery as the
// root:
//  - epoch fencing, seeded from its own intent journal, so a stale root
//    incarnation cannot drive a shard;
//  - a write-ahead intent journal per node — a sub that crashes and
//    restarts aborts the journaled in-flight shard op (fencing its agents
//    and reaping partial images on every storage tier);
//  - retransmission with backoff toward its agents, with a round cap that
//    converts a silent agent into a fast <shard-failed> upward;
//  - reply caching, so a retransmitted root request after completion is
//    answered from the cache instead of re-running the shard;
//  - abort fencing (a delayed <shard-checkpoint> overtaken by its
//    <shard-abort> is ignored);
//  - a self-clean timeout slightly past the root's op timeout, so a shard
//    orphaned by a dead root never leaves pods frozen forever.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "coord/journal.h"
#include "coord/message.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "os/node.h"
#include "sim/event_queue.h"

namespace cruz::ckpt {
class TieredStore;
}  // namespace cruz::ckpt

namespace cruz::coord {

class ShardCoordinator {
 public:
  // `tiered` (optional) enables cross-tier image GC on the abort and
  // journal-recovery paths, mirroring the root coordinator.
  explicit ShardCoordinator(os::Node& node,
                            ckpt::TieredStore* tiered = nullptr);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  bool busy() const { return op_active_; }
  std::uint64_t ops_served() const { return ops_served_; }

  // Deterministic fault injection (tests/benches); nullptr disables.
  void set_fault_injector(fault::Injector* injector) { fault_ = injector; }

  // Sabotage hook for oracle self-tests: acknowledge <shard-checkpoint>
  // with a fabricated <shard-done> (and <shard-continue-done>) without
  // ever forwarding to the shard's agents — a lying middle tier. The
  // gen-commit invariant must catch the resulting commit with zero
  // agent saves. Never set outside tests.
  void set_test_ack_without_forward(bool v) { test_ack_without_forward_ = v; }

  // Simulates the sub-coordinator process dying: it stops hearing
  // messages until Reset(), which replays the journal-recovery path a
  // restarted process would run.
  void Crash();
  bool crashed() const { return crashed_; }
  void Reset();

 private:
  struct ActiveOp {
    std::uint64_t op_id = 0;
    std::uint64_t epoch = 0;
    bool is_restart = false;
    ProtocolVariant variant = ProtocolVariant::kBlocking;
    net::Endpoint root;
    CoordMessage request;  // original downward request (flags, roster)
    std::vector<ShardMember> members;
    // Roster fragmentation (the full roster can exceed the MTU): the op
    // starts — journal intent, forward to agents — only once `members`
    // holds member_total distinct agents.
    std::uint32_t member_total = 0;
    bool started = false;
    std::set<std::uint32_t> pending_done;           // agent ips
    std::set<std::uint32_t> pending_continue_done;  // agent ips
    std::set<std::uint32_t> pending_comm_disabled;  // Fig. 4
    bool continue_broadcast = false;
    bool done_sent = false;
    bool continue_done_sent = false;
    bool comm_disabled_sent = false;
    DurationNs max_local = 0;
    DurationNs max_downtime = 0;
    DurationNs max_continue = 0;
    // Shard-internal message count (sub sends + agent replies received),
    // reported upward as a cumulative count; the root adds high-water
    // deltas so the total stays exact under re-sent replies.
    std::uint32_t messages = 0;
    obs::SpanId op_span = obs::kInvalidSpanId;
  };

  void OnDatagram(net::Endpoint from, const cruz::Bytes& payload);
  void HandleShardRequest(const CoordMessage& m, net::Endpoint from);
  // Runs once the full roster is assembled: journals the intent and
  // forwards the request to every shard agent (or fabricates the reply
  // under the ack-without-forward sabotage).
  void StartShardOp();
  void HandleShardContinue(const CoordMessage& m, net::Endpoint from);
  void HandleShardAbort(const CoordMessage& m);
  void HandleAgentReply(const CoordMessage& m, net::Endpoint from);
  void ForwardRequestTo(const ShardMember& member);
  void BroadcastContinue();
  void MaybeCompleteOp();
  // Sends `full` upward, fragmenting its roster under the MTU (the
  // aggregated <shard-done> can be as oversized as the downward request).
  void SendReply(net::Endpoint to, const CoordMessage& full);
  void SendShardDone();
  void SendShardContinueDone();
  // Aborts the in-flight shard op: <abort> to every shard agent, image GC
  // on all tiers, journal outcome; optionally reports <shard-failed>.
  void AbortShardOp(const char* reason, bool notify_root);
  void Send(net::Endpoint to, CoordMessage m);
  void ScheduleRetransmit();
  void RetransmitPending();
  void CancelTimers();
  void EndOpSpan(const char* outcome);
  // Journal replay at construction / Reset(): abort a predecessor's
  // in-flight shard op.
  void RecoverFromJournal();
  std::string JournalPath() const;

  os::Node& node_;
  IntentJournal journal_;
  ckpt::TieredStore* tiered_ = nullptr;
  fault::Injector* fault_ = nullptr;
  bool test_ack_without_forward_ = false;
  bool crashed_ = false;
  bool op_active_ = false;
  ActiveOp op_;
  // Fencing: highest epoch observed from any root incarnation, seeded
  // from the journal so it survives sub-coordinator restarts.
  std::uint64_t max_epoch_seen_ = 0;
  // Abort fencing: a delayed shard request must not outlive its abort.
  std::uint64_t last_aborted_op_ = 0;
  // Reply cache: a retransmitted root request for the most recently
  // completed op is answered from here instead of re-running the shard.
  std::uint64_t last_completed_op_ = 0;
  CoordMessage last_done_reply_;
  CoordMessage last_continue_done_reply_;
  bool last_had_continue_done_ = false;
  net::Endpoint last_root_;
  std::uint64_t ops_served_ = 0;
  sim::EventId retransmit_event_ = sim::kInvalidEventId;
  sim::EventId timeout_event_ = sim::kInvalidEventId;
  DurationNs retransmit_interval_now_ = 0;
  std::uint32_t retransmit_rounds_ = 0;
  // Correlation sequence for send instants; survives Reset() so trace
  // identity stays unique across simulated process restarts.
  std::uint32_t next_corr_seq_ = 0;
};

}  // namespace cruz::coord
