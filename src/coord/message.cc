#include "coord/message.h"

#include "common/error.h"

namespace cruz::coord {

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kCheckpoint: return "checkpoint";
    case MsgType::kDone: return "done";
    case MsgType::kContinue: return "continue";
    case MsgType::kContinueDone: return "continue-done";
    case MsgType::kRestart: return "restart";
    case MsgType::kAbort: return "abort";
    case MsgType::kCommDisabled: return "comm-disabled";
    case MsgType::kFlushMarker: return "flush-marker";
    case MsgType::kFlushAck: return "flush-ack";
    case MsgType::kFailed: return "failed";
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kShardCheckpoint: return "shard-checkpoint";
    case MsgType::kShardRestart: return "shard-restart";
    case MsgType::kShardContinue: return "shard-continue";
    case MsgType::kShardAbort: return "shard-abort";
    case MsgType::kShardDone: return "shard-done";
    case MsgType::kShardContinueDone: return "shard-continue-done";
    case MsgType::kShardCommDisabled: return "shard-comm-disabled";
    case MsgType::kShardFailed: return "shard-failed";
    case MsgType::kShardPong: return "shard-pong";
    case MsgType::kPageRequest: return "page-request";
    case MsgType::kPageResponse: return "page-response";
  }
  return "unknown";
}

std::string CorrId(const CoordMessage& m, const std::string& sender) {
  return std::to_string(m.op_id) + ":" + MsgTypeName(m.type) + ":" +
         sender + ":" + std::to_string(m.corr_seq);
}

cruz::Bytes CoordMessage::Encode() const {
  cruz::ByteWriter w;
  w.PutU8(static_cast<std::uint8_t>(type));
  w.PutU64(op_id);
  w.PutU64(epoch);
  w.PutU32(pod_id);
  w.PutU8(static_cast<std::uint8_t>(variant));
  w.PutString(image_path);
  w.PutBool(incremental);
  w.PutBool(copy_on_write);
  w.PutBool(compress);
  w.PutU64(local_duration);
  w.PutU64(downtime);
  w.PutU32(extra_messages);
  w.PutU32(sender_index);
  w.PutU32(corr_seq);
  w.PutU32(static_cast<std::uint32_t>(peers.size()));
  for (std::uint32_t p : peers) w.PutU32(p);
  w.PutBool(tiered);
  w.PutU8(restore_source);
  w.PutU32(static_cast<std::uint32_t>(replicas.size()));
  for (const ckpt::Replica& rep : replicas) {
    w.PutU8(static_cast<std::uint8_t>(rep.tier));
    w.PutU32(rep.node_index);
    w.PutU64(rep.size);
    w.PutU32(rep.crc32);
  }
  w.PutU32(static_cast<std::uint32_t>(shard_members.size()));
  for (const ShardMember& sm : shard_members) {
    w.PutU32(sm.agent_ip);
    w.PutU32(sm.pod);
    w.PutString(sm.image_path);
    w.PutU8(sm.restore_source);
    w.PutU32(static_cast<std::uint32_t>(sm.replicas.size()));
    for (const ckpt::Replica& rep : sm.replicas) {
      w.PutU8(static_cast<std::uint8_t>(rep.tier));
      w.PutU32(rep.node_index);
      w.PutU64(rep.size);
      w.PutU32(rep.crc32);
    }
  }
  w.PutU64(static_cast<std::uint64_t>(op_timeout));
  w.PutU32(member_total);
  return w.Take();
}

CoordMessage CoordMessage::Decode(cruz::ByteSpan wire) {
  cruz::ByteReader r(wire);
  CoordMessage m;
  std::uint8_t type = r.GetU8();
  if (type < 1 || type > static_cast<std::uint8_t>(MsgType::kPageResponse)) {
    throw cruz::CodecError("invalid coordination message type");
  }
  m.type = static_cast<MsgType>(type);
  m.op_id = r.GetU64();
  m.epoch = r.GetU64();
  m.pod_id = r.GetU32();
  std::uint8_t variant = r.GetU8();
  if (variant > static_cast<std::uint8_t>(ProtocolVariant::kFlushBaseline)) {
    throw cruz::CodecError("invalid protocol variant");
  }
  m.variant = static_cast<ProtocolVariant>(variant);
  m.image_path = r.GetString();
  m.incremental = r.GetBool();
  m.copy_on_write = r.GetBool();
  m.compress = r.GetBool();
  m.local_duration = r.GetU64();
  m.downtime = r.GetU64();
  m.extra_messages = r.GetU32();
  m.sender_index = r.GetU32();
  m.corr_seq = r.GetU32();
  std::uint32_t n = r.GetU32();
  for (std::uint32_t i = 0; i < n; ++i) m.peers.push_back(r.GetU32());
  m.tiered = r.GetBool();
  m.restore_source = r.GetU8();
  std::uint32_t replicas = r.GetU32();
  for (std::uint32_t i = 0; i < replicas; ++i) {
    ckpt::Replica rep;
    rep.tier = static_cast<ckpt::Tier>(r.GetU8());
    rep.node_index = r.GetU32();
    rep.size = r.GetU64();
    rep.crc32 = r.GetU32();
    m.replicas.push_back(rep);
  }
  std::uint32_t members = r.GetU32();
  for (std::uint32_t i = 0; i < members; ++i) {
    ShardMember sm;
    sm.agent_ip = r.GetU32();
    sm.pod = r.GetU32();
    sm.image_path = r.GetString();
    sm.restore_source = r.GetU8();
    std::uint32_t reps = r.GetU32();
    for (std::uint32_t j = 0; j < reps; ++j) {
      ckpt::Replica rep;
      rep.tier = static_cast<ckpt::Tier>(r.GetU8());
      rep.node_index = r.GetU32();
      rep.size = r.GetU64();
      rep.crc32 = r.GetU32();
      sm.replicas.push_back(rep);
    }
    m.shard_members.push_back(sm);
  }
  m.op_timeout = static_cast<DurationNs>(r.GetU64());
  m.member_total = r.GetU32();
  return m;
}

std::vector<CoordMessage> FragmentRoster(const CoordMessage& full) {
  std::vector<CoordMessage> out;
  if (full.shard_members.empty()) {
    out.push_back(full);
    return out;
  }
  // Greedy byte-budget packing: per member the wire cost is ~17 bytes of
  // fixed fields plus the image path plus 17 per replica; 1200 bytes of
  // roster leaves ample room for the fixed message fields under the
  // 1500-byte MTU. A single member always fits.
  constexpr std::size_t kRosterBytesPerDatagram = 1200;
  const std::uint32_t total =
      static_cast<std::uint32_t>(full.shard_members.size());
  std::size_t i = 0;
  while (i < full.shard_members.size()) {
    CoordMessage frag = full;
    frag.shard_members.clear();
    frag.member_total = total;
    std::size_t bytes = 0;
    while (i < full.shard_members.size()) {
      const ShardMember& sm = full.shard_members[i];
      std::size_t cost =
          17 + sm.image_path.size() + 17 * sm.replicas.size();
      if (!frag.shard_members.empty() &&
          bytes + cost > kRosterBytesPerDatagram) {
        break;
      }
      bytes += cost;
      frag.shard_members.push_back(sm);
      ++i;
    }
    out.push_back(std::move(frag));
  }
  return out;
}

}  // namespace cruz::coord
