#include "coord/agent.h"

#include "common/error.h"
#include "common/log.h"
#include "sim/simulator.h"

namespace cruz::coord {

namespace {
// Local operation cost model (gigahertz-era machine, per paper §6).
constexpr DurationNs kFilterConfigCost = 10 * kMicrosecond;
constexpr DurationNs kPerProcessStopCost = 20 * kMicrosecond;
constexpr DurationNs kPerProcessResumeCost = 10 * kMicrosecond;
constexpr std::uint64_t kSerializeBytesPerSec = 1 * kGiB;
// Flush baseline: per-channel drain time before acking a marker.
constexpr DurationNs kChannelDrainCost = 200 * kMicrosecond;
}  // namespace

CheckpointAgent::CheckpointAgent(os::Node& node, pod::PodManager& pods)
    : node_(node), pods_(pods) {
  node_.stack().RegisterUdpService(
      kAgentPort, [this](net::Endpoint from, const cruz::Bytes& payload) {
        OnDatagram(from, payload);
      });
}

CheckpointAgent::~CheckpointAgent() {
  node_.stack().UnregisterUdpService(kAgentPort);
}

void CheckpointAgent::Send(net::Endpoint to, CoordMessage m) {
  net::UdpDatagram dgram;
  dgram.src_port = kAgentPort;
  dgram.dst_port = to.port;
  dgram.payload = m.Encode();
  net::Ipv4Packet pkt;
  pkt.src = node_.ip();  // node address, never the pod's (footnote 4)
  pkt.dst = to.ip;
  pkt.proto = net::IpProto::kUdp;
  pkt.payload = dgram.Encode();
  node_.stack().SendIpv4(std::move(pkt));
}

void CheckpointAgent::OnDatagram(net::Endpoint from,
                                 const cruz::Bytes& payload) {
  CoordMessage m;
  try {
    m = CoordMessage::Decode(payload);
  } catch (const cruz::CodecError&) {
    return;
  }
  switch (m.type) {
    case MsgType::kCheckpoint:
      HandleCheckpoint(m, from);
      break;
    case MsgType::kRestart:
      HandleRestart(m, from);
      break;
    case MsgType::kContinue:
      HandleContinue(m);
      break;
    case MsgType::kAbort:
      HandleAbort(m);
      break;
    case MsgType::kFlushMarker:
      HandleFlushMarker(m, from);
      break;
    case MsgType::kFlushAck:
      HandleFlushAck(m);
      break;
    default:
      break;
  }
}

void CheckpointAgent::InstallDropFilter(net::Ipv4Address pod_ip) {
  op_.filter_id = node_.stack().AddFilter(
      [pod_ip](const net::Ipv4Packet& pkt) {
        return pkt.src == pod_ip || pkt.dst == pod_ip;
      });
}

void CheckpointAgent::RemoveDropFilter() {
  if (op_.filter_id != 0) {
    node_.stack().RemoveFilter(op_.filter_id);
    op_.filter_id = 0;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

void CheckpointAgent::HandleCheckpoint(const CoordMessage& m,
                                       net::Endpoint from) {
  if (op_active_) {
    // Duplicate of the in-flight request (coordinator retransmission):
    // re-send any reply the coordinator may have missed.
    if (m.op_id == op_.op_id && op_.done_sent) {
      Send(op_.coordinator, last_done_reply_);
    }
    return;  // one coordinated operation at a time
  }
  if (m.op_id == last_completed_op_) {
    // Fully served already; the coordinator lost our replies.
    Send(from, last_done_reply_);
    Send(from, last_continue_done_reply_);
    return;
  }
  op_ = ActiveOp{};
  op_active_ = true;
  op_.op_id = m.op_id;
  op_.pod = m.pod_id;
  op_.variant = m.variant;
  op_.coordinator = from;
  op_.started = node_.os().sim().Now();
  op_.pending_request = m;

  if (m.variant == ProtocolVariant::kFlushBaseline && !m.peers.empty()) {
    // Baseline: flush every channel with markers before checkpointing —
    // the O(N²) step Cruz eliminates.
    for (std::uint32_t peer : m.peers) {
      if (net::Ipv4Address{peer} == node_.ip()) continue;
      CoordMessage marker;
      marker.type = MsgType::kFlushMarker;
      marker.op_id = m.op_id;
      marker.sender_index = node_.ip().value;
      Send(net::Endpoint{net::Ipv4Address{peer}, kAgentPort}, marker);
      ++op_.flush_messages;
      op_.flush_acks_pending.insert(peer);
    }
    if (!op_.flush_acks_pending.empty()) {
      return;  // StartLocalCheckpoint resumes once all acks are in
    }
  }
  StartLocalCheckpoint(m);
}

void CheckpointAgent::StartLocalCheckpoint(const CoordMessage& m) {
  pod::Pod* pod = pods_.Find(m.pod_id);
  if (pod == nullptr) {
    CRUZ_WARN("agent") << node_.name() << ": checkpoint for unknown pod "
                       << m.pod_id;
    op_active_ = false;
    return;
  }
  // Step 1: configure the packet filter (Cruz protocol; the flush baseline
  // has already drained channels and does not need it, but stopping the
  // pod still requires isolation, so both install it).
  InstallDropFilter(pod->ip);

  // Step 2: stop the pod's processes and take the local checkpoint. The
  // state snapshot happens now; the durations below model how long the
  // real extraction and disk write take.
  ckpt::CaptureOptions capture;
  auto previous = last_image_.find(m.pod_id);
  if (m.incremental && previous != last_image_.end()) {
    capture.incremental = true;
    capture.parent_image = previous->second.first;
    capture.generation = previous->second.second + 1;
  }
  ckpt::CaptureStats stats;
  ckpt::PodCheckpoint ck =
      ckpt::CheckpointEngine::CapturePod(pods_, m.pod_id, capture, &stats);
  cruz::Bytes image = ck.Serialize();
  std::uint64_t image_bytes = image.size();
  node_.os().fs().WriteFile(m.image_path, std::move(image));
  last_image_[m.pod_id] = {m.image_path, capture.generation};

  DurationNs capture_cost = kFilterConfigCost +
                            stats.processes * kPerProcessStopCost +
                            stats.network_lock_hold;
  DurationNs local =
      capture_cost + image_bytes * kSecond / kSerializeBytesPerSec +
      node_.DiskWriteDuration(image_bytes);
  op_.local_duration = local;
  ++checkpoints_served_;

  // Copy-on-write (§5.2): the state is snapshotted in memory; the pod may
  // resume as soon as the capture itself is done, while the serialization
  // and disk write proceed in the background.
  if (m.copy_on_write) {
    std::uint64_t cow_op = op_.op_id;
    node_.os().sim().Schedule(capture_cost, [this, cow_op] {
      if (!op_active_ || op_.op_id != cow_op) return;
      op_.resume_ready = true;
      MaybeResume();
    });
  }

  // Fig. 4 optimization: announce communication-disabled immediately so
  // the coordinator can grant early resume permission.
  if (op_.variant == ProtocolVariant::kOptimized) {
    CoordMessage disabled;
    disabled.type = MsgType::kCommDisabled;
    disabled.op_id = op_.op_id;
    disabled.pod_id = op_.pod;
    Send(op_.coordinator, disabled);
  }

  // Step 3: <done> once the local checkpoint (dominated by the disk
  // write) completes.
  std::uint64_t op_id = op_.op_id;
  node_.os().sim().Schedule(local, [this, op_id] {
    if (!op_active_ || op_.op_id != op_id) return;
    op_.save_done = true;
    op_.resume_ready = true;
    op_.done_sent = true;
    CoordMessage done;
    done.type = MsgType::kDone;
    done.op_id = op_.op_id;
    done.pod_id = op_.pod;
    done.local_duration = op_.local_duration;
    done.extra_messages = op_.flush_messages;
    last_done_reply_ = done;
    Send(op_.coordinator, done);
    MaybeResume();
    MaybeFinishOp();
  });
}

// ---------------------------------------------------------------------------
// Restart
// ---------------------------------------------------------------------------

void CheckpointAgent::HandleRestart(const CoordMessage& m,
                                    net::Endpoint from) {
  if (op_active_) {
    if (m.op_id == op_.op_id && op_.done_sent) {
      Send(op_.coordinator, last_done_reply_);
    }
    return;
  }
  if (m.op_id == last_completed_op_) {
    Send(from, last_done_reply_);
    Send(from, last_continue_done_reply_);
    return;
  }
  // Total bytes read from the shared FS: the image plus any incremental
  // parents the chain resolves through (restore cost model).
  std::uint64_t chain_bytes = 0;
  {
    std::string link = m.image_path;
    for (;;) {
      SysResult size = node_.os().fs().FileSize(link);
      if (!SysOk(size)) break;
      chain_bytes += static_cast<std::uint64_t>(size);
      cruz::Bytes raw;
      node_.os().fs().ReadFile(link, raw);
      ckpt::PodCheckpoint peek = ckpt::PodCheckpoint::Deserialize(raw);
      if (!peek.incremental) break;
      link = peek.parent_image;
    }
  }
  ckpt::PodCheckpoint ck;
  try {
    ck = ckpt::CheckpointEngine::LoadImageChain(node_.os().fs(),
                                                m.image_path);
  } catch (const cruz::CruzError& e) {
    CRUZ_WARN("agent") << node_.name() << ": restart failed: " << e.what();
    return;
  }

  op_ = ActiveOp{};
  op_active_ = true;
  op_.op_id = m.op_id;
  op_.pod = ck.pod_id;
  op_.variant = m.variant;
  op_.is_restart = true;
  op_.coordinator = from;
  op_.started = node_.os().sim().Now();

  // Communication is disabled as the FIRST step of restart, before any
  // state is restored: restored TCP state must not transmit until all
  // pods are restored (paper §5).
  InstallDropFilter(ck.ip);

  DurationNs local = kFilterConfigCost +
                     node_.DiskReadDuration(chain_bytes) +
                     chain_bytes * kSecond / kSerializeBytesPerSec;
  op_.local_duration = local;
  ++restarts_served_;

  std::uint64_t op_id = m.op_id;
  node_.os().sim().Schedule(local, [this, op_id, ck = std::move(ck)] {
    if (!op_active_ || op_.op_id != op_id) return;
    // Restore at the end of the load window; the §4.1 send-buffer replay
    // fires here, against the still-installed drop filter.
    ckpt::CheckpointEngine::RestorePod(pods_, ck);
    op_.save_done = true;
    op_.resume_ready = true;
    op_.done_sent = true;
    CoordMessage done;
    done.type = MsgType::kDone;
    done.op_id = op_.op_id;
    done.pod_id = op_.pod;
    done.local_duration = op_.local_duration;
    last_done_reply_ = done;
    Send(op_.coordinator, done);
    MaybeResume();
    MaybeFinishOp();
  });
}

// ---------------------------------------------------------------------------
// Continue / abort / resume
// ---------------------------------------------------------------------------

void CheckpointAgent::HandleContinue(const CoordMessage& m) {
  if (!op_active_) {
    // The op already completed but our <continue-done> was lost; the
    // coordinator is retransmitting <continue>. Re-send the reply.
    if (m.op_id == last_completed_op_) {
      Send(last_coordinator_, last_continue_done_reply_);
    }
    return;
  }
  if (m.op_id != op_.op_id) return;
  op_.continue_received = true;
  MaybeResume();
}

void CheckpointAgent::MaybeResume() {
  // Blocking protocol: resume on <continue> (which the coordinator only
  // sends after all <done>s). Optimized protocol: <continue> arrives as
  // soon as communication is disabled everywhere; the agent additionally
  // waits until it is locally safe to resume — after the save (Fig. 4),
  // or already after the in-memory capture with copy-on-write.
  if (!op_active_ || op_.resumed) return;
  if (!op_.continue_received || !op_.resume_ready) return;
  op_.resumed = true;

  ckpt::CheckpointEngine::ResumePod(pods_, op_.pod);
  RemoveDropFilter();
  DurationNs resume_cost =
      kFilterConfigCost +
      pods_.node().os().PodProcesses(op_.pod).size() * kPerProcessResumeCost;

  std::uint64_t op_id = op_.op_id;
  node_.os().sim().Schedule(resume_cost, [this, op_id, resume_cost] {
    if (!op_active_ || op_.op_id != op_id) return;
    op_.continue_done_sent = true;
    CoordMessage done;
    done.type = MsgType::kContinueDone;
    done.op_id = op_id;
    done.pod_id = op_.pod;
    done.local_duration = resume_cost;
    last_continue_done_reply_ = done;
    last_coordinator_ = op_.coordinator;
    Send(op_.coordinator, done);
    MaybeFinishOp();
  });
}

void CheckpointAgent::MaybeFinishOp() {
  // The operation is over once both replies are out; with copy-on-write
  // the <continue-done> can precede the <done>.
  if (op_active_ && op_.done_sent && op_.continue_done_sent) {
    last_completed_op_ = op_.op_id;
    op_active_ = false;
  }
}

void CheckpointAgent::HandleAbort(const CoordMessage& m) {
  if (!op_active_ || m.op_id != op_.op_id) return;
  // Cancel: resume the pod as if nothing happened (checkpoint data on the
  // shared FS is the coordinator's to clean up).
  ckpt::CheckpointEngine::ResumePod(pods_, op_.pod);
  RemoveDropFilter();
  op_active_ = false;
}

// ---------------------------------------------------------------------------
// Flush baseline (CoCheck/MPVM style)
// ---------------------------------------------------------------------------

void CheckpointAgent::HandleFlushMarker(const CoordMessage& m,
                                        net::Endpoint from) {
  // Model draining the channel from the marker's sender, then ack.
  CoordMessage ack;
  ack.type = MsgType::kFlushAck;
  ack.op_id = m.op_id;
  ack.sender_index = node_.ip().value;
  node_.os().sim().Schedule(kChannelDrainCost, [this, from, ack] {
    Send(from, ack);
  });
  if (op_active_) ++op_.flush_messages;
}

void CheckpointAgent::HandleFlushAck(const CoordMessage& m) {
  if (!op_active_ || m.op_id != op_.op_id) return;
  op_.flush_acks_pending.erase(m.sender_index);
  if (op_.flush_acks_pending.empty() && op_.pending_request.has_value()) {
    CoordMessage request = *op_.pending_request;
    op_.pending_request.reset();
    StartLocalCheckpoint(request);
  }
}

}  // namespace cruz::coord
