#include "coord/agent.h"

#include "ckpt/generation.h"
#include "ckpt/store/tiered_store.h"
#include "common/error.h"
#include "common/log.h"
#include "sim/simulator.h"

namespace cruz::coord {

namespace {
// Local operation cost model (gigahertz-era machine, per paper §6).
constexpr DurationNs kFilterConfigCost = 10 * kMicrosecond;
constexpr DurationNs kPerProcessStopCost = 20 * kMicrosecond;
constexpr DurationNs kPerProcessResumeCost = 10 * kMicrosecond;
constexpr std::uint64_t kSerializeBytesPerSec = 1 * kGiB;
// Flush baseline: per-channel drain time before acking a marker.
constexpr DurationNs kChannelDrainCost = 200 * kMicrosecond;

bool IsCoordinatorRequest(MsgType type) {
  switch (type) {
    case MsgType::kCheckpoint:
    case MsgType::kRestart:
    case MsgType::kContinue:
    case MsgType::kAbort:
    case MsgType::kPing:
      return true;
    default:
      return false;
  }
}
}  // namespace

CheckpointAgent::CheckpointAgent(os::Node& node, pod::PodManager& pods)
    : node_(node), pods_(pods) {
  node_.stack().RegisterUdpService(
      kAgentPort, [this](net::Endpoint from, const cruz::Bytes& payload) {
        OnDatagram(from, payload);
      });
}

CheckpointAgent::~CheckpointAgent() {
  node_.stack().UnregisterUdpService(kAgentPort);
}

void CheckpointAgent::EndOpSpans(const char* outcome) {
  obs::Tracer& tracer = node_.os().sim().tracer();
  std::vector<std::pair<std::string, std::string>> args = {
      {"outcome", outcome}};
  tracer.EndSpan(op_.save_span, args);
  op_.save_span = obs::kInvalidSpanId;
  tracer.EndSpan(op_.downtime_span, args);
  op_.downtime_span = obs::kInvalidSpanId;
  tracer.EndSpan(op_.continue_span, args);
  op_.continue_span = obs::kInvalidSpanId;
}

void CheckpointAgent::Crash() {
  if (crashed_) return;
  crashed_ = true;
  EndOpSpans("agent-crash");
  node_.os().sim().tracer().Instant(
      "agent", "agent.crash", obs::TraceAttrs{}.Agent(node_.name()));
  CRUZ_WARN("agent") << node_.name() << ": agent process CRASHED";
}

void CheckpointAgent::Reset() {
  crashed_ = false;
  if (op_active_) {
    // Recover the wreckage of the interrupted op: the pod may be stopped
    // behind a drop filter, and a checkpoint may have left a partial
    // image that will never be committed.
    EndOpSpans("agent-reset");
    ckpt::CheckpointEngine::ResumePod(pods_, op_.pod);
    RemoveDropFilter();
    if (!op_.is_restart && op_.image_written) {
      DiscardCheckpointImage(op_.pod, op_.image_path);
    }
    op_active_ = false;
  }
  op_ = ActiveOp{};
  // Volatile agent state does not survive a process restart.
  max_epoch_seen_ = 0;
  last_image_.clear();
  last_completed_op_ = 0;
  last_aborted_op_ = 0;
  last_completed_was_checkpoint_ = false;
  last_completed_pod_ = os::kNoPod;
  last_completed_image_path_.clear();
  CRUZ_INFO("agent") << node_.name() << ": agent process restarted";
}

void CheckpointAgent::Send(net::Endpoint to, CoordMessage m) {
  // Correlate before the fault layer decides the message's fate: a
  // dropped transmission must still leave a send instant (that is what
  // makes the loss visible as an unmatched causal edge), and a wire-level
  // duplicate shares the corr id (two recvs joining one send).
  m.corr_seq = ++next_corr_seq_;
  node_.os().sim().tracer().Instant(
      "agent", "agent.msg.send",
      obs::TraceAttrs{}
          .Op(m.op_id)
          .Agent(node_.name())
          .Arg("type", MsgTypeName(m.type))
          .Arg("corr", CorrId(m, node_.ip().ToString()))
          .Arg("dst", to.ip.ToString()));
  fault::MessageFate fate;
  if (fault_ != nullptr) {
    fate = fault_->OnControlSend(node_.name(), to.ip.value,
                                 static_cast<std::uint8_t>(m.type));
  }
  if (fate.drop) return;

  net::UdpDatagram dgram;
  dgram.src_port = kAgentPort;
  dgram.dst_port = to.port;
  dgram.payload = m.Encode();
  net::Ipv4Packet pkt;
  pkt.src = node_.ip();  // node address, never the pod's (footnote 4)
  pkt.dst = to.ip;
  pkt.proto = net::IpProto::kUdp;
  pkt.payload = dgram.Encode();
  int copies = fate.duplicate ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    if (fate.delay > 0) {
      node_.os().sim().Schedule(fate.delay, [this, pkt] {
        node_.stack().SendIpv4(pkt);
      });
    } else {
      node_.stack().SendIpv4(pkt);
    }
  }
}

void CheckpointAgent::OnDatagram(net::Endpoint from,
                                 const cruz::Bytes& payload) {
  if (crashed_) return;  // a dead agent process hears nothing
  CoordMessage m;
  try {
    m = CoordMessage::Decode(payload);
  } catch (const cruz::CodecError&) {
    return;
  }
  // Receive instant first — even a message that crashes the agent below
  // was delivered, and the flight recorder wants that edge on record.
  {
    obs::TraceAttrs attrs;
    attrs.Op(m.op_id).Agent(node_.name()).Arg("type", MsgTypeName(m.type));
    if (m.corr_seq != 0) {
      attrs.Arg("corr", CorrId(m, from.ip.ToString()));
    }
    attrs.Arg("src", from.ip.ToString());
    node_.os().sim().tracer().Instant("agent", "agent.msg.recv",
                                      std::move(attrs));
  }
  if (fault_ != nullptr &&
      fault_->CrashAgentOnMessage(node_.name(),
                                  static_cast<std::uint8_t>(m.type))) {
    Crash();
    return;
  }
  // Epoch fencing: requests below the observed high-water mark come from
  // a dead coordinator incarnation or a long-delayed duplicate; acting on
  // them could roll the pod back under a newer op. Drop silently.
  if (IsCoordinatorRequest(m.type)) {
    if (m.epoch < max_epoch_seen_) {
      CRUZ_WARN("agent") << node_.name() << ": fenced stale "
                         << static_cast<int>(m.type) << " (epoch "
                         << m.epoch << " < " << max_epoch_seen_ << ")";
      return;
    }
    max_epoch_seen_ = m.epoch;
  }
  switch (m.type) {
    case MsgType::kCheckpoint:
      HandleCheckpoint(m, from);
      break;
    case MsgType::kRestart:
      HandleRestart(m, from);
      break;
    case MsgType::kContinue:
      HandleContinue(m);
      break;
    case MsgType::kAbort:
      HandleAbort(m);
      break;
    case MsgType::kPing:
      HandlePing(m, from);
      break;
    case MsgType::kFlushMarker:
      HandleFlushMarker(m, from);
      break;
    case MsgType::kFlushAck:
      HandleFlushAck(m);
      break;
    default:
      break;
  }
}

void CheckpointAgent::InstallDropFilter(net::Ipv4Address pod_ip) {
  if (!test_skip_filter_) {
    op_.filter_id = node_.stack().AddFilter(
        [pod_ip](const net::Ipv4Packet& pkt) {
          return pkt.src == pod_ip || pkt.dst == pod_ip;
        });
  }
  node_.os().sim().tracer().Instant(
      "agent", "agent.filter.install",
      obs::TraceAttrs{}.Op(op_.op_id).Agent(node_.name()).Pod(op_.pod));
}

void CheckpointAgent::RemoveDropFilter() {
  if (op_.filter_id != 0) {
    node_.stack().RemoveFilter(op_.filter_id);
    op_.filter_id = 0;
    node_.os().sim().tracer().Instant(
        "agent", "agent.filter.remove",
        obs::TraceAttrs{}.Op(op_.op_id).Agent(node_.name()).Pod(op_.pod));
  }
}

void CheckpointAgent::FailLocalOp(net::Endpoint coordinator,
                                  const CoordMessage& m, const char* why) {
  CRUZ_WARN("agent") << node_.name() << ": op " << m.op_id
                     << " failed locally: " << why;
  node_.os().sim().tracer().Instant(
      "agent", "agent.failed",
      obs::TraceAttrs{}.Op(m.op_id).Agent(node_.name()).Pod(m.pod_id).Arg(
          "why", why));
  node_.os().sim().metrics().counter("agent.local_failures_total").Add();
  CoordMessage failed;
  failed.type = MsgType::kFailed;
  failed.op_id = m.op_id;
  failed.epoch = m.epoch;
  failed.pod_id = m.pod_id;
  Send(coordinator, failed);
}

void CheckpointAgent::DiscardCheckpointImage(os::PodId pod,
                                             const std::string& path) {
  if (!path.empty()) {
    node_.os().fs().Remove(path);
    // Tiered mode: the image may also live on the local and partner
    // disks, with a netfs flush still pending — reap every tier so an
    // aborted op leaves zero orphan bytes anywhere.
    if (tiered_ != nullptr) tiered_->RemoveEverywhere(path);
  }
  // The deleted image may be the head of this pod's incremental chain;
  // force the next capture to be full rather than referencing it.
  last_image_.erase(pod);
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

void CheckpointAgent::HandleCheckpoint(const CoordMessage& m,
                                       net::Endpoint from) {
  if (op_active_) {
    // Duplicate of the in-flight request (coordinator retransmission):
    // re-send any reply the coordinator may have missed.
    if (m.op_id == op_.op_id && op_.done_sent) {
      Send(op_.coordinator, last_done_reply_);
    }
    return;  // one coordinated operation at a time
  }
  if (m.op_id == last_completed_op_) {
    // Fully served already; the coordinator lost our replies.
    Send(from, last_done_reply_);
    Send(from, last_continue_done_reply_);
    return;
  }
  if (m.op_id == last_aborted_op_) {
    // The op's <abort> overtook this delayed request; serving it now
    // would freeze the pod for an op nobody is coordinating.
    return;
  }
  op_ = ActiveOp{};
  op_active_ = true;
  op_.op_id = m.op_id;
  op_.epoch = m.epoch;
  op_.pod = m.pod_id;
  op_.variant = m.variant;
  op_.coordinator = from;
  op_.started = node_.os().sim().Now();
  op_.pending_request = m;
  if (early_flush_op_ == m.op_id && early_flush_messages_ > 0) {
    op_.flush_messages += early_flush_messages_;
    early_flush_messages_ = 0;
  }

  if (m.variant == ProtocolVariant::kFlushBaseline && !m.peers.empty()) {
    // Baseline: flush every channel with markers before checkpointing —
    // the O(N²) step Cruz eliminates.
    for (std::uint32_t peer : m.peers) {
      if (net::Ipv4Address{peer} == node_.ip()) continue;
      CoordMessage marker;
      marker.type = MsgType::kFlushMarker;
      marker.op_id = m.op_id;
      marker.epoch = m.epoch;
      marker.sender_index = node_.ip().value;
      Send(net::Endpoint{net::Ipv4Address{peer}, kAgentPort}, marker);
      ++op_.flush_messages;
      op_.flush_acks_pending.insert(peer);
    }
    if (!op_.flush_acks_pending.empty()) {
      return;  // StartLocalCheckpoint resumes once all acks are in
    }
  }
  StartLocalCheckpoint(m);
}

void CheckpointAgent::StartLocalCheckpoint(const CoordMessage& m) {
  pod::Pod* pod = pods_.Find(m.pod_id);
  if (pod == nullptr) {
    CRUZ_WARN("agent") << node_.name() << ": checkpoint for unknown pod "
                       << m.pod_id;
    net::Endpoint coordinator = op_.coordinator;
    op_active_ = false;
    FailLocalOp(coordinator, m, "unknown pod");
    return;
  }
  // A pod mid post-copy migration still has demand-paged (missing)
  // pages; its memory cannot be snapshotted until the residue arrives.
  // Fail the op cleanly instead of capturing a hole-filled image.
  for (os::Pid pid : node_.os().PodProcesses(m.pod_id)) {
    os::Process* proc = node_.os().FindProcess(pid);
    if (proc != nullptr && proc->memory().HasMissingPages()) {
      net::Endpoint coordinator = op_.coordinator;
      op_active_ = false;
      FailLocalOp(coordinator, m, "pod is demand-paging (migration)");
      return;
    }
  }
  // Step 1: configure the packet filter (Cruz protocol; the flush baseline
  // has already drained channels and does not need it, but stopping the
  // pod still requires isolation, so both install it).
  InstallDropFilter(pod->ip);

  // Step 2: stop the pod's processes and take the local checkpoint. The
  // state snapshot happens now; the durations below model how long the
  // real extraction and disk write take.
  ckpt::CaptureOptions capture;
  auto previous = last_image_.find(m.pod_id);
  if (m.incremental && previous != last_image_.end()) {
    capture.incremental = true;
    capture.parent_image = previous->second.first;
    capture.generation = previous->second.second + 1;
  }
  if (m.copy_on_write) {
    // Forked checkpoint (§5.2): snapshot now, write out in the background
    // after the pod has resumed.
    StartForkedCheckpoint(m, capture);
    return;
  }
  ckpt::CaptureStats stats;
  ckpt::PodCheckpoint ck =
      ckpt::CheckpointEngine::CapturePod(pods_, m.pod_id, capture, &stats);
  cruz::Bytes image = ck.Serialize(m.compress);
  std::uint64_t image_bytes = image.size();
  obs::Tracer& tracer = node_.os().sim().tracer();
  op_.save_span = tracer.BeginSpan(
      "agent", "agent.save",
      obs::TraceAttrs{}
          .Op(op_.op_id)
          .Phase("save")
          .Agent(node_.name())
          .Pod(op_.pod)
          .Arg("mode", "stop-the-world")
          .Arg("state_bytes", stats.state_bytes)
          .Arg("pages", stats.snapshot_pages)
          .Arg("image_bytes", image_bytes));
  op_.downtime_span = tracer.BeginSpan(
      "agent", "agent.downtime",
      obs::TraceAttrs{}
          .Op(op_.op_id)
          .Phase("downtime")
          .Agent(node_.name())
          .Pod(op_.pod));
  if (fault_ != nullptr && fault_->FailImageWrite(node_.name(),
                                                  m.image_path)) {
    // Disk write error: the local checkpoint cannot complete. Resume the
    // pod (its in-memory state is untouched), invalidate the incremental
    // baseline (dirty bits were consumed by the capture), and tell the
    // coordinator to abort.
    EndOpSpans("save-failed");
    ckpt::CheckpointEngine::ResumePod(pods_, m.pod_id);
    RemoveDropFilter();
    last_image_.erase(m.pod_id);
    net::Endpoint coordinator = op_.coordinator;
    op_active_ = false;
    FailLocalOp(coordinator, m, "image write I/O error");
    return;
  }
  if (fault_ != nullptr) {
    // Silent media corruption: the write "succeeds" but the stored bytes
    // differ. Only the CRC check on restore/verify can catch this.
    fault_->MaybeCorruptImage(node_.name(), m.image_path, image);
  }
  DurationNs write_duration = node_.DiskWriteDuration(image_bytes);
  if (m.tiered && tiered_ != nullptr) {
    // Tiered commit: local + partner disks now (write_duration becomes
    // the max of the two tier costs), netfs flush in the background.
    SysResult w = tiered_->CommitImage(node_, m.image_path,
                                       std::move(image), &op_.replicas,
                                       &write_duration);
    if (!SysOk(w)) {
      EndOpSpans("save-failed");
      ckpt::CheckpointEngine::ResumePod(pods_, m.pod_id);
      RemoveDropFilter();
      last_image_.erase(m.pod_id);
      net::Endpoint coordinator = op_.coordinator;
      op_active_ = false;
      FailLocalOp(coordinator, m, "no storage tier accepted image");
      return;
    }
  } else {
    SysResult w = node_.os().fs().WriteFile(m.image_path, image);
    // Shared-FS full: evict the oldest non-latest committed generation
    // and retry instead of failing the checkpoint.
    while (SysErrno(w) == CRUZ_ENOSPC &&
           ckpt::GenerationStore::EvictForSpace(node_.os().fs(),
                                               m.image_path)) {
      w = node_.os().fs().WriteFile(m.image_path, image);
    }
    if (!SysOk(w)) {
      EndOpSpans("save-failed");
      ckpt::CheckpointEngine::ResumePod(pods_, m.pod_id);
      RemoveDropFilter();
      last_image_.erase(m.pod_id);
      net::Endpoint coordinator = op_.coordinator;
      op_active_ = false;
      FailLocalOp(coordinator, m,
                  SysErrno(w) == CRUZ_ENOSPC ? "disk full"
                                             : "image write refused");
      return;
    }
  }
  op_.image_path = m.image_path;
  op_.image_written = true;
  last_image_[m.pod_id] = {m.image_path, capture.generation};

  obs::MetricsRegistry& metrics = node_.os().sim().metrics();
  metrics.counter("ckpt.images_written_total").Add();
  metrics.counter("ckpt.image_bytes_total").Add(image_bytes);
  if (stats.state_bytes > 0) {
    metrics.gauge("ckpt.codec_ratio")
        .Set(static_cast<double>(image_bytes) /
             static_cast<double>(stats.state_bytes));
  }

  DurationNs capture_cost = kFilterConfigCost +
                            stats.processes * kPerProcessStopCost +
                            stats.network_lock_hold;
  DurationNs local = capture_cost +
                     image_bytes * kSecond / kSerializeBytesPerSec +
                     write_duration;
  op_.local_duration = local;
  // Stop-the-world: the pod stays stopped for the entire local save.
  op_.downtime = local;
  ++checkpoints_served_;

  // Fig. 4 optimization: announce communication-disabled immediately so
  // the coordinator can grant early resume permission.
  if (op_.variant == ProtocolVariant::kOptimized) {
    CoordMessage disabled;
    disabled.type = MsgType::kCommDisabled;
    disabled.op_id = op_.op_id;
    disabled.epoch = op_.epoch;
    disabled.pod_id = op_.pod;
    Send(op_.coordinator, disabled);
    node_.os().sim().tracer().Instant(
        "agent", "agent.comm_disabled",
        obs::TraceAttrs{}.Op(op_.op_id).Agent(node_.name()).Pod(op_.pod));
  }

  // Step 3: <done> once the local checkpoint (dominated by the disk
  // write) completes.
  std::uint64_t op_id = op_.op_id;
  node_.os().sim().Schedule(local, [this, op_id] {
    if (crashed_ || !op_active_ || op_.op_id != op_id) return;
    op_.save_done = true;
    op_.resume_ready = true;
    op_.done_sent = true;
    obs::Tracer& tracer = node_.os().sim().tracer();
    tracer.EndSpan(op_.save_span, {{"outcome", "ok"}});
    op_.save_span = obs::kInvalidSpanId;
    tracer.EndSpan(op_.downtime_span);
    op_.downtime_span = obs::kInvalidSpanId;
    obs::MetricsRegistry& metrics = node_.os().sim().metrics();
    metrics.histogram("agent.save_us").Record(op_.local_duration /
                                              kMicrosecond);
    metrics.histogram("agent.downtime_us").Record(op_.downtime /
                                                  kMicrosecond);
    CoordMessage done;
    done.type = MsgType::kDone;
    done.op_id = op_.op_id;
    done.epoch = op_.epoch;
    done.pod_id = op_.pod;
    done.local_duration = op_.local_duration;
    done.downtime = op_.downtime;
    done.extra_messages = op_.flush_messages;
    done.replicas = op_.replicas;
    last_done_reply_ = done;
    Send(op_.coordinator, done);
    MaybeResume();
    MaybeFinishOp();
  });
}

void CheckpointAgent::StartForkedCheckpoint(
    const CoordMessage& m, const ckpt::CaptureOptions& capture) {
  // Stop-the-world phase: kernel state is extracted eagerly, memory is
  // frozen as shared COW page handles — O(page table), not O(image).
  ckpt::CaptureStats stats;
  ckpt::PodSnapshot snap =
      ckpt::CheckpointEngine::SnapshotPod(pods_, m.pod_id, capture, &stats);

  DurationNs capture_cost = kFilterConfigCost +
                            stats.processes * kPerProcessStopCost +
                            stats.network_lock_hold;
  DurationNs serialize_cost =
      stats.state_bytes * kSecond / kSerializeBytesPerSec;
  op_.downtime = capture_cost;
  op_.local_duration = capture_cost + serialize_cost;  // + disk, known later
  ++checkpoints_served_;

  obs::Tracer& tracer = node_.os().sim().tracer();
  op_.save_span = tracer.BeginSpan(
      "agent", "agent.save",
      obs::TraceAttrs{}
          .Op(op_.op_id)
          .Phase("save")
          .Agent(node_.name())
          .Pod(op_.pod)
          .Arg("mode", "copy-on-write")
          .Arg("state_bytes", stats.state_bytes)
          .Arg("pages", stats.snapshot_pages));
  op_.downtime_span = tracer.BeginSpan(
      "agent", "agent.downtime",
      obs::TraceAttrs{}
          .Op(op_.op_id)
          .Phase("downtime")
          .Agent(node_.name())
          .Pod(op_.pod));

  // The pod may resume as soon as the in-memory snapshot exists; its
  // writes from here on hit COW faults instead of the frozen pages.
  std::uint64_t op_id = op_.op_id;
  node_.os().sim().Schedule(capture_cost, [this, op_id] {
    if (crashed_ || !op_active_ || op_.op_id != op_id) return;
    op_.resume_ready = true;
    node_.os().sim().tracer().EndSpan(op_.downtime_span);
    op_.downtime_span = obs::kInvalidSpanId;
    node_.os().sim().metrics().histogram("agent.downtime_us")
        .Record(op_.downtime / kMicrosecond);
    MaybeResume();
  });

  // Fig. 4: announce communication-disabled immediately, so the early
  // resume permission overlaps the background save.
  if (op_.variant == ProtocolVariant::kOptimized) {
    CoordMessage disabled;
    disabled.type = MsgType::kCommDisabled;
    disabled.op_id = op_.op_id;
    disabled.epoch = op_.epoch;
    disabled.pod_id = op_.pod;
    Send(op_.coordinator, disabled);
    node_.os().sim().tracer().Instant(
        "agent", "agent.comm_disabled",
        obs::TraceAttrs{}.Op(op_.op_id).Agent(node_.name()).Pod(op_.pod));
  }

  // Background write-out. Materialization is deferred to the end of the
  // serialize window — by then the pod has typically been running (and
  // writing) for a while, which is exactly what the COW snapshot defends
  // against: the image bytes are still the snapshot-point state.
  bool compress = m.compress;
  bool tiered = m.tiered;
  std::string image_path = m.image_path;
  std::uint32_t generation = capture.generation;
  std::uint64_t state_bytes = stats.state_bytes;
  node_.os().sim().Schedule(
      capture_cost + serialize_cost,
      [this, op_id, snap = std::move(snap), compress, tiered, image_path,
       generation, state_bytes] {
        if (crashed_ || !op_active_ || op_.op_id != op_id) return;
        cruz::Bytes image = snap.Materialize().Serialize(compress);
        std::uint64_t image_bytes = image.size();
        if (fault_ != nullptr) {
          fault_->MaybeCorruptImage(node_.name(), image_path, image);
        }
        // The file appears in storage now but counts as partial until
        // <done> commits it; an abort or crash before then GCs it.
        DurationNs disk = node_.DiskWriteDuration(image_bytes);
        if (tiered && tiered_ != nullptr) {
          SysResult w = tiered_->CommitImage(node_, image_path,
                                             std::move(image),
                                             &op_.replicas, &disk);
          if (!SysOk(w)) {
            EndOpSpans("save-failed");
            DiscardCheckpointImage(op_.pod, image_path);
            if (!op_.resumed) {
              ckpt::CheckpointEngine::ResumePod(pods_, op_.pod);
              RemoveDropFilter();
            }
            CoordMessage request;
            request.op_id = op_.op_id;
            request.epoch = op_.epoch;
            request.pod_id = op_.pod;
            net::Endpoint coordinator = op_.coordinator;
            op_active_ = false;
            FailLocalOp(coordinator, request,
                        "no storage tier accepted image");
            return;
          }
        } else {
          SysResult w = node_.os().fs().WriteFile(image_path, image);
          while (SysErrno(w) == CRUZ_ENOSPC &&
                 ckpt::GenerationStore::EvictForSpace(node_.os().fs(),
                                                     image_path)) {
            w = node_.os().fs().WriteFile(image_path, image);
          }
          if (!SysOk(w)) {
            EndOpSpans("save-failed");
            DiscardCheckpointImage(op_.pod, image_path);
            if (!op_.resumed) {
              ckpt::CheckpointEngine::ResumePod(pods_, op_.pod);
              RemoveDropFilter();
            }
            CoordMessage request;
            request.op_id = op_.op_id;
            request.epoch = op_.epoch;
            request.pod_id = op_.pod;
            net::Endpoint coordinator = op_.coordinator;
            op_active_ = false;
            FailLocalOp(coordinator, request,
                        SysErrno(w) == CRUZ_ENOSPC
                            ? "disk full"
                            : "image write refused");
            return;
          }
        }
        op_.image_path = image_path;
        op_.image_written = true;
        obs::MetricsRegistry& metrics = node_.os().sim().metrics();
        metrics.counter("ckpt.images_written_total").Add();
        metrics.counter("ckpt.image_bytes_total").Add(image_bytes);
        if (state_bytes > 0) {
          metrics.gauge("ckpt.codec_ratio")
              .Set(static_cast<double>(image_bytes) /
                   static_cast<double>(state_bytes));
        }
        op_.local_duration += disk;
        node_.os().sim().Schedule(disk, [this, op_id, image_path,
                                         generation] {
          if (crashed_ || !op_active_ || op_.op_id != op_id) return;
          if (fault_ != nullptr &&
              fault_->FailImageWrite(node_.name(), image_path)) {
            // The background write failed after the pod already resumed:
            // GC the partial image, invalidate the incremental baseline,
            // and fail the op. The previous generation stays latest.
            EndOpSpans("save-failed");
            DiscardCheckpointImage(op_.pod, image_path);
            if (!op_.resumed) {
              ckpt::CheckpointEngine::ResumePod(pods_, op_.pod);
              RemoveDropFilter();
            }
            CoordMessage request;
            request.op_id = op_.op_id;
            request.epoch = op_.epoch;
            request.pod_id = op_.pod;
            net::Endpoint coordinator = op_.coordinator;
            op_active_ = false;
            FailLocalOp(coordinator, request,
                        "background image write I/O error");
            return;
          }
          op_.save_done = true;
          op_.resume_ready = true;
          last_image_[op_.pod] = {image_path, generation};
          op_.done_sent = true;
          node_.os().sim().tracer().EndSpan(op_.save_span,
                                            {{"outcome", "ok"}});
          op_.save_span = obs::kInvalidSpanId;
          node_.os().sim().metrics().histogram("agent.save_us")
              .Record(op_.local_duration / kMicrosecond);
          CoordMessage done;
          done.type = MsgType::kDone;
          done.op_id = op_.op_id;
          done.epoch = op_.epoch;
          done.pod_id = op_.pod;
          done.local_duration = op_.local_duration;
          done.downtime = op_.downtime;
          done.extra_messages = op_.flush_messages;
          done.replicas = op_.replicas;
          last_done_reply_ = done;
          Send(op_.coordinator, done);
          MaybeResume();
          MaybeFinishOp();
        });
      });
}

// ---------------------------------------------------------------------------
// Restart
// ---------------------------------------------------------------------------

void CheckpointAgent::HandleRestart(const CoordMessage& m,
                                    net::Endpoint from) {
  if (op_active_) {
    if (m.op_id == op_.op_id && op_.done_sent) {
      Send(op_.coordinator, last_done_reply_);
    }
    return;
  }
  if (m.op_id == last_completed_op_) {
    Send(from, last_done_reply_);
    Send(from, last_continue_done_reply_);
    return;
  }
  if (m.op_id == last_aborted_op_) {
    return;  // this op's <abort> already arrived; see HandleCheckpoint
  }
  // Tiered mode: read through the tier-resolving view (local → partner →
  // netfs, with rebuild-on-restart), so every link of an incremental
  // chain finds the best intact copy independently. The view memoizes,
  // so the chain walk below and LoadImageChain resolve each path once.
  std::optional<ckpt::TieredReadView> view;
  if (m.tiered && tiered_ != nullptr) {
    view.emplace(*tiered_, &node_);
  }
  os::FileStore& fs =
      view.has_value() ? static_cast<os::FileStore&>(*view)
                       : static_cast<os::FileStore&>(node_.os().fs());
  // Total bytes read from storage: the image plus any incremental
  // parents the chain resolves through (restore cost model).
  std::uint64_t chain_bytes = 0;
  {
    std::string link = m.image_path;
    for (;;) {
      SysResult size = fs.FileSize(link);
      if (!SysOk(size)) break;
      chain_bytes += static_cast<std::uint64_t>(size);
      cruz::Bytes raw;
      fs.ReadFile(link, raw);
      ckpt::PodCheckpoint peek;
      try {
        peek = ckpt::PodCheckpoint::Deserialize(raw);
      } catch (const cruz::CruzError&) {
        break;  // corruption is reported by LoadImageChain below
      }
      if (!peek.incremental) break;
      link = peek.parent_image;
    }
  }
  ckpt::PodCheckpoint ck;
  try {
    ck = ckpt::CheckpointEngine::LoadImageChain(fs, m.image_path);
  } catch (const cruz::CruzError& e) {
    // Missing or corrupt (CRC-failing) image on every tier: report
    // instead of going silent so the coordinator can abort and fall back.
    CRUZ_WARN("agent") << node_.name() << ": restart failed: " << e.what();
    FailLocalOp(from, m, "image unreadable");
    return;
  }

  op_ = ActiveOp{};
  op_active_ = true;
  op_.op_id = m.op_id;
  op_.epoch = m.epoch;
  op_.pod = ck.pod_id;
  op_.variant = m.variant;
  op_.is_restart = true;
  op_.coordinator = from;
  op_.started = node_.os().sim().Now();

  // Communication is disabled as the FIRST step of restart, before any
  // state is restored: restored TCP state must not transmit until all
  // pods are restored (paper §5).
  InstallDropFilter(ck.ip);

  DurationNs local = kFilterConfigCost +
                     node_.DiskReadDuration(chain_bytes) +
                     chain_bytes * kSecond / kSerializeBytesPerSec;
  op_.local_duration = local;
  ++restarts_served_;

  obs::TraceAttrs restore_attrs;
  restore_attrs.Op(op_.op_id)
      .Phase("restore")
      .Agent(node_.name())
      .Pod(op_.pod)
      .Arg("chain_bytes", chain_bytes);
  if (view.has_value()) {
    // Which tier actually served the head image — this is what
    // cruz_analyze aggregates into the restore-source attribution.
    op_.restore_source =
        static_cast<std::uint8_t>(view->head_result().source);
    restore_attrs.Arg("source",
                      ckpt::TierName(view->head_result().source));
  }
  op_.save_span = node_.os().sim().tracer().BeginSpan(
      "agent", "agent.restore", std::move(restore_attrs));

  std::uint64_t op_id = m.op_id;
  node_.os().sim().Schedule(local, [this, op_id, ck = std::move(ck)] {
    if (crashed_ || !op_active_ || op_.op_id != op_id) return;
    // Restore at the end of the load window; the §4.1 send-buffer replay
    // fires here, against the still-installed drop filter.
    ckpt::CheckpointEngine::RestorePod(pods_, ck);
    op_.save_done = true;
    op_.resume_ready = true;
    op_.done_sent = true;
    node_.os().sim().tracer().EndSpan(op_.save_span, {{"outcome", "ok"}});
    op_.save_span = obs::kInvalidSpanId;
    node_.os().sim().metrics().histogram("agent.restore_us")
        .Record(op_.local_duration / kMicrosecond);
    CoordMessage done;
    done.type = MsgType::kDone;
    done.op_id = op_.op_id;
    done.epoch = op_.epoch;
    done.pod_id = op_.pod;
    done.local_duration = op_.local_duration;
    done.restore_source = op_.restore_source;
    last_done_reply_ = done;
    Send(op_.coordinator, done);
    MaybeResume();
    MaybeFinishOp();
  });
}

// ---------------------------------------------------------------------------
// Continue / abort / resume / liveness
// ---------------------------------------------------------------------------

void CheckpointAgent::HandleContinue(const CoordMessage& m) {
  if (!op_active_) {
    // The op already completed but our <continue-done> was lost; the
    // coordinator is retransmitting <continue>. Re-send the reply.
    if (m.op_id == last_completed_op_) {
      Send(last_coordinator_, last_continue_done_reply_);
    }
    return;
  }
  if (m.op_id != op_.op_id) return;
  op_.continue_received = true;
  MaybeResume();
}

void CheckpointAgent::MaybeResume() {
  // Blocking protocol: resume on <continue> (which the coordinator only
  // sends after all <done>s). Optimized protocol: <continue> arrives as
  // soon as communication is disabled everywhere; the agent additionally
  // waits until it is locally safe to resume — after the save (Fig. 4),
  // or already after the in-memory capture with copy-on-write.
  if (!op_active_ || op_.resumed) return;
  if (!op_.continue_received || !op_.resume_ready) return;
  op_.resumed = true;

  obs::Tracer& tracer = node_.os().sim().tracer();
  op_.continue_span = tracer.BeginSpan(
      "agent", "agent.continue",
      obs::TraceAttrs{}
          .Op(op_.op_id)
          .Phase("continue")
          .Agent(node_.name())
          .Pod(op_.pod));
  tracer.Instant("agent", "agent.resume",
                 obs::TraceAttrs{}.Op(op_.op_id).Agent(node_.name()).Pod(
                     op_.pod));
  ckpt::CheckpointEngine::ResumePod(pods_, op_.pod);
  RemoveDropFilter();
  DurationNs resume_cost =
      kFilterConfigCost +
      pods_.node().os().PodProcesses(op_.pod).size() * kPerProcessResumeCost;

  std::uint64_t op_id = op_.op_id;
  node_.os().sim().Schedule(resume_cost, [this, op_id, resume_cost] {
    if (crashed_ || !op_active_ || op_.op_id != op_id) return;
    op_.continue_done_sent = true;
    node_.os().sim().tracer().EndSpan(op_.continue_span);
    op_.continue_span = obs::kInvalidSpanId;
    CoordMessage done;
    done.type = MsgType::kContinueDone;
    done.op_id = op_id;
    done.epoch = op_.epoch;
    done.pod_id = op_.pod;
    done.local_duration = resume_cost;
    last_continue_done_reply_ = done;
    last_coordinator_ = op_.coordinator;
    Send(op_.coordinator, done);
    MaybeFinishOp();
  });
}

void CheckpointAgent::MaybeFinishOp() {
  // The operation is over once both replies are out; with copy-on-write
  // the <continue-done> can precede the <done>.
  if (op_active_ && op_.done_sent && op_.continue_done_sent) {
    last_completed_op_ = op_.op_id;
    last_completed_was_checkpoint_ = !op_.is_restart;
    last_completed_pod_ = op_.pod;
    last_completed_image_path_ = op_.image_path;
    op_active_ = false;
  }
}

void CheckpointAgent::HandleAbort(const CoordMessage& m) {
  // Fence any copy of this op's request that is still in flight (delayed
  // original or coordinator retransmit): once aborted, never serve it.
  last_aborted_op_ = m.op_id;
  if (op_active_ && m.op_id == op_.op_id) {
    // Cancel: resume the pod as if nothing happened, and delete the
    // partially-written image — an aborted checkpoint must leave no
    // trace in the shared FS.
    EndOpSpans("aborted");
    node_.os().sim().tracer().Instant(
        "agent", "agent.abort",
        obs::TraceAttrs{}.Op(op_.op_id).Agent(node_.name()).Pod(op_.pod));
    ckpt::CheckpointEngine::ResumePod(pods_, op_.pod);
    RemoveDropFilter();
    if (!op_.is_restart && op_.image_written) {
      DiscardCheckpointImage(op_.pod, op_.image_path);
    }
    op_active_ = false;
    return;
  }
  if (!op_active_ && m.op_id == last_completed_op_ &&
      last_completed_was_checkpoint_) {
    // This agent finished its local part, but the op aborted globally
    // (another member failed): its committed-looking image is garbage.
    DiscardCheckpointImage(last_completed_pod_, last_completed_image_path_);
    last_completed_image_path_.clear();
  }
}

void CheckpointAgent::HandlePing(const CoordMessage& m, net::Endpoint from) {
  // Liveness probe: answer regardless of op state — the probe asks "is
  // the agent process alive", not "is the op done".
  CoordMessage pong;
  pong.type = MsgType::kPong;
  pong.op_id = m.op_id;
  pong.epoch = m.epoch;
  pong.pod_id = m.pod_id;
  Send(from, pong);
}

// ---------------------------------------------------------------------------
// Flush baseline (CoCheck/MPVM style)
// ---------------------------------------------------------------------------

void CheckpointAgent::HandleFlushMarker(const CoordMessage& m,
                                        net::Endpoint from) {
  // Model draining the channel from the marker's sender, then ack.
  CoordMessage ack;
  ack.type = MsgType::kFlushAck;
  ack.op_id = m.op_id;
  ack.epoch = m.epoch;
  ack.sender_index = node_.ip().value;
  node_.os().sim().Schedule(kChannelDrainCost, [this, from, ack] {
    if (crashed_) return;
    Send(from, ack);
  });
  if (op_active_ && m.op_id == op_.op_id) {
    ++op_.flush_messages;
  } else {
    // Our own <checkpoint> request hasn't arrived yet; remember the
    // marker so the op can claim it once it activates.
    if (early_flush_op_ != m.op_id) {
      early_flush_op_ = m.op_id;
      early_flush_messages_ = 0;
    }
    ++early_flush_messages_;
  }
}

void CheckpointAgent::HandleFlushAck(const CoordMessage& m) {
  if (!op_active_ || m.op_id != op_.op_id) return;
  op_.flush_acks_pending.erase(m.sender_index);
  if (op_.flush_acks_pending.empty() && op_.pending_request.has_value()) {
    CoordMessage request = *op_.pending_request;
    op_.pending_request.reset();
    StartLocalCheckpoint(request);
  }
}

}  // namespace cruz::coord
