#include "coord/coordinator.h"

#include <algorithm>

#include "ckpt/store/tiered_store.h"
#include "common/error.h"
#include "common/log.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace cruz::coord {

Coordinator::Coordinator(os::Node& node, std::string journal_path,
                         ckpt::TieredStore* tiered)
    : node_(node),
      journal_(node.os().fs(), std::move(journal_path)),
      tiered_(tiered) {
  node_.stack().RegisterUdpService(
      kCoordinatorPort,
      [this](net::Endpoint from, const cruz::Bytes& payload) {
        OnDatagram(from, payload);
      });
  RecoverFromJournal();
}

Coordinator::~Coordinator() {
  // A coordinator may be torn down mid-op (process crash in the recovery
  // scenarios); cancel every pending event that captures `this`.
  if (timeout_event_ != sim::kInvalidEventId) {
    node_.os().sim().Cancel(timeout_event_);
  }
  if (retransmit_event_ != sim::kInvalidEventId) {
    node_.os().sim().Cancel(retransmit_event_);
  }
  if (heartbeat_event_ != sim::kInvalidEventId) {
    node_.os().sim().Cancel(heartbeat_event_);
  }
  node_.stack().UnregisterUdpService(kCoordinatorPort);
}

void Coordinator::RecoverFromJournal() {
  IntentJournal::RecoveredState state = journal_.Recover();
  epoch_ = state.last_epoch;
  if (!state.incomplete.has_value()) return;

  // A previous incarnation died with this op in flight. Abort it: fence
  // the agents (they resume their pods and drop the partial state) and
  // garbage-collect whatever images the checkpoint already wrote to the
  // shared FS. Restart intents read images, they do not own them — no GC.
  const JournalRecord& intent = *state.incomplete;
  recovery_.had_incomplete = true;
  recovery_.epoch = intent.epoch;
  recovery_.was_restart = intent.is_restart;
  node_.os().sim().tracer().Instant(
      "coord", "coord.recovery",
      obs::TraceAttrs{}.Op(intent.epoch).Agent(node_.name()).Arg(
          "kind", intent.is_restart ? "restart" : "checkpoint"));
  CRUZ_WARN("coord") << "journal recovery: aborting in-flight "
                     << (intent.is_restart ? "restart" : "checkpoint")
                     << " op epoch " << intent.epoch;
  // Hierarchical intents: the shard partition is re-derived from the
  // journaled fan-out (it is deterministic — contiguous shards of
  // ≤ fan_out members), so the dead op's sub-coordinators get fenced and
  // clean their own shards too.
  if (intent.fan_out > 0) {
    for (std::size_t begin = 0; begin < intent.members.size();
         begin += intent.fan_out) {
      CoordMessage abort;
      abort.type = MsgType::kShardAbort;
      abort.op_id = intent.epoch;
      abort.epoch = intent.epoch;
      TransmitControl(net::Ipv4Address{intent.members[begin].agent_ip},
                      abort, kShardPort);
    }
  }
  for (const JournalRecord::Member& m : intent.members) {
    CoordMessage abort;
    abort.type = MsgType::kAbort;
    abort.op_id = intent.epoch;
    abort.epoch = intent.epoch;
    abort.pod_id = m.pod;
    TransmitControl(net::Ipv4Address{m.agent_ip}, abort);
    if (!intent.is_restart && !m.image_path.empty()) {
      bool removed = SysOk(node_.os().fs().Remove(m.image_path));
      // Tiered mode: the dead op's images may live on local/partner
      // disks with a netfs flush still pending — reap every tier.
      if (tiered_ != nullptr &&
          tiered_->RemoveEverywhere(m.image_path) > 0) {
        removed = true;
      }
      if (removed) ++recovery_.images_removed;
    }
  }
  JournalRecord outcome;
  outcome.type = JournalRecord::Type::kAbort;
  outcome.epoch = intent.epoch;
  outcome.is_restart = intent.is_restart;
  journal_.Append(outcome);
}

void Coordinator::Checkpoint(std::vector<Member> members, Options options,
                             DoneFn done) {
  std::vector<std::string> paths;
  for (const Member& m : members) {
    paths.push_back(ImagePath(options.image_prefix, m.pod));
  }
  Begin(/*is_restart=*/false, std::move(members), std::move(paths),
        std::move(options), std::move(done));
}

void Coordinator::Restart(std::vector<Member> members,
                          std::vector<std::string> image_paths,
                          Options options, DoneFn done) {
  CRUZ_CHECK(image_paths.size() == members.size(),
             "Restart: one image path per member");
  Begin(/*is_restart=*/true, std::move(members), std::move(image_paths),
        std::move(options), std::move(done));
}

void Coordinator::Begin(bool is_restart, std::vector<Member> members,
                        std::vector<std::string> image_paths,
                        Options options, DoneFn done) {
  CRUZ_CHECK(!op_active_, "coordinator busy with another operation");
  CRUZ_CHECK(!members.empty(), "coordinated operation with no members");
  op_active_ = true;
  is_restart_ = is_restart;
  options_ = options;
  members_ = std::move(members);
  done_fn_ = std::move(done);
  stats_ = OpStats{};
  stats_.op_id = stats_.epoch = ++epoch_;
  stats_.image_paths = image_paths;
  stats_.replica_sets.assign(members_.size(), {});
  stats_.restore_sources.assign(members_.size(), 255);
  image_paths_ = image_paths;
  // Hierarchical mode: contiguous shards of ≤ fan_out members, each
  // driven by the sub-coordinator co-located with its first member. The
  // flush baseline stays flat — its all-to-all marker traffic is the
  // point of that comparison.
  hierarchical_ = options_.fan_out > 0 &&
                  options_.variant != ProtocolVariant::kFlushBaseline;
  shards_.clear();
  if (hierarchical_) {
    for (std::size_t begin = 0; begin < members_.size();
         begin += options_.fan_out) {
      Shard shard;
      shard.sub_ip = members_[begin].agent_ip;
      std::size_t end =
          std::min(members_.size(),
                   begin + static_cast<std::size_t>(options_.fan_out));
      for (std::size_t i = begin; i < end; ++i) {
        shard.member_indices.push_back(i);
      }
      shards_.push_back(std::move(shard));
    }
  }
  stats_.shard_count = static_cast<std::uint32_t>(shards_.size());
  std::size_t max_shard_size = 0;
  for (const Shard& s : shards_) {
    max_shard_size = std::max(max_shard_size, s.member_indices.size());
  }
  stats_.max_endpoint_fanout = static_cast<std::uint32_t>(
      hierarchical_ ? std::max(shards_.size(), max_shard_size)
                    : members_.size());
  continue_sent_ = false;
  pending_done_.clear();
  pending_continue_done_.clear();
  pending_comm_disabled_.clear();
  shard_messages_seen_.clear();
  shard_done_members_.clear();
  missed_heartbeats_.clear();
  retransmit_interval_now_ = options_.retransmit_interval;
  retransmit_rounds_ = 0;
  op_start_ = node_.os().sim().Now();

  // Trace the op and its Fig. 2 phases. The freeze phase runs from the
  // first request to the last <done>; the commit phase opens when the
  // <continue> broadcast goes out.
  obs::Tracer& tracer = node_.os().sim().tracer();
  const char* kind = is_restart ? "restart" : "checkpoint";
  obs::TraceAttrs op_attrs;
  op_attrs.Op(stats_.op_id)
      .Phase("op")
      .Agent(node_.name())
      .Arg("members", members_.size());
  if (hierarchical_) op_attrs.Arg("shards", shards_.size());
  op_span_ = tracer.BeginSpan("coord", std::string("coord.op.") + kind,
                              std::move(op_attrs));
  freeze_span_ = tracer.BeginSpan(
      "coord", "coord.phase.freeze",
      obs::TraceAttrs{}.Op(stats_.op_id).Phase("freeze").Agent(
          node_.name()));
  commit_span_ = obs::kInvalidSpanId;
  node_.os().sim().metrics().counter("coord.ops_total").Add();

  // Write-ahead intent: on coordinator death the next incarnation learns
  // exactly which op (and which images) to abort and clean up.
  JournalRecord intent;
  intent.type = JournalRecord::Type::kIntent;
  intent.epoch = stats_.epoch;
  intent.is_restart = is_restart;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    intent.members.push_back(JournalRecord::Member{
        members_[i].agent_ip.value, members_[i].pod, image_paths_[i]});
  }
  intent.fan_out = hierarchical_ ? options_.fan_out : 0;
  journal_.Append(intent);

  if (hierarchical_) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      pending_done_.insert(shards_[s].sub_ip.value);
      pending_continue_done_.insert(shards_[s].sub_ip.value);
      pending_comm_disabled_.insert(shards_[s].sub_ip.value);
      SendShardRequest(s);
    }
  } else {
    std::vector<std::uint32_t> peer_ips;
    for (const Member& m : members_) peer_ips.push_back(m.agent_ip.value);

    for (std::size_t i = 0; i < members_.size(); ++i) {
      pending_done_.insert(members_[i].agent_ip.value);
      pending_continue_done_.insert(members_[i].agent_ip.value);
      pending_comm_disabled_.insert(members_[i].agent_ip.value);
      CoordMessage m;
      m.type = is_restart ? MsgType::kRestart : MsgType::kCheckpoint;
      m.op_id = stats_.op_id;
      m.epoch = stats_.epoch;
      m.pod_id = members_[i].pod;
      m.variant = options_.variant;
      m.image_path = image_paths[i];
      m.tiered = options_.tiered && tiered_ != nullptr;
      if (!is_restart) {
        m.incremental = options_.incremental;
        m.copy_on_write = options_.copy_on_write;
        m.compress = options_.compress;
      }
      if (options_.variant == ProtocolVariant::kFlushBaseline) {
        m.peers = peer_ips;
      }
      SendToAgent(i, std::move(m));
    }
  }

  ScheduleRetransmit();
  ScheduleHeartbeat();
  timeout_event_ =
      node_.os().sim().Schedule(options_.timeout, [this] {
        timeout_event_ = sim::kInvalidEventId;
        if (!op_active_) return;
        ++stats_.timeouts;
        node_.os().sim().tracer().Instant(
            "coord", "coord.timeout",
            obs::TraceAttrs{}.Op(stats_.op_id).Agent(node_.name()));
        node_.os().sim().metrics().counter("coord.timeouts_total").Add();
        AbortOp("timeout");
      });
}

void Coordinator::SendToAgent(std::size_t member_index, CoordMessage m) {
  const Member& member = members_[member_index];
  ++stats_.coordinator_messages;
  ++stats_.total_messages;
  // Every transmission gets a fresh correlation sequence (a retransmit is
  // a new transmission; a wire-level duplicate injected below it is not),
  // so each send instant names exactly one intended delivery.
  m.corr_seq = ++next_corr_seq_;
  node_.os().sim().tracer().Instant(
      "coord", "coord.msg.send",
      obs::TraceAttrs{}
          .Op(stats_.op_id)
          .Agent(node_.name())
          .Pod(member.pod)
          .Arg("type", MsgTypeName(m.type))
          .Arg("corr", CorrId(m, node_.ip().ToString()))
          .Arg("dst", member.agent_ip.ToString()));
  node_.os().sim().metrics().counter("coord.messages_sent").Add();
  TransmitControl(member.agent_ip, m);
}

CoordMessage Coordinator::BuildShardRequest(const Shard& shard) const {
  CoordMessage m;
  m.type = is_restart_ ? MsgType::kShardRestart : MsgType::kShardCheckpoint;
  m.op_id = stats_.op_id;
  m.epoch = stats_.epoch;
  m.variant = options_.variant;
  m.tiered = options_.tiered && tiered_ != nullptr;
  if (!is_restart_) {
    m.incremental = options_.incremental;
    m.copy_on_write = options_.copy_on_write;
    m.compress = options_.compress;
  }
  // The sub self-cleans shortly after this deadline if the root dies.
  m.op_timeout = options_.timeout;
  for (std::size_t i : shard.member_indices) {
    ShardMember sm;
    sm.agent_ip = members_[i].agent_ip.value;
    sm.pod = members_[i].pod;
    sm.image_path = image_paths_[i];
    m.shard_members.push_back(std::move(sm));
  }
  return m;
}

void Coordinator::AccumulateShardMessages(std::uint32_t sub_ip,
                                          std::uint32_t cumulative) {
  // Subs report their shard-internal traffic (sub sends + agent replies)
  // as a cumulative count: adding only the high-water delta keeps the
  // grand total exact under re-sent, duplicated, or reordered replies.
  std::uint32_t& seen = shard_messages_seen_[sub_ip];
  if (cumulative > seen) {
    stats_.total_messages += cumulative - seen;
    seen = cumulative;
  }
}

void Coordinator::SendShardRequest(std::size_t shard_index) {
  CoordMessage full = BuildShardRequest(shards_[shard_index]);
  for (CoordMessage& frag : FragmentRoster(full)) {
    SendToShard(shard_index, std::move(frag));
  }
}

void Coordinator::SendToShard(std::size_t shard_index, CoordMessage m) {
  const Shard& shard = shards_[shard_index];
  ++stats_.coordinator_messages;
  ++stats_.total_messages;
  m.corr_seq = ++next_corr_seq_;
  node_.os().sim().tracer().Instant(
      "coord", "coord.msg.send",
      obs::TraceAttrs{}
          .Op(stats_.op_id)
          .Agent(node_.name())
          .Arg("type", MsgTypeName(m.type))
          .Arg("corr", CorrId(m, node_.ip().ToString()))
          .Arg("dst", shard.sub_ip.ToString()));
  node_.os().sim().metrics().counter("coord.messages_sent").Add();
  TransmitControl(shard.sub_ip, m, kShardPort);
}

void Coordinator::TransmitControl(net::Ipv4Address dst,
                                  const CoordMessage& m,
                                  std::uint16_t dst_port) {
  fault::MessageFate fate;
  if (fault_ != nullptr) {
    fate = fault_->OnControlSend(node_.name(), dst.value,
                                 static_cast<std::uint8_t>(m.type));
  }
  if (fate.drop) return;  // lost on the wire; retransmission recovers

  net::UdpDatagram dgram;
  dgram.src_port = kCoordinatorPort;
  dgram.dst_port = dst_port;
  dgram.payload = m.Encode();
  net::Ipv4Packet pkt;
  pkt.src = node_.ip();
  pkt.dst = dst;
  pkt.proto = net::IpProto::kUdp;
  pkt.payload = dgram.Encode();
  int copies = fate.duplicate ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    if (fate.delay > 0) {
      // Capture the stack, not `this`: the delayed copy must still go out
      // (or at least not crash) if this coordinator incarnation dies.
      os::NetworkStack* stack = &node_.stack();
      node_.os().sim().Schedule(fate.delay,
                                [stack, pkt] { stack->SendIpv4(pkt); });
    } else {
      node_.stack().SendIpv4(pkt);
    }
  }
}

void Coordinator::BroadcastContinue() {
  if (continue_sent_) return;
  continue_sent_ = true;
  commit_span_ = node_.os().sim().tracer().BeginSpan(
      "coord", "coord.phase.commit",
      obs::TraceAttrs{}.Op(stats_.op_id).Phase("commit").Agent(
          node_.name()));
  int rounds = test_duplicate_continue_ ? 2 : 1;
  for (int round = 0; round < rounds; ++round) {
    if (hierarchical_) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        CoordMessage m;
        m.type = MsgType::kShardContinue;
        m.op_id = stats_.op_id;
        m.epoch = stats_.epoch;
        m.variant = options_.variant;
        SendToShard(s, std::move(m));
      }
    } else {
      for (std::size_t i = 0; i < members_.size(); ++i) {
        CoordMessage m;
        m.type = MsgType::kContinue;
        m.op_id = stats_.op_id;
        m.epoch = stats_.epoch;
        m.pod_id = members_[i].pod;
        m.variant = options_.variant;
        SendToAgent(i, std::move(m));
      }
    }
  }
}

void Coordinator::AbortOp(const std::string& reason) {
  if (!op_active_) return;
  CRUZ_WARN("coord") << "operation " << stats_.op_id << " aborted ("
                     << reason << ")";
  stats_.abort_reason = reason;
  node_.os().sim().tracer().Instant(
      "coord", "coord.abort",
      obs::TraceAttrs{}.Op(stats_.op_id).Agent(node_.name()).Arg("reason",
                                                                reason));
  node_.os().sim().metrics().counter("coord.aborts_total").Add();
  // Hierarchical mode: abort the sub-coordinators (they fence and clean
  // their shards) AND every agent directly — a crashed sub must not be
  // able to leave its shard frozen behind a dead op.
  if (hierarchical_) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      CoordMessage abort;
      abort.type = MsgType::kShardAbort;
      abort.op_id = stats_.op_id;
      abort.epoch = stats_.epoch;
      ++stats_.aborts;
      SendToShard(s, std::move(abort));
    }
  }
  for (std::size_t i = 0; i < members_.size(); ++i) {
    CoordMessage abort;
    abort.type = MsgType::kAbort;
    abort.op_id = stats_.op_id;
    abort.epoch = stats_.epoch;
    abort.pod_id = members_[i].pod;
    ++stats_.aborts;
    SendToAgent(i, std::move(abort));
  }
  // Aborted checkpoints must not leak partial images into the shared FS.
  // The agents delete their own images too (HandleAbort); this covers
  // members whose agent is dead or was never reached.
  if (!is_restart_) {
    for (const std::string& path : image_paths_) {
      node_.os().fs().Remove(path);
      // Tiered mode: also reap local/partner replicas and cancel any
      // pending netfs flush for the aborted op's images.
      if (tiered_ != nullptr) tiered_->RemoveEverywhere(path);
    }
  }
  Finish(false);
}

void Coordinator::OnDatagram(net::Endpoint from,
                             const cruz::Bytes& payload) {
  CoordMessage m;
  try {
    m = CoordMessage::Decode(payload);
  } catch (const cruz::CodecError&) {
    return;
  }
  // Record the receive instant before the op-liveness check: a reply for
  // a finished (or aborted) op is still a real delivery, and the causal
  // analyzer needs the endpoint to close the send's edge instead of
  // reporting it unmatched. The corr echo comes straight off the wire.
  {
    obs::TraceAttrs attrs;
    attrs.Op(m.op_id).Agent(node_.name()).Arg("type", MsgTypeName(m.type));
    if (m.corr_seq != 0) {
      attrs.Arg("corr", CorrId(m, from.ip.ToString()));
    }
    attrs.Arg("src", from.ip.ToString());
    node_.os().sim().tracer().Instant("coord", "coord.msg.recv",
                                      std::move(attrs));
  }
  if (!op_active_ || m.op_id != stats_.op_id) return;
  ++stats_.total_messages;

  switch (m.type) {
    case MsgType::kCommDisabled:
      // Fig. 4: once communication is disabled on every node, no node's
      // saved state can be perturbed by any other — grant early resume.
      if (options_.variant == ProtocolVariant::kOptimized) {
        pending_comm_disabled_.erase(from.ip.value);
        if (pending_comm_disabled_.empty()) {
          BroadcastContinue();
        }
      }
      break;
    case MsgType::kDone:
      if (pending_done_.erase(from.ip.value) != 0) {
        stats_.max_local = std::max(stats_.max_local, m.local_duration);
        stats_.max_downtime = std::max(stats_.max_downtime, m.downtime);
        stats_.total_messages += m.extra_messages;
        // Tiered mode: remember where each member's image landed (feeds
        // the manifest) / which tier served its restore.
        for (std::size_t i = 0; i < members_.size(); ++i) {
          if (members_[i].agent_ip == from.ip) {
            stats_.replica_sets[i] = m.replicas;
            stats_.restore_sources[i] = m.restore_source;
            break;
          }
        }
        if (pending_done_.empty()) {
          stats_.checkpoint_latency = node_.os().sim().Now() - op_start_;
          node_.os().sim().tracer().EndSpan(freeze_span_);
          freeze_span_ = obs::kInvalidSpanId;
          BroadcastContinue();  // Step 3 (no-op if Fig. 4 already sent it)
          // With copy-on-write the <continue-done>s can precede the last
          // <done> (resume happens before the disk write finishes).
          if (pending_continue_done_.empty()) Finish(true);
        }
      }
      break;
    case MsgType::kContinueDone:
      if (pending_continue_done_.erase(from.ip.value) != 0) {
        stats_.max_continue = std::max(stats_.max_continue,
                                       m.local_duration);
        if (pending_continue_done_.empty() && pending_done_.empty()) {
          Finish(true);
        }
      }
      break;
    case MsgType::kPong:
    case MsgType::kShardPong:
      missed_heartbeats_[from.ip.value] = 0;
      break;
    case MsgType::kFailed:
      // A member cannot perform its local part (unknown pod, image I/O
      // error, unreadable image): the op can never complete — abort now
      // rather than waiting out the timeout.
      AbortOp("member " + std::to_string(from.ip.value) + " failed");
      break;
    case MsgType::kShardCommDisabled:
      // Fig. 4, aggregated: this shard has communication disabled on
      // every member.
      if (options_.variant == ProtocolVariant::kOptimized) {
        pending_comm_disabled_.erase(from.ip.value);
        if (pending_comm_disabled_.empty()) {
          BroadcastContinue();
        }
      }
      break;
    case MsgType::kShardDone: {
      if (pending_done_.count(from.ip.value) == 0) break;  // dup/settled
      AccumulateShardMessages(from.ip.value, m.extra_messages);
      stats_.max_local = std::max(stats_.max_local, m.local_duration);
      stats_.max_downtime = std::max(stats_.max_downtime, m.downtime);
      for (const ShardMember& sm : m.shard_members) {
        for (std::size_t i = 0; i < members_.size(); ++i) {
          if (members_[i].agent_ip.value == sm.agent_ip) {
            stats_.replica_sets[i] = sm.replicas;
            stats_.restore_sources[i] = sm.restore_source;
            break;
          }
        }
      }
      // The aggregated report may arrive in roster fragments (tiered
      // per-member reports can exceed the MTU): the shard settles only
      // once member_total distinct member reports are in.
      std::set<std::uint32_t>& seen = shard_done_members_[from.ip.value];
      for (const ShardMember& sm : m.shard_members) seen.insert(sm.agent_ip);
      if (seen.size() < m.member_total) break;
      pending_done_.erase(from.ip.value);
      if (pending_done_.empty()) {
        stats_.checkpoint_latency = node_.os().sim().Now() - op_start_;
        node_.os().sim().tracer().EndSpan(freeze_span_);
        freeze_span_ = obs::kInvalidSpanId;
        BroadcastContinue();
        if (pending_continue_done_.empty()) Finish(true);
      }
      break;
    }
    case MsgType::kShardContinueDone:
      if (pending_continue_done_.erase(from.ip.value) != 0) {
        stats_.max_continue =
            std::max(stats_.max_continue, m.local_duration);
        AccumulateShardMessages(from.ip.value, m.extra_messages);
        if (pending_continue_done_.empty() && pending_done_.empty()) {
          Finish(true);
        }
      }
      break;
    case MsgType::kShardFailed:
      // A sub-coordinator gave up on its shard (dead agent, retry cap,
      // self-clean): the op can never complete.
      AbortOp("shard " + std::to_string(from.ip.value) + " failed");
      break;
    default:
      break;
  }
}

void Coordinator::ScheduleRetransmit() {
  if (options_.retransmit_interval == 0) return;
  // Jitter the interval ±25% (seeded: the simulator RNG) so retransmit
  // rounds from concurrent coordinators cannot stay synchronized.
  DurationNs base = retransmit_interval_now_;
  DurationNs jittered =
      base - base / 4 + node_.os().sim().rng().NextBelow(base / 2 + 1);
  retransmit_event_ = node_.os().sim().Schedule(jittered, [this] {
    retransmit_event_ = sim::kInvalidEventId;
    if (!op_active_) return;
    ++retransmit_rounds_;
    if (options_.max_retransmit_rounds != 0 &&
        retransmit_rounds_ > options_.max_retransmit_rounds) {
      AbortOp("retry cap");
      return;
    }
    RetransmitPending();
    // Exponential backoff, capped (default cap: 4x the initial interval,
    // which keeps loss recovery responsive while shedding load).
    DurationNs cap = options_.retransmit_max_interval != 0
                         ? options_.retransmit_max_interval
                         : 4 * options_.retransmit_interval;
    double next = static_cast<double>(retransmit_interval_now_) *
                  std::max(1.0, options_.retransmit_backoff);
    retransmit_interval_now_ = static_cast<DurationNs>(
        std::min(next, static_cast<double>(cap)));
    ScheduleRetransmit();
  });
}

void Coordinator::RetransmitPending() {
  if (hierarchical_) {
    // Re-send the phase-appropriate shard request to every shard that
    // has not answered it. Sub-coordinators deduplicate by op id and
    // answer completed ops from their reply cache.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::uint32_t key = shards_[s].sub_ip.value;
      if (pending_done_.count(key) != 0) {
        ++stats_.retransmits;
        node_.os().sim().tracer().Instant(
            "coord", "coord.retransmit",
            obs::TraceAttrs{}.Op(stats_.op_id).Agent(node_.name()).Arg(
                "type", is_restart_ ? "shard-restart" : "shard-checkpoint"));
        node_.os().sim().metrics().counter("coord.retransmits_total").Add();
        SendShardRequest(s);
      } else if (continue_sent_ &&
                 pending_continue_done_.count(key) != 0) {
        CoordMessage m;
        m.type = MsgType::kShardContinue;
        m.op_id = stats_.op_id;
        m.epoch = stats_.epoch;
        m.variant = options_.variant;
        ++stats_.retransmits;
        node_.os().sim().tracer().Instant(
            "coord", "coord.retransmit",
            obs::TraceAttrs{}.Op(stats_.op_id).Agent(node_.name()).Arg(
                "type", MsgTypeName(m.type)));
        node_.os().sim().metrics().counter("coord.retransmits_total").Add();
        SendToShard(s, std::move(m));
      }
    }
    return;
  }
  // Re-send the phase-appropriate request to every member that has not
  // answered it. Agents deduplicate by op id and re-send lost replies.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    std::uint32_t key = members_[i].agent_ip.value;
    if (pending_done_.count(key) != 0) {
      CoordMessage m;
      m.type = is_restart_ ? MsgType::kRestart : MsgType::kCheckpoint;
      m.op_id = stats_.op_id;
      m.epoch = stats_.epoch;
      m.pod_id = members_[i].pod;
      m.variant = options_.variant;
      m.image_path = image_paths_[i];
      m.tiered = options_.tiered && tiered_ != nullptr;
      if (!is_restart_) {
        m.incremental = options_.incremental;
        m.copy_on_write = options_.copy_on_write;
        m.compress = options_.compress;
      }
      ++stats_.retransmits;
      node_.os().sim().tracer().Instant(
          "coord", "coord.retransmit",
          obs::TraceAttrs{}.Op(stats_.op_id).Agent(node_.name()).Arg(
              "type", MsgTypeName(m.type)));
      node_.os().sim().metrics().counter("coord.retransmits_total").Add();
      SendToAgent(i, std::move(m));
    } else if (continue_sent_ && pending_continue_done_.count(key) != 0) {
      CoordMessage m;
      m.type = MsgType::kContinue;
      m.op_id = stats_.op_id;
      m.epoch = stats_.epoch;
      m.pod_id = members_[i].pod;
      m.variant = options_.variant;
      ++stats_.retransmits;
      node_.os().sim().tracer().Instant(
          "coord", "coord.retransmit",
          obs::TraceAttrs{}.Op(stats_.op_id).Agent(node_.name()).Arg(
              "type", MsgTypeName(m.type)));
      node_.os().sim().metrics().counter("coord.retransmits_total").Add();
      SendToAgent(i, std::move(m));
    }
  }
}

void Coordinator::ScheduleHeartbeat() {
  if (options_.heartbeat_interval == 0) return;
  heartbeat_event_ = node_.os().sim().Schedule(
      options_.heartbeat_interval, [this] {
        heartbeat_event_ = sim::kInvalidEventId;
        if (!op_active_) return;
        HeartbeatTick();
      });
}

void Coordinator::HeartbeatTick() {
  if (hierarchical_) {
    // Probe the sub-coordinators, not the agents: each sub probes its own
    // shard (a dead agent surfaces as the sub's <shard-failed>), so a
    // silent sub here means the sub itself is dead.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::uint32_t key = shards_[s].sub_ip.value;
      if (pending_done_.count(key) == 0 &&
          pending_continue_done_.count(key) == 0) {
        continue;
      }
      std::uint32_t missed = ++missed_heartbeats_[key];
      if (missed > options_.max_missed_heartbeats) {
        AbortOp("shard " + std::to_string(key) + " unresponsive");
        return;
      }
      CoordMessage ping;
      ping.type = MsgType::kPing;
      ping.op_id = stats_.op_id;
      ping.epoch = stats_.epoch;
      SendToShard(s, std::move(ping));
    }
    ScheduleHeartbeat();
    return;
  }
  for (std::size_t i = 0; i < members_.size(); ++i) {
    std::uint32_t key = members_[i].agent_ip.value;
    if (pending_done_.count(key) == 0 &&
        pending_continue_done_.count(key) == 0) {
      continue;  // member already finished; no liveness concern
    }
    std::uint32_t missed = ++missed_heartbeats_[key];
    if (missed > options_.max_missed_heartbeats) {
      AbortOp("agent " + std::to_string(key) + " unresponsive");
      return;
    }
    CoordMessage ping;
    ping.type = MsgType::kPing;
    ping.op_id = stats_.op_id;
    ping.epoch = stats_.epoch;
    ping.pod_id = members_[i].pod;
    SendToAgent(i, std::move(ping));
  }
  ScheduleHeartbeat();
}

void Coordinator::Finish(bool success) {
  if (timeout_event_ != sim::kInvalidEventId) {
    node_.os().sim().Cancel(timeout_event_);
    timeout_event_ = sim::kInvalidEventId;
  }
  if (retransmit_event_ != sim::kInvalidEventId) {
    node_.os().sim().Cancel(retransmit_event_);
    retransmit_event_ = sim::kInvalidEventId;
  }
  if (heartbeat_event_ != sim::kInvalidEventId) {
    node_.os().sim().Cancel(heartbeat_event_);
    heartbeat_event_ = sim::kInvalidEventId;
  }
  JournalRecord outcome;
  outcome.type =
      success ? JournalRecord::Type::kCommit : JournalRecord::Type::kAbort;
  outcome.epoch = stats_.epoch;
  outcome.is_restart = is_restart_;
  journal_.Append(outcome);
  stats_.success = success;
  stats_.full_latency = node_.os().sim().Now() - op_start_;
  DurationNs local = stats_.max_local + stats_.max_continue;
  stats_.coordination_overhead =
      stats_.full_latency > local ? stats_.full_latency - local : 0;
  op_active_ = false;

  obs::Tracer& tracer = node_.os().sim().tracer();
  tracer.EndSpan(freeze_span_);  // still open on abort paths
  freeze_span_ = obs::kInvalidSpanId;
  tracer.EndSpan(commit_span_);
  commit_span_ = obs::kInvalidSpanId;
  tracer.EndSpan(
      op_span_,
      {{"success", success ? "true" : "false"},
       {"checkpoint_latency_ns", std::to_string(stats_.checkpoint_latency)},
       {"coordination_overhead_ns",
        std::to_string(stats_.coordination_overhead)},
       {"max_downtime_ns", std::to_string(stats_.max_downtime)},
       {"retransmits", std::to_string(stats_.retransmits)},
       {"messages", std::to_string(stats_.total_messages)}});
  op_span_ = obs::kInvalidSpanId;
  obs::MetricsRegistry& metrics = node_.os().sim().metrics();
  if (!success) metrics.counter("coord.ops_failed").Add();
  if (success && !is_restart_) {
    metrics.histogram("coord.checkpoint_latency_us")
        .Record(stats_.checkpoint_latency / kMicrosecond);
    metrics.histogram("coord.coordination_overhead_us")
        .Record(stats_.coordination_overhead / kMicrosecond);
    metrics.histogram("coord.downtime_us")
        .Record(stats_.max_downtime / kMicrosecond);
  }
  CRUZ_INFO("coord") << (is_restart_ ? "restart" : "checkpoint") << " op "
                     << stats_.op_id << (success ? " ok" : " FAILED")
                     << ": latency=" << ToMillis(stats_.checkpoint_latency)
                     << "ms overhead="
                     << ToMicros(stats_.coordination_overhead) << "us msgs="
                     << stats_.total_messages;
  if (done_fn_) {
    DoneFn fn = std::move(done_fn_);
    fn(stats_);
  }
}

}  // namespace cruz::coord
