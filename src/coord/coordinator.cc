#include "coord/coordinator.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "sim/simulator.h"

namespace cruz::coord {

Coordinator::Coordinator(os::Node& node) : node_(node) {
  node_.stack().RegisterUdpService(
      kCoordinatorPort,
      [this](net::Endpoint from, const cruz::Bytes& payload) {
        OnDatagram(from, payload);
      });
}

Coordinator::~Coordinator() {
  node_.stack().UnregisterUdpService(kCoordinatorPort);
}

void Coordinator::Checkpoint(std::vector<Member> members, Options options,
                             DoneFn done) {
  std::vector<std::string> paths;
  for (const Member& m : members) {
    paths.push_back(ImagePath(options.image_prefix, m.pod));
  }
  Begin(/*is_restart=*/false, std::move(members), std::move(paths),
        std::move(options), std::move(done));
}

void Coordinator::Restart(std::vector<Member> members,
                          std::vector<std::string> image_paths,
                          Options options, DoneFn done) {
  CRUZ_CHECK(image_paths.size() == members.size(),
             "Restart: one image path per member");
  Begin(/*is_restart=*/true, std::move(members), std::move(image_paths),
        std::move(options), std::move(done));
}

void Coordinator::Begin(bool is_restart, std::vector<Member> members,
                        std::vector<std::string> image_paths,
                        Options options, DoneFn done) {
  CRUZ_CHECK(!op_active_, "coordinator busy with another operation");
  CRUZ_CHECK(!members.empty(), "coordinated operation with no members");
  op_active_ = true;
  is_restart_ = is_restart;
  options_ = options;
  members_ = std::move(members);
  done_fn_ = std::move(done);
  stats_ = OpStats{};
  stats_.op_id = next_op_id_++;
  stats_.image_paths = image_paths;
  image_paths_ = image_paths;
  continue_sent_ = false;
  pending_done_.clear();
  pending_continue_done_.clear();
  pending_comm_disabled_.clear();
  op_start_ = node_.os().sim().Now();

  std::vector<std::uint32_t> peer_ips;
  for (const Member& m : members_) peer_ips.push_back(m.agent_ip.value);

  for (std::size_t i = 0; i < members_.size(); ++i) {
    pending_done_.insert(members_[i].agent_ip.value);
    pending_continue_done_.insert(members_[i].agent_ip.value);
    pending_comm_disabled_.insert(members_[i].agent_ip.value);
    CoordMessage m;
    m.type = is_restart ? MsgType::kRestart : MsgType::kCheckpoint;
    m.op_id = stats_.op_id;
    m.pod_id = members_[i].pod;
    m.variant = options_.variant;
    m.image_path = image_paths[i];
    if (!is_restart) {
      m.incremental = options_.incremental;
      m.copy_on_write = options_.copy_on_write;
    }
    if (options_.variant == ProtocolVariant::kFlushBaseline) {
      m.peers = peer_ips;
    }
    SendToAgent(i, std::move(m));
  }

  ScheduleRetransmit();
  timeout_event_ =
      node_.os().sim().Schedule(options_.timeout, [this] {
        timeout_event_ = sim::kInvalidEventId;
        if (!op_active_) return;
        CRUZ_WARN("coord") << "operation " << stats_.op_id
                           << " timed out; aborting";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          CoordMessage abort;
          abort.type = MsgType::kAbort;
          abort.op_id = stats_.op_id;
          abort.pod_id = members_[i].pod;
          SendToAgent(i, std::move(abort));
        }
        Finish(false);
      });
}

void Coordinator::SendToAgent(std::size_t member_index, CoordMessage m) {
  const Member& member = members_[member_index];
  net::UdpDatagram dgram;
  dgram.src_port = kCoordinatorPort;
  dgram.dst_port = kAgentPort;
  dgram.payload = m.Encode();
  net::Ipv4Packet pkt;
  pkt.src = node_.ip();
  pkt.dst = member.agent_ip;
  pkt.proto = net::IpProto::kUdp;
  pkt.payload = dgram.Encode();
  ++stats_.coordinator_messages;
  ++stats_.total_messages;
  node_.stack().SendIpv4(std::move(pkt));
}

void Coordinator::BroadcastContinue() {
  if (continue_sent_) return;
  continue_sent_ = true;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    CoordMessage m;
    m.type = MsgType::kContinue;
    m.op_id = stats_.op_id;
    m.pod_id = members_[i].pod;
    m.variant = options_.variant;
    SendToAgent(i, std::move(m));
  }
}

void Coordinator::OnDatagram(net::Endpoint from,
                             const cruz::Bytes& payload) {
  CoordMessage m;
  try {
    m = CoordMessage::Decode(payload);
  } catch (const cruz::CodecError&) {
    return;
  }
  if (!op_active_ || m.op_id != stats_.op_id) return;
  ++stats_.total_messages;

  switch (m.type) {
    case MsgType::kCommDisabled:
      // Fig. 4: once communication is disabled on every node, no node's
      // saved state can be perturbed by any other — grant early resume.
      if (options_.variant == ProtocolVariant::kOptimized) {
        pending_comm_disabled_.erase(from.ip.value);
        if (pending_comm_disabled_.empty()) {
          BroadcastContinue();
        }
      }
      break;
    case MsgType::kDone:
      if (pending_done_.erase(from.ip.value) != 0) {
        stats_.max_local = std::max(stats_.max_local, m.local_duration);
        stats_.total_messages += m.extra_messages;
        if (pending_done_.empty()) {
          stats_.checkpoint_latency = node_.os().sim().Now() - op_start_;
          BroadcastContinue();  // Step 3 (no-op if Fig. 4 already sent it)
          // With copy-on-write the <continue-done>s can precede the last
          // <done> (resume happens before the disk write finishes).
          if (pending_continue_done_.empty()) Finish(true);
        }
      }
      break;
    case MsgType::kContinueDone:
      if (pending_continue_done_.erase(from.ip.value) != 0) {
        stats_.max_continue = std::max(stats_.max_continue,
                                       m.local_duration);
        if (pending_continue_done_.empty() && pending_done_.empty()) {
          Finish(true);
        }
      }
      break;
    default:
      break;
  }
}

void Coordinator::ScheduleRetransmit() {
  if (options_.retransmit_interval == 0) return;
  retransmit_event_ = node_.os().sim().Schedule(
      options_.retransmit_interval, [this] {
        retransmit_event_ = sim::kInvalidEventId;
        if (!op_active_) return;
        RetransmitPending();
        ScheduleRetransmit();
      });
}

void Coordinator::RetransmitPending() {
  // Re-send the phase-appropriate request to every member that has not
  // answered it. Agents deduplicate by op id and re-send lost replies.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    std::uint32_t key = members_[i].agent_ip.value;
    if (pending_done_.count(key) != 0) {
      CoordMessage m;
      m.type = is_restart_ ? MsgType::kRestart : MsgType::kCheckpoint;
      m.op_id = stats_.op_id;
      m.pod_id = members_[i].pod;
      m.variant = options_.variant;
      m.image_path = image_paths_[i];
      if (!is_restart_) {
        m.incremental = options_.incremental;
        m.copy_on_write = options_.copy_on_write;
      }
      SendToAgent(i, std::move(m));
    } else if (continue_sent_ && pending_continue_done_.count(key) != 0) {
      CoordMessage m;
      m.type = MsgType::kContinue;
      m.op_id = stats_.op_id;
      m.pod_id = members_[i].pod;
      m.variant = options_.variant;
      SendToAgent(i, std::move(m));
    }
  }
}

void Coordinator::Finish(bool success) {
  if (timeout_event_ != sim::kInvalidEventId) {
    node_.os().sim().Cancel(timeout_event_);
    timeout_event_ = sim::kInvalidEventId;
  }
  if (retransmit_event_ != sim::kInvalidEventId) {
    node_.os().sim().Cancel(retransmit_event_);
    retransmit_event_ = sim::kInvalidEventId;
  }
  stats_.success = success;
  stats_.full_latency = node_.os().sim().Now() - op_start_;
  DurationNs local = stats_.max_local + stats_.max_continue;
  stats_.coordination_overhead =
      stats_.full_latency > local ? stats_.full_latency - local : 0;
  op_active_ = false;
  CRUZ_INFO("coord") << (is_restart_ ? "restart" : "checkpoint") << " op "
                     << stats_.op_id << (success ? " ok" : " FAILED")
                     << ": latency=" << ToMillis(stats_.checkpoint_latency)
                     << "ms overhead="
                     << ToMicros(stats_.coordination_overhead) << "us msgs="
                     << stats_.total_messages;
  if (done_fn_) {
    DoneFn fn = std::move(done_fn_);
    fn(stats_);
  }
}

}  // namespace cruz::coord
