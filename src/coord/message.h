// Coordination protocol messages (paper Fig. 2 / Fig. 4 / §5).
//
// The Checkpoint Coordinator and per-node Checkpoint Agents exchange these
// over UDP using node-level addresses (never pod addresses), so the
// netfilter drop rule a checkpoint installs can never cut off control
// traffic (paper footnote 4). The flush-marker messages implement the
// CoCheck/MPVM-style all-to-all baseline used for the O(N) vs O(N²)
// comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/store/replica.h"
#include "common/bytes.h"
#include "common/units.h"
#include "os/types.h"

namespace cruz::coord {

constexpr std::uint16_t kAgentPort = 7001;
constexpr std::uint16_t kCoordinatorPort = 7002;
// Hierarchical mode: every node runs a (mostly idle) sub-coordinator on
// this port; the root addresses shards by their first member's node.
constexpr std::uint16_t kShardPort = 7003;

enum class MsgType : std::uint8_t {
  kCheckpoint = 1,    // coordinator -> agent: take a local checkpoint
  kDone = 2,          // agent -> coordinator: local checkpoint complete
  kContinue = 3,      // coordinator -> agent: resume execution
  kContinueDone = 4,  // agent -> coordinator: resumed
  kRestart = 5,       // coordinator -> agent: restore from image
  kAbort = 6,         // coordinator -> agent: cancel, resume as-is
  kCommDisabled = 7,  // agent -> coordinator: Fig. 4 early notification
  kFlushMarker = 8,   // agent -> agent: flush-baseline channel marker
  kFlushAck = 9,      // agent -> agent: marker acknowledged
  // Failure-model extensions (the paper notes the protocol "can be
  // extended in a straightforward way to tolerate Coordinator and Agent
  // failures"):
  kFailed = 10,  // agent -> coordinator: local operation failed fast
  kPing = 11,    // coordinator -> agent: liveness probe during an op
  kPong = 12,    // agent -> coordinator: liveness reply
  // Hierarchical coordination (DESIGN.md §13): the root broadcasts each
  // phase to per-node sub-coordinators, which fan the flat protocol out
  // to their agent shard and return one aggregated ack. Sub-coordinator
  // replies use distinct types from agent replies so a sub and the agent
  // co-located on the same node can never produce colliding correlation
  // ids (CorrId keys on op:type:sender:seq).
  kShardCheckpoint = 13,    // root -> sub: checkpoint your shard members
  kShardRestart = 14,       // root -> sub: restart your shard members
  kShardContinue = 15,      // root -> sub: broadcast <continue> to shard
  kShardAbort = 16,         // root -> sub: cancel, clean up the shard
  kShardDone = 17,          // sub -> root: every member reported <done>
  kShardContinueDone = 18,  // sub -> root: every member resumed
  kShardCommDisabled = 19,  // sub -> root: Fig. 4 aggregated notification
  kShardFailed = 20,        // sub -> root: a member failed / gave up
  kShardPong = 21,          // sub -> root: liveness reply to kPing
  // Post-copy migration page-server channel (DESIGN.md §14). These flow
  // between the migration target (requester) and the source's frozen
  // page store; ckpt/live_migrate.cc mirrors the raw byte values so the
  // ckpt library does not link against coord.
  kPageRequest = 22,   // target -> source: demand-fetch one page
  kPageResponse = 23,  // source -> target: page content delivery
};

// Human-readable message-type name (trace/metric labels).
const char* MsgTypeName(MsgType type);

enum class ProtocolVariant : std::uint8_t {
  kBlocking = 0,   // Fig. 2: all nodes resume after global completion
  kOptimized = 1,  // Fig. 4: resume as soon as local save completes,
                   // once communication is disabled everywhere
  kFlushBaseline = 2,  // CoCheck/MPVM-style all-to-all flush before saving
};

// One agent in a sub-coordinator's shard. Downward (kShardCheckpoint /
// kShardRestart) it names the member and its per-member request
// parameters; upward (kShardDone) it carries the member's tiered-commit
// report so the root can assemble the generation manifest.
struct ShardMember {
  std::uint32_t agent_ip = 0;  // node address (Ipv4Address value)
  std::uint32_t pod = 0;
  std::string image_path;
  std::uint8_t restore_source = 255;    // upward: tier that served a restart
  std::vector<ckpt::Replica> replicas;  // upward: where the image landed
};

struct CoordMessage {
  MsgType type = MsgType::kCheckpoint;
  std::uint64_t op_id = 0;     // one coordinated operation
  // Fencing epoch: globally monotonic across coordinator incarnations
  // (persisted in the coordinator's intent journal). Agents remember the
  // highest epoch observed and silently reject lower-epoch requests, so a
  // delayed or replayed op from a dead coordinator can never start work
  // after a newer op has been seen.
  std::uint64_t epoch = 0;
  os::PodId pod_id = 0;        // target pod on the receiving node
  ProtocolVariant variant = ProtocolVariant::kBlocking;
  std::string image_path;      // checkpoint/restart image in the shared FS
  // §5.2 optimizations: incremental saves only pages dirtied since the
  // agent's previous checkpoint of this pod; copy-on-write lets the pod
  // resume right after the in-memory capture, while the disk write
  // completes in the background.
  bool incremental = false;
  bool copy_on_write = false;
  // Write version-2 images with RLE-compressed pages (self-describing
  // header; agents restoring read either version).
  bool compress = false;
  // Tiered storage: checkpoints commit to the local + partner disk tiers
  // (netfs flush in the background) and restarts resolve images across
  // the tier hierarchy instead of reading the netfs directly.
  bool tiered = false;

  // Agent-reported local durations (kDone / kContinueDone), used by the
  // coordinator to compute the coordination overhead exactly as §6 does:
  // total latency minus the max local checkpoint and continue times.
  DurationNs local_duration = 0;
  // Agent-reported pod downtime (kDone): how long the pod's processes
  // were actually stopped. Under copy-on-write this covers only the
  // stop-the-world snapshot, not the background write-out.
  DurationNs downtime = 0;
  // Extra agent-to-agent messages (flush baseline) for the message count.
  std::uint32_t extra_messages = 0;
  std::uint32_t sender_index = 0;  // member index (flush marker routing)
  // Correlation sequence: monotonic per sending process, assigned at every
  // Send (a retransmission is a new send, a wire-level duplicate is not).
  // Together with the sender address it names one transmission, which is
  // how the causal analyzer joins send instants to receive instants even
  // under drop/dup/delay fault plans. 0 = unset (pre-correlation sender).
  std::uint32_t corr_seq = 0;
  // Peer agent addresses (flush baseline: who to exchange markers with).
  std::vector<std::uint32_t> peers;
  // Tiered mode, kDone after a checkpoint: where the agent's image landed
  // (local + partner replicas), recorded in the generation manifest.
  std::vector<ckpt::Replica> replicas;
  // Tiered mode, kDone after a restart: which tier actually served the
  // image (ckpt::Tier; 255 = unset/legacy netfs read).
  std::uint8_t restore_source = 255;
  // Hierarchical mode. Downward: the shard roster a sub-coordinator must
  // drive, plus the root's op timeout so an orphaned sub can self-clean
  // shortly after the root would have given up. Upward (kShardDone): the
  // per-member tiered reports.
  std::vector<ShardMember> shard_members;
  DurationNs op_timeout = 0;
  // Roster fragmentation: a full shard roster can exceed the Ethernet
  // MTU (the stack does not IP-fragment), so shard requests carry the
  // total roster size and the sub-coordinator accumulates fragments
  // until it has this many distinct members. 0 = unfragmented.
  std::uint32_t member_total = 0;

  cruz::Bytes Encode() const;
  static CoordMessage Decode(cruz::ByteSpan wire);
};

// Correlation id for trace send/recv instants: "<op>:<type>:<sender>:<seq>".
// Both ends can compute it — the sender knows its own address, the receiver
// reads the datagram source — so matching needs no shared state.
std::string CorrId(const CoordMessage& m, const std::string& sender);

// Splits a message whose shard roster could exceed the Ethernet MTU (the
// stack does not IP-fragment; an oversized frame is dropped at the NIC)
// into copies each carrying an MTU-safe slice of shard_members plus
// member_total = the full roster size, so the receiver can tell when it
// holds every member. A message with no roster yields one unchanged copy.
// Used for both directions: root -> sub requests and the sub's aggregated
// <shard-done> report.
std::vector<CoordMessage> FragmentRoster(const CoordMessage& full);

}  // namespace cruz::coord
