#include "coord/shard_coordinator.h"

#include <algorithm>

#include "ckpt/store/tiered_store.h"
#include "common/error.h"
#include "common/log.h"
#include "sim/simulator.h"

namespace cruz::coord {

namespace {
// Retransmission toward the shard's agents: faster than the root's
// defaults (the sub is one hop from its agents), with a round cap that
// turns a silent agent into a prompt <shard-failed> instead of letting
// the root eat its whole op timeout.
constexpr DurationNs kRetransmitInterval = 500 * kMillisecond;
constexpr double kRetransmitBackoff = 2.0;
constexpr std::uint32_t kMaxRetransmitRounds = 8;
// Self-clean margin past the root's op timeout: a shard orphaned by a
// dead root aborts itself shortly after the root would have given up.
constexpr DurationNs kSelfCleanSlack = 2 * kSecond;

bool IsRootRequest(MsgType type) {
  switch (type) {
    case MsgType::kShardCheckpoint:
    case MsgType::kShardRestart:
    case MsgType::kShardContinue:
    case MsgType::kShardAbort:
    case MsgType::kPing:
      return true;
    default:
      return false;
  }
}
}  // namespace

ShardCoordinator::ShardCoordinator(os::Node& node, ckpt::TieredStore* tiered)
    : node_(node), journal_(node.os().fs(), JournalPath()), tiered_(tiered) {
  node_.stack().RegisterUdpService(
      kShardPort, [this](net::Endpoint from, const cruz::Bytes& payload) {
        OnDatagram(from, payload);
      });
  RecoverFromJournal();
}

ShardCoordinator::~ShardCoordinator() {
  CancelTimers();
  node_.stack().UnregisterUdpService(kShardPort);
}

std::string ShardCoordinator::JournalPath() const {
  return "/coord/shard_journal_" + node_.name();
}

void ShardCoordinator::RecoverFromJournal() {
  IntentJournal::RecoveredState state = journal_.Recover();
  max_epoch_seen_ = std::max(max_epoch_seen_, state.last_epoch);
  if (!state.incomplete.has_value()) return;

  // A previous incarnation died driving this shard. Fence the agents
  // (they resume their pods and drop partial state) and reap whatever
  // images the interrupted checkpoint wrote, on every tier.
  const JournalRecord& intent = *state.incomplete;
  node_.os().sim().tracer().Instant(
      "coord", "coord.shard.recovery",
      obs::TraceAttrs{}.Op(intent.epoch).Agent(node_.name()).Arg(
          "kind", intent.is_restart ? "restart" : "checkpoint"));
  CRUZ_WARN("coord") << node_.name()
                     << ": shard journal recovery: aborting in-flight op "
                     << intent.epoch;
  last_aborted_op_ = std::max(last_aborted_op_, intent.epoch);
  for (const JournalRecord::Member& m : intent.members) {
    CoordMessage abort;
    abort.type = MsgType::kAbort;
    abort.op_id = intent.epoch;
    abort.epoch = intent.epoch;
    abort.pod_id = m.pod;
    Send(net::Endpoint{net::Ipv4Address{m.agent_ip}, kAgentPort}, abort);
    if (!intent.is_restart && !m.image_path.empty()) {
      node_.os().fs().Remove(m.image_path);
      if (tiered_ != nullptr) tiered_->RemoveEverywhere(m.image_path);
    }
  }
  JournalRecord outcome;
  outcome.type = JournalRecord::Type::kAbort;
  outcome.epoch = intent.epoch;
  outcome.is_restart = intent.is_restart;
  journal_.Append(outcome);
}

void ShardCoordinator::Crash() {
  if (crashed_) return;
  crashed_ = true;
  // A dead process fires no timers: without this the retransmit/self-clean
  // events would keep acting (sending aborts!) from beyond the grave.
  CancelTimers();
  EndOpSpan("sub-crash");
  node_.os().sim().tracer().Instant(
      "coord", "coord.shard.crash", obs::TraceAttrs{}.Agent(node_.name()));
  CRUZ_WARN("coord") << node_.name() << ": sub-coordinator CRASHED";
}

void ShardCoordinator::Reset() {
  crashed_ = false;
  CancelTimers();
  op_active_ = false;
  op_ = ActiveOp{};
  // Volatile state does not survive a process restart; the journal
  // restores the fencing epoch and aborts the interrupted op.
  max_epoch_seen_ = 0;
  last_completed_op_ = 0;
  last_aborted_op_ = 0;
  last_had_continue_done_ = false;
  RecoverFromJournal();
  CRUZ_INFO("coord") << node_.name() << ": sub-coordinator restarted";
}

void ShardCoordinator::CancelTimers() {
  if (retransmit_event_ != sim::kInvalidEventId) {
    node_.os().sim().Cancel(retransmit_event_);
    retransmit_event_ = sim::kInvalidEventId;
  }
  if (timeout_event_ != sim::kInvalidEventId) {
    node_.os().sim().Cancel(timeout_event_);
    timeout_event_ = sim::kInvalidEventId;
  }
}

void ShardCoordinator::EndOpSpan(const char* outcome) {
  if (op_.op_span == obs::kInvalidSpanId) return;
  node_.os().sim().tracer().EndSpan(
      op_.op_span, {{"outcome", outcome},
                    {"shard_messages", std::to_string(op_.messages)}});
  op_.op_span = obs::kInvalidSpanId;
}

void ShardCoordinator::Send(net::Endpoint to, CoordMessage m) {
  // Same correlation discipline as the root and the agents: stamp before
  // the fault layer so a dropped transmission still leaves a send
  // instant, and a wire duplicate shares the corr id.
  m.corr_seq = ++next_corr_seq_;
  node_.os().sim().tracer().Instant(
      "coord", "coord.msg.send",
      obs::TraceAttrs{}
          .Op(m.op_id)
          .Agent(node_.name())
          .Arg("type", MsgTypeName(m.type))
          .Arg("corr", CorrId(m, node_.ip().ToString()))
          .Arg("dst", to.ip.ToString()));
  node_.os().sim().metrics().counter("coord.shard.messages_sent").Add();
  fault::MessageFate fate;
  if (fault_ != nullptr) {
    fate = fault_->OnControlSend(node_.name(), to.ip.value,
                                 static_cast<std::uint8_t>(m.type));
  }
  if (fate.drop) return;

  net::UdpDatagram dgram;
  dgram.src_port = kShardPort;
  dgram.dst_port = to.port;
  dgram.payload = m.Encode();
  net::Ipv4Packet pkt;
  pkt.src = node_.ip();
  pkt.dst = to.ip;
  pkt.proto = net::IpProto::kUdp;
  pkt.payload = dgram.Encode();
  int copies = fate.duplicate ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    if (fate.delay > 0) {
      os::NetworkStack* stack = &node_.stack();
      node_.os().sim().Schedule(fate.delay,
                                [stack, pkt] { stack->SendIpv4(pkt); });
    } else {
      node_.stack().SendIpv4(pkt);
    }
  }
}

void ShardCoordinator::OnDatagram(net::Endpoint from,
                                  const cruz::Bytes& payload) {
  if (crashed_) return;  // a dead sub-coordinator hears nothing
  CoordMessage m;
  try {
    m = CoordMessage::Decode(payload);
  } catch (const cruz::CodecError&) {
    return;
  }
  {
    obs::TraceAttrs attrs;
    attrs.Op(m.op_id).Agent(node_.name()).Arg("type", MsgTypeName(m.type));
    if (m.corr_seq != 0) {
      attrs.Arg("corr", CorrId(m, from.ip.ToString()));
    }
    attrs.Arg("src", from.ip.ToString());
    node_.os().sim().tracer().Instant("coord", "coord.msg.recv",
                                      std::move(attrs));
  }
  // Epoch fencing, same rule as the agents: requests below the observed
  // high-water mark come from a dead root incarnation.
  if (IsRootRequest(m.type)) {
    if (m.epoch < max_epoch_seen_) {
      CRUZ_WARN("coord") << node_.name() << ": fenced stale shard request "
                         << MsgTypeName(m.type) << " (epoch " << m.epoch
                         << " < " << max_epoch_seen_ << ")";
      return;
    }
    max_epoch_seen_ = m.epoch;
  }
  switch (m.type) {
    case MsgType::kShardCheckpoint:
    case MsgType::kShardRestart:
      HandleShardRequest(m, from);
      break;
    case MsgType::kShardContinue:
      HandleShardContinue(m, from);
      break;
    case MsgType::kShardAbort:
      HandleShardAbort(m);
      break;
    case MsgType::kPing: {
      // Liveness: answered even mid-op (the probe asks "is the process
      // alive", not "is the shard finished").
      CoordMessage pong;
      pong.type = MsgType::kShardPong;
      pong.op_id = m.op_id;
      pong.epoch = m.epoch;
      Send(from, pong);
      break;
    }
    case MsgType::kDone:
    case MsgType::kContinueDone:
    case MsgType::kCommDisabled:
    case MsgType::kFailed:
      HandleAgentReply(m, from);
      break;
    default:
      break;
  }
}

void ShardCoordinator::HandleShardRequest(const CoordMessage& m,
                                          net::Endpoint from) {
  if (op_active_ && op_.op_id == m.op_id) {
    if (op_.started) {
      // A re-request after our <shard-done> went out means the reply was
      // lost (the completed-op cache below only covers finished ops):
      // re-answer. Before <shard-done> the root is just impatient.
      if (op_.done_sent) SendReply(from, last_done_reply_);
      return;
    }
    // Another roster fragment (or a retransmitted one — the dedup below
    // absorbs duplicates).
    for (const ShardMember& sm : m.shard_members) {
      bool known = false;
      for (const ShardMember& have : op_.members) {
        if (have.agent_ip == sm.agent_ip) {
          known = true;
          break;
        }
      }
      if (!known) op_.members.push_back(sm);
    }
    if (op_.members.size() >= op_.member_total) StartShardOp();
    return;
  }
  if (m.op_id == last_completed_op_ && last_completed_op_ != 0) {
    // The root retransmitted a request we already served: the original
    // <shard-done> was lost. Re-answer from the cache.
    SendReply(from, last_done_reply_);
    return;
  }
  if (m.op_id <= last_aborted_op_) return;  // overtaken by its abort
  if (op_active_) {
    // A newer epoch supersedes the in-flight op: the root gave up on it
    // (we missed the abort) and moved on.
    if (m.epoch <= op_.epoch) return;
    AbortShardOp("superseded", /*notify_root=*/false);
  }
  CRUZ_CHECK(!m.shard_members.empty(), "shard request with no members");

  op_active_ = true;
  op_ = ActiveOp{};
  op_.op_id = m.op_id;
  op_.epoch = m.epoch;
  op_.is_restart = m.type == MsgType::kShardRestart;
  op_.variant = m.variant;
  op_.root = from;
  op_.request = m;
  op_.members = m.shard_members;
  op_.member_total = std::max(
      m.member_total, static_cast<std::uint32_t>(m.shard_members.size()));
  // Self-clean armed on the first fragment: a roster half-delivered by a
  // dying root must not stay active forever either.
  if (m.op_timeout > 0) {
    timeout_event_ = node_.os().sim().Schedule(
        m.op_timeout + kSelfCleanSlack, [this] {
          timeout_event_ = sim::kInvalidEventId;
          if (!op_active_) return;
          // Orphaned shard: the root would have timed out already. Do
          // not leave pods frozen behind a dead root — abort locally.
          AbortShardOp("self-clean timeout", /*notify_root=*/true);
        });
  }
  if (op_.members.size() < op_.member_total) return;  // await fragments
  StartShardOp();
}

void ShardCoordinator::StartShardOp() {
  op_.started = true;
  op_.op_span = node_.os().sim().tracer().BeginSpan(
      "coord", "coord.shard.op",
      obs::TraceAttrs{}
          .Op(op_.op_id)
          .Phase("shard")
          .Agent(node_.name())
          .Arg("kind", op_.is_restart ? "restart" : "checkpoint")
          .Arg("shard_size", op_.members.size()));
  node_.os().sim().metrics().counter("coord.shard.ops_total").Add();

  // Write-ahead intent: a sub-coordinator that dies here must know, on
  // restart, which agents to fence and which images to reap.
  JournalRecord intent;
  intent.type = JournalRecord::Type::kIntent;
  intent.epoch = op_.epoch;
  intent.is_restart = op_.is_restart;
  for (const ShardMember& sm : op_.members) {
    intent.members.push_back(
        JournalRecord::Member{sm.agent_ip, sm.pod, sm.image_path});
  }
  journal_.Append(intent);

  if (test_ack_without_forward_) {
    // Sabotage: lie upward. Fabricate plausible per-member reports and
    // acknowledge without ever contacting an agent; no pod freezes, no
    // image is written. The gen-commit invariant must catch the commit
    // with zero agent saves.
    for (ShardMember& sm : op_.members) {
      if (!op_.is_restart) {
        sm.replicas = {ckpt::Replica{ckpt::Tier::kLocal, node_.index(),
                                     0, 0}};
      } else {
        sm.restore_source =
            static_cast<std::uint8_t>(ckpt::Tier::kLocal);
      }
    }
    op_.max_local = 1 * kMillisecond;
    op_.max_downtime = 1 * kMillisecond;
    if (op_.variant == ProtocolVariant::kOptimized) {
      CoordMessage cd;
      cd.type = MsgType::kShardCommDisabled;
      cd.op_id = op_.op_id;
      cd.epoch = op_.epoch;
      Send(op_.root, cd);
      op_.comm_disabled_sent = true;
    }
    SendShardDone();
    return;
  }

  for (const ShardMember& sm : op_.members) {
    op_.pending_done.insert(sm.agent_ip);
    op_.pending_continue_done.insert(sm.agent_ip);
    op_.pending_comm_disabled.insert(sm.agent_ip);
    ForwardRequestTo(sm);
  }
  retransmit_interval_now_ = kRetransmitInterval;
  retransmit_rounds_ = 0;
  ScheduleRetransmit();
}

void ShardCoordinator::ForwardRequestTo(const ShardMember& member) {
  const CoordMessage& req = op_.request;
  CoordMessage m;
  m.type = op_.is_restart ? MsgType::kRestart : MsgType::kCheckpoint;
  m.op_id = op_.op_id;
  m.epoch = op_.epoch;
  m.pod_id = member.pod;
  m.variant = op_.variant;
  m.image_path = member.image_path;
  m.tiered = req.tiered;
  if (!op_.is_restart) {
    m.incremental = req.incremental;
    m.copy_on_write = req.copy_on_write;
    m.compress = req.compress;
  }
  ++op_.messages;
  Send(net::Endpoint{net::Ipv4Address{member.agent_ip}, kAgentPort},
       std::move(m));
}

void ShardCoordinator::BroadcastContinue() {
  if (op_.continue_broadcast) return;
  op_.continue_broadcast = true;
  if (test_ack_without_forward_) return;  // nothing was ever frozen
  for (const ShardMember& sm : op_.members) {
    CoordMessage m;
    m.type = MsgType::kContinue;
    m.op_id = op_.op_id;
    m.epoch = op_.epoch;
    m.pod_id = sm.pod;
    m.variant = op_.variant;
    ++op_.messages;
    Send(net::Endpoint{net::Ipv4Address{sm.agent_ip}, kAgentPort},
         std::move(m));
  }
}

void ShardCoordinator::HandleShardContinue(const CoordMessage& m,
                                           net::Endpoint from) {
  if (!op_active_ || op_.op_id != m.op_id) {
    if (m.op_id == last_completed_op_ && last_completed_op_ != 0 &&
        last_had_continue_done_) {
      CoordMessage reply = last_continue_done_reply_;
      Send(from, reply);
    }
    return;
  }
  if (!op_.started) return;  // roster still assembling; <continue> is stale
  BroadcastContinue();
  if (op_.pending_continue_done.empty()) {
    if (!op_.continue_done_sent) {
      SendShardContinueDone();
    } else {
      // Copy-on-write overtake: <continue-done> already went out (and was
      // lost — the root is re-asking) while <done> is still pending.
      Send(from, last_continue_done_reply_);
    }
  }
}

void ShardCoordinator::HandleShardAbort(const CoordMessage& m) {
  last_aborted_op_ = std::max(last_aborted_op_, m.op_id);
  if (op_active_ && op_.op_id == m.op_id) {
    AbortShardOp("root abort", /*notify_root=*/false);
  }
}

void ShardCoordinator::HandleAgentReply(const CoordMessage& m,
                                        net::Endpoint from) {
  if (!op_active_ || op_.op_id != m.op_id) return;
  ++op_.messages;
  switch (m.type) {
    case MsgType::kCommDisabled:
      if (op_.variant == ProtocolVariant::kOptimized &&
          op_.pending_comm_disabled.erase(from.ip.value) != 0 &&
          op_.pending_comm_disabled.empty() && !op_.comm_disabled_sent) {
        // Fig. 4, aggregated: the whole shard has communication disabled.
        op_.comm_disabled_sent = true;
        CoordMessage cd;
        cd.type = MsgType::kShardCommDisabled;
        cd.op_id = op_.op_id;
        cd.epoch = op_.epoch;
        Send(op_.root, cd);
      }
      break;
    case MsgType::kDone:
      if (op_.pending_done.erase(from.ip.value) != 0) {
        op_.max_local = std::max(op_.max_local, m.local_duration);
        op_.max_downtime = std::max(op_.max_downtime, m.downtime);
        for (ShardMember& sm : op_.members) {
          if (sm.agent_ip == from.ip.value) {
            sm.replicas = m.replicas;
            sm.restore_source = m.restore_source;
            break;
          }
        }
        if (op_.pending_done.empty()) SendShardDone();
      }
      break;
    case MsgType::kContinueDone:
      if (op_.pending_continue_done.erase(from.ip.value) != 0) {
        op_.max_continue = std::max(op_.max_continue, m.local_duration);
        if (op_.pending_continue_done.empty() && op_.continue_broadcast) {
          SendShardContinueDone();
        }
      }
      break;
    case MsgType::kFailed:
      AbortShardOp("member failed", /*notify_root=*/true);
      break;
    default:
      break;
  }
}

void ShardCoordinator::SendReply(net::Endpoint to, const CoordMessage& full) {
  // The aggregated <shard-done> can exceed the MTU just like the downward
  // roster; the root accumulates fragments per shard.
  for (CoordMessage& frag : FragmentRoster(full)) Send(to, std::move(frag));
}

void ShardCoordinator::SendShardDone() {
  CoordMessage done;
  done.type = MsgType::kShardDone;
  done.op_id = op_.op_id;
  done.epoch = op_.epoch;
  done.local_duration = op_.max_local;
  done.downtime = op_.max_downtime;
  if (op_.request.tiered) {
    // Per-member tiered reports (replicas / restore sources) for the
    // root's generation manifest. The root matches members by agent ip,
    // so the image paths stay home — fewer bytes, fewer fragments.
    done.shard_members = op_.members;
    for (ShardMember& sm : done.shard_members) sm.image_path.clear();
  }
  done.extra_messages = op_.messages;  // cumulative; root adds the delta
  op_.done_sent = true;
  last_done_reply_ = done;
  SendReply(op_.root, done);
  MaybeCompleteOp();
}

void ShardCoordinator::SendShardContinueDone() {
  CoordMessage cd;
  cd.type = MsgType::kShardContinueDone;
  cd.op_id = op_.op_id;
  cd.epoch = op_.epoch;
  cd.local_duration = op_.max_continue;
  cd.extra_messages = op_.messages;  // cumulative; root adds the delta
  last_continue_done_reply_ = cd;
  last_had_continue_done_ = true;
  Send(op_.root, std::move(cd));
  op_.pending_continue_done.clear();
  op_.continue_done_sent = true;
  MaybeCompleteOp();
}

void ShardCoordinator::MaybeCompleteOp() {
  // Completion: both aggregated acks are out (copy-on-write lets the
  // <continue-done>s overtake the last <done>, so order is free).
  if (!op_.done_sent || !op_.continue_done_sent) return;
  JournalRecord outcome;
  outcome.type = JournalRecord::Type::kCommit;
  outcome.epoch = op_.epoch;
  outcome.is_restart = op_.is_restart;
  journal_.Append(outcome);
  ++ops_served_;
  last_completed_op_ = op_.op_id;
  last_root_ = op_.root;
  EndOpSpan("ok");
  CancelTimers();
  op_active_ = false;
}

void ShardCoordinator::AbortShardOp(const char* reason, bool notify_root) {
  if (!op_active_) return;
  CRUZ_WARN("coord") << node_.name() << ": shard op " << op_.op_id
                     << " aborted (" << reason << ")";
  node_.os().sim().tracer().Instant(
      "coord", "coord.shard.abort",
      obs::TraceAttrs{}.Op(op_.op_id).Agent(node_.name()).Arg("reason",
                                                              reason));
  node_.os().sim().metrics().counter("coord.shard.aborts_total").Add();
  last_aborted_op_ = std::max(last_aborted_op_, op_.op_id);
  for (const ShardMember& sm : op_.members) {
    CoordMessage abort;
    abort.type = MsgType::kAbort;
    abort.op_id = op_.op_id;
    abort.epoch = op_.epoch;
    abort.pod_id = sm.pod;
    ++op_.messages;
    Send(net::Endpoint{net::Ipv4Address{sm.agent_ip}, kAgentPort},
         std::move(abort));
    // The agents delete their own images too; this covers members whose
    // agent is dead or was never reached — zero orphans on any tier.
    if (!op_.is_restart && !sm.image_path.empty()) {
      node_.os().fs().Remove(sm.image_path);
      if (tiered_ != nullptr) tiered_->RemoveEverywhere(sm.image_path);
    }
  }
  if (notify_root) {
    CoordMessage failed;
    failed.type = MsgType::kShardFailed;
    failed.op_id = op_.op_id;
    failed.epoch = op_.epoch;
    Send(op_.root, failed);
  }
  JournalRecord outcome;
  outcome.type = JournalRecord::Type::kAbort;
  outcome.epoch = op_.epoch;
  outcome.is_restart = op_.is_restart;
  journal_.Append(outcome);
  EndOpSpan("abort");
  CancelTimers();
  op_active_ = false;
}

void ShardCoordinator::ScheduleRetransmit() {
  DurationNs base = retransmit_interval_now_;
  DurationNs jittered =
      base - base / 4 + node_.os().sim().rng().NextBelow(base / 2 + 1);
  retransmit_event_ = node_.os().sim().Schedule(jittered, [this] {
    retransmit_event_ = sim::kInvalidEventId;
    if (!op_active_) return;
    const bool owed =
        !op_.pending_done.empty() ||
        (op_.continue_broadcast && !op_.pending_continue_done.empty());
    if (owed) {
      ++retransmit_rounds_;
      if (retransmit_rounds_ > kMaxRetransmitRounds) {
        AbortShardOp("retry cap", /*notify_root=*/true);
        return;
      }
      RetransmitPending();
      DurationNs cap = 4 * kRetransmitInterval;
      double next = static_cast<double>(retransmit_interval_now_) *
                    kRetransmitBackoff;
      retransmit_interval_now_ = static_cast<DurationNs>(
          std::min(next, static_cast<double>(cap)));
    } else {
      // The agents owe us nothing — we are waiting on the root (lost
      // upward replies are healed by the root's own retransmits, and an
      // orphaned shard is bounded by the self-clean timeout), so the
      // retry cap must not tick.
      retransmit_rounds_ = 0;
      retransmit_interval_now_ = kRetransmitInterval;
    }
    ScheduleRetransmit();
  });
}

void ShardCoordinator::RetransmitPending() {
  for (const ShardMember& sm : op_.members) {
    if (op_.pending_done.count(sm.agent_ip) != 0) {
      node_.os().sim().tracer().Instant(
          "coord", "coord.retransmit",
          obs::TraceAttrs{}.Op(op_.op_id).Agent(node_.name()).Arg(
              "type", op_.is_restart ? "restart" : "checkpoint"));
      node_.os().sim().metrics().counter("coord.retransmits_total").Add();
      ForwardRequestTo(sm);
    } else if (op_.continue_broadcast &&
               op_.pending_continue_done.count(sm.agent_ip) != 0) {
      CoordMessage m;
      m.type = MsgType::kContinue;
      m.op_id = op_.op_id;
      m.epoch = op_.epoch;
      m.pod_id = sm.pod;
      m.variant = op_.variant;
      node_.os().sim().tracer().Instant(
          "coord", "coord.retransmit",
          obs::TraceAttrs{}.Op(op_.op_id).Agent(node_.name()).Arg(
              "type", MsgTypeName(m.type)));
      node_.os().sim().metrics().counter("coord.retransmits_total").Add();
      ++op_.messages;
      Send(net::Endpoint{net::Ipv4Address{sm.agent_ip}, kAgentPort},
           std::move(m));
    }
  }
}

}  // namespace cruz::coord
