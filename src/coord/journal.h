// Coordinator write-ahead intent journal.
//
// Before the coordinator sends the first message of a coordinated
// operation it appends an *intent* record (epoch, kind, members, image
// paths) to an append-only journal in the shared network filesystem; on
// completion it appends a matching *commit* or *abort* record. A
// coordinator that restarts (crash, migration) replays the journal: the
// highest epoch seeds its fencing counter, and a trailing intent without
// an outcome identifies the in-flight op, which the new incarnation
// aborts — fencing the agents and garbage-collecting any partial images.
//
// Records are length-prefixed and CRC-protected; a torn tail record
// (coordinator died mid-append) is detected and ignored.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "os/netfs.h"
#include "os/types.h"

namespace cruz::coord {

struct JournalRecord {
  enum class Type : std::uint8_t { kIntent = 1, kCommit = 2, kAbort = 3 };

  struct Member {
    std::uint32_t agent_ip = 0;
    os::PodId pod = 0;
    std::string image_path;
  };

  Type type = Type::kIntent;
  std::uint64_t epoch = 0;
  bool is_restart = false;
  std::vector<Member> members;  // intent records only
  // Hierarchical mode: the shard fan-out the op ran with (0 = flat), so
  // recovery can re-derive the sub-coordinator set and fence it too.
  std::uint32_t fan_out = 0;
};

class IntentJournal {
 public:
  static constexpr const char* kDefaultPath = "/coord/journal";

  explicit IntentJournal(os::NetworkFileSystem& fs,
                         std::string path = kDefaultPath)
      : fs_(fs), path_(std::move(path)) {}

  void Append(const JournalRecord& record);

  // Full journal scan, skipping a torn/corrupt tail.
  std::vector<JournalRecord> ReadAll() const;

  struct RecoveredState {
    std::uint64_t last_epoch = 0;  // 0 = journal empty
    // Trailing intent with no commit/abort: the op the previous
    // incarnation left in flight.
    std::optional<JournalRecord> incomplete;
  };
  RecoveredState Recover() const;

  const std::string& path() const { return path_; }

 private:
  os::NetworkFileSystem& fs_;
  std::string path_;
};

}  // namespace cruz::coord
