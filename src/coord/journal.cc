#include "coord/journal.h"

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/error.h"
#include "common/log.h"

namespace cruz::coord {

void IntentJournal::Append(const JournalRecord& record) {
  cruz::ByteWriter payload;
  payload.PutU8(static_cast<std::uint8_t>(record.type));
  payload.PutU64(record.epoch);
  payload.PutBool(record.is_restart);
  payload.PutU32(static_cast<std::uint32_t>(record.members.size()));
  for (const JournalRecord::Member& m : record.members) {
    payload.PutU32(m.agent_ip);
    payload.PutU32(m.pod);
    payload.PutString(m.image_path);
  }
  payload.PutU32(record.fan_out);
  cruz::Bytes body = payload.Take();
  cruz::ByteWriter framed;
  framed.PutU32(static_cast<std::uint32_t>(body.size()));
  framed.PutU32(cruz::Crc32(body));
  framed.PutBytes(body);
  cruz::Bytes frame = framed.Take();
  fs_.AppendFile(path_, frame);
}

std::vector<JournalRecord> IntentJournal::ReadAll() const {
  std::vector<JournalRecord> records;
  cruz::Bytes raw;
  if (!SysOk(fs_.ReadFile(path_, raw))) return records;
  cruz::ByteReader r(raw);
  while (r.remaining() > 0) {
    JournalRecord rec;
    try {
      std::uint32_t len = r.GetU32();
      std::uint32_t crc = r.GetU32();
      cruz::Bytes body = r.GetBytes(len);
      if (cruz::Crc32(body) != crc) {
        throw cruz::CodecError("journal record CRC mismatch");
      }
      cruz::ByteReader br(body);
      std::uint8_t type = br.GetU8();
      if (type < 1 || type > 3) {
        throw cruz::CodecError("journal record type out of range");
      }
      rec.type = static_cast<JournalRecord::Type>(type);
      rec.epoch = br.GetU64();
      rec.is_restart = br.GetBool();
      std::uint32_t n = br.GetU32();
      for (std::uint32_t i = 0; i < n; ++i) {
        JournalRecord::Member m;
        m.agent_ip = br.GetU32();
        m.pod = br.GetU32();
        m.image_path = br.GetString();
        rec.members.push_back(std::move(m));
      }
      // Absent in records written before hierarchical mode existed.
      rec.fan_out = br.remaining() >= 4 ? br.GetU32() : 0;
    } catch (const cruz::CodecError&) {
      // Torn tail: the previous coordinator died mid-append. Everything
      // before this point is intact; the partial record carries no
      // committed state.
      CRUZ_WARN("coord") << "journal " << path_
                         << ": ignoring torn tail record";
      break;
    }
    records.push_back(std::move(rec));
  }
  return records;
}

IntentJournal::RecoveredState IntentJournal::Recover() const {
  RecoveredState state;
  std::optional<JournalRecord> open_intent;
  for (JournalRecord& rec : ReadAll()) {
    state.last_epoch = std::max(state.last_epoch, rec.epoch);
    if (rec.type == JournalRecord::Type::kIntent) {
      open_intent = std::move(rec);
    } else if (open_intent.has_value() &&
               open_intent->epoch == rec.epoch) {
      open_intent.reset();  // outcome recorded
    }
  }
  state.incomplete = std::move(open_intent);
  return state;
}

}  // namespace cruz::coord
