// Behavioural tests for TCP mechanisms that the checkpoint machinery
// leans on: zero-window persist probing, go-back-N timeout recovery,
// ACK fast-forwarding past unsent-but-acknowledged data, TIME_WAIT,
// half-close semantics, and parameterized loss/delay integrity sweeps.
#include <gtest/gtest.h>

#include "common/error.h"
#include "tcp/connection.h"
#include "tcp_harness.h"

namespace cruz::tcp {
namespace {

using testing::PatternBytes;
using testing::TcpPair;

// Drives an app-level pump until `total` bytes arrive at B; returns the
// received bytes.
Bytes PumpTransfer(TcpPair& p, const Bytes& data,
                   DurationNs deadline = 600 * kSecond) {
  std::size_t sent = 0;
  Bytes received;
  p.sim.RunWhile(
      [&] {
        while (sent < data.size()) {
          SysResult r = p.a->Send(ByteSpan(
              data.data() + sent,
              std::min<std::size_t>(8192, data.size() - sent)));
          if (r <= 0) break;
          sent += static_cast<std::size_t>(r);
        }
        Bytes chunk;
        while (p.b && p.b->Receive(chunk, 65536) > 0) {
          received.insert(received.end(), chunk.begin(), chunk.end());
          chunk.clear();
        }
        return received.size() >= data.size();
      },
      p.sim.Now() + deadline);
  return received;
}

// --- persist timer / zero-window probing -----------------------------------

TEST(TcpBehavior, ZeroWindowProbeRecoversLostWindowUpdate) {
  TcpConfig cfg;
  cfg.recv_buffer_capacity = 4096;  // tiny receiver
  TcpPair p;
  p.Connect(cfg);
  ASSERT_TRUE(p.RunUntilEstablished());
  // Fill the receiver's buffer completely; sender stalls on zero window.
  Bytes data = PatternBytes(4096);
  std::size_t sent = 0;
  while (sent < data.size()) {
    SysResult r = p.a->Send(ByteSpan(data.data() + sent,
                                     data.size() - sent));
    if (r <= 0) break;
    sent += static_cast<std::size_t>(r);
  }
  p.sim.RunFor(2 * kSecond);
  EXPECT_EQ(p.b->ReadableBytes(), 4096u);
  // Queue more; the window is zero so it cannot move.
  p.a->Send(PatternBytes(2000, 7));
  p.sim.RunFor(kSecond);
  // Drain the receiver while its window-update ACK is suppressed: drop
  // B->A traffic for a moment so the update is lost.
  p.SetCommDisabled(true, true);  // drop everything A receives
  Bytes out;
  EXPECT_EQ(p.b->Receive(out, 65536), 4096);
  p.sim.RunFor(100 * kMillisecond);
  p.SetCommDisabled(true, false);
  // Only the persist probe can discover the opened window now.
  ASSERT_TRUE(p.sim.RunWhile(
      [&] { return p.b->ReadableBytes() >= 2000; },
      p.sim.Now() + 300 * kSecond));
  Bytes out2;
  EXPECT_EQ(p.b->Receive(out2, 65536), 2000);
  EXPECT_EQ(out2, PatternBytes(2000, 7));
}

TEST(TcpBehavior, PersistProbeDoesNotFireWhenDataInFlight) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  p.SetCommDisabled(false, true);
  p.a->Send(PatternBytes(1000));
  p.sim.RunFor(50 * kMillisecond);
  // Data is outstanding: the RTO, not the persist timer, owns recovery.
  EXPECT_TRUE(p.a->rto_armed());
  EXPECT_FALSE(p.a->persist_armed());
}

// --- send buffer Split (window probe machinery) ------------------------------

TEST(TcpBehavior, SendBufferSplitPreservesBytes) {
  SendBuffer sb(100000, 1000);
  Bytes data = PatternBytes(1000);
  sb.Append(data, 0);
  sb.Split(0, 1);
  ASSERT_EQ(sb.segments().size(), 2u);
  EXPECT_EQ(sb.segments()[0].data.size(), 1u);
  EXPECT_EQ(sb.segments()[0].seq, 0u);
  EXPECT_EQ(sb.segments()[1].seq, 1u);
  EXPECT_EQ(sb.segments()[1].data.size(), 999u);
  EXPECT_EQ(sb.segments()[0].data[0], data[0]);
  EXPECT_EQ(sb.segments()[1].data[0], data[1]);
  EXPECT_EQ(sb.TotalBytes(), 1000u);
  // Split at a missing seq or oversized length is a no-op.
  sb.Split(500, 10);
  EXPECT_EQ(sb.segments().size(), 2u);
  sb.Split(1, 2000);
  EXPECT_EQ(sb.segments().size(), 2u);
}

// --- go-back-N timeout recovery ----------------------------------------------

TEST(TcpBehavior, WholeFlightDropRecoversViaGoBackN) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  // Drop an entire flight (both directions), as a checkpoint filter does.
  p.SetCommDisabled(false, true);
  Bytes data = PatternBytes(30000);
  std::size_t sent = 0;
  while (sent < data.size()) {
    SysResult r = p.a->Send(ByteSpan(data.data() + sent,
                                     data.size() - sent));
    if (r <= 0) break;
    sent += static_cast<std::size_t>(r);
  }
  p.sim.RunFor(50 * kMillisecond);
  std::uint64_t retx_before = p.a->retransmissions();
  p.SetCommDisabled(false, false);
  Bytes received;
  ASSERT_TRUE(p.sim.RunWhile(
      [&] {
        Bytes chunk;
        while (p.b->Receive(chunk, 65536) > 0) {
          received.insert(received.end(), chunk.begin(), chunk.end());
          chunk.clear();
        }
        while (sent < data.size()) {
          SysResult r = p.a->Send(ByteSpan(data.data() + sent,
                                           data.size() - sent));
          if (r <= 0) break;
          sent += static_cast<std::size_t>(r);
        }
        return received.size() >= data.size();
      },
      p.sim.Now() + 120 * kSecond));
  EXPECT_EQ(received, data);
  // The whole in-flight window (initial cwnd = 3 segments) was resent,
  // not just one segment per timeout...
  EXPECT_GE(p.a->retransmissions() - retx_before, 3u);
  // ...and recovery happened within a few RTO periods, not one RTO per
  // lost segment (which is what the pre-go-back-N behaviour produced).
  EXPECT_LT(p.sim.Now(), 10 * kSecond);
}

// --- ACK fast-forward (restore transient) -------------------------------------

TEST(TcpBehavior, AckBeyondSndNxtWithinWrittenDataAccepted) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  // Transfer some data so both sides are in a known synchronized state.
  Bytes data = PatternBytes(20000);
  Bytes got = PumpTransfer(p, data);
  ASSERT_EQ(got, data);
  // Checkpoint A (the sender) and restore it: its snd_nxt rewinds to
  // snd_una while B's rcv_nxt is ahead of A's replay cursor. B's first
  // ACK acknowledges data A has not re-sent yet; A must accept it and
  // fast-forward rather than discard (else: deadlock, see §4.1).
  TcpConnCheckpoint ck = p.a->ExportCheckpoint();
  p.a.reset();
  p.RestoreA(ck);
  Bytes more = PatternBytes(20000, 5);
  std::size_t sent = 0;
  Bytes received;
  ASSERT_TRUE(p.sim.RunWhile(
      [&] {
        while (sent < more.size()) {
          SysResult r = p.a->Send(ByteSpan(more.data() + sent,
                                           more.size() - sent));
          if (r <= 0) break;
          sent += static_cast<std::size_t>(r);
        }
        Bytes chunk;
        while (p.b->Receive(chunk, 65536) > 0) {
          received.insert(received.end(), chunk.begin(), chunk.end());
          chunk.clear();
        }
        return received.size() >= more.size();
      },
      p.sim.Now() + 120 * kSecond));
  EXPECT_EQ(received, more);
}

// --- close-path details -----------------------------------------------------------

TEST(TcpBehavior, TimeWaitAcksRetransmittedFin) {
  TcpConfig cfg;
  cfg.time_wait_duration = 2 * kSecond;
  TcpPair p;
  p.Connect(cfg);
  ASSERT_TRUE(p.RunUntilEstablished());
  p.a->Close();
  ASSERT_TRUE(p.sim.RunWhile(
      [&] { return p.b->state() == TcpState::kCloseWait; },
      p.sim.Now() + 10 * kSecond));
  p.b->Close();
  ASSERT_TRUE(p.sim.RunWhile(
      [&] { return p.a->state() == TcpState::kTimeWait; },
      p.sim.Now() + 10 * kSecond));
  // B's final-ACK was delivered; simulate a retransmitted FIN from B and
  // verify A (in TIME_WAIT) still ACKs it instead of RSTing.
  std::uint64_t sent_before = p.a->segments_sent();
  TcpSegment fin;
  fin.src_port = p.b->tuple().local.port;
  fin.dst_port = p.b->tuple().remote.port;
  fin.seq = p.b->snd_nxt() - 1;
  fin.ack = p.a->snd_nxt();
  fin.ack_flag = true;
  fin.fin = true;
  p.a->OnSegment(fin);
  EXPECT_EQ(p.a->segments_sent(), sent_before + 1);  // the dup-FIN ACK
  EXPECT_EQ(p.a->state(), TcpState::kTimeWait);
  // TIME_WAIT eventually expires to CLOSED.
  ASSERT_TRUE(p.sim.RunWhile(
      [&] { return p.a->state() == TcpState::kClosed; },
      p.sim.Now() + 30 * kSecond));
}

TEST(TcpBehavior, HalfCloseStillDeliversPeerData) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  // A closes its write side; B can keep sending (half-close).
  p.a->Close();
  ASSERT_TRUE(p.sim.RunWhile(
      [&] { return p.b->state() == TcpState::kCloseWait; },
      p.sim.Now() + 10 * kSecond));
  Bytes msg = PatternBytes(5000);
  std::size_t sent = 0;
  while (sent < msg.size()) {
    SysResult r = p.b->Send(ByteSpan(msg.data() + sent,
                                     msg.size() - sent));
    if (r <= 0) break;
    sent += static_cast<std::size_t>(r);
  }
  ASSERT_TRUE(p.sim.RunWhile(
      [&] { return p.a->ReadableBytes() >= msg.size(); },
      p.sim.Now() + 10 * kSecond));
  Bytes out;
  EXPECT_EQ(p.a->Receive(out, 10000), static_cast<SysResult>(msg.size()));
  EXPECT_EQ(out, msg);
}

TEST(TcpBehavior, SimultaneousClose) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  // Both sides close at the same instant: FINs cross (CLOSING path).
  p.a->Close();
  p.b->Close();
  ASSERT_TRUE(p.sim.RunWhile(
      [&] {
        return p.a->state() == TcpState::kClosed &&
               p.b->state() == TcpState::kClosed;
      },
      p.sim.Now() + 60 * kSecond));
}

// --- parameterized integrity sweep over loss x delay ---------------------------

struct SweepParam {
  double loss;
  DurationNs delay;
};

class LossDelaySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(LossDelaySweep, TransferIntact) {
  SweepParam param = GetParam();
  TcpPair p(/*seed=*/7, param.delay);
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished(60 * kSecond));
  p.set_loss(param.loss);
  Bytes data = PatternBytes(150 * 1000, 3);
  Bytes got = PumpTransfer(p, data, 1200 * kSecond);
  EXPECT_EQ(got, data) << "loss=" << param.loss
                       << " delay=" << ToMicros(param.delay) << "us";
}

INSTANTIATE_TEST_SUITE_P(
    LossAndDelay, LossDelaySweep,
    ::testing::Values(SweepParam{0.0, 5 * kMicrosecond},
                      SweepParam{0.01, 50 * kMicrosecond},
                      SweepParam{0.05, 50 * kMicrosecond},
                      SweepParam{0.10, 200 * kMicrosecond},
                      SweepParam{0.02, 2 * kMillisecond},
                      SweepParam{0.15, 500 * kMicrosecond}));

}  // namespace
}  // namespace cruz::tcp
