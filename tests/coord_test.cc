// Tests for coordinated checkpoint-restart of distributed applications:
// the Fig. 2 blocking protocol, the Fig. 4 optimized variant, the
// CoCheck-style flush baseline (message complexity), coordinated restart
// after total failure, and coordinator fault handling.
#include <gtest/gtest.h>

#include "apps/programs.h"
#include "coord/coordinator.h"
#include "cruz/cluster.h"

namespace cruz::coord {
namespace {

// A distributed streaming job: sender pod on node 0, receiver pod on
// node 1, streaming the deterministic pattern.
struct StreamJob {
  os::PodId sender_pod;
  os::PodId receiver_pod;
  net::Ipv4Address receiver_ip;
  os::Pid sender_vpid = 0;
  os::Pid receiver_vpid = 0;

  static StreamJob Start(Cluster& c, std::uint64_t total_bytes) {
    StreamJob job;
    job.receiver_pod = c.CreatePod(1, "recv");
    job.receiver_ip = c.pods(1).Find(job.receiver_pod)->ip;
    job.receiver_vpid = c.pods(1).SpawnInPod(
        job.receiver_pod, "cruz.stream_receiver",
        apps::StreamReceiverArgs(9100));
    c.sim().RunFor(5 * kMillisecond);
    job.sender_pod = c.CreatePod(0, "send");
    job.sender_vpid = c.pods(0).SpawnInPod(
        job.sender_pod, "cruz.stream_sender",
        apps::StreamSenderArgs(job.receiver_ip, 9100, total_bytes));
    return job;
  }

  // Last observed status; sticky across receiver exit (the process
  // disappears once the stream completes).
  apps::StreamStatus last_status;

  apps::StreamStatus ReceiverStatus(Cluster& c, std::size_t node = 1) {
    os::Pid real =
        c.pods(node).ToRealPid(receiver_pod, receiver_vpid);
    os::Process* proc = c.node(node).os().FindProcess(real);
    if (proc != nullptr) last_status = apps::ReadStreamStatus(*proc);
    return last_status;
  }
};

TEST(Coordinated, CheckpointAndContinueMidStream) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  StreamJob job = StreamJob::Start(c, 4 * kMiB);

  // Let the stream get going.
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.ReceiverStatus(c).bytes > 256 * 1024; },
      c.sim().Now() + 60 * kSecond));
  std::uint64_t before = job.ReceiverStatus(c).bytes;

  Coordinator::OpStats stats = c.RunCheckpoint(
      {c.MemberFor(0, job.sender_pod), c.MemberFor(1, job.receiver_pod)});
  EXPECT_TRUE(stats.success);
  EXPECT_GT(stats.checkpoint_latency, 0u);
  EXPECT_GT(stats.max_local, 0u);
  // Coordination overhead is tiny compared to the local checkpoint time.
  EXPECT_LT(stats.coordination_overhead, stats.max_local / 10);
  // Fig. 2 message count: 4 coordinator->agent messages per member plus
  // replies — O(N), no flush traffic.
  EXPECT_EQ(stats.coordinator_messages, 2u * 2u);
  EXPECT_LE(stats.total_messages, 2u * 5u);

  // The stream completes with exactly-once delivery after the checkpoint.
  std::uint64_t final_total = 4 * kMiB;
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.ReceiverStatus(c).bytes >= final_total; },
      c.sim().Now() + 600 * kSecond));
  EXPECT_GE(job.ReceiverStatus(c).bytes, before);
  EXPECT_EQ(job.ReceiverStatus(c).mismatches, 0u);
}

TEST(Coordinated, RestartAfterTotalFailure) {
  ClusterConfig config;
  config.num_nodes = 4;  // two app nodes + two spares
  Cluster c(config);
  StreamJob job = StreamJob::Start(c, 2 * kMiB);
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.ReceiverStatus(c).bytes > 128 * 1024; },
      c.sim().Now() + 60 * kSecond));

  Coordinator::Options opts;
  opts.image_prefix = "/ckpt/job1";
  Coordinator::OpStats ck = c.RunCheckpoint(
      {c.MemberFor(0, job.sender_pod), c.MemberFor(1, job.receiver_pod)},
      opts);
  ASSERT_TRUE(ck.success);
  std::uint64_t at_checkpoint = job.ReceiverStatus(c).bytes;

  // Let it run on a little (this post-checkpoint progress is rolled back).
  c.sim().RunFor(100 * kMillisecond);

  // Catastrophe: both pods die.
  c.pods(0).DestroyPod(job.sender_pod);
  c.pods(1).DestroyPod(job.receiver_pod);
  c.sim().RunFor(kSecond);

  // Coordinated restart on the SPARE nodes (2 and 3) from the images.
  Coordinator::OpStats rs = c.RunRestart(
      {c.MemberFor(2, job.sender_pod), c.MemberFor(3, job.receiver_pod)},
      ck.image_paths, opts);
  EXPECT_TRUE(rs.success);
  EXPECT_GT(rs.max_local, 0u);
  EXPECT_LT(rs.coordination_overhead, rs.max_local / 10);

  // The pods now live on the new nodes with the same addresses.
  EXPECT_TRUE(c.node(3).stack().OwnsIp(job.receiver_ip));
  // The stream resumes from the checkpoint and completes, exactly once.
  job.last_status = apps::StreamStatus{};
  EXPECT_LE(job.ReceiverStatus(c, 3).bytes, at_checkpoint + 1);
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.ReceiverStatus(c, 3).bytes >= 2 * kMiB; },
      c.sim().Now() + 600 * kSecond));
  EXPECT_EQ(job.ReceiverStatus(c, 3).mismatches, 0u);
}

TEST(Coordinated, OptimizedVariantResumesEarly) {
  ClusterConfig config;
  config.num_nodes = 2;
  // Make the two nodes' disks very different so the Fig. 4 benefit is
  // observable: the fast node resumes long before the slow one finishes.
  Cluster c(config);
  StreamJob job = StreamJob::Start(c, 2 * kMiB);
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.ReceiverStatus(c).bytes > 64 * 1024; },
      c.sim().Now() + 60 * kSecond));

  Coordinator::Options opts;
  opts.variant = ProtocolVariant::kOptimized;
  opts.image_prefix = "/ckpt/opt";
  Coordinator::OpStats stats = c.RunCheckpoint(
      {c.MemberFor(0, job.sender_pod), c.MemberFor(1, job.receiver_pod)},
      opts);
  EXPECT_TRUE(stats.success);
  // Extra <comm-disabled> message per member.
  EXPECT_LE(stats.total_messages, 2u * 6u);
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.ReceiverStatus(c).bytes >= 2 * kMiB; },
      c.sim().Now() + 600 * kSecond));
  EXPECT_EQ(job.ReceiverStatus(c).mismatches, 0u);
}

TEST(Coordinated, FlushBaselineUsesQuadraticMessages) {
  for (std::uint32_t n : {2u, 4u}) {
    ClusterConfig config;
    config.num_nodes = n;
    Cluster c(config);
    // One idle pod per node (counters; the protocol cost is what matters).
    std::vector<Coordinator::Member> members;
    for (std::uint32_t i = 0; i < n; ++i) {
      os::PodId pod = c.CreatePod(i, "p" + std::to_string(i));
      c.pods(i).SpawnInPod(pod, "cruz.counter",
                           apps::CounterArgs(1u << 30));
      members.push_back(c.MemberFor(i, pod));
    }
    c.sim().RunFor(10 * kMillisecond);

    Coordinator::Options cruz_opts;
    cruz_opts.image_prefix = "/ckpt/cruz" + std::to_string(n);
    Coordinator::OpStats cruz_stats = c.RunCheckpoint(members, cruz_opts);
    ASSERT_TRUE(cruz_stats.success);

    Coordinator::Options flush_opts;
    flush_opts.variant = ProtocolVariant::kFlushBaseline;
    flush_opts.image_prefix = "/ckpt/flush" + std::to_string(n);
    Coordinator::OpStats flush_stats = c.RunCheckpoint(members, flush_opts);
    ASSERT_TRUE(flush_stats.success);

    // Cruz: O(N) messages. Baseline adds N*(N-1) marker messages.
    EXPECT_EQ(cruz_stats.coordinator_messages, 2 * n);
    EXPECT_GE(flush_stats.total_messages,
              cruz_stats.total_messages + n * (n - 1));
  }
}

TEST(Coordinated, TimeoutAbortsAndResumesSurvivors) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  StreamJob job = StreamJob::Start(c, 8 * kMiB);
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.ReceiverStatus(c).bytes > 64 * 1024; },
      c.sim().Now() + 60 * kSecond));

  // Node 0 fails right before the checkpoint: its agent can never reply.
  c.node(0).Fail();
  Coordinator::Options opts;
  opts.timeout = 2 * kSecond;
  Coordinator::OpStats stats = c.RunCheckpoint(
      {c.MemberFor(0, job.sender_pod), c.MemberFor(1, job.receiver_pod)},
      opts);
  EXPECT_FALSE(stats.success);
  c.sim().RunFor(kSecond);  // let the <abort> reach the surviving agent
  // The surviving pod was resumed by the abort: its processes are live.
  os::Pid real = c.pods(1).ToRealPid(job.receiver_pod, job.receiver_vpid);
  os::Process* proc = c.node(1).os().FindProcess(real);
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->state(), os::ProcessState::kLive);
}

TEST(Coordinated, RepeatedCheckpointsKeepStreamIntact) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  StreamJob job = StreamJob::Start(c, 6 * kMiB);
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(c.sim().RunWhile(
        [&] {
          return job.ReceiverStatus(c).bytes >
                 static_cast<std::uint64_t>(round + 1) * kMiB;
        },
        c.sim().Now() + 600 * kSecond))
        << "round " << round;
    Coordinator::Options opts;
    opts.image_prefix = "/ckpt/round" + std::to_string(round);
    Coordinator::OpStats stats = c.RunCheckpoint(
        {c.MemberFor(0, job.sender_pod), c.MemberFor(1, job.receiver_pod)},
        opts);
    ASSERT_TRUE(stats.success) << "round " << round;
  }
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.ReceiverStatus(c).bytes >= 6 * kMiB; },
      c.sim().Now() + 600 * kSecond));
  EXPECT_EQ(job.ReceiverStatus(c).mismatches, 0u);
}

TEST(Coordinated, ChainCheckpointThenRestartThenCheckpoint) {
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);
  StreamJob job = StreamJob::Start(c, 3 * kMiB);
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.ReceiverStatus(c).bytes > 200 * 1024; },
      c.sim().Now() + 60 * kSecond));

  Coordinator::Options opts;
  opts.image_prefix = "/ckpt/chain1";
  auto members = std::vector<Coordinator::Member>{
      c.MemberFor(0, job.sender_pod), c.MemberFor(1, job.receiver_pod)};
  Coordinator::OpStats ck1 = c.RunCheckpoint(members, opts);
  ASSERT_TRUE(ck1.success);

  c.pods(0).DestroyPod(job.sender_pod);
  c.pods(1).DestroyPod(job.receiver_pod);

  // Restart sender on node 2, receiver back on node 1.
  Coordinator::OpStats rs = c.RunRestart(
      {c.MemberFor(2, job.sender_pod), c.MemberFor(1, job.receiver_pod)},
      ck1.image_paths, opts);
  ASSERT_TRUE(rs.success);

  // A second checkpoint of the restarted job also works (receiver was
  // restarted in place on node 1).
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.ReceiverStatus(c).bytes > 1 * kMiB; },
      c.sim().Now() + 600 * kSecond));
  Coordinator::Options opts2;
  opts2.image_prefix = "/ckpt/chain2";
  Coordinator::OpStats ck2 = c.RunCheckpoint(
      {c.MemberFor(2, job.sender_pod), c.MemberFor(1, job.receiver_pod)},
      opts2);
  EXPECT_TRUE(ck2.success);
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.ReceiverStatus(c).bytes >= 3 * kMiB; },
      c.sim().Now() + 600 * kSecond));
  EXPECT_EQ(job.ReceiverStatus(c).mismatches, 0u);
}

}  // namespace
}  // namespace cruz::coord
